package drs_test

import (
	"math"
	"testing"
	"time"

	drs "github.com/drs-repro/drs"
)

// TestPublicAPIWorkflow walks the full user journey through the facade:
// topology -> model -> allocation -> controller, plus the measurer path.
func TestPublicAPIWorkflow(t *testing.T) {
	topo, err := drs.NewTopologyBuilder().
		AddOperator("extract", 1/0.45, 13).
		AddOperator("match", 1/0.50, 0).
		AddOperator("aggregate", 1/0.01, 0).
		Connect("extract", "match", 1).
		Connect("match", "aggregate", 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	model, err := drs.NewModelFromTopology(topo)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := model.AssignProcessors(22)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0] != 10 || alloc[1] != 11 || alloc[2] != 1 {
		t.Errorf("allocation = %v, want the paper's (10:11:1)", alloc)
	}
	est, err := model.ExpectedSojourn(alloc)
	if err != nil {
		t.Fatal(err)
	}
	if est <= model.LowerBound() || math.IsInf(est, 1) {
		t.Errorf("estimate %g out of range", est)
	}
	minK, err := model.MinProcessors(est * 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sum(minK), sum(alloc); got > want {
		t.Errorf("MinProcessors(%g) = %d procs, more than the full budget %d", est*1.1, got, want)
	}

	ctrl, err := drs.NewController(drs.ControllerConfig{
		Mode: drs.ModeMinLatency, Kmax: 22, MinGain: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := ctrl.Step(drs.Snapshot{
		Lambda0: 13,
		Ops: []drs.OpRates{
			{Name: "extract", Lambda: 13, Mu: 1 / 0.45},
			{Name: "match", Lambda: 13, Mu: 1 / 0.50},
			{Name: "aggregate", Lambda: 13, Mu: 100},
		},
		MeasuredSojourn: 1.2,
		Alloc:           []int{12, 9, 1},
		Kmax:            22,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != drs.ActionRebalance {
		t.Errorf("action = %v (%s), want rebalance", d.Action, d.Reason)
	}
}

func TestPublicMeasurerPath(t *testing.T) {
	meas, err := drs.NewMeasurer(drs.MeasurerConfig{
		OperatorNames: []string{"a"},
		Smoothing:     drs.SmoothingSpec{Kind: "ewma", Alpha: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	probe := drs.NewExecutorProbe(1)
	for i := 0; i < 100; i++ {
		probe.TupleArrived()
		probe.TupleServed(10 * time.Millisecond)
	}
	c := probe.Drain()
	err = meas.AddInterval(drs.IntervalReport{
		Duration:         time.Second,
		ExternalArrivals: 100,
		Ops: []drs.OpInterval{{
			Arrivals: c.Arrivals, Served: c.Served,
			Sampled: c.Sampled, BusyTime: c.BusyTime,
		}},
		SojournCount: 100,
		SojournTotal: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := meas.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(snap.Ops[0].Mu-100) > 1e-9 {
		t.Errorf("measured mu = %g, want 100", snap.Ops[0].Mu)
	}
	if math.Abs(snap.MeasuredSojourn-0.02) > 1e-9 {
		t.Errorf("measured sojourn = %g, want 0.02", snap.MeasuredSojourn)
	}
}

func TestPublicConfig(t *testing.T) {
	cfg := drs.DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.ControllerConfig(); err != nil {
		t.Fatal(err)
	}
	if _, err := drs.LoadConfig("/nonexistent/drs.json"); err == nil {
		t.Error("missing config file should error")
	}
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
