// Package drs is a from-scratch Go reproduction of DRS — the dynamic
// resource scheduler for real-time streaming analytics of Fu et al.,
// "DRS: Dynamic Resource Scheduling for Real-Time Analytics over Fast
// Streams" (ICDCS 2015).
//
// The package exposes the paper's contribution as a library:
//
//   - The performance model (§III-B): per-operator M/M/k sojourn estimates
//     (Erlang's formulas, Equations 1-2) aggregated over a Jackson open
//     queueing network (Equation 3), for arbitrary operator topologies with
//     splits, joins and feedback loops.
//   - The exactly-optimal greedy allocators (§III-C): AssignProcessors
//     (Algorithm 1 / Program (4): best latency under a processor budget)
//     and MinProcessors (Program (6): fewest processors under a latency
//     target), both justified by the convexity of E[T_i](k_i) (Theorem 1).
//   - The DRS control loop (§IV): a Measurer that aggregates sampled
//     per-executor metrics to operator level with α-weighted or windowed
//     smoothing, and a Controller that turns measurement snapshots into
//     rebalance / scale-out / scale-in decisions, including the Appendix-B
//     cost/benefit guard.
//   - The closed loop, live (§IV's DRS daemon): a Supervisor that owns a
//     running topology, drains its measurements every Tm seconds, steps
//     the controller and actuates the verdicts through the resource pool —
//     with cooldown hysteresis between actions and suppression of
//     repeatedly-failing rebalances. examples/autoscale runs it against
//     the built-in engine under a shifting arrival rate.
//   - The multi-tenant cluster layer (the §V shared-cluster setting): a
//     Scheduler that owns one machine pool and arbitrates slot leases
//     among N concurrently supervised topologies — weighted max-min
//     fairness over free capacity, and preemption toward a Tmax-violating
//     higher-priority tenant under the Appendix-B cost/benefit guard,
//     comparing marginal sojourn-time utilities across tenants via the
//     Eq. 3 model. examples/multitenant runs two live topologies on one
//     pool through a load surge.
//   - The failure domain: pool machines have identity and a lifecycle
//     (Fail / Recover / straggler flag), the Scheduler re-arbitrates every
//     lease out of band the moment capacity moves — shrinking grants
//     fairly with slots-lost attribution, optionally negotiating a
//     replacement machine within the provider cap — and Supervisors
//     re-fit their allocations to the surviving grant outside the
//     cooldown gate (SlotsLost events). The engine recovers crashed
//     executors by replaying their backlog onto a replacement, so
//     at-least-once semantics hold through the crash. examples/churn runs
//     the whole arc live; `drs-experiments churn` measures it.
//   - The durability layer: a segmented, CRC-framed write-ahead log with
//     group-commit batching (WAL/OpenWAL), completion-tracking watermarks
//     and periodic checkpoints, so an ACKed record survives kill -9 of the
//     serving process and is replayed into the engine on the next boot —
//     at-least-once across process death, not just executor crashes.
//     `drsctl serve -wal-dir` turns it on; `drs-experiments restart` and
//     `make restart-smoke` measure the recovery arc.
//
// A minimal session:
//
//	topo, err := drs.NewTopologyBuilder().
//		AddOperator("extract", 1/0.45, 13). // µ = 2.22/s, external 13/s
//		AddOperator("match", 2.0, 0).
//		Connect("extract", "match", 1).
//		Build()
//	if err != nil { ... }
//	model, err := drs.NewModelFromTopology(topo)
//	if err != nil { ... }
//	alloc, err := model.AssignProcessors(22) // Algorithm 1
//	est, err := model.ExpectedSojourn(alloc)  // Equation (3)
//
// The repository also contains the substrates the paper's evaluation needs
// (a Storm-like operator engine, a discrete-event queueing simulator, a
// cluster/negotiator model and the two test applications); those live under
// internal/ and are driven by the examples, the cmd/drs-experiments harness
// and the repository benchmarks. See DESIGN.md for the full inventory.
package drs

import (
	"github.com/drs-repro/drs/internal/cluster"
	"github.com/drs-repro/drs/internal/config"
	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/loop"
	"github.com/drs-repro/drs/internal/metrics"
	"github.com/drs-repro/drs/internal/topology"
	"github.com/drs-repro/drs/internal/wal"
)

// Model is the DRS performance model (paper §III-B). Build one per
// measurement snapshot with NewModel or NewModelFromTopology; its methods
// AssignProcessors, MinProcessors, ExpectedSojourn and LowerBound are the
// paper's optimization toolkit.
type Model = core.Model

// OpRates carries one operator's measured mean arrival rate λ_i and mean
// per-processor service rate µ_i.
type OpRates = core.OpRates

// NewModel builds a performance model directly from measured rates.
// lambda0 is λ0, the external arrival rate into the whole application.
func NewModel(lambda0 float64, ops []OpRates) (*Model, error) {
	return core.NewModel(lambda0, ops)
}

// NewModelFromTopology derives the per-operator arrival rates by solving
// the Jackson traffic equations over the topology (loops included) and
// builds the model from them.
func NewModelFromTopology(t *Topology) (*Model, error) {
	return core.NewModelFromTopology(t)
}

// Topology describes an operator network: operators with service rates and
// external arrivals, connected by edges with selectivities.
type Topology = topology.Topology

// TopologyBuilder accumulates operators and edges; Build validates and
// solves the traffic equations once.
type TopologyBuilder = topology.Builder

// NewTopologyBuilder returns an empty topology builder.
func NewTopologyBuilder() *TopologyBuilder { return topology.NewBuilder() }

// Controller is the DRS decision loop: feed it measurement Snapshots, get
// rebalance/scale Decisions (paper §III-C and §IV).
type Controller = core.Controller

// ControllerConfig tunes the controller (mode, Kmax/Tmax, churn guards,
// pool geometry).
type ControllerConfig = core.ControllerConfig

// Snapshot is one round of smoothed measurements: λ̂0, per-operator λ̂_i and
// µ̂_i, the measured mean sojourn E[T̂], the allocation in force and the
// available processor budget.
type Snapshot = core.Snapshot

// Decision is the controller's verdict for one snapshot.
type Decision = core.Decision

// Mode selects which of the paper's two optimization problems the
// controller solves each round.
type Mode = core.Mode

// Controller modes: Program (4) under a fixed budget, or Program (6) under
// a latency target.
const (
	ModeMinLatency  = core.ModeMinLatency
	ModeMinResource = core.ModeMinResource
)

// Action is what a Decision asks the CSP layer to do.
type Action = core.Action

// Possible decision actions.
const (
	ActionNone      = core.ActionNone
	ActionRebalance = core.ActionRebalance
	ActionScaleOut  = core.ActionScaleOut
	ActionScaleIn   = core.ActionScaleIn
)

// NewController validates the config and returns a controller.
func NewController(cfg ControllerConfig) (*Controller, error) {
	return core.NewController(cfg)
}

// Stepper is any decision policy consuming Snapshots — *Controller or the
// ThresholdController baseline.
type Stepper = core.Stepper

// ThresholdController is a utilization-threshold autoscaler baseline (the
// reactive-policy family); it needs no queueing model and exists for
// comparison against DRS (see experiments' baseline run).
type ThresholdController = core.ThresholdController

// HeteroAssignment maps operators to the processor speed factors they
// received from Model.AssignHeterogeneous — the §III-A heterogeneous
// processors extension.
type HeteroAssignment = core.HeteroAssignment

// Measurer implements the paper's measurer module: it aggregates
// per-interval operator counters into smoothed rate estimates and produces
// controller Snapshots.
type Measurer = metrics.Measurer

// MeasurerConfig parameterizes the measurer.
type MeasurerConfig = metrics.MeasurerConfig

// IntervalReport is one collection interval's raw counters.
type IntervalReport = metrics.IntervalReport

// OpInterval is one operator's counters within an interval.
type OpInterval = metrics.OpInterval

// ExecutorProbe instruments one executor with the paper's Nm-sampled
// per-tuple measurement; safe for concurrent use and cheap on the fast path.
type ExecutorProbe = metrics.ExecutorProbe

// SmoothingSpec selects "none", "ewma" (α-weighted) or "window" averaging
// for the measured series, as in Appendix B.
type SmoothingSpec = metrics.SmoothingSpec

// NewMeasurer validates the config and builds a measurer.
func NewMeasurer(cfg MeasurerConfig) (*Measurer, error) {
	return metrics.NewMeasurer(cfg)
}

// NewExecutorProbe builds a probe sampling every nm-th served tuple.
func NewExecutorProbe(nm int) *ExecutorProbe { return metrics.NewExecutorProbe(nm) }

// Supervisor closes the DRS control loop of §IV against a live system: it
// polls its target's measurements on a configurable cadence, feeds them
// through the decision policy, and actuates rebalance/scale verdicts —
// with cooldown hysteresis between actions and suppression of
// repeatedly-failing ones. It is the paper's DRS daemon (the component
// that "periodically pulls metrics, re-solves the allocation, and
// rebalances when the model says it pays off").
type Supervisor = loop.Supervisor

// SupervisorConfig assembles a supervisor: the target, the operator order,
// the decision policy, the resource pool, and the loop cadence Tm.
type SupervisorConfig = loop.Config

// SupervisorEvent is one decision round that mattered: an applied action,
// a failed apply, or a suppressed retry.
type SupervisorEvent = loop.Event

// SupervisorTarget is the system under supervision: measurement intervals
// out, allocations in. Implement it over your own runtime, or use the
// built-in engine through internal/loop.EngineTarget (as examples/autoscale
// and drsctl supervise do).
type SupervisorTarget = loop.Target

// SupervisorPool is the resource negotiator the supervisor charges
// transitions to (the paper's Appendix-B negotiator). *cluster.Pool
// implements it; FixedPool serves constant-budget deployments.
type SupervisorPool = loop.Pool

// PoolTransition describes one applied resource-pool change and its
// modeled service-disruption pause (the §V transition costs) — the value
// a SupervisorPool implementation returns.
type PoolTransition = cluster.Transition

// SupervisorClock abstracts time for deterministic tests and virtual-time
// (simulator) driving of the loop.
type SupervisorClock = loop.Clock

// NewSupervisor validates the config, fills defaults (a windowed Measurer
// over the named operators, 4·Interval cooldown, 3-failure suppression)
// and builds a supervisor.
func NewSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	return loop.New(cfg)
}

// FixedPool returns a SupervisorPool with a constant processor budget and
// free rebalances — the ModeMinLatency deployment where only the split is
// negotiable.
func FixedPool(kmax int) SupervisorPool { return loop.FixedPool(kmax) }

// ClusterPool is the simulated machine pool below the CSP layer: machines
// of SlotsPerMachine executor slots each, priced transitions, and the
// Appendix-B negotiator arithmetic. It implements SupervisorPool directly
// (single-topology deployments) and is what a Scheduler arbitrates
// (multi-tenant deployments).
type ClusterPool = cluster.Pool

// ClusterPoolConfig describes the pool geometry and its transition costs.
type ClusterPoolConfig = cluster.PoolConfig

// ClusterCostModel prices rebalance, machine cold-start and release
// pauses (the paper's §V transition costs).
type ClusterCostModel = cluster.CostModel

// NewClusterPool builds a pool with the given starting machine count.
func NewClusterPool(cfg ClusterPoolConfig, startMachines int) (*ClusterPool, error) {
	return cluster.NewPool(cfg, startMachines)
}

// MachineInfo is one pool machine's identity and lifecycle state — the
// unit the failure domain operates on. Crash one with ClusterPool.Fail
// (or Scheduler.FailMachine, which also re-arbitrates the leases), return
// it with Recover, flag degradation with SetStraggler.
type MachineInfo = cluster.MachineInfo

// MachineUse is one live machine's row of a placement snapshot: how its
// slots split between the reserved share and tenant leases. The scheduler
// rebuilds the slot → machine mapping on every arbitration; stragglers
// are filled last.
type MachineUse = cluster.MachineUse

// PoolChurnEvent is a machine lifecycle transition delivered to the
// pool's OnChurn subscriber — the scheduler's out-of-band re-arbitration
// trigger.
type PoolChurnEvent = cluster.ChurnEvent

// Scheduler is the multi-tenant cluster arbiter: it owns one machine pool
// and arbitrates slot grants among N supervised topologies — weighted
// max-min fairness over free capacity, preemption toward a Tmax-violating
// higher-priority tenant under the Appendix-B cost/benefit guard. It is
// the paper's shared-cluster setting (§V runs several applications on one
// Storm cluster) generalized from the single control loop.
type Scheduler = cluster.Scheduler

// SchedulerConfig assembles a Scheduler around a cluster pool.
type SchedulerConfig = cluster.SchedulerConfig

// SchedulerEvent is one arbitration outcome — a grant, shrink, preemption
// or machine change — with its modeled transition cost.
type SchedulerEvent = cluster.SchedulerEvent

// SchedulerState is an atomic snapshot of pool, grants and demands.
type SchedulerState = cluster.SchedulerState

// Tenant is one topology's lease on a scheduled pool. It implements
// SupervisorPool, so a Supervisor drives it exactly like a private pool —
// except Resize is a request the arbiter may grant partially, and the
// grant can shrink between ticks when a higher-priority tenant preempts.
type Tenant = cluster.Tenant

// TenantConfig registers one topology with the Scheduler: name, max-min
// weight, preemption priority and floor, and the initial grant.
type TenantConfig = cluster.TenantConfig

// TenantReport is a tenant's utility self-assessment — the marginal
// benefit/cost of one slot in cross-tenant-comparable units — pushed by
// its Supervisor every round and consumed by the preemption guard.
type TenantReport = cluster.TenantReport

// NewScheduler validates the config and takes ownership of the pool.
func NewScheduler(cfg SchedulerConfig) (*Scheduler, error) {
	return cluster.NewScheduler(cfg)
}

// WAL is the segmented, CRC-framed write-ahead log behind durable
// admission (`drsctl serve -wal-dir`): appends are group-committed
// (leader flush + write(2) before ACK, fsync on the SyncEvery cadence),
// segments rotate at SegmentBytes and are pruned once the completion
// watermark passes them. See DESIGN.md §10 for the on-disk format and
// recovery state machine.
type WAL = wal.Log

// WALOptions configures a WAL: directory, segment size, group-commit
// window and fsync cadence.
type WALOptions = wal.Options

// WALRecord is one recovered record: its sequence number and payload.
type WALRecord = wal.Record

// WALRecovered reports what OpenWAL reconstructed from disk: the durable
// watermark, the unacknowledged tail to replay, and any torn-tail bytes
// truncated from the last segment.
type WALRecovered = wal.Recovered

// WALCheckpoint is the periodic recovery-bound marker saved next to the
// segments; it lets recovery skip sealed, fully-acknowledged segments.
type WALCheckpoint = wal.Checkpoint

// OpenWAL opens (or creates) the log in o.Dir, scans the segments,
// truncates a torn tail in the last segment if the process died
// mid-write, and returns the log plus everything recovery needs.
func OpenWAL(o WALOptions) (*WAL, WALRecovered, error) { return wal.Open(o) }

// SaveWALCheckpoint atomically persists a checkpoint next to the
// segments (write to temp file, fsync, rename).
func SaveWALCheckpoint(dir string, c WALCheckpoint) error { return wal.SaveCheckpoint(dir, c) }

// LoadWALCheckpoint reads the checkpoint if one exists; ok reports
// whether it was present and valid.
func LoadWALCheckpoint(dir string) (c WALCheckpoint, ok bool, err error) {
	return wal.LoadCheckpoint(dir)
}

// Config is the full DRS parameter set (the configuration-reader module),
// with JSON load/save.
type Config = config.Config

// DefaultConfig returns the paper's experiment configuration where stated
// and sensible values elsewhere.
func DefaultConfig() Config { return config.Default() }

// LoadConfig reads and validates a configuration file.
func LoadConfig(path string) (Config, error) { return config.Load(path) }
