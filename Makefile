# Development targets for the DRS reproduction.

GO ?= go

.PHONY: test race bench build vet checkdoc

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Missing-doc linter: package comments + docs on every exported decl.
checkdoc:
	$(GO) run ./internal/tools/checkdoc ./...

test:
	$(GO) test ./...

# The concurrent fast paths (engine queues, pooled trees, supervisor) and
# the multi-tenant scheduler's no-double-lease invariant.
race:
	$(GO) test -race ./internal/engine/... ./internal/loop/... ./internal/metrics/... ./internal/cluster/...

# Hot-path benchmarks -> BENCH_<PR>.json (see scripts/bench.sh).
PR ?= 3
BENCHTIME ?= 2s
bench:
	sh scripts/bench.sh $(PR) $(BENCHTIME)
