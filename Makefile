# Development targets for the DRS reproduction.

GO ?= go

.PHONY: test race bench build vet checkdoc test-fuzz serve-smoke restart-smoke worker-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Missing-doc linter: package comments + docs on every exported decl.
checkdoc:
	$(GO) run ./internal/tools/checkdoc ./...

test:
	$(GO) test ./...

# The concurrent fast paths (engine queues, pooled trees, supervisor) and
# the multi-tenant scheduler's no-double-lease invariant — plus the
# randomized scheduler property test, the ingest gate's sharded-registry
# and concurrent-clients-vs-shed-threshold-flips tests, the group-commit
# WAL's concurrent appenders, the simulator and the scenario generator's
# determinism properties, the decision log's
# deciders-vs-drainer-vs-scrape-vs-sampling-knob storm, and the tracer's
# emitters-vs-drainer-vs-assembler-vs-scrape storm, all under -race here
# exactly as in CI.
race:
	$(GO) test -race ./internal/engine/... ./internal/loop/... ./internal/metrics/... ./internal/cluster/... ./internal/sim/... ./internal/ingest/... ./internal/scenario/... ./internal/wal/... ./internal/worker/... ./internal/obs/...

# Native fuzzing smoke: a short budget per target keeps it CI-sized; raise
# FUZZTIME locally for real hunting. Seed corpora live in each package's
# testdata/fuzz directory.
FUZZTIME ?= 10s
test-fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseTopology -fuzztime $(FUZZTIME) ./internal/topology
	$(GO) test -run '^$$' -fuzz FuzzParseConfig -fuzztime $(FUZZTIME) ./internal/config
	$(GO) test -run '^$$' -fuzz FuzzParseScenario -fuzztime $(FUZZTIME) ./internal/scenario
	$(GO) test -run '^$$' -fuzz FuzzWALSegment -fuzztime $(FUZZTIME) ./internal/wal
	$(GO) test -run '^$$' -fuzz FuzzWorkerFrame -fuzztime $(FUZZTIME) ./internal/worker
	$(GO) test -run '^$$' -fuzz FuzzDecisionRecord -fuzztime $(FUZZTIME) ./internal/obs
	$(GO) test -run '^$$' -fuzz FuzzTraceRecord -fuzztime $(FUZZTIME) ./internal/obs

# Boots `drsctl serve` on a loopback port, pushes a client burst through
# the HTTP front door and asserts a 2xx/429 split (admitted + backpressure).
serve-smoke:
	sh scripts/serve_smoke.sh

# Boots `drsctl serve` with a WAL, kill -9s it mid-ingest, restarts over
# the same directory and asserts zero admitted loss: recovery replays
# every ACKed-but-unprocessed record and the books balance.
restart-smoke:
	sh scripts/restart_smoke.sh

# Boots `drsctl serve` with a worker tier plus two real `drsctl worker`
# processes, kill -9s one worker mid-surge, and asserts live-process churn
# invariants: both joins gate the front door, the death surfaces within
# the lease, executors heal in-process, no admitted record is lost.
worker-smoke:
	sh scripts/worker_smoke.sh

# Hot-path benchmarks -> BENCH_<PR>.json (see scripts/bench.sh). PR
# defaults to the next point on the perf trajectory (highest existing
# BENCH_<n>.json + 1).
PR ?=
BENCHTIME ?= 2s
bench:
	sh scripts/bench.sh "$(PR)" $(BENCHTIME)
