# Development targets for the DRS reproduction.

GO ?= go

.PHONY: test race bench build vet

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrent fast paths (engine queues, pooled trees, supervisor).
race:
	$(GO) test -race ./internal/engine/... ./internal/loop/... ./internal/metrics/...

# Hot-path benchmarks -> BENCH_<PR>.json (see scripts/bench.sh).
PR ?= 2
BENCHTIME ?= 2s
bench:
	sh scripts/bench.sh $(PR) $(BENCHTIME)
