# Development targets for the DRS reproduction.

GO ?= go

.PHONY: test race bench build vet checkdoc test-fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Missing-doc linter: package comments + docs on every exported decl.
checkdoc:
	$(GO) run ./internal/tools/checkdoc ./...

test:
	$(GO) test ./...

# The concurrent fast paths (engine queues, pooled trees, supervisor) and
# the multi-tenant scheduler's no-double-lease invariant — plus the
# randomized scheduler property test, which CI runs under -race here.
race:
	$(GO) test -race ./internal/engine/... ./internal/loop/... ./internal/metrics/... ./internal/cluster/...

# Native fuzzing smoke: a short budget per target keeps it CI-sized; raise
# FUZZTIME locally for real hunting. Seed corpora live in each package's
# testdata/fuzz directory.
FUZZTIME ?= 10s
test-fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseTopology -fuzztime $(FUZZTIME) ./internal/topology
	$(GO) test -run '^$$' -fuzz FuzzParseConfig -fuzztime $(FUZZTIME) ./internal/config

# Hot-path benchmarks -> BENCH_<PR>.json (see scripts/bench.sh).
PR ?= 4
BENCHTIME ?= 2s
bench:
	sh scripts/bench.sh $(PR) $(BENCHTIME)
