// Repository benchmarks: one benchmark per table/figure of the paper's
// evaluation (each iteration regenerates a scaled-down version of the
// experiment; run cmd/drs-experiments for the paper-faithful durations),
// plus the ablation benchmarks called out in DESIGN.md and micro-benchmarks
// of the hot paths.
package drs_test

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/drs-repro/drs/internal/apps/fpd"
	"github.com/drs-repro/drs/internal/apps/vld"
	"github.com/drs-repro/drs/internal/cluster"
	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/engine"
	"github.com/drs-repro/drs/internal/experiments"
	"github.com/drs-repro/drs/internal/ingest"
	"github.com/drs-repro/drs/internal/loop"
	"github.com/drs-repro/drs/internal/metrics"
	"github.com/drs-repro/drs/internal/obs"
	"github.com/drs-repro/drs/internal/queueing"
	"github.com/drs-repro/drs/internal/sim"
	"github.com/drs-repro/drs/internal/stats"
	"github.com/drs-repro/drs/internal/topology"
	"github.com/drs-repro/drs/internal/wal"
)

// benchOpts shrinks experiment durations so one benchmark iteration stays
// in the hundreds of milliseconds.
var benchOpts = experiments.Options{Duration: 120, Warmup: 20, Seed: 1}

func BenchmarkFig6VLD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFigure6(experiments.VLD, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 6 {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkFig6FPD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFigure6(experiments.FPD, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 6 {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkFig7VLD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure7(experiments.VLD, benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7FPD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure7(experiments.FPD, benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFigure8(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Points) != 6 {
			b.Fatal("missing points")
		}
	}
}

func BenchmarkFig9VLD(b *testing.B) {
	opts := experiments.Options{Duration: 360, Seed: 1} // controller run, halved enable point
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure9(experiments.VLD, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9FPD(b *testing.B) {
	opts := experiments.Options{Duration: 360, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure9(experiments.FPD, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10ExpA(b *testing.B) {
	opts := experiments.Options{Duration: 360, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure10(experiments.ExpA, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10ExpB(b *testing.B) {
	opts := experiments.Options{Duration: 360, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure10(experiments.ExpB, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Scheduling is Table II's "Scheduling" row measured the
// canonical Go way: ns/op of one full Algorithm 1 run per Kmax.
func BenchmarkTable2Scheduling(b *testing.B) {
	model, err := vld.Model()
	if err != nil {
		b.Fatal(err)
	}
	base := model.Rates()
	for _, kmax := range experiments.Table2Kmaxes() {
		scale := float64(kmax) / 22.0
		ops := make([]core.OpRates, len(base))
		for i, op := range base {
			ops[i] = core.OpRates{Name: op.Name, Lambda: op.Lambda * scale, Mu: op.Mu}
		}
		scaled, err := core.NewModel(model.Lambda0()*scale, ops)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(kmaxName(kmax), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := scaled.AssignProcessors(kmax); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2Measurement is Table II's "Measurement" row: processing
// one measurement interval (aggregate, smooth, snapshot).
func BenchmarkTable2Measurement(b *testing.B) {
	meas, err := metrics.NewMeasurer(metrics.MeasurerConfig{
		OperatorNames: vld.OperatorNames(),
		Smoothing:     metrics.SmoothingSpec{Kind: "ewma", Alpha: 0.6},
	})
	if err != nil {
		b.Fatal(err)
	}
	rep := metrics.IntervalReport{
		Duration:         5 * time.Second,
		ExternalArrivals: 65,
		Ops: []metrics.OpInterval{
			{Arrivals: 65, Served: 65, Sampled: 65, BusyTime: 29 * time.Second},
			{Arrivals: 65, Served: 65, Sampled: 65, BusyTime: 32 * time.Second},
			{Arrivals: 65, Served: 65, Sampled: 65, BusyTime: time.Second},
		},
		SojournCount: 60,
		SojournTotal: time.Minute,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := meas.AddInterval(rep); err != nil {
			b.Fatal(err)
		}
		if _, err := meas.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §6) ---

// BenchmarkAblationGreedyVsBrute compares Algorithm 1 against exhaustive
// enumeration on an instance small enough for both (the exactness itself is
// asserted in core's tests; this shows the cost gap).
func BenchmarkAblationGreedyVsBrute(b *testing.B) {
	model, err := core.NewModel(5, []core.OpRates{
		{Name: "a", Lambda: 5, Mu: 2},
		{Name: "b", Lambda: 10, Mu: 4},
		{Name: "c", Lambda: 3, Mu: 10},
	})
	if err != nil {
		b.Fatal(err)
	}
	const kmax = 24
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := model.AssignProcessors(kmax); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("brute-force", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.BruteForceAssign(model, kmax); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationHeapVsScan compares the heap-based greedy against the
// paper's literal rescan formulation on a wide topology.
func BenchmarkAblationHeapVsScan(b *testing.B) {
	rng := stats.NewRNG(99)
	const n = 64
	ops := make([]core.OpRates, n)
	for i := range ops {
		ops[i] = core.OpRates{Lambda: 10 + rng.Float64()*200, Mu: 5 + rng.Float64()*40}
	}
	model, err := core.NewModel(50, ops)
	if err != nil {
		b.Fatal(err)
	}
	_, minTotal, err := model.MinAllocation()
	if err != nil {
		b.Fatal(err)
	}
	kmax := minTotal + 256
	b.Run("heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := model.AssignProcessors(kmax); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.AssignProcessorsScan(model, kmax); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSmoothing measures the measurer pipeline under each of
// Appendix B's smoothing options.
func BenchmarkAblationSmoothing(b *testing.B) {
	specs := map[string]metrics.SmoothingSpec{
		"none":   {},
		"ewma":   {Kind: "ewma", Alpha: 0.6},
		"window": {Kind: "window", Window: 6},
	}
	rep := metrics.IntervalReport{
		Duration:         time.Second,
		ExternalArrivals: 100,
		Ops: []metrics.OpInterval{
			{Arrivals: 100, Served: 100, Sampled: 10, BusyTime: time.Second},
			{Arrivals: 100, Served: 100, Sampled: 10, BusyTime: time.Second},
			{Arrivals: 100, Served: 100, Sampled: 10, BusyTime: time.Second},
		},
		SojournCount: 50, SojournTotal: 30 * time.Second,
	}
	for name, spec := range specs {
		meas, err := metrics.NewMeasurer(metrics.MeasurerConfig{
			OperatorNames: []string{"a", "b", "c"},
			Smoothing:     spec,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := meas.AddInterval(rep); err != nil {
					b.Fatal(err)
				}
				if _, err := meas.Snapshot(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationModel compares the Erlang M/M/k evaluation against the
// naive "one fast server" (M/M/1 with rate kµ) evaluation; the quality gap
// is asserted in core's ablation test, this is the cost side.
func BenchmarkAblationModel(b *testing.B) {
	model, err := fpd.Model()
	if err != nil {
		b.Fatal(err)
	}
	alloc := fpd.RecommendedAllocation()
	b.Run("erlang-mmk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := model.ExpectedSojourn(alloc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive-mm1", func(b *testing.B) {
		rates := model.Rates()
		for i := 0; i < b.N; i++ {
			total := 0.0
			for j, op := range rates {
				total += op.Lambda / (float64(alloc[j])*op.Mu - op.Lambda)
			}
			_ = total / model.Lambda0()
		}
	})
}

// --- Micro-benchmarks of the hot paths ---

func BenchmarkErlangC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = queueing.ErlangC(22, 18.5)
	}
}

func BenchmarkExpectedSojourn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = queueing.ExpectedSojourn(1347, 132, 13)
	}
}

func BenchmarkTrafficEquations(b *testing.B) {
	topo, err := topology.NewBuilder().
		AddOperator("A", 50, 10).
		AddOperator("B", 40, 0).
		AddOperator("C", 60, 0).
		AddOperator("D", 45, 4).
		AddOperator("E", 55, 0).
		Connect("A", "B", 0.6).
		Connect("A", "C", 0.4).
		Connect("C", "E", 1).
		Connect("D", "E", 1).
		Connect("E", "A", 0.5).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := topo.ArrivalRates(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimThroughput measures discrete-event simulation speed in
// simulated tuple-completions per benchmark op (1000 simulated seconds of
// the VLD pipeline).
func BenchmarkSimThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg, err := vld.SimConfig(vld.RecommendedAllocation(), uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		s, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		s.RunUntil(1000)
		if s.CompletedStats().Count() == 0 {
			b.Fatal("no completions")
		}
	}
}

// gateSpout emits its share of a fixed tuple budget as fast as possible
// once released, then idles until stopped. Instance i of k emits
// total/k (+1 for the first total%k instances), so the instances together
// emit exactly total tuples.
type gateSpout struct {
	total     int
	instances int
	instance  int
	batch     int // >0: emit via EmitBatch in chunks of this size
	gate      <-chan struct{}
}

func (s *gateSpout) Run(ctx engine.SpoutContext) error {
	select {
	case <-s.gate:
	case <-ctx.Done():
		return nil
	}
	n := s.total / s.instances
	if s.instance < s.total%s.instances {
		n++
	}
	payload := engine.Values{1}
	if s.batch > 0 {
		// Source micro-batching path: hand the engine chunks of tuples.
		chunk := make([]engine.Values, s.batch)
		for i := range chunk {
			chunk[i] = payload
		}
		for n > 0 {
			select {
			case <-ctx.Done():
				return nil
			default:
			}
			k := s.batch
			if k > n {
				k = n
			}
			ctx.EmitBatch(chunk[:k])
			n -= k
		}
		<-ctx.Done()
		return nil
	}
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			return nil
		default:
		}
		ctx.Emit(payload)
	}
	<-ctx.Done()
	return nil
}

// runEngineThroughput starts the topology, releases the spouts, and times
// the drain of exactly b.N external tuples: ns/op is the per-external-tuple
// cost of the full data plane (emit, route, enqueue, process, ack).
func runEngineThroughput(b *testing.B, topo *engine.Topology, cfg engine.RunConfig, gate chan struct{}) {
	b.Helper()
	run, err := topo.Start(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer run.Stop()
	b.ResetTimer()
	close(gate)
	deadline := time.Now().Add(2 * time.Minute)
	for {
		n, _ := run.Completions()
		if n >= int64(b.N) {
			break
		}
		if time.Now().After(deadline) {
			b.Fatalf("stalled: %d of %d tuples completed", n, b.N)
		}
		time.Sleep(20 * time.Microsecond) // poll off the hot path
	}
	b.StopTimer()
}

// BenchmarkEngineThroughput measures the live engine's data-plane rate on
// two shapes: a minimal spout->bolt pipe (queue + ack overhead dominates)
// and a VLD-shaped 3-stage pipeline with fan-out (routing + tree overhead).
// ns/op is per external tuple.
func BenchmarkEngineThroughput(b *testing.B) {
	noop := func(int) engine.Bolt {
		return engine.BoltFunc(func(engine.Tuple, engine.Emit) error { return nil })
	}
	b.Run("single-bolt", func(b *testing.B) {
		gate := make(chan struct{})
		const spouts = 4
		topo, err := engine.NewTopology().
			Spout("src", spouts, func(i int) engine.Spout {
				return &gateSpout{total: b.N, instances: spouts, instance: i, gate: gate}
			}).
			Bolt("sink", 8, noop).
			Shuffle("src", "sink").
			Build()
		if err != nil {
			b.Fatal(err)
		}
		runEngineThroughput(b, topo, engine.RunConfig{Alloc: map[string]int{"sink": 4}}, gate)
	})
	b.Run("single-bolt-traced", func(b *testing.B) {
		// The tracing-enabled, sampled-out twin: a tracer is wired into the
		// run but every root's trace id is zero, so the hot loop pays only
		// the per-tuple `tree.trace != 0` check. EXPERIMENTS.md's cost-of-
		// being-traced table pairs this with the bare single-bolt number;
		// the data plane must stay allocation-free per external tuple.
		tracer := obs.NewTracer(obs.TracerConfig{Shards: 4, ShardCapacity: 1 << 12})
		defer tracer.Close()
		gate := make(chan struct{})
		const spouts = 4
		topo, err := engine.NewTopology().
			Spout("src", spouts, func(i int) engine.Spout {
				return &gateSpout{total: b.N, instances: spouts, instance: i, gate: gate}
			}).
			Bolt("sink", 8, noop).
			Shuffle("src", "sink").
			Build()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		runEngineThroughput(b, topo,
			engine.RunConfig{Alloc: map[string]int{"sink": 4}, Tracer: tracer}, gate)
		if st := tracer.Stats(); st.Spans != 0 {
			b.Fatalf("sampled-out run emitted %d spans", st.Spans)
		}
	})
	b.Run("single-bolt-batch", func(b *testing.B) {
		gate := make(chan struct{})
		const spouts = 4
		topo, err := engine.NewTopology().
			Spout("src", spouts, func(i int) engine.Spout {
				return &gateSpout{total: b.N, instances: spouts, instance: i, batch: 64, gate: gate}
			}).
			Bolt("sink", 8, noop).
			Shuffle("src", "sink").
			Build()
		if err != nil {
			b.Fatal(err)
		}
		runEngineThroughput(b, topo, engine.RunConfig{Alloc: map[string]int{"sink": 4}}, gate)
	})
	b.Run("vld", func(b *testing.B) {
		gate := make(chan struct{})
		const spouts = 2
		fan := func(int) engine.Bolt {
			return engine.BoltFunc(func(t engine.Tuple, emit engine.Emit) error {
				emit(t.Values)
				emit(t.Values)
				return nil
			})
		}
		fwd := func(int) engine.Bolt {
			return engine.BoltFunc(func(t engine.Tuple, emit engine.Emit) error {
				emit(t.Values)
				return nil
			})
		}
		topo, err := engine.NewTopology().
			Spout("src", spouts, func(i int) engine.Spout {
				return &gateSpout{total: b.N, instances: spouts, instance: i, gate: gate}
			}).
			Bolt("extract", 16, fan).
			Bolt("match", 16, fwd).
			Bolt("aggregate", 4, noop).
			Shuffle("src", "extract").
			Shuffle("extract", "match").
			Fields("match", "aggregate", func(v engine.Values) uint64 { return uint64(v[0].(int)) }).
			Build()
		if err != nil {
			b.Fatal(err)
		}
		runEngineThroughput(b, topo,
			engine.RunConfig{Alloc: map[string]int{"extract": 10, "match": 11, "aggregate": 1}}, gate)
	})
}

func kmaxName(k int) string {
	const digits = "0123456789"
	if k == 0 {
		return "Kmax=0"
	}
	var buf [8]byte
	i := len(buf)
	for k > 0 {
		i--
		buf[i] = digits[k%10]
		k /= 10
	}
	return "Kmax=" + string(buf[i:])
}

// BenchmarkAblationBaseline compares full DRS-vs-threshold comparison runs
// (scaled down) — the cost of the policy study itself.
func BenchmarkAblationBaseline(b *testing.B) {
	opts := experiments.Options{Duration: 240, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunBaseline(experiments.VLD, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTarget is a steady-state supervisor target: a fixed interval report
// and an allocation that accepts whatever the loop applies.
type benchTarget struct {
	alloc map[string]int
	rep   metrics.IntervalReport
}

func (t *benchTarget) DrainInterval() metrics.IntervalReport { return t.rep }
func (t *benchTarget) Allocation() map[string]int            { return t.alloc }
func (t *benchTarget) Rebalance(alloc map[string]int, _ time.Duration) error {
	for k, v := range alloc {
		t.alloc[k] = v
	}
	return nil
}

// BenchmarkSupervisorTick measures one full control round of the closed
// loop (DESIGN.md §6): measurer ingest, snapshot, model build, Algorithm 1
// solve, and the hold/apply verdict — the per-Tm cost a live deployment
// pays.
func BenchmarkSupervisorTick(b *testing.B) {
	names := []string{"extract", "match", "aggregate"}
	target := &benchTarget{
		alloc: map[string]int{"extract": 10, "match": 11, "aggregate": 1},
		rep: metrics.IntervalReport{
			Duration:         10 * time.Second,
			ExternalArrivals: 130,
			Ops: []metrics.OpInterval{
				{Arrivals: 130, Served: 130, Sampled: 130, BusyTime: time.Duration(130 * 0.45 * float64(time.Second))},
				{Arrivals: 130, Served: 130, Sampled: 130, BusyTime: time.Duration(130 * 0.50 * float64(time.Second))},
				{Arrivals: 130, Served: 130, Sampled: 130, BusyTime: time.Duration(130 * 0.01 * float64(time.Second))},
			},
			SojournCount: 120,
			SojournTotal: 120 * time.Second,
		},
	}
	ctrl, err := core.NewController(core.ControllerConfig{Mode: core.ModeMinLatency, Kmax: 22, MinGain: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	sup, err := loop.New(loop.Config{
		Target:    target,
		Operators: names,
		Stepper:   ctrl,
		Pool:      loop.FixedPool(22),
		Interval:  10 * time.Second,
		Cooldown:  time.Nanosecond, // decide every round: measure the full path
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sup.Tick()
	}
}

// BenchmarkSchedulerArbitration measures one multi-tenant arbitration: an
// 8-tenant contended Resize that re-runs the floors + weighted max-min
// water-fill + preemption overlay over a 64-slot pool — the per-request
// cost of the cluster scheduler's decision path.
func BenchmarkSchedulerArbitration(b *testing.B) {
	pool, err := cluster.NewPool(cluster.PoolConfig{SlotsPerMachine: 8, MaxMachines: 8}, 1)
	if err != nil {
		b.Fatal(err)
	}
	sched, err := cluster.NewScheduler(cluster.SchedulerConfig{Pool: pool})
	if err != nil {
		b.Fatal(err)
	}
	tenants := make([]*cluster.Tenant, 8)
	for i := range tenants {
		t, err := sched.Register(cluster.TenantConfig{
			Name:     string(rune('a' + i)),
			Weight:   float64(i%3 + 1),
			Priority: i % 2,
			MinSlots: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		t.Report(cluster.TenantReport{
			Lambda0:     10,
			Violating:   i%2 == 1,
			GrowBenefit: float64(i),
			ShrinkCost:  0.5,
		})
		tenants[i] = t
	}
	// Oversubscribe: total demand 8×12 = 96 over 64 slots, so every
	// arbitration exercises the contended path end to end.
	for _, t := range tenants {
		if _, err := t.Resize(12); err != nil && !errors.Is(err, cluster.ErrNoCapacity) {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tenants[i%len(tenants)].Resize(12 + i%2); err != nil && !errors.Is(err, cluster.ErrNoCapacity) {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerFailover measures arbitration latency on a degraded
// pool: the same 8-tenant contended Resize as BenchmarkSchedulerArbitration
// but with one machine down — the failure-domain hot path (floors clipped
// by the lost capacity, water-fill over the survivors, placement rebuilt
// around the dead machine) that every post-crash re-arbitration runs.
func BenchmarkSchedulerFailover(b *testing.B) {
	pool, err := cluster.NewPool(cluster.PoolConfig{SlotsPerMachine: 8, MaxMachines: 8}, 1)
	if err != nil {
		b.Fatal(err)
	}
	sched, err := cluster.NewScheduler(cluster.SchedulerConfig{Pool: pool})
	if err != nil {
		b.Fatal(err)
	}
	tenants := make([]*cluster.Tenant, 8)
	for i := range tenants {
		t, err := sched.Register(cluster.TenantConfig{
			Name:     string(rune('a' + i)),
			Weight:   float64(i%3 + 1),
			Priority: i % 2,
			MinSlots: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		t.Report(cluster.TenantReport{
			Lambda0:     10,
			Violating:   i%2 == 1,
			GrowBenefit: float64(i),
			ShrinkCost:  0.5,
		})
		tenants[i] = t
	}
	for _, t := range tenants {
		if _, err := t.Resize(12); err != nil && !errors.Is(err, cluster.ErrNoCapacity) {
			b.Fatal(err)
		}
	}
	// Take one machine down: every arbitration below re-runs against the
	// shrunken live capacity (56 slots for 96 demanded).
	live := pool.LiveMachines()
	if err := sched.FailMachine(live[len(live)-1].ID); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tenants[i%len(tenants)].Resize(12 + i%2); err != nil && !errors.Is(err, cluster.ErrNoCapacity) {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngest measures the network front door's hot path. "admit" is
// the decode → admit → ring fast path alone — token-bucket check, cluster
// thinning verdict, bounded-ring push, plus the consumer's batched drain —
// which must stay at 0 allocs/op in steady state. "front-door" runs the
// same records through the full bridge: gate → ring → NetworkSpout →
// EmitBatch → executor, ns/op per admitted tuple.
func BenchmarkIngest(b *testing.B) {
	payload := engine.Values{[]byte("record")}
	b.Run("admit", func(b *testing.B) {
		g := ingest.NewGate(ingest.GateConfig{RingCapacity: 1 << 12})
		c := g.Client("bench", 1, 0, 0)
		done := make(chan struct{})
		buf := make([]engine.Values, 0, 1<<12)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if v := c.Offer(payload); !v.Admitted {
				b.Fatalf("offer %d refused: %+v", i, v)
			}
			if i&(1<<11-1) == 1<<11-1 { // drain half-full, one lock round
				g.Ring().PopBatch(done, buf)
			}
		}
	})
	b.Run("admit-logged", func(b *testing.B) {
		// The same fast path with the decision log enabled: shed plans are
		// emitted at Replan granularity, never per record, so this must
		// match "admit" — the observability-cost table holds the receipt.
		dlog := obs.NewLog(obs.Config{})
		defer dlog.Close()
		g := ingest.NewGate(ingest.GateConfig{RingCapacity: 1 << 12, DecisionLog: dlog})
		c := g.Client("bench", 1, 0, 0)
		done := make(chan struct{})
		buf := make([]engine.Values, 0, 1<<12)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if v := c.Offer(payload); !v.Admitted {
				b.Fatalf("offer %d refused: %+v", i, v)
			}
			if i&(1<<11-1) == 1<<11-1 { // drain half-full, one lock round
				g.Ring().PopBatch(done, buf)
			}
		}
	})
	b.Run("admit-traced", func(b *testing.B) {
		// The same fast path with a tracer wired at a production sampling
		// rate (10‰): every admit pays the deterministic sampling hash, one
		// in a hundred also stamps a gate span. The sampled-out majority
		// reads no clock and allocates nothing, so this must sit within a
		// few ns of the bare "admit" number.
		tracer := obs.NewTracer(obs.TracerConfig{
			Shards: 4, ShardCapacity: 1 << 14, SamplePermille: 10,
			Sink:       discardSink{},
			FlushEvery: 200 * time.Microsecond,
		})
		defer tracer.Close()
		g := ingest.NewGate(ingest.GateConfig{RingCapacity: 1 << 12, Tracer: tracer})
		c := g.Client("bench", 1, 0, 0)
		done := make(chan struct{})
		buf := make([]engine.Values, 0, 1<<12)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if v := c.Offer(payload); !v.Admitted {
				b.Fatalf("offer %d refused: %+v", i, v)
			}
			if i&(1<<11-1) == 1<<11-1 { // drain half-full, one lock round
				g.Ring().PopBatch(done, buf)
			}
		}
		b.StopTimer()
		if st := tracer.Stats(); st.Dropped != 0 {
			b.Fatalf("tracer rings overflowed: %d dropped", st.Dropped)
		}
	})
	b.Run("admit-ratelimited", func(b *testing.B) {
		// The same path with a live token bucket (never empty): adds the
		// clock read and the bucket mutex.
		g := ingest.NewGate(ingest.GateConfig{RingCapacity: 1 << 12})
		c := g.Client("bench", 1, 1e12, 1<<30)
		done := make(chan struct{})
		buf := make([]engine.Values, 0, 1<<12)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if v := c.Offer(payload); !v.Admitted {
				b.Fatalf("offer %d refused: %+v", i, v)
			}
			if i&(1<<11-1) == 1<<11-1 {
				g.Ring().PopBatch(done, buf)
			}
		}
	})
	b.Run("front-door", func(b *testing.B) {
		g := ingest.NewGate(ingest.GateConfig{RingCapacity: 1 << 12})
		c := g.Client("bench", 1, 0, 0)
		topo, err := engine.NewTopology().
			Spout("front", 1, func(int) engine.Spout {
				return &engine.NetworkSpout{Source: g.Ring(), MaxBatch: 256}
			}).
			Bolt("sink", 8, func(int) engine.Bolt {
				return engine.BoltFunc(func(engine.Tuple, engine.Emit) error { return nil })
			}).
			Shuffle("front", "sink").
			Build()
		if err != nil {
			b.Fatal(err)
		}
		run, err := topo.Start(engine.RunConfig{Alloc: map[string]int{"sink": 4}})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for {
				if v := c.Offer(payload); v.Admitted {
					break
				}
				// Bounded-ring backpressure: the consumer is behind; yield.
				runtime.Gosched()
			}
		}
		for {
			n, _ := run.Completions()
			if n >= int64(b.N) {
				break
			}
			runtime.Gosched()
		}
		b.StopTimer()
		g.Close()
		if err := run.Stop(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkBucketShard is the millions-of-users ingest profile: ≥1e6
// distinct client token buckets behind the per-core-sharded registry
// (ingest/shard.go). "resolve-cold" is the worst case — uniform lookups
// sprayed across the full id space, every probe a cache miss chain.
// "admit" is the realistic profile and the headline number: Zipf-skewed
// traffic (millions registered, a hot set doing most of the talking)
// through the full request path — resolve id, token-bucket check,
// thinning verdict, ring push — with a drainer keeping the ring open.
// scripts/bench.sh records the numbers in BENCH_<n>.json; the admit
// target is ≤150 ns/admit.
func BenchmarkBucketShard(b *testing.B) {
	const nClients = 1 << 20 // 1,048,576 distinct buckets
	ids := make([]string, nClients)
	for i := range ids {
		ids[i] = "c" + kmaxName(i)[5:] // cheap unique id, no fmt
	}
	g := ingest.NewGate(ingest.GateConfig{RingCapacity: 1 << 16})
	defer g.Close()
	var wg sync.WaitGroup
	stripes := runtime.GOMAXPROCS(0)
	for s := 0; s < stripes; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := s; i < nClients; i += stripes {
				g.Client(ids[i], 1, 0, 0)
			}
		}(s)
	}
	wg.Wait()
	// Pre-drawn Zipf(1.3) indices over the id space — the usual
	// multi-tenant skew: a hot set does most of the talking while the
	// long tail stays registered. The draw itself is off the clock, and
	// cycling a fixed table keeps runs comparable.
	zipfIdx := make([]uint32, 1<<16)
	z := stats.NewZipf(stats.NewRNG(7), 1.3, nClients)
	for i := range zipfIdx {
		zipfIdx[i] = uint32(z.Next())
	}

	b.Run("resolve-cold", func(b *testing.B) {
		b.ReportAllocs()
		var ctr atomic.Uint64
		b.RunParallel(func(pb *testing.PB) {
			// Each goroutine walks the id space from its own offset with a
			// large odd stride, so lookups spray across every shard.
			i := ctr.Add(1) * 7919
			for pb.Next() {
				if c := g.Client(ids[i&(nClients-1)], 1, 0, 0); c == nil {
					b.Fail()
				}
				i += 7919
			}
		})
	})

	b.Run("admit", func(b *testing.B) {
		// Inline batched drain (the BenchmarkIngest idiom): the consumer
		// cost is amortized on the clock, and no offer ever meets a full
		// ring, so ns/op is the pure admission path.
		done := make(chan struct{})
		buf := make([]engine.Values, 0, 1<<15)
		payload := engine.Values{1}
		for g.Ring().Len() > 0 { // leftovers from the previous calibration run
			g.Ring().PopBatch(done, buf)
		}
		before := g.Stats()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := g.Client(ids[zipfIdx[i&(1<<16-1)]], 1, 0, 0)
			if v := c.Offer(payload); !v.Admitted {
				b.Fatalf("offer %d refused: %+v", i, v)
			}
			if i&(1<<15-1) == 1<<15-1 { // drain half-full, one lock round
				g.Ring().PopBatch(done, buf)
			}
		}
		b.StopTimer()
		st := g.Stats()
		if st.Admitted-before.Admitted < int64(b.N) {
			b.Fatal("admitted count mismatch")
		}
	})
}

// BenchmarkWALAppend measures the durable admission hot path: one
// record's amortized cost through the group-commit WAL at batch 64 —
// framing, CRC-32C, staging and the shared write(2) every admit ACK
// waits behind. ns/op is per record, not per batch.
func BenchmarkWALAppend(b *testing.B) {
	l, _, err := wal.Open(wal.Options{
		Dir:          b.TempDir(),
		SegmentBytes: 1 << 30, // no rotation inside the measurement
		SyncEvery:    10 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	const batch = 64
	payload := []byte("0123456789abcdef0123456789abcdef") // a 32-byte record
	recs := make([][]byte, batch)
	for i := range recs {
		recs[i] = payload
	}
	seq := uint64(0)
	// The append path itself is allocation-free; collect the garbage earlier
	// benchmarks in the same process left behind so their GC debt does not
	// bill the measurement.
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		if err := l.AppendBatch(seq+1, recs); err != nil {
			b.Fatal(err)
		}
		seq += batch
	}
}

// BenchmarkDecisionLog measures the decision log's emit path — the cost a
// decider pays per record. "emit" is the kept-record path (copy into a
// ring slot under a shard mutex) with the drain amortized on the clock;
// "emit-sampled" runs the 100-permille knob, the mixed kept/thinned
// profile of a sampled deployment; "encode" is the drainer's canonical
// NDJSON encoding of one full preemption record.
func BenchmarkDecisionLog(b *testing.B) {
	rec := obs.Record{
		Kind: obs.KindPreempt, Tenant: "gold", Peer: "bronze",
		From: 7, To: 6, Gain: 0.42, Loss: 0.17, Lambda0: 130, PeerLambda0: 80,
		PauseNS: int64(3 * time.Second), Flag: true, Detail: "floor 4",
	}
	drop := func(*obs.Record) {}
	b.Run("emit", func(b *testing.B) {
		l := obs.NewLog(obs.Config{Shards: 4, ShardCapacity: 4096})
		defer l.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.Emit(&rec)
			if i&2047 == 2047 { // drain well before overflow, on the clock
				l.Sweep(drop)
			}
		}
		if st := l.Stats(); st.Dropped != 0 {
			b.Fatalf("ring overflowed: %d dropped", st.Dropped)
		}
	})
	b.Run("emit-sampled", func(b *testing.B) {
		l := obs.NewLog(obs.Config{Shards: 4, ShardCapacity: 4096, SamplePermille: 100})
		defer l.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.Emit(&rec)
			if i&8191 == 8191 {
				l.Sweep(drop)
			}
		}
		if st := l.Stats(); st.Dropped != 0 {
			b.Fatalf("ring overflowed: %d dropped", st.Dropped)
		}
	})
	b.Run("encode", func(b *testing.B) {
		buf := make([]byte, 0, 512)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = obs.AppendRecord(buf[:0], &rec)
		}
		if len(buf) == 0 {
			b.Fatal("empty encoding")
		}
	})
}

// BenchmarkTraceSpan measures the tracer's per-span hot path — what a
// sampled-in tuple pays at each hop. "emit" is the copy-in of one span
// into a per-shard ring (the drainer drains on its own clock); "sample"
// is the deterministic per-root sampling decision every admit pays,
// sampled-in or not; "encode" is the drainer-side canonical NDJSON
// encoding of one full hop span. The sampled-in stamp budget is ≤~150 ns
// and zero allocations.
// discardSink is a no-op trace sink: it keeps the tracer's drainer running
// (encode + sweep, off the emitters' critical path) without billing disk
// writes to the benchmark.
type discardSink struct{}

func (discardSink) Write([]byte) {}
func (discardSink) Close() error { return nil }

func BenchmarkTraceSpan(b *testing.B) {
	span := obs.SpanRecord{
		Seq: 12345, Trace: 67890, Kind: obs.SpanService,
		Bolt: "match", Tenant: "gold", Task: 7,
		StartNS: 1_723_000_000_000_000_000, DurNS: 184_250,
	}
	b.Run("emit", func(b *testing.B) {
		// A tight single-goroutine loop outruns any drainer by orders of
		// magnitude (no sampled workload stamps spans back to back), so the
		// bench swaps in a fresh tracer before the rings can fill: every
		// measured emit is a successful copy-in, never the cheaper drop.
		newTracer := func() *obs.Tracer {
			return obs.NewTracer(obs.TracerConfig{Shards: 4, ShardCapacity: 1 << 15})
		}
		const window = 100_000 // < 4 shards x 32768 slots: no ring fills
		tracer := newTracer()
		emitted := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if emitted == window {
				b.StopTimer()
				if st := tracer.Stats(); st.Dropped != 0 {
					b.Fatalf("dropped %d spans inside the window", st.Dropped)
				}
				if err := tracer.Close(); err != nil {
					b.Fatal(err)
				}
				tracer = newTracer()
				emitted = 0
				b.StartTimer()
			}
			tracer.EmitSpan(&span)
			emitted++
		}
		b.StopTimer()
		if st := tracer.Stats(); st.Dropped != 0 {
			b.Fatalf("dropped %d spans inside the window", st.Dropped)
		}
		if err := tracer.Close(); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("sample", func(b *testing.B) {
		tracer := obs.NewTracer(obs.TracerConfig{SamplePermille: 10})
		defer tracer.Close()
		hits := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if tracer.SampleTrace(uint64(i) + 1) {
				hits++
			}
		}
		b.StopTimer()
		if b.N > 10000 && (hits < b.N/1000 || hits > b.N/10) {
			b.Fatalf("10-permille sampling hit %d of %d", hits, b.N)
		}
	})
	b.Run("encode", func(b *testing.B) {
		buf := make([]byte, 0, 256)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = obs.AppendSpan(buf[:0], &span)
		}
		if len(buf) == 0 {
			b.Fatal("empty encoding")
		}
	})
}

// BenchmarkMetricsScrape measures one full /metrics exposition render over
// a serve-sized registry: ~30 live-read series (gate, engine, per-bolt,
// WAL, worker, lease families) plus two populated histograms — the cost a
// Prometheus scrape interval charges the daemon.
func BenchmarkMetricsScrape(b *testing.B) {
	reg := obs.NewRegistry()
	var ctr atomic.Int64
	read := func() float64 { return float64(ctr.Load()) }
	families := []string{
		"drs_gate_offered_total", "drs_gate_admitted_total",
		"drs_engine_roots_started_total", "drs_engine_roots_completed_total",
		"drs_engine_sojourn_seconds_total", "drs_engine_executor_failures_total",
		"drs_engine_replayed_total", "drs_loop_rounds_total",
		"drs_wal_tail_seq", "drs_wal_watermark",
		"drs_worker_joins_total", "drs_worker_deaths_total",
		"drs_decision_log_offered_total", "drs_decision_log_dropped_total",
	}
	for _, name := range families {
		reg.Func(name, "bench series", obs.Counter, "", read)
	}
	bolts := []string{"extract", "transform", "match", "rank", "aggregate", "sink"}
	for _, bolt := range bolts {
		reg.Func("drs_engine_bolt_arrivals_total", "bench series", obs.Counter, `bolt="`+bolt+`"`, read)
		reg.Func("drs_engine_bolt_served_total", "bench series", obs.Counter, `bolt="`+bolt+`"`, read)
	}
	reg.Func("drs_gate_shed_total", "bench series", obs.Counter, `reason="rate-limit"`, read)
	reg.Func("drs_gate_shed_total", "bench series", obs.Counter, `reason="overload"`, read)
	reg.Func("drs_gate_shed_total", "bench series", obs.Counter, `reason="backlog"`, read)
	soj := reg.Histogram("drs_tenant_sojourn_seconds", "bench histogram",
		[]float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}, `tenant="bench"`)
	frac := reg.Histogram("drs_tenant_shed_fraction", "bench histogram",
		[]float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9}, `tenant="bench"`)
	for i := 0; i < 10000; i++ {
		soj.Observe(float64(i%997) / 400)
		frac.Observe(float64(i%89) / 100)
	}
	buf := make([]byte, 0, 1<<15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctr.Add(1) // counters move between scrapes, as in production
		buf = reg.Write(buf[:0])
	}
	b.StopTimer()
	if len(buf) == 0 {
		b.Fatal("empty exposition")
	}
}

// BenchmarkSupervisorTickLogged is BenchmarkSupervisorTick with the full
// observability stack attached — decision log wired, per-tenant sojourn
// and shed-fraction histograms observed every round. EXPERIMENTS.md's
// observability-cost table pairs this with the bare run; the delta is the
// price of an auditable control plane (steady-state holds emit nothing,
// so it must stay near zero).
func BenchmarkSupervisorTickLogged(b *testing.B) {
	names := []string{"extract", "match", "aggregate"}
	target := &benchTarget{
		alloc: map[string]int{"extract": 10, "match": 11, "aggregate": 1},
		rep: metrics.IntervalReport{
			Duration:         10 * time.Second,
			ExternalArrivals: 130,
			Ops: []metrics.OpInterval{
				{Arrivals: 130, Served: 130, Sampled: 130, BusyTime: time.Duration(130 * 0.45 * float64(time.Second))},
				{Arrivals: 130, Served: 130, Sampled: 130, BusyTime: time.Duration(130 * 0.50 * float64(time.Second))},
				{Arrivals: 130, Served: 130, Sampled: 130, BusyTime: time.Duration(130 * 0.01 * float64(time.Second))},
			},
			SojournCount: 120,
			SojournTotal: 120 * time.Second,
		},
	}
	ctrl, err := core.NewController(core.ControllerConfig{Mode: core.ModeMinLatency, Kmax: 22, MinGain: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	dlog := obs.NewLog(obs.Config{})
	defer dlog.Close()
	reg := obs.NewRegistry()
	sup, err := loop.New(loop.Config{
		Target:      target,
		Operators:   names,
		Stepper:     ctrl,
		Pool:        loop.FixedPool(22),
		Interval:    10 * time.Second,
		Cooldown:    time.Nanosecond, // decide every round: measure the full path
		Tenant:      "bench",
		DecisionLog: dlog,
		Sojourn:     reg.Histogram("soj", "bench", []float64{0.1, 1}, `tenant="bench"`),
		ShedFrac:    reg.Histogram("shed", "bench", []float64{0.1, 0.5}, `tenant="bench"`),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sup.Tick()
	}
}

// BenchmarkSchedulerArbitrationLogged is BenchmarkSchedulerArbitration
// with the decision log wired: every grant change, preemption (with its
// Appendix-B verdict inputs) and shrink now emits a record, drained on
// the clock. The delta over the bare run is what audit costs the
// arbitration path.
func BenchmarkSchedulerArbitrationLogged(b *testing.B) {
	dlog := obs.NewLog(obs.Config{Shards: 4, ShardCapacity: 8192})
	defer dlog.Close()
	pool, err := cluster.NewPool(cluster.PoolConfig{SlotsPerMachine: 8, MaxMachines: 8}, 1)
	if err != nil {
		b.Fatal(err)
	}
	sched, err := cluster.NewScheduler(cluster.SchedulerConfig{Pool: pool, DecisionLog: dlog})
	if err != nil {
		b.Fatal(err)
	}
	tenants := make([]*cluster.Tenant, 8)
	for i := range tenants {
		t, err := sched.Register(cluster.TenantConfig{
			Name:     string(rune('a' + i)),
			Weight:   float64(i%3 + 1),
			Priority: i % 2,
			MinSlots: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		t.Report(cluster.TenantReport{
			Lambda0:     10,
			Violating:   i%2 == 1,
			GrowBenefit: float64(i),
			ShrinkCost:  0.5,
		})
		tenants[i] = t
	}
	for _, t := range tenants {
		if _, err := t.Resize(12); err != nil && !errors.Is(err, cluster.ErrNoCapacity) {
			b.Fatal(err)
		}
	}
	drop := func(*obs.Record) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tenants[i%len(tenants)].Resize(12 + i%2); err != nil && !errors.Is(err, cluster.ErrNoCapacity) {
			b.Fatal(err)
		}
		if i&511 == 511 { // drain well before overflow, on the clock
			dlog.Sweep(drop)
		}
	}
	b.StopTimer()
	if st := dlog.Stats(); st.Dropped != 0 {
		b.Fatalf("ring overflowed: %d dropped", st.Dropped)
	}
}
