// Command drsctl applies the DRS model to a user-supplied topology
// description: it estimates sojourn times, recommends allocations under a
// processor budget (Program (4)) or a latency target (Program (6)), can
// validate a recommendation with a discrete-event simulation, can run the
// topology live under the DRS Supervisor — the closed §IV control loop:
// measure, re-solve, rebalance — can run *several* topologies on one
// shared machine pool under the cluster Scheduler (multi-tenant
// arbitration with weighted max-min fairness and preemption), and can
// `serve` the topology behind the network ingest front end — HTTP/TCP
// clients in, model-driven admission control and explicit backpressure at
// the door, scale-out against the offered (pre-shed) arrival rate.
//
// Usage:
//
//	drsctl -topology topo.json model -alloc 10,11,1
//	drsctl -topology topo.json recommend -kmax 22
//	drsctl -topology topo.json recommend -tmax-ms 500
//	drsctl -topology topo.json simulate -alloc 10,11,1 -duration 600
//	drsctl -topology topo.json supervise -tmax-ms 500 -duration 30
//	drsctl -topology topo.json supervise -kmax 8 -duration 30
//	drsctl -topology topo.json serve -tmax-ms 500 -http 127.0.0.1:8080 -duration 60
//	drsctl -topology topo.json serve -tmax-ms 500 -worker-listen 127.0.0.1:9090 -min-workers 2 ...
//	drsctl -topology topo.json worker -connect 127.0.0.1:9090
//	drsctl schedule -topologies api.json,batch.json -tmax-ms 500,900 -duration 30
//
// The topology file format:
//
//	{
//	  "operators": [
//	    {"name": "extract", "service_rate": 2.22, "external_rate": 13}
//	  ],
//	  "edges": [
//	    {"from": "extract", "to": "match", "selectivity": 1.0}
//	  ]
//	}
//
// service_rate is µ_i (tuples/sec per processor); external_rate is the
// operator's share of λ0. Loops are allowed (and solved) as long as the
// cycle gain is below one.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	drs "github.com/drs-repro/drs"
	"github.com/drs-repro/drs/internal/queueing"
	"github.com/drs-repro/drs/internal/sim"
	"github.com/drs-repro/drs/internal/stats"
	"github.com/drs-repro/drs/internal/topology"
)

// topoFile is the JSON schema of -topology (fuzz-hardened in the topology
// package, shared with everything else that reads the format).
type topoFile = topology.File

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "drsctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("drsctl", flag.ContinueOnError)
	topoPath := fs.String("topology", "", "path to the topology JSON file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// schedule arbitrates several topologies and takes its own -topologies
	// list instead of the shared -topology flag.
	if fs.NArg() >= 1 && fs.Arg(0) == "schedule" {
		return cmdSchedule(fs.Args()[1:])
	}
	if *topoPath == "" {
		return fmt.Errorf("-topology is required")
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("need a subcommand: model, recommend, simulate, supervise, serve, worker, quantile or schedule")
	}
	topo, tf, err := loadTopology(*topoPath)
	if err != nil {
		return err
	}
	model, err := drs.NewModelFromTopology(topo)
	if err != nil {
		return err
	}
	sub := fs.Arg(0)
	rest := fs.Args()[1:]
	switch sub {
	case "model":
		return cmdModel(model, rest)
	case "recommend":
		return cmdRecommend(model, rest)
	case "simulate":
		return cmdSimulate(model, topo, tf, rest)
	case "supervise":
		return cmdSupervise(tf, rest)
	case "serve":
		return cmdServe(tf, rest)
	case "worker":
		return cmdWorker(tf, rest)
	case "quantile":
		return cmdQuantile(model, rest)
	default:
		return fmt.Errorf("unknown subcommand %q", sub)
	}
}

// cmdQuantile sizes each operator for a per-operator sojourn quantile
// target — the "99% of tuples within t" reading of a real-time constraint
// (an extension; the paper's Program (6) bounds the mean).
func cmdQuantile(model *drs.Model, args []string) error {
	fs := flag.NewFlagSet("quantile", flag.ContinueOnError)
	q := fs.Float64("q", 0.99, "quantile in (0,1)")
	targetMS := fs.Float64("target-ms", 0, "per-operator sojourn quantile target in ms (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *targetMS <= 0 {
		return fmt.Errorf("-target-ms is required and must be positive")
	}
	target := *targetMS / 1e3
	fmt.Printf("%-16s %6s %22s\n", "operator", "k", fmt.Sprintf("P%.0f sojourn (ms)", *q*100))
	total := 0
	for _, op := range model.Rates() {
		k, err := queueing.MinServersForQuantile(op.Lambda, op.Mu, target, *q)
		if err != nil {
			return fmt.Errorf("operator %s: %w", op.Name, err)
		}
		total += k
		fmt.Printf("%-16s %6d %22.2f\n", op.Name, k, queueing.SojournQuantile(op.Lambda, op.Mu, k, *q)*1e3)
	}
	fmt.Printf("total processors: %d\n", total)
	return nil
}

func loadTopology(path string) (*drs.Topology, topoFile, error) {
	return topology.Load(path)
}

func parseAlloc(s string, n int) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("-alloc is required (e.g. -alloc 10,11,1)")
	}
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("allocation has %d entries, topology has %d operators", len(parts), n)
	}
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad allocation entry %q: %w", p, err)
		}
		out[i] = v
	}
	return out, nil
}

func cmdModel(model *drs.Model, args []string) error {
	fs := flag.NewFlagSet("model", flag.ContinueOnError)
	allocStr := fs.String("alloc", "", "comma-separated processors per operator")
	if err := fs.Parse(args); err != nil {
		return err
	}
	alloc, err := parseAlloc(*allocStr, model.N())
	if err != nil {
		return err
	}
	fmt.Printf("lambda0 = %.3f tuples/s\n", model.Lambda0())
	fmt.Printf("%-16s %12s %12s %6s %14s\n", "operator", "lambda", "mu", "k", "E[Ti] (ms)")
	for i, op := range model.Rates() {
		fmt.Printf("%-16s %12.3f %12.3f %6d %14.2f\n",
			op.Name, op.Lambda, op.Mu, alloc[i], model.OperatorSojourn(i, alloc[i])*1e3)
	}
	est, err := model.ExpectedSojourn(alloc)
	if err != nil {
		return err
	}
	fmt.Printf("expected total sojourn E[T] = %.2f ms (lower bound %.2f ms)\n",
		est*1e3, model.LowerBound()*1e3)
	return nil
}

func cmdRecommend(model *drs.Model, args []string) error {
	fs := flag.NewFlagSet("recommend", flag.ContinueOnError)
	kmax := fs.Int("kmax", 0, "processor budget (Program (4))")
	tmaxMS := fs.Float64("tmax-ms", 0, "latency target in ms (Program (6))")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *kmax > 0 && *tmaxMS > 0:
		return fmt.Errorf("pass either -kmax or -tmax-ms, not both")
	case *kmax > 0:
		alloc, err := model.AssignProcessors(*kmax)
		if err != nil {
			return err
		}
		est, err := model.ExpectedSojourn(alloc)
		if err != nil {
			return err
		}
		fmt.Printf("AssignProcessors(%d) = %v, estimated E[T] = %.2f ms\n", *kmax, alloc, est*1e3)
	case *tmaxMS > 0:
		alloc, err := model.MinProcessors(*tmaxMS / 1e3)
		if err != nil {
			return err
		}
		est, err := model.ExpectedSojourn(alloc)
		if err != nil {
			return err
		}
		total := 0
		for _, k := range alloc {
			total += k
		}
		fmt.Printf("MinProcessors(%.0f ms) = %v (%d processors), estimated E[T] = %.2f ms\n",
			*tmaxMS, alloc, total, est*1e3)
	default:
		return fmt.Errorf("pass -kmax or -tmax-ms")
	}
	return nil
}

func cmdSimulate(model *drs.Model, topo *drs.Topology, tf topoFile, args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	allocStr := fs.String("alloc", "", "comma-separated processors per operator")
	duration := fs.Float64("duration", 600, "simulated seconds")
	seed := fs.Uint64("seed", 1, "simulation seed")
	hopMS := fs.Float64("hop-ms", 0, "per-hop network delay mean in ms (ignored by the model)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	alloc, err := parseAlloc(*allocStr, model.N())
	if err != nil {
		return err
	}
	cfg, err := simConfigFrom(topo, tf, alloc, *seed, *hopMS/1e3)
	if err != nil {
		return err
	}
	s, err := sim.New(cfg)
	if err != nil {
		return err
	}
	s.SetWarmup(*duration / 10)
	s.RunUntil(*duration)
	cs := s.CompletedStats()
	est, err := model.ExpectedSojourn(alloc)
	if err != nil {
		return err
	}
	fmt.Printf("simulated %d completions over %.0fs\n", cs.Count(), *duration)
	fmt.Printf("measured  E[T] = %.2f ms (stddev %.2f ms)\n", cs.Mean()*1e3, cs.StdDev()*1e3)
	fmt.Printf("estimated E[T] = %.2f ms (ratio %.2f)\n", est*1e3, cs.Mean()/est)
	return nil
}

// simConfigFrom builds an exponential-service DES matching the model's
// assumptions, from the same topology file.
func simConfigFrom(topo *drs.Topology, tf topoFile, alloc []int, seed uint64, hopDelay float64) (sim.Config, error) {
	cfg := sim.Config{Alloc: alloc, Seed: seed}
	index := make(map[string]int, len(tf.Operators))
	for i, op := range tf.Operators {
		index[op.Name] = i
		cfg.Operators = append(cfg.Operators, sim.OperatorSpec{
			Name:    op.Name,
			Service: stats.Exponential{Rate: op.ServiceRate},
		})
		if op.ExternalRate > 0 {
			cfg.Sources = append(cfg.Sources, sim.SourceSpec{
				Op:       i,
				Arrivals: sim.PoissonArrivals{Rate: op.ExternalRate},
			})
		}
	}
	var hop stats.Dist
	if hopDelay > 0 {
		hop = stats.Exponential{Rate: 1 / hopDelay}
	}
	for _, e := range tf.Edges {
		emit, err := sim.NewFractionalEmission(e.Selectivity)
		if err != nil {
			return sim.Config{}, err
		}
		cfg.Edges = append(cfg.Edges, sim.EdgeSpec{
			From: index[e.From], To: index[e.To], Emit: emit, NetDelay: hop,
		})
	}
	_ = topo
	return cfg, nil
}
