package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"
)

// scrapeFamily fetches a Prometheus exposition and returns the value of
// the first sample of one family (and whether the family appeared).
func scrapeFamily(t *testing.T, url, family string) (float64, bool) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("scrape %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape %s: %v", url, err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		// Exact family match: the next rune is a space or a label brace.
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("family %s has unparseable sample %q", family, line)
		}
		return v, true
	}
	return 0, false
}

// TestWorkerMetricsEndpoint boots a serve daemon with a worker tier plus
// one real worker daemon exposing -metrics, pushes traffic until the
// worker has processed shuttled batches, and asserts over two real
// scrapes that the worker families are present and monotonic.
func TestWorkerMetricsEndpoint(t *testing.T) {
	path := writeTopo(t, fastTopo)
	httpAddr := freeAddr(t)
	workerListen := freeAddr(t)
	metricsAddr := freeAddr(t)

	serveSig := make(chan os.Signal, 1)
	origServe := serveInterrupts
	serveInterrupts = func() <-chan os.Signal { return serveSig }
	defer func() { serveInterrupts = origServe }()
	workerSig := make(chan os.Signal, 1)
	origWorker := workerInterrupts
	workerInterrupts = func() <-chan os.Signal { return workerSig }
	defer func() { workerInterrupts = origWorker }()

	serveErr := make(chan error, 1)
	go func() {
		serveErr <- run([]string{"-topology", path, "serve",
			"-tmax-ms", "200", "-duration", "300", "-interval-ms", "100",
			"-http", httpAddr, "-worker-listen", workerListen, "-min-workers", "1"})
	}()
	workerErr := make(chan error, 1)
	go func() {
		workerErr <- run([]string{"-topology", path, "worker",
			"-connect", workerListen, "-metrics", metricsAddr, "-retry-for", "30"})
	}()

	metricsURL := "http://" + metricsAddr + "/metrics"
	ingestURL := "http://" + httpAddr + "/ingest"
	deadline := time.Now().Add(30 * time.Second)

	// First scrape: wait for the worker's endpoint, then for the gauge
	// families every worker exports from boot.
	var machine float64
	for {
		v, ok := scrapeFamilyQuiet(metricsURL, "drs_worker_machine")
		if ok {
			machine = v
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker /metrics endpoint never came up")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if machine < 1 {
		t.Fatalf("drs_worker_machine = %v, want a leased machine id >= 1", machine)
	}

	// Push traffic until the worker has hosted executors and processed
	// shuttled batches: the placement loop needs an interval or two.
	post := func(i int) {
		resp, err := http.Post(ingestURL, "application/octet-stream",
			strings.NewReader(fmt.Sprintf("rec-%d", i)))
		if err == nil {
			resp.Body.Close()
		}
	}
	var batches1, tuples1 float64
	for i := 0; ; i++ {
		post(i)
		b, okB := scrapeFamilyQuiet(metricsURL, "drs_worker_batches_total")
		u, okU := scrapeFamilyQuiet(metricsURL, "drs_worker_tuples_total")
		if okB && okU && b > 0 && u > 0 {
			batches1, tuples1 = b, u
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never processed a shuttled batch (batches=%v ok=%v tuples=%v ok=%v)", b, okB, u, okU)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if hosted, ok := scrapeFamily(t, metricsURL, "drs_worker_hosted_bolts"); !ok || hosted < 1 {
		t.Fatalf("drs_worker_hosted_bolts = %v (present=%v), want >= 1 once batches flowed", hosted, ok)
	}

	// Second scrape after more traffic: the counters are cumulative, so
	// they must not move backwards, and more records must advance tuples.
	for i := 0; ; i++ {
		post(1000 + i)
		u, ok := scrapeFamilyQuiet(metricsURL, "drs_worker_tuples_total")
		if ok && u > tuples1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drs_worker_tuples_total never advanced past the first scrape")
		}
		time.Sleep(50 * time.Millisecond)
	}
	batches2, ok := scrapeFamily(t, metricsURL, "drs_worker_batches_total")
	if !ok {
		t.Fatal("drs_worker_batches_total missing on the second scrape")
	}
	tuples2, ok := scrapeFamily(t, metricsURL, "drs_worker_tuples_total")
	if !ok {
		t.Fatal("drs_worker_tuples_total missing on the second scrape")
	}
	if batches2 < batches1 || tuples2 < tuples1 {
		t.Fatalf("counters moved backwards: batches %v -> %v, tuples %v -> %v",
			batches1, batches2, tuples1, tuples2)
	}

	// Orderly shutdown both daemons.
	workerSig <- os.Interrupt
	select {
	case err := <-workerErr:
		if err != nil {
			t.Fatalf("worker after signal returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker did not exit after the signal")
	}
	serveSig <- os.Interrupt
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serve after signal returned %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("serve did not drain and exit after the signal")
	}
}

// scrapeFamilyQuiet is scrapeFamily without the test failures, for use in
// wait loops where the endpoint may not be up yet.
func scrapeFamilyQuiet(url, family string) (float64, bool) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}
