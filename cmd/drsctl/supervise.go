package main

import (
	"flag"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"os"
	"time"

	drs "github.com/drs-repro/drs"
	"github.com/drs-repro/drs/internal/cluster"
	"github.com/drs-repro/drs/internal/engine"
	"github.com/drs-repro/drs/internal/loop"
)

// cmdSupervise materializes the topology file as a live engine run —
// Poisson spouts for the external rates, executors that busy an
// exponential service time per tuple, per-edge fractional forwarding —
// and puts the DRS Supervisor in charge of it for the requested duration.
// It is the closed §IV loop as a CLI: measure, re-solve, rebalance.
func cmdSupervise(tf topoFile, args []string) error {
	fs := flag.NewFlagSet("supervise", flag.ContinueOnError)
	kmax := fs.Int("kmax", 0, "fixed processor budget: supervise in min-latency mode (Program (4))")
	tmaxMS := fs.Float64("tmax-ms", 0, "latency target in ms: supervise in min-resource mode (Program (6))")
	duration := fs.Float64("duration", 30, "wall-clock seconds to run")
	intervalMS := fs.Int("interval-ms", 1000, "measurement cadence Tm in ms")
	allocStr := fs.String("alloc", "", "initial executors per operator (default 1 each)")
	tasks := fs.Int("tasks", 16, "tasks per operator (caps executor parallelism)")
	slots := fs.Int("slots", 4, "executor slots per machine (min-resource mode)")
	reserved := fs.Int("reserved-slots", 1, "slots reserved off the pool (min-resource mode)")
	maxMachines := fs.Int("max-machines", 8, "machine cap the negotiator may provision")
	seed := fs.Int64("seed", 1, "workload seed")
	verbose := fs.Bool("v", false, "log every loop event")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*kmax > 0) == (*tmaxMS > 0) {
		return fmt.Errorf("pass exactly one of -kmax or -tmax-ms")
	}

	initial := make([]int, len(tf.Operators))
	for i := range initial {
		initial[i] = 1
	}
	if *allocStr != "" {
		var err error
		if initial, err = parseAlloc(*allocStr, len(tf.Operators)); err != nil {
			return err
		}
	}

	// Tasks cap executor parallelism per operator, and the optimizer may
	// concentrate nearly the whole budget on one operator — a decision the
	// engine would then reject round after round until it is suppressed.
	// Grow the default to cover the worst case; an explicit -tasks below
	// the budget is a user error worth stopping on.
	maxBudget := *kmax
	if *tmaxMS > 0 {
		maxBudget = *slots**maxMachines - *reserved
	}
	tasksSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "tasks" {
			tasksSet = true
		}
	})
	if *tasks < maxBudget {
		if tasksSet {
			return fmt.Errorf("-tasks %d cannot absorb the %d-processor budget a decision may assign one operator; raise -tasks or shrink the pool", *tasks, maxBudget)
		}
		*tasks = maxBudget
	}

	run, names, err := startLiveTopology(tf, initial, *tasks, *seed)
	if err != nil {
		return err
	}
	defer run.Stop()

	var pool drs.SupervisorPool
	var ctrlCfg drs.ControllerConfig
	total := 0
	for _, k := range initial {
		total += k
	}
	if *kmax > 0 {
		if total > *kmax {
			return fmt.Errorf("initial allocation needs %d processors, budget is %d", total, *kmax)
		}
		pool = drs.FixedPool(*kmax)
		ctrlCfg = drs.ControllerConfig{Mode: drs.ModeMinLatency, Kmax: *kmax, MinGain: 0.05}
	} else {
		machines := (total + *reserved + *slots - 1) / *slots
		cp, err := cluster.NewPool(cluster.PoolConfig{
			SlotsPerMachine: *slots,
			ReservedSlots:   *reserved,
			MaxMachines:     *maxMachines,
			Costs: cluster.CostModel{
				Rebalance:        200 * time.Millisecond,
				MachineColdStart: 500 * time.Millisecond,
				MachineRelease:   200 * time.Millisecond,
			},
		}, machines)
		if err != nil {
			return err
		}
		pool = cp
		ctrlCfg = drs.ControllerConfig{
			Mode:                  drs.ModeMinResource,
			Tmax:                  *tmaxMS / 1e3,
			MinGain:               0.05,
			ScaleInSlack:          0.35,
			MaxScaleInUtilization: 0.9,
			SlotsPerMachine:       *slots,
			ReservedSlots:         *reserved,
		}
	}
	ctrl, err := drs.NewController(ctrlCfg)
	if err != nil {
		return err
	}
	level := slog.LevelWarn
	if *verbose {
		level = slog.LevelInfo
	}
	sup, err := drs.NewSupervisor(drs.SupervisorConfig{
		Target:    loop.EngineTarget(run),
		Operators: names,
		Stepper:   ctrl,
		Pool:      pool,
		Interval:  time.Duration(*intervalMS) * time.Millisecond,
		Logger:    slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})),
	})
	if err != nil {
		return err
	}
	fmt.Printf("supervising %d operators for %.0fs (Tm = %dms, %s), Kmax = %d, alloc = %v\n",
		len(names), *duration, *intervalMS, ctrlCfg.Mode, pool.Kmax(), initial)
	if err := sup.Start(); err != nil {
		return err
	}
	time.Sleep(secondsDuration(*duration))
	sup.Stop()

	fmt.Printf("\n%d control rounds, decision history:\n", sup.Rounds())
	events := sup.History()
	if len(events) == 0 {
		fmt.Println("  (none: the loop held steady every round)")
	}
	for _, ev := range events {
		fmt.Printf("  %s\n", ev)
	}
	if snap, ok := sup.LastSnapshot(); ok {
		fmt.Printf("\nfinal: lambda0 = %.2f tuples/s, measured E[T] = %.1f ms, Kmax = %d, alloc = %v\n",
			snap.Lambda0, snap.MeasuredSojourn*1e3, pool.Kmax(), run.Allocation())
	}
	return nil
}

// liveOperatorFactories builds the per-operator bolt factories the live
// commands share: each bolt busies an exponential service time per tuple
// and forwards on a named stream per edge so each edge applies its own
// selectivity independently. The factories are pure functions of (file,
// seed), which is the whole point — `drsctl worker` calls this with the
// seed from the coordinator's welcome and hosts instances bit-identical
// to the ones the serve process would have built in-process.
func liveOperatorFactories(tf topoFile, seed int64) map[string]engine.BoltFactory {
	type outEdge struct {
		stream      string
		selectivity float64
	}
	outs := make(map[string][]outEdge)
	for i, e := range tf.Edges {
		outs[e.From] = append(outs[e.From], outEdge{stream: fmt.Sprintf("e%d", i), selectivity: e.Selectivity})
	}
	factories := make(map[string]engine.BoltFactory, len(tf.Operators))
	for i, op := range tf.Operators {
		op := op
		edges := outs[op.Name]
		taskSeed := seed + int64(i)*1009
		factories[op.Name] = func(task int) engine.Bolt {
			rng := rand.New(rand.NewSource(taskSeed + int64(task)))
			return engine.BoltFunc(func(_ engine.Tuple, emit engine.Emit) error {
				time.Sleep(time.Duration(rng.ExpFloat64() / op.ServiceRate * float64(time.Second)))
				for _, e := range edges {
					n := int(math.Floor(e.selectivity))
					if rng.Float64() < e.selectivity-math.Floor(e.selectivity) {
						n++
					}
					to := emit.To(e.stream)
					for j := 0; j < n; j++ {
						to(engine.Values{0})
					}
				}
				return nil
			})
		}
	}
	return factories
}

// addLiveOperators declares the topology file's operators as live bolts
// (via liveOperatorFactories) plus the inter-operator edges. It returns
// the operator names in file order and the initial allocation map. Shared
// by `supervise` (which adds Poisson spouts for the external rates) and
// `serve` (which feeds the entry operator from the network ingest tier
// instead).
func addLiveOperators(b *engine.TopologyBuilder, tf topoFile, initial []int, tasks int, seed int64) ([]string, map[string]int) {
	factories := liveOperatorFactories(tf, seed)
	names := make([]string, len(tf.Operators))
	alloc := make(map[string]int, len(tf.Operators))
	for i, op := range tf.Operators {
		names[i] = op.Name
		alloc[op.Name] = initial[i]
		b.Bolt(op.Name, tasks, factories[op.Name])
	}
	for i, e := range tf.Edges {
		b.ShuffleOn(fmt.Sprintf("e%d", i), e.From, e.To)
	}
	return names, alloc
}

// startLiveTopology builds and starts the engine realization of the
// topology file: one Poisson spout per operator with an external rate plus
// the live bolts of addLiveOperators.
func startLiveTopology(tf topoFile, initial []int, tasks int, seed int64) (*engine.Run, []string, error) {
	b := engine.NewTopology()
	names, alloc := addLiveOperators(b, tf, initial, tasks, seed)
	for i, op := range tf.Operators {
		if op.ExternalRate > 0 {
			spoutName := "src-" + op.Name
			rate := op.ExternalRate
			spoutSeed := seed + int64(i)*7919
			b.Spout(spoutName, 1, func(int) engine.Spout {
				return &ratedSpout{rate: rate, seed: spoutSeed}
			})
			b.Shuffle(spoutName, op.Name)
		}
	}
	topo, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	run, err := topo.Start(engine.RunConfig{Alloc: alloc, QuiesceTimeout: 30 * time.Second})
	if err != nil {
		return nil, nil, err
	}
	return run, names, nil
}

// ratedSpout emits tuples with exponential inter-arrival times.
type ratedSpout struct {
	rate float64
	seed int64
}

func (s *ratedSpout) Run(ctx engine.SpoutContext) error {
	rng := rand.New(rand.NewSource(s.seed))
	for {
		wait := time.Duration(rng.ExpFloat64() / s.rate * float64(time.Second))
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(wait):
			if !ctx.Paused() {
				ctx.Emit(engine.Values{0})
			}
		}
	}
}

func secondsDuration(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}
