package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	drs "github.com/drs-repro/drs"
	"github.com/drs-repro/drs/internal/cluster"
	"github.com/drs-repro/drs/internal/loop"
)

// cmdSchedule runs several topology files live on ONE shared machine pool:
// each topology becomes a tenant of the cluster Scheduler, supervised by
// its own DRS control loop in min-resource mode, and the scheduler
// arbitrates slot grants among them — weighted max-min fairness over free
// capacity, preemption toward a violating higher-priority tenant when the
// pool is maxed out. It is the multi-tenant counterpart of `supervise`.
func cmdSchedule(args []string) error {
	fs := flag.NewFlagSet("schedule", flag.ContinueOnError)
	topos := fs.String("topologies", "", "comma-separated topology JSON files (required, >= 2)")
	tmaxMS := fs.String("tmax-ms", "500", "latency target(s) in ms: one value for all tenants, or one per topology")
	weights := fs.String("weights", "1", "max-min weight(s): one value or one per topology")
	priorities := fs.String("priorities", "", "preemption priorities: one value or one per topology (default: file order, first lowest)")
	minSlots := fs.String("min-slots", "", "preemption floor(s); default: one slot per operator")
	duration := fs.Float64("duration", 30, "wall-clock seconds to run")
	intervalMS := fs.Int("interval-ms", 1000, "measurement cadence Tm in ms")
	tasks := fs.Int("tasks", 0, "tasks per operator (default: the full pool budget)")
	slots := fs.Int("slots", 4, "executor slots per machine")
	maxMachines := fs.Int("max-machines", 8, "machine cap the negotiator may provision")
	seed := fs.Int64("seed", 1, "workload seed")
	failAfter := fs.Float64("fail-after", 0, "kill machines this many seconds into the run (0 disables)")
	failCount := fs.Int("fail-machines", 1, "how many machines to kill at -fail-after")
	failDown := fs.Float64("fail-down", 10, "outage length in seconds before the killed machines recover")
	replace := fs.Bool("replace-on-failure", false, "return crashed machines to the provider and negotiate replacements")
	verbose := fs.Bool("v", false, "log every loop event")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *topos == "" {
		return fmt.Errorf("-topologies is required (e.g. -topologies api.json,batch.json)")
	}
	paths := strings.Split(*topos, ",")
	n := len(paths)
	tmaxes, err := parseFloatList(*tmaxMS, n, "tmax-ms")
	if err != nil {
		return err
	}
	ws, err := parseFloatList(*weights, n, "weights")
	if err != nil {
		return err
	}
	prios := make([]int, n)
	for i := range prios {
		prios[i] = i
	}
	if *priorities != "" {
		if prios, err = parseIntList(*priorities, n, "priorities"); err != nil {
			return err
		}
	}
	var floors []int
	if *minSlots != "" {
		if floors, err = parseIntList(*minSlots, n, "min-slots"); err != nil {
			return err
		}
	}

	maxBudget := *slots * *maxMachines
	if *tasks == 0 {
		*tasks = maxBudget
	} else if *tasks < maxBudget {
		return fmt.Errorf("-tasks %d cannot absorb the %d-slot pool; raise -tasks or shrink the pool", *tasks, maxBudget)
	}

	pool, err := cluster.NewPool(cluster.PoolConfig{
		SlotsPerMachine: *slots,
		MaxMachines:     *maxMachines,
		Costs: cluster.CostModel{
			Rebalance:        200 * time.Millisecond,
			MachineColdStart: 500 * time.Millisecond,
			MachineRelease:   200 * time.Millisecond,
		},
	}, 1)
	if err != nil {
		return err
	}
	sched, err := drs.NewScheduler(drs.SchedulerConfig{
		Pool:             pool,
		CostWindow:       30 * time.Second,
		ReplaceOnFailure: *replace,
	})
	if err != nil {
		return err
	}
	level := slog.LevelWarn
	if *verbose {
		level = slog.LevelInfo
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	type tenantRun struct {
		name string
		sup  *drs.Supervisor
		stop func()
	}
	var runs []tenantRun
	defer func() {
		for _, r := range runs {
			r.stop()
		}
	}()
	for i, path := range paths {
		_, tf, err := loadTopology(strings.TrimSpace(path))
		if err != nil {
			return fmt.Errorf("topology %d (%s): %w", i, path, err)
		}
		initial := make([]int, len(tf.Operators))
		for j := range initial {
			initial[j] = 1
		}
		floor := len(tf.Operators)
		if floors != nil {
			floor = floors[i]
		}
		name := tenantName(path, i)
		lease, err := sched.Register(drs.TenantConfig{
			Name:         name,
			Weight:       ws[i],
			Priority:     prios[i],
			MinSlots:     floor,
			InitialSlots: len(initial),
		})
		if err != nil {
			return fmt.Errorf("registering %s: %w", name, err)
		}
		run, names, err := startLiveTopology(tf, initial, *tasks, *seed+int64(i)*100003)
		if err != nil {
			return fmt.Errorf("starting %s: %w", name, err)
		}
		runs = append(runs, tenantRun{name: name, stop: func() { _ = run.Stop() }})
		ctrl, err := drs.NewController(drs.ControllerConfig{
			Mode:                  drs.ModeMinResource,
			Tmax:                  tmaxes[i] / 1e3,
			MinGain:               0.05,
			ScaleInSlack:          0.2,
			MaxScaleInUtilization: 0.9,
		})
		if err != nil {
			return err
		}
		sup, err := drs.NewSupervisor(drs.SupervisorConfig{
			Target:    loop.EngineTarget(run),
			Operators: names,
			Stepper:   ctrl,
			Pool:      lease,
			Interval:  time.Duration(*intervalMS) * time.Millisecond,
			Logger:    logger.With(slog.String("tenant", name)),
		})
		if err != nil {
			return err
		}
		runs[len(runs)-1].sup = sup
	}

	st := sched.State()
	fmt.Printf("scheduling %d topologies on one pool for %.0fs (Tm = %dms): machines=%d capacity=%d\n",
		n, *duration, *intervalMS, st.Machines, st.Capacity)
	for _, ts := range st.Tenants {
		fmt.Printf("  %-16s weight=%g priority=%d floor=%d granted=%d\n",
			ts.Name, ts.Weight, ts.Priority, ts.MinSlots, ts.Granted)
	}
	for _, r := range runs {
		if err := r.sup.Start(); err != nil {
			return err
		}
	}
	// The optional machine-churn injection: kill the highest-ID live
	// machines mid-run and recover them after the outage, watching the
	// scheduler re-arbitrate the leases out of band both times.
	churnDone := make(chan struct{})
	if *failAfter >= *duration {
		fmt.Printf("  !! -fail-after %.0fs is at/past -duration %.0fs; churn injection disabled\n",
			*failAfter, *duration)
	}
	if *failAfter > 0 && *failAfter < *duration {
		// Clamp the outage inside the run: a -fail-down past the end
		// recovers at the end instead of extending the run.
		down := *failDown
		if rest := *duration - *failAfter; down > rest {
			down = rest
		}
		go func() {
			defer close(churnDone)
			time.Sleep(secondsDuration(*failAfter))
			live := pool.LiveMachines()
			if len(live) > *failCount {
				live = live[len(live)-*failCount:]
			}
			var victims []int
			for _, m := range live {
				if err := sched.FailMachine(m.ID); err != nil {
					fmt.Printf("  !! machine %d kill failed: %v\n", m.ID, err)
					continue
				}
				victims = append(victims, m.ID)
				fmt.Printf("  !! machine %d killed (capacity now %d)\n", m.ID, pool.Kmax())
			}
			if *failDown <= 0 || *replace {
				return
			}
			time.Sleep(secondsDuration(down))
			for _, id := range victims {
				if err := sched.RecoverMachine(id); err != nil {
					fmt.Printf("  !! machine %d recovery failed: %v\n", id, err)
					continue
				}
				fmt.Printf("  !! machine %d recovered (capacity now %d)\n", id, pool.Kmax())
			}
		}()
	} else {
		close(churnDone)
	}
	time.Sleep(secondsDuration(*duration))
	<-churnDone
	for _, r := range runs {
		r.sup.Stop()
	}

	for _, r := range runs {
		fmt.Printf("\n%s: %d control rounds, decision history:\n", r.name, r.sup.Rounds())
		events := r.sup.History()
		if len(events) == 0 {
			fmt.Println("  (none: the loop held steady every round)")
		}
		for _, ev := range events {
			fmt.Printf("  %s\n", ev)
		}
		if snap, ok := r.sup.LastSnapshot(); ok {
			fmt.Printf("  final: lambda0 = %.2f tuples/s, measured E[T] = %.1f ms, granted = %d\n",
				snap.Lambda0, snap.MeasuredSojourn*1e3, snap.Kmax)
		}
	}
	fmt.Println("\nscheduler history:")
	for _, ev := range sched.History() {
		fmt.Printf("  %s\n", ev)
	}
	st = sched.State()
	fmt.Printf("final: machines=%d capacity=%d leased=%d\n", st.Machines, st.Capacity, st.Leased)
	return nil
}

// tenantName derives a unique tenant name from a topology path.
func tenantName(path string, i int) string {
	base := path
	if idx := strings.LastIndexByte(base, '/'); idx >= 0 {
		base = base[idx+1:]
	}
	base = strings.TrimSuffix(base, ".json")
	if base == "" {
		base = "topology"
	}
	return fmt.Sprintf("%s-%d", base, i)
}

// parseFloatList parses a comma list, broadcasting a single value to n.
func parseFloatList(s string, n int, flagName string) ([]float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 1 && len(parts) != n {
		return nil, fmt.Errorf("-%s needs 1 or %d values, got %d", flagName, n, len(parts))
	}
	out := make([]float64, n)
	for i := range out {
		p := parts[0]
		if len(parts) == n {
			p = parts[i]
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -%s entry %q: %w", flagName, p, err)
		}
		out[i] = v
	}
	return out, nil
}

// parseIntList parses a comma list, broadcasting a single value to n.
func parseIntList(s string, n int, flagName string) ([]int, error) {
	fs, err := parseFloatList(s, n, flagName)
	if err != nil {
		return nil, err
	}
	out := make([]int, n)
	for i, v := range fs {
		out[i] = int(v)
	}
	return out, nil
}
