package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTopo(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "topo.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const validTopo = `{
  "operators": [
    {"name": "extract", "service_rate": 2.2222, "external_rate": 13},
    {"name": "match", "service_rate": 2.0},
    {"name": "aggregate", "service_rate": 100}
  ],
  "edges": [
    {"from": "extract", "to": "match", "selectivity": 1.0},
    {"from": "match", "to": "aggregate", "selectivity": 1.0}
  ]
}`

func TestLoadTopology(t *testing.T) {
	topo, tf, err := loadTopology(writeTopo(t, validTopo))
	if err != nil {
		t.Fatal(err)
	}
	if topo.N() != 3 || len(tf.Edges) != 2 {
		t.Errorf("loaded N=%d edges=%d", topo.N(), len(tf.Edges))
	}
	if _, _, err := loadTopology(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
	if _, _, err := loadTopology(writeTopo(t, "{bad json")); err == nil {
		t.Error("bad JSON should error")
	}
	if _, _, err := loadTopology(writeTopo(t, `{"operators": [], "edges": []}`)); err == nil {
		t.Error("empty topology should error")
	}
}

func TestParseAlloc(t *testing.T) {
	got, err := parseAlloc("10, 11,1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 10 || got[1] != 11 || got[2] != 1 {
		t.Errorf("parseAlloc = %v", got)
	}
	for _, bad := range []string{"", "1,2", "a,b,c", "1,2,3,4"} {
		if _, err := parseAlloc(bad, 3); err == nil {
			t.Errorf("parseAlloc(%q) should error", bad)
		}
	}
}

func TestRunSubcommands(t *testing.T) {
	path := writeTopo(t, validTopo)
	cases := [][]string{
		{"-topology", path, "model", "-alloc", "10,11,1"},
		{"-topology", path, "recommend", "-kmax", "22"},
		{"-topology", path, "recommend", "-tmax-ms", "1200"},
		{"-topology", path, "simulate", "-alloc", "10,11,1", "-duration", "30"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTopo(t, validTopo)
	cases := [][]string{
		{},                               // no topology
		{"-topology", path},              // no subcommand
		{"-topology", path, "bogus"},     // unknown subcommand
		{"-topology", path, "recommend"}, // neither kmax nor tmax
		{"-topology", path, "model"},     // missing alloc
		{"-topology", path, "recommend", "-kmax", "22", "-tmax-ms", "1"}, // both
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should error", args)
		}
	}
}

// fastTopo has millisecond-scale services so a live supervised run stays
// short enough for a test.
const fastTopo = `{
  "operators": [
    {"name": "extract", "service_rate": 200, "external_rate": 40},
    {"name": "match", "service_rate": 150}
  ],
  "edges": [
    {"from": "extract", "to": "match", "selectivity": 1.0}
  ]
}`

func TestSuperviseSubcommand(t *testing.T) {
	path := writeTopo(t, fastTopo)
	if err := run([]string{"-topology", path, "supervise",
		"-kmax", "4", "-duration", "2", "-interval-ms", "200"}); err != nil {
		t.Errorf("supervise -kmax: %v", err)
	}
	if err := run([]string{"-topology", path, "supervise",
		"-tmax-ms", "50", "-duration", "2", "-interval-ms", "200"}); err != nil {
		t.Errorf("supervise -tmax-ms: %v", err)
	}
	for _, bad := range [][]string{
		{"-topology", path, "supervise"},                                 // no mode
		{"-topology", path, "supervise", "-kmax", "4", "-tmax-ms", "50"}, // both modes
		{"-topology", path, "supervise", "-kmax", "1", "-duration", "1"}, // budget below initial alloc
	} {
		if err := run(bad); err == nil {
			t.Errorf("run(%v) should error", bad)
		}
	}
}

func TestQuantileSubcommand(t *testing.T) {
	path := writeTopo(t, validTopo)
	if err := run([]string{"-topology", path, "quantile", "-q", "0.95", "-target-ms", "2500"}); err != nil {
		t.Errorf("quantile: %v", err)
	}
	if err := run([]string{"-topology", path, "quantile"}); err == nil {
		t.Error("missing target should error")
	}
	if err := run([]string{"-topology", path, "quantile", "-q", "2", "-target-ms", "100"}); err == nil {
		t.Error("bad quantile should error")
	}
}
