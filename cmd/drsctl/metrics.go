package main

import (
	"fmt"
	"sync"

	"github.com/drs-repro/drs/internal/cluster"
	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/engine"
	"github.com/drs-repro/drs/internal/ingest"
	"github.com/drs-repro/drs/internal/loop"
	"github.com/drs-repro/drs/internal/obs"
	"github.com/drs-repro/drs/internal/wal"
	"github.com/drs-repro/drs/internal/worker"
)

// sojournBounds are the bucket boundaries (seconds) for the per-tenant
// sojourn histogram: sub-millisecond through multi-second, matching the
// latency range the experiments sweep.
var sojournBounds = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// shedFracBounds are the bucket boundaries for the per-tenant shed
// fraction histogram (dimensionless, 0..1).
var shedFracBounds = []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9}

// traceBoundsNS are the bucket boundaries (nanoseconds) of the trace
// latency-breakdown histograms: microseconds through seconds, log-spaced,
// covering queue waits on an idle executor up to sojourns at the latency
// target.
var traceBoundsNS = []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}

// serveMetrics is the serve daemon's exposition state: the registry the
// /metrics handler scrapes and the per-tenant histograms the control loop
// observes into. Built in two steps because the histograms must exist
// before loop.New while most scrape sources exist only after.
type serveMetrics struct {
	reg      *obs.Registry
	sojourn  *obs.Histogram
	shedFrac *obs.Histogram
}

// newServeMetrics creates the registry and the per-tenant histograms that
// loop.Config needs up front.
func newServeMetrics(tenant string) *serveMetrics {
	reg := obs.NewRegistry()
	tl := fmt.Sprintf("tenant=%q", tenant)
	return &serveMetrics{
		reg: reg,
		sojourn: reg.Histogram("drs_tenant_sojourn_seconds",
			"Measured mean sojourn per control round, by tenant.", sojournBounds, tl),
		shedFrac: reg.Histogram("drs_tenant_shed_fraction",
			"Shed fraction per control round, by tenant.", shedFracBounds, tl),
	}
}

// traceAssembler builds the trace assembler whose completed traces fold
// into this registry: topology-wide queue-wait / service / shuttle
// breakdown histograms plus per-bolt queue-wait and service families. The
// assembler runs on the tracer's drainer goroutine; histograms are
// atomic, so scrapes never block it.
func (m *serveMetrics) traceAssembler(bolts []string) *obs.Assembler {
	reg := m.reg
	boltQ := make(map[string]*obs.Histogram, len(bolts))
	boltS := make(map[string]*obs.Histogram, len(bolts))
	for _, b := range bolts {
		l := fmt.Sprintf("bolt=%q", b)
		boltQ[b] = reg.Histogram("drs_trace_bolt_queue_wait_ns",
			"Per-span queue wait by bolt, from sampled traces.", traceBoundsNS, l)
		boltS[b] = reg.Histogram("drs_trace_bolt_service_ns",
			"Per-span service time by bolt, from sampled traces.", traceBoundsNS, l)
	}
	return obs.NewAssembler(obs.AssemblerConfig{
		QueueWait: reg.Histogram("drs_trace_queue_wait_ns",
			"Summed queue wait per completed sampled trace.", traceBoundsNS, ""),
		Service: reg.Histogram("drs_trace_service_ns",
			"Summed service time per completed sampled trace.", traceBoundsNS, ""),
		Shuttle: reg.Histogram("drs_trace_shuttle_ns",
			"Summed remote shuttle time per completed sampled trace.", traceBoundsNS, ""),
		BoltQueueWait: boltQ,
		BoltService:   boltS,
	})
}

// register wires every serve-side metric family against the live
// components. Nil components (no WAL, no worker tier, no decision log)
// skip their families, so the exposition always reflects what is actually
// running. All reads go through the components' own thread-safe accessors
// at scrape time.
func (m *serveMetrics) register(gate *ingest.Gate, run *engine.Run, bolts []string,
	sup *loop.Supervisor, lease *cluster.Tenant, pool *cluster.Pool,
	walLog *wal.Log, coord *worker.Coordinator, dlog *obs.Log, tracer *obs.Tracer) {
	reg := m.reg

	// Admission gate: offered/admitted and the shed split are cumulative
	// counters; the plan echoes are gauges.
	reg.Func("drs_gate_offered_total", "Records clients presented to the admission gate.",
		obs.Counter, "", func() float64 { return float64(gate.Stats().Offered) })
	reg.Func("drs_gate_admitted_total", "Records admitted into the ingest ring.",
		obs.Counter, "", func() float64 { return float64(gate.Stats().Admitted) })
	reg.Func("drs_gate_shed_total", "Records refused by the gate, by reason.",
		obs.Counter, `reason="rate-limit"`, func() float64 { return float64(gate.Stats().ShedRateLimit) })
	reg.Func("drs_gate_shed_total", "Records refused by the gate, by reason.",
		obs.Counter, `reason="overload"`, func() float64 { return float64(gate.Stats().ShedOverload) })
	reg.Func("drs_gate_shed_total", "Records refused by the gate, by reason.",
		obs.Counter, `reason="backlog"`, func() float64 { return float64(gate.Stats().ShedBacklog) })
	reg.Func("drs_gate_admit_fraction", "Admit fraction of the current shed plan.",
		obs.Gauge, "", func() float64 { return gate.Stats().AdmitFraction })
	reg.Func("drs_gate_sustainable_rate", "Sustainable rate (records/s) of the current shed plan.",
		obs.Gauge, "", func() float64 { return gate.Stats().SustainableRate })
	reg.Func("drs_gate_scale_out_viable", "Whether the Appendix-B guard says scale-out beats shedding (1/0).",
		obs.Gauge, "", func() float64 {
			if gate.Stats().ScaleOutViable {
				return 1
			}
			return 0
		})

	// Engine: root-tuple books and the per-bolt cumulative counters the
	// DrainInterval folds (probe resets on rebalance do not zero these).
	reg.Func("drs_engine_roots_started_total", "Root tuples injected by spouts.",
		obs.Counter, "", func() float64 { s, _, _ := run.RootTotals(); return float64(s) })
	reg.Func("drs_engine_roots_completed_total", "Root tuples fully processed.",
		obs.Counter, "", func() float64 { _, c, _ := run.RootTotals(); return float64(c) })
	reg.Func("drs_engine_sojourn_seconds_total", "Summed end-to-end sojourn of completed root tuples.",
		obs.Counter, "", func() float64 { _, _, ns := run.RootTotals(); return float64(ns) / 1e9 })
	for _, b := range bolts {
		bolt := b
		labels := fmt.Sprintf("bolt=%q", bolt)
		reg.Func("drs_engine_bolt_arrivals_total", "Tuples that arrived at each bolt.",
			obs.Counter, labels, func() float64 { a, _, _ := run.BoltTotals(bolt); return float64(a) })
		reg.Func("drs_engine_bolt_served_total", "Tuples each bolt finished serving.",
			obs.Counter, labels, func() float64 { _, s, _ := run.BoltTotals(bolt); return float64(s) })
	}
	reg.Func("drs_engine_executor_failures_total", "Remote executor failures healed back to local bindings.",
		obs.Counter, "", func() float64 { return float64(run.ExecutorFailures()) })
	reg.Func("drs_engine_replayed_total", "In-flight batches replayed after a remote failure.",
		obs.Counter, "", func() float64 { return float64(run.Replayed()) })

	// Control loop and lease.
	reg.Func("drs_loop_rounds_total", "Control rounds the supervisor has completed.",
		obs.Counter, "", func() float64 { return float64(sup.Rounds()) })
	reg.Func("drs_lease_granted_slots", "Executor slots the scheduler currently grants this tenant.",
		obs.Gauge, "", func() float64 { return float64(lease.Granted()) })
	reg.Func("drs_pool_machines", "Machines currently provisioned in the pool.",
		obs.Gauge, "", func() float64 { return float64(pool.Machines()) })

	// Durable admission (WAL) — only when running durable.
	if walLog != nil {
		reg.Func("drs_wal_tail_seq", "Highest sequence number appended to the WAL.",
			obs.Counter, "", func() float64 { return float64(walLog.TailSeq()) })
		reg.Func("drs_wal_watermark", "Contiguous completion watermark retired from the WAL.",
			obs.Counter, "", func() float64 { return float64(walLog.Watermark()) })
		reg.Func("drs_wal_segments", "Live WAL segment files.",
			obs.Gauge, "", func() float64 { return float64(walLog.Segments()) })
	}

	// Worker tier — only when a coordinator listens.
	if coord != nil {
		reg.Func("drs_worker_live", "Worker processes currently registered.",
			obs.Gauge, "", func() float64 { return float64(len(coord.Workers())) })
		reg.Func("drs_worker_joins_total", "Worker registrations accepted.",
			obs.Counter, "", func() float64 { j, _ := coord.Counts(); return float64(j) })
		reg.Func("drs_worker_deaths_total", "Worker leases lapsed or connections lost.",
			obs.Counter, "", func() float64 { _, d := coord.Counts(); return float64(d) })
	}

	// The model's own verdict beside the measured trace decomposition: the
	// predicted mean sojourn E[T] (Equation 3) for the allocation in force,
	// recomputed at scrape time from the supervisor's latest snapshot. A
	// scrape therefore reads measured (drs_trace_*) and predicted sojourn
	// from the same instant — the measured-vs-model comparison is one query.
	var (
		modelMu sync.Mutex
		model   core.Model
	)
	reg.Func("drs_model_predicted_sojourn_ns", "Model-predicted mean sojourn E[T] for the current allocation.",
		obs.Gauge, "", func() float64 {
			snap, ok := sup.LastSnapshot()
			if !ok || len(snap.Ops) == 0 || snap.Lambda0 <= 0 || len(snap.Alloc) != len(snap.Ops) {
				return 0
			}
			modelMu.Lock()
			defer modelMu.Unlock()
			if err := model.Reset(snap.Lambda0, snap.Ops); err != nil {
				return 0
			}
			et, err := model.ExpectedSojourn(snap.Alloc)
			if err != nil {
				return 0
			}
			return et * 1e9
		})

	// Tracing self-accounting — only when the tracer is enabled.
	if tracer != nil {
		reg.Func("drs_trace_spans_total", "Spans emitted into the tracer's rings.",
			obs.Counter, "", func() float64 { return float64(tracer.Stats().Spans) })
		reg.Func("drs_trace_spans_dropped_total", "Spans dropped on tracer ring overflow.",
			obs.Counter, "", func() float64 { return float64(tracer.Stats().Dropped) })
		if asm := tracer.Assembler(); asm != nil {
			reg.Func("drs_trace_started_total", "Sampled traces the assembler has seen spans for.",
				obs.Counter, "", func() float64 { return float64(asm.Stats().Started) })
			reg.Func("drs_trace_completed_total", "Sampled traces assembled to completion.",
				obs.Counter, "", func() float64 { return float64(asm.Stats().Completed) })
			reg.Func("drs_trace_lost_total", "Spans discarded because the pending-trace table was full.",
				obs.Counter, "", func() float64 { return float64(asm.Stats().Lost) })
			reg.Func("drs_trace_pending", "Traces currently awaiting their root span.",
				obs.Gauge, "", func() float64 { return float64(asm.Stats().Pending) })
		}
	}

	// Decision log self-accounting — only when the log is enabled.
	if dlog != nil {
		reg.Func("drs_decision_log_offered_total", "Decision records offered to the log.",
			obs.Counter, "", func() float64 { return float64(dlog.Stats().Offered) })
		reg.Func("drs_decision_log_thinned_total", "Decision records thinned by the sampling knob.",
			obs.Counter, "", func() float64 { return float64(dlog.Stats().Thinned) })
		reg.Func("drs_decision_log_dropped_total", "Decision records dropped on ring overflow.",
			obs.Counter, "", func() float64 { return float64(dlog.Stats().Dropped) })
	}
}
