package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/drs-repro/drs/internal/wal"
)

// freeAddr reserves a localhost port and releases it for the serve
// listener to claim (a small race, fine for a test).
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestServeSignalDrain: a SIGINT mid-serve closes the listeners, drains
// the ingest ring, syncs the durable watermark and returns nil — long
// before the -duration would have elapsed on its own.
func TestServeSignalDrain(t *testing.T) {
	path := writeTopo(t, fastTopo)
	walDir := t.TempDir()
	addr := freeAddr(t)

	sigC := make(chan os.Signal, 1)
	orig := serveInterrupts
	serveInterrupts = func() <-chan os.Signal { return sigC }
	defer func() { serveInterrupts = orig }()

	errC := make(chan error, 1)
	go func() {
		errC <- run([]string{"-topology", path, "serve",
			"-tmax-ms", "200", "-duration", "300", "-interval-ms", "100",
			"-http", addr, "-wal-dir", walDir})
	}()

	// Wait for the listener, then land a few records.
	url := "http://" + addr + "/ingest"
	posted := 0
	deadline := time.Now().Add(15 * time.Second)
	for posted < 5 {
		resp, err := http.Post(url, "application/octet-stream",
			strings.NewReader(fmt.Sprintf("rec-%d", posted)))
		if err != nil {
			if time.Now().After(deadline) {
				t.Fatalf("listener never came up: %v", err)
			}
			time.Sleep(20 * time.Millisecond)
			continue
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusAccepted {
			posted++
		} else if time.Now().After(deadline) {
			t.Fatalf("ingest kept refusing records (last status %d)", resp.StatusCode)
		}
	}

	sigC <- os.Interrupt
	select {
	case err := <-errC:
		if err != nil {
			t.Fatalf("serve after signal returned %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("serve did not drain and exit after the signal")
	}

	// The drain finished the admitted records and synced the watermark: a
	// fresh recovery replays nothing and the checkpoint carries the books.
	l, rec, err := wal.Open(wal.Options{Dir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if un := l.Unacked(); len(un) != 0 {
		t.Errorf("unacked after drained shutdown = %d records, want 0", len(un))
	}
	if rec.Watermark < uint64(posted) {
		t.Errorf("recovered watermark %d, want >= %d", rec.Watermark, posted)
	}
	ckpt, ok, err := wal.LoadCheckpoint(walDir)
	if err != nil || !ok {
		t.Fatalf("checkpoint after shutdown: ok=%v err=%v", ok, err)
	}
	if ckpt.Admitted < uint64(posted) {
		t.Errorf("checkpoint admitted %d, want >= %d", ckpt.Admitted, posted)
	}
}
