package main

import (
	"net/http"
	"net/http/pprof"
)

// registerPprof mounts net/http/pprof on an explicit mux. The daemons
// build their own muxes (the default mux would expose pprof on every
// listener unconditionally), so the handlers are mounted by hand — the
// same routes the package's init would claim on http.DefaultServeMux.
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
