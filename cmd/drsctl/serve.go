package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/drs-repro/drs/internal/cluster"
	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/engine"
	"github.com/drs-repro/drs/internal/ingest"
	"github.com/drs-repro/drs/internal/loop"
	"github.com/drs-repro/drs/internal/obs"
	"github.com/drs-repro/drs/internal/wal"
	"github.com/drs-repro/drs/internal/worker"
)

// serveInterrupts yields the channel cmdServe waits on for shutdown
// signals. A package var so the shutdown test can inject a signal
// without delivering a real SIGINT to the test process.
var serveInterrupts = func() <-chan os.Signal {
	c := make(chan os.Signal, 1)
	signal.Notify(c, os.Interrupt, syscall.SIGTERM)
	return c
}

// cmdServe runs the topology behind the network ingest front end: real
// clients push records over HTTP POST or length-prefixed TCP, the
// admission gate applies per-client token buckets and the DRS model's
// shed policy, admitted tuples flow through a NetworkSpout into the live
// engine, and the Supervisor provisions machines against the *offered*
// (pre-shed) arrival rate. It is the paper's control loop with a front
// door: overload produces explicit 429/NACK backpressure while the
// cluster scales out, never unbounded queues.
func cmdServe(tf topoFile, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	tmaxMS := fs.Float64("tmax-ms", 0, "latency target in ms the gate and supervisor defend (required)")
	httpAddr := fs.String("http", "127.0.0.1:8080", "HTTP listen address (empty disables)")
	tcpAddr := fs.String("tcp", "", "length-prefixed TCP listen address (empty disables)")
	duration := fs.Float64("duration", 60, "wall-clock seconds to serve")
	intervalMS := fs.Int("interval-ms", 500, "measurement cadence Tm in ms")
	entry := fs.String("entry", "", "operator ingested records enter at (default: first with an external rate, else the first operator)")
	tasks := fs.Int("tasks", 16, "tasks per operator (caps executor parallelism)")
	slots := fs.Int("slots", 4, "executor slots per machine")
	maxMachines := fs.Int("max-machines", 4, "machine cap the negotiator may provision")
	ringCap := fs.Int("ring", 4096, "ingest ring capacity (bounded hand-off to the engine)")
	clientRate := fs.Float64("client-rate", 0, "per-client token-bucket rate in records/s (0 = unlimited)")
	clientBurst := fs.Int("client-burst", 0, "per-client token-bucket burst (default = rate)")
	weights := fs.String("client-weights", "", "shedding weights per client id, e.g. gold=4,bronze=1")
	seed := fs.Int64("seed", 1, "workload seed")
	walDir := fs.String("wal-dir", "", "write-ahead log directory: durable admission (ACK after append) with crash-recovery replay on boot (empty = non-durable)")
	decisionDir := fs.String("decision-log", "", "decision log directory: every control-plane verdict (grants, preemptions, shed plans, re-fits, heals) as rotating NDJSON (empty = disabled)")
	decisionSample := fs.Int("decision-sample", 1000, "decision log sampling rate in permille (1000 = keep everything)")
	workerListen := fs.String("worker-listen", "", "worker registration address: `drsctl worker` processes host executors over framed TCP (empty = all in-process)")
	minWorkers := fs.Int("min-workers", 0, "workers to wait for before opening the ingest listeners")
	traceDir := fs.String("trace", "", "trace directory: sampled per-tuple root spans from gate to ack as rotating NDJSON (empty = disabled)")
	traceSample := fs.Int("trace-sample", 10, "trace sampling rate in permille (1000 = trace every admitted record)")
	pprofFlag := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the HTTP listener")
	verbose := fs.Bool("v", false, "log every loop event")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tmaxMS <= 0 {
		return fmt.Errorf("-tmax-ms is required and must be positive")
	}
	if *httpAddr == "" && *tcpAddr == "" {
		return fmt.Errorf("need at least one listener: -http or -tcp")
	}
	if *minWorkers > 0 && *workerListen == "" {
		return fmt.Errorf("-min-workers needs -worker-listen")
	}
	if *decisionSample < 0 || *decisionSample > 1000 {
		return fmt.Errorf("-decision-sample wants permille in [0,1000], got %d", *decisionSample)
	}
	if *traceSample < 1 || *traceSample > 1000 {
		return fmt.Errorf("-trace-sample wants permille in [1,1000], got %d", *traceSample)
	}
	if *pprofFlag && *httpAddr == "" {
		return fmt.Errorf("-pprof needs the -http listener")
	}
	weightMap, err := parseWeights(*weights)
	if err != nil {
		return err
	}
	entryOp := *entry
	if entryOp == "" {
		entryOp = tf.Operators[0].Name
		for _, op := range tf.Operators {
			if op.ExternalRate > 0 {
				entryOp = op.Name
				break
			}
		}
	}
	found := false
	for _, op := range tf.Operators {
		if op.Name == entryOp {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("entry operator %q is not in the topology", entryOp)
	}

	// Durable boot: recover the log and the control checkpoint before
	// anything is built — the checkpoint seeds the engine allocation, the
	// lease size and the supervisor's hysteresis; the log's unacked
	// records are replayed once the engine is up.
	var (
		walLog   *wal.Log
		ckpt     wal.Checkpoint
		haveCkpt bool
	)
	if *walDir != "" {
		var walRec wal.Recovered
		walLog, walRec, err = wal.Open(wal.Options{Dir: *walDir})
		if err != nil {
			return fmt.Errorf("wal recovery: %w", err)
		}
		defer walLog.Close()
		ckpt, haveCkpt, err = wal.LoadCheckpoint(*walDir)
		if err != nil {
			return err
		}
		fmt.Printf("wal: recovered %d segment(s), %d record(s), tail seq %d, watermark %d (torn tail: %d bytes)\n",
			walRec.Segments, walRec.Records, walRec.TailSeq, walRec.Watermark, walRec.TruncatedBytes)
		if haveCkpt {
			fmt.Printf("checkpoint: %d slots, %d rounds, alloc %v\n", ckpt.Slots, ckpt.Rounds, ckpt.Alloc)
		}
	}

	// The decision log: control-plane verdicts from every decider stream
	// asynchronously into rotating NDJSON, never blocking the deciders.
	var dlog *obs.Log
	if *decisionDir != "" {
		sink, err := obs.NewFileSink(*decisionDir, 0)
		if err != nil {
			return fmt.Errorf("decision log: %w", err)
		}
		dlog = obs.NewLog(obs.Config{SamplePermille: *decisionSample, Sink: sink})
		defer func() {
			if err := dlog.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "drsctl: decision log close:", err)
			}
		}()
		fmt.Printf("decision log in %s (sampling %d permille)\n", *decisionDir, *decisionSample)
	}
	metrics := newServeMetrics("serve")

	// Per-tuple tracing: deterministic hash sampling at the admission ring,
	// spans from every stage stitched by the assembler into the latency
	// breakdown histograms, raw traces into rotating NDJSON.
	var tracer *obs.Tracer
	if *traceDir != "" {
		tsink, err := obs.NewFileSinkNamed(*traceDir, "trace", 0)
		if err != nil {
			return fmt.Errorf("trace sink: %w", err)
		}
		opNames := make([]string, len(tf.Operators))
		for i, op := range tf.Operators {
			opNames[i] = op.Name
		}
		tracer = obs.NewTracer(obs.TracerConfig{
			SamplePermille: *traceSample,
			Sink:           tsink,
			Assembler:      metrics.traceAssembler(opNames),
		})
		defer func() {
			if err := tracer.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "drsctl: tracer close:", err)
			}
		}()
		fmt.Printf("tracing in %s (sampling %d permille)\n", *traceDir, *traceSample)
	}

	// The gate, then the engine behind it: a NetworkSpout drains the
	// gate's source into the entry operator.
	maxSlots := *slots * *maxMachines
	gate := ingest.NewGate(ingest.GateConfig{
		Name:         "serve",
		Tmax:         *tmaxMS / 1e3,
		MaxSlots:     maxSlots,
		RingCapacity: *ringCap,
		ReplanEvery:  time.Duration(*intervalMS) * time.Millisecond,
		DecisionLog:  dlog,
		Tracer:       tracer,
	})
	if walLog != nil {
		if err := gate.AttachWAL(walLog); err != nil {
			return err
		}
	}
	if *tasks < maxSlots {
		*tasks = maxSlots
	}
	initial := make([]int, len(tf.Operators))
	for i := range initial {
		initial[i] = 1
	}
	initSlots := len(tf.Operators)
	if haveCkpt && len(ckpt.Alloc) > 0 {
		// Resume the checkpointed allocation when it still fits the cap;
		// a stale oversized checkpoint falls back to a cold start.
		restored, sum := make([]int, len(initial)), 0
		for i, op := range tf.Operators {
			k := ckpt.Alloc[op.Name]
			if k < 1 {
				k = 1
			}
			if k > *tasks {
				k = *tasks
			}
			restored[i] = k
			sum += k
		}
		if sum <= maxSlots {
			initial = restored
			if sum > initSlots {
				initSlots = sum
			}
		}
	}
	b := engine.NewTopology()
	names, alloc := addLiveOperators(b, tf, initial, *tasks, *seed)
	b.Spout("ingest", 1, func(int) engine.Spout {
		return &engine.NetworkSpout{Source: gate.Source(), MaxBatch: 256}
	})
	b.Shuffle("ingest", entryOp)
	topo, err := b.Build()
	if err != nil {
		return err
	}
	run, err := topo.Start(engine.RunConfig{Alloc: alloc, QuiesceTimeout: 30 * time.Second, DecisionLog: dlog, Tracer: tracer})
	if err != nil {
		return err
	}
	defer run.Stop()

	// A single tenant leased through the Scheduler, so a beyond-cap scale
	// request grants partially instead of being refused outright.
	pool, err := cluster.NewPool(cluster.PoolConfig{
		SlotsPerMachine: *slots,
		MaxMachines:     *maxMachines,
		Costs: cluster.CostModel{
			Rebalance:        200 * time.Millisecond,
			MachineColdStart: 500 * time.Millisecond,
			MachineRelease:   200 * time.Millisecond,
		},
	}, 1)
	if err != nil {
		return err
	}
	sched, err := cluster.NewScheduler(cluster.SchedulerConfig{Pool: pool, DecisionLog: dlog})
	if err != nil {
		return err
	}
	if initSlots > maxSlots {
		initSlots = maxSlots
	}
	lease, err := sched.Register(cluster.TenantConfig{
		Name: "serve", MinSlots: len(names), InitialSlots: initSlots,
	})
	if err != nil {
		return err
	}
	ctrl, err := core.NewController(core.ControllerConfig{
		Mode:                  core.ModeMinResource,
		Tmax:                  *tmaxMS / 1e3,
		MinGain:               0.05,
		ScaleInSlack:          0.3,
		MaxScaleInUtilization: 0.6,
	})
	if err != nil {
		return err
	}
	level := slog.LevelWarn
	if *verbose {
		level = slog.LevelInfo
	}
	var resume *loop.PersistedState
	if haveCkpt {
		resume = &loop.PersistedState{
			Rounds:            ckpt.Rounds,
			CooldownRemaining: time.Duration(ckpt.CooldownMS) * time.Millisecond,
		}
	}
	sup, err := loop.New(loop.Config{
		Target:      ingest.SupervisedTarget{Inner: loop.EngineTarget(run), Gate: gate},
		Operators:   names,
		Stepper:     ctrl,
		Pool:        lease,
		Interval:    time.Duration(*intervalMS) * time.Millisecond,
		Logger:      slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})),
		Resume:      resume,
		Tenant:      "serve",
		DecisionLog: dlog,
		Sojourn:     metrics.sojourn,
		ShedFrac:    metrics.shedFrac,
	})
	if err != nil {
		return err
	}
	gate.SetControl(sup)
	if err := gate.Start(); err != nil {
		return err
	}
	if err := sup.Start(); err != nil {
		return err
	}

	// The worker tier: remote processes register here, lease a pool
	// machine, and host executors over the framed shuttle. Machine fate
	// and process fate are tied both ways — a lapsed heartbeat lease fails
	// the pool machine, and a scripted pool Fail of a worker-backed
	// machine severs the real connection.
	var (
		coord      *worker.Coordinator
		workerL    net.Listener
		placeNudge = make(chan struct{}, 1)
	)
	nudgePlacement := func() {
		select {
		case placeNudge <- struct{}{}:
		default:
		}
	}
	if *workerListen != "" {
		var synthetic atomic.Int64 // ids past the pool when it is full
		coord = worker.NewCoordinator(worker.CoordinatorConfig{
			Seed:        *seed,
			DecisionLog: dlog,
			Bind: func(name string, pid int) (int, error) {
				lessee := fmt.Sprintf("%s/%d", name, pid)
				for _, m := range pool.MachineList() {
					if err := pool.BindWorker(m.ID, lessee); err != nil {
						continue // already backed; try the next machine
					}
					if m.Failed {
						// A replacement process re-backs the crashed
						// machine: capacity returns with it.
						_ = pool.Recover(m.ID)
					}
					return m.ID, nil
				}
				// Every pool machine is backed (or the pool is small right
				// now): the worker still joins, on an id beyond the pool.
				return int(1000 + synthetic.Add(1)), nil
			},
			OnJoin: func(machine int) {
				fmt.Printf("worker tier: machine %d joined\n", machine)
				nudgePlacement()
			},
			OnDeath: func(machine int) {
				pool.UnbindWorker(machine)
				// A dead worker is a dead machine; ignore the error for
				// synthetic ids and machines the pool already failed.
				_ = pool.Fail(machine)
				fmt.Printf("worker tier: machine %d died, executors heal local\n", machine)
				nudgePlacement()
			},
		})
		pool.AddChurnListener(func(ev cluster.ChurnEvent) {
			if ev.Kind == "machine-fail" {
				coord.DropWorker(ev.Machine)
			}
			nudgePlacement()
		})
		workerL, err = net.Listen("tcp", *workerListen)
		if err != nil {
			return err
		}
		go coord.Serve(workerL)
		fmt.Printf("worker registration on %s\n", workerL.Addr())
		if *minWorkers > 0 {
			if err := coord.WaitWorkers(*minWorkers, 60*time.Second); err != nil {
				return err
			}
		}
	}
	// Placement re-application: every control interval (and on every join,
	// death or churn event) the engine's current allocation is spread over
	// the live workers, slotsPerMachine executors each, remainder local.
	// Idempotent bindings make the steady-state pass a no-op; after a
	// Rebalance (which rebuilds executors local) the next pass pushes them
	// back out.
	stopPlace := make(chan struct{})
	placeDone := make(chan struct{})
	if coord != nil {
		go func() {
			defer close(placeDone)
			tick := time.NewTicker(time.Duration(*intervalMS) * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stopPlace:
					return
				case <-tick.C:
				case <-placeNudge:
				}
				applyWorkerPlacement(run, coord, *slots)
			}
		}()
	} else {
		close(placeDone)
	}

	// Replay the recovered unacked records through the now-running spout
	// BEFORE the listeners open: replayed and fresh traffic never
	// interleave, and every re-injected record is already in the log.
	if walLog != nil {
		replayed, err := gate.Replay()
		if err != nil {
			return fmt.Errorf("wal replay: %w", err)
		}
		fmt.Printf("wal: replaying %d unacked record(s) through the spout\n", replayed)
	}

	// Periodic control-plane checkpoints beside the segments: allocation,
	// lease grant, hysteresis and the cumulative books (carried across
	// lives by summing on top of the recovered checkpoint).
	saveCheckpoint := func() {
		st := gate.Stats()
		ps := sup.PersistedState()
		completions, _ := run.Completions()
		_ = wal.SaveCheckpoint(*walDir, wal.Checkpoint{
			Seq:        walLog.TailSeq(),
			Watermark:  st.Watermark,
			Alloc:      run.Allocation(),
			Slots:      lease.Granted(),
			Rounds:     ps.Rounds,
			CooldownMS: ps.CooldownRemaining.Milliseconds(),
			Admitted:   ckpt.Admitted + uint64(st.Admitted),
			Completed:  ckpt.Completed + uint64(completions),
			Shed:       ckpt.Shed + uint64(st.ShedRateLimit+st.ShedOverload+st.ShedBacklog),
		})
	}
	stopCkpt := make(chan struct{})
	ckptDone := make(chan struct{})
	if walLog != nil {
		go func() {
			defer close(ckptDone)
			tick := time.NewTicker(time.Duration(*intervalMS) * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stopCkpt:
					return
				case <-tick.C:
					saveCheckpoint()
				}
			}
		}()
	} else {
		close(ckptDone)
	}

	// Every metric family reads live components, so registration waits
	// until the whole daemon is assembled.
	metrics.register(gate, run, names, sup, lease, pool, walLog, coord, dlog, tracer)

	lcfg := ingest.ListenerConfig{
		Weights: weightMap,
		Rate:    *clientRate,
		Burst:   *clientBurst,
	}
	var httpSrv *http.Server
	if *httpAddr != "" {
		l, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return err
		}
		mux := http.NewServeMux()
		mux.Handle("/", ingest.Handler(gate, lcfg))
		mux.Handle("/metrics", metrics.reg.Handler())
		if *pprofFlag {
			registerPprof(mux)
			fmt.Printf("pprof on http://%s/debug/pprof/\n", l.Addr())
		}
		httpSrv = &http.Server{Handler: mux}
		go httpSrv.Serve(l)
		fmt.Printf("HTTP ingest on http://%s/ingest (stats on /stats, Prometheus on /metrics)\n", l.Addr())
	}
	var tcpL net.Listener
	if *tcpAddr != "" {
		tcpL, err = net.Listen("tcp", *tcpAddr)
		if err != nil {
			return err
		}
		go func() {
			// A non-close Accept failure kills the TCP front door; say so
			// instead of serving HTTP-only in silence.
			if err := ingest.ServeTCP(tcpL, gate, lcfg); err != nil {
				fmt.Fprintln(os.Stderr, "drsctl: tcp ingest listener died:", err)
			}
		}()
		fmt.Printf("TCP ingest on %s (length-prefixed frames)\n", tcpL.Addr())
	}
	fmt.Printf("serving %d operators for %.0fs behind the admission gate (Tmax = %.0f ms, entry %q, cap %d slots)\n",
		len(names), *duration, *tmaxMS, entryOp, maxSlots)

	// Serve until the duration elapses or a SIGTERM/SIGINT arrives — both
	// exit through the same drain path, so a signal never abandons
	// admitted records.
	sigC := serveInterrupts()
	select {
	case <-time.After(secondsDuration(*duration)):
	case sig := <-sigC:
		fmt.Printf("\nreceived %v: closing listeners and draining the ingest ring\n", sig)
	}

	// Orderly shutdown: listeners first, then the gate (closing the ring),
	// then drain and stop — admitted records are never abandoned. The
	// drain is bounded: a wedged engine should not make shutdown hang.
	if httpSrv != nil {
		httpSrv.Close()
	}
	if tcpL != nil {
		tcpL.Close()
	}
	gate.Close()
	drainDeadline := time.Now().Add(10 * time.Second)
	for gate.Ring().Len() > 0 && time.Now().Before(drainDeadline) {
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)
	sup.Stop()
	close(stopPlace)
	<-placeDone
	if coord != nil {
		// Workers last: they participate in the drain above; any batch
		// still in flight when the shuttles close replays in-process.
		workerL.Close()
		coord.Close()
	}
	close(stopCkpt)
	<-ckptDone

	if walLog != nil {
		// Final watermark sync + checkpoint: completions up to this
		// instant retire their log frames, so the next boot replays only
		// what truly never finished.
		for gate.Watermark() < gate.Ring().Pushed() && time.Now().Before(drainDeadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if err := gate.SyncWatermark(); err != nil {
			fmt.Fprintln(os.Stderr, "drsctl: final watermark sync:", err)
		}
		saveCheckpoint()
	}

	st := gate.Stats()
	fmt.Printf("\ningest: offered %d, admitted %d (shed: rate-limit %d, overload %d, backlog %d)\n",
		st.Offered, st.Admitted, st.ShedRateLimit, st.ShedOverload, st.ShedBacklog)
	if walLog != nil {
		fmt.Printf("wal: tail seq %d, watermark %d, replayed %d, %d live segment(s)\n",
			walLog.TailSeq(), st.Watermark, st.Replayed, walLog.Segments())
	}
	completions, meanSojourn := run.Completions()
	fmt.Printf("engine: %d completions, mean sojourn %.1f ms, final alloc %v, %d machines\n",
		completions, meanSojourn.Seconds()*1e3, run.Allocation(), pool.Machines())
	if coord != nil {
		fmt.Printf("worker tier: %d executor failure(s) healed, %d replay(s)\n",
			run.ExecutorFailures(), run.Replayed())
	}
	fmt.Printf("\n%d control rounds, decision history:\n", sup.Rounds())
	events := sup.History()
	if len(events) == 0 {
		fmt.Println("  (none: the loop held steady every round)")
	}
	for _, ev := range events {
		fmt.Printf("  %s\n", ev)
	}
	return nil
}

// parseWeights reads a "id=weight,id=weight" list.
func parseWeights(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad client weight %q (want id=weight)", part)
		}
		w, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad client weight %q: want a positive number", part)
		}
		out[kv[0]] = w
	}
	return out, nil
}
