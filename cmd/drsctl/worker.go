package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/drs-repro/drs/internal/engine"
	"github.com/drs-repro/drs/internal/obs"
	"github.com/drs-repro/drs/internal/worker"
)

// workerInterrupts yields the channel cmdWorker waits on for shutdown
// signals; a package var so tests can inject one.
var workerInterrupts = func() <-chan os.Signal {
	c := make(chan os.Signal, 1)
	signal.Notify(c, os.Interrupt, syscall.SIGTERM)
	return c
}

// cmdWorker runs one worker daemon: it dials the serve process's
// -worker-listen endpoint, registers, builds the topology file's bolt
// factories from the seed in the welcome (so its instances are
// bit-identical to the ones the serve process would host in-process), and
// processes shuttled batches until the connection dies or a signal
// arrives. Scaling out a `drsctl serve` node is now just starting more of
// these on other machines.
func cmdWorker(tf topoFile, args []string) error {
	fs := flag.NewFlagSet("worker", flag.ContinueOnError)
	connect := fs.String("connect", "", "serve process's -worker-listen address (required)")
	name := fs.String("name", "", "worker name for diagnostics (default host-pid)")
	retryFor := fs.Float64("retry-for", 10, "seconds to keep retrying the initial connect (serve may still be booting)")
	metricsAddr := fs.String("metrics", "", "Prometheus /metrics listen address (empty disables)")
	pprofFlag := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the -metrics listener")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" {
		return fmt.Errorf("-connect is required")
	}
	if *pprofFlag && *metricsAddr == "" {
		return fmt.Errorf("-pprof needs the -metrics listener")
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	cfg := worker.Config{
		Addr: *connect,
		Name: *name,
		Build: func(seed int64) (map[string]engine.BoltFactory, error) {
			return liveOperatorFactories(tf, seed), nil
		},
	}
	// The serve process and its workers race to boot; retry the dial until
	// the registration endpoint is up.
	var (
		w        *worker.Worker
		err      error
		deadline = time.Now().Add(secondsDuration(*retryFor))
	)
	for {
		w, err = worker.Dial(cfg)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("worker: connect %s: %w", *connect, err)
		}
		time.Sleep(250 * time.Millisecond)
	}
	fmt.Printf("worker %q: registered as machine %d (pid %d, seed %d)\n",
		*name, w.Machine(), os.Getpid(), w.Seed())

	// The worker's own /metrics endpoint: its lease, what it hosts, and
	// how much it has processed.
	if *metricsAddr != "" {
		l, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		defer l.Close()
		reg := obs.NewRegistry()
		reg.Func("drs_worker_machine", "Pool machine id leased from the coordinator.",
			obs.Gauge, "", func() float64 { return float64(w.Machine()) })
		reg.Func("drs_worker_hosted_bolts", "Distinct bolts with a live runner on this worker.",
			obs.Gauge, "", func() float64 { return float64(w.HostedBolts()) })
		reg.Func("drs_worker_batches_total", "Batches this worker has processed.",
			obs.Counter, "", func() float64 { b, _ := w.Counts(); return float64(b) })
		reg.Func("drs_worker_tuples_total", "Tuples this worker has processed.",
			obs.Counter, "", func() float64 { _, t := w.Counts(); return float64(t) })
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		if *pprofFlag {
			registerPprof(mux)
			fmt.Printf("worker %q: pprof on http://%s/debug/pprof/\n", *name, l.Addr())
		}
		go func() { _ = http.Serve(l, mux) }()
		fmt.Printf("worker %q: Prometheus on http://%s/metrics\n", *name, l.Addr())
	}

	done := make(chan error, 1)
	go func() { done <- w.Run() }()
	select {
	case sig := <-workerInterrupts():
		fmt.Printf("worker %q: received %v, deregistering\n", *name, sig)
		w.Close()
		<-done
		return nil
	case err := <-done:
		if err != nil {
			return fmt.Errorf("worker: connection lost: %w", err)
		}
		return nil
	}
}

// applyWorkerPlacement spreads the run's current allocation over the live
// workers, slotsPerMachine executors each in ascending machine order;
// whatever the worker tier cannot absorb stays in-process. Re-applied
// every control interval and on churn, so rebalances and worker deaths
// converge back to the intended split without coordination.
func applyWorkerPlacement(run *engine.Run, coord *worker.Coordinator, slotsPerMachine int) worker.BindingPlan {
	machines := coord.Workers()
	placement := make(map[int]int, len(machines))
	for _, m := range machines {
		placement[m] = slotsPerMachine
	}
	return worker.ApplyPlacement(run, run.Allocation(), placement, 0, coord.Remote)
}
