package main

import (
	"testing"

	"github.com/drs-repro/drs/internal/experiments"
)

func TestAppsFor(t *testing.T) {
	both, err := appsFor("both")
	if err != nil || len(both) != 2 {
		t.Errorf("both = %v, %v", both, err)
	}
	one, err := appsFor("vld")
	if err != nil || len(one) != 1 || one[0] != experiments.VLD {
		t.Errorf("vld = %v, %v", one, err)
	}
	if _, err := appsFor("nope"); err == nil {
		t.Error("unknown app should error")
	}
}

func TestRunArgumentValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no experiment should error")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := run([]string{"-app", "nope", "fig6"}); err == nil {
		t.Error("unknown app should error")
	}
}

func TestRunShortExperiments(t *testing.T) {
	// Heavily scaled-down sanity runs through the real dispatch path.
	if err := run([]string{"-app", "vld", "-duration", "60", "fig6"}); err != nil {
		t.Errorf("fig6: %v", err)
	}
	if err := run([]string{"-duration", "60", "fig8"}); err != nil {
		t.Errorf("fig8: %v", err)
	}
	if err := run([]string{"-iters", "50", "table2"}); err != nil {
		t.Errorf("table2: %v", err)
	}
	if err := run([]string{"-duration", "240", "churn"}); err != nil {
		t.Errorf("churn: %v", err)
	}
	if err := run([]string{"-duration", "240", "chaos"}); err != nil {
		t.Errorf("chaos: %v", err)
	}
	if err := run([]string{"-duration", "150", "restart"}); err != nil {
		t.Errorf("restart: %v", err)
	}
	if err := run([]string{"-scenario", "no-such-file.json", "chaos"}); err == nil {
		t.Error("missing scenario file should error")
	}
}
