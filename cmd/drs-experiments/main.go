// Command drs-experiments regenerates the tables and figures of the DRS
// paper's evaluation (§V) on the simulation substrate and prints the same
// rows/series the paper plots.
//
// Usage:
//
//	drs-experiments [flags] <fig6|fig7|fig8|fig9|fig10|table2|baseline|shedding|overload|contention|churn|chaos|restart|trace|all>
//
// Flags:
//
//	-app vld|fpd|both   application for fig6/fig7/fig9 (default both)
//	-seed N             simulation seed (default 1)
//	-duration S         steady-state span in simulated seconds (default 600)
//	-iters N            iterations per Table II cell (default 10000)
//	-scenario FILE      chaos only: replay a scenario spec from a JSON file
//	                    instead of the built-in everything-at-once arc
//
// Durations are simulated time: the full "all" sweep runs the paper's
// 10-minute and 27-minute experiments in a few wall-clock minutes.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/drs-repro/drs/internal/experiments"
	"github.com/drs-repro/drs/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "drs-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("drs-experiments", flag.ContinueOnError)
	app := fs.String("app", "both", "application for per-app figures: vld, fpd or both")
	seed := fs.Uint64("seed", 1, "simulation seed")
	duration := fs.Float64("duration", 600, "steady-state span in simulated seconds")
	iters := fs.Int("iters", 10000, "iterations per Table II cell")
	scenarioPath := fs.String("scenario", "", "chaos: replay this scenario JSON file instead of the built-in arc")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("need exactly one experiment: fig6 fig7 fig8 fig9 fig10 table2 baseline shedding overload contention churn chaos restart trace all")
	}
	opts := experiments.Options{Seed: *seed, Duration: *duration}
	apps, err := appsFor(*app)
	if err != nil {
		return err
	}
	switch fs.Arg(0) {
	case "fig6":
		return runFig6(apps, opts)
	case "fig7":
		return runFig7(apps, opts)
	case "fig8":
		return runFig8(opts)
	case "fig9":
		return runFig9(apps, opts)
	case "fig10":
		return runFig10(opts)
	case "table2":
		return runTable2(*iters)
	case "baseline":
		return runBaseline(apps, opts)
	case "shedding":
		return runShedding(opts)
	case "overload":
		return runOverload(opts)
	case "contention":
		return runContention(opts)
	case "churn":
		return runChurn(opts)
	case "chaos":
		return runChaos(opts, *scenarioPath)
	case "restart":
		return runRestart(opts)
	case "trace":
		return runTrace(opts)
	case "all":
		if err := runFig6(apps, opts); err != nil {
			return err
		}
		if err := runFig7(apps, opts); err != nil {
			return err
		}
		if err := runFig8(opts); err != nil {
			return err
		}
		if err := runFig9(apps, opts); err != nil {
			return err
		}
		if err := runFig10(opts); err != nil {
			return err
		}
		if err := runBaseline(apps, opts); err != nil {
			return err
		}
		if err := runShedding(opts); err != nil {
			return err
		}
		if err := runOverload(opts); err != nil {
			return err
		}
		if err := runContention(opts); err != nil {
			return err
		}
		if err := runChurn(opts); err != nil {
			return err
		}
		if err := runChaos(opts, *scenarioPath); err != nil {
			return err
		}
		if err := runRestart(opts); err != nil {
			return err
		}
		if err := runTrace(opts); err != nil {
			return err
		}
		return runTable2(*iters)
	default:
		return fmt.Errorf("unknown experiment %q", fs.Arg(0))
	}
}

func runContention(opts experiments.Options) error {
	r, err := experiments.RunContention(opts)
	if err != nil {
		return err
	}
	r.Print(os.Stdout)
	return nil
}

func runChurn(opts experiments.Options) error {
	r, err := experiments.RunChurn(opts)
	if err != nil {
		return err
	}
	r.Print(os.Stdout)
	return nil
}

// runChaos replays the built-in everything-at-once scenario, or the spec
// loaded from path when -scenario names one.
func runChaos(opts experiments.Options, path string) error {
	var (
		r   experiments.ChaosResult
		err error
	)
	if path == "" {
		r, err = experiments.RunChaos(opts)
	} else {
		var spec scenario.Spec
		if _, spec, err = scenario.Load(path); err != nil {
			return err
		}
		r, err = experiments.RunChaosSpec(spec, opts)
	}
	if err != nil {
		return err
	}
	r.Print(os.Stdout)
	return nil
}

// runRestart replays the kill -9 mid-surge arc against the durable
// ingest stack: WAL recovery, checkpointed watermarks and replay.
func runRestart(opts experiments.Options) error {
	r, err := experiments.RunRestart(opts)
	if err != nil {
		return err
	}
	r.Print(os.Stdout)
	return nil
}

// runTrace replays the chaos workload through the real engine with
// per-tuple tracing on, locally and across live workers, and prints the
// measured sojourn decomposition plus the determinism audit.
func runTrace(opts experiments.Options) error {
	r, err := experiments.RunTrace(opts)
	if err != nil {
		return err
	}
	r.Print(os.Stdout)
	return nil
}

func runOverload(opts experiments.Options) error {
	r, err := experiments.RunOverload(opts)
	if err != nil {
		return err
	}
	r.Print(os.Stdout)
	return nil
}

func runShedding(opts experiments.Options) error {
	r, err := experiments.RunShedding(opts)
	if err != nil {
		return err
	}
	r.Print(os.Stdout)
	return nil
}

func runBaseline(apps []experiments.App, opts experiments.Options) error {
	for _, app := range apps {
		r, err := experiments.RunBaseline(app, opts)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
	}
	return nil
}

func appsFor(flagVal string) ([]experiments.App, error) {
	switch flagVal {
	case "vld":
		return []experiments.App{experiments.VLD}, nil
	case "fpd":
		return []experiments.App{experiments.FPD}, nil
	case "both":
		return []experiments.App{experiments.VLD, experiments.FPD}, nil
	default:
		return nil, fmt.Errorf("unknown app %q (want vld, fpd or both)", flagVal)
	}
}

func runFig6(apps []experiments.App, opts experiments.Options) error {
	for _, app := range apps {
		r, err := experiments.RunFigure6(app, opts)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
	}
	return nil
}

func runFig7(apps []experiments.App, opts experiments.Options) error {
	for _, app := range apps {
		r, err := experiments.RunFigure7(app, opts)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
	}
	return nil
}

func runFig8(opts experiments.Options) error {
	r, err := experiments.RunFigure8(opts)
	if err != nil {
		return err
	}
	r.Print(os.Stdout)
	return nil
}

func runFig9(apps []experiments.App, opts experiments.Options) error {
	for _, app := range apps {
		r, err := experiments.RunFigure9(app, opts)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
	}
	return nil
}

func runFig10(opts experiments.Options) error {
	for _, exp := range []experiments.Fig10Experiment{experiments.ExpA, experiments.ExpB} {
		r, err := experiments.RunFigure10(exp, opts)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
	}
	return nil
}

func runTable2(iters int) error {
	r, err := experiments.RunTable2(iters)
	if err != nil {
		return err
	}
	r.Print(os.Stdout)
	return nil
}
