// Quickstart: model an operator topology, estimate its latency, and ask
// DRS for optimal allocations — the library's core workflow, no engine or
// simulator involved.
//
// The topology is the paper's Figure 2 shape: a split (A feeds B and C), a
// join (C and D feed E) and a feedback loop (E back to A). The traffic
// equations are solved under the hood, loop included.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	drs "github.com/drs-repro/drs"
)

func main() {
	// Operator rates: service_rate is µ (tuples/s one processor handles);
	// the third argument is the operator's external arrival rate.
	topo, err := drs.NewTopologyBuilder().
		AddOperator("A", 50, 10). // source: 10 tuples/s arrive from outside
		AddOperator("B", 40, 0).
		AddOperator("C", 60, 0).
		AddOperator("D", 45, 4). // second source
		AddOperator("E", 55, 0).
		Connect("A", "B", 0.6). // split: 60% of A's output goes to B...
		Connect("A", "C", 0.4). // ...and 40% to C
		Connect("C", "E", 1.0).
		Connect("D", "E", 1.0). // join at E
		Connect("E", "A", 0.5). // feedback loop, gain 0.5
		Build()
	if err != nil {
		log.Fatal(err)
	}

	model, err := drs.NewModelFromTopology(topo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Solved arrival rates (traffic equations, loop included):")
	for _, op := range model.Rates() {
		fmt.Printf("  %-2s lambda = %6.2f tuples/s  (mu = %5.1f)\n", op.Name, op.Lambda, op.Mu)
	}

	// Program (4): best latency with at most 12 processors.
	const kmax = 12
	alloc, err := model.AssignProcessors(kmax)
	if err != nil {
		log.Fatal(err)
	}
	est, err := model.ExpectedSojourn(alloc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAssignProcessors(%d) = %v\n", kmax, alloc)
	fmt.Printf("expected total sojourn E[T] = %.2f ms (floor %.2f ms)\n",
		est*1e3, model.LowerBound()*1e3)

	// Program (6): fewest processors that keep E[T] under 80 ms.
	const tmax = 0.080
	minAlloc, err := model.MinProcessors(tmax)
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, k := range minAlloc {
		total += k
	}
	estMin, err := model.ExpectedSojourn(minAlloc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMinProcessors(%.0f ms) = %v — %d processors, E[T] = %.2f ms\n",
		tmax*1e3, minAlloc, total, estMin*1e3)

	// What a bad placement costs: move two processors away from the
	// bottleneck and re-estimate.
	bad := append([]int(nil), alloc...)
	for i := range bad {
		if bad[i] > 2 {
			bad[i] -= 2
			bad[(i+1)%len(bad)] += 2
			break
		}
	}
	estBad, err := model.ExpectedSojourn(bad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmisplacing two processors %v -> %v costs %.2f ms -> %.2f ms\n",
		alloc, bad, est*1e3, estBad*1e3)
}
