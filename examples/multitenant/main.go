// Multi-tenant scheduling demo, live: two supervised topologies share one
// machine pool through the cluster Scheduler, and a load surge on the
// high-priority tenant drags slots away from the low-priority one — then
// hands them back when the surge passes.
//
// Two identical two-operator pipelines (extract -> match, exponential
// service times) run as tenants of one pool of 3 machines x 3 slots:
//
//   - "analytics" (priority 0, weight 2, Tmax 33 ms) carries a steady
//     140 tuples/s. Program (6) sizes it at 6 slots, (3:3) — two above
//     its stable minimum of 4, which is also its preemption floor. Those
//     two slots are what the arbiter can move.
//   - "checkout" (priority 1, Tmax 90 ms) starts at a light 30 tuples/s
//     (2 slots), surges to 150/s mid-run (needs 5), then drops back.
//
// During the surge, checkout's supervisor measures the Tmax violation and
// requests more slots; the 9-slot pool has only one free, so the
// scheduler — priority plus a cleared Appendix-B cost/benefit guard —
// preempts analytics down to its floor. Analytics' supervisor vacates the
// lost slots gracefully at its next tick (it runs degraded but stable,
// and keeps bidding). When the surge ends, checkout scales in and
// analytics reclaims its slots.
//
// Run:
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"
	"log/slog"
	"math"
	"math/rand"
	"os"
	"sync/atomic"
	"time"

	drs "github.com/drs-repro/drs"
	"github.com/drs-repro/drs/internal/engine"
	"github.com/drs-repro/drs/internal/loop"
)

// Demo parameters: millisecond-scale services keep the run under a minute
// of wall time while preserving the arbitration dynamics.
const (
	muExtract = 100.0 // tuples/s one extract executor serves
	muMatch   = 80.0  // tuples/s one match executor serves

	checkoutTmax  = 0.090 // the high-priority tenant's target, seconds
	analyticsTmax = 0.033 // the low-priority tenant's target, seconds

	checkoutLow   = 30.0  // checkout arrivals outside the surge
	checkoutHigh  = 150.0 // surge arrivals — needs most of the pool
	analyticsLoad = 140.0 // analytics' steady arrivals

	phase1 = 12 * time.Second // both settle
	phase2 = 20 * time.Second // surge: scheduler must shift slots
	phase3 = 16 * time.Second // surge over: slots must come back
)

// poissonSpout emits tuples with exponential inter-arrival times at a
// switchable rate.
type poissonSpout struct {
	rate *atomic.Uint64 // math.Float64bits of tuples/s
	rng  *rand.Rand
}

func (s *poissonSpout) Run(ctx engine.SpoutContext) error {
	for {
		rate := math.Float64frombits(s.rate.Load())
		wait := time.Duration(s.rng.ExpFloat64() / rate * float64(time.Second))
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(wait):
			if !ctx.Paused() {
				ctx.Emit(engine.Values{0})
			}
		}
	}
}

// serviceBolt sleeps an exponential service time and forwards the tuple.
func serviceBolt(mu float64) engine.BoltFactory {
	return func(task int) engine.Bolt {
		rng := rand.New(rand.NewSource(int64(task) + 1))
		return engine.BoltFunc(func(_ engine.Tuple, emit engine.Emit) error {
			time.Sleep(time.Duration(rng.ExpFloat64() / mu * float64(time.Second)))
			emit(engine.Values{0})
			return nil
		})
	}
}

// tenant bundles one supervised pipeline and its lease.
type tenant struct {
	name  string
	rate  *atomic.Uint64
	run   *engine.Run
	lease *drs.Tenant
	sup   *drs.Supervisor
}

// startTenant builds, registers and supervises one pipeline. floor is the
// preemption floor (size it at the pipeline's stable minimum); alloc is
// the starting executor split, which also fixes the initial grant.
func startTenant(sched *drs.Scheduler, name string, prio int, weight, tmax, rate float64,
	floor int, alloc map[string]int, seed int64) (*tenant, error) {
	r := &atomic.Uint64{}
	r.Store(math.Float64bits(rate))
	topo, err := engine.NewTopology().
		Spout("source", 1, func(int) engine.Spout {
			return &poissonSpout{rate: r, rng: rand.New(rand.NewSource(seed))}
		}).
		// 9 tasks per bolt: the whole pool (3 machines x 3 slots) could in
		// principle land on one operator.
		Bolt("extract", 9, serviceBolt(muExtract)).
		Bolt("match", 9, serviceBolt(muMatch)).
		Shuffle("source", "extract").
		Shuffle("extract", "match").
		Build()
	if err != nil {
		return nil, err
	}
	initial := 0
	for _, k := range alloc {
		initial += k
	}
	lease, err := sched.Register(drs.TenantConfig{
		Name:         name,
		Weight:       weight,
		Priority:     prio,
		MinSlots:     floor,
		InitialSlots: initial,
	})
	if err != nil {
		return nil, err
	}
	run, err := topo.Start(engine.RunConfig{
		Alloc:          alloc,
		QuiesceTimeout: 20 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	ctrl, err := drs.NewController(drs.ControllerConfig{
		Mode:                  drs.ModeMinResource,
		Tmax:                  tmax,
		MinGain:               0.05,
		ScaleInSlack:          0.25,
		MaxScaleInUtilization: 0.9,
	})
	if err != nil {
		return nil, err
	}
	sup, err := drs.NewSupervisor(drs.SupervisorConfig{
		Target:    loop.EngineTarget(run),
		Operators: run.BoltNames(),
		Stepper:   ctrl,
		Pool:      lease,
		Interval:  time.Second,
		Cooldown:  3 * time.Second,
		Logger:    slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn})),
	})
	if err != nil {
		return nil, err
	}
	return &tenant{name: name, rate: r, run: run, lease: lease, sup: sup}, nil
}

func main() {
	pool, err := drs.NewClusterPool(drs.ClusterPoolConfig{
		SlotsPerMachine: 3,
		MaxMachines:     3, // 9 slots: one short of both tenants' peak demands
		Costs: drs.ClusterCostModel{
			Rebalance:        200 * time.Millisecond,
			MachineColdStart: 500 * time.Millisecond,
			MachineRelease:   200 * time.Millisecond,
		},
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := drs.NewScheduler(drs.SchedulerConfig{
		Pool:       pool,
		CostWindow: 20 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	analytics, err := startTenant(sched, "analytics", 0, 2, analyticsTmax, analyticsLoad,
		4, map[string]int{"extract": 3, "match": 3}, 7)
	if err != nil {
		log.Fatal(err)
	}
	defer analytics.run.Stop()
	checkout, err := startTenant(sched, "checkout", 1, 1, checkoutTmax, checkoutLow,
		2, map[string]int{"extract": 1, "match": 1}, 11)
	if err != nil {
		log.Fatal(err)
	}
	defer checkout.run.Stop()

	for _, t := range []*tenant{analytics, checkout} {
		if err := t.sup.Start(); err != nil {
			log.Fatal(err)
		}
		defer t.sup.Stop()
	}
	st := sched.State()
	fmt.Printf("pool: %d machines, %d slots; checkout Tmax %.0f ms (priority 1), analytics Tmax %.0f ms (priority 0)\n\n",
		st.Machines, st.Capacity, checkoutTmax*1e3, analyticsTmax*1e3)
	start := time.Now()
	doubleLeased := false
	report := func(until time.Duration) {
		for time.Since(start) < until {
			time.Sleep(2 * time.Second)
			st := sched.State()
			if st.Leased > st.Capacity {
				doubleLeased = true
			}
			line := fmt.Sprintf("  t=%4.1fs capacity=%-2d", time.Since(start).Seconds(), st.Capacity)
			for _, t := range []*tenant{checkout, analytics} {
				if snap, ok := t.sup.LastSnapshot(); ok {
					line += fmt.Sprintf("  %s: %d slots E[T]=%5.1fms", t.name, t.lease.Kmax(), snap.MeasuredSojourn*1e3)
				} else {
					line += fmt.Sprintf("  %s: %d slots (warming)", t.name, t.lease.Kmax())
				}
			}
			fmt.Println(line)
		}
	}

	fmt.Printf("phase 1: checkout %.0f/s, analytics %.0f/s — both settle\n", checkoutLow, analyticsLoad)
	report(phase1)
	fmt.Printf("\nphase 2: checkout surges to %.0f/s — the arbiter must shift slots\n", checkoutHigh)
	checkout.rate.Store(math.Float64bits(checkoutHigh))
	report(phase1 + phase2)
	fmt.Printf("\nphase 3: checkout drops back to %.0f/s — slots must return\n", checkoutLow)
	checkout.rate.Store(math.Float64bits(checkoutLow))
	report(phase1 + phase2 + phase3)

	for _, t := range []*tenant{analytics, checkout} {
		t.sup.Stop()
	}
	fmt.Println("\nscheduler history:")
	preempted := false
	for _, ev := range sched.History() {
		fmt.Printf("  %s\n", ev)
		if ev.Kind == "preempt" {
			preempted = true
		}
	}
	checkoutPeak := 0
	for _, ev := range checkout.sup.History() {
		if ev.Applied && ev.Kmax > checkoutPeak {
			checkoutPeak = ev.Kmax
		}
	}
	fmt.Printf("\ncheckout peak grant: %d slots; preemption fired: %v; double-leased: %v\n",
		checkoutPeak, preempted, doubleLeased)
	fmt.Printf("final grants: checkout=%d analytics=%d of %d\n",
		checkout.lease.Kmax(), analytics.lease.Kmax(), sched.State().Capacity)
	if doubleLeased || checkoutPeak <= 3 {
		os.Exit(1)
	}
}
