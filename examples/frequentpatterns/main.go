// Frequent pattern detection on the live engine: the loop topology of the
// paper's Figure 5 running for real — two window spouts, candidate
// expansion, a partitioned stateful detector whose frequency transitions
// are broadcast to all of its own tasks over a feedback edge, and a
// reporter receiving maximal-frequent-pattern updates.
//
// Run:
//
//	go run ./examples/frequentpatterns [-seconds 15]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"github.com/drs-repro/drs/internal/apps/fpd"
	"github.com/drs-repro/drs/internal/engine"
)

func main() {
	seconds := flag.Int("seconds", 15, "how long to run")
	flag.Parse()

	var mu sync.Mutex
	current := make(map[string]int) // MFP key -> occurrence count
	topo, err := fpd.Pipeline(fpd.PipelineConfig{
		TweetsPerSecond: 400,
		WindowSize:      1500,
		Vocabulary:      60,
		Threshold:       40,
		Tasks:           12,
		Seed:            11,
		OnReport: func(mc fpd.MFPChange) {
			mu.Lock()
			defer mu.Unlock()
			if mc.Maximal {
				current[mc.Set.Key()] = mc.Count
			} else {
				delete(current, mc.Set.Key())
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	run, err := topo.Start(engine.RunConfig{
		Alloc: map[string]int{"generate": 3, "detect": 6, "report": 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := run.Stop(); err != nil {
			log.Printf("stop: %v", err)
		}
	}()

	fmt.Printf("mining maximal frequent patterns over a sliding window for %ds...\n", *seconds)
	ticker := time.NewTicker(3 * time.Second)
	defer ticker.Stop()
	deadline := time.After(time.Duration(*seconds) * time.Second)
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		case <-ticker.C:
		}
		rep := run.DrainInterval()
		mu.Lock()
		keys := make([]string, 0, len(current))
		for k := range current {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("\n%d tweets/s in, %d candidates processed, %d current MFPs:\n",
			rep.ExternalArrivals/int64(3), rep.Ops[1].Served, len(keys))
		for i, k := range keys {
			if i == 10 {
				fmt.Printf("  ... and %d more\n", len(keys)-10)
				break
			}
			fmt.Printf("  {%s} seen %d times in the window\n", k, current[k])
		}
		mu.Unlock()
	}
	count, mean := run.Completions()
	fmt.Printf("\ndone: %d window events fully processed, mean sojourn %v\n",
		count, mean.Round(time.Microsecond))
}
