// Video logo detection on the live engine, with DRS closing the loop: the
// pipeline (synthetic frames -> feature extraction -> descriptor matching ->
// per-frame aggregation) runs on real goroutine executors, the measurer
// pulls its probes every interval, and the controller's rebalance decisions
// are applied to the running topology without stopping it — the paper's
// §IV architecture end to end, scaled to a laptop.
//
// The run starts deliberately misallocated (1 extractor executor): watch
// the extractor queue grow, then DRS shift executors and the sojourn
// recover.
//
// Run:
//
//	go run ./examples/videologo [-seconds 20]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	drs "github.com/drs-repro/drs"
	"github.com/drs-repro/drs/internal/apps/vld"
	"github.com/drs-repro/drs/internal/engine"
)

func main() {
	seconds := flag.Int("seconds", 20, "how long to run")
	flag.Parse()

	var detections atomic.Int64
	topo, err := vld.Pipeline(vld.PipelineConfig{
		FPS:     40, // scaled up from the paper's 13 so short runs have data
		Frames:  vld.FrameGenConfig{W: 320, H: 240, Logos: 4, LogoProb: 0.6},
		Octaves: 6, // scale-space depth: makes extraction genuinely heavy
		Tasks:   12,
		Seed:    7,
		OnDetection: func(vld.Detection) {
			detections.Add(1)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Start under-provisioned on purpose: extraction is the heavy stage.
	run, err := topo.Start(engine.RunConfig{
		Alloc:         map[string]int{"extract": 1, "match": 6, "aggregate": 2},
		SampleEveryNm: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := run.Stop(); err != nil {
			log.Printf("stop: %v", err)
		}
	}()

	meas, err := drs.NewMeasurer(drs.MeasurerConfig{
		OperatorNames: vld.OperatorNames(),
		Smoothing:     drs.SmoothingSpec{Kind: "ewma", Alpha: 0.4},
	})
	if err != nil {
		log.Fatal(err)
	}
	const kmax = 9
	ctrl, err := drs.NewController(drs.ControllerConfig{
		Mode: drs.ModeMinLatency, Kmax: kmax, MinGain: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}

	names := vld.OperatorNames()
	fmt.Printf("running VLD for %ds with Kmax=%d, initial %v\n",
		*seconds, kmax, run.Allocation())
	ticker := time.NewTicker(2 * time.Second)
	defer ticker.Stop()
	deadline := time.After(time.Duration(*seconds) * time.Second)
	for {
		select {
		case <-deadline:
			count, mean := run.Completions()
			fmt.Printf("\ndone: %d frames fully processed, mean sojourn %v, %d detections\n",
				count, mean.Round(time.Millisecond), detections.Load())
			return
		case <-ticker.C:
		}
		if err := meas.AddInterval(run.DrainInterval()); err != nil {
			log.Printf("measurer: %v", err)
			continue
		}
		snap, err := meas.Snapshot()
		if err != nil {
			log.Printf("snapshot not ready: %v", err)
			continue
		}
		allocMap := run.Allocation()
		snap.Alloc = make([]int, len(names))
		for i, n := range names {
			snap.Alloc[i] = allocMap[n]
		}
		snap.Kmax = kmax
		fmt.Printf("t=%-4s measured E[T]=%-8v queues=%v alloc=%v\n",
			time.Now().Format("15:04:05"),
			time.Duration(snap.MeasuredSojourn*float64(time.Second)).Round(time.Millisecond),
			run.QueueLengths(), snap.Alloc)
		d, err := ctrl.Step(snap)
		if err != nil {
			log.Printf("controller: %v", err)
			continue
		}
		if d.Action != drs.ActionRebalance {
			continue
		}
		target := make(map[string]int, len(names))
		for i, n := range names {
			target[n] = d.Target[i]
		}
		fmt.Printf("  -> DRS rebalance to %v (%s)\n", d.Target, d.Reason)
		if err := run.Rebalance(target); err != nil {
			log.Printf("rebalance: %v", err)
		}
		meas.Reset() // old rates do not describe the new configuration
	}
}
