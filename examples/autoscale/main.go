// Autoscaling demo (the paper's Figure 10, compressed): DRS in
// min-resource mode drives the simulated VLD pipeline against a latency
// target, negotiating whole machines from the cluster pool.
//
// Phase 1 starts under-provisioned (4 machines, Kmax=17) with a tight
// target: DRS scales out to 5 machines and re-spreads to (10:11:1). Phase 2
// relaxes the target: DRS releases the machine again. Both transitions pay
// their modeled pause (cold-start vs release), visible as a latency spike.
//
// Run:
//
//	go run ./examples/autoscale
package main

import (
	"fmt"
	"log"
	"math"

	drs "github.com/drs-repro/drs"
	"github.com/drs-repro/drs/internal/apps/vld"
	"github.com/drs-repro/drs/internal/cluster"
	"github.com/drs-repro/drs/internal/sim"
)

func main() {
	pool, err := cluster.PaperPool(4) // Kmax 17
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := vld.SimConfig(vld.SmallPoolAllocation(), 42)
	if err != nil {
		log.Fatal(err)
	}
	s, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	s.EnableSeries(30)

	meas, err := drs.NewMeasurer(drs.MeasurerConfig{
		OperatorNames: vld.OperatorNames(),
		Smoothing:     drs.SmoothingSpec{Kind: "window", Window: 6},
	})
	if err != nil {
		log.Fatal(err)
	}

	phase := func(name string, tmax, from, until float64) {
		ctrl, err := drs.NewController(drs.ControllerConfig{
			Mode:                  drs.ModeMinResource,
			Tmax:                  tmax,
			MinGain:               0.05,
			ScaleInSlack:          0.35,
			MaxScaleInUtilization: 0.9,
			SlotsPerMachine:       5,
			ReservedSlots:         3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n== %s: Tmax = %.0f ms, %d machines, Kmax = %d, alloc %v\n",
			name, tmax*1e3, pool.Machines(), pool.Kmax(), s.Allocation())
		cooldown := 0.0
		for t := from + 10; t <= until; t += 10 {
			s.RunUntil(t)
			if err := meas.AddInterval(s.DrainInterval()); err != nil {
				log.Fatal(err)
			}
			if t < cooldown {
				continue
			}
			snap, err := meas.Snapshot()
			if err != nil {
				continue
			}
			snap.Alloc = s.Allocation()
			snap.Kmax = pool.Kmax()
			d, err := ctrl.Step(snap)
			if err != nil {
				log.Printf("controller: %v", err)
				continue
			}
			if d.Action == drs.ActionNone {
				continue
			}
			var tr cluster.Transition
			switch d.Action {
			case drs.ActionRebalance:
				tr = pool.Rebalance()
			default:
				if tr, err = pool.Resize(d.TargetKmax); err != nil {
					log.Printf("negotiator: %v", err)
					continue
				}
			}
			fmt.Printf("t=%4.0fs %-9s -> machines=%d Kmax=%d alloc=%v pause=%.1fs\n    %s\n",
				t, d.Action, pool.Machines(), pool.Kmax(), d.Target, tr.Pause.Seconds(), d.Reason)
			if err := s.SetAllocation(d.Target, tr.Pause.Seconds()); err != nil {
				log.Fatal(err)
			}
			meas.Reset()
			cooldown = t + 40
		}
	}

	phase("phase 1 (scale out)", 1.25, 0, 420)
	phase("phase 2 (scale in)", 2.0, 420, 840)

	fmt.Println("\nper-30s mean sojourn (ms):")
	for _, pt := range s.Series() {
		bar := int(pt.MeanSojourn * 20)
		if math.IsNaN(pt.MeanSojourn) {
			continue
		}
		if bar > 60 {
			bar = 60
		}
		fmt.Printf("%5.0fs %6.0f %s\n", pt.Start, pt.MeanSojourn*1e3, barString(bar))
	}
	fmt.Printf("\nfinal: %d machines, Kmax=%d, alloc %v\n",
		pool.Machines(), pool.Kmax(), s.Allocation())
}

func barString(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}
