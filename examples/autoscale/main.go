// Autoscaling demo, live: the DRS Supervisor closes the paper's §IV
// control loop against the built-in goroutine engine under a shifting
// arrival rate.
//
// A two-operator pipeline (extract -> match, exponential service times)
// starts on one machine (Kmax = 3) under a light load that the small pool
// handles comfortably. A third of the way in, the arrival rate steps from
// 30 to 120 tuples/s — beyond what one extract executor can serve — and
// the measured sojourn blows through the 80 ms target. The supervisor's
// min-resource controller (Program (6)) detects the violation from live
// measurements, negotiates a second machine from the pool, rebalances onto
// it, and the measured sojourn returns under the target. When the load
// drops back, the scale-in hysteresis releases the machine again.
//
// Run:
//
//	go run ./examples/autoscale
package main

import (
	"fmt"
	"log"
	"log/slog"
	"math"
	"math/rand"
	"os"
	"sync/atomic"
	"time"

	drs "github.com/drs-repro/drs"
	"github.com/drs-repro/drs/internal/cluster"
	"github.com/drs-repro/drs/internal/engine"
	"github.com/drs-repro/drs/internal/loop"
)

// Demo parameters: millisecond-scale services keep the whole run under a
// minute of wall time while preserving the paper's dynamics.
const (
	muExtract = 100.0 // tuples/s one extract executor serves (10 ms mean)
	muMatch   = 80.0  // tuples/s one match executor serves (12.5 ms mean)
	tmax      = 0.080 // the real-time constraint, seconds

	lowRate  = 30.0  // phase 1/3 arrivals, tuples/s
	highRate = 120.0 // phase 2 arrivals — saturates one extract executor

	phase1 = 15 * time.Second // low load, small pool
	phase2 = 20 * time.Second // step load: supervisor must scale out
	phase3 = 20 * time.Second // load drops: supervisor may scale in
)

// poissonSpout emits tuples with exponential inter-arrival times at a
// switchable rate.
type poissonSpout struct {
	rate *atomic.Uint64 // math.Float64bits of tuples/s
	rng  *rand.Rand
}

func (s *poissonSpout) Run(ctx engine.SpoutContext) error {
	for {
		rate := math.Float64frombits(s.rate.Load())
		wait := time.Duration(s.rng.ExpFloat64() / rate * float64(time.Second))
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(wait):
			if !ctx.Paused() {
				ctx.Emit(engine.Values{0})
			}
		}
	}
}

// serviceBolt sleeps an exponential service time and forwards the tuple —
// an M/M/k server when run across k executors.
func serviceBolt(mu float64) engine.BoltFactory {
	return func(task int) engine.Bolt {
		rng := rand.New(rand.NewSource(int64(task) + 1))
		return engine.BoltFunc(func(_ engine.Tuple, emit engine.Emit) error {
			time.Sleep(time.Duration(rng.ExpFloat64() / mu * float64(time.Second)))
			emit(engine.Values{0})
			return nil
		})
	}
}

func main() {
	// The cluster: 4-slot machines, one slot reserved, scaled-down
	// transition costs so the pauses stay visible but short.
	pool, err := cluster.NewPool(cluster.PoolConfig{
		SlotsPerMachine: 4,
		ReservedSlots:   1,
		MaxMachines:     4,
		Costs: cluster.CostModel{
			Rebalance:        200 * time.Millisecond,
			MachineColdStart: 500 * time.Millisecond,
			MachineRelease:   200 * time.Millisecond,
		},
	}, 1) // one machine: Kmax = 3
	if err != nil {
		log.Fatal(err)
	}

	rate := &atomic.Uint64{}
	rate.Store(math.Float64bits(lowRate))
	topo, err := engine.NewTopology().
		Spout("source", 1, func(int) engine.Spout {
			return &poissonSpout{rate: rate, rng: rand.New(rand.NewSource(42))}
		}).
		// 16 tasks per bolt: above the largest budget the pool can offer
		// (4 machines × 4 slots − 1 = 15), so the engine can absorb any
		// allocation the controller negotiates, even if a backlog-inflated
		// measurement concentrates the whole pool on one operator.
		Bolt("extract", 16, serviceBolt(muExtract)).
		Bolt("match", 16, serviceBolt(muMatch)).
		Shuffle("source", "extract").
		Shuffle("extract", "match").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	run, err := topo.Start(engine.RunConfig{
		Alloc:          map[string]int{"extract": 1, "match": 2},
		QuiesceTimeout: 20 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer run.Stop()

	ctrl, err := drs.NewController(drs.ControllerConfig{
		Mode:                  drs.ModeMinResource,
		Tmax:                  tmax,
		MinGain:               0.05,
		ScaleInSlack:          0.35,
		MaxScaleInUtilization: 0.9,
		SlotsPerMachine:       4,
		ReservedSlots:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	sup, err := drs.NewSupervisor(drs.SupervisorConfig{
		Target:    loop.EngineTarget(run),
		Operators: run.BoltNames(),
		Stepper:   ctrl,
		Pool:      pool,
		Interval:  time.Second,
		Cooldown:  4 * time.Second,
		Logger:    slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn})),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sup.Start(); err != nil {
		log.Fatal(err)
	}
	defer sup.Stop()

	fmt.Printf("target E[T] <= %.0f ms; machines=%d Kmax=%d alloc=%v\n\n",
		tmax*1e3, pool.Machines(), pool.Kmax(), run.Allocation())
	start := time.Now()

	fmt.Printf("phase 1: lambda0 = %.0f tuples/s\n", lowRate)
	reportLoop(sup, run, pool, start, phase1)

	fmt.Printf("\nphase 2: lambda0 steps to %.0f tuples/s\n", highRate)
	rate.Store(math.Float64bits(highRate))
	reportLoop(sup, run, pool, start, phase1+phase2)

	fmt.Printf("\nphase 3: lambda0 drops back to %.0f tuples/s\n", lowRate)
	rate.Store(math.Float64bits(lowRate))
	reportLoop(sup, run, pool, start, phase1+phase2+phase3)

	sup.Stop()
	fmt.Println("\ndecision history:")
	scaledOut := false
	for _, ev := range sup.History() {
		fmt.Printf("  t=%4.1fs %s\n", ev.At.Sub(start).Seconds(), ev)
		if ev.Action == drs.ActionScaleOut && ev.Applied {
			scaledOut = true
		}
	}
	snap, ok := sup.LastSnapshot()
	converged := ok && snap.MeasuredSojourn > 0 && snap.MeasuredSojourn <= tmax
	if ok {
		fmt.Printf("\nfinal: machines=%d Kmax=%d alloc=%v measured E[T]=%.1f ms\n",
			pool.Machines(), pool.Kmax(), run.Allocation(), snap.MeasuredSojourn*1e3)
	} else {
		fmt.Println("\nfinal: no measurement snapshot was ever produced")
	}
	fmt.Printf("scaled out under load: %v; converged under target: %v\n", scaledOut, converged)
	if !scaledOut || !converged {
		os.Exit(1)
	}
}

// reportLoop prints the supervisor's live view every 2 s until the demo
// clock reaches until.
func reportLoop(sup *drs.Supervisor, run interface{ Allocation() map[string]int },
	pool *cluster.Pool, start time.Time, until time.Duration) {
	for time.Since(start) < until {
		time.Sleep(2 * time.Second)
		snap, ok := sup.LastSnapshot()
		if !ok {
			fmt.Printf("  t=%4.1fs warming up\n", time.Since(start).Seconds())
			continue
		}
		bar := int(snap.MeasuredSojourn * 250)
		if bar > 60 {
			bar = 60
		}
		fmt.Printf("  t=%4.1fs E[T]=%6.1f ms lambda0=%5.1f/s machines=%d alloc=%v %s\n",
			time.Since(start).Seconds(), snap.MeasuredSojourn*1e3, snap.Lambda0,
			pool.Machines(), run.Allocation(), barString(bar))
	}
}

func barString(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}
