// Machine-failure and churn demo, live: two supervised topologies share
// one machine pool through the cluster Scheduler, a machine crashes
// mid-run and an executor of one topology is killed outright — and the
// whole stack survives: the scheduler re-arbitrates the leases against
// the surviving capacity out of band (slots-lost attribution, floors
// intact), the affected supervisor vacates the lost slots at its next
// tick (a SlotsLost event, not a preemption), the engine replays the
// crashed executor's backlog onto a fresh replacement so no tuple is
// lost, and when the machine recovers the standing demands re-claim the
// capacity.
//
// The cast mirrors examples/multitenant: two identical extract -> match
// pipelines on a pool of 3 machines x 3 slots —
//
//   - "analytics" (priority 0, weight 2) carries a steady 140 tuples/s
//     and settles at 6 slots, floor 4: the two slots above its floor are
//     what the crash takes;
//   - "checkout" (priority 1) idles at 30 tuples/s on 2 slots, its floor.
//
// Killing one machine drops the capacity from 9 to 6 — exactly the two
// floors — so analytics must shed its two comfort slots the moment the
// crash lands, and reclaim them the moment the machine recovers.
//
// Run:
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"
	"log/slog"
	"math"
	"math/rand"
	"os"
	"sync/atomic"
	"time"

	drs "github.com/drs-repro/drs"
	"github.com/drs-repro/drs/internal/engine"
	"github.com/drs-repro/drs/internal/loop"
)

// Demo parameters: millisecond-scale services keep the run under a minute
// of wall time while preserving the failover dynamics.
const (
	muExtract = 100.0 // tuples/s one extract executor serves
	muMatch   = 80.0  // tuples/s one match executor serves

	analyticsTmax = 0.033 // seconds
	checkoutTmax  = 0.090 // seconds

	analyticsLoad = 140.0 // analytics' steady arrivals
	checkoutLoad  = 30.0  // checkout's steady arrivals

	settle   = 14 * time.Second // both tenants converge
	outage   = 12 * time.Second // one machine down
	recovery = 12 * time.Second // machine back; slots must return
)

// poissonSpout emits tuples with exponential inter-arrival times.
type poissonSpout struct {
	rate *atomic.Uint64 // math.Float64bits of tuples/s
	rng  *rand.Rand
}

func (s *poissonSpout) Run(ctx engine.SpoutContext) error {
	for {
		rate := math.Float64frombits(s.rate.Load())
		wait := time.Duration(s.rng.ExpFloat64() / rate * float64(time.Second))
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(wait):
			if !ctx.Paused() {
				ctx.Emit(engine.Values{0})
			}
		}
	}
}

// serviceBolt sleeps an exponential service time and forwards the tuple.
func serviceBolt(mu float64) engine.BoltFactory {
	return func(task int) engine.Bolt {
		rng := rand.New(rand.NewSource(int64(task) + 1))
		return engine.BoltFunc(func(_ engine.Tuple, emit engine.Emit) error {
			time.Sleep(time.Duration(rng.ExpFloat64() / mu * float64(time.Second)))
			emit(engine.Values{0})
			return nil
		})
	}
}

// tenant bundles one supervised pipeline and its lease.
type tenant struct {
	name  string
	run   *engine.Run
	lease *drs.Tenant
	sup   *drs.Supervisor
}

// startTenant builds, registers and supervises one pipeline.
func startTenant(sched *drs.Scheduler, name string, prio int, weight, tmax, rate float64,
	floor int, alloc map[string]int, seed int64) (*tenant, error) {
	r := &atomic.Uint64{}
	r.Store(math.Float64bits(rate))
	topo, err := engine.NewTopology().
		Spout("source", 1, func(int) engine.Spout {
			return &poissonSpout{rate: r, rng: rand.New(rand.NewSource(seed))}
		}).
		Bolt("extract", 9, serviceBolt(muExtract)).
		Bolt("match", 9, serviceBolt(muMatch)).
		Shuffle("source", "extract").
		Shuffle("extract", "match").
		Build()
	if err != nil {
		return nil, err
	}
	initial := 0
	for _, k := range alloc {
		initial += k
	}
	lease, err := sched.Register(drs.TenantConfig{
		Name: name, Weight: weight, Priority: prio, MinSlots: floor, InitialSlots: initial,
	})
	if err != nil {
		return nil, err
	}
	run, err := topo.Start(engine.RunConfig{Alloc: alloc, QuiesceTimeout: 20 * time.Second})
	if err != nil {
		return nil, err
	}
	ctrl, err := drs.NewController(drs.ControllerConfig{
		Mode:                  drs.ModeMinResource,
		Tmax:                  tmax,
		MinGain:               0.05,
		ScaleInSlack:          0.25,
		MaxScaleInUtilization: 0.9,
	})
	if err != nil {
		return nil, err
	}
	sup, err := drs.NewSupervisor(drs.SupervisorConfig{
		Target:    loop.EngineTarget(run),
		Operators: run.BoltNames(),
		Stepper:   ctrl,
		Pool:      lease,
		Interval:  time.Second,
		Cooldown:  3 * time.Second,
		Logger:    slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn})),
	})
	if err != nil {
		return nil, err
	}
	return &tenant{name: name, run: run, lease: lease, sup: sup}, nil
}

func main() {
	pool, err := drs.NewClusterPool(drs.ClusterPoolConfig{
		SlotsPerMachine: 3,
		MaxMachines:     3,
		Costs: drs.ClusterCostModel{
			Rebalance:        200 * time.Millisecond,
			MachineColdStart: 500 * time.Millisecond,
			MachineRelease:   200 * time.Millisecond,
		},
	}, 3)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := drs.NewScheduler(drs.SchedulerConfig{Pool: pool, CostWindow: 20 * time.Second})
	if err != nil {
		log.Fatal(err)
	}

	analytics, err := startTenant(sched, "analytics", 0, 2, analyticsTmax, analyticsLoad,
		4, map[string]int{"extract": 3, "match": 3}, 7)
	if err != nil {
		log.Fatal(err)
	}
	checkout, err := startTenant(sched, "checkout", 1, 1, checkoutTmax, checkoutLoad,
		2, map[string]int{"extract": 1, "match": 1}, 11)
	if err != nil {
		log.Fatal(err)
	}
	tenants := []*tenant{analytics, checkout}
	for _, t := range tenants {
		if err := t.sup.Start(); err != nil {
			log.Fatal(err)
		}
	}
	st := sched.State()
	fmt.Printf("pool: %d machines, %d slots; analytics floor 4, checkout floor 2\n\n", st.Machines, st.Capacity)

	start := time.Now()
	doubleLeased := false
	report := func(until time.Duration) {
		for time.Since(start) < until {
			time.Sleep(2 * time.Second)
			st := sched.State()
			if st.Leased > st.Capacity {
				doubleLeased = true
			}
			line := fmt.Sprintf("  t=%4.1fs capacity=%-2d", time.Since(start).Seconds(), st.Capacity)
			for _, t := range tenants {
				line += fmt.Sprintf("  %s: %d slots (lost %d)", t.name, t.lease.Kmax(), t.lease.LostSlots())
			}
			fmt.Println(line)
		}
	}

	fmt.Println("phase 1: both tenants settle")
	report(settle)

	// Pick the machine hosting the most analytics slots and kill it; at
	// the same time crash one of analytics' extract executors outright.
	victim, worst := 0, -1
	for id, n := range analytics.lease.Placement() {
		if n > worst {
			victim, worst = id, n
		}
	}
	fmt.Printf("\nphase 2: machine %d crashes (capacity drops to the floors) + one extract executor killed\n", victim)
	if err := sched.FailMachine(victim); err != nil {
		log.Fatal(err)
	}
	replayed, err := analytics.run.FailExecutor("extract", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  executor crash: %d backlog tuples replayed onto the replacement\n", replayed)
	report(settle + outage)

	fmt.Printf("\nphase 3: machine %d recovers — the shed slots must return\n", victim)
	if err := sched.RecoverMachine(victim); err != nil {
		log.Fatal(err)
	}
	report(settle + outage + recovery)

	for _, t := range tenants {
		t.sup.Stop()
	}
	// Stop drains in-flight trees; a nil error is the zero-lost proof —
	// every external tuple, the replayed backlog included, completed.
	lost := false
	for _, t := range tenants {
		if err := t.run.Stop(); err != nil {
			fmt.Printf("  %s: stop: %v\n", t.name, err)
			lost = true
		}
	}

	fmt.Println("\nscheduler history:")
	sawSlotsLost, sawRecover := false, false
	for _, ev := range sched.History() {
		fmt.Printf("  %s\n", ev)
		switch ev.Kind {
		case "slots-lost":
			sawSlotsLost = true
		case "machine-recover":
			sawRecover = true
		}
	}
	supSlotsLost := false
	for _, ev := range analytics.sup.History() {
		if ev.SlotsLost && ev.Applied {
			supSlotsLost = true
		}
	}
	fmt.Printf("\nanalytics: lost-to-failure=%d, executor crashes=%d, tuples replayed=%d\n",
		analytics.lease.LostSlots(), analytics.run.ExecutorFailures(), analytics.run.Replayed())
	fmt.Printf("slots-lost arbitration: %v; supervisor SlotsLost re-fit: %v; machine recovered: %v\n",
		sawSlotsLost, supSlotsLost, sawRecover)
	fmt.Printf("double-leased: %v; tuples lost: %v; final grants: analytics=%d checkout=%d of %d\n",
		doubleLeased, lost, analytics.lease.Kmax(), checkout.lease.Kmax(), sched.State().Capacity)
	if doubleLeased || lost || !sawSlotsLost || !supSlotsLost || !sawRecover {
		os.Exit(1)
	}
}
