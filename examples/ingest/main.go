// Network ingest demo, live: real clients push records over loopback TCP
// and HTTP into a supervised topology through the admission gate — the
// full front-door arc of DESIGN.md §8 on one machine.
//
// A two-stage pipeline (extract -> match, exponential 20 ms services)
// starts on one 2-slot machine behind the ingest Gate. Two TCP clients —
// "gold" (weight 4) and "bronze" (weight 1) — plus an HTTP client offer a
// light load the small grant handles comfortably. A third of the way in,
// bronze surges ×20, far past what even the 4-machine provider cap can
// serve under the 250 ms target: the gate starts shedding with explicit
// backpressure (TCP NACKs, HTTP 429s, retry-after hints), lowest-weight
// traffic first, while the offered-vs-admitted split keeps the *true*
// demand visible to the Supervisor — which scales the pool out to the
// cap. When the surge passes, the gate returns to admit-all, the pool
// scales back in, and the books close: every admitted record was fully
// processed (zero admitted-tuple loss), and everything shed was refused
// loudly, never silently dropped.
//
// Run:
//
//	go run ./examples/ingest
package main

import (
	"fmt"
	"log"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/drs-repro/drs/internal/cluster"
	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/engine"
	"github.com/drs-repro/drs/internal/ingest"
	"github.com/drs-repro/drs/internal/loop"
)

const (
	mu    = 50.0  // tuples/s one executor serves (20 ms mean service)
	tmax  = 0.250 // the latency target, seconds
	slots = 2     // slots per machine
	cap4  = 4     // provider cap in machines (8 slots)

	goldRate   = 20.0  // gold's offered rate throughout
	bronzeBase = 10.0  // bronze outside the surge
	bronzePeak = 200.0 // bronze inside the surge: needs ~10 slots of 8
	httpRate   = 5.0   // the HTTP client's background load

	phase1 = 8 * time.Second  // light load, small pool
	phase2 = 12 * time.Second // surge: shed + scale-out to the cap
	phase3 = 10 * time.Second // recovery: admit-all, scale-in
)

// serviceBolt sleeps an exponential service time; forward=true emits.
func serviceBolt(seed int64, forward bool) engine.BoltFactory {
	return func(task int) engine.Bolt {
		rng := rand.New(rand.NewSource(seed + int64(task)))
		return engine.BoltFunc(func(_ engine.Tuple, emit engine.Emit) error {
			time.Sleep(time.Duration(rng.ExpFloat64() / mu * float64(time.Second)))
			if forward {
				emit(engine.Values{0})
			}
			return nil
		})
	}
}

// pacedTCPClient pushes records over one ingest TCP connection at a
// switchable rate, counting verdicts.
type pacedTCPClient struct {
	id             string
	rate           atomic.Uint64
	admitted, shed atomic.Int64
}

func (c *pacedTCPClient) run(addr string, stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	conn, err := ingest.DialTCP(addr, c.id)
	if err != nil {
		log.Printf("%s: %v", c.id, err)
		return
	}
	defer conn.Close()
	rec := []byte("record-" + c.id)
	for {
		wait := time.Duration(float64(time.Second) / float64(c.rate.Load()))
		select {
		case <-stop:
			return
		case <-time.After(wait):
			ok, _, err := conn.Send(rec)
			if err != nil {
				return
			}
			if ok {
				c.admitted.Add(1)
			} else {
				c.shed.Add(1)
			}
		}
	}
}

func main() {
	// The front door.
	gate := ingest.NewGate(ingest.GateConfig{
		Tmax: tmax, MaxSlots: slots * cap4,
		RingCapacity: 4096, ReplanEvery: 250 * time.Millisecond,
	})

	// The engine behind it: NetworkSpout -> extract -> match.
	topo, err := engine.NewTopology().
		Spout("front", 1, func(int) engine.Spout {
			return &engine.NetworkSpout{Source: gate.Ring(), MaxBatch: 64}
		}).
		Bolt("extract", 8, serviceBolt(1, true)).
		Bolt("match", 8, serviceBolt(1000, false)).
		Shuffle("front", "extract").
		Shuffle("extract", "match").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	run, err := topo.Start(engine.RunConfig{
		Alloc:          map[string]int{"extract": 1, "match": 1},
		QuiesceTimeout: 30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer run.Stop()

	// The cluster: a single tenant leased through the Scheduler, so a
	// beyond-cap scale-out request is granted partially (up to the cap)
	// instead of refused.
	pool, err := cluster.NewPool(cluster.PoolConfig{
		SlotsPerMachine: slots, MaxMachines: cap4,
		Costs: cluster.CostModel{
			Rebalance:        50 * time.Millisecond,
			MachineColdStart: 100 * time.Millisecond,
			MachineRelease:   50 * time.Millisecond,
		},
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := cluster.NewScheduler(cluster.SchedulerConfig{Pool: pool})
	if err != nil {
		log.Fatal(err)
	}
	lease, err := sched.Register(cluster.TenantConfig{Name: "front", MinSlots: 2, InitialSlots: 2})
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := core.NewController(core.ControllerConfig{
		Mode: core.ModeMinResource, Tmax: tmax,
		MinGain: 0.05, ScaleInSlack: 0.3, MaxScaleInUtilization: 0.6,
	})
	if err != nil {
		log.Fatal(err)
	}
	sup, err := loop.New(loop.Config{
		Target:    ingest.SupervisedTarget{Inner: loop.EngineTarget(run), Gate: gate},
		Operators: run.BoltNames(),
		Stepper:   ctrl,
		Pool:      lease,
		Interval:  500 * time.Millisecond,
		Cooldown:  1500 * time.Millisecond,
		Logger:    slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn})),
	})
	if err != nil {
		log.Fatal(err)
	}
	gate.SetControl(sup)
	if err := gate.Start(); err != nil {
		log.Fatal(err)
	}
	if err := sup.Start(); err != nil {
		log.Fatal(err)
	}
	defer sup.Stop()

	// Listeners on loopback: the clients below are real network clients.
	tcpL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	lcfg := ingest.ListenerConfig{Weights: map[string]float64{"gold": 4, "bronze": 1, "web": 2}}
	go func() {
		if err := ingest.ServeTCP(tcpL, gate, lcfg); err != nil {
			log.Println("tcp ingest listener died:", err)
		}
	}()
	httpL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: ingest.Handler(gate, lcfg)}
	go httpSrv.Serve(httpL)
	fmt.Printf("ingest: tcp://%s and http://%s/ingest; target E[T] <= %.0f ms, cap %d slots\n\n",
		tcpL.Addr(), httpL.Addr(), tmax*1e3, slots*cap4)

	// The clients.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	gold := &pacedTCPClient{id: "gold"}
	gold.rate.Store(uint64(goldRate))
	bronze := &pacedTCPClient{id: "bronze"}
	bronze.rate.Store(uint64(bronzeBase))
	wg.Add(2)
	go gold.run(tcpL.Addr().String(), stop, &wg)
	go bronze.run(tcpL.Addr().String(), stop, &wg)
	var http2xx, http429 atomic.Int64
	wg.Add(1)
	go func() { // a low-rate HTTP client rides along
		defer wg.Done()
		url := "http://" + httpL.Addr().String() + "/ingest"
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Duration(float64(time.Second) / httpRate)):
				req, _ := http.NewRequest("POST", url, strings.NewReader("web-record"))
				req.Header.Set(ingest.ClientIDHeader, "web")
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					continue
				}
				resp.Body.Close()
				if resp.StatusCode == http.StatusTooManyRequests {
					http429.Add(1)
				} else {
					http2xx.Add(1)
				}
			}
		}
	}()

	start := time.Now()
	report := func(until time.Duration) {
		for time.Since(start) < until {
			time.Sleep(2 * time.Second)
			st := gate.Stats()
			snapStr := "warming up"
			if snap, ok := sup.LastSnapshot(); ok {
				// The supervisor's snapshot is demand-scaled: its λ0 IS the
				// offered rate; the admit fraction shows the shed side.
				snapStr = fmt.Sprintf("offered %5.1f/s E[T] %5.0f ms",
					snap.OfferedLambda0, snap.MeasuredSojourn*1e3)
			}
			fmt.Printf("  t=%4.1fs %s | admit %3.0f%% | grant %d slots, %d machines, alloc %v\n",
				time.Since(start).Seconds(), snapStr, st.AdmitFraction*100,
				lease.Kmax(), pool.Machines(), run.Allocation())
		}
	}

	fmt.Printf("phase 1: gold %.0f/s + bronze %.0f/s + web %.0f/s — light load\n", goldRate, bronzeBase, httpRate)
	report(phase1)
	fmt.Printf("\nphase 2: bronze surges to %.0f/s — beyond the provider cap\n", bronzePeak)
	bronze.rate.Store(uint64(bronzePeak))
	report(phase1 + phase2)
	grantAtPeak := lease.Kmax()
	goldShedSurge, bronzeShedSurge := gold.shed.Load(), bronze.shed.Load()
	fmt.Printf("\nphase 3: bronze drops back to %.0f/s — un-shed and scale in\n", bronzeBase)
	bronze.rate.Store(uint64(bronzeBase))
	report(phase1 + phase2 + phase3)

	// Orderly shutdown: clients, listeners, gate (ring), drain, engine.
	close(stop)
	wg.Wait()
	httpSrv.Close()
	tcpL.Close()
	gate.Close()
	for gate.Ring().Len() > 0 {
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)
	sup.Stop()
	if err := run.Stop(); err != nil {
		log.Fatal(err)
	}

	st := gate.Stats()
	completions, meanSojourn := run.Completions()
	finalFraction := st.AdmitFraction
	fmt.Printf("\nverdicts: offered %d, admitted %d, shed %d (overload %d, backlog %d); http %d×2xx / %d×429\n",
		st.Offered, st.Admitted, st.ShedOverload+st.ShedBacklog+st.ShedRateLimit,
		st.ShedOverload, st.ShedBacklog, http2xx.Load(), http429.Load())
	fmt.Printf("clients: gold shed %d, bronze shed %d (weight-ordered shedding)\n",
		goldShedSurge, bronzeShedSurge)
	fmt.Printf("engine: %d completions, mean E[T] %.0f ms; grant at peak %d slots\n",
		completions, meanSojourn.Seconds()*1e3, grantAtPeak)

	shedHappened := st.ShedOverload > 0
	scaledToCap := grantAtPeak == slots*cap4
	weightOrdered := bronzeShedSurge > 0 && goldShedSurge*5 < bronzeShedSurge
	admitAllRestored := finalFraction >= 0.99
	zeroLoss := completions == st.Admitted
	fmt.Printf("\nshed under overload: %v; scaled out to the cap: %v; weight-ordered: %v; admit-all restored: %v; zero admitted-tuple loss: %v\n",
		shedHappened, scaledToCap, weightOrdered, admitAllRestored, zeroLoss)
	if !shedHappened || !scaledToCap || !weightOrdered || !admitAllRestored || !zeroLoss {
		os.Exit(1)
	}
}
