package core

import (
	"fmt"
	"os"
	"testing"
)

// TestCalibrationScratch is a development aid: it searches service-rate
// parameters for the VLD and FPD profiles that reproduce the paper's
// recommended allocations. Run with DRS_CALIBRATE=1.
func TestCalibrationScratch(t *testing.T) {
	if os.Getenv("DRS_CALIBRATE") == "" {
		t.Skip("set DRS_CALIBRATE=1 to run")
	}

	t.Run("VLD", func(t *testing.T) {
		// Frame-granularity chain: lambda_i = 13 for every stage; search
		// per-frame service seconds s1 (SIFT), s2 (matching), s3 (aggregate).
		found := 0
		for s1 := 0.40; s1 <= 0.61; s1 += 0.01 {
			for s2 := 0.40; s2 <= 0.61; s2 += 0.01 {
				for _, s3 := range []float64{0.01, 0.02, 0.03, 0.04, 0.05} {
					mu1, mu2, mu3 := 1/s1, 1/s2, 1/s3
					// Stability for all Fig-6 configs: a1<8, a2<9, a3<1.
					if 13/mu1 >= 8 || 13/mu2 >= 9 || 13/mu3 >= 1 {
						continue
					}
					mdl, err := NewModel(13, []OpRates{
						{Lambda: 13, Mu: mu1}, {Lambda: 13, Mu: mu2}, {Lambda: 13, Mu: mu3},
					})
					if err != nil {
						continue
					}
					k22, err := mdl.AssignProcessors(22)
					if err != nil || !allocEqual(k22, []int{10, 11, 1}) {
						continue
					}
					k17, err := mdl.AssignProcessors(17)
					if err != nil || !allocEqual(k17, []int{8, 8, 1}) {
						continue
					}
					et22, _ := mdl.ExpectedSojourn(k22)
					et17, _ := mdl.ExpectedSojourn(k17)
					found++
					fmt.Printf("VLD s1=%.2f s2=%.2f s3=%.2f | E22=%.3f E17=%.3f lb=%.3f\n",
						s1, s2, s3, et22, et17, mdl.LowerBound())
				}
			}
		}
		fmt.Printf("VLD candidates: %d\n", found)
	})

	t.Run("FPD", func(t *testing.T) {
		// lambda0 = 320 tweets/s, 2 spouts (+/-) -> 640 events/s at the
		// generator. Search: s1 secs/event, c candidates/event, s2,
		// loop gain g, notification selectivity r, s3.
		found := 0
		for _, s1 := range []float64{0.005, 0.006, 0.007, 0.008} {
			for _, c := range []float64{2, 3, 4} {
				for _, s2 := range []float64{0.004, 0.005, 0.006, 0.007} {
					for _, g := range []float64{0.02, 0.05, 0.10} {
						for _, r := range []float64{0.05, 0.10, 0.20} {
							for _, s3 := range []float64{0.004, 0.006, 0.008, 0.010} {
								l1 := 640.0
								l2 := l1 * c / (1 - g)
								l3 := l2 * r
								mu1, mu2, mu3 := 1/s1, 1/s2, 1/s3
								if l1/mu1 >= 5 || l2/mu2 >= 12 || l3/mu3 >= 2 {
									continue
								}
								mdl, err := NewModel(640, []OpRates{
									{Lambda: l1, Mu: mu1}, {Lambda: l2, Mu: mu2}, {Lambda: l3, Mu: mu3},
								})
								if err != nil {
									continue
								}
								k22, err := mdl.AssignProcessors(22)
								if err != nil || !allocEqual(k22, []int{6, 13, 3}) {
									continue
								}
								et22, _ := mdl.ExpectedSojourn(k22)
								if et22 < 0.010 || et22 > 0.022 {
									continue
								}
								found++
								fmt.Printf("FPD s1=%g c=%g s2=%g g=%g r=%g s3=%g | E22=%.4f lb=%.4f\n",
									s1, c, s2, g, r, s3, et22, mdl.LowerBound())
							}
						}
					}
				}
			}
		}
		fmt.Printf("FPD candidates: %d\n", found)
	})
}
