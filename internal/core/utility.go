package core

import (
	"fmt"
	"math"
)

// This file carries the per-tenant utility view of the Equation (3) model:
// scalar rates a cluster-level arbiter can compare *across* topologies.
// Equation (3) divides the λ-weighted sum of per-operator sojourns by λ0,
// which makes E[T] a per-tuple quantity — meaningful within one topology
// but not across two with different arrival rates. The numerator itself,
// Σ λ_i·E[T_i], is the expected number of tuples in flight (Little's law),
// i.e. sojourn-seconds accumulated per second of operation. Marginal
// changes of that numerator are directly comparable across tenants, so
// they are the currency the multi-tenant Scheduler trades in.

// GrowBenefit returns the largest achievable drop in the Equation (3)
// numerator from granting this topology one more processor: the δ_j of
// Algorithm 1 line 9 for the best operator j, in sojourn-seconds saved per
// second (tuples removed from flight, by Little's law). It is the marginal
// utility a tenant reports when bidding for another slot. Zero means an
// extra processor would not help (all operators effectively delay-free).
func (m *Model) GrowBenefit(k []int) (float64, error) {
	if len(k) != len(m.ops) {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrDimensionMismatch, len(k), len(m.ops))
	}
	best := 0.0
	for i := range m.ops {
		if b := m.marginalBenefit(i, k[i]); b > best {
			best = b
		}
	}
	return best, nil
}

// ShrinkCost returns the smallest achievable rise in the Equation (3)
// numerator from taking one processor away: the cheapest-to-lose operator's
// λ_i·(E[T_i](k_i−1) − E[T_i](k_i)), in sojourn-seconds added per second.
// It is the marginal damage a tenant suffers if the arbiter preempts one of
// its slots. The result is +Inf when every operator is at (or below) its
// minimum stable allocation — removing any slot would destabilize a queue —
// which tells the arbiter this tenant is not preemptible at all.
func (m *Model) ShrinkCost(k []int) (float64, error) {
	if len(k) != len(m.ops) {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrDimensionMismatch, len(k), len(m.ops))
	}
	cheapest := math.Inf(1)
	for i, op := range m.ops {
		if k[i] <= 1 {
			continue
		}
		down := m.OperatorSojourn(i, k[i]-1)
		if math.IsInf(down, 1) {
			continue // k_i−1 is below the stable minimum for this operator
		}
		if cost := op.Lambda * (down - m.OperatorSojourn(i, k[i])); cost < cheapest {
			cheapest = cost
		}
	}
	return cheapest, nil
}

// Tmax reports the latency target the controller enforces, or zero when it
// runs in min-latency mode (no target). The supervisor uses it to tell a
// cluster-level arbiter whether this tenant is currently violating its
// real-time constraint.
func (c *Controller) Tmax() float64 {
	if c.cfg.Mode == ModeMinResource {
		return c.cfg.Tmax
	}
	return 0
}
