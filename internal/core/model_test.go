package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/drs-repro/drs/internal/queueing"
	"github.com/drs-repro/drs/internal/stats"
	"github.com/drs-repro/drs/internal/topology"
)

func mustModel(t *testing.T, lambda0 float64, ops []OpRates) *Model {
	t.Helper()
	m, err := NewModel(lambda0, ops)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// vldLikeModel resembles the paper's VLD application: a 3-operator chain
// with a slow feature extractor, a high-fan-in matcher and a light
// aggregator, sized so Kmax=22 is comfortable.
func vldLikeModel(t *testing.T) *Model {
	t.Helper()
	return mustModel(t, 13, []OpRates{
		{Name: "extract", Lambda: 13, Mu: 1.5},
		{Name: "match", Lambda: 650, Mu: 68},
		{Name: "aggregate", Lambda: 130, Mu: 700},
	})
}

func TestNewModelValidation(t *testing.T) {
	valid := []OpRates{{Name: "a", Lambda: 1, Mu: 2}}
	tests := []struct {
		name    string
		lambda0 float64
		ops     []OpRates
	}{
		{"zero lambda0", 0, valid},
		{"negative lambda0", -1, valid},
		{"NaN lambda0", math.NaN(), valid},
		{"no operators", 1, nil},
		{"negative lambda", 1, []OpRates{{Lambda: -1, Mu: 1}}},
		{"zero mu", 1, []OpRates{{Lambda: 1, Mu: 0}}},
		{"infinite lambda", 1, []OpRates{{Lambda: math.Inf(1), Mu: 1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewModel(tt.lambda0, tt.ops); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestModelCopiesInput(t *testing.T) {
	ops := []OpRates{{Name: "a", Lambda: 1, Mu: 2}}
	m := mustModel(t, 1, ops)
	ops[0].Lambda = 999
	if m.Rates()[0].Lambda == 999 {
		t.Error("model must copy the rates slice")
	}
	got := m.Rates()
	got[0].Mu = 123
	if m.Rates()[0].Mu == 123 {
		t.Error("Rates must return a copy")
	}
}

func TestExpectedSojournIsWeightedAverage(t *testing.T) {
	// Equation (3) by hand for a 2-operator network.
	m := mustModel(t, 4, []OpRates{
		{Name: "a", Lambda: 4, Mu: 3},
		{Name: "b", Lambda: 8, Mu: 5},
	})
	k := []int{2, 3}
	want := (4*queueing.ExpectedSojourn(4, 3, 2) + 8*queueing.ExpectedSojourn(8, 5, 3)) / 4
	got, err := m.ExpectedSojourn(k)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("E[T] = %g, want %g", got, want)
	}
}

func TestExpectedSojournDimensionMismatch(t *testing.T) {
	m := vldLikeModel(t)
	if _, err := m.ExpectedSojourn([]int{1, 2}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("err = %v, want ErrDimensionMismatch", err)
	}
}

func TestExpectedSojournUnstableAllocation(t *testing.T) {
	m := vldLikeModel(t)
	got, err := m.ExpectedSojourn([]int{1, 11, 1}) // extractor needs >= 9
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Errorf("E[T] = %g, want +Inf for unstable allocation", got)
	}
}

func TestModelFromTopologyMatchesManual(t *testing.T) {
	topo, err := topology.NewBuilder().
		AddOperator("extract", 1.5, 13).
		AddOperator("match", 68, 0).
		Connect("extract", "match", 50).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModelFromTopology(topo)
	if err != nil {
		t.Fatal(err)
	}
	if m.Lambda0() != 13 {
		t.Errorf("lambda0 = %g", m.Lambda0())
	}
	rates := m.Rates()
	if rates[1].Lambda != 650 {
		t.Errorf("matcher lambda = %g, want 650", rates[1].Lambda)
	}
	manual := mustModel(t, 13, []OpRates{
		{Lambda: 13, Mu: 1.5}, {Lambda: 650, Mu: 68},
	})
	k := []int{10, 11}
	a, _ := m.ExpectedSojourn(k)
	b, _ := manual.ExpectedSojourn(k)
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("topology model %g != manual model %g", a, b)
	}
}

func TestLowerBound(t *testing.T) {
	m := mustModel(t, 2, []OpRates{
		{Lambda: 2, Mu: 4},  // service 0.5
		{Lambda: 6, Mu: 12}, // service 0.5 each, weighted 3x
	})
	want := (2*0.25 + 6*(1.0/12)) / 2
	if got := m.LowerBound(); math.Abs(got-want) > 1e-12 {
		t.Errorf("LowerBound = %g, want %g", got, want)
	}
	// Moderate allocations must strictly exceed the bound...
	etMid, _ := m.ExpectedSojourn([]int{3, 3})
	if etMid <= m.LowerBound() {
		t.Errorf("E[T]=%g should exceed lower bound %g", etMid, m.LowerBound())
	}
	// ...and generous ones approach it (equality up to float rounding).
	et, _ := m.ExpectedSojourn([]int{60, 60})
	if et < m.LowerBound()*(1-1e-12) || et > m.LowerBound()*1.001 {
		t.Errorf("E[T]=%g should be within 0.1%% above bound %g at k=60", et, m.LowerBound())
	}
}

func TestMinAllocation(t *testing.T) {
	m := vldLikeModel(t)
	k, total, err := m.MinAllocation()
	if err != nil {
		t.Fatal(err)
	}
	// extract: 13/1.5 = 8.67 -> 9; match: 650/68 = 9.56 -> 10; agg: 130/700 -> 1.
	want := []int{9, 10, 1}
	for i := range want {
		if k[i] != want[i] {
			t.Errorf("k[%d] = %d, want %d", i, k[i], want[i])
		}
	}
	if total != 20 {
		t.Errorf("total = %d, want 20", total)
	}
}

func TestAssignProcessorsInsufficientBudget(t *testing.T) {
	m := vldLikeModel(t)
	if _, err := m.AssignProcessors(19); !errors.Is(err, ErrInsufficientResources) {
		t.Errorf("err = %v, want ErrInsufficientResources", err)
	}
}

func TestAssignProcessorsUsesFullBudgetWhileUseful(t *testing.T) {
	m := vldLikeModel(t)
	k, err := m.AssignProcessors(22)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum(k); got != 22 {
		t.Errorf("allocated %d of 22: %v", got, k)
	}
	et, err := m.ExpectedSojourn(k)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(et, 1) {
		t.Error("optimal allocation must be stable")
	}
}

func TestAssignProcessorsMatchesBruteForce(t *testing.T) {
	// Theorem 1 on a deliberately mixed instance (small enough to enumerate).
	m := mustModel(t, 5, []OpRates{
		{Name: "a", Lambda: 5, Mu: 2},
		{Name: "b", Lambda: 10, Mu: 4},
		{Name: "c", Lambda: 3, Mu: 10},
	})
	for kmax := 8; kmax <= 20; kmax++ {
		greedy, err := m.AssignProcessors(kmax)
		if err != nil {
			t.Fatal(err)
		}
		brute, bruteT, err := m.bruteForceAssign(kmax)
		if err != nil {
			t.Fatal(err)
		}
		greedyT, _ := m.ExpectedSojourn(greedy)
		if math.Abs(greedyT-bruteT) > 1e-9*(1+bruteT) {
			t.Errorf("kmax=%d: greedy %v (E=%g) vs brute %v (E=%g)", kmax, greedy, greedyT, brute, bruteT)
		}
	}
}

func TestAssignProcessorsMatchesBruteForceRandomized(t *testing.T) {
	// Theorem 1 as a property over random 3-operator instances.
	rng := stats.NewRNG(20260612)
	for trial := 0; trial < 60; trial++ {
		lambda0 := 1 + rng.Float64()*20
		ops := []OpRates{
			{Lambda: lambda0, Mu: 0.5 + rng.Float64()*5},
			{Lambda: lambda0 * (1 + rng.Float64()*4), Mu: 1 + rng.Float64()*10},
			{Lambda: lambda0 * rng.Float64() * 2, Mu: 1 + rng.Float64()*10},
		}
		m, err := NewModel(lambda0, ops)
		if err != nil {
			t.Fatal(err)
		}
		_, minTotal, err := m.MinAllocation()
		if err != nil {
			t.Fatal(err)
		}
		kmax := minTotal + 2 + rng.IntN(8)
		greedy, err := m.AssignProcessors(kmax)
		if err != nil {
			t.Fatal(err)
		}
		_, bruteT, err := m.bruteForceAssign(kmax)
		if err != nil {
			t.Fatal(err)
		}
		greedyT, _ := m.ExpectedSojourn(greedy)
		if greedyT > bruteT*(1+1e-9) {
			t.Fatalf("trial %d: greedy E=%g worse than brute-force E=%g (ops=%v kmax=%d)",
				trial, greedyT, bruteT, ops, kmax)
		}
	}
}

func TestHeapMatchesScanImplementation(t *testing.T) {
	rng := stats.NewRNG(77)
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.IntN(6)
		ops := make([]OpRates, n)
		for i := range ops {
			ops[i] = OpRates{Lambda: 0.5 + rng.Float64()*200, Mu: 0.5 + rng.Float64()*50}
		}
		m, err := NewModel(1+rng.Float64()*10, ops)
		if err != nil {
			t.Fatal(err)
		}
		_, minTotal, err := m.MinAllocation()
		if err != nil {
			t.Fatal(err)
		}
		kmax := minTotal + rng.IntN(40)
		h, errH := m.AssignProcessors(kmax)
		s, errS := m.assignProcessorsScan(kmax)
		if (errH == nil) != (errS == nil) {
			t.Fatalf("error mismatch: heap=%v scan=%v", errH, errS)
		}
		if errH != nil {
			continue
		}
		// Ties can be broken differently; both must achieve the same E[T].
		ht, _ := m.ExpectedSojourn(h)
		st, _ := m.ExpectedSojourn(s)
		if math.Abs(ht-st) > 1e-9*(1+st) {
			t.Fatalf("heap %v (E=%g) != scan %v (E=%g)", h, ht, s, st)
		}
	}
}

func TestAssignProcessorsPaperScenarioVLD(t *testing.T) {
	// With VLD-like rates and Kmax=22 the recommendation should land on
	// the paper's (10:11:1).
	m := vldLikeModel(t)
	k, err := m.AssignProcessors(22)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{10, 11, 1}
	for i := range want {
		if k[i] != want[i] {
			t.Fatalf("allocation = %v, want %v", k, want)
		}
	}
}

func TestMinProcessorsMeetsTargetMinimally(t *testing.T) {
	m := vldLikeModel(t)
	tmax := m.LowerBound() * 1.15
	k, err := m.MinProcessors(tmax)
	if err != nil {
		t.Fatal(err)
	}
	et, err := m.ExpectedSojourn(k)
	if err != nil {
		t.Fatal(err)
	}
	if et > tmax {
		t.Errorf("E[T] = %g exceeds Tmax %g for %v", et, tmax, k)
	}
	// Optimality of the total: no allocation with one fewer processor
	// meets the target (verified via Program (4) at that budget).
	smaller, err := m.AssignProcessors(sum(k) - 1)
	if err == nil {
		if est, _ := m.ExpectedSojourn(smaller); est <= tmax {
			t.Errorf("budget %d already meets target (E=%g); MinProcessors not minimal", sum(k)-1, est)
		}
	}
}

func TestMinProcessorsUnreachable(t *testing.T) {
	m := vldLikeModel(t)
	if _, err := m.MinProcessors(m.LowerBound() * 0.99); !errors.Is(err, ErrUnreachableTarget) {
		t.Errorf("err = %v, want ErrUnreachableTarget", err)
	}
	if _, err := m.MinProcessors(-1); err == nil {
		t.Error("negative tmax must error")
	}
}

func TestMinProcessorsPropertyMinimal(t *testing.T) {
	f := func(seed uint32) bool {
		rng := stats.NewRNG(uint64(seed))
		lambda0 := 1 + rng.Float64()*30
		ops := []OpRates{
			{Lambda: lambda0, Mu: 0.3 + rng.Float64()*4},
			{Lambda: lambda0 * (0.5 + rng.Float64()*3), Mu: 0.5 + rng.Float64()*20},
		}
		m, err := NewModel(lambda0, ops)
		if err != nil {
			return false
		}
		tmax := m.LowerBound() * (1.2 + rng.Float64()*3)
		k, err := m.MinProcessors(tmax)
		if err != nil {
			return false
		}
		et, err := m.ExpectedSojourn(k)
		if err != nil || et > tmax {
			return false
		}
		// Removing one processor from any operator must break either
		// the target or stability.
		for i := range k {
			k[i]--
			if k[i] > 0 {
				if et2, _ := m.ExpectedSojourn(k); et2 <= tmax {
					return false
				}
			}
			k[i]++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestOperatorSojournConsistentWithQueueing(t *testing.T) {
	m := vldLikeModel(t)
	got := m.OperatorSojourn(0, 10)
	want := queueing.ExpectedSojourn(13, 1.5, 10)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("OperatorSojourn = %g, want %g", got, want)
	}
}
