package core

import (
	"errors"
	"math"
	"testing"

	"github.com/drs-repro/drs/internal/stats"
)

func TestHeteroEqualSpeedsReducesToAlgorithm1(t *testing.T) {
	m := vldLikeModel(t)
	speeds := make([]float64, 22)
	for i := range speeds {
		speeds[i] = 1
	}
	hetero, err := m.AssignHeterogeneous(speeds)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := m.AssignProcessors(22)
	if err != nil {
		t.Fatal(err)
	}
	hc := hetero.Counts()
	// Tie-breaking may differ; E[T] must match Algorithm 1's optimum.
	etH, err := m.HeteroExpectedSojourn(hetero)
	if err != nil {
		t.Fatal(err)
	}
	etP, _ := m.ExpectedSojourn(plain)
	if math.Abs(etH-etP) > 1e-9*(1+etP) {
		t.Errorf("equal-speed hetero %v (E=%g) != Algorithm 1 %v (E=%g)", hc, etH, plain, etP)
	}
}

func TestHeteroFastProcessorsGoToBottleneck(t *testing.T) {
	// Two operators, one heavily loaded; two fast processors and several
	// slow ones: the fast ones must land on the loaded operator.
	m := mustModel(t, 10, []OpRates{
		{Name: "hot", Lambda: 30, Mu: 4},
		{Name: "cool", Lambda: 2, Mu: 4},
	})
	speeds := []float64{4, 4, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	a, err := m.AssignHeterogeneous(speeds)
	if err != nil {
		t.Fatal(err)
	}
	fastOnHot := 0
	for _, s := range a.Speeds[0] {
		if s == 4 {
			fastOnHot++
		}
	}
	if fastOnHot != 2 {
		t.Errorf("hot operator got %d of 2 fast processors: %v", fastOnHot, a.Speeds)
	}
	et, err := m.HeteroExpectedSojourn(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(et, 1) {
		t.Error("assignment unstable")
	}
}

func TestHeteroMatchesBruteForceSmall(t *testing.T) {
	// Exhaustively try every partition of 7 processors over 2 operators
	// and confirm the greedy heuristic is within 5% of the best.
	m := mustModel(t, 6, []OpRates{
		{Name: "a", Lambda: 6, Mu: 2},
		{Name: "b", Lambda: 9, Mu: 3},
	})
	speeds := []float64{2, 1.5, 1, 1, 1, 0.5, 0.5}
	greedy, err := m.AssignHeterogeneous(speeds)
	if err != nil {
		t.Fatal(err)
	}
	etGreedy, err := m.HeteroExpectedSojourn(greedy)
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(1)
	n := len(speeds)
	for mask := 0; mask < 1<<n; mask++ {
		a := HeteroAssignment{Speeds: make([][]float64, 2)}
		for bit := 0; bit < n; bit++ {
			if mask&(1<<bit) != 0 {
				a.Speeds[0] = append(a.Speeds[0], speeds[bit])
			} else {
				a.Speeds[1] = append(a.Speeds[1], speeds[bit])
			}
		}
		if et, err := m.HeteroExpectedSojourn(a); err == nil && et < best {
			best = et
		}
	}
	if etGreedy > best*1.05 {
		t.Errorf("greedy E=%g more than 5%% above exhaustive best %g", etGreedy, best)
	}
}

func TestHeteroStabilizationPhase(t *testing.T) {
	// Pool must be spent on stability first: a single slow processor per
	// operator cannot stabilize, so fast ones must be split across both.
	m := mustModel(t, 4, []OpRates{
		{Lambda: 4, Mu: 1},
		{Lambda: 4, Mu: 1},
	})
	a, err := m.AssignHeterogeneous([]float64{5, 5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	et, err := m.HeteroExpectedSojourn(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(et, 1) {
		t.Fatalf("unstable assignment %v", a.Speeds)
	}
	for i, s := range a.Speeds {
		if effectiveRate(m.Rates()[i].Mu, s)*float64(len(s)) <= m.Rates()[i].Lambda {
			t.Errorf("operator %d under capacity: %v", i, s)
		}
	}
}

func TestHeteroInsufficientPool(t *testing.T) {
	m := mustModel(t, 10, []OpRates{{Lambda: 100, Mu: 1}})
	_, err := m.AssignHeterogeneous([]float64{1, 1, 1})
	if !errors.Is(err, ErrInsufficientSpeed) {
		t.Errorf("err = %v, want ErrInsufficientSpeed", err)
	}
}

func TestHeteroValidation(t *testing.T) {
	m := vldLikeModel(t)
	if _, err := m.AssignHeterogeneous(nil); err == nil {
		t.Error("empty pool should error")
	}
	if _, err := m.AssignHeterogeneous([]float64{1, -1}); err == nil {
		t.Error("negative speed should error")
	}
	if _, err := m.AssignHeterogeneous([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN speed should error")
	}
	if _, err := m.HeteroExpectedSojourn(HeteroAssignment{Speeds: make([][]float64, 1)}); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("dimension mismatch should be reported")
	}
}

func TestHeteroRandomizedStability(t *testing.T) {
	rng := stats.NewRNG(31)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.IntN(3)
		ops := make([]OpRates, n)
		for i := range ops {
			ops[i] = OpRates{Lambda: 1 + rng.Float64()*50, Mu: 1 + rng.Float64()*10}
		}
		m, err := NewModel(1+rng.Float64()*10, ops)
		if err != nil {
			t.Fatal(err)
		}
		pool := make([]float64, 8+rng.IntN(30))
		for i := range pool {
			pool[i] = 0.5 + rng.Float64()*3
		}
		a, err := m.AssignHeterogeneous(pool)
		if errors.Is(err, ErrInsufficientSpeed) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		et, err := m.HeteroExpectedSojourn(a)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(et, 1) || math.IsNaN(et) {
			t.Fatalf("trial %d: bad E[T] %g for %v", trial, et, a.Speeds)
		}
		// Every processor is either assigned or provably useless; the
		// counts must never exceed the pool.
		total := 0
		for _, k := range a.Counts() {
			total += k
		}
		if total > len(pool) {
			t.Fatalf("assigned %d of %d processors", total, len(pool))
		}
	}
}
