package core

import "testing"

func thresholdSnapshot(alloc []int) Snapshot {
	return Snapshot{
		Lambda0: 13,
		Ops: []OpRates{
			{Name: "extract", Lambda: 13, Mu: 1 / 0.45}, // rho at k: 5.85/k
			{Name: "match", Lambda: 13, Mu: 1 / 0.50},   // 6.5/k
			{Name: "aggregate", Lambda: 13, Mu: 100},    // 0.13/k
		},
		Alloc: alloc,
		Kmax:  22,
	}
}

func TestThresholdControllerValidation(t *testing.T) {
	bad := []ThresholdController{
		{High: 0.5, Low: 0.8, Kmax: 10}, // inverted
		{High: 0.8, Low: 0, Kmax: 10},   // low at zero
		{High: 1.0, Low: 0.3, Kmax: 10}, // high at one
		{High: 0.8, Low: 0.3, Kmax: 0},  // no budget
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
		if _, err := c.Step(thresholdSnapshot([]int{8, 8, 1})); err == nil {
			t.Errorf("case %d Step should fail validation", i)
		}
	}
	good := ThresholdController{High: 0.8, Low: 0.3, Kmax: 22}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestThresholdScalesOverloadedOperator(t *testing.T) {
	c := ThresholdController{High: 0.8, Low: 0.3, Kmax: 22}
	// extract at k=6: rho = 0.975 -> must grow; aggregate at k=2:
	// rho = 0.065 -> gives one up.
	d, err := c.Step(thresholdSnapshot([]int{6, 10, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != ActionRebalance {
		t.Fatalf("action = %v (%s)", d.Action, d.Reason)
	}
	if d.Target[0] <= 6 {
		t.Errorf("overloaded operator not grown: %v", d.Target)
	}
	if d.Target[2] != 1 {
		t.Errorf("underutilized operator not shrunk: %v", d.Target)
	}
}

func TestThresholdHoldsInBand(t *testing.T) {
	c := ThresholdController{High: 0.8, Low: 0.3, Kmax: 22}
	// All utilizations in (0.3, 0.8): 5.85/10=0.59, 6.5/11=0.59, 0.13/... k=1
	// aggregate rho=0.13 < Low but k=1 cannot shrink further.
	d, err := c.Step(thresholdSnapshot([]int{10, 11, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != ActionNone {
		t.Errorf("action = %v (%s), want none in band", d.Action, d.Reason)
	}
}

func TestThresholdRespectsBudget(t *testing.T) {
	c := ThresholdController{High: 0.5, Low: 0.1, Kmax: 22}
	// Everything over-threshold but the budget is exhausted: only freed
	// processors can move.
	d, err := c.Step(thresholdSnapshot([]int{10, 11, 1}))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	if d.Action == ActionRebalance {
		for _, k := range d.Target {
			total += k
		}
		if total > 22 {
			t.Errorf("target %v exceeds Kmax", d.Target)
		}
	}
}

func TestThresholdRejectsBadSnapshot(t *testing.T) {
	c := ThresholdController{High: 0.8, Low: 0.3, Kmax: 22}
	if _, err := c.Step(Snapshot{}); err == nil {
		t.Error("empty snapshot should error")
	}
	if _, err := c.Step(Snapshot{Ops: make([]OpRates, 2), Alloc: make([]int, 3)}); err == nil {
		t.Error("mismatched alloc should error")
	}
}
