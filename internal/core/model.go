// Package core implements the paper's primary contribution: the DRS
// performance model (an Erlang/Jackson open-queueing-network estimator of
// expected total tuple sojourn time, §III-B), the exactly-optimal greedy
// resource allocators (Algorithm 1 for Program (4) and its dual for
// Program (6), §III-C), and the controller that drives re-scheduling
// decisions from live measurements (§IV).
package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/drs-repro/drs/internal/queueing"
	"github.com/drs-repro/drs/internal/topology"
)

// ErrDimensionMismatch is returned when an allocation vector's length does
// not match the model's operator count.
var ErrDimensionMismatch = errors.New("core: allocation length != number of operators")

// ErrInsufficientResources is the paper's Algorithm 1 exception: even the
// minimum stable allocation needs more processors than Kmax.
var ErrInsufficientResources = errors.New("core: Kmax below minimum stable allocation")

// ErrUnreachableTarget is returned by MinProcessors when no finite
// allocation can push E[T] down to Tmax (the target is at or below the
// zero-queueing lower bound Σ λ_i/µ_i / λ0).
var ErrUnreachableTarget = errors.New("core: Tmax unreachable for these rates")

// OpRates carries the measured steady-state rates of one operator: the
// inputs to Equation (1).
type OpRates struct {
	// Name identifies the operator (diagnostics only).
	Name string
	// Lambda is λ_i, the mean total arrival rate at the operator (tuples/s).
	Lambda float64
	// Mu is µ_i, the mean per-processor service rate (tuples/s).
	Mu float64
	// ServiceCV2 is the squared coefficient of variation of the service
	// time, enabling the M/G/k (Allen-Cunneen) correction — the paper's
	// queueing-theory future work. Zero means "unknown": the model falls
	// back to the exponential assumption (CV² = 1), reproducing the
	// paper's Equation (1) exactly.
	ServiceCV2 float64
}

// cv2 resolves the effective squared coefficient of variation.
func (op OpRates) cv2() float64 {
	if op.ServiceCV2 <= 0 {
		return 1
	}
	return op.ServiceCV2
}

// Model is the DRS performance model of §III-B: per-operator M/M/k sojourn
// estimates aggregated over the Jackson network by Equation (3). A Model
// never mutates after construction; build a new one per metrics snapshot,
// or re-point a long-lived one at fresh rates with Reset (the controller's
// per-round path, which reuses the model's storage instead of allocating).
type Model struct {
	lambda0 float64
	ops     []OpRates
}

// NewModel builds a model directly from measured rates. lambda0 is λ0, the
// external arrival rate into the whole network.
func NewModel(lambda0 float64, ops []OpRates) (*Model, error) {
	m := &Model{}
	if err := m.Reset(lambda0, ops); err != nil {
		return nil, err
	}
	return m, nil
}

// Reset re-points the model at a fresh snapshot's rates, validating them
// exactly as NewModel does and reusing the receiver's storage (ops is
// copied in, never retained). On error the receiver is unchanged. A model
// being Reset must not be in concurrent use.
func (m *Model) Reset(lambda0 float64, ops []OpRates) error {
	if lambda0 <= 0 || math.IsNaN(lambda0) || math.IsInf(lambda0, 0) {
		return fmt.Errorf("core: lambda0 %g must be positive and finite", lambda0)
	}
	if len(ops) == 0 {
		return errors.New("core: no operators")
	}
	for i, op := range ops {
		if op.Lambda < 0 || math.IsNaN(op.Lambda) || math.IsInf(op.Lambda, 0) {
			return fmt.Errorf("core: operator %d (%s): lambda %g invalid", i, op.Name, op.Lambda)
		}
		if op.Mu <= 0 || math.IsNaN(op.Mu) || math.IsInf(op.Mu, 0) {
			return fmt.Errorf("core: operator %d (%s): mu %g invalid", i, op.Name, op.Mu)
		}
	}
	m.lambda0 = lambda0
	m.ops = append(m.ops[:0], ops...)
	return nil
}

// NewModelFromTopology derives a model from a topology description: the
// per-operator arrival rates come from solving the traffic equations, so
// splits, joins and loops are accounted for.
func NewModelFromTopology(t *topology.Topology) (*Model, error) {
	lam, err := t.ArrivalRates()
	if err != nil {
		return nil, err
	}
	ops := make([]OpRates, t.N())
	for i := range ops {
		op := t.Operator(i)
		ops[i] = OpRates{Name: op.Name, Lambda: lam[i], Mu: op.ServiceRate}
	}
	return NewModel(t.ExternalRate(), ops)
}

// N reports the number of operators.
func (m *Model) N() int { return len(m.ops) }

// Lambda0 reports λ0.
func (m *Model) Lambda0() float64 { return m.lambda0 }

// Rates returns a copy of the per-operator rates.
func (m *Model) Rates() []OpRates { return append([]OpRates(nil), m.ops...) }

// OperatorSojourn returns E[T_i](k_i) of Equation (1) for operator i under
// k processors (+Inf when unstable), with the M/G/k correction applied
// when the operator carries a measured service CV².
func (m *Model) OperatorSojourn(i, k int) float64 {
	op := m.ops[i]
	return queueing.ExpectedSojournCorrected(op.Lambda, op.Mu, k, op.cv2())
}

// ExpectedSojourn evaluates Equation (3): the expected total sojourn time
// of an external tuple under allocation k, as the λ-weighted average of the
// per-operator sojourns. It returns +Inf if any operator is unstable under
// its share of k.
func (m *Model) ExpectedSojourn(k []int) (float64, error) {
	if len(k) != len(m.ops) {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrDimensionMismatch, len(k), len(m.ops))
	}
	total := 0.0
	for i, op := range m.ops {
		if op.Lambda == 0 {
			continue
		}
		ti := m.OperatorSojourn(i, k[i])
		if math.IsInf(ti, 1) {
			return math.Inf(1), nil
		}
		total += op.Lambda * ti
	}
	return total / m.lambda0, nil
}

// LowerBound reports the infimum of E[T] over all allocations: the pure
// service time (1/λ0)·Σ λ_i/µ_i with all queueing delay optimized away.
// E[T] approaches but never reaches it with finite processors.
func (m *Model) LowerBound() float64 {
	total := 0.0
	for _, op := range m.ops {
		total += op.Lambda / op.Mu
	}
	return total / m.lambda0
}

// MinAllocation returns the smallest stable allocation (k_i = ⌊λ_i/µ_i⌋+1
// per operator) and its total.
func (m *Model) MinAllocation() ([]int, int, error) {
	return m.minAllocationInto(nil)
}

// minAllocationInto is MinAllocation writing into buf when it has the
// capacity — the controller's per-round path, which reuses one vector
// across rounds instead of allocating.
func (m *Model) minAllocationInto(buf []int) ([]int, int, error) {
	k := resizeInts(buf, len(m.ops))
	total := 0
	for i, op := range m.ops {
		ki, err := queueing.MinStableServers(op.Lambda, op.Mu)
		if err != nil {
			return nil, 0, fmt.Errorf("core: operator %d (%s): %w", i, op.Name, err)
		}
		k[i] = ki
		total += ki
	}
	return k, total, nil
}

// resizeInts returns buf resized to n, reallocating only when the capacity
// is short.
func resizeInts(buf []int, n int) []int {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int, n)
}

// marginalBenefit is δ_i of Algorithm 1 line 9: λ_i·(E[T_i](k_i) −
// E[T_i](k_i+1)), the drop in the Equation (3) numerator from granting
// operator i one more processor. The corrected form preserves convexity,
// so Theorem 1's optimality argument is unchanged.
func (m *Model) marginalBenefit(i, k int) float64 {
	op := m.ops[i]
	return queueing.MarginalBenefitCorrected(op.Lambda, op.Mu, k, op.cv2())
}
