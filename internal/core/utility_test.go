package core

import (
	"errors"
	"math"
	"testing"
)

func utilityModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(10, []OpRates{
		{Name: "a", Lambda: 10, Mu: 3},
		{Name: "b", Lambda: 10, Mu: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestGrowBenefitMatchesBestMarginal checks GrowBenefit is exactly the best
// single-operator marginal benefit — the quantity Algorithm 1 maximizes.
func TestGrowBenefitMatchesBestMarginal(t *testing.T) {
	m := utilityModel(t)
	k := []int{5, 4}
	got, err := m.GrowBenefit(k)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := range k {
		if b := m.marginalBenefit(i, k[i]); b > want {
			want = b
		}
	}
	if got != want || got <= 0 {
		t.Fatalf("GrowBenefit = %g, want best marginal %g (> 0)", got, want)
	}
	// It must equal the drop in the Eq. 3 numerator from applying the best
	// single increment that AssignProcessors would pick next.
	cur, err := m.ExpectedSojourn(k)
	if err != nil {
		t.Fatal(err)
	}
	next, err := m.AssignProcessors(k[0] + k[1] + 1)
	if err != nil {
		t.Fatal(err)
	}
	est, err := m.ExpectedSojourn(next)
	if err != nil {
		t.Fatal(err)
	}
	if drop := (cur - est) * m.Lambda0(); math.Abs(drop-got) > 1e-9 {
		t.Fatalf("numerator drop %g != GrowBenefit %g", drop, got)
	}
}

// TestShrinkCostPicksCheapestOperator checks ShrinkCost is the cheapest
// stable single-slot removal, and that it exceeds GrowBenefit at the same
// allocation (convexity: what you lose removing a slot always exceeds what
// you would gain adding one).
func TestShrinkCostPicksCheapestOperator(t *testing.T) {
	m := utilityModel(t)
	k := []int{6, 5}
	cost, err := m.ShrinkCost(k)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 || math.IsInf(cost, 1) {
		t.Fatalf("ShrinkCost = %g, want finite positive", cost)
	}
	want := math.Inf(1)
	for i := range k {
		down := m.OperatorSojourn(i, k[i]-1)
		if math.IsInf(down, 1) {
			continue
		}
		if c := m.Rates()[i].Lambda * (down - m.OperatorSojourn(i, k[i])); c < want {
			want = c
		}
	}
	if cost != want {
		t.Fatalf("ShrinkCost = %g, want %g", cost, want)
	}
	gain, err := m.GrowBenefit(k)
	if err != nil {
		t.Fatal(err)
	}
	if cost < gain {
		t.Fatalf("convexity violated: shrink cost %g < grow benefit %g", cost, gain)
	}
}

// TestShrinkCostInfiniteAtMinimum: at the minimum stable allocation no slot
// can be removed, so the tenant must report itself non-preemptible.
func TestShrinkCostInfiniteAtMinimum(t *testing.T) {
	m := utilityModel(t)
	kmin, _, err := m.MinAllocation()
	if err != nil {
		t.Fatal(err)
	}
	cost, err := m.ShrinkCost(kmin)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(cost, 1) {
		t.Fatalf("ShrinkCost at minimum allocation = %g, want +Inf", cost)
	}
}

// TestUtilityDimensionMismatch checks both helpers validate vector length.
func TestUtilityDimensionMismatch(t *testing.T) {
	m := utilityModel(t)
	if _, err := m.GrowBenefit([]int{1}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("GrowBenefit err = %v", err)
	}
	if _, err := m.ShrinkCost([]int{1, 2, 3}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("ShrinkCost err = %v", err)
	}
}

// TestControllerTmax checks the accessor distinguishes the two modes.
func TestControllerTmax(t *testing.T) {
	minRes, err := NewController(ControllerConfig{Mode: ModeMinResource, Tmax: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := minRes.Tmax(); got != 1.5 {
		t.Fatalf("min-resource Tmax = %g, want 1.5", got)
	}
	minLat, err := NewController(ControllerConfig{Mode: ModeMinLatency, Kmax: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := minLat.Tmax(); got != 0 {
		t.Fatalf("min-latency Tmax = %g, want 0", got)
	}
}
