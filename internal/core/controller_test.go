package core

import (
	"testing"
)

// vldSnapshot uses a VLD-like profile: 13 fps at the extractor, 520
// features/s at the matcher, 130 matches/s at the aggregator. Under these
// rates AssignProcessors gives the paper's (10:11:1) at Kmax=22 and
// (8:8:1) at Kmax=17.
func vldSnapshot(alloc []int, kmax int, measured float64) Snapshot {
	return Snapshot{
		Lambda0: 13,
		Ops: []OpRates{
			{Name: "extract", Lambda: 13, Mu: 1 / 0.45},
			{Name: "match", Lambda: 520, Mu: 1 / 0.012},
			{Name: "aggregate", Lambda: 130, Mu: 500},
		},
		MeasuredSojourn: measured,
		Alloc:           alloc,
		Kmax:            kmax,
	}
}

func TestControllerConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  ControllerConfig
	}{
		{"missing mode", ControllerConfig{}},
		{"min-latency without kmax", ControllerConfig{Mode: ModeMinLatency}},
		{"min-resource without tmax", ControllerConfig{Mode: ModeMinResource}},
		{"negative gain", ControllerConfig{Mode: ModeMinLatency, Kmax: 5, MinGain: -0.1}},
		{"gain >= 1", ControllerConfig{Mode: ModeMinLatency, Kmax: 5, MinGain: 1}},
		{"bad slack", ControllerConfig{Mode: ModeMinResource, Tmax: 1, ScaleInSlack: 1}},
		{"negative slots", ControllerConfig{Mode: ModeMinLatency, Kmax: 5, SlotsPerMachine: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewController(tt.cfg); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
	if _, err := NewController(ControllerConfig{Mode: ModeMinLatency, Kmax: 22}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMinLatencyRecommendsRebalance(t *testing.T) {
	c, err := NewController(ControllerConfig{Mode: ModeMinLatency, Kmax: 22, MinGain: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	// Start from a clearly suboptimal allocation (paper Fig. 9 initial states).
	d, err := c.Step(vldSnapshot([]int{12, 9, 1}, 22, 1.2))
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != ActionRebalance {
		t.Fatalf("action = %v (%s), want rebalance", d.Action, d.Reason)
	}
	want := []int{10, 11, 1}
	if !allocEqual(d.Target, want) {
		t.Errorf("target = %v, want %v", d.Target, want)
	}
}

func TestMinLatencyNoChurnAtOptimum(t *testing.T) {
	c, _ := NewController(ControllerConfig{Mode: ModeMinLatency, Kmax: 22, MinGain: 0.02})
	d, err := c.Step(vldSnapshot([]int{10, 11, 1}, 22, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != ActionNone {
		t.Errorf("action = %v, want none at optimum (%s)", d.Action, d.Reason)
	}
}

func TestMinLatencyGainThresholdSuppressesSmallWins(t *testing.T) {
	// (9:12:1) is close to optimal; a high MinGain must suppress the move.
	c, _ := NewController(ControllerConfig{Mode: ModeMinLatency, Kmax: 22, MinGain: 0.6})
	d, err := c.Step(vldSnapshot([]int{9, 12, 1}, 22, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != ActionNone {
		t.Errorf("action = %v, want none under 60%% gain threshold (%s)", d.Action, d.Reason)
	}
	// With no threshold the same snapshot rebalances.
	c2, _ := NewController(ControllerConfig{Mode: ModeMinLatency, Kmax: 22})
	d2, err := c2.Step(vldSnapshot([]int{9, 12, 1}, 22, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	if d2.Action != ActionRebalance {
		t.Errorf("action = %v, want rebalance without threshold", d2.Action)
	}
}

func TestMinLatencyUnstableCurrentAllocationAlwaysRebalances(t *testing.T) {
	c, _ := NewController(ControllerConfig{Mode: ModeMinLatency, Kmax: 22, MinGain: 0.5})
	d, err := c.Step(vldSnapshot([]int{5, 16, 1}, 22, 3.0)) // extractor unstable
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != ActionRebalance {
		t.Errorf("action = %v, want rebalance away from instability", d.Action)
	}
}

func TestMinResourceScaleOut(t *testing.T) {
	// Paper ExpA shape: pool Kmax=17 at (8:8:1), measured above Tmax;
	// DRS must provision the fifth machine (pool 22).
	c, err := NewController(ControllerConfig{
		Mode: ModeMinResource, Tmax: 1.1,
		SlotsPerMachine: 5, ReservedSlots: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := vldSnapshot([]int{8, 8, 1}, 17, 1.35) // violating
	d, err := c.Step(s)
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != ActionScaleOut {
		t.Fatalf("action = %v (%s), want scale-out", d.Action, d.Reason)
	}
	if d.TargetKmax != 22 {
		t.Errorf("target pool = %d, want 22", d.TargetKmax)
	}
	if !allocEqual(d.Target, []int{10, 11, 1}) {
		t.Errorf("target alloc = %v, want (10:11:1)", d.Target)
	}
	if d.Estimated > 1.1 {
		t.Errorf("estimated %g exceeds Tmax after scale-out", d.Estimated)
	}
}

func TestMinResourceScaleIn(t *testing.T) {
	// Paper ExpB shape: loose Tmax, oversized pool; expect release of a
	// machine down to the 4-worker pool (17) at (8:8:1).
	c, err := NewController(ControllerConfig{
		Mode: ModeMinResource, Tmax: 1.4,
		SlotsPerMachine: 5, ReservedSlots: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := vldSnapshot([]int{10, 11, 1}, 22, 1.0) // comfortably within 1.4s
	d, err := c.Step(s)
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != ActionScaleIn {
		t.Fatalf("action = %v (%s), want scale-in", d.Action, d.Reason)
	}
	if d.TargetKmax != 17 {
		t.Errorf("target pool = %d, want 17", d.TargetKmax)
	}
	if !allocEqual(d.Target, []int{8, 8, 1}) {
		t.Errorf("target alloc = %v, want (8:8:1)", d.Target)
	}
	if d.Estimated > 1.4 {
		t.Errorf("estimated %g breaks Tmax after scale-in", d.Estimated)
	}
}

func TestMinResourceHoldsWhenSized(t *testing.T) {
	c, err := NewController(ControllerConfig{
		Mode: ModeMinResource, Tmax: 1.1,
		SlotsPerMachine: 5, ReservedSlots: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pool 22 at its optimum, within target, and the smaller pool (17)
	// cannot hold the target: no action.
	d, err := c.Step(vldSnapshot([]int{10, 11, 1}, 22, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != ActionNone {
		t.Errorf("action = %v (%s), want none", d.Action, d.Reason)
	}
}

func TestMinResourceUnreachableTargetHolds(t *testing.T) {
	// Tmax below the service-time floor: no allocation can meet it, so the
	// controller must settle at the pool optimum instead of erroring or
	// thrashing.
	c, _ := NewController(ControllerConfig{Mode: ModeMinResource, Tmax: 0.1})
	d, err := c.Step(vldSnapshot([]int{10, 11, 1}, 22, 1.5))
	if err != nil {
		t.Fatalf("unreachable Tmax should not be a hard error: %v", err)
	}
	if d.Action != ActionNone {
		t.Errorf("action = %v (%s), want none at pool optimum", d.Action, d.Reason)
	}
	// From a non-optimal allocation it should still rebalance to the pool
	// optimum even though Tmax itself is hopeless.
	d, err = c.Step(vldSnapshot([]int{12, 9, 1}, 22, 1.5))
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != ActionRebalance {
		t.Errorf("action = %v (%s), want rebalance toward pool optimum", d.Action, d.Reason)
	}
}

func TestMinResourceScaleInHysteresis(t *testing.T) {
	// Within Tmax, but the tightened target cannot fit a smaller pool: the
	// controller must hold rather than flap.
	c, _ := NewController(ControllerConfig{
		Mode: ModeMinResource, Tmax: 1.25, ScaleInSlack: 0.35,
		SlotsPerMachine: 5, ReservedSlots: 3,
	})
	d, err := c.Step(vldSnapshot([]int{10, 11, 1}, 22, 1.05))
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != ActionNone {
		t.Errorf("action = %v (%s), want hold under hysteresis", d.Action, d.Reason)
	}
}

func TestPoolQuantization(t *testing.T) {
	c, _ := NewController(ControllerConfig{
		Mode: ModeMinResource, Tmax: 1,
		SlotsPerMachine: 5, ReservedSlots: 3,
	})
	tests := []struct{ need, want int }{
		// ceil((need+reserved)/slots)*slots - reserved, the paper's
		// 25-slot cluster arithmetic: 17 <-> 4 machines, 22 <-> 5.
		{17, 17}, {18, 22}, {21, 22}, {22, 22}, {12, 12}, {13, 17},
	}
	for _, tt := range tests {
		if got := c.poolFor(tt.need); got != tt.want {
			t.Errorf("poolFor(%d) = %d, want %d", tt.need, got, tt.want)
		}
	}
	// Without machine quantization the pool follows the need exactly.
	c2, _ := NewController(ControllerConfig{Mode: ModeMinResource, Tmax: 1})
	if got := c2.poolFor(19); got != 19 {
		t.Errorf("unquantized poolFor(19) = %d", got)
	}
}

func TestStepRejectsBadSnapshot(t *testing.T) {
	c, _ := NewController(ControllerConfig{Mode: ModeMinLatency, Kmax: 22})
	if _, err := c.Step(Snapshot{Lambda0: 0}); err == nil {
		t.Error("want error for empty snapshot")
	}
}

func TestModeAndActionStrings(t *testing.T) {
	if ModeMinLatency.String() != "min-latency" || ModeMinResource.String() != "min-resource" {
		t.Error("mode strings wrong")
	}
	if Mode(99).String() == "" {
		t.Error("unknown mode should still render")
	}
	for a, want := range map[Action]string{
		ActionNone: "none", ActionRebalance: "rebalance",
		ActionScaleOut: "scale-out", ActionScaleIn: "scale-in",
	} {
		if a.String() != want {
			t.Errorf("Action %d = %q, want %q", a, a.String(), want)
		}
	}
	if Action(99).String() == "" {
		t.Error("unknown action should still render")
	}
}
