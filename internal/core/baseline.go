package core

import (
	"errors"
	"fmt"
)

// Stepper is anything that turns a measurement snapshot into a scheduling
// decision. *Controller is the DRS implementation; ThresholdController is
// the reactive baseline.
type Stepper interface {
	Step(s Snapshot) (Decision, error)
}

var _ Stepper = (*Controller)(nil)
var _ Stepper = (*ThresholdController)(nil)

// ThresholdController is the utilization-threshold autoscaler baseline —
// the policy family of Storm users' manual tuning and of reactive scalers
// (scale a component when its utilization crosses a bound). It needs no
// queueing model: each round, every operator with utilization above High
// requests one more processor and every operator below Low (keeping at
// least one) offers one up; requests are served from offers and from the
// unused budget, most-loaded first.
//
// The comparison experiment (experiments.RunBaseline) shows why DRS exists:
// the threshold policy equalizes utilization, which is NOT the same as
// minimizing Equation (3) — it takes several reconfigurations (each paying
// the rebalance pause) to settle, and settles off the optimum.
type ThresholdController struct {
	// High and Low are the utilization bounds (0 < Low < High < 1).
	High, Low float64
	// Kmax is the processor budget.
	Kmax int
}

// Validate reports configuration errors.
func (c ThresholdController) Validate() error {
	if !(0 < c.Low && c.Low < c.High && c.High < 1) {
		return fmt.Errorf("core: thresholds must satisfy 0 < Low < High < 1, got %g/%g", c.Low, c.High)
	}
	if c.Kmax < 1 {
		return errors.New("core: threshold controller needs Kmax >= 1")
	}
	return nil
}

// Step applies one round of threshold scaling.
func (c ThresholdController) Step(s Snapshot) (Decision, error) {
	if err := c.Validate(); err != nil {
		return Decision{}, err
	}
	if len(s.Ops) == 0 || len(s.Alloc) != len(s.Ops) {
		return Decision{}, fmt.Errorf("core: snapshot needs rates and a matching allocation")
	}
	kmax := s.Kmax
	if kmax == 0 {
		kmax = c.Kmax
	}
	n := len(s.Ops)
	target := append([]int(nil), s.Alloc...)
	used := 0
	rho := make([]float64, n)
	for i, op := range s.Ops {
		used += target[i]
		if target[i] > 0 && op.Mu > 0 {
			rho[i] = op.Lambda / (float64(target[i]) * op.Mu)
		}
	}
	// Offers: one processor from each clearly-underutilized operator.
	free := kmax - used
	for i := range target {
		if rho[i] < c.Low && target[i] > 1 {
			target[i]--
			free++
		}
	}
	// Requests: one processor to each overloaded operator, most loaded
	// first, while anything remains.
	for free > 0 {
		worst, worstRho := -1, c.High
		for i, op := range s.Ops {
			cur := 0.0
			if target[i] > 0 && op.Mu > 0 {
				cur = op.Lambda / (float64(target[i]) * op.Mu)
			}
			if cur > worstRho && target[i] < kmax {
				worst, worstRho = i, cur
			}
		}
		if worst < 0 {
			break
		}
		target[worst]++
		free--
	}
	if allocEqual(target, s.Alloc) {
		return Decision{Action: ActionNone, TargetKmax: kmax,
			Reason: "all utilizations within thresholds"}, nil
	}
	return Decision{
		Action:     ActionRebalance,
		Target:     target,
		TargetKmax: kmax,
		Reason:     fmt.Sprintf("threshold policy: utilizations %s", fmtRhos(rho)),
	}, nil
}

func fmtRhos(rho []float64) string {
	out := "["
	for i, r := range rho {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.2f", r)
	}
	return out + "]"
}
