package core

import "math"

// This file exports reference implementations used by the repository's
// ablation benchmarks and by tests; production code paths never call them.

// AssignProcessorsScan runs the paper's literal Algorithm 1 formulation —
// a full δ_i rescan per increment, O(Kmax·N) — instead of the heap-based
// production implementation. Results are E[T]-equivalent.
func AssignProcessorsScan(m *Model, kmax int) ([]int, error) {
	return m.assignProcessorsScan(kmax)
}

// BruteForceAssign enumerates every allocation of kmax processors and
// returns the best with its E[T]. Exponential in N; small instances only.
func BruteForceAssign(m *Model, kmax int) ([]int, float64, error) {
	return m.bruteForceAssign(kmax)
}

// NaiveAssignProcessors is the ablation baseline model: it treats an
// operator with k processors as a single server of rate k·µ (M/M/1), i.e.
// E[T_i] = 1/(k_i·µ_i − λ_i), and runs the same greedy allocation over
// that. The M/M/1 pooling fiction ignores that k slow servers are worse
// than one fast one, which distorts marginal benefits; the ablation test
// shows where its allocations lose to Algorithm 1 under the true M/M/k
// objective.
func NaiveAssignProcessors(m *Model, kmax int) ([]int, error) {
	k, used, err := m.MinAllocation()
	if err != nil {
		return nil, err
	}
	if used > kmax {
		return nil, ErrInsufficientResources
	}
	naiveT := func(i, ki int) float64 {
		op := m.ops[i]
		denom := float64(ki)*op.Mu - op.Lambda
		if denom <= 0 {
			return math.Inf(1)
		}
		return 1 / denom
	}
	for used < kmax {
		best, bestDelta := -1, 0.0
		for i := range m.ops {
			d := m.ops[i].Lambda * (naiveT(i, k[i]) - naiveT(i, k[i]+1))
			if d > bestDelta {
				best, bestDelta = i, d
			}
		}
		if best < 0 {
			break
		}
		k[best]++
		used++
	}
	return k, nil
}
