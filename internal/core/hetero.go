package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/drs-repro/drs/internal/queueing"
)

// Heterogeneous processors (paper §III-A: "the proposed models and
// algorithms can also support settings with heterogeneous processors").
//
// A processor is described by a speed factor: speed 1 serves at the
// operator's nominal µ_i, speed 2 twice as fast. An operator holding a set
// of processors is approximated as an M/M/k station whose per-server rate
// is µ_i times the *mean* speed of its processors — the standard
// capacity-pooling approximation; exact for identical speeds.
//
// Allocation stays greedy, but the unit of allocation is now a concrete
// processor: at each step the fastest unassigned processor goes to the
// operator whose Equation-(3) term drops the most by receiving it. With
// identical speeds this reduces exactly to Algorithm 1 (verified in tests);
// with mixed speeds it is a heuristic — the paper's Theorem 1 convexity
// argument no longer applies verbatim because adding a processor changes
// both k and the effective rate.

// ErrInsufficientSpeed is returned when even assigning every processor
// cannot stabilize all operators.
var ErrInsufficientSpeed = errors.New("core: processor pool cannot stabilize all operators")

// HeteroAssignment maps each operator to the speed factors of the
// processors it received.
type HeteroAssignment struct {
	// Speeds[i] lists the speed factors assigned to operator i.
	Speeds [][]float64
}

// Counts reports the processor count per operator.
func (a HeteroAssignment) Counts() []int {
	out := make([]int, len(a.Speeds))
	for i, s := range a.Speeds {
		out[i] = len(s)
	}
	return out
}

// effectiveRate is µ_i scaled by the mean speed of the assigned processors.
func effectiveRate(mu float64, speeds []float64) float64 {
	if len(speeds) == 0 {
		return 0
	}
	total := 0.0
	for _, s := range speeds {
		total += s
	}
	return mu * total / float64(len(speeds))
}

// heteroOperatorSojourn evaluates one operator under its processor set.
func (m *Model) heteroOperatorSojourn(i int, speeds []float64) float64 {
	if len(speeds) == 0 {
		if m.ops[i].Lambda == 0 {
			return 0
		}
		return math.Inf(1)
	}
	op := m.ops[i]
	return queueing.ExpectedSojournCorrected(op.Lambda, effectiveRate(op.Mu, speeds), len(speeds), op.cv2())
}

// HeteroExpectedSojourn evaluates Equation (3) under a heterogeneous
// assignment.
func (m *Model) HeteroExpectedSojourn(a HeteroAssignment) (float64, error) {
	if len(a.Speeds) != len(m.ops) {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrDimensionMismatch, len(a.Speeds), len(m.ops))
	}
	total := 0.0
	for i, op := range m.ops {
		if op.Lambda == 0 {
			continue
		}
		ti := m.heteroOperatorSojourn(i, a.Speeds[i])
		if math.IsInf(ti, 1) {
			return math.Inf(1), nil
		}
		total += op.Lambda * ti
	}
	return total / m.lambda0, nil
}

// AssignHeterogeneous distributes a pool of processors with the given
// speed factors over the model's operators. Phase 1 stabilizes: the
// fastest processors go to whichever operator is still unstable (largest
// load deficit first). Phase 2 spends the rest greedily by marginal
// benefit. Speeds must be positive.
func (m *Model) AssignHeterogeneous(speeds []float64) (HeteroAssignment, error) {
	if len(speeds) == 0 {
		return HeteroAssignment{}, errors.New("core: empty processor pool")
	}
	for _, s := range speeds {
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return HeteroAssignment{}, fmt.Errorf("core: invalid processor speed %g", s)
		}
	}
	pool := append([]float64(nil), speeds...)
	sort.Sort(sort.Reverse(sort.Float64Slice(pool)))

	a := HeteroAssignment{Speeds: make([][]float64, len(m.ops))}
	// capacity[i] tracks Σ speeds · µ_i, the operator's total service rate.
	capacity := make([]float64, len(m.ops))
	next := 0

	// Phase 1: stabilize. An operator is stable when capacity > λ.
	for {
		worst, worstDeficit := -1, 0.0
		for i, op := range m.ops {
			if deficit := op.Lambda - capacity[i]; deficit >= 0 && (worst < 0 || deficit > worstDeficit) {
				// deficit == 0 still needs one more (k = λ/µ is unstable).
				worst, worstDeficit = i, deficit
			}
		}
		if worst < 0 {
			break
		}
		if next == len(pool) {
			return HeteroAssignment{}, fmt.Errorf("%w: %d processors too few/slow", ErrInsufficientSpeed, len(pool))
		}
		a.Speeds[worst] = append(a.Speeds[worst], pool[next])
		capacity[worst] += pool[next] * m.ops[worst].Mu
		next++
	}

	// Phase 2: spend the remainder by marginal benefit of the next
	// (fastest remaining) processor.
	for ; next < len(pool); next++ {
		s := pool[next]
		best, bestDelta := -1, 0.0
		for i := range m.ops {
			cur := m.heteroOperatorSojourn(i, a.Speeds[i])
			with := m.heteroOperatorSojourn(i, append(a.Speeds[i], s))
			delta := m.ops[i].Lambda * (cur - with)
			if delta > bestDelta {
				best, bestDelta = i, delta
			}
		}
		if best < 0 {
			break // no operator benefits; leave the rest unassigned
		}
		a.Speeds[best] = append(a.Speeds[best], s)
	}
	return a, nil
}
