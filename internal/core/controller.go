package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Mode selects which optimization problem the controller solves each round.
type Mode int

const (
	// ModeMinLatency solves Program (4): fixed processor budget Kmax,
	// minimize expected sojourn time.
	ModeMinLatency Mode = iota + 1
	// ModeMinResource solves Program (6): latency target Tmax, minimize the
	// number of processors (negotiating machines in and out as needed).
	ModeMinResource
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeMinLatency:
		return "min-latency"
	case ModeMinResource:
		return "min-resource"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Action is what the controller decided to do this round.
type Action int

const (
	// ActionNone: current allocation retained.
	ActionNone Action = iota
	// ActionRebalance: reassign processors among operators within the
	// current pool.
	ActionRebalance
	// ActionScaleOut: provision more processors (new machines) and
	// rebalance onto them.
	ActionScaleOut
	// ActionScaleIn: release processors (machines) and rebalance onto the
	// smaller pool.
	ActionScaleIn
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ActionNone:
		return "none"
	case ActionRebalance:
		return "rebalance"
	case ActionScaleOut:
		return "scale-out"
	case ActionScaleIn:
		return "scale-in"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Snapshot is one round of measurements handed to the controller — the
// output of the measurer module after aggregation and smoothing.
type Snapshot struct {
	// Lambda0 is the measured external arrival rate λ̂0 — with an ingest
	// front end, the *admitted* rate.
	Lambda0 float64
	// OfferedLambda0 is the external rate clients *offered*, including
	// traffic an admission controller shed before it reached a spout. It
	// exceeds Lambda0 exactly while shedding is active; zero (or equal)
	// means no ingest tier / nothing shed. The supervisor scales the
	// snapshot up to this true demand before stepping the controller, so
	// provisioning follows offered load, not the post-shed remainder.
	OfferedLambda0 float64
	// Ops carries λ̂_i and µ̂_i per operator, in topology order.
	Ops []OpRates
	// MeasuredSojourn is E[T̂], the measured mean total sojourn time, from
	// tuple-tree completion tracking. Zero when unknown.
	MeasuredSojourn float64
	// Alloc is the allocation currently in force.
	Alloc []int
	// Kmax is the processor budget currently available (pool size).
	Kmax int
}

// Decision is the controller's verdict for one round.
type Decision struct {
	Action Action
	// Target is the recommended allocation (nil for ActionNone).
	Target []int
	// TargetKmax is the pool size the decision needs (equals Snapshot.Kmax
	// unless scaling).
	TargetKmax int
	// Estimated is the model's E[T] for Target (or for the current
	// allocation when ActionNone).
	Estimated float64
	// Reason is a human-readable justification, for operator logs.
	Reason string
}

// AllocMap renders the decision's target allocation as an operator-name ->
// processor-count map, the form an engine rebalance takes. names must be
// the topology-ordered operator names the snapshot was built over. It
// returns nil for decisions without a target (ActionNone).
func (d Decision) AllocMap(names []string) (map[string]int, error) {
	if d.Target == nil {
		return nil, nil
	}
	if len(names) != len(d.Target) {
		return nil, fmt.Errorf("%w: %d names for %d targets", ErrDimensionMismatch, len(names), len(d.Target))
	}
	out := make(map[string]int, len(names))
	for i, name := range names {
		out[name] = d.Target[i]
	}
	return out, nil
}

// ControllerConfig tunes the decision logic.
type ControllerConfig struct {
	// Mode picks Program (4) or Program (6).
	Mode Mode
	// Kmax is the processor budget (ModeMinLatency).
	Kmax int
	// Tmax is the real-time constraint in seconds (ModeMinResource).
	Tmax float64
	// MinGain is the minimum relative improvement in estimated E[T] that
	// justifies paying the rebalance cost, e.g. 0.05 for 5%. Guards against
	// churn from measurement noise (Appendix B's cost/benefit test).
	MinGain float64
	// ScaleInSlack is the relative headroom (on top of Tmax) the estimate
	// must keep after releasing resources, e.g. 0.1 keeps E[T] ≤ 0.9·Tmax.
	ScaleInSlack float64
	// MaxScaleInUtilization, when > 0, refuses scale-in targets that push
	// any operator's utilization λ/(kµ) above this cap. The M/M/k estimate
	// is increasingly optimistic near saturation when the real service
	// distribution is heavier-tailed, so shrinking into ρ ≈ 1 invites
	// out/in flapping.
	MaxScaleInUtilization float64
	// SlotsPerMachine is the executor capacity of one machine; used in
	// ModeMinResource to quantize pool changes to whole machines. Zero
	// means processors are provisioned individually.
	SlotsPerMachine int
	// ReservedSlots are slots on the pool not usable for bolts (spouts,
	// the DRS executor itself) — the paper reserves 3 of 25.
	ReservedSlots int
}

// Validate reports configuration errors.
func (c ControllerConfig) Validate() error {
	switch c.Mode {
	case ModeMinLatency:
		if c.Kmax <= 0 {
			return errors.New("core: ModeMinLatency requires Kmax > 0")
		}
	case ModeMinResource:
		if c.Tmax <= 0 {
			return errors.New("core: ModeMinResource requires Tmax > 0")
		}
	default:
		return fmt.Errorf("core: unknown mode %v", c.Mode)
	}
	if c.MinGain < 0 || c.MinGain >= 1 {
		return errors.New("core: MinGain must be in [0, 1)")
	}
	if c.ScaleInSlack < 0 || c.ScaleInSlack >= 1 {
		return errors.New("core: ScaleInSlack must be in [0, 1)")
	}
	if c.MaxScaleInUtilization < 0 || c.MaxScaleInUtilization >= 1 {
		return errors.New("core: MaxScaleInUtilization must be in [0, 1)")
	}
	if c.SlotsPerMachine < 0 || c.ReservedSlots < 0 {
		return errors.New("core: negative slot counts")
	}
	return nil
}

// Controller implements the DRS decision loop of §III-C/§IV: build a model
// from the latest snapshot, compute the optimal allocation, and decide
// whether acting on it is worth the migration cost. Controller carries no
// decision state between rounds — only its config and reusable scratch
// storage, so the steady-state hold round (the decision a supervisor makes
// every Tm forever) costs zero allocations. Feed it snapshots and apply
// its decisions through whatever actuates your CSP layer. Safe for
// concurrent use.
type Controller struct {
	cfg ControllerConfig

	// mu serializes Step: the scratch below is reused across rounds.
	mu    sync.Mutex
	model Model
	heap  benefitHeap
	kbuf  []int // target-allocation scratch; escapes only via a copy
	nbuf  []int // Program (6) requirement scratch; never escapes
}

// NewController validates the config and returns a controller.
func NewController(cfg ControllerConfig) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg}, nil
}

// Config returns the controller's configuration.
func (c *Controller) Config() ControllerConfig { return c.cfg }

// Step evaluates one measurement snapshot and returns a decision. It never
// mutates the snapshot and never retains its slices.
func (c *Controller) Step(s Snapshot) (Decision, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.model.Reset(s.Lambda0, s.Ops); err != nil {
		return Decision{}, fmt.Errorf("core: building model from snapshot: %w", err)
	}
	switch c.cfg.Mode {
	case ModeMinLatency:
		return c.stepMinLatency(&c.model, s)
	case ModeMinResource:
		return c.stepMinResource(&c.model, s)
	default:
		return Decision{}, fmt.Errorf("core: unknown mode %v", c.cfg.Mode)
	}
}

// assign solves Algorithm 1 into the controller's scratch storage. The
// result is only valid until the next call; actionable decisions must copy
// it (cloneInts) before it escapes into a Decision.
func (c *Controller) assign(model *Model, kmax int) ([]int, error) {
	k, err := model.assignProcessorsInto(c.kbuf, &c.heap, kmax)
	if k != nil {
		c.kbuf = k
	}
	return k, err
}

// cloneInts copies an allocation vector out of scratch storage.
func cloneInts(xs []int) []int { return append([]int(nil), xs...) }

// stepMinLatency recommends AssignProcessors(Kmax) and rebalances when the
// estimated gain over the current allocation clears MinGain.
func (c *Controller) stepMinLatency(model *Model, s Snapshot) (Decision, error) {
	kmax := s.Kmax
	if kmax == 0 {
		kmax = c.cfg.Kmax
	}
	target, err := c.assign(model, kmax)
	if err != nil {
		return Decision{}, err
	}
	estTarget, err := model.ExpectedSojourn(target)
	if err != nil {
		return Decision{}, err
	}
	if allocEqual(target, s.Alloc) {
		return Decision{Action: ActionNone, Estimated: estTarget, TargetKmax: kmax,
			Reason: "current allocation already optimal"}, nil
	}
	estCur := math.Inf(1)
	if len(s.Alloc) == model.N() {
		estCur, err = model.ExpectedSojourn(s.Alloc)
		if err != nil {
			return Decision{}, err
		}
	}
	gain := 1 - estTarget/estCur
	if math.IsInf(estCur, 1) {
		gain = 1
	}
	if gain < c.cfg.MinGain {
		return Decision{Action: ActionNone, Estimated: estCur, TargetKmax: kmax,
			Reason: fmt.Sprintf("gain %.1f%% below threshold %.1f%%", gain*100, c.cfg.MinGain*100)}, nil
	}
	return Decision{
		Action:     ActionRebalance,
		Target:     cloneInts(target),
		TargetKmax: kmax,
		Estimated:  estTarget,
		Reason:     fmt.Sprintf("estimated E[T] %.1fms -> %.1fms (gain %.1f%%)", estCur*1e3, estTarget*1e3, gain*100),
	}, nil
}

// stepMinResource implements the Figure-10 behaviour with hysteresis.
// When the measured (or estimated) sojourn violates Tmax, the pool grows to
// whatever Program (6) says Tmax needs. When comfortably within target, the
// pool shrinks only if the *slack-tightened* target Tmax·(1−ScaleInSlack)
// still fits in a smaller pool — the asymmetry prevents out/in flapping
// when the model is optimistic near saturation (it assumes exponential
// service; heavier-tailed reality queues worse).
func (c *Controller) stepMinResource(model *Model, s Snapshot) (Decision, error) {
	curKmax := s.Kmax
	violating := s.MeasuredSojourn > c.cfg.Tmax
	if !violating && len(s.Alloc) == model.N() {
		if est, eerr := model.ExpectedSojourn(s.Alloc); eerr == nil && est > c.cfg.Tmax {
			violating = true
		}
	}
	if violating {
		return c.scaleOutOrRebalance(model, s, curKmax)
	}
	return c.maybeScaleIn(model, s, curKmax)
}

// scaleOutOrRebalance handles a Tmax violation: grow the pool to the
// Program (6) size, or failing that, rebalance within the current pool.
func (c *Controller) scaleOutOrRebalance(model *Model, s Snapshot, curKmax int) (Decision, error) {
	need, err := model.minProcessorsInto(c.nbuf, &c.heap, c.cfg.Tmax)
	if need != nil {
		c.nbuf = need
	}
	if err == nil {
		if targetKmax := c.poolFor(sum(need)); targetKmax > curKmax {
			target, aerr := c.assign(model, targetKmax)
			if aerr != nil {
				return Decision{}, aerr
			}
			est, eerr := model.ExpectedSojourn(target)
			if eerr != nil {
				return Decision{}, eerr
			}
			return Decision{
				Action:     ActionScaleOut,
				Target:     cloneInts(target),
				TargetKmax: targetKmax,
				Estimated:  est,
				Reason: fmt.Sprintf("measured E[T] %.1fms > Tmax %.1fms; growing pool %d -> %d",
					s.MeasuredSojourn*1e3, c.cfg.Tmax*1e3, curKmax, targetKmax),
			}, nil
		}
	} else if !errors.Is(err, ErrUnreachableTarget) {
		return Decision{}, err
	}
	// Tmax unreachable by the model, or the pool is already big enough:
	// the best move left is the pool-optimal allocation.
	target, aerr := c.assign(model, curKmax)
	if aerr != nil {
		return Decision{}, aerr
	}
	est, eerr := model.ExpectedSojourn(target)
	if eerr != nil {
		return Decision{}, eerr
	}
	if allocEqual(target, s.Alloc) {
		return Decision{Action: ActionNone, Estimated: est, TargetKmax: curKmax,
			Reason: "violating Tmax but already at pool optimum"}, nil
	}
	// Churn guard: near-tie reassignments (est gain below MinGain) cost a
	// pause and help nothing; measurement noise flips them endlessly.
	if len(s.Alloc) == model.N() {
		if estCur, cerr := model.ExpectedSojourn(s.Alloc); cerr == nil && !math.IsInf(estCur, 1) {
			if gain := 1 - est/estCur; gain < c.cfg.MinGain {
				return Decision{Action: ActionNone, Estimated: estCur, TargetKmax: curKmax,
					Reason: fmt.Sprintf("violating Tmax but pool-optimal gain %.1f%% below threshold", gain*100)}, nil
			}
		}
	}
	return Decision{Action: ActionRebalance, Target: cloneInts(target), TargetKmax: curKmax, Estimated: est,
		Reason: "violating Tmax; rebalancing within current pool"}, nil
}

// maybeScaleIn releases machines only when the tightened target still fits
// in a smaller pool.
func (c *Controller) maybeScaleIn(model *Model, s Snapshot, curKmax int) (Decision, error) {
	hold := func(reason string) Decision {
		est := math.NaN()
		if len(s.Alloc) == model.N() {
			est, _ = model.ExpectedSojourn(s.Alloc)
		}
		return Decision{Action: ActionNone, Estimated: est, TargetKmax: curKmax, Reason: reason}
	}
	need, err := model.minProcessorsInto(c.nbuf, &c.heap, c.cfg.Tmax*(1-c.cfg.ScaleInSlack))
	if need != nil {
		c.nbuf = need
	}
	if err != nil {
		if errors.Is(err, ErrUnreachableTarget) {
			return hold("within Tmax; tightened target unreachable, keeping pool"), nil
		}
		return Decision{}, err
	}
	targetKmax := c.poolFor(sum(need))
	if targetKmax >= curKmax {
		return hold("within target at current pool size"), nil
	}
	target, aerr := c.assign(model, targetKmax)
	if aerr != nil {
		return Decision{}, aerr
	}
	est, eerr := model.ExpectedSojourn(target)
	if eerr != nil {
		return Decision{}, eerr
	}
	if est > c.cfg.Tmax*(1-c.cfg.ScaleInSlack) {
		return hold("smaller pool would not keep enough headroom"), nil
	}
	if cap := c.cfg.MaxScaleInUtilization; cap > 0 {
		for i, op := range model.Rates() {
			if op.Lambda/(float64(target[i])*op.Mu) > cap {
				return hold(fmt.Sprintf("scale-in would push %s past %.0f%% utilization", op.Name, cap*100)), nil
			}
		}
	}
	return Decision{
		Action:     ActionScaleIn,
		Target:     cloneInts(target),
		TargetKmax: targetKmax,
		Estimated:  est,
		Reason: fmt.Sprintf("estimated E[T] %.1fms fits Tmax %.1fms with pool %d -> %d",
			est*1e3, c.cfg.Tmax*1e3, curKmax, targetKmax),
	}, nil
}

// poolFor quantizes a processor requirement to the pool size that machines
// provide: whole machines of SlotsPerMachine slots, minus ReservedSlots.
func (c *Controller) poolFor(processors int) int {
	if c.cfg.SlotsPerMachine <= 0 {
		return processors
	}
	machines := (processors + c.cfg.ReservedSlots + c.cfg.SlotsPerMachine - 1) / c.cfg.SlotsPerMachine
	return machines*c.cfg.SlotsPerMachine - c.cfg.ReservedSlots
}

func allocEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
