package core

import (
	"math"
	"testing"

	"github.com/drs-repro/drs/internal/stats"
)

func TestAblationScanExportedWrapper(t *testing.T) {
	m := vldLikeModel(t)
	k, err := AssignProcessorsScan(m, 22)
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.AssignProcessors(22)
	if err != nil {
		t.Fatal(err)
	}
	et1, _ := m.ExpectedSojourn(k)
	et2, _ := m.ExpectedSojourn(h)
	if math.Abs(et1-et2) > 1e-12 {
		t.Errorf("scan and heap disagree: %v vs %v", k, h)
	}
}

func TestAblationBruteForceExportedWrapper(t *testing.T) {
	m := mustModel(t, 5, []OpRates{
		{Lambda: 5, Mu: 2}, {Lambda: 10, Mu: 4},
	})
	k, et, err := BruteForceAssign(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := m.AssignProcessors(10)
	if err != nil {
		t.Fatal(err)
	}
	etG, _ := m.ExpectedSojourn(greedy)
	if math.Abs(et-etG) > 1e-12 {
		t.Errorf("brute force %v (%g) vs greedy %v (%g)", k, et, greedy, etG)
	}
}

// TestAblationNaiveModelNeverBeatsErlang compares allocations produced by
// the naive M/M/1-pooling model against Algorithm 1's, both judged by the
// true M/M/k objective: the naive model must never win, and must lose on
// at least some instances — the design-choice justification for carrying
// the full Erlang formula.
func TestAblationNaiveModelNeverBeatsErlang(t *testing.T) {
	rng := stats.NewRNG(20150423) // the paper's arXiv v3 date
	losses := 0
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.IntN(4)
		ops := make([]OpRates, n)
		for i := range ops {
			ops[i] = OpRates{Lambda: 1 + rng.Float64()*150, Mu: 0.5 + rng.Float64()*30}
		}
		m, err := NewModel(1+rng.Float64()*20, ops)
		if err != nil {
			t.Fatal(err)
		}
		_, minTotal, err := m.MinAllocation()
		if err != nil {
			t.Fatal(err)
		}
		kmax := minTotal + 1 + rng.IntN(20)
		erlang, err := m.AssignProcessors(kmax)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := NaiveAssignProcessors(m, kmax)
		if err != nil {
			t.Fatal(err)
		}
		etErlang, _ := m.ExpectedSojourn(erlang)
		etNaive, _ := m.ExpectedSojourn(naive)
		if etNaive < etErlang*(1-1e-9) {
			t.Fatalf("trial %d: naive model beat Algorithm 1 (%g < %g) — impossible by Theorem 1",
				trial, etNaive, etErlang)
		}
		if etNaive > etErlang*(1+1e-9) {
			losses++
		}
	}
	if losses == 0 {
		t.Error("naive model never lost; ablation shows no benefit from the Erlang model")
	}
	t.Logf("naive M/M/1 model produced a worse allocation in %d/200 instances", losses)
}

func TestServiceCVShiftsAllocation(t *testing.T) {
	// Two identical operators except one has heavy-tailed service
	// (CV² = 4): under the corrected model it queues worse, so Algorithm 1
	// must give it at least as many processors — and for a tight budget,
	// strictly more.
	base := []OpRates{
		{Name: "steady", Lambda: 40, Mu: 10},
		{Name: "bursty", Lambda: 40, Mu: 10, ServiceCV2: 4},
	}
	m, err := NewModel(40, base)
	if err != nil {
		t.Fatal(err)
	}
	// 13 processors: after the even (6,6) split the odd one must go to the
	// bursty operator, whose corrected marginal benefit is 2.5x larger.
	k, err := m.AssignProcessors(13)
	if err != nil {
		t.Fatal(err)
	}
	if k[1] <= k[0] {
		t.Errorf("bursty operator got %d <= steady's %d processors", k[1], k[0])
	}
	// With CV² unset both default to the exponential assumption and the
	// split is even.
	plain, err := NewModel(40, []OpRates{
		{Name: "a", Lambda: 40, Mu: 10},
		{Name: "b", Lambda: 40, Mu: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	kp, err := plain.AssignProcessors(12)
	if err != nil {
		t.Fatal(err)
	}
	if kp[0] != kp[1] {
		t.Errorf("symmetric operators split unevenly: %v", kp)
	}
}

func TestServiceCVDefaultMatchesPaperModel(t *testing.T) {
	// ServiceCV2 = 0 (unset) must reproduce the paper's Equation (1)
	// exactly — full backward compatibility.
	m := vldLikeModel(t)
	withCV := mustModel(t, 13, []OpRates{
		{Name: "extract", Lambda: 13, Mu: 1.5, ServiceCV2: 1},
		{Name: "match", Lambda: 650, Mu: 68, ServiceCV2: 1},
		{Name: "aggregate", Lambda: 130, Mu: 700, ServiceCV2: 1},
	})
	for _, alloc := range [][]int{{10, 11, 1}, {9, 12, 1}, {12, 9, 1}} {
		a, _ := m.ExpectedSojourn(alloc)
		b, _ := withCV.ExpectedSojourn(alloc)
		if math.Abs(a-b) > 1e-12 {
			t.Errorf("alloc %v: unset CV %g != CV=1 %g", alloc, a, b)
		}
	}
}
