package core

import (
	"container/heap"
	"fmt"
	"math"
)

// AssignProcessors is Algorithm 1: distribute at most kmax processors over
// the model's operators to minimize the expected total sojourn time of
// Equation (3) (Program (4)). By convexity of each E[T_i](k_i) the greedy
// marginal-benefit strategy is exactly optimal (Theorem 1).
//
// This implementation keeps the per-operator marginal benefits in a max-heap,
// so it runs in O(N + Kmax·log N) instead of the paper's O(Kmax·N) rescan
// (assignProcessorsScan keeps the literal version for the ablation bench).
// It returns ErrInsufficientResources when even the minimum stable
// allocation exceeds kmax — the paper's "throw an exception" branch.
func (m *Model) AssignProcessors(kmax int) ([]int, error) {
	var h benefitHeap
	return m.assignProcessorsInto(nil, &h, kmax)
}

// assignProcessorsInto is AssignProcessors reusing a caller-held allocation
// buffer and heap — the controller's per-round path. The returned slice
// aliases buf when it had the capacity.
func (m *Model) assignProcessorsInto(buf []int, h *benefitHeap, kmax int) ([]int, error) {
	k, used, err := m.minAllocationInto(buf)
	if err != nil {
		return nil, err
	}
	if used > kmax {
		return nil, fmt.Errorf("%w: need %d, have %d", ErrInsufficientResources, used, kmax)
	}
	h.reset(m, k)
	for used < kmax {
		j, ok := h.popBest(m, k)
		if !ok {
			break // all remaining benefits are zero; extra processors are useless
		}
		k[j]++
		used++
	}
	return k, nil
}

// MinProcessors solves Program (6): the fewest processors whose allocation
// brings E[T] down to at most tmax. It grows the minimum stable allocation
// greedily by marginal benefit — the same exchange argument as Theorem 1
// proves each prefix of the greedy sequence is the best allocation of its
// size, so the first prefix that satisfies the constraint is optimal.
// It returns ErrUnreachableTarget when tmax is at or below the zero-queueing
// lower bound.
func (m *Model) MinProcessors(tmax float64) ([]int, error) {
	var h benefitHeap
	return m.minProcessorsInto(nil, &h, tmax)
}

// minProcessorsInto is MinProcessors reusing a caller-held allocation
// buffer and heap — the controller's per-round path. The returned slice
// aliases buf when it had the capacity.
func (m *Model) minProcessorsInto(buf []int, h *benefitHeap, tmax float64) ([]int, error) {
	if tmax <= 0 || math.IsNaN(tmax) {
		return nil, fmt.Errorf("core: tmax %g must be positive", tmax)
	}
	if tmax <= m.LowerBound() {
		return nil, fmt.Errorf("%w: tmax %g <= lower bound %g", ErrUnreachableTarget, tmax, m.LowerBound())
	}
	k, _, err := m.minAllocationInto(buf)
	if err != nil {
		return nil, err
	}
	h.reset(m, k)
	cur, err := m.ExpectedSojourn(k)
	if err != nil {
		return nil, err
	}
	for cur > tmax {
		j, ok := h.popBest(m, k)
		if !ok {
			return nil, fmt.Errorf("%w: benefits exhausted at E[T]=%g", ErrUnreachableTarget, cur)
		}
		// Apply the increment incrementally: Equation (3) is a λ-weighted
		// sum, so only operator j's term changes.
		delta := m.ops[j].Lambda * (m.OperatorSojourn(j, k[j]) - m.OperatorSojourn(j, k[j]+1))
		k[j]++
		cur -= delta / m.lambda0
	}
	return k, nil
}

// benefitHeap is a max-heap over operator indices keyed by marginal benefit.
// Entries are lazily refreshed: when an operator is popped we recompute its
// benefit at the *current* k and re-push if it was stale. Because benefits
// only ever decrease (convexity), a popped entry whose stored benefit
// matches its fresh value is guaranteed maximal.
type benefitHeap struct {
	items []benefitItem
}

type benefitItem struct {
	op      int
	benefit float64
	atK     int // the k the benefit was computed at
}

// reset fills the heap with the operators' marginal benefits at allocation
// k, reusing the items storage from any previous use of the receiver.
func (h *benefitHeap) reset(m *Model, k []int) {
	h.items = h.items[:0]
	for i := range m.ops {
		b := m.marginalBenefit(i, k[i])
		if b > 0 {
			h.items = append(h.items, benefitItem{op: i, benefit: b, atK: k[i]})
		}
	}
	heap.Init(h)
}

// popBest returns the operator with the largest current marginal benefit,
// pushing back a refreshed entry for it computed at k[j]+1 (the state after
// the caller increments). Returns ok=false when no operator has positive
// benefit left.
func (h *benefitHeap) popBest(m *Model, k []int) (int, bool) {
	for h.Len() > 0 {
		top := h.items[0]
		if top.atK != k[top.op] {
			// Stale: recompute at the current k and reheapify.
			top.benefit = m.marginalBenefit(top.op, k[top.op])
			top.atK = k[top.op]
			if top.benefit <= 0 {
				heap.Pop(h)
				continue
			}
			h.items[0] = top
			heap.Fix(h, 0)
			continue
		}
		if top.benefit <= 0 {
			heap.Pop(h)
			continue
		}
		// Fresh and maximal: this is the greedy pick. Refresh in place for
		// the post-increment state.
		next := m.marginalBenefit(top.op, k[top.op]+1)
		if next > 0 {
			h.items[0] = benefitItem{op: top.op, benefit: next, atK: k[top.op] + 1}
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
		return top.op, true
	}
	return 0, false
}

// Len, Less, Swap, Push and Pop implement heap.Interface (max-heap).
func (h *benefitHeap) Len() int { return len(h.items) }

func (h *benefitHeap) Less(i, j int) bool { return h.items[i].benefit > h.items[j].benefit }

func (h *benefitHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

// Push appends x (required by heap.Interface).
func (h *benefitHeap) Push(x any) { h.items = append(h.items, x.(benefitItem)) }

// Pop removes and returns the last element (required by heap.Interface).
func (h *benefitHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// assignProcessorsScan is the paper's Algorithm 1 exactly as printed:
// every iteration recomputes δ_i for all operators and takes the argmax
// (lines 8-13). Kept for the heap-vs-scan ablation benchmark and as the
// oracle in tests; AssignProcessors is the production path.
func (m *Model) assignProcessorsScan(kmax int) ([]int, error) {
	k, used, err := m.MinAllocation()
	if err != nil {
		return nil, err
	}
	if used > kmax {
		return nil, fmt.Errorf("%w: need %d, have %d", ErrInsufficientResources, used, kmax)
	}
	for used < kmax {
		best, bestDelta := -1, 0.0
		for i := range m.ops {
			if d := m.marginalBenefit(i, k[i]); d > bestDelta {
				best, bestDelta = i, d
			}
		}
		if best < 0 {
			break
		}
		k[best]++
		used++
	}
	return k, nil
}

// bruteForceAssign enumerates every allocation of exactly kmax processors
// (or the minimum stable total, if larger allocations are all that fit) and
// returns the one minimizing E[T]. Exponential; used only by tests to
// verify Theorem 1 on small instances.
func (m *Model) bruteForceAssign(kmax int) ([]int, float64, error) {
	kmin, used, err := m.MinAllocation()
	if err != nil {
		return nil, 0, err
	}
	if used > kmax {
		return nil, 0, ErrInsufficientResources
	}
	best := append([]int(nil), kmin...)
	bestT, err := m.ExpectedSojourn(best)
	if err != nil {
		return nil, 0, err
	}
	cur := append([]int(nil), kmin...)
	n := len(cur)
	var rec func(i, remaining int)
	rec = func(i, remaining int) {
		if i == n-1 {
			cur[i] = kmin[i] + remaining
			if t, _ := m.ExpectedSojourn(cur); t < bestT {
				bestT = t
				copy(best, cur)
			}
			return
		}
		for extra := 0; extra <= remaining; extra++ {
			cur[i] = kmin[i] + extra
			rec(i+1, remaining-extra)
		}
	}
	rec(0, kmax-used)
	return best, bestT, nil
}
