package fpd

import (
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/drs-repro/drs/internal/engine"
	"github.com/drs-repro/drs/internal/sim"
)

func TestModelReproducesPaperAllocation(t *testing.T) {
	m, err := Model()
	if err != nil {
		t.Fatal(err)
	}
	k22, err := m.AssignProcessors(22)
	if err != nil {
		t.Fatal(err)
	}
	if want := RecommendedAllocation(); !equal(k22, want) {
		t.Errorf("AssignProcessors(22) = %v, want %v (paper Fig. 6)", k22, want)
	}
	est, err := m.ExpectedSojourn(k22)
	if err != nil {
		t.Fatal(err)
	}
	// Paper's estimate is ~15.5ms; ours must be the same order.
	if est < 0.010 || est > 0.030 {
		t.Errorf("estimated E[T] = %.4fs, want 10-30ms", est)
	}
}

func TestLoopResolvedByTrafficEquations(t *testing.T) {
	m, err := Model()
	if err != nil {
		t.Fatal(err)
	}
	rates := m.Rates()
	wantDetect := EventsPerSecond * CandidatesPerEvent / (1 - LoopGain)
	if math.Abs(rates[1].Lambda-wantDetect) > 1e-6 {
		t.Errorf("detector lambda = %g, want %g", rates[1].Lambda, wantDetect)
	}
}

func TestFigure6AllocationsAllStable(t *testing.T) {
	m, err := Model()
	if err != nil {
		t.Fatal(err)
	}
	recommended, bestET := -1, math.Inf(1)
	for i, alloc := range Figure6Allocations() {
		et, err := m.ExpectedSojourn(alloc)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(et, 1) {
			t.Errorf("allocation %v unstable", alloc)
		}
		if et < bestET {
			recommended, bestET = i, et
		}
	}
	if !equal(Figure6Allocations()[recommended], RecommendedAllocation()) {
		t.Errorf("model prefers %v over the starred allocation", Figure6Allocations()[recommended])
	}
}

func TestSimShowsNetworkDominatedGap(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	m, err := Model()
	if err != nil {
		t.Fatal(err)
	}
	alloc := RecommendedAllocation()
	est, err := m.ExpectedSojourn(alloc)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := SimConfig(alloc, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetWarmup(20)
	s.RunUntil(220)
	got := s.CompletedStats().Mean()
	// The paper's FPD story: measured far above the estimate because the
	// network dominates (their ratio ~8x; ours ~4-8x by construction).
	if got < 3*est {
		t.Errorf("measured %.4fs not network-dominated vs estimate %.4fs", got, est)
	}
	if got > 15*est {
		t.Errorf("measured %.4fs implausibly far above estimate %.4fs", got, est)
	}
}

func TestSimConfigValidation(t *testing.T) {
	if _, err := SimConfig([]int{1}, 1); err == nil {
		t.Error("short allocation should error")
	}
}

func TestSubsetsEnumeration(t *testing.T) {
	txn := Transaction{1, 2, 3}
	got := Subsets(txn, 2)
	keys := make([]string, len(got))
	for i, s := range got {
		keys[i] = s.Key()
	}
	sort.Strings(keys)
	want := []string{"1", "1,2", "1,3", "2", "2,3", "3"}
	if len(keys) != len(want) {
		t.Fatalf("subsets = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("subsets = %v, want %v", keys, want)
		}
	}
	if got := Subsets(txn, 0); got != nil {
		t.Error("maxLen 0 should yield nothing")
	}
	if got := Subsets(nil, 3); got != nil {
		t.Error("empty txn should yield nothing")
	}
}

func TestIsSubset(t *testing.T) {
	tests := []struct {
		s, t Itemset
		want bool
	}{
		{Itemset{1, 3}, Itemset{1, 2, 3}, true},
		{Itemset{1, 2, 3}, Itemset{1, 2, 3}, true},
		{Itemset{}, Itemset{1}, true},
		{Itemset{4}, Itemset{1, 2, 3}, false},
		{Itemset{1, 2, 3}, Itemset{1, 3}, false},
		{Itemset{2}, Itemset{1, 3}, false},
	}
	for _, tt := range tests {
		if got := tt.s.IsSubset(tt.t); got != tt.want {
			t.Errorf("IsSubset(%v, %v) = %v, want %v", tt.s, tt.t, got, tt.want)
		}
	}
}

func TestKeyRoundTrip(t *testing.T) {
	for _, s := range []Itemset{nil, {5}, {1, 2, 99}} {
		got := ParseKey(s.Key())
		if len(got) != len(s) {
			t.Errorf("round trip of %v = %v", s, got)
			continue
		}
		for i := range s {
			if got[i] != s[i] {
				t.Errorf("round trip of %v = %v", s, got)
			}
		}
	}
	if ParseKey("not-a-key") != nil {
		t.Error("garbage key should parse to nil")
	}
}

func TestHashStability(t *testing.T) {
	a := Itemset{1, 2, 3}.Hash()
	b := Itemset{1, 2, 3}.Hash()
	c := Itemset{1, 2, 4}.Hash()
	if a != b {
		t.Error("hash must be deterministic")
	}
	if a == c {
		t.Error("different sets should hash differently (overwhelmingly)")
	}
}

func TestNormalize(t *testing.T) {
	got := normalize([]int{3, 1, 3, 2, 1})
	want := Transaction{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("normalize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("normalize = %v, want %v", got, want)
		}
	}
}

func TestCandidateConfigCaps(t *testing.T) {
	cfg := CandidateConfig{MaxItems: 3, MaxLen: 2}
	got := cfg.Candidates(Transaction{1, 2, 3, 4, 5, 6})
	// 3 singletons + 3 pairs from the first 3 items.
	if len(got) != 6 {
		t.Errorf("capped candidates = %d, want 6", len(got))
	}
}

func TestTweetGenDeterministicAndBounded(t *testing.T) {
	a, b := NewTweetGen(100, 9), NewTweetGen(100, 9)
	for i := 0; i < 50; i++ {
		ta, tb := a.Next(), b.Next()
		if Itemset(ta).Key() != Itemset(tb).Key() {
			t.Fatal("same seed diverged")
		}
		if len(ta) < 1 || len(ta) > 8 {
			t.Fatalf("transaction size %d out of bounds", len(ta))
		}
		for j := 1; j < len(ta); j++ {
			if ta[j] <= ta[j-1] {
				t.Fatal("transaction not sorted/distinct")
			}
		}
	}
}

// distributedMFP replays a window through the task-partitioned protocol
// single-threaded: candidates routed by hash, every frequency transition
// broadcast to all stores. Returns the union of per-task MFP sets.
func distributedMFP(window []Transaction, cfg CandidateConfig, threshold, tasks int) map[string]bool {
	stores := make([]*MFPStore, tasks)
	for i := range stores {
		stores[i] = NewMFPStore(threshold)
	}
	apply := func(set Itemset, delta int) {
		owner := stores[set.Hash()%uint64(tasks)]
		if ch, changed := owner.Update(set, delta); changed {
			for _, st := range stores {
				st.ApplyNotification(ch)
			}
		}
	}
	for _, txn := range window {
		for _, set := range cfg.Candidates(txn) {
			apply(set, +1)
		}
	}
	out := make(map[string]bool)
	for _, st := range stores {
		for _, k := range st.Maximal() {
			out[k] = true
		}
	}
	return out
}

func TestDistributedMFPMatchesBruteForce(t *testing.T) {
	cfg := CandidateConfig{MaxItems: 5, MaxLen: 3}
	gen := NewTweetGen(30, 11)
	window := make([]Transaction, 400)
	for i := range window {
		window[i] = gen.Next()
	}
	const threshold = 25
	want := BruteForceMFP(window, cfg, threshold)
	for _, tasks := range []int{1, 3, 8} {
		got := distributedMFP(window, cfg, threshold, tasks)
		if len(got) != len(want) {
			t.Errorf("tasks=%d: %d MFPs, brute force %d", tasks, len(got), len(want))
			continue
		}
		for k := range want {
			if !got[k] {
				t.Errorf("tasks=%d: missing MFP %q", tasks, k)
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("degenerate test: brute force found no MFPs")
	}
}

func TestMFPWithSlidingDeletions(t *testing.T) {
	// Insert a window, then retract the first half; the protocol state must
	// match brute force over the surviving half.
	cfg := CandidateConfig{MaxItems: 5, MaxLen: 2}
	gen := NewTweetGen(20, 13)
	all := make([]Transaction, 300)
	for i := range all {
		all[i] = gen.Next()
	}
	const threshold, tasks = 20, 4
	stores := make([]*MFPStore, tasks)
	for i := range stores {
		stores[i] = NewMFPStore(threshold)
	}
	apply := func(set Itemset, delta int) {
		owner := stores[set.Hash()%uint64(tasks)]
		if ch, changed := owner.Update(set, delta); changed {
			for _, st := range stores {
				st.ApplyNotification(ch)
			}
		}
	}
	for _, txn := range all {
		for _, set := range cfg.Candidates(txn) {
			apply(set, +1)
		}
	}
	for _, txn := range all[:150] {
		for _, set := range cfg.Candidates(txn) {
			apply(set, -1)
		}
	}
	want := BruteForceMFP(all[150:], cfg, threshold)
	got := make(map[string]bool)
	for _, st := range stores {
		for _, k := range st.Maximal() {
			got[k] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("after deletions: %d MFPs, brute force %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing MFP %q after deletions", k)
		}
	}
}

func TestLivePipelineReportsMFPs(t *testing.T) {
	if testing.Short() {
		t.Skip("live engine run")
	}
	var mu sync.Mutex
	reports := 0
	current := make(map[string]bool)
	cfg := PipelineConfig{
		TweetsPerSecond: 300,
		WindowSize:      400,
		Vocabulary:      40,
		Threshold:       30,
		Tasks:           8,
		Seed:            21,
		OnReport: func(mc MFPChange) {
			mu.Lock()
			defer mu.Unlock()
			reports++
			if mc.Maximal {
				current[mc.Set.Key()] = true
			} else {
				delete(current, mc.Set.Key())
			}
		},
	}
	topo, err := Pipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := topo.Start(engine.RunConfig{
		Alloc: map[string]int{"generate": 2, "detect": 4, "report": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(2500 * time.Millisecond)
	rep := run.DrainInterval()
	if err := run.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if rep.ExternalArrivals < 200 {
		t.Errorf("only %d events in 2.5s at 300 tweets/s", rep.ExternalArrivals)
	}
	mu.Lock()
	defer mu.Unlock()
	if reports == 0 {
		t.Error("no MFP reports on a Zipf-skewed stream")
	}
	if len(current) == 0 {
		t.Error("no maximal frequent patterns currently flagged")
	}
	for _, name := range []string{"generate", "detect", "report"} {
		if n, last := run.Errors(name); n != 0 {
			t.Errorf("bolt %s errors: %d, last %v", name, n, last)
		}
	}
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
