// Package fpd implements the paper's second test application: maximal
// frequent pattern detection over a sliding window of a microblog stream
// (§V-A, Figure 5). Two spouts emit an event as a tweet enters (+) or
// leaves (−) the window; a pattern generator expands each event into
// candidate itemsets; a stateful, partitioned detector maintains occurrence
// counts and maximal-frequent-pattern (MFP) flags, broadcasting state
// changes to all of its own tasks over a feedback loop; a reporter receives
// the MFP updates.
//
// The simulation profile is calibrated so the DRS model reproduces the
// paper's recommendation AssignProcessors(22) = (6:13:3), with an estimated
// E[T] ≈ 27.7 ms (paper: ≈ 15.5 ms). FPD is the paper's data-intensive
// counter-example: per-hop network delay dominates the measured sojourn, so
// the model underestimates heavily but preserves the ordering (Fig. 7).
//
// Substitution note (DESIGN.md): the paper replays 28.7M real tweets; we
// generate synthetic transactions with a Zipf vocabulary at the same
// Poisson arrival rate (320 tweets/s) over the same 50,000-tweet window.
// The mining logic itself is real (see mining.go) and verified against a
// brute-force reference.
package fpd

import (
	"fmt"

	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/sim"
	"github.com/drs-repro/drs/internal/stats"
	"github.com/drs-repro/drs/internal/topology"
)

// Calibrated workload constants.
const (
	// TweetsPerSecond is the Poisson arrival rate of tweets (§V-B).
	TweetsPerSecond = 320.0
	// WindowSize is the sliding window length in tweets (§V-B).
	WindowSize = 50000
	// EventsPerSecond is the external event rate: each tweet produces one
	// "+" event entering the window and one "−" event leaving it.
	EventsPerSecond = 2 * TweetsPerSecond

	// CandidatesPerEvent is the mean candidate itemsets per window event
	// (pattern-generator selectivity).
	CandidatesPerEvent = 2.0
	// LoopGain is the probability that a detector state change feeds a
	// notification back into the detector (per processed candidate).
	LoopGain = 0.05
	// ReportSelectivity is the fraction of detector inputs that produce a
	// reporter update.
	ReportSelectivity = 0.1

	// GeneratorService, DetectorService and ReporterService are mean
	// per-tuple service seconds.
	GeneratorService = 0.006
	DetectorService  = 0.00757
	ReporterService  = 0.01262

	// HopDelayMean is the mean per-hop transfer delay in seconds. FPD is
	// data-intensive: per-hop cost includes serializing itemset batches,
	// not just wire latency, and dominates the sojourn — which is why the
	// model (which ignores the network) underestimates the measurement
	// several-fold while still ranking allocations correctly (paper: ~8x;
	// this profile: ~3x).
	HopDelayMean = 0.050
)

// OperatorNames lists the bolts in model order.
func OperatorNames() []string { return []string{"generate", "detect", "report"} }

// Topology returns the FPD operator network, including the detector's
// feedback loop — the paper's Figure 5.
func Topology() (*topology.Topology, error) {
	return topology.NewBuilder().
		AddOperator("generate", 1/GeneratorService, EventsPerSecond).
		AddOperator("detect", 1/DetectorService, 0).
		AddOperator("report", 1/ReporterService, 0).
		Connect("generate", "detect", CandidatesPerEvent).
		Connect("detect", "detect", LoopGain).
		Connect("detect", "report", ReportSelectivity).
		Build()
}

// Model returns the calibrated DRS performance model for FPD. The traffic
// equations resolve the loop: λ_detect = 640·2/(1−0.05) ≈ 1347/s.
func Model() (*core.Model, error) {
	topo, err := Topology()
	if err != nil {
		return nil, err
	}
	return core.NewModelFromTopology(topo)
}

// SimConfig builds the discrete-event simulation of FPD under the given
// allocation (generate, detect, report).
func SimConfig(alloc []int, seed uint64) (sim.Config, error) {
	if len(alloc) != 3 {
		return sim.Config{}, fmt.Errorf("fpd: allocation needs 3 operators, got %d", len(alloc))
	}
	hop := stats.Exponential{Rate: 1 / HopDelayMean}
	return sim.Config{
		Operators: []sim.OperatorSpec{
			{Name: "generate", Service: stats.Exponential{Rate: 1 / GeneratorService}},
			{Name: "detect", Service: stats.Exponential{Rate: 1 / DetectorService}},
			{Name: "report", Service: stats.Exponential{Rate: 1 / ReporterService}},
		},
		Edges: []sim.EdgeSpec{
			{From: 0, To: 1, Emit: sim.PoissonEmission{Selectivity: CandidatesPerEvent}, NetDelay: hop},
			{From: 1, To: 1, Emit: sim.FractionalEmission{Selectivity: LoopGain}, NetDelay: hop},
			{From: 1, To: 2, Emit: sim.FractionalEmission{Selectivity: ReportSelectivity}, NetDelay: hop},
		},
		Sources: []sim.SourceSpec{
			// Two spouts, as in Figure 5: the "+" and "−" event streams.
			{Op: 0, Arrivals: PoissonHalf()},
			{Op: 0, Arrivals: PoissonHalf()},
		},
		Alloc: append([]int(nil), alloc...),
		Seed:  seed,
	}, nil
}

// PoissonHalf is one spout's share of the external event stream.
func PoissonHalf() sim.ArrivalProcess {
	return sim.PoissonArrivals{Rate: EventsPerSecond / 2}
}

// Figure6Allocations are the six configurations of Fig. 6 (FPD), the
// starred one being DRS's recommendation.
func Figure6Allocations() [][]int {
	return [][]int{
		{5, 14, 3}, {6, 12, 4}, {6, 13, 3}, {7, 12, 3}, {7, 13, 2}, {8, 12, 2},
	}
}

// RecommendedAllocation is DRS's pick at Kmax = 22.
func RecommendedAllocation() []int { return []int{6, 13, 3} }
