package fpd

import (
	"sync"
	"time"

	"github.com/drs-repro/drs/internal/engine"
	"github.com/drs-repro/drs/internal/stats"
)

// windowEvent is a tweet entering (+1) or leaving (−1) the sliding window.
type windowEvent struct {
	txn   Transaction
	delta int
}

// candidate is the pattern generator's output: one itemset delta.
type candidate struct {
	set   Itemset
	delta int
}

// PipelineConfig parameterizes the live FPD topology.
type PipelineConfig struct {
	// TweetsPerSecond is the Poisson tweet rate (scale down from the
	// paper's 320/s for laptop runs).
	TweetsPerSecond float64
	// WindowSize is the sliding window length in tweets.
	WindowSize int
	// Vocabulary is the Zipf vocabulary size of the tweet generator.
	Vocabulary int
	// Threshold is the absolute support count for "frequent".
	Threshold int
	// Candidates bounds the pattern generator's expansion.
	Candidates CandidateConfig
	// Tasks bounds per-bolt parallelism.
	Tasks int
	// Seed drives generation and pacing.
	Seed uint64
	// OnReport, if set, receives every MFP change reaching the reporter
	// (called from executor goroutines; must be safe for concurrent use).
	OnReport func(MFPChange)
}

func (c *PipelineConfig) fillDefaults() {
	if c.TweetsPerSecond <= 0 {
		c.TweetsPerSecond = 50
	}
	if c.WindowSize <= 0 {
		c.WindowSize = 2000
	}
	if c.Vocabulary <= 0 {
		c.Vocabulary = 200
	}
	if c.Threshold <= 0 {
		c.Threshold = 20
	}
	if c.Candidates.MaxItems == 0 {
		c.Candidates.MaxItems = 6
	}
	if c.Candidates.MaxLen == 0 {
		c.Candidates.MaxLen = 3
	}
	if c.Tasks <= 0 {
		c.Tasks = 16
	}
}

// windowFeed coordinates the two spouts of Figure 5: the "+" spout emits
// each generated tweet as it enters the window and parks it in a FIFO; the
// "−" spout emits tweets as they leave. Shared by both spout instances.
type windowFeed struct {
	mu     sync.Mutex
	gen    *TweetGen
	fifo   []Transaction
	window int
}

// nextEnter generates one tweet, parks it, and returns its "+" event.
func (w *windowFeed) nextEnter() windowEvent {
	w.mu.Lock()
	defer w.mu.Unlock()
	txn := w.gen.Next()
	w.fifo = append(w.fifo, txn)
	return windowEvent{txn: txn, delta: +1}
}

// nextLeave pops the oldest tweet once the window is full; ok=false when
// the window has room.
func (w *windowFeed) nextLeave() (windowEvent, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.fifo) <= w.window {
		return windowEvent{}, false
	}
	txn := w.fifo[0]
	w.fifo = w.fifo[1:]
	return windowEvent{txn: txn, delta: -1}, true
}

// enterSpout paces "+" events at the tweet rate.
type enterSpout struct {
	feed *windowFeed
	rate float64
	seed uint64
}

// Run emits entering tweets until stopped.
func (s *enterSpout) Run(ctx engine.SpoutContext) error {
	rng := stats.NewRNG(s.seed)
	for {
		gap := rng.Exp(s.rate)
		timer := time.NewTimer(time.Duration(gap * float64(time.Second)))
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil
		case <-timer.C:
		}
		if ctx.Paused() {
			continue
		}
		ctx.Emit(engine.Values{s.feed.nextEnter()})
	}
}

// leaveSpout drains the window FIFO, emitting "−" events.
type leaveSpout struct {
	feed *windowFeed
}

// Run polls the window for departures until stopped.
func (s *leaveSpout) Run(ctx engine.SpoutContext) error {
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
		}
		if ctx.Paused() {
			continue
		}
		for {
			ev, ok := s.feed.nextLeave()
			if !ok {
				break
			}
			ctx.Emit(engine.Values{ev})
		}
	}
}

// detector is the stateful partitioned bolt of Figure 5. It owns the
// itemsets that hash to its task and learns the global frequent set from
// loop notifications ("the loop ensures that the state change
// notifications be sent to all the instances").
type detector struct {
	store *MFPStore
}

// Process handles either a candidate (count update) or a loop notification
// (frequent-set change from any task, including itself).
func (d *detector) Process(t engine.Tuple, emit engine.Emit) error {
	switch x := t.Values[0].(type) {
	case candidate:
		if ch, changed := d.store.Update(x.set, x.delta); changed {
			emit.To("loop")(engine.Values{ch})
		}
	case FreqChange:
		for _, mc := range d.store.ApplyNotification(x) {
			emit.To("mfp")(engine.Values{mc})
		}
	}
	return nil
}

// reporter presents MFP updates to the user (paper: writes to HDFS; here a
// callback plus an internal counter).
type reporter struct {
	cfg *PipelineConfig
}

// Process forwards one MFP change.
func (r *reporter) Process(t engine.Tuple, _ engine.Emit) error {
	mc := t.Values[0].(MFPChange)
	if r.cfg.OnReport != nil {
		r.cfg.OnReport(mc)
	}
	return nil
}

// Pipeline assembles the live FPD topology of Figure 5: two spouts feeding
// a pattern generator, a detector with a broadcast loop, and a reporter.
func Pipeline(cfg PipelineConfig) (*engine.Topology, error) {
	cfg.fillDefaults()
	feed := &windowFeed{
		gen:    NewTweetGen(cfg.Vocabulary, cfg.Seed),
		window: cfg.WindowSize,
	}
	setKey := func(v engine.Values) uint64 {
		return v[0].(candidate).set.Hash()
	}
	return engine.NewTopology().
		Spout("enter", 1, func(int) engine.Spout {
			return &enterSpout{feed: feed, rate: cfg.TweetsPerSecond, seed: cfg.Seed + 1}
		}).
		Spout("leave", 1, func(int) engine.Spout {
			return &leaveSpout{feed: feed}
		}).
		Bolt("generate", cfg.Tasks, func(int) engine.Bolt {
			return engine.BoltFunc(func(t engine.Tuple, emit engine.Emit) error {
				ev := t.Values[0].(windowEvent)
				for _, set := range cfg.Candidates.Candidates(ev.txn) {
					emit(engine.Values{candidate{set: set, delta: ev.delta}})
				}
				return nil
			})
		}).
		Bolt("detect", cfg.Tasks, func(int) engine.Bolt {
			return &detector{store: NewMFPStore(cfg.Threshold)}
		}).
		Bolt("report", cfg.Tasks, func(int) engine.Bolt {
			return &reporter{cfg: &cfg}
		}).
		Shuffle("enter", "generate").
		Shuffle("leave", "generate").
		Fields("generate", "detect", setKey).
		BroadcastOn("loop", "detect", "detect").
		ShuffleOn("mfp", "detect", "report").
		Build()
}
