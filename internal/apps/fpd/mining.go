package fpd

import (
	"sort"
	"strconv"
	"strings"

	"github.com/drs-repro/drs/internal/stats"
)

// Transaction is one tweet reduced to its distinct item (word) ids, sorted.
type Transaction []int

// normalize sorts and dedups a transaction in place, returning the result.
func normalize(items []int) Transaction {
	sort.Ints(items)
	out := items[:0]
	for i, v := range items {
		if i == 0 || v != items[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Itemset is a canonical (sorted, distinct) set of item ids.
type Itemset []int

// Key renders the canonical string form used for hashing and map keys.
func (s Itemset) Key() string {
	var b strings.Builder
	for i, v := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// ParseKey reverses Key.
func ParseKey(key string) Itemset {
	if key == "" {
		return nil
	}
	parts := strings.Split(key, ",")
	out := make(Itemset, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil
		}
		out[i] = v
	}
	return out
}

// IsSubset reports whether s ⊆ t (both canonical).
func (s Itemset) IsSubset(t Itemset) bool {
	if len(s) > len(t) {
		return false
	}
	i := 0
	for _, v := range t {
		if i == len(s) {
			return true
		}
		if s[i] == v {
			i++
		} else if s[i] < v {
			return false
		}
	}
	return i == len(s)
}

// Hash gives a stable 64-bit hash for fields grouping (FNV-1a over Key).
func (s Itemset) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range s {
		x := uint64(v)
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime
			x >>= 8
		}
	}
	return h
}

// Subsets enumerates all non-empty subsets of txn with size at most maxLen,
// in canonical form — the pattern generator's candidate expansion. The
// count is capped by capping txn first (see CandidateConfig).
func Subsets(txn Transaction, maxLen int) []Itemset {
	if maxLen <= 0 || len(txn) == 0 {
		return nil
	}
	var out []Itemset
	var cur Itemset
	var rec func(start int)
	rec = func(start int) {
		if len(cur) > 0 {
			out = append(out, append(Itemset(nil), cur...))
		}
		if len(cur) == maxLen {
			return
		}
		for i := start; i < len(txn); i++ {
			cur = append(cur, txn[i])
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}

// CandidateConfig bounds the pattern generator's expansion, because the
// subset count is exponential in transaction length (§V-A: "an exponential
// number of possible non-empty combinations").
type CandidateConfig struct {
	// MaxItems truncates transactions to their first MaxItems items.
	MaxItems int
	// MaxLen bounds candidate itemset size.
	MaxLen int
}

// Candidates expands one transaction into its candidate itemsets.
func (c CandidateConfig) Candidates(txn Transaction) []Itemset {
	if c.MaxItems > 0 && len(txn) > c.MaxItems {
		txn = txn[:c.MaxItems]
	}
	maxLen := c.MaxLen
	if maxLen <= 0 {
		maxLen = 3
	}
	return Subsets(txn, maxLen)
}

// MFPStore is the detector's task-local state: occurrence counts for the
// itemsets this task owns, plus the globally-known frequent set (learned
// via loop notifications) used to judge maximality.
type MFPStore struct {
	threshold int
	counts    map[string]int
	owned     map[string]Itemset
	// frequent is the global frequent-set index, keyed by Key; populated
	// by local transitions and by notifications from other tasks.
	frequent map[string]Itemset
	// mfp marks which locally-owned itemsets are currently maximal.
	mfp map[string]bool
}

// NewMFPStore builds a store with the given absolute support threshold.
func NewMFPStore(threshold int) *MFPStore {
	return &MFPStore{
		threshold: threshold,
		counts:    make(map[string]int),
		owned:     make(map[string]Itemset),
		frequent:  make(map[string]Itemset),
		mfp:       make(map[string]bool),
	}
}

// FreqChange describes an itemset crossing the support threshold.
type FreqChange struct {
	Set      Itemset
	Frequent bool
}

// MFPChange describes an itemset gaining or losing maximal status.
type MFPChange struct {
	Set     Itemset
	Maximal bool
	Count   int
}

// Update applies one candidate event (delta ±1) to a locally-owned itemset
// and returns the frequency transition, if any. The caller broadcasts the
// transition to all tasks (the loop edge) — including back to this one.
func (st *MFPStore) Update(set Itemset, delta int) (FreqChange, bool) {
	key := set.Key()
	if _, ok := st.owned[key]; !ok {
		st.owned[key] = set
	}
	before := st.counts[key] >= st.threshold
	st.counts[key] += delta
	if st.counts[key] <= 0 {
		delete(st.counts, key)
		delete(st.owned, key)
		delete(st.mfp, key)
	}
	after := st.counts[key] >= st.threshold
	if before == after {
		return FreqChange{}, false
	}
	return FreqChange{Set: set, Frequent: after}, true
}

// ApplyNotification ingests a frequency transition (possibly from another
// task) into the global frequent index and recomputes the maximality of
// the locally-owned itemsets it affects. It returns the local MFP changes
// that must be reported.
func (st *MFPStore) ApplyNotification(ch FreqChange) []MFPChange {
	key := ch.Set.Key()
	if ch.Frequent {
		st.frequent[key] = ch.Set
	} else {
		delete(st.frequent, key)
	}
	var out []MFPChange
	// The changed set itself may be locally owned.
	if _, ok := st.owned[key]; ok {
		out = st.refresh(key, out)
	}
	// Any locally-owned subset of the changed set can flip.
	for ownedKey, owned := range st.owned {
		if ownedKey == key {
			continue
		}
		if owned.IsSubset(ch.Set) {
			out = st.refresh(ownedKey, out)
		}
	}
	return out
}

// refresh recomputes one owned itemset's MFP flag, appending a change
// record if it flipped.
func (st *MFPStore) refresh(key string, out []MFPChange) []MFPChange {
	set := st.owned[key]
	now := st.isMaximal(set)
	if now != st.mfp[key] {
		if now {
			st.mfp[key] = true
		} else {
			delete(st.mfp, key)
		}
		out = append(out, MFPChange{Set: set, Maximal: now, Count: st.counts[key]})
	}
	return out
}

// isMaximal: frequent locally AND no strictly-larger frequent superset in
// the global index.
func (st *MFPStore) isMaximal(set Itemset) bool {
	if st.counts[set.Key()] < st.threshold {
		return false
	}
	for _, sup := range st.frequent {
		if len(sup) > len(set) && set.IsSubset(sup) {
			return false
		}
	}
	return true
}

// Maximal returns the keys of locally-owned itemsets currently flagged MFP.
func (st *MFPStore) Maximal() []string {
	out := make([]string, 0, len(st.mfp))
	for k := range st.mfp {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Count reports the current occurrence count of an itemset key.
func (st *MFPStore) Count(key string) int { return st.counts[key] }

// BruteForceMFP computes the maximal frequent itemsets of a window of
// transactions directly: count every candidate subset, keep those at or
// above the threshold, and discard any with a frequent strict superset.
// Exponential — reference implementation for tests.
func BruteForceMFP(window []Transaction, cfg CandidateConfig, threshold int) map[string]int {
	counts := make(map[string]int)
	sets := make(map[string]Itemset)
	for _, txn := range window {
		for _, s := range cfg.Candidates(txn) {
			k := s.Key()
			counts[k]++
			sets[k] = s
		}
	}
	frequent := make(map[string]Itemset)
	for k, c := range counts {
		if c >= threshold {
			frequent[k] = sets[k]
		}
	}
	out := make(map[string]int)
	for k, s := range frequent {
		maximal := true
		for _, sup := range frequent {
			if len(sup) > len(s) && s.IsSubset(sup) {
				maximal = false
				break
			}
		}
		if maximal {
			out[k] = counts[k]
		}
	}
	return out
}

// TweetGen produces synthetic transactions with a Zipf vocabulary: a few
// very common words and a long tail, like real microblog text.
type TweetGen struct {
	rng   *stats.RNG
	zipf  *stats.Zipf
	words int
	// MinItems..MaxItems bounds the distinct items per transaction.
	minItems, maxItems int
}

// NewTweetGen builds a generator over a vocabulary of the given size.
func NewTweetGen(vocabulary int, seed uint64) *TweetGen {
	if vocabulary < 4 {
		vocabulary = 4
	}
	rng := stats.NewRNG(seed)
	return &TweetGen{
		rng:      rng,
		zipf:     stats.NewZipf(rng, 1.4, uint64(vocabulary)),
		words:    vocabulary,
		minItems: 2,
		maxItems: 8,
	}
}

// Next generates one transaction.
func (g *TweetGen) Next() Transaction {
	n := g.minItems + g.rng.IntN(g.maxItems-g.minItems+1)
	items := make([]int, 0, n)
	for len(items) < n {
		items = append(items, int(g.zipf.Next()))
	}
	return normalize(items)
}
