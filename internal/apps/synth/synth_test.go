package synth

import (
	"math"
	"testing"

	"github.com/drs-repro/drs/internal/sim"
)

func TestWorkloadsSpanPaperRange(t *testing.T) {
	w := Workloads()
	if len(w) != 6 {
		t.Fatalf("want 6 workloads, got %d", len(w))
	}
	if math.Abs(w[0]-0.000567) > 1e-9 || math.Abs(w[5]-0.3091) > 1e-9 {
		t.Errorf("endpoints = %g, %g; paper uses 0.567ms and 309.1ms", w[0], w[5])
	}
	for i := 1; i < len(w); i++ {
		if w[i] <= w[i-1] {
			t.Error("workloads must increase")
		}
	}
}

func TestModelStableAcrossSweep(t *testing.T) {
	for _, cpu := range Workloads() {
		m, err := Model(cpu)
		if err != nil {
			t.Fatal(err)
		}
		et, err := m.ExpectedSojourn(Allocation())
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(et, 1) {
			t.Errorf("workload %gs unstable under fixed allocation", cpu)
		}
		if et < cpu {
			t.Errorf("estimate %g below pure CPU time %g", et, cpu)
		}
	}
	if _, err := Model(0); err == nil {
		t.Error("zero CPU should error")
	}
	if _, err := SimConfig(-1, 1); err == nil {
		t.Error("negative CPU should error")
	}
}

func TestUnderestimationShrinksWithCPU(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	var ratios []float64
	for _, cpu := range Workloads() {
		m, err := Model(cpu)
		if err != nil {
			t.Fatal(err)
		}
		est, err := m.ExpectedSojourn(Allocation())
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := SimConfig(cpu, 5)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.SetWarmup(5)
		s.RunUntil(120)
		ratios = append(ratios, s.CompletedStats().Mean()/est)
	}
	// Figure 8: the ratio decreases monotonically from tens to near 1.
	if ratios[0] < 20 {
		t.Errorf("lightest workload ratio = %.1f, want >> 1", ratios[0])
	}
	last := ratios[len(ratios)-1]
	if last > 1.5 || last < 1.0 {
		t.Errorf("heaviest workload ratio = %.2f, want ~1 (and >= 1)", last)
	}
	for i := 1; i < len(ratios); i++ {
		if ratios[i] >= ratios[i-1] {
			t.Errorf("ratio not decreasing at workload %d: %v", i, ratios)
		}
	}
}
