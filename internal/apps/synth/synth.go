// Package synth is the paper's synthetic validation topology (§V-C,
// Figure 8): a simple chain of three bolts whose only work is a
// configurable amount of pure CPU time. Sweeping the total CPU time from
// sub-millisecond to hundreds of milliseconds while holding the per-hop
// network cost fixed shows how the model's underestimation (it ignores the
// network) shrinks as computation comes to dominate — the paper's
// justification for restricting DRS to computation-intensive workloads.
package synth

import (
	"fmt"

	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/sim"
	"github.com/drs-repro/drs/internal/stats"
)

// Paper workload sweep: total bolt CPU time in seconds, log-spaced from
// 0.567 ms to 309.1 ms (§V-C reports those endpoints and 6 workloads).
func Workloads() []float64 {
	return []float64{0.000567, 0.00201, 0.00713, 0.0253, 0.0897, 0.3091}
}

// Split is the share of total CPU time given to each of the three bolts.
var split = [3]float64{0.2, 0.3, 0.5}

const (
	// ArrivalRate is the external tuple rate; 50/s keeps the heaviest
	// workload stable under the fixed allocation.
	ArrivalRate = 50.0
	// HopDelayMean models the per-hop framework + network overhead that
	// the DRS model deliberately ignores. Two inter-bolt hops at ~17 ms
	// reproduce the paper's ~60x ratio at the lightest workload.
	HopDelayMean = 0.017
)

// Allocation is the fixed executor split: 30 executors over 6 machines in
// the paper's setup; 10 per bolt here.
func Allocation() []int { return []int{10, 10, 10} }

// Model returns the DRS model for the chain at the given total CPU time.
func Model(totalCPU float64) (*core.Model, error) {
	if totalCPU <= 0 {
		return nil, fmt.Errorf("synth: total CPU %g must be positive", totalCPU)
	}
	ops := make([]core.OpRates, 3)
	for i := range ops {
		ops[i] = core.OpRates{
			Name:   fmt.Sprintf("bolt%d", i+1),
			Lambda: ArrivalRate,
			Mu:     1 / (totalCPU * split[i]),
		}
	}
	return core.NewModel(ArrivalRate, ops)
}

// SimConfig builds the chain simulation at the given total CPU time.
// Service times are exponential around each bolt's share; hops carry the
// fixed network cost.
func SimConfig(totalCPU float64, seed uint64) (sim.Config, error) {
	if totalCPU <= 0 {
		return sim.Config{}, fmt.Errorf("synth: total CPU %g must be positive", totalCPU)
	}
	hop := stats.Exponential{Rate: 1 / HopDelayMean}
	ops := make([]sim.OperatorSpec, 3)
	for i := range ops {
		ops[i] = sim.OperatorSpec{
			Name:    fmt.Sprintf("bolt%d", i+1),
			Service: stats.Exponential{Rate: 1 / (totalCPU * split[i])},
		}
	}
	return sim.Config{
		Operators: ops,
		Edges: []sim.EdgeSpec{
			{From: 0, To: 1, Emit: sim.FractionalEmission{Selectivity: 1}, NetDelay: hop},
			{From: 1, To: 2, Emit: sim.FractionalEmission{Selectivity: 1}, NetDelay: hop},
		},
		Sources: []sim.SourceSpec{{Op: 0, Arrivals: sim.PoissonArrivals{Rate: ArrivalRate}}},
		Alloc:   Allocation(),
		Seed:    seed,
	}, nil
}
