package vld

import (
	"math"

	"github.com/drs-repro/drs/internal/stats"
)

// Frame is one synthetic grayscale video frame.
type Frame struct {
	// ID is the frame sequence number.
	ID int64
	// W and H are the dimensions; Pix is row-major, length W*H, in [0, 1].
	W, H int
	Pix  []float32
	// Logo is the id of the logo stamped into this frame, or -1. Carried
	// as generation ground truth for detection-accuracy tests only; the
	// pipeline never reads it.
	Logo int
}

// Descriptor is an 8-bin gradient-orientation histogram around a feature
// point — a miniature of SIFT's descriptor, enough for L2 matching.
type Descriptor [8]float32

// Feature is one extracted interest point.
type Feature struct {
	FrameID int64
	X, Y    int
	Desc    Descriptor
}

// FrameGenConfig parameterizes the synthetic source.
type FrameGenConfig struct {
	// W, H are frame dimensions (default 64x48).
	W, H int
	// Logos is the number of distinct logo stamps available.
	Logos int
	// LogoProb is the probability a frame carries a logo.
	LogoProb float64
	// Noise is the background noise amplitude in [0, 1].
	Noise float64
}

// FrameGen produces deterministic synthetic frames: low-amplitude noise
// plus, with probability LogoProb, one of a fixed set of high-contrast
// logo stamps (distinct oriented patterns, so their descriptors differ).
type FrameGen struct {
	cfg FrameGenConfig
	rng *stats.RNG
	id  int64
}

// NewFrameGen builds a generator with the given seed.
func NewFrameGen(cfg FrameGenConfig, seed uint64) *FrameGen {
	if cfg.W <= 0 {
		cfg.W = 64
	}
	if cfg.H <= 0 {
		cfg.H = 48
	}
	if cfg.Logos <= 0 {
		cfg.Logos = 4
	}
	if cfg.LogoProb == 0 {
		cfg.LogoProb = 0.5
	}
	if cfg.Noise == 0 {
		cfg.Noise = 0.05
	}
	return &FrameGen{cfg: cfg, rng: stats.NewRNG(seed)}
}

// Next generates the next frame.
func (g *FrameGen) Next() Frame {
	f := Frame{
		ID:   g.id,
		W:    g.cfg.W,
		H:    g.cfg.H,
		Pix:  make([]float32, g.cfg.W*g.cfg.H),
		Logo: -1,
	}
	g.id++
	for i := range f.Pix {
		f.Pix[i] = float32(g.rng.Float64() * g.cfg.Noise)
	}
	if g.rng.Bernoulli(g.cfg.LogoProb) {
		logo := g.rng.IntN(g.cfg.Logos)
		f.Logo = logo
		stampLogo(&f, logo, g.rng)
	}
	return f
}

// stampLogo draws logo-specific oriented bar patterns at a random position.
// Each logo uses a different bar angle, which yields distinct gradient
// orientation histograms.
func stampLogo(f *Frame, logo int, rng *stats.RNG) {
	const size = 16
	x0 := rng.IntN(maxInt(1, f.W-size))
	y0 := rng.IntN(maxInt(1, f.H-size))
	for dy := 0; dy < size; dy++ {
		for dx := 0; dx < size; dx++ {
			// Bars perpendicular to the logo's angle: logo k uses stripes
			// along direction k*45 degrees.
			var phase int
			switch logo % 4 {
			case 0:
				phase = dx
			case 1:
				phase = dy
			case 2:
				phase = dx + dy
			default:
				phase = dx - dy + size
			}
			if (phase/3)%2 == 0 {
				f.Pix[(y0+dy)*f.W+(x0+dx)] = 1
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ExtractFeatures finds interest points as local maxima of gradient
// magnitude and describes each with an 8-bin orientation histogram over a
// 5x5 neighborhood. The cost is dominated by the full-frame gradient pass
// — like SIFT, it grows with frame area and detail.
func ExtractFeatures(f Frame, maxFeatures int) []Feature {
	w, h := f.W, f.H
	if w < 3 || h < 3 {
		return nil
	}
	gx := make([]float32, w*h)
	gy := make([]float32, w*h)
	mag := make([]float32, w*h)
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			i := y*w + x
			gx[i] = f.Pix[i+1] - f.Pix[i-1]
			gy[i] = f.Pix[i+w] - f.Pix[i-w]
			mag[i] = gx[i]*gx[i] + gy[i]*gy[i]
		}
	}
	var feats []Feature
	const threshold = 0.25
	for y := 2; y < h-2; y++ {
		for x := 2; x < w-2; x++ {
			i := y*w + x
			m := mag[i]
			if m < threshold {
				continue
			}
			if m < mag[i-1] || m < mag[i+1] || m < mag[i-w] || m < mag[i+w] {
				continue
			}
			feats = append(feats, Feature{
				FrameID: f.ID,
				X:       x,
				Y:       y,
				Desc:    describe(gx, gy, w, x, y),
			})
			if maxFeatures > 0 && len(feats) >= maxFeatures {
				return feats
			}
		}
	}
	return feats
}

// describe builds the 8-bin orientation histogram over a 5x5 patch.
func describe(gx, gy []float32, w, x, y int) Descriptor {
	var d Descriptor
	for dy := -2; dy <= 2; dy++ {
		for dx := -2; dx <= 2; dx++ {
			i := (y+dy)*w + (x + dx)
			bin := orientationBin(gx[i], gy[i])
			d[bin] += gx[i]*gx[i] + gy[i]*gy[i]
		}
	}
	// L2-normalize so matching is contrast-invariant.
	var norm float32
	for _, v := range d {
		norm += v * v
	}
	if norm > 0 {
		inv := 1 / sqrt32(norm)
		for i := range d {
			d[i] *= inv
		}
	}
	return d
}

// orientationBin quantizes atan2(gy, gx) into 8 octants without trig calls.
func orientationBin(gx, gy float32) int {
	bin := 0
	if gy < 0 {
		bin |= 4
		gx, gy = -gx, -gy
	}
	if gx < 0 {
		bin |= 2
		gx, gy = gy, -gx
	}
	if gy > gx {
		bin |= 1
	}
	return bin
}

// Distance is the squared L2 distance between descriptors.
func Distance(a, b Descriptor) float32 {
	var s float32
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func sqrt32(x float32) float32 { return float32(math.Sqrt(float64(x))) }

// ExtractMultiScale extracts features over a small scale-space pyramid,
// like SIFT: the frame is repeatedly box-blurred and features are collected
// at every octave. Cost grows linearly with octaves × frame area, giving
// the extractor its SIFT-like weight (the paper: "this step is
// time-consuming, involving convolutions on the 2-dimensional image
// space"). octaves <= 1 degenerates to ExtractFeatures.
func ExtractMultiScale(f Frame, octaves, maxFeatures int) []Feature {
	if octaves <= 1 {
		return ExtractFeatures(f, maxFeatures)
	}
	feats := ExtractFeatures(f, maxFeatures)
	pix := f.Pix
	for o := 1; o < octaves; o++ {
		pix = boxBlur(pix, f.W, f.H, 1+o/2)
		blurred := Frame{ID: f.ID, W: f.W, H: f.H, Pix: pix, Logo: f.Logo}
		more := ExtractFeatures(blurred, maxFeatures)
		feats = append(feats, more...)
		if maxFeatures > 0 && len(feats) >= maxFeatures {
			return feats[:maxFeatures]
		}
	}
	return feats
}

// boxBlur applies a (2r+1)x(2r+1) box filter using a summed-area table, so
// the cost is O(w·h) regardless of radius.
func boxBlur(pix []float32, w, h, r int) []float32 {
	// Summed-area table with an extra top row and left column of zeros.
	sat := make([]float64, (w+1)*(h+1))
	for y := 0; y < h; y++ {
		rowSum := 0.0
		for x := 0; x < w; x++ {
			rowSum += float64(pix[y*w+x])
			sat[(y+1)*(w+1)+(x+1)] = sat[y*(w+1)+(x+1)] + rowSum
		}
	}
	out := make([]float32, w*h)
	for y := 0; y < h; y++ {
		y0, y1 := clampInt(y-r, 0, h-1), clampInt(y+r, 0, h-1)
		for x := 0; x < w; x++ {
			x0, x1 := clampInt(x-r, 0, w-1), clampInt(x+r, 0, w-1)
			area := float64((y1 - y0 + 1) * (x1 - x0 + 1))
			sum := sat[(y1+1)*(w+1)+(x1+1)] - sat[y0*(w+1)+(x1+1)] -
				sat[(y1+1)*(w+1)+x0] + sat[y0*(w+1)+x0]
			out[y*w+x] = float32(sum / area)
		}
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
