package vld

import (
	"sync"
	"time"

	"github.com/drs-repro/drs/internal/engine"
	"github.com/drs-repro/drs/internal/stats"
)

// Detection is the pipeline's output: a logo judged present in a frame.
type Detection struct {
	FrameID int64
	Logo    int
	Matches int
}

// PipelineConfig parameterizes the engine (live) form of VLD.
type PipelineConfig struct {
	// FPS is the mean frame rate of the paced spout; the instantaneous
	// rate is uniform on [FPS/13*1, FPS/13*25] mirroring the paper's
	// modulated source. Use a small value (e.g. 20-50) for laptop runs.
	FPS float64
	// Frames generates the synthetic stream.
	Frames FrameGenConfig
	// MatchThreshold is the max squared descriptor distance for a match.
	MatchThreshold float32
	// DetectThreshold is the matched-pair count that declares a detection.
	DetectThreshold int
	// Octaves is the extractor's scale-space depth; more octaves make
	// extraction proportionally more expensive (1 = single scale).
	Octaves int
	// Tasks bounds per-bolt parallelism (fixed at start, as in Storm).
	Tasks int
	// Seed drives frame generation and pacing.
	Seed uint64
	// OnDetection, if set, receives every detection (called from executor
	// goroutines; must be safe for concurrent use).
	OnDetection func(Detection)
}

// logoLibrary builds the reference descriptors by generating clean stamps
// of each logo and extracting their features — the "pre-generated logo
// features" of §V-A.
func logoLibrary(cfg FrameGenConfig) [][]Descriptor {
	lib := make([][]Descriptor, cfg.Logos)
	for logo := 0; logo < cfg.Logos; logo++ {
		f := Frame{W: 32, H: 32, Pix: make([]float32, 32*32)}
		stampLogo(&f, logo, stats.NewRNG(uint64(logo)+1))
		feats := ExtractFeatures(f, 0)
		descs := make([]Descriptor, len(feats))
		for i, ft := range feats {
			descs[i] = ft.Desc
		}
		lib[logo] = descs
	}
	return lib
}

// Pipeline assembles the live VLD topology: spout "frames" -> bolt
// "extract" -> bolt "match" (fields by frame) -> bolt "aggregate" (fields
// by frame). It returns the topology and the bolt names in model order.
func Pipeline(cfg PipelineConfig) (*engine.Topology, error) {
	if cfg.FPS <= 0 {
		cfg.FPS = MeanFPS
	}
	if cfg.MatchThreshold == 0 {
		cfg.MatchThreshold = 0.12
	}
	if cfg.DetectThreshold == 0 {
		cfg.DetectThreshold = 4
	}
	if cfg.Tasks <= 0 {
		cfg.Tasks = 16
	}
	lib := logoLibrary(cfg.Frames)

	frameKey := func(v engine.Values) uint64 {
		switch x := v[0].(type) {
		case Feature:
			return uint64(x.FrameID)
		case match:
			return uint64(x.frameID)
		default:
			return 0
		}
	}

	return engine.NewTopology().
		Spout("frames", 1, func(instance int) engine.Spout {
			return &frameSpout{cfg: cfg, seed: cfg.Seed + uint64(instance)}
		}).
		Bolt("extract", cfg.Tasks, func(int) engine.Bolt {
			return engine.BoltFunc(func(t engine.Tuple, emit engine.Emit) error {
				frame := t.Values[0].(Frame)
				for _, ft := range ExtractMultiScale(frame, cfg.Octaves, 0) {
					emit(engine.Values{ft})
				}
				return nil
			})
		}).
		Bolt("match", cfg.Tasks, func(int) engine.Bolt {
			return engine.BoltFunc(func(t engine.Tuple, emit engine.Emit) error {
				ft := t.Values[0].(Feature)
				for logo, descs := range lib {
					best := float32(1e9)
					for _, d := range descs {
						if dist := Distance(ft.Desc, d); dist < best {
							best = dist
						}
					}
					if best <= cfg.MatchThreshold {
						emit(engine.Values{match{frameID: ft.FrameID, logo: logo}})
					}
				}
				return nil
			})
		}).
		Bolt("aggregate", cfg.Tasks, func(int) engine.Bolt {
			return newAggregator(cfg)
		}).
		Shuffle("frames", "extract").
		Fields("extract", "match", frameKey).
		Fields("match", "aggregate", frameKey).
		Build()
}

// match is the matcher's output tuple payload.
type match struct {
	frameID int64
	logo    int
}

// frameSpout paces synthetic frames at the configured mean rate with a
// uniformly modulated instantaneous rate.
type frameSpout struct {
	cfg  PipelineConfig
	seed uint64
}

// Run emits frames until stopped.
func (s *frameSpout) Run(ctx engine.SpoutContext) error {
	rng := stats.NewRNG(s.seed)
	gen := NewFrameGen(s.cfg.Frames, s.seed^0xabcdef)
	scale := s.cfg.FPS / MeanFPS
	rate := s.cfg.FPS
	deadline := time.Now()
	for {
		select {
		case <-ctx.Done():
			return nil
		default:
		}
		if time.Since(deadline) >= 0 {
			rate = rng.Uniform(FPSLow*scale, FPSHigh*scale)
			deadline = time.Now().Add(time.Second)
		}
		gap := rng.Exp(rate)
		timer := time.NewTimer(time.Duration(gap * float64(time.Second)))
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil
		case <-timer.C:
		}
		if ctx.Paused() {
			continue
		}
		ctx.Emit(engine.Values{gen.Next()})
	}
}

// aggregator counts matched pairs per (frame, logo) and fires a detection
// when the count crosses the threshold. State is task-local (fields
// grouping guarantees one frame maps to one task); old frames are evicted
// with a bounded FIFO.
type aggregator struct {
	cfg    PipelineConfig
	mu     sync.Mutex
	counts map[frameLogo]int
	fired  map[frameLogo]bool
	order  []frameLogo
}

type frameLogo struct {
	frame int64
	logo  int
}

func newAggregator(cfg PipelineConfig) *aggregator {
	return &aggregator{
		cfg:    cfg,
		counts: make(map[frameLogo]int),
		fired:  make(map[frameLogo]bool),
	}
}

// Process counts one matched pair.
func (a *aggregator) Process(t engine.Tuple, _ engine.Emit) error {
	m := t.Values[0].(match)
	key := frameLogo{frame: m.frameID, logo: m.logo}
	a.mu.Lock()
	if _, seen := a.counts[key]; !seen {
		a.order = append(a.order, key)
		if len(a.order) > 4096 {
			old := a.order[0]
			a.order = a.order[1:]
			delete(a.counts, old)
			delete(a.fired, old)
		}
	}
	a.counts[key]++
	shouldFire := a.counts[key] >= a.cfg.DetectThreshold && !a.fired[key]
	if shouldFire {
		a.fired[key] = true
	}
	n := a.counts[key]
	a.mu.Unlock()
	if shouldFire && a.cfg.OnDetection != nil {
		a.cfg.OnDetection(Detection{FrameID: m.frameID, Logo: m.logo, Matches: n})
	}
	return nil
}
