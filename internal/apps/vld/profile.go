// Package vld implements the paper's first test application: real-time
// video logo detection (§V-A, Figure 4) — a chain of a frame spout, a
// SIFT-style feature extractor, a feature matcher and a matching
// aggregator.
//
// Two forms are provided.
//
// The simulation profile models the pipeline at *frame granularity*: each
// stage handles one tuple per frame (the extractor's output is the frame's
// whole feature set, as a batch), so the chain has selectivity 1 and every
// operator sees λ_i = 13 tuples/s. This granularity is what makes the
// paper's Jackson estimate track the measured tree-completion time — with
// per-feature tuples the weighted-sum estimate counts fan-out branches
// sequentially while the real system overlaps them (see EXPERIMENTS.md).
// Per-frame service times are calibrated so the DRS model reproduces the
// paper's headline allocations: AssignProcessors(22) = (10:11:1) and
// AssignProcessors(17) = (8:8:1), with E[T] at the optimum ≈ 0.98 s
// (paper: ≈ 0.49 s on their hardware) and the (8:8:1)/(10:11:1) ratio
// ≈ 1.22, matching the paper's Fig. 10 ratio.
//
// The engine pipeline is a real pure-Go implementation (synthetic frames,
// gradient-based feature extraction, L2 descriptor matching, per-frame
// aggregation) used by the examples and integration tests; it passes
// feature-granularity tuples like the Storm original.
//
// Substitution note (DESIGN.md): the paper uses soccer-match video clips
// and OpenCV SIFT. Frame content does not matter to scheduling — only the
// arrival process, the per-tuple cost distribution and the topology shape
// do — so frames are synthetic and the extractor is a small gradient
// detector with SIFT-like cost shape.
package vld

import (
	"fmt"
	"math"

	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/sim"
	"github.com/drs-repro/drs/internal/stats"
	"github.com/drs-repro/drs/internal/topology"
)

// Calibrated workload constants (see DESIGN.md "per-experiment index").
const (
	// MeanFPS is the mean external frame rate; the instantaneous rate is
	// uniform on [1, 25) as in §V-B.
	MeanFPS = 13.0
	// FPSLow and FPSHigh bound the modulated frame rate.
	FPSLow, FPSHigh = 1.0, 25.0

	// ExtractService is the mean seconds of SIFT-style extraction per frame.
	ExtractService = 0.45
	// MatchService is the mean seconds to match one frame's feature batch.
	MatchService = 0.50
	// AggregateService is the mean seconds to aggregate one frame's matches.
	AggregateService = 0.01

	// HopDelayMean is the mean per-hop network delay in seconds. VLD is
	// computation-intensive, so the network contribution is small — the
	// paper's Fig. 7 shows only slight underestimation for VLD.
	HopDelayMean = 0.001
)

// OperatorNames lists the bolts in model order.
func OperatorNames() []string { return []string{"extract", "match", "aggregate"} }

// Topology returns the VLD operator network as a model-facing description
// (rates and selectivities), from which the Jackson model is derived.
func Topology() (*topology.Topology, error) {
	return topology.NewBuilder().
		AddOperator("extract", 1/ExtractService, MeanFPS).
		AddOperator("match", 1/MatchService, 0).
		AddOperator("aggregate", 1/AggregateService, 0).
		Connect("extract", "match", 1).
		Connect("match", "aggregate", 1).
		Build()
}

// Model returns the calibrated DRS performance model for VLD.
func Model() (*core.Model, error) {
	topo, err := Topology()
	if err != nil {
		return nil, err
	}
	return core.NewModelFromTopology(topo)
}

// SimConfig builds the discrete-event simulation of the VLD pipeline under
// the given allocation (extract, match, aggregate).
//
// Fidelity choices mirror the paper's deliberate violations of the model's
// assumptions: the frame rate is *uniformly* modulated on [1,25) rather
// than Poisson, and per-frame costs are lognormal ("the number of SIFT
// features may vary dramatically on different frames, causing significant
// variance"). The starred allocation (10:11:1) is the only Fig. 6
// configuration whose capacity covers the 25 fps modulated peak at both
// heavy stages, which is what separates it in measured mean and stddev.
func SimConfig(alloc []int, seed uint64) (sim.Config, error) {
	if len(alloc) != 3 {
		return sim.Config{}, fmt.Errorf("vld: allocation needs 3 operators, got %d", len(alloc))
	}
	hop := stats.Exponential{Rate: 1 / HopDelayMean}
	return sim.Config{
		Operators: []sim.OperatorSpec{
			{Name: "extract", Service: logNormalWithMean(ExtractService, 0.6)},
			{Name: "match", Service: logNormalWithMean(MatchService, 0.5)},
			{Name: "aggregate", Service: stats.Exponential{Rate: 1 / AggregateService}},
		},
		Edges: []sim.EdgeSpec{
			{From: 0, To: 1, Emit: sim.FractionalEmission{Selectivity: 1}, NetDelay: hop},
			{From: 1, To: 2, Emit: sim.FractionalEmission{Selectivity: 1}, NetDelay: hop},
		},
		Sources: []sim.SourceSpec{{
			Op: 0,
			Arrivals: &sim.ModulatedRate{
				RateDist: stats.Uniform{Lo: FPSLow, Hi: FPSHigh},
				Period:   1,
			},
		}},
		Alloc: append([]int(nil), alloc...),
		Seed:  seed,
	}, nil
}

// logNormalWithMean returns a lognormal distribution with the given mean
// and log-space sigma.
func logNormalWithMean(mean, sigma float64) stats.Dist {
	return stats.LogNormal{Mu: math.Log(mean) - sigma*sigma/2, Sigma: sigma}
}

// Figure6Allocations are the six configurations of Fig. 6 (VLD), the
// starred one being DRS's recommendation.
func Figure6Allocations() [][]int {
	return [][]int{
		{8, 12, 2}, {9, 11, 2}, {10, 11, 1}, {11, 9, 2}, {11, 10, 1}, {12, 9, 1},
	}
}

// RecommendedAllocation is DRS's pick at Kmax = 22.
func RecommendedAllocation() []int { return []int{10, 11, 1} }

// SmallPoolAllocation is DRS's pick at Kmax = 17 (Fig. 10 initial state).
func SmallPoolAllocation() []int { return []int{8, 8, 1} }
