package vld

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/drs-repro/drs/internal/engine"
	"github.com/drs-repro/drs/internal/sim"
	"github.com/drs-repro/drs/internal/stats"
)

func TestModelReproducesPaperAllocations(t *testing.T) {
	m, err := Model()
	if err != nil {
		t.Fatal(err)
	}
	k22, err := m.AssignProcessors(22)
	if err != nil {
		t.Fatal(err)
	}
	if want := RecommendedAllocation(); !equal(k22, want) {
		t.Errorf("AssignProcessors(22) = %v, want %v (paper Fig. 6)", k22, want)
	}
	k17, err := m.AssignProcessors(17)
	if err != nil {
		t.Fatal(err)
	}
	if want := SmallPoolAllocation(); !equal(k17, want) {
		t.Errorf("AssignProcessors(17) = %v, want %v (paper Fig. 10)", k17, want)
	}
}

func TestRecommendedIsBestOfFigure6(t *testing.T) {
	m, err := Model()
	if err != nil {
		t.Fatal(err)
	}
	best, bestET := -1, math.Inf(1)
	for i, alloc := range Figure6Allocations() {
		et, err := m.ExpectedSojourn(alloc)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(et, 1) {
			t.Errorf("Fig. 6 allocation %v unstable under the profile", alloc)
		}
		if et < bestET {
			best, bestET = i, et
		}
	}
	if !equal(Figure6Allocations()[best], RecommendedAllocation()) {
		t.Errorf("model prefers %v over the starred allocation", Figure6Allocations()[best])
	}
}

func TestSimTracksModelEstimate(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation too long for -short")
	}
	m, err := Model()
	if err != nil {
		t.Fatal(err)
	}
	alloc := RecommendedAllocation()
	want, err := m.ExpectedSojourn(alloc)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := SimConfig(alloc, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetWarmup(60)
	s.RunUntil(600) // a 10-minute experiment, as in Fig. 6
	got := s.CompletedStats().Mean()
	// The simulation uses lognormal services, modulated arrivals and
	// network delay, so it must sit somewhat ABOVE the M/M/k estimate but
	// in its neighborhood (the paper's "slight underestimation" for VLD).
	if got < want {
		t.Errorf("measured %0.3fs below model %0.3fs: network should add latency", got, want)
	}
	if got > want*1.8 {
		t.Errorf("measured %0.3fs too far above model %0.3fs", got, want)
	}
}

func TestSimConfigValidation(t *testing.T) {
	if _, err := SimConfig([]int{1, 2}, 1); err == nil {
		t.Error("short allocation should error")
	}
}

func TestFrameGenDeterminism(t *testing.T) {
	a := NewFrameGen(FrameGenConfig{}, 7)
	b := NewFrameGen(FrameGenConfig{}, 7)
	for i := 0; i < 10; i++ {
		fa, fb := a.Next(), b.Next()
		if fa.Logo != fb.Logo {
			t.Fatal("same seed produced different logos")
		}
		for j := range fa.Pix {
			if fa.Pix[j] != fb.Pix[j] {
				t.Fatal("same seed produced different pixels")
			}
		}
	}
}

func TestFrameGenDefaults(t *testing.T) {
	g := NewFrameGen(FrameGenConfig{}, 1)
	f := g.Next()
	if f.W != 64 || f.H != 48 || len(f.Pix) != 64*48 {
		t.Errorf("default frame %dx%d", f.W, f.H)
	}
}

func TestExtractFindsLogoFeatures(t *testing.T) {
	// A clean logo frame must yield clearly more features than noise.
	noise := Frame{W: 64, H: 48, Pix: make([]float32, 64*48)}
	noiseFeats := ExtractFeatures(noise, 0)

	stamped := Frame{W: 64, H: 48, Pix: make([]float32, 64*48)}
	stampLogo(&stamped, 0, stats.NewRNG(3))
	logoFeats := ExtractFeatures(stamped, 0)
	if len(logoFeats) <= len(noiseFeats)+5 {
		t.Errorf("logo frame features %d vs flat %d: stamp not salient", len(logoFeats), len(noiseFeats))
	}
}

func TestExtractMaxFeaturesCap(t *testing.T) {
	f := Frame{W: 64, H: 48, Pix: make([]float32, 64*48)}
	stampLogo(&f, 2, stats.NewRNG(4))
	feats := ExtractFeatures(f, 3)
	if len(feats) > 3 {
		t.Errorf("cap ignored: %d features", len(feats))
	}
}

func TestExtractTinyFrame(t *testing.T) {
	if got := ExtractFeatures(Frame{W: 2, H: 2, Pix: make([]float32, 4)}, 0); got != nil {
		t.Errorf("tiny frame should yield no features, got %d", len(got))
	}
}

func TestDescriptorsDistinguishLogos(t *testing.T) {
	// Descriptors of a logo's own stamp must match its library entry more
	// closely than a different logo's entries (on average).
	lib := logoLibrary(FrameGenConfig{Logos: 4})
	for logo := 0; logo < 2; logo++ {
		f := Frame{W: 32, H: 32, Pix: make([]float32, 32*32)}
		stampLogo(&f, logo, stats.NewRNG(uint64(90+logo)))
		feats := ExtractFeatures(f, 0)
		if len(feats) == 0 {
			t.Fatalf("logo %d produced no features", logo)
		}
		own, other := 0.0, 0.0
		for _, ft := range feats {
			own += float64(bestDistance(ft.Desc, lib[logo]))
			other += float64(bestDistance(ft.Desc, lib[(logo+1)%4]))
		}
		if own >= other {
			t.Errorf("logo %d: own distance %g not below other %g", logo, own, other)
		}
	}
}

func bestDistance(d Descriptor, lib []Descriptor) float32 {
	best := float32(math.MaxFloat32)
	for _, l := range lib {
		if dist := Distance(d, l); dist < best {
			best = dist
		}
	}
	return best
}

func TestOrientationBinCoversOctants(t *testing.T) {
	seen := make(map[int]bool)
	dirs := [][2]float32{
		{1, 0.2}, {0.2, 1}, {-0.2, 1}, {-1, 0.2},
		{-1, -0.2}, {-0.2, -1}, {0.2, -1}, {1, -0.2},
	}
	for _, d := range dirs {
		bin := orientationBin(d[0], d[1])
		if bin < 0 || bin > 7 {
			t.Fatalf("bin %d out of range", bin)
		}
		seen[bin] = true
	}
	if len(seen) != 8 {
		t.Errorf("8 directions hit %d distinct bins", len(seen))
	}
}

func TestDistanceProperties(t *testing.T) {
	a := Descriptor{1, 0, 0, 0, 0, 0, 0, 0}
	b := Descriptor{0, 1, 0, 0, 0, 0, 0, 0}
	if Distance(a, a) != 0 {
		t.Error("self distance must be 0")
	}
	if got := Distance(a, b); got != 2 {
		t.Errorf("unit-vector distance = %g, want 2", got)
	}
	if Distance(a, b) != Distance(b, a) {
		t.Error("distance must be symmetric")
	}
}

func TestLivePipelineDetectsLogos(t *testing.T) {
	if testing.Short() {
		t.Skip("live engine run")
	}
	var detections atomic.Int64
	var mu sync.Mutex
	seenLogos := make(map[int]bool)
	cfg := PipelineConfig{
		FPS:    80, // scaled up so a 2-second test sees plenty of frames
		Frames: FrameGenConfig{W: 48, H: 36, Logos: 4, LogoProb: 0.7},
		Tasks:  8,
		Seed:   42,
		OnDetection: func(d Detection) {
			detections.Add(1)
			mu.Lock()
			seenLogos[d.Logo] = true
			mu.Unlock()
		},
	}
	topo, err := Pipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := topo.Start(engine.RunConfig{
		Alloc: map[string]int{"extract": 4, "match": 4, "aggregate": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Second)
	rep := run.DrainInterval()
	if err := run.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if rep.ExternalArrivals < 50 {
		t.Errorf("only %d frames in 2s at 80fps", rep.ExternalArrivals)
	}
	if rep.Ops[0].Served == 0 || rep.Ops[1].Served == 0 {
		t.Errorf("pipeline stalled: %+v", rep.Ops)
	}
	if detections.Load() == 0 {
		t.Error("no logo detections on a 70%-logo stream")
	}
	for _, name := range []string{"extract", "match", "aggregate"} {
		if n, last := mustErrors(t, run, name); n != 0 {
			t.Errorf("bolt %s had %d errors, last: %v", name, n, last)
		}
	}
}

func mustErrors(t *testing.T, run *engine.Run, bolt string) (int64, error) {
	t.Helper()
	n, last := run.Errors(bolt)
	return n, last
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
