package sim

// eventHeap is a 4-ary min-heap over the concrete event type, ordered by
// (at, seq). Unlike container/heap it never boxes an event through
// interface{} — the per-push allocation that dominated simulator allocs —
// and the shallow 4-ary layout touches fewer levels per sift than a binary
// heap on the deep queues long runs build. (at, seq) is a strict total
// order, so dispatch order is identical to the old container/heap
// implementation, event for event.
type eventHeap struct {
	a []event
}

func (h *eventHeap) len() int { return len(h.a) }

// peek returns the minimum event without removing it. Call only when
// len() > 0.
func (h *eventHeap) peek() *event { return &h.a[0] }

func (h *eventHeap) less(x, y *event) bool {
	if x.at != y.at {
		return x.at < y.at
	}
	return x.seq < y.seq
}

func (h *eventHeap) push(e event) {
	h.a = append(h.a, e)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h.less(&h.a[i], &h.a[parent]) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

// pop removes and returns the minimum event. Call only when len() > 0.
func (h *eventHeap) pop() event {
	top := h.a[0]
	n := len(h.a) - 1
	h.a[0] = h.a[n]
	h.a[n] = event{} // release references
	h.a = h.a[:n]
	if n > 1 {
		h.siftDown(0)
	}
	return top
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.a)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.less(&h.a[c], &h.a[min]) {
				min = c
			}
		}
		if !h.less(&h.a[min], &h.a[i]) {
			return
		}
		h.a[i], h.a[min] = h.a[min], h.a[i]
		i = min
	}
}
