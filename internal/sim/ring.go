package sim

// ringShrinkCap mirrors the engine queue's shrink policy: a ring above this
// capacity whose burst peak since the last empty point used less than a
// quarter of it is released, so long runs do not pin burst-peak memory.
const ringShrinkCap = 1024

// tupleRing is a FIFO of queued tuples backed by a power-of-two ring, so a
// stable queue length recirculates one buffer instead of the old
// `queue = queue[1:]; append(...)` pattern, which crawled through memory
// and re-allocated under sustained load.
type tupleRing struct {
	buf  []tuple
	head int
	n    int
	peak int
}

func (r *tupleRing) len() int { return r.n }

func (r *tupleRing) push(t tuple) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = t
	r.n++
	if r.n > r.peak {
		r.peak = r.n
	}
}

// pop removes the oldest tuple. Call only when len() > 0.
func (r *tupleRing) pop() tuple {
	t := r.buf[r.head]
	r.buf[r.head] = tuple{} // release the root reference
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	if r.n == 0 {
		r.head = 0
		if len(r.buf) > ringShrinkCap && r.peak*4 < len(r.buf) {
			r.buf = nil
		}
		r.peak = 0
	}
	return t
}

func (r *tupleRing) grow() {
	newCap := 2 * len(r.buf)
	if newCap == 0 {
		newCap = 16
	}
	nb := make([]tuple, newCap)
	if tail := len(r.buf) - r.head; tail < r.n {
		copy(nb, r.buf[r.head:])
		copy(nb[tail:], r.buf[:r.n-tail])
	} else {
		copy(nb, r.buf[r.head:r.head+r.n])
	}
	r.buf = nb
	r.head = 0
}
