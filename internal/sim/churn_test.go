package sim

import (
	"math"
	"testing"

	"github.com/drs-repro/drs/internal/stats"
)

// TestFailureTraceStatistics samples a long trace and checks the renewal
// arithmetic: failures per machine ≈ horizon / (MTBF + MTTR), every
// failure paired with a recovery, events ordered, and the availability
// implied by the down time ≈ MTBF / (MTBF + MTTR).
func TestFailureTraceStatistics(t *testing.T) {
	const (
		mtbf    = 500.0
		mttr    = 100.0
		horizon = 200_000.0
	)
	ft := FailureTrace{MTBF: mtbf, MTTR: mttr, Machines: []int{1, 2, 3}, Seed: 7}
	evs, err := ft.Events(horizon)
	if err != nil {
		t.Fatal(err)
	}
	fails, recovers := 0, 0
	down := map[int]float64{}
	lastFail := map[int]float64{}
	prev := 0.0
	for _, ev := range evs {
		if ev.At < prev {
			t.Fatalf("events out of order: %v after %.1f", ev, prev)
		}
		prev = ev.At
		if ev.Fail {
			fails++
			lastFail[ev.Machine] = ev.At
		} else {
			recovers++
			down[ev.Machine] += ev.At - lastFail[ev.Machine]
		}
	}
	if fails != recovers {
		t.Fatalf("%d failures but %d recoveries", fails, recovers)
	}
	wantFails := 3 * horizon / (mtbf + mttr)
	if ratio := float64(fails) / wantFails; ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("failure count %d, want ≈ %.0f", fails, wantFails)
	}
	meanDown := (down[1] + down[2] + down[3]) / float64(recovers)
	if ratio := meanDown / mttr; ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("mean outage %.1fs, want ≈ %.0fs", meanDown, mttr)
	}
}

// TestFailureTraceDeterministicAndValidated: same seed, same trace; bad
// parameters are rejected.
func TestFailureTraceDeterministicAndValidated(t *testing.T) {
	ft := FailureTrace{MTBF: 100, MTTR: 10, Machines: []int{4, 5}, Seed: 3}
	a, err := ft.Events(5000)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ft.Events(5000)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("trace lengths differ or empty: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if _, err := (FailureTrace{MTBF: 0, MTTR: 1}).Events(10); err == nil {
		t.Error("zero MTBF accepted")
	}
	if _, err := (FailureTrace{MTBF: 1, MTTR: -1}).Events(10); err == nil {
		t.Error("negative MTTR accepted")
	}
	if _, err := ft.Events(0); err == nil {
		t.Error("zero horizon accepted")
	}
}

// TestScriptOrdersKills: scripted outages sort into a single timeline with
// paired recoveries.
func TestScriptOrdersKills(t *testing.T) {
	evs := Script(Kill{Machine: 2, At: 50, Down: 20}, Kill{Machine: 1, At: 10, Down: 100})
	want := []ChurnEvent{
		{At: 10, Machine: 1, Fail: true},
		{At: 50, Machine: 2, Fail: true},
		{At: 70, Machine: 2, Fail: false},
		{At: 110, Machine: 1, Fail: false},
	}
	if len(evs) != len(want) {
		t.Fatalf("got %d events, want %d", len(evs), len(want))
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, evs[i], want[i])
		}
	}
}

// finiteArrivals emits exactly n evenly-spaced tuples, then goes silent —
// so a test can let the system drain completely.
type finiteArrivals struct {
	n    int
	rate float64
}

func (f *finiteArrivals) NextInterArrival(*stats.RNG) float64 {
	if f.n <= 0 {
		return math.Inf(1)
	}
	f.n--
	return 1 / f.rate
}

func (f *finiteArrivals) MeanRate() float64 { return f.rate }

// TestPendingRootsDrainsToZero: in-flight trees are visible while work is
// queued and the counter returns to zero once the system drains.
func TestPendingRootsDrainsToZero(t *testing.T) {
	emit, err := NewFractionalEmission(2) // fan-out: trees outlive first hop
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Operators: []OperatorSpec{
			{Name: "a", Service: stats.Exponential{Rate: 4}},
			{Name: "b", Service: stats.Exponential{Rate: 8}},
		},
		Sources: []SourceSpec{{Op: 0, Arrivals: &finiteArrivals{n: 500, rate: 3}}},
		Edges:   []EdgeSpec{{From: 0, To: 1, Emit: emit}},
		Alloc:   []int{1, 1},
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(20)
	if s.PendingRoots() <= 0 {
		t.Fatalf("pending roots mid-run = %d, want > 0", s.PendingRoots())
	}
	// All 500 arrivals land by ~167s; give the queues time to drain.
	s.RunUntil(10_000)
	if got := s.PendingRoots(); got != 0 {
		t.Fatalf("pending roots after drain = %d, want 0", got)
	}
}
