package sim

import (
	"fmt"
	"sort"

	"github.com/drs-repro/drs/internal/stats"
)

// Machine-churn modeling. The simulator's stations abstract away the
// machines they run on, but the control plane above (cluster.Scheduler)
// does not: its capacity comes and goes with machine failures. A
// FailureTrace generates that churn as a schedule of machine up/down
// transitions — MTBF/MTTR driven, the standard renewal model of cluster
// reliability — which an experiment driver applies to the scheduler in
// virtual time alongside the tuple-level simulation.

// ChurnEvent is one machine lifecycle transition of a churn schedule.
type ChurnEvent struct {
	// At is the event time in simulated seconds.
	At float64
	// Machine identifies the affected machine (a cluster.Pool machine ID).
	Machine int
	// Fail is true when the machine goes down, false when it comes back.
	Fail bool
}

// FailureTrace parameterizes MTBF/MTTR-driven machine churn: each machine
// alternates an up period (exponential, mean MTBF) and a down period
// (exponential, mean MTTR), independently of the others — the classic
// alternating renewal process, seeded for reproducibility.
type FailureTrace struct {
	// MTBF is the mean time between failures (up-period mean), seconds.
	MTBF float64
	// MTTR is the mean time to recovery (down-period mean), seconds.
	MTTR float64
	// Machines lists the machine IDs the trace churns.
	Machines []int
	// Seed makes the trace reproducible.
	Seed uint64
}

// Events samples the churn schedule over [0, horizon) seconds, merged
// across machines and sorted by time. Every failure within the horizon is
// paired with its recovery event, even when the recovery lands past the
// horizon, so a driver that consumes the whole slice never leaks a
// permanently dead machine.
func (ft FailureTrace) Events(horizon float64) ([]ChurnEvent, error) {
	if ft.MTBF <= 0 || ft.MTTR <= 0 {
		return nil, fmt.Errorf("sim: failure trace needs positive MTBF/MTTR, got %g/%g", ft.MTBF, ft.MTTR)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("sim: failure trace needs a positive horizon, got %g", horizon)
	}
	rng := stats.NewRNG(ft.Seed)
	var out []ChurnEvent
	for _, id := range ft.Machines {
		clock := 0.0
		for {
			clock += rng.Exp(1 / ft.MTBF) // up period ends: failure
			if clock >= horizon {
				break
			}
			down := rng.Exp(1 / ft.MTTR)
			out = append(out, ChurnEvent{At: clock, Machine: id, Fail: true})
			clock += down
			out = append(out, ChurnEvent{At: clock, Machine: id, Fail: false})
		}
	}
	sortChurn(out)
	return out, nil
}

// Kill describes one scripted machine outage: Machine goes down At and
// recovers Down seconds later.
type Kill struct {
	// Machine is the pool machine ID to crash.
	Machine int
	// At is the failure time in simulated seconds.
	At float64
	// Down is the outage length in seconds (the kill's MTTR draw).
	Down float64
}

// Script builds a deterministic churn schedule from explicit kills — the
// experiment form of a failure trace, where the outage must land exactly
// mid-surge rather than wherever the renewal process puts it.
func Script(kills ...Kill) []ChurnEvent {
	out := make([]ChurnEvent, 0, 2*len(kills))
	for _, k := range kills {
		out = append(out,
			ChurnEvent{At: k.At, Machine: k.Machine, Fail: true},
			ChurnEvent{At: k.At + k.Down, Machine: k.Machine, Fail: false})
	}
	sortChurn(out)
	return out
}

// sortChurn orders events by time, failures before recoveries on ties
// (a tie means a zero-length outage; failing first keeps it observable).
func sortChurn(evs []ChurnEvent) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].At != evs[j].At {
			return evs[i].At < evs[j].At
		}
		return evs[i].Fail && !evs[j].Fail
	})
}
