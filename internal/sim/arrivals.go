// Package sim is a discrete-event simulator for operator-network stream
// processing: each operator is a k-server station with a FIFO input queue,
// edges carry network delay and an emission model (how many child tuples
// one processed tuple produces), and external tuples arrive through
// configurable arrival processes. Tuple trees are tracked so the simulator
// measures exactly what the paper measures — the *total sojourn time* of an
// external tuple, from system entry until its last derived tuple finishes.
//
// The simulator substitutes for the paper's 6-machine Storm cluster: it
// runs the same topologies, produces the same per-interval measurements
// (fed through the same measurer code), and supports mid-run rebalance and
// scale events with their modeled pauses, which is what Figures 6-10 need.
package sim

import (
	"fmt"
	"math"

	"github.com/drs-repro/drs/internal/stats"
)

// ArrivalProcess generates the inter-arrival times of external tuples.
type ArrivalProcess interface {
	// NextInterArrival returns the time in seconds until the next arrival.
	NextInterArrival(r *stats.RNG) float64
	// MeanRate reports the long-run average arrivals per second.
	MeanRate() float64
}

// PoissonArrivals is a Poisson process at Rate per second (exponential
// inter-arrivals) — the paper's FPD tweet feed (320 tweets/s).
type PoissonArrivals struct {
	Rate float64
}

// NextInterArrival draws an exponential gap.
func (p PoissonArrivals) NextInterArrival(r *stats.RNG) float64 { return r.Exp(p.Rate) }

// MeanRate returns Rate.
func (p PoissonArrivals) MeanRate() float64 { return p.Rate }

// DeterministicArrivals spaces arrivals exactly 1/Rate apart.
type DeterministicArrivals struct {
	Rate float64
}

// NextInterArrival returns the constant gap.
func (d DeterministicArrivals) NextInterArrival(*stats.RNG) float64 { return 1 / d.Rate }

// MeanRate returns Rate.
func (d DeterministicArrivals) MeanRate() float64 { return d.Rate }

// ModulatedRate redraws the instantaneous rate from RateDist every Period
// seconds and emits Poisson arrivals at that rate meanwhile. It reproduces
// the paper's VLD frame source: "uniformly distributed in [1,25] with a
// mean of 13 frames/second" — a rate that wanders, deliberately violating
// the model's Poisson assumption.
type ModulatedRate struct {
	// RateDist samples the instantaneous rate (per second).
	RateDist stats.Dist
	// Period is how long each sampled rate holds, in seconds.
	Period float64

	rate     float64
	deadline float64
	clock    float64
}

// NextInterArrival draws from the current modulated rate, redrawing the
// rate each period boundary.
func (m *ModulatedRate) NextInterArrival(r *stats.RNG) float64 {
	if m.rate <= 0 || m.clock >= m.deadline {
		m.rate = math.Max(m.RateDist.Sample(r), 1e-9)
		m.deadline = m.clock + m.Period
	}
	gap := r.Exp(m.rate)
	m.clock += gap
	return gap
}

// MeanRate returns the mean of the rate distribution.
func (m *ModulatedRate) MeanRate() float64 { return m.RateDist.Mean() }

// SteppedRate multiplies a base arrival process's rate by Factor during
// the window [From, Until) of simulated time — a load step and its
// recovery in one process. It drives the multi-tenant contention
// experiment: one tenant's input surges for a stretch, forcing the
// scheduler to shift slots toward it and back. The process tracks time by
// accumulating its own inter-arrival gaps, so it needs no clock plumbing
// (like ModulatedRate); a gap straddling a boundary is drawn at the rate
// in force when it starts.
type SteppedRate struct {
	// Base is the underlying arrival process (required).
	Base ArrivalProcess
	// Factor scales the base rate inside the window (e.g. 2 doubles it).
	Factor float64
	// From and Until bound the stepped window in simulated seconds.
	From, Until float64

	clock float64
}

// NextInterArrival draws from the base process, compressing (or
// stretching) the gap by Factor while inside the window.
func (s *SteppedRate) NextInterArrival(r *stats.RNG) float64 {
	gap := s.Base.NextInterArrival(r)
	if s.clock >= s.From && s.clock < s.Until && s.Factor > 0 {
		gap /= s.Factor
	}
	s.clock += gap
	return gap
}

// MeanRate reports the base rate: the step is a transient, and the
// traffic equations should size for the steady state outside the window.
func (s *SteppedRate) MeanRate() float64 { return s.Base.MeanRate() }

// EmissionModel decides how many child tuples a processed tuple emits on
// one edge. Its long-run mean must equal the edge's selectivity for the
// traffic equations to hold.
type EmissionModel interface {
	// Count samples the number of children for one processed tuple.
	Count(r *stats.RNG) int
	// Mean reports the expected count (the selectivity).
	Mean() float64
}

// FractionalEmission emits floor(Selectivity) children always, plus one
// more with probability frac(Selectivity). It is the default: exact mean,
// minimal variance, and it degenerates to a Bernoulli split for
// selectivity < 1 and to a deterministic fan-out for integers.
type FractionalEmission struct {
	Selectivity float64
}

// NewFractionalEmission validates the selectivity.
func NewFractionalEmission(sel float64) (FractionalEmission, error) {
	if sel < 0 || math.IsNaN(sel) || math.IsInf(sel, 0) {
		return FractionalEmission{}, fmt.Errorf("sim: selectivity %g must be finite and >= 0", sel)
	}
	return FractionalEmission{Selectivity: sel}, nil
}

// Count samples floor + Bernoulli(frac).
func (f FractionalEmission) Count(r *stats.RNG) int {
	base := int(f.Selectivity)
	if r.Bernoulli(f.Selectivity - float64(base)) {
		base++
	}
	return base
}

// Mean returns the selectivity.
func (f FractionalEmission) Mean() float64 { return f.Selectivity }

// PoissonEmission emits a Poisson-distributed number of children with the
// given mean — higher variance, e.g. "SIFT features per frame may vary
// dramatically" (§V-A).
type PoissonEmission struct {
	Selectivity float64
}

// Count samples Poisson(Selectivity).
func (p PoissonEmission) Count(r *stats.RNG) int { return r.Poisson(p.Selectivity) }

// Mean returns the selectivity.
func (p PoissonEmission) Mean() float64 { return p.Selectivity }
