package sim

import (
	"errors"

	"github.com/drs-repro/drs/internal/stats"
)

// Trace support: the paper replays a recorded tweet stream; this file lets
// any arrival process be captured once and replayed bit-identically, so an
// experiment can be re-run against the exact same arrival sequence while
// varying everything else (allocation, seeds of service times, ...).

// TraceArrivals replays a recorded sequence of inter-arrival gaps. When
// the trace is exhausted it cycles, which keeps long runs going while
// preserving the recorded burst structure.
type TraceArrivals struct {
	gaps []float64
	pos  int
}

// NewTraceArrivals validates and wraps recorded gaps (seconds).
func NewTraceArrivals(gaps []float64) (*TraceArrivals, error) {
	if len(gaps) == 0 {
		return nil, errors.New("sim: empty arrival trace")
	}
	total := 0.0
	for _, g := range gaps {
		if g < 0 {
			return nil, errors.New("sim: negative gap in arrival trace")
		}
		total += g
	}
	if total <= 0 {
		return nil, errors.New("sim: arrival trace has zero duration")
	}
	return &TraceArrivals{gaps: append([]float64(nil), gaps...)}, nil
}

// NextInterArrival replays the next recorded gap.
func (t *TraceArrivals) NextInterArrival(*stats.RNG) float64 {
	g := t.gaps[t.pos]
	t.pos = (t.pos + 1) % len(t.gaps)
	return g
}

// MeanRate reports the trace's average arrivals per second.
func (t *TraceArrivals) MeanRate() float64 {
	total := 0.0
	for _, g := range t.gaps {
		total += g
	}
	return float64(len(t.gaps)) / total
}

// RecordArrivals samples n inter-arrival gaps from any arrival process,
// producing a replayable trace.
func RecordArrivals(p ArrivalProcess, n int, seed uint64) (*TraceArrivals, error) {
	if n <= 0 {
		return nil, errors.New("sim: trace length must be positive")
	}
	rng := stats.NewRNG(seed)
	gaps := make([]float64, n)
	for i := range gaps {
		gaps[i] = p.NextInterArrival(rng)
	}
	return NewTraceArrivals(gaps)
}
