package sim

import (
	"math"
	"testing"

	"github.com/drs-repro/drs/internal/metrics"
	"github.com/drs-repro/drs/internal/queueing"
	"github.com/drs-repro/drs/internal/stats"
)

// runMGk simulates a single station with the given service distribution.
func runMGk(t *testing.T, lambda float64, svc stats.Dist, k int, until float64, seed uint64) *Sim {
	t.Helper()
	s, err := New(Config{
		Operators: []OperatorSpec{{Name: "op", Service: svc}},
		Sources:   []SourceSpec{{Op: 0, Arrivals: PoissonArrivals{Rate: lambda}}},
		Alloc:     []int{k},
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SetWarmup(until / 20)
	s.RunUntil(until)
	return s
}

func TestMGkCorrectionDeterministicService(t *testing.T) {
	// M/D/k: cv2 = 0. The corrected model must beat the plain M/M/k
	// estimate, which overstates the wait ~2x.
	lambda, k := 8.0, 2
	svc := stats.Deterministic{Value: 0.2} // mu = 5, rho = 0.8
	s := runMGk(t, lambda, svc, k, 8000, 21)
	measured := s.CompletedStats().Mean()
	plain := queueing.ExpectedSojourn(lambda, 5, k)
	corrected := queueing.ExpectedSojournCorrected(lambda, 5, k, 0)
	if math.Abs(corrected-measured) >= math.Abs(plain-measured) {
		t.Errorf("corrected %0.4f not closer to measured %0.4f than plain %0.4f",
			corrected, measured, plain)
	}
	if math.Abs(corrected-measured) > 0.12*measured {
		t.Errorf("corrected estimate %0.4f off measured %0.4f by > 12%%", corrected, measured)
	}
}

func TestMGkCorrectionHeavyTailService(t *testing.T) {
	// Lognormal sigma = 1.2: cv2 = e^{1.44} - 1 ≈ 3.22. The plain model
	// underestimates the wait badly; Allen-Cunneen lands close.
	const sigma = 1.2
	meanSvc := 0.1
	cv2 := math.Exp(sigma*sigma) - 1
	svc := stats.LogNormal{Mu: math.Log(meanSvc) - sigma*sigma/2, Sigma: sigma}
	lambda, k := 16.0, 2 // rho = 0.8
	s := runMGk(t, lambda, svc, k, 20000, 22)
	measured := s.CompletedStats().Mean()
	mu := 1 / meanSvc
	plainWait := queueing.ExpectedWait(lambda, mu, k)
	correctedWait := queueing.ExpectedWaitCorrected(lambda, mu, k, cv2)
	measuredWait := measured - meanSvc
	if plainWait > 0.55*measuredWait {
		t.Errorf("plain wait %0.4f should underestimate measured %0.4f by ~(1+cv2)/2", plainWait, measuredWait)
	}
	if math.Abs(correctedWait-measuredWait) > 0.25*measuredWait {
		t.Errorf("corrected wait %0.4f off measured %0.4f by > 25%%", correctedWait, measuredWait)
	}
}

func TestMeasurerRecoversServiceCV(t *testing.T) {
	// End to end: the measurer's CV² estimate from simulator intervals
	// must recover the service distribution's true cv2.
	cases := []struct {
		name string
		svc  stats.Dist
		want float64
	}{
		{"deterministic", stats.Deterministic{Value: 0.05}, 0},
		{"exponential", stats.Exponential{Rate: 20}, 1},
		{"lognormal", stats.LogNormal{Mu: math.Log(0.05) - 0.32, Sigma: 0.8}, math.Exp(0.64) - 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := New(Config{
				Operators: []OperatorSpec{{Name: "op", Service: tc.svc}},
				Sources:   []SourceSpec{{Op: 0, Arrivals: PoissonArrivals{Rate: 10}}},
				Alloc:     []int{3},
				Seed:      23,
			})
			if err != nil {
				t.Fatal(err)
			}
			meas, err := metrics.NewMeasurer(metrics.MeasurerConfig{
				OperatorNames:     []string{"op"},
				EstimateServiceCV: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				s.RunFor(200)
				if err := meas.AddInterval(s.DrainInterval()); err != nil {
					t.Fatal(err)
				}
			}
			snap, err := meas.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			got := snap.Ops[0].ServiceCV2
			if math.Abs(got-tc.want) > 0.12*(1+tc.want) {
				t.Errorf("estimated cv2 = %0.3f, want ~%0.3f", got, tc.want)
			}
		})
	}
}

func TestServiceCVOffByDefault(t *testing.T) {
	s := single(t, 10, 20, 2, 24)
	meas, err := metrics.NewMeasurer(metrics.MeasurerConfig{OperatorNames: []string{"op"}})
	if err != nil {
		t.Fatal(err)
	}
	s.RunFor(100)
	if err := meas.AddInterval(s.DrainInterval()); err != nil {
		t.Fatal(err)
	}
	snap, err := meas.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Ops[0].ServiceCV2 != 0 {
		t.Errorf("ServiceCV2 = %g without opting in, want 0 (paper-faithful)", snap.Ops[0].ServiceCV2)
	}
}
