package sim

import (
	"math"
	"testing"

	"github.com/drs-repro/drs/internal/metrics"
	"github.com/drs-repro/drs/internal/queueing"
	"github.com/drs-repro/drs/internal/stats"
)

// single builds a one-operator simulation with Poisson arrivals and
// exponential service — an M/M/k system with a known sojourn time.
func single(t *testing.T, lambda, mu float64, k int, seed uint64) *Sim {
	t.Helper()
	s, err := New(Config{
		Operators: []OperatorSpec{{Name: "op", Service: stats.Exponential{Rate: mu}}},
		Sources:   []SourceSpec{{Op: 0, Arrivals: PoissonArrivals{Rate: lambda}}},
		Alloc:     []int{k},
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMM1AgainstClosedForm(t *testing.T) {
	lambda, mu := 8.0, 10.0
	s := single(t, lambda, mu, 1, 1)
	s.SetWarmup(200)
	s.RunUntil(20000)
	want := queueing.ExpectedSojourn(lambda, mu, 1) // 0.5s
	got := s.CompletedStats().Mean()
	if math.Abs(got-want) > 0.04*want {
		t.Errorf("M/M/1 mean sojourn = %.4f, theory %.4f", got, want)
	}
}

func TestMMkAgainstClosedForm(t *testing.T) {
	tests := []struct {
		name       string
		lambda, mu float64
		k          int
	}{
		{"moderate load", 20, 3, 10},
		{"high load", 28, 3, 10},
		{"many servers light", 50, 10, 8},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := single(t, tt.lambda, tt.mu, tt.k, 7)
			s.SetWarmup(200)
			s.RunUntil(15000)
			want := queueing.ExpectedSojourn(tt.lambda, tt.mu, tt.k)
			got := s.CompletedStats().Mean()
			if math.Abs(got-want) > 0.06*want {
				t.Errorf("M/M/%d mean sojourn = %.4f, theory %.4f", tt.k, got, want)
			}
		})
	}
}

func TestDeterministicChainSojourn(t *testing.T) {
	// One tuple through a 2-op chain with deterministic service and no
	// network delay: sojourn must be exactly the sum of service times.
	s, err := New(Config{
		Operators: []OperatorSpec{
			{Name: "a", Service: stats.Deterministic{Value: 0.1}},
			{Name: "b", Service: stats.Deterministic{Value: 0.2}},
		},
		Edges:   []EdgeSpec{{From: 0, To: 1, Emit: FractionalEmission{Selectivity: 1}}},
		Sources: []SourceSpec{{Op: 0, Arrivals: DeterministicArrivals{Rate: 1}}},
		Alloc:   []int{1, 1},
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(1.5) // first arrival at t=1, completes at 1.3
	cs := s.CompletedStats()
	if cs.Count() != 1 {
		t.Fatalf("completed = %d, want 1", cs.Count())
	}
	if math.Abs(cs.Mean()-0.3) > 1e-9 {
		t.Errorf("sojourn = %g, want 0.3", cs.Mean())
	}
}

func TestFanOutTreeCompletion(t *testing.T) {
	// Each input spawns 3 children on a second operator; the root completes
	// only when all three finish. With k=3 downstream and deterministic
	// 0.2s service, all children run in parallel: sojourn = 0.1 + 0.2.
	s, err := New(Config{
		Operators: []OperatorSpec{
			{Name: "a", Service: stats.Deterministic{Value: 0.1}},
			{Name: "b", Service: stats.Deterministic{Value: 0.2}},
		},
		Edges:   []EdgeSpec{{From: 0, To: 1, Emit: FractionalEmission{Selectivity: 3}}},
		Sources: []SourceSpec{{Op: 0, Arrivals: DeterministicArrivals{Rate: 0.1}}},
		Alloc:   []int{1, 3},
		Seed:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(11)
	cs := s.CompletedStats()
	if cs.Count() != 1 {
		t.Fatalf("completed = %d, want 1", cs.Count())
	}
	if math.Abs(cs.Mean()-0.3) > 1e-9 {
		t.Errorf("fan-out sojourn = %g, want 0.3", cs.Mean())
	}
	// With only 1 downstream server the children serialize: 0.1 + 3*0.2.
	s2, err := New(Config{
		Operators: []OperatorSpec{
			{Name: "a", Service: stats.Deterministic{Value: 0.1}},
			{Name: "b", Service: stats.Deterministic{Value: 0.2}},
		},
		Edges:   []EdgeSpec{{From: 0, To: 1, Emit: FractionalEmission{Selectivity: 3}}},
		Sources: []SourceSpec{{Op: 0, Arrivals: DeterministicArrivals{Rate: 0.1}}},
		Alloc:   []int{1, 1},
		Seed:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	s2.RunUntil(11)
	if got := s2.CompletedStats().Mean(); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("serialized fan-out sojourn = %g, want 0.7", got)
	}
}

func TestLoopTupleTreeResolves(t *testing.T) {
	// Self-loop with gain 0.5: trees are finite a.s. and arrival rate at
	// the operator doubles relative to the external rate.
	s, err := New(Config{
		Operators: []OperatorSpec{{Name: "a", Service: stats.Exponential{Rate: 50}}},
		Edges:     []EdgeSpec{{From: 0, To: 0, Emit: FractionalEmission{Selectivity: 0.5}}},
		Sources:   []SourceSpec{{Op: 0, Arrivals: PoissonArrivals{Rate: 10}}},
		Alloc:     []int{2},
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(100)
	rep := s.DrainInterval()
	extRate := float64(rep.ExternalArrivals) / rep.Duration.Seconds()
	opRate := float64(rep.Ops[0].Arrivals) / rep.Duration.Seconds()
	if math.Abs(extRate-10) > 1 {
		t.Errorf("external rate = %g, want ~10", extRate)
	}
	if math.Abs(opRate-20) > 2 {
		t.Errorf("operator arrival rate = %g, want ~20 (loop amplification)", opRate)
	}
	if s.CompletedStats().Count() == 0 {
		t.Fatal("no completions with loop topology")
	}
}

func TestTrafficEquationsHoldInChain(t *testing.T) {
	// spout-fed chain with fan-out 5 then split 0.4: measured rates must
	// match the Jackson traffic solution.
	s, err := New(Config{
		Operators: []OperatorSpec{
			{Name: "a", Service: stats.Exponential{Rate: 100}},
			{Name: "b", Service: stats.Exponential{Rate: 400}},
			{Name: "c", Service: stats.Exponential{Rate: 100}},
		},
		Edges: []EdgeSpec{
			{From: 0, To: 1, Emit: FractionalEmission{Selectivity: 5}},
			{From: 1, To: 2, Emit: FractionalEmission{Selectivity: 0.4}},
		},
		Sources: []SourceSpec{{Op: 0, Arrivals: PoissonArrivals{Rate: 20}}},
		Alloc:   []int{1, 1, 1},
		Seed:    6,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(300)
	rep := s.DrainInterval()
	secs := rep.Duration.Seconds()
	want := []float64{20, 100, 40}
	for i, w := range want {
		got := float64(rep.Ops[i].Arrivals) / secs
		if math.Abs(got-w) > 0.05*w {
			t.Errorf("op %d arrival rate = %g, want ~%g", i, got, w)
		}
	}
}

func TestNetworkDelayAddsToSojournNotModel(t *testing.T) {
	base := Config{
		Operators: []OperatorSpec{
			{Name: "a", Service: stats.Deterministic{Value: 0.01}},
			{Name: "b", Service: stats.Deterministic{Value: 0.01}},
		},
		Edges:   []EdgeSpec{{From: 0, To: 1, Emit: FractionalEmission{Selectivity: 1}}},
		Sources: []SourceSpec{{Op: 0, Arrivals: PoissonArrivals{Rate: 5}}},
		Alloc:   []int{2, 2},
		Seed:    8,
	}
	noDelay, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	noDelay.SetWarmup(10)
	noDelay.RunUntil(500)

	withDelay := base
	withDelay.Edges = []EdgeSpec{{
		From: 0, To: 1,
		Emit:     FractionalEmission{Selectivity: 1},
		NetDelay: stats.Deterministic{Value: 0.05},
	}}
	d, err := New(withDelay)
	if err != nil {
		t.Fatal(err)
	}
	d.SetWarmup(10)
	d.RunUntil(500)

	gap := d.CompletedStats().Mean() - noDelay.CompletedStats().Mean()
	if math.Abs(gap-0.05) > 0.005 {
		t.Errorf("network delay gap = %g, want ~0.05", gap)
	}
}

func TestSetAllocationReliefsOverload(t *testing.T) {
	// Start under-provisioned (k=1 for load needing 3): queue grows.
	// After SetAllocation(4) the system drains and sojourn recovers.
	s := single(t, 25, 10, 1, 9)
	s.EnableSeries(10)
	s.RunUntil(60)
	early := s.Series()
	if err := s.SetAllocation([]int{4}, 0); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(300)
	late := s.Series()
	if len(early) < 5 || len(late) < 25 {
		t.Fatalf("series lengths %d/%d", len(early), len(late))
	}
	lateMean := late[len(late)-1].MeanSojourn
	earlyMean := early[len(early)-1].MeanSojourn
	if !(lateMean < earlyMean/3) {
		t.Errorf("rebalance did not relieve overload: early %g late %g", earlyMean, lateMean)
	}
	want := queueing.ExpectedSojourn(25, 10, 4)
	if math.Abs(lateMean-want) > 0.5*want {
		t.Errorf("steady state after rebalance %g, theory %g", lateMean, want)
	}
}

func TestSetAllocationPauseCausesSpike(t *testing.T) {
	s := single(t, 50, 10, 8, 10)
	s.EnableSeries(5)
	s.SetWarmup(0)
	s.RunUntil(100)
	if err := s.SetAllocation([]int{8}, 3.0); err != nil { // 3s frozen pause
		t.Fatal(err)
	}
	s.RunUntil(200)
	series := s.Series()
	// Find the bucket containing t=100..105 and compare to the steady state.
	var spike, steady float64
	for _, p := range series {
		if p.Start == 100 {
			spike = p.MeanSojourn
		}
		if p.Start == 50 {
			steady = p.MeanSojourn
		}
	}
	if !(spike > steady+1.0) {
		t.Errorf("pause spike %g not visible over steady %g", spike, steady)
	}
	// Recovery: final bucket back near steady state.
	final := series[len(series)-1].MeanSojourn
	if final > steady*3 {
		t.Errorf("no recovery after pause: final %g vs steady %g", final, steady)
	}
}

func TestSetAllocationValidation(t *testing.T) {
	s := single(t, 5, 10, 1, 11)
	if err := s.SetAllocation([]int{1, 2}, 0); err == nil {
		t.Error("wrong length should error")
	}
	if err := s.SetAllocation([]int{0}, 0); err == nil {
		t.Error("zero processors should error")
	}
}

func TestMaxQueueDropsAndCounts(t *testing.T) {
	s, err := New(Config{
		Operators: []OperatorSpec{{Name: "a", Service: stats.Deterministic{Value: 1}}},
		Sources:   []SourceSpec{{Op: 0, Arrivals: DeterministicArrivals{Rate: 10}}},
		Alloc:     []int{1},
		Seed:      12,
		MaxQueue:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(10)
	if d := s.Dropped()[0]; d == 0 {
		t.Error("overloaded bounded queue should drop tuples")
	}
	if q := s.QueueLengths()[0]; q > 5 {
		t.Errorf("queue length %d exceeds bound 5", q)
	}
}

func TestSeriesBuckets(t *testing.T) {
	s := single(t, 10, 100, 1, 13)
	s.EnableSeries(1)
	s.RunUntil(10.5)
	series := s.Series()
	if len(series) != 10 {
		t.Fatalf("series length = %d, want 10 closed buckets", len(series))
	}
	for i, p := range series {
		if p.Start != float64(i) {
			t.Errorf("bucket %d start = %g", i, p.Start)
		}
		if p.Count == 0 || math.IsNaN(p.MeanSojourn) {
			t.Errorf("bucket %d empty at rate 10/s", i)
		}
	}
}

func TestDrainIntervalFeedsMeasurer(t *testing.T) {
	// End-to-end: simulator measurements through the production measurer
	// must recover the configured rates.
	lambda, mu := 40.0, 9.0
	s := single(t, lambda, mu, 6, 14)
	m, err := metrics.NewMeasurer(metrics.MeasurerConfig{OperatorNames: []string{"op"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.RunFor(30)
		if err := m.AddInterval(s.DrainInterval()); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(snap.Lambda0-lambda) > 0.05*lambda {
		t.Errorf("measured lambda0 = %g, want ~%g", snap.Lambda0, lambda)
	}
	if math.Abs(snap.Ops[0].Mu-mu) > 0.05*mu {
		t.Errorf("measured mu = %g, want ~%g", snap.Ops[0].Mu, mu)
	}
	want := queueing.ExpectedSojourn(lambda, mu, 6)
	if math.Abs(snap.MeasuredSojourn-want) > 0.15*want {
		t.Errorf("measured sojourn = %g, theory %g", snap.MeasuredSojourn, want)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, int64) {
		s := single(t, 20, 3, 9, 42)
		s.RunUntil(500)
		cs := s.CompletedStats()
		return cs.Mean(), cs.Count()
	}
	m1, c1 := run()
	m2, c2 := run()
	if m1 != m2 || c1 != c2 {
		t.Errorf("same seed diverged: (%g, %d) vs (%g, %d)", m1, c1, m2, c2)
	}
}

func TestConfigValidation(t *testing.T) {
	op := []OperatorSpec{{Name: "a", Service: stats.Deterministic{Value: 1}}}
	src := []SourceSpec{{Op: 0, Arrivals: PoissonArrivals{Rate: 1}}}
	tests := []struct {
		name string
		cfg  Config
	}{
		{"no operators", Config{Sources: src}},
		{"alloc mismatch", Config{Operators: op, Sources: src, Alloc: []int{1, 2}}},
		{"zero alloc", Config{Operators: op, Sources: src, Alloc: []int{0}}},
		{"edge out of range", Config{Operators: op, Sources: src, Alloc: []int{1},
			Edges: []EdgeSpec{{From: 0, To: 5, Emit: FractionalEmission{Selectivity: 1}}}}},
		{"edge without emission", Config{Operators: op, Sources: src, Alloc: []int{1},
			Edges: []EdgeSpec{{From: 0, To: 0}}}},
		{"no sources", Config{Operators: op, Alloc: []int{1}}},
		{"source out of range", Config{Operators: op, Alloc: []int{1},
			Sources: []SourceSpec{{Op: 3, Arrivals: PoissonArrivals{Rate: 1}}}}},
		{"source without arrivals", Config{Operators: op, Alloc: []int{1},
			Sources: []SourceSpec{{Op: 0}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestModulatedRateMean(t *testing.T) {
	r := stats.NewRNG(15)
	m := &ModulatedRate{RateDist: stats.Uniform{Lo: 1, Hi: 25}, Period: 1}
	if math.Abs(m.MeanRate()-13) > 1e-9 {
		t.Errorf("mean rate = %g, want 13", m.MeanRate())
	}
	// Long-run arrival count over T seconds ~ 13*T.
	clock, n := 0.0, 0
	for clock < 5000 {
		clock += m.NextInterArrival(r)
		n++
	}
	rate := float64(n) / clock
	if math.Abs(rate-13) > 1.0 {
		t.Errorf("long-run modulated rate = %g, want ~13", rate)
	}
}

func TestEmissionModels(t *testing.T) {
	r := stats.NewRNG(16)
	for _, sel := range []float64{0.3, 1, 2.5, 5} {
		f, err := NewFractionalEmission(sel)
		if err != nil {
			t.Fatal(err)
		}
		var s stats.Summary
		for i := 0; i < 100000; i++ {
			s.Add(float64(f.Count(r)))
		}
		if math.Abs(s.Mean()-sel) > 0.03*sel+0.01 {
			t.Errorf("fractional emission mean(%g) = %g", sel, s.Mean())
		}
		p := PoissonEmission{Selectivity: sel}
		s.Reset()
		for i := 0; i < 100000; i++ {
			s.Add(float64(p.Count(r)))
		}
		if math.Abs(s.Mean()-sel) > 0.05*sel+0.02 {
			t.Errorf("poisson emission mean(%g) = %g", sel, s.Mean())
		}
	}
	if _, err := NewFractionalEmission(-1); err == nil {
		t.Error("negative selectivity should error")
	}
	if _, err := NewFractionalEmission(math.Inf(1)); err == nil {
		t.Error("infinite selectivity should error")
	}
}

func TestRunUntilIdempotentPast(t *testing.T) {
	s := single(t, 5, 10, 1, 17)
	s.RunUntil(10)
	c1 := s.CompletedStats().Count()
	s.RunUntil(5) // going backwards is a no-op
	if s.CompletedStats().Count() != c1 {
		t.Error("RunUntil into the past must not re-run events")
	}
	if s.Clock() != 10 {
		t.Errorf("clock = %g, want 10", s.Clock())
	}
}

func TestTupleConservationProperty(t *testing.T) {
	// Property: served counts per operator must equal what the emission
	// models produced upstream plus external arrivals — no tuple is lost
	// or duplicated by the event loop (checked after full drain).
	for _, seed := range []uint64{1, 7, 42, 99} {
		s, err := New(Config{
			Operators: []OperatorSpec{
				{Name: "a", Service: stats.Exponential{Rate: 200}},
				{Name: "b", Service: stats.Exponential{Rate: 400}},
				{Name: "c", Service: stats.Exponential{Rate: 300}},
			},
			Edges: []EdgeSpec{
				{From: 0, To: 1, Emit: PoissonEmission{Selectivity: 2}},
				{From: 1, To: 2, Emit: FractionalEmission{Selectivity: 0.5}},
				{From: 2, To: 0, Emit: FractionalEmission{Selectivity: 0.1}}, // loop
			},
			Sources: []SourceSpec{{Op: 0, Arrivals: PoissonArrivals{Rate: 30}}},
			Alloc:   []int{2, 2, 2},
			Seed:    seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.RunUntil(50)
		// Drain: no further external arrivals matter; run until queues empty.
		for i := 0; i < 100; i++ {
			if q := s.QueueLengths(); q[0] == 0 && q[1] == 0 && q[2] == 0 {
				break
			}
			s.RunFor(1)
		}
		rep := s.DrainInterval()
		for i, op := range rep.Ops {
			if op.Arrivals < op.Served {
				t.Errorf("seed %d op %d: served %d > arrivals %d", seed, i, op.Served, op.Arrivals)
			}
			// After draining, everything that arrived was served (modulo
			// tuples still in flight via pending source events).
			if op.Arrivals-op.Served > int64(s.QueueLengths()[i]+5) {
				t.Errorf("seed %d op %d: %d tuples unaccounted", seed, i, op.Arrivals-op.Served)
			}
		}
	}
}

func TestSojournQuantilesMatchClosedForm(t *testing.T) {
	// The M/M/k sojourn-tail closed form (queueing.SojournTail) must match
	// simulated quantiles — the validation behind quantile-aware planning.
	lambda, mu, k := 20.0, 3.0, 9
	s := single(t, lambda, mu, k, 33)
	s.SetWarmup(100)
	s.KeepCompletionSample()
	s.RunUntil(8000)
	sample := s.CompletedSample()
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := queueing.SojournQuantile(lambda, mu, k, q)
		got := sample.Quantile(q)
		if math.Abs(got-want) > 0.08*want {
			t.Errorf("q=%g: simulated %0.4f, closed form %0.4f", q, got, want)
		}
	}
}

func TestTraceReplayIsDeterministic(t *testing.T) {
	trace, err := RecordArrivals(PoissonArrivals{Rate: 50}, 500, 77)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(trace.MeanRate()-50) > 6 {
		t.Errorf("trace mean rate = %g, want ~50", trace.MeanRate())
	}
	run := func() (int64, float64) {
		replay, err := NewTraceArrivals(nil)
		_ = replay
		if err == nil {
			t.Fatal("empty trace must be rejected")
		}
		tr, err := RecordArrivals(PoissonArrivals{Rate: 50}, 500, 77)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{
			Operators: []OperatorSpec{{Name: "op", Service: stats.Exponential{Rate: 80}}},
			Sources:   []SourceSpec{{Op: 0, Arrivals: tr}},
			Alloc:     []int{1},
			Seed:      5, // same service seed; arrivals fully from the trace
		})
		if err != nil {
			t.Fatal(err)
		}
		s.RunUntil(30)
		cs := s.CompletedStats()
		return cs.Count(), cs.Mean()
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 != c2 || m1 != m2 {
		t.Errorf("trace replay diverged: (%d, %g) vs (%d, %g)", c1, m1, c2, m2)
	}
	if c1 == 0 {
		t.Error("no completions from trace-driven run")
	}
}

func TestTraceValidation(t *testing.T) {
	if _, err := NewTraceArrivals([]float64{0.1, -1}); err == nil {
		t.Error("negative gap should be rejected")
	}
	if _, err := NewTraceArrivals([]float64{0, 0}); err == nil {
		t.Error("zero-duration trace should be rejected")
	}
	if _, err := RecordArrivals(PoissonArrivals{Rate: 1}, 0, 1); err == nil {
		t.Error("zero-length recording should be rejected")
	}
	// Cycling: a 2-gap trace replays periodically.
	tr, err := NewTraceArrivals([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 1, 2, 1}
	for i, w := range want {
		if got := tr.NextInterArrival(nil); got != w {
			t.Errorf("gap %d = %g, want %g", i, got, w)
		}
	}
}
