package sim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/drs-repro/drs/internal/metrics"
	"github.com/drs-repro/drs/internal/stats"
)

// OperatorSpec describes one station of the simulated topology.
type OperatorSpec struct {
	// Name identifies the operator.
	Name string
	// Service samples per-tuple service time in seconds.
	Service stats.Dist
}

// EdgeSpec connects two operators.
type EdgeSpec struct {
	// From and To are operator indices.
	From, To int
	// Emit decides the child count per processed tuple.
	Emit EmissionModel
	// NetDelay samples the per-hop network delay in seconds (nil = none).
	// The DRS model deliberately ignores this; the gap between the model
	// estimate and the simulated measurement in Figures 7-8 comes from here.
	NetDelay stats.Dist
}

// SourceSpec feeds external tuples into an operator.
type SourceSpec struct {
	// Op is the target operator index.
	Op int
	// Arrivals generates the external arrival process.
	Arrivals ArrivalProcess
	// Admit, when non-nil, gates each arrival before it enters the network
	// — an ingest admission controller in front of the source. A refused
	// arrival is counted as offered-but-shed (it contributes to the
	// interval report's OfferedArrivals but spawns no tuple), which is how
	// the overload experiment runs the live admission policy in virtual
	// time.
	Admit func(now float64) bool
}

// Config assembles a simulation.
type Config struct {
	Operators []OperatorSpec
	Edges     []EdgeSpec
	Sources   []SourceSpec
	// Alloc is the initial processor count per operator.
	Alloc []int
	// Seed makes the run reproducible.
	Seed uint64
	// MaxQueue bounds each station queue; 0 means unbounded. Tuples
	// arriving at a full queue are dropped and counted (the paper's
	// "errors when the queue reaches its size limit").
	MaxQueue int
}

func (c Config) validate() error {
	if len(c.Operators) == 0 {
		return errors.New("sim: no operators")
	}
	if len(c.Alloc) != len(c.Operators) {
		return fmt.Errorf("sim: alloc length %d != %d operators", len(c.Alloc), len(c.Operators))
	}
	for i, k := range c.Alloc {
		if k < 1 {
			return fmt.Errorf("sim: operator %d allocated %d processors", i, k)
		}
	}
	for _, e := range c.Edges {
		if e.From < 0 || e.From >= len(c.Operators) || e.To < 0 || e.To >= len(c.Operators) {
			return fmt.Errorf("sim: edge %d->%d out of range", e.From, e.To)
		}
		if e.Emit == nil {
			return fmt.Errorf("sim: edge %d->%d has no emission model", e.From, e.To)
		}
	}
	if len(c.Sources) == 0 {
		return errors.New("sim: no sources")
	}
	for _, s := range c.Sources {
		if s.Op < 0 || s.Op >= len(c.Operators) {
			return fmt.Errorf("sim: source op %d out of range", s.Op)
		}
		if s.Arrivals == nil {
			return errors.New("sim: source without arrival process")
		}
	}
	return nil
}

// rootRecord tracks one external tuple's processing tree.
type rootRecord struct {
	arrival     float64
	outstanding int
}

// tuple is a unit of work at one station.
type tuple struct {
	root *rootRecord
}

// eventKind discriminates heap events.
type eventKind uint8

const (
	evArrival eventKind = iota + 1 // tuple arrives at a station
	evService                      // a server finishes a tuple
	evSource                       // external arrival due
	evWake                         // station unfreezes after a rebalance pause
)

type event struct {
	at   float64
	seq  uint64
	kind eventKind
	op   int
	tup  tuple
	src  int
	// serviceTime carries the sampled duration for evService accounting.
	serviceTime float64
}

// station is the runtime state of one operator.
type station struct {
	k           int
	busy        int
	queue       tupleRing
	frozenUntil float64
	dropped     int64

	// interval counters (drained into metrics.OpInterval)
	arrivals int64
	served   int64
	busyTime float64
	busySq   float64
}

// Sim is a running simulation. Not safe for concurrent use.
type Sim struct {
	cfg   Config
	rng   *stats.RNG
	clock float64
	seq   uint64
	heap  eventHeap

	stations []station
	outEdges [][]int // operator -> edge indices

	// rootFree recycles rootRecords: a root is released exactly once, when
	// its last outstanding node resolves, so the single-threaded simulator
	// can reuse it without further bookkeeping.
	rootFree []*rootRecord
	// countScratch holds per-edge child counts during one completeService.
	countScratch []int

	// completion statistics
	warmup          float64
	completed       stats.Summary
	completedSample stats.Sample
	keepSample      bool

	// interval counters
	intervalStart    float64
	externalArrivals int64
	offeredArrivals  int64
	sojournCount     int64
	sojournTotal     float64
	// shedTotal counts arrivals refused by source Admit gates over the
	// whole run (the cumulative audit the overload experiment reads).
	shedTotal int64

	// series collection
	bucket      float64
	bucketStart float64
	bucketSum   stats.Summary
	series      []SeriesPoint

	// onDecision lets a controller harness observe interval boundaries.
	totalCompleted int64
	// liveRoots counts external tuples whose processing tree has not yet
	// resolved — the lost-forever audit of the churn experiment: at drain
	// time it must return to zero, or a tuple leaked.
	liveRoots int64
}

// SeriesPoint is one time bucket of the Figure 9/10 curves.
type SeriesPoint struct {
	// Start is the bucket start time in seconds.
	Start float64
	// MeanSojourn is the mean total sojourn (seconds) of tuples completed
	// in the bucket; NaN if none completed.
	MeanSojourn float64
	// Count is the number of completions in the bucket.
	Count int64
}

// New validates the config and builds a simulator with all sources primed.
func New(cfg Config) (*Sim, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Sim{
		cfg:      cfg,
		rng:      stats.NewRNG(cfg.Seed),
		stations: make([]station, len(cfg.Operators)),
		outEdges: make([][]int, len(cfg.Operators)),
	}
	for i := range s.stations {
		s.stations[i].k = cfg.Alloc[i]
	}
	for ei, e := range cfg.Edges {
		s.outEdges[e.From] = append(s.outEdges[e.From], ei)
	}
	for si, src := range cfg.Sources {
		gap := src.Arrivals.NextInterArrival(s.rng)
		s.push(event{at: gap, kind: evSource, src: si})
	}
	return s, nil
}

// SetWarmup discards completion statistics before t seconds (series
// buckets still record them).
func (s *Sim) SetWarmup(t float64) { s.warmup = t }

// KeepCompletionSample retains every post-warmup sojourn for quantile
// queries (costs memory; use for bounded runs).
func (s *Sim) KeepCompletionSample() { s.keepSample = true }

// EnableSeries records mean sojourn per bucket of the given width in
// seconds (e.g. 60 for the paper's per-minute curves).
func (s *Sim) EnableSeries(bucketSeconds float64) {
	s.bucket = bucketSeconds
	s.bucketStart = s.clock
}

// Clock reports the current simulated time in seconds.
func (s *Sim) Clock() float64 { return s.clock }

// Allocation returns the current per-operator processor counts.
func (s *Sim) Allocation() []int {
	k := make([]int, len(s.stations))
	for i := range s.stations {
		k[i] = s.stations[i].k
	}
	return k
}

// Dropped reports tuples dropped at full queues, per operator.
func (s *Sim) Dropped() []int64 {
	d := make([]int64, len(s.stations))
	for i := range s.stations {
		d[i] = s.stations[i].dropped
	}
	return d
}

// CompletedStats summarizes post-warmup total sojourn times (seconds).
func (s *Sim) CompletedStats() stats.Summary { return s.completed }

// CompletedSample returns the retained sojourn sample, if enabled.
func (s *Sim) CompletedSample() *stats.Sample { return &s.completedSample }

// Series returns the recorded buckets (excluding the still-open one).
func (s *Sim) Series() []SeriesPoint { return append([]SeriesPoint(nil), s.series...) }

// push schedules an event.
func (s *Sim) push(e event) {
	s.seq++
	e.seq = s.seq
	s.heap.push(e)
}

// newRoot starts a processing tree, reusing a recycled record when one is
// available.
func (s *Sim) newRoot() *rootRecord {
	s.liveRoots++
	if n := len(s.rootFree); n > 0 {
		r := s.rootFree[n-1]
		s.rootFree = s.rootFree[:n-1]
		r.arrival = s.clock
		r.outstanding = 1
		return r
	}
	return &rootRecord{arrival: s.clock, outstanding: 1}
}

// RunUntil advances the simulation to absolute time t (seconds).
func (s *Sim) RunUntil(t float64) {
	for s.heap.len() > 0 && s.heap.peek().at <= t {
		e := s.heap.pop()
		s.advanceClock(e.at)
		s.dispatch(e)
	}
	s.advanceClock(t)
}

// RunFor advances the simulation by d seconds.
func (s *Sim) RunFor(d float64) { s.RunUntil(s.clock + d) }

func (s *Sim) advanceClock(t float64) {
	if t < s.clock {
		return
	}
	if s.bucket > 0 {
		for t >= s.bucketStart+s.bucket {
			s.closeBucket()
		}
	}
	s.clock = t
}

func (s *Sim) closeBucket() {
	p := SeriesPoint{Start: s.bucketStart, Count: s.bucketSum.Count()}
	if p.Count > 0 {
		p.MeanSojourn = s.bucketSum.Mean()
	} else {
		p.MeanSojourn = math.NaN()
	}
	s.series = append(s.series, p)
	s.bucketSum.Reset()
	s.bucketStart += s.bucket
}

func (s *Sim) dispatch(e event) {
	switch e.kind {
	case evSource:
		src := s.cfg.Sources[e.src]
		s.offeredArrivals++
		if src.Admit == nil || src.Admit(s.clock) {
			root := s.newRoot()
			s.externalArrivals++
			s.deliver(src.Op, tuple{root: root})
		} else {
			s.shedTotal++
		}
		gap := src.Arrivals.NextInterArrival(s.rng)
		s.push(event{at: s.clock + gap, kind: evSource, src: e.src})
	case evArrival:
		s.deliver(e.op, e.tup)
	case evService:
		s.completeService(e)
	case evWake:
		s.drainQueue(e.op)
	}
}

// deliver lands a tuple at a station: either straight into service or into
// the queue.
func (s *Sim) deliver(op int, t tuple) {
	st := &s.stations[op]
	st.arrivals++
	if s.cfg.MaxQueue > 0 && st.queue.len() >= s.cfg.MaxQueue {
		st.dropped++
		s.finishTuple(t) // dropped work still resolves the tree
		return
	}
	if st.busy < st.k && s.clock >= st.frozenUntil {
		s.startService(op, t)
	} else {
		st.queue.push(t)
	}
}

func (s *Sim) startService(op int, t tuple) {
	st := &s.stations[op]
	st.busy++
	d := s.cfg.Operators[op].Service.Sample(s.rng)
	if d < 0 {
		d = 0
	}
	s.push(event{at: s.clock + d, kind: evService, op: op, tup: t, serviceTime: d})
}

func (s *Sim) completeService(e event) {
	st := &s.stations[e.op]
	st.busy--
	st.served++
	st.busyTime += e.serviceTime
	st.busySq += e.serviceTime * e.serviceTime
	// Sample every edge's child count first and register the children on
	// the processing tree BEFORE any delivery: a child dropped at a full
	// queue resolves synchronously, and must not complete the tree while
	// its siblings (or this tuple's own decrement) are pending.
	if n := len(s.outEdges[e.op]); cap(s.countScratch) < n {
		s.countScratch = make([]int, n)
	}
	counts := s.countScratch[:len(s.outEdges[e.op])]
	for j, ei := range s.outEdges[e.op] {
		n := s.cfg.Edges[ei].Emit.Count(s.rng)
		counts[j] = n
		e.tup.root.outstanding += n
	}
	for j, ei := range s.outEdges[e.op] {
		edge := s.cfg.Edges[ei]
		for c := 0; c < counts[j]; c++ {
			delay := 0.0
			if edge.NetDelay != nil {
				delay = edge.NetDelay.Sample(s.rng)
			}
			child := tuple{root: e.tup.root}
			if delay <= 0 {
				s.deliver(edge.To, child)
			} else {
				s.push(event{at: s.clock + delay, kind: evArrival, op: edge.To, tup: child})
			}
		}
	}
	s.finishTuple(e.tup)
	s.drainQueue(e.op)
}

// finishTuple resolves one node of a processing tree; when the last node
// resolves, the external tuple is complete and its sojourn recorded.
func (s *Sim) finishTuple(t tuple) {
	t.root.outstanding--
	if t.root.outstanding > 0 {
		return
	}
	sojourn := s.clock - t.root.arrival
	s.rootFree = append(s.rootFree, t.root) // tree resolved; recycle
	s.liveRoots--
	s.totalCompleted++
	s.sojournCount++
	s.sojournTotal += sojourn
	if s.bucket > 0 {
		s.bucketSum.Add(sojourn)
	}
	if s.clock >= s.warmup {
		s.completed.Add(sojourn)
		if s.keepSample {
			s.completedSample.Add(sojourn)
		}
	}
}

func (s *Sim) drainQueue(op int) {
	st := &s.stations[op]
	if s.clock < st.frozenUntil {
		return
	}
	for st.busy < st.k && st.queue.len() > 0 {
		s.startService(op, st.queue.pop())
	}
}

// SetAllocation applies a new processor allocation with a service pause of
// the given length (the modeled rebalance/scale cost): no new service
// starts anywhere until the pause elapses; in-flight tuples finish.
func (s *Sim) SetAllocation(k []int, pause float64) error {
	if len(k) != len(s.stations) {
		return fmt.Errorf("sim: allocation length %d != %d operators", len(k), len(s.stations))
	}
	until := s.clock + pause
	for i := range s.stations {
		if k[i] < 1 {
			return fmt.Errorf("sim: operator %d allocated %d processors", i, k[i])
		}
	}
	for i := range s.stations {
		st := &s.stations[i]
		st.k = k[i]
		if pause > 0 {
			st.frozenUntil = until
			s.push(event{at: until, kind: evWake, op: i})
		} else {
			s.drainQueue(i)
		}
	}
	return nil
}

// DrainInterval returns and resets the per-interval measurement counters as
// a metrics.IntervalReport — the same payload a live measurer would pull,
// so simulations exercise the production measurer/controller path.
func (s *Sim) DrainInterval() metrics.IntervalReport {
	dur := s.clock - s.intervalStart
	rep := metrics.IntervalReport{
		Duration:         secondsToDuration(dur),
		ExternalArrivals: s.externalArrivals,
		OfferedArrivals:  s.offeredArrivals,
		Ops:              make([]metrics.OpInterval, len(s.stations)),
		SojournCount:     s.sojournCount,
		SojournTotal:     secondsToDuration(s.sojournTotal),
	}
	for i := range s.stations {
		st := &s.stations[i]
		rep.Ops[i] = metrics.OpInterval{
			Arrivals:      st.arrivals,
			Served:        st.served,
			Sampled:       st.served, // the simulator samples every tuple
			BusyTime:      secondsToDuration(st.busyTime),
			BusySqSeconds: st.busySq,
		}
		st.arrivals, st.served, st.busyTime, st.busySq = 0, 0, 0, 0
	}
	s.intervalStart = s.clock
	s.externalArrivals = 0
	s.offeredArrivals = 0
	s.sojournCount = 0
	s.sojournTotal = 0
	return rep
}

// ShedArrivals reports the cumulative count of arrivals refused by source
// Admit gates — the virtual-time twin of the live gate's shed counter.
func (s *Sim) ShedArrivals() int64 { return s.shedTotal }

// PendingRoots reports external tuples whose processing tree has not yet
// resolved — in-flight work. After arrivals stop and the queues drain it
// returns to zero; anything else means tuples were lost forever.
func (s *Sim) PendingRoots() int64 { return s.liveRoots }

// QueueLengths reports the instantaneous queue length per operator.
func (s *Sim) QueueLengths() []int {
	q := make([]int, len(s.stations))
	for i := range s.stations {
		q[i] = s.stations[i].queue.len()
	}
	return q
}

func secondsToDuration(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}
