package ingest

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
)

// ListenerConfig carries the client-registration defaults both listeners
// share: how an id maps to a shedding weight and what per-client token
// bucket new clients get.
type ListenerConfig struct {
	// DefaultWeight is the shedding weight of unknown client ids
	// (default 1).
	DefaultWeight float64
	// Weights overrides the weight per client id (e.g. gold=4, bronze=1).
	Weights map[string]float64
	// Rate and Burst parameterize each client's token bucket (Rate <= 0
	// disables per-client rate limiting; Burst defaults to Rate).
	Rate  float64
	Burst int
	// MaxRecordBytes bounds one record (default 1 MiB); larger frames or
	// bodies are rejected outright.
	MaxRecordBytes int
}

func (c ListenerConfig) withDefaults() ListenerConfig {
	if c.DefaultWeight <= 0 {
		c.DefaultWeight = 1
	}
	if c.MaxRecordBytes <= 0 {
		c.MaxRecordBytes = 1 << 20
	}
	if c.Burst <= 0 && c.Rate > 0 {
		c.Burst = int(c.Rate)
	}
	return c
}

// client registers (or fetches) the client for an id under the config's
// weight and bucket defaults.
func (c ListenerConfig) client(g *Gate, id string) *Client {
	w := c.DefaultWeight
	if ov, ok := c.Weights[id]; ok {
		w = ov
	}
	return g.Client(id, w, c.Rate, c.Burst)
}

// ClientIDHeader names the request header carrying the client id.
const ClientIDHeader = "X-Client-ID"

// Handler returns the HTTP front door for a gate:
//
//	POST /ingest  one record per request body — or, with Content-Type
//	              application/x-ndjson, one record per line. The client id
//	              comes from the X-Client-ID header ("anonymous" when
//	              absent). Every record runs the full admission path;
//	              202 Accepted when everything was admitted, 429 Too Many
//	              Requests (with a Retry-After header) when anything was
//	              shed. The JSON body reports the admitted/shed split.
//	GET  /stats   the gate's cumulative counters and current plan.
func Handler(g *Gate, cfg ListenerConfig) http.Handler {
	cfg = cfg.withDefaults()
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		id := r.Header.Get(ClientIDHeader)
		if id == "" {
			id = "anonymous"
		}
		cl := cfg.client(g, id)
		body, err := io.ReadAll(io.LimitReader(r.Body, int64(cfg.MaxRecordBytes)+1))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if len(body) > cfg.MaxRecordBytes {
			http.Error(w, "record too large", http.StatusRequestEntityTooLarge)
			return
		}
		admitted, shed := 0, 0
		var worst Verdict
		offer := func(rec []byte) {
			v := cl.Offer(valuesFor(rec))
			if v.Admitted {
				admitted++
				return
			}
			shed++
			if v.RetryAfter > worst.RetryAfter {
				worst = v
			} else if worst.Reason == ShedNone {
				worst.Reason = v.Reason
			}
		}
		mediaType, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
		if mediaType == "application/x-ndjson" {
			sc := bufio.NewScanner(bytes.NewReader(body))
			sc.Buffer(nil, cfg.MaxRecordBytes)
			for sc.Scan() {
				if len(sc.Bytes()) == 0 {
					continue
				}
				rec := make([]byte, len(sc.Bytes()))
				copy(rec, sc.Bytes())
				offer(rec)
			}
		} else {
			offer(body)
		}
		w.Header().Set("Content-Type", "application/json")
		status := http.StatusAccepted
		if shed > 0 {
			status = http.StatusTooManyRequests
			secs := int(worst.RetryAfter.Seconds() + 0.999)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		w.WriteHeader(status)
		fmt.Fprintf(w, `{"admitted":%d,"shed":%d,"reason":%q}`+"\n", admitted, shed, worst.Reason)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		s := g.Stats()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"offered":%d,"admitted":%d,"shed_rate_limit":%d,"shed_overload":%d,"shed_backlog":%d,"admit_fraction":%.3f,"sustainable_rate":%.3f,"scale_out_viable":%t}`+"\n",
			s.Offered, s.Admitted, s.ShedRateLimit, s.ShedOverload, s.ShedBacklog,
			s.AdmitFraction, s.SustainableRate, s.ScaleOutViable)
	})
	return mux
}
