package ingest

import (
	"errors"

	"github.com/drs-repro/drs/internal/core"
)

// stabilityRho is the utilization ceiling of the fallback admission bound:
// when the latency model cannot price the target (Tmax below the
// service-time floor), admission still protects the data plane by keeping
// every operator below this load factor.
const stabilityRho = 0.95

// Plan is one replanning round's cluster-level admission verdict — the
// pure-policy core shared by the live Gate and the virtual-time overload
// experiment.
type Plan struct {
	// SustainableRate is the largest admitted external rate (tuples/s) the
	// *current* grant is predicted to hold under Tmax, per the Eq. 3 model
	// at the snapshot's rate ratios.
	SustainableRate float64
	// AdmitFraction is min(1, SustainableRate/offered): the share of
	// offered load to admit this round. 1 means admit everything.
	AdmitFraction float64
	// ScaleOutViable is the Appendix-B guard verdict at the provider cap:
	// true when MinProcessors(Tmax) at the full offered demand fits within
	// maxSlots, i.e. scale-out can absorb the overload and the shed is a
	// transient while machines provision; false when even the whole
	// provider cannot serve what clients are offering, so the shed is
	// persistent until demand recedes.
	ScaleOutViable bool
}

// PlanAdmission computes the admission plan from the supervisor's latest
// control snapshot. snap carries the measured (admitted) rates, the
// allocation in force and the granted budget Kmax; offeredRate is the
// external rate clients are currently offering; maxSlots is the provider
// cap (0 = uncapped). The policy is the DRS model turned into a front
// door: find the largest demand scaling of the measured rates whose
// Program (6) allocation still fits the grant, and admit exactly that
// much. On any model failure it fails open (admit all) — shedding must be
// justified by the model, never by its absence.
func PlanAdmission(snap core.Snapshot, tmax float64, maxSlots int, offeredRate float64) Plan {
	admitAll := Plan{SustainableRate: offeredRate, AdmitFraction: 1, ScaleOutViable: true}
	if tmax <= 0 || offeredRate <= 0 || snap.Lambda0 <= 0 || len(snap.Ops) == 0 || snap.Kmax <= 0 {
		return admitAll
	}
	needAt := func(scale float64) (int, error) {
		ops := make([]core.OpRates, len(snap.Ops))
		for i, op := range snap.Ops {
			op.Lambda *= scale
			ops[i] = op
		}
		model, err := core.NewModel(snap.Lambda0*scale, ops)
		if err != nil {
			return 0, err
		}
		alloc, err := model.MinProcessors(tmax)
		if err != nil {
			return 0, err
		}
		total := 0
		for _, k := range alloc {
			total += k
		}
		return total, nil
	}
	demandScale := snap.OfferedLambda0 / snap.Lambda0
	if o := offeredRate / snap.Lambda0; o > demandScale {
		demandScale = o
	}
	if demandScale < 1 {
		demandScale = 1
	}
	need, err := needAt(demandScale)
	switch {
	case errors.Is(err, core.ErrUnreachableTarget):
		// Tmax is below the service-time floor: no allocation — and no
		// amount of shedding — reaches it. Fall back to a pure stability
		// bound so overload still cannot grow the queues without bound.
		return stabilityPlan(snap, offeredRate)
	case err != nil:
		return admitAll
	}
	viable := maxSlots <= 0 || need <= maxSlots
	if need <= snap.Kmax {
		admitAll.ScaleOutViable = viable
		return drainCorrected(snap, tmax, admitAll)
	}
	// The grant cannot hold the offered demand: binary-search the largest
	// demand scaling it can hold. Feasibility is monotone in the scale
	// (E[T_i] grows with λ_i at fixed k), so 40 halvings pin the boundary
	// far below measurement noise.
	lo, hi := 0.0, demandScale
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if mid <= 0 {
			break
		}
		if n, err := needAt(mid); err == nil && n <= snap.Kmax {
			lo = mid
		} else {
			hi = mid
		}
	}
	sustainable := lo * snap.Lambda0
	frac := sustainable / offeredRate
	if frac > 1 {
		frac = 1
	}
	return drainCorrected(snap, tmax,
		Plan{SustainableRate: sustainable, AdmitFraction: frac, ScaleOutViable: viable})
}

// drainCorrected applies the backlog-drain feedback: the sustainable rate
// is a *steady-state* quantity, but right after an overload transient (or
// a rebalance pause) a queue backlog is still draining and the measured
// sojourn violates the target even at an admissible rate. While it does,
// scale admission down by target/measured so the backlog drains at least
// as fast as it built — the correction vanishes exactly when the measured
// latency is back under the target.
func drainCorrected(snap core.Snapshot, tmax float64, p Plan) Plan {
	if snap.MeasuredSojourn <= tmax || p.AdmitFraction <= 0 {
		return p
	}
	drain := tmax / snap.MeasuredSojourn
	p.AdmitFraction *= drain
	p.SustainableRate *= drain
	return p
}

// stabilityPlan bounds admission by operator stability alone: the largest
// demand scaling keeping every operator's utilization under stabilityRho
// at the allocation in force.
func stabilityPlan(snap core.Snapshot, offeredRate float64) Plan {
	if len(snap.Alloc) != len(snap.Ops) {
		return Plan{SustainableRate: offeredRate, AdmitFraction: 1, ScaleOutViable: false}
	}
	scale := 0.0
	for i, op := range snap.Ops {
		if op.Lambda <= 0 || op.Mu <= 0 || snap.Alloc[i] < 1 {
			continue
		}
		s := stabilityRho * float64(snap.Alloc[i]) * op.Mu / op.Lambda
		if scale == 0 || s < scale {
			scale = s
		}
	}
	if scale == 0 {
		return Plan{SustainableRate: offeredRate, AdmitFraction: 1, ScaleOutViable: false}
	}
	sustainable := scale * snap.Lambda0
	frac := sustainable / offeredRate
	if frac > 1 {
		frac = 1
	}
	return Plan{SustainableRate: sustainable, AdmitFraction: frac, ScaleOutViable: false}
}
