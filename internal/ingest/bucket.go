package ingest

import (
	"sync"
	"time"
)

// tokenBucket is a per-client rate limiter: Rate tokens/s refill a bucket
// of Burst capacity, and each offered record spends one. It is the
// per-client contract enforcement layer — independent of the cluster-level
// admission controller, which sheds by *aggregate* capacity. Zero-alloc
// and mutex-guarded; contention is per client, so the lock is effectively
// uncontended for well-behaved clients.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 disables the limiter
	burst  float64
	tokens float64
	last   int64 // unix nanos of the last refill
	primed bool  // last holds a real reading
}

// newTokenBucket builds a bucket starting full. burst < 1 is raised to 1
// (a bucket that can never hold a whole token admits nothing).
func newTokenBucket(rate float64, burst int) tokenBucket {
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return tokenBucket{rate: rate, burst: b, tokens: b}
}

// take spends one token if available. When the bucket is empty it returns
// false and how long the caller should wait for the next token — the
// retry-after hint propagated to the client.
func (t *tokenBucket) take(nowNanos int64) (ok bool, retryAfter time.Duration) {
	if t.rate <= 0 {
		return true, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.primed {
		if dt := float64(nowNanos-t.last) / float64(time.Second); dt > 0 {
			t.tokens += dt * t.rate
			if t.tokens > t.burst {
				t.tokens = t.burst
			}
		}
	}
	t.last, t.primed = nowNanos, true
	if t.tokens >= 1 {
		t.tokens--
		return true, 0
	}
	return false, time.Duration((1 - t.tokens) / t.rate * float64(time.Second))
}
