package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"github.com/drs-repro/drs/internal/engine"
)

// valuesFor wraps one decoded client record as a tuple payload.
func valuesFor(rec []byte) engine.Values { return engine.Values{rec} }

// TCP wire protocol: every frame is a 4-byte big-endian length followed by
// that many payload bytes. The first frame of a connection carries the
// client id; each later frame carries one record. The server answers every
// record frame with 5 bytes — one status byte (TCPAck or TCPNack) and a
// 4-byte big-endian retry-after hint in milliseconds (0 on ack) — so a
// shed is explicit backpressure the client can pace itself by, never a
// silent drop.
const (
	// TCPAck is the status byte of an admitted record.
	TCPAck = 0x00
	// TCPNack is the status byte of a shed record; the retry-after field
	// says when to try again.
	TCPNack = 0x01
)

// ServeTCP accepts length-prefixed record streams on l until the listener
// closes (or the gate is closed). Each connection runs on its own
// goroutine; per-connection errors end that connection only.
func ServeTCP(l net.Listener, g *Gate, cfg ListenerConfig) error {
	cfg = cfg.withDefaults()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) || g.closed.Load() {
				return nil
			}
			return err
		}
		go serveConn(conn, g, cfg)
	}
}

// serveConn drives one client connection: hello frame, then records.
func serveConn(conn net.Conn, g *Gate, cfg ListenerConfig) {
	defer conn.Close()
	id, err := readFrame(conn, cfg.MaxRecordBytes, nil)
	if err != nil {
		return
	}
	cl := cfg.client(g, string(id))
	var reply [5]byte
	var buf []byte // reused frame buffer; admitted payloads are copied out
	for {
		buf, err = readFrame(conn, cfg.MaxRecordBytes, buf[:0])
		if err != nil {
			return
		}
		// The frame buffer is reused for the next read, so the admitted
		// payload gets its own copy; a shed record costs no allocation.
		rec := make([]byte, len(buf))
		copy(rec, buf)
		v := cl.Offer(valuesFor(rec))
		if v.Admitted {
			reply[0] = TCPAck
			binary.BigEndian.PutUint32(reply[1:], 0)
		} else {
			reply[0] = TCPNack
			binary.BigEndian.PutUint32(reply[1:], uint32(v.RetryAfter/time.Millisecond))
		}
		if _, err := conn.Write(reply[:]); err != nil {
			return
		}
	}
}

// readFrame reads one length-prefixed frame into buf (growing it as
// needed) and returns the payload.
func readFrame(r io.Reader, max int, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > max {
		return nil, fmt.Errorf("ingest: %d-byte frame exceeds the %d-byte limit", n, max)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// DialTCP opens a client connection speaking the ingest TCP protocol and
// sends the hello frame. It is the client half the load generator, the
// smoke test and the live demo share.
func DialTCP(addr, clientID string) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &TCPClient{conn: conn}
	if err := c.writeFrame([]byte(clientID)); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// TCPClient is one client-side ingest connection.
type TCPClient struct {
	conn net.Conn
}

// Send offers one record and returns the server's verdict: admitted, or
// the retry-after backpressure hint of a NACK.
func (c *TCPClient) Send(rec []byte) (admitted bool, retryAfter time.Duration, err error) {
	if err := c.writeFrame(rec); err != nil {
		return false, 0, err
	}
	var reply [5]byte
	if _, err := io.ReadFull(c.conn, reply[:]); err != nil {
		return false, 0, err
	}
	retry := time.Duration(binary.BigEndian.Uint32(reply[1:])) * time.Millisecond
	return reply[0] == TCPAck, retry, nil
}

// Close closes the connection.
func (c *TCPClient) Close() error { return c.conn.Close() }

func (c *TCPClient) writeFrame(p []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(p)))
	if _, err := c.conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := c.conn.Write(p)
	return err
}
