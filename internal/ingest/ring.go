package ingest

import (
	"sync"

	"github.com/drs-repro/drs/internal/engine"
	"github.com/drs-repro/drs/internal/obs"
)

// Ring is the bounded MPSC hand-off between the listener threads and the
// engine's NetworkSpout: producers TryPush decoded payloads, the single
// consumer drains them in batches. It reuses the engine queue idiom — a
// power-of-two ring drained up to a buffer's worth per lock round, with
// batch-granular signaling — but unlike the engine's unbounded executor
// queues it is *bounded*: a full ring refuses the push, which the gate
// converts into explicit client backpressure (HTTP 429 / TCP NACK)
// instead of letting overload grow the data plane's memory. The fast
// paths allocate nothing in steady state.
type Ring struct {
	mu     sync.Mutex
	buf    []slot // power-of-two ring, fixed capacity
	head   int    // index of the oldest item
	n      int    // live item count
	pushed uint64 // total successful pushes — the admission seq counter
	closed bool
	// tracer, when set (NewGate wires GateConfig.Tracer), decides per-push
	// — under the ring lock, from the admission seq alone — whether the
	// payload carries a trace id. The sampled-out cost is one hash and a
	// compare; no clock is read here either way.
	tracer *obs.Tracer
	// notEmpty latches the empty->non-empty transition (and the close) for
	// the consumer; capacity 1, non-blocking sends.
	notEmpty chan struct{}
}

// slot is one ring entry: the payload plus its trace id (0 = untraced).
// The id rides the ring alongside the payload rather than inside it, so
// tracing never widens or reshapes what the topology processes.
type slot struct {
	v     engine.Values
	trace uint64
}

// NewRing builds a ring holding at least capacity payloads (rounded up to
// a power of two; minimum 2).
func NewRing(capacity int) *Ring {
	size := 2
	for size < capacity {
		size *= 2
	}
	return &Ring{
		buf:      make([]slot, size),
		notEmpty: make(chan struct{}, 1),
	}
}

// Cap reports the ring's fixed capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len reports the current backlog.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// TryPush enqueues one payload without blocking. It returns false when the
// ring is full (the backpressure signal) or closed.
func (r *Ring) TryPush(v engine.Values) bool {
	_, _, ok := r.tryPushSeq(v)
	return ok
}

// tryPushSeq is TryPush returning the payload's admission sequence number
// — the count of successful pushes, assigned under the ring lock so seq
// order IS ring FIFO order — and the payload's trace id (nonzero only when
// a tracer is wired and the seq wins its deterministic sampling hash; the
// trace id IS the seq, so a trace names the admission that spawned it and
// the sampled set is identical across runs and processes). The durable
// gate logs each record under this seq and the pop side reconstructs
// batch seq ranges by counting.
func (r *Ring) tryPushSeq(v engine.Values) (seq, trace uint64, ok bool) {
	r.mu.Lock()
	if r.closed || r.n == len(r.buf) {
		r.mu.Unlock()
		return 0, 0, false
	}
	r.pushed++
	seq = r.pushed
	if r.tracer.SampleTrace(seq) {
		trace = seq
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = slot{v: v, trace: trace}
	r.n++
	wake := r.n == 1
	r.mu.Unlock()
	if wake {
		r.signal()
	}
	return seq, trace, true
}

// Pushed reports the total successful pushes — the high end of the
// admission seq space. With every pushed seq completed (watermark ==
// Pushed), nothing admitted is still in flight.
func (r *Ring) Pushed() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pushed
}

// setPushed seeds the admission seq counter — crash recovery anchors it
// at the recovered ack watermark so replayed pushes continue the logged
// seq space. Call before any push.
func (r *Ring) setPushed(n uint64) {
	r.mu.Lock()
	r.pushed = n
	r.mu.Unlock()
}

func (r *Ring) signal() {
	select {
	case r.notEmpty <- struct{}{}:
	default:
	}
}

// PopBatch implements engine.BatchSource: it blocks until payloads are
// available, moves up to cap(buf) of them into buf under one lock round,
// and returns the filled prefix. Admitted payloads are never abandoned: a
// closed ring keeps returning batches until it is empty, and only then
// reports ok=false. done is the consumer's shutdown fallback — when it
// closes while the ring is empty, PopBatch returns promptly.
func (r *Ring) PopBatch(done <-chan struct{}, buf []engine.Values) ([]engine.Values, bool) {
	batch, _, ok := r.popBatch(done, buf, nil)
	return batch, ok
}

// PopBatchTraced implements engine.TracedBatchSource for the non-durable
// gate: PopBatch additionally returning each payload's trace id. The ack
// is always nil — only the durable source tracks completions.
func (r *Ring) PopBatchTraced(done <-chan struct{}, buf []engine.Values, ids []uint64) ([]engine.Values, []uint64, func(), bool) {
	batch, traces, ok := r.popBatch(done, buf, ids)
	return batch, traces, nil, ok
}

// popBatch is the shared drain: it blocks until payloads are available,
// moves up to cap(buf) of them into buf under one lock round, and — when
// ids is non-nil — mirrors their trace ids into ids. traces is nil when
// ids is (the untraced callers pay nothing for the trace lane).
func (r *Ring) popBatch(done <-chan struct{}, buf []engine.Values, ids []uint64) (batch []engine.Values, traces []uint64, ok bool) {
	max := cap(buf)
	if max == 0 {
		max = 1
		buf = make([]engine.Values, 0, 1)
	}
	if ids != nil && cap(ids) < max {
		ids = make([]uint64, 0, max)
	}
	for {
		r.mu.Lock()
		if r.n > 0 {
			take := r.n
			if take > max {
				take = max
			}
			out := buf[:take]
			mask := len(r.buf) - 1
			if ids != nil {
				traces = ids[:take]
			}
			for i := 0; i < take; i++ {
				idx := (r.head + i) & mask
				out[i] = r.buf[idx].v
				if ids != nil {
					traces[i] = r.buf[idx].trace
				}
				r.buf[idx] = slot{} // release the payload reference
			}
			r.head = (r.head + take) & mask
			r.n -= take
			r.mu.Unlock()
			return out, traces, true
		}
		closed := r.closed
		r.mu.Unlock()
		if closed {
			return nil, nil, false
		}
		select {
		case <-r.notEmpty:
		case <-done:
			return nil, nil, false
		}
	}
}

// Close marks the ring closed: pushes start failing immediately, and the
// consumer drains what remains before PopBatch reports ok=false. Safe to
// call more than once.
func (r *Ring) Close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.signal()
}
