package ingest

import (
	"testing"

	"github.com/drs-repro/drs/internal/engine"
	"github.com/drs-repro/drs/internal/obs"
)

// TestOfferZeroAllocsWithDecisionLog pins the admission fast path at zero
// allocations per record with the decision log enabled — the regression
// guard behind the 46 ns/0-alloc admit claim. Decision records are
// emitted at Replan granularity, never per record, so turning the log on
// must not cost the hot path anything; this fails (not a bench note) if a
// change sneaks an allocation in.
func TestOfferZeroAllocsWithDecisionLog(t *testing.T) {
	if obs.RaceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race")
	}
	dlog := obs.NewLog(obs.Config{})
	defer dlog.Close()
	g := NewGate(GateConfig{RingCapacity: 1 << 12, DecisionLog: dlog})
	defer g.Close()
	c := g.Client("alloc", 1, 0, 0)
	payload := engine.Values{[]byte("record")}
	done := make(chan struct{})
	buf := make([]engine.Values, 0, 1<<12)
	i := 0
	allocs := testing.AllocsPerRun(10000, func() {
		if v := c.Offer(payload); !v.Admitted {
			t.Fatalf("offer %d refused: %+v", i, v)
		}
		if i&(1<<11-1) == 1<<11-1 { // drain half-full, one lock round
			g.Ring().PopBatch(done, buf)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("Offer allocated %.3f/op with the decision log on; want 0", allocs)
	}
}
