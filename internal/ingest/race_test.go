package ingest

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/engine"
)

// flippingControl alternates between a roomy and a starved snapshot, so
// every Replan flips the shed thresholds under the offering clients.
type flippingControl struct {
	n atomic.Int64
}

func (c *flippingControl) LastSnapshot() (core.Snapshot, bool) {
	if c.n.Add(1)%2 == 0 {
		return twoStageSnap(3, 2, 8, 16), true // sustains ~14/s
	}
	return twoStageSnap(3, 2, 1, 2), true // starved: sheds nearly everything
}

// TestGateRace hammers the admit fast path from many concurrent clients
// while the replanning loop flips the shed thresholds and a consumer
// drains the ring — the production concurrency shape, run under -race in
// CI. Correctness invariant: every offer gets exactly one verdict and the
// books balance (offered = admitted + shed, and the ring receives exactly
// the admitted payloads).
func TestGateRace(t *testing.T) {
	g := NewGate(GateConfig{
		Tmax: 1.5, MaxSlots: 16, Control: &flippingControl{},
		RingCapacity: 1 << 12, ReplanEvery: time.Millisecond,
	})
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	const clients = 8
	const perClient = 2500
	var admitted atomic.Int64
	var wg sync.WaitGroup
	// Consumer: drain the ring concurrently, counting payloads.
	var drained atomic.Int64
	consumerDone := make(chan struct{})
	stop := make(chan struct{})
	go func() {
		defer close(consumerDone)
		buf := make([]engine.Values, 0, 256)
		for {
			out, ok := g.Ring().PopBatch(stop, buf)
			if !ok {
				return
			}
			drained.Add(int64(len(out)))
		}
	}()
	payload := engine.Values{[]byte("r")}
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids := []string{"a", "b", "c", "d"}
			c := g.Client(ids[i%len(ids)], float64(i%3+1), 0, 0)
			for j := 0; j < perClient; j++ {
				if v := c.Offer(payload); v.Admitted {
					admitted.Add(1)
				}
			}
		}(i)
	}
	wg.Wait()
	g.Close() // stops the replan loop, closes the ring; consumer drains the tail
	<-consumerDone
	st := g.Stats()
	if st.Offered != clients*perClient {
		t.Fatalf("offered %d, want %d", st.Offered, clients*perClient)
	}
	if st.Admitted != admitted.Load() {
		t.Fatalf("gate admitted %d, clients saw %d", st.Admitted, admitted.Load())
	}
	if got := st.Admitted + st.ShedRateLimit + st.ShedOverload + st.ShedBacklog; got != st.Offered {
		t.Fatalf("books do not balance: %d admitted+shed of %d offered", got, st.Offered)
	}
	if drained.Load() != st.Admitted {
		t.Fatalf("ring delivered %d payloads, gate admitted %d", drained.Load(), st.Admitted)
	}
}
