package ingest

import (
	"io"
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/drs-repro/drs/internal/cluster"
	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/engine"
	"github.com/drs-repro/drs/internal/loop"
)

// TestLiveOverloadArc runs the whole front door against the real
// goroutine engine: many clients → overload a small grant → the gate
// sheds with explicit verdicts while the offered-rate measurement drives
// the Supervisor to scale out to the provider cap → the surge ends and
// the gate returns to admit-all — with zero admitted tuples lost across
// the entire run (gate admitted == engine completions after an orderly
// drain). Wall-clock phases make this a seconds-long test; the assertions
// are the arc's shape, not exact numbers.
func TestLiveOverloadArc(t *testing.T) {
	if testing.Short() {
		t.Skip("seconds-long live engine arc")
	}
	const (
		mu       = 50.0  // tuples/s one executor serves (20 ms mean)
		tmax     = 0.250 // seconds (well above the ~100 ms natural latency of (1,1))
		baseGold = 20.0  // gold's offered rate throughout
		baseBrz  = 10.0  // bronze's base rate
		surgeBrz = 200.0 // bronze's surge rate: needs ~10 slots, cap is 8
	)

	// The engine: two service stages behind a NetworkSpout.
	gate := NewGate(GateConfig{
		Tmax: tmax, MaxSlots: 8,
		RingCapacity: 1 << 12, ReplanEvery: 250 * time.Millisecond,
	})
	serviceBolt := func(seed int64) engine.BoltFactory {
		return func(task int) engine.Bolt {
			rng := rand.New(rand.NewSource(seed + int64(task)))
			return engine.BoltFunc(func(_ engine.Tuple, emit engine.Emit) error {
				time.Sleep(time.Duration(rng.ExpFloat64() / mu * float64(time.Second)))
				emit(engine.Values{0})
				return nil
			})
		}
	}
	sinkBolt := func(seed int64) engine.BoltFactory {
		return func(task int) engine.Bolt {
			rng := rand.New(rand.NewSource(seed + int64(task)))
			return engine.BoltFunc(func(engine.Tuple, engine.Emit) error {
				time.Sleep(time.Duration(rng.ExpFloat64() / mu * float64(time.Second)))
				return nil
			})
		}
	}
	topo, err := engine.NewTopology().
		Spout("front", 1, func(int) engine.Spout {
			return &engine.NetworkSpout{Source: gate.Ring(), MaxBatch: 64}
		}).
		Bolt("extract", 8, serviceBolt(1)).
		Bolt("match", 8, sinkBolt(1000)).
		Shuffle("front", "extract").
		Shuffle("extract", "match").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run, err := topo.Start(engine.RunConfig{
		Alloc:          map[string]int{"extract": 1, "match": 1},
		QuiesceTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The cluster: 2-slot machines up to a 4-machine cap (8 slots), fast
	// modeled transitions; a single tenant leased through the Scheduler so
	// beyond-cap requests grant partially.
	pool, err := cluster.NewPool(cluster.PoolConfig{
		SlotsPerMachine: 2, MaxMachines: 4,
		Costs: cluster.CostModel{
			Rebalance:        50 * time.Millisecond,
			MachineColdStart: 100 * time.Millisecond,
			MachineRelease:   50 * time.Millisecond,
		},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := cluster.NewScheduler(cluster.SchedulerConfig{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	lease, err := sched.Register(cluster.TenantConfig{Name: "front", MinSlots: 2, InitialSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := core.NewController(core.ControllerConfig{
		Mode: core.ModeMinResource, Tmax: tmax,
		MinGain: 0.05, ScaleInSlack: 0.3, MaxScaleInUtilization: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	sup, err := loop.New(loop.Config{
		Target:    SupervisedTarget{Inner: loop.EngineTarget(run), Gate: gate},
		Operators: run.BoltNames(),
		Stepper:   ctrl,
		Pool:      lease,
		Interval:  500 * time.Millisecond,
		Cooldown:  1500 * time.Millisecond,
		Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	gate.SetControl(sup)
	if err := gate.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}

	// Clients: paced offer loops at a switchable rate.
	gold := gate.Client("gold", 4, 0, 0)
	bronze := gate.Client("bronze", 1, 0, 0)
	var bronzeRate atomic.Uint64
	setRate := func(r float64) { bronzeRate.Store(uint64(r)) }
	setRate(baseBrz)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	drive := func(c *Client, rate func() float64) {
		defer wg.Done()
		for {
			r := rate()
			wait := time.Duration(float64(time.Second) / r)
			select {
			case <-stop:
				return
			case <-time.After(wait):
				c.Offer(engine.Values{[]byte("rec")})
			}
		}
	}
	wg.Add(2)
	go drive(gold, func() float64 { return baseGold })
	go drive(bronze, func() float64 { return float64(bronzeRate.Load()) })

	// Phase 1: base load settles.
	time.Sleep(4 * time.Second)
	if st := gate.Stats(); st.ShedOverload > st.Offered/20 {
		t.Fatalf("base load shed %d of %d offered — nothing should shed before the surge", st.ShedOverload, st.Offered)
	}

	// Phase 2: bronze surges far beyond the provider cap.
	setRate(surgeBrz)
	time.Sleep(8 * time.Second)
	surgeStats := gate.Stats()
	goldShedSurge, bronzeShedSurge := gold.Shed(), bronze.Shed()
	grantAtPeak := lease.Kmax()

	// Phase 3: surge ends; the gate must return to admit-all.
	setRate(baseBrz)
	time.Sleep(6 * time.Second)
	finalStats := gate.Stats()

	close(stop)
	wg.Wait()
	// Orderly shutdown: close the front door, let the spout drain the
	// ring, then stop the engine — no admitted tuple may be lost.
	gate.Close()
	sup.Stop()
	for gate.Ring().Len() > 0 {
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond) // the last popped batch finishes emitting
	if err := run.Stop(); err != nil {
		t.Fatal(err)
	}

	if surgeStats.ShedOverload == 0 {
		t.Fatal("the gate never shed during the surge")
	}
	if grantAtPeak != 8 {
		t.Errorf("grant at surge peak %d slots, want the 8-slot cap", grantAtPeak)
	}
	if bronzeShedSurge == 0 {
		t.Fatal("bronze shed nothing during the surge")
	}
	if goldShedSurge*5 >= bronzeShedSurge {
		t.Errorf("shedding not weight-ordered: gold %d vs bronze %d", goldShedSurge, bronzeShedSurge)
	}
	if finalStats.AdmitFraction < 0.99 {
		t.Errorf("admit fraction %.2f after recovery, want admit-all", finalStats.AdmitFraction)
	}
	completions, _ := run.Completions()
	if completions != finalStatsAdmitted(gate) {
		t.Errorf("zero-loss audit failed: gate admitted %d, engine completed %d",
			finalStatsAdmitted(gate), completions)
	}
}

// finalStatsAdmitted reads the gate's cumulative admitted count.
func finalStatsAdmitted(g *Gate) int64 { return g.Stats().Admitted }
