package ingest

import (
	"fmt"
	"sync"
	"testing"

	"github.com/drs-repro/drs/internal/engine"
)

// TestShardedRegistryFirstContactRace hammers one id from many
// goroutines: every caller must get the same *Client back (the
// double-checked shard write), and concurrent registration of distinct
// ids must land each in exactly one shard slot.
func TestShardedRegistryFirstContactRace(t *testing.T) {
	g := NewGate(GateConfig{})
	defer g.Close()
	const workers = 16
	var wg sync.WaitGroup
	got := make([]*Client, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = g.Client("contested", 2, 0, 0)
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if got[w] != got[0] {
			t.Fatal("racing first contacts returned distinct clients")
		}
	}
	if got[0].Weight() != 2 {
		t.Fatalf("winner weight %g, want 2", got[0].Weight())
	}

	const perWorker = 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c := g.Client(fmt.Sprintf("w%d-c%d", w, i), 1, 0, 0)
				c.Offer(engine.Values{i})
			}
		}(w)
	}
	// Replans race the registrations — the snapshot path must tolerate
	// shards growing under it.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			g.Replan()
		}
	}()
	wg.Wait()
	<-done
	if n := g.clients.size(); n != workers*perWorker+1 {
		t.Fatalf("registry holds %d clients, want %d", n, workers*perWorker+1)
	}
	// Every registered client is visible to a snapshot exactly once.
	seen := make(map[*Client]bool)
	for _, c := range g.clients.snapshot(nil) {
		if seen[c] {
			t.Fatalf("client %s snapshotted twice", c.ID())
		}
		seen[c] = true
	}
	if len(seen) != workers*perWorker+1 {
		t.Fatalf("snapshot saw %d clients, want %d", len(seen), workers*perWorker+1)
	}
}

// TestShardedRegistryPlanInheritance pins the overload-bypass guard
// across the shard refactor: a client registered mid-shed starts at the
// plan-wide fraction, not admit-all.
func TestShardedRegistryPlanInheritance(t *testing.T) {
	g := NewGate(GateConfig{})
	defer g.Close()
	g.admitFraction.store(0.25)
	c := g.Client("late", 1, 0, 0)
	if p := c.admitPermille.Load(); p != 250 {
		t.Fatalf("fresh client permille %d, want 250", p)
	}
}

// TestFNV1a pins the reference FNV-1a vectors so the shard picker never
// silently changes distribution.
func TestFNV1a(t *testing.T) {
	cases := map[string]uint64{
		"":    fnvOffset64,
		"a":   0xaf63dc4c8601ec8c,
		"foo": 0xdcb27518fed9d577,
	}
	for in, want := range cases {
		if got := fnv1a(in); got != want {
			t.Fatalf("fnv1a(%q) = %#x, want %#x", in, got, want)
		}
	}
}

// TestClientMapShardCount checks the sizing rule: a power of two within
// [8, 512].
func TestClientMapShardCount(t *testing.T) {
	m := newClientMap()
	n := len(m.shards)
	if n < 8 || n > 512 || n&(n-1) != 0 {
		t.Fatalf("shard count %d not a power of two in [8, 512]", n)
	}
	if m.mask != uint64(n-1) {
		t.Fatalf("mask %#x does not match %d shards", m.mask, n)
	}
}
