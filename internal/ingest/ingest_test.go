package ingest

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/engine"
)

// scriptedControl serves a fixed snapshot.
type scriptedControl struct {
	mu   sync.Mutex
	snap core.Snapshot
	ok   bool
}

func (c *scriptedControl) LastSnapshot() (core.Snapshot, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snap, c.ok
}

func (c *scriptedControl) set(s core.Snapshot) {
	c.mu.Lock()
	c.snap, c.ok = s, true
	c.mu.Unlock()
}

// twoStageSnap builds a snapshot of a two-stage chain at the given
// admitted rate, µ per stage, allocation and grant.
func twoStageSnap(lambda, mu float64, k, kmax int) core.Snapshot {
	return core.Snapshot{
		Lambda0:        lambda,
		OfferedLambda0: lambda,
		Ops: []core.OpRates{
			{Name: "stage1", Lambda: lambda, Mu: mu},
			{Name: "stage2", Lambda: lambda, Mu: mu},
		},
		MeasuredSojourn: 0.5,
		Alloc:           []int{k, k},
		Kmax:            kmax,
	}
}

func TestRingOrderAndBackpressure(t *testing.T) {
	r := NewRing(4)
	if r.Cap() != 4 {
		t.Fatalf("cap %d, want 4", r.Cap())
	}
	for i := 0; i < 4; i++ {
		if !r.TryPush(engine.Values{i}) {
			t.Fatalf("push %d refused below capacity", i)
		}
	}
	if r.TryPush(engine.Values{4}) {
		t.Fatal("push into a full ring must fail")
	}
	done := make(chan struct{})
	buf := make([]engine.Values, 0, 3)
	out, ok := r.PopBatch(done, buf)
	if !ok || len(out) != 3 {
		t.Fatalf("PopBatch: %d items, ok=%v; want 3, true", len(out), ok)
	}
	for i, v := range out {
		if v[0].(int) != i {
			t.Fatalf("out[%d] = %v, want %d (FIFO)", i, v[0], i)
		}
	}
	// Close with one item left: the drain completes before ok=false.
	r.Close()
	if r.TryPush(engine.Values{9}) {
		t.Fatal("push into a closed ring must fail")
	}
	out, ok = r.PopBatch(done, buf)
	if !ok || len(out) != 1 || out[0][0].(int) != 3 {
		t.Fatalf("drain after close: %v ok=%v; want item 3, true", out, ok)
	}
	if _, ok = r.PopBatch(done, buf); ok {
		t.Fatal("drained closed ring must report ok=false")
	}
}

func TestRingDoneWakesBlockedConsumer(t *testing.T) {
	r := NewRing(4)
	done := make(chan struct{})
	got := make(chan bool, 1)
	go func() {
		_, ok := r.PopBatch(done, make([]engine.Values, 0, 1))
		got <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	close(done)
	select {
	case ok := <-got:
		if ok {
			t.Fatal("done-closed PopBatch returned ok=true")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("PopBatch ignored done")
	}
}

func TestTokenBucket(t *testing.T) {
	b := newTokenBucket(10, 2) // 10/s, burst 2
	now := time.Unix(0, 0)
	if ok, _ := b.take(now.UnixNano()); !ok {
		t.Fatal("first token refused")
	}
	if ok, _ := b.take(now.UnixNano()); !ok {
		t.Fatal("burst token refused")
	}
	ok, retry := b.take(now.UnixNano())
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if retry <= 0 || retry > 200*time.Millisecond {
		t.Fatalf("retry-after %v, want ~100ms at 10 tokens/s", retry)
	}
	// 100 ms later one token has refilled.
	if ok, _ := b.take(now.Add(100 * time.Millisecond).UnixNano()); !ok {
		t.Fatal("refilled token refused")
	}
	unlimited := newTokenBucket(0, 0)
	for i := 0; i < 1000; i++ {
		if ok, _ := unlimited.take(now.UnixNano()); !ok {
			t.Fatal("disabled bucket must always admit")
		}
	}
}

func TestPlanAdmissionAdmitsWithinGrant(t *testing.T) {
	// λ = 3/s on (3,3) of 6 slots, µ = 2: comfortably sustainable.
	p := PlanAdmission(twoStageSnap(3, 2, 3, 6), 1.5, 16, 3)
	if p.AdmitFraction != 1 {
		t.Fatalf("admit fraction %.2f, want 1 within the grant", p.AdmitFraction)
	}
	if !p.ScaleOutViable {
		t.Fatal("scale-out trivially viable when demand already fits")
	}
}

func TestPlanAdmissionShedsBeyondGrant(t *testing.T) {
	// Offered 18/s against a 6-slot grant: must shed most of it, and with
	// a 16-slot cap the demand (≈22 slots) is beyond the provider.
	snap := twoStageSnap(3, 2, 3, 6)
	p := PlanAdmission(snap, 1.5, 16, 18)
	if p.AdmitFraction >= 1 || p.AdmitFraction <= 0 {
		t.Fatalf("admit fraction %.2f, want partial shed", p.AdmitFraction)
	}
	if p.SustainableRate <= 0 || p.SustainableRate >= 18 {
		t.Fatalf("sustainable %.2f tuples/s out of range", p.SustainableRate)
	}
	if p.ScaleOutViable {
		t.Fatal("22-slot demand must not be viable under a 16-slot cap")
	}
	// The same demand under a roomy cap is viable (transient shed).
	if p := PlanAdmission(snap, 1.5, 64, 18); !p.ScaleOutViable {
		t.Fatal("22-slot demand must be viable under a 64-slot cap")
	}
	// And a larger grant sustains more.
	big := PlanAdmission(twoStageSnap(3, 2, 8, 16), 1.5, 16, 18)
	if big.SustainableRate <= p.SustainableRate {
		t.Fatalf("16-slot grant sustains %.2f <= 6-slot grant's %.2f", big.SustainableRate, p.SustainableRate)
	}
}

func TestPlanAdmissionDrainCorrection(t *testing.T) {
	// Within the grant but the measured sojourn is 3× the target: a
	// backlog is draining, so admission must tighten by target/measured.
	snap := twoStageSnap(3, 2, 3, 6)
	snap.MeasuredSojourn = 4.5
	p := PlanAdmission(snap, 1.5, 16, 3)
	if p.AdmitFraction > 0.34 || p.AdmitFraction < 0.3 {
		t.Fatalf("admit fraction %.2f, want ≈ 1.5/4.5 ≈ 0.33", p.AdmitFraction)
	}
}

func TestPlanAdmissionFailsOpen(t *testing.T) {
	if p := PlanAdmission(core.Snapshot{}, 1.5, 16, 10); p.AdmitFraction != 1 {
		t.Fatalf("empty snapshot must admit all, got %.2f", p.AdmitFraction)
	}
	if p := PlanAdmission(twoStageSnap(3, 2, 3, 6), 0, 16, 10); p.AdmitFraction != 1 {
		t.Fatalf("zero Tmax must admit all, got %.2f", p.AdmitFraction)
	}
}

func TestPlanAdmissionStabilityFallback(t *testing.T) {
	// Tmax below the two-stage service floor (2 × 0.5s = 1s): latency is
	// unreachable at any allocation, but overload 18/s against 6 slots
	// must still be bounded by stability (ρ ≤ 0.95 per operator).
	p := PlanAdmission(twoStageSnap(3, 2, 3, 6), 0.8, 16, 18)
	if p.AdmitFraction >= 1 {
		t.Fatal("stability fallback must still shed an 18/s offer against 6 slots")
	}
	want := stabilityRho * 6 // 0.95 · k·µ = 0.95·3·2 per stage
	if p.SustainableRate > want+1e-9 {
		t.Fatalf("sustainable %.2f exceeds the stability bound %.2f", p.SustainableRate, want)
	}
}

func TestGateShedsByWeight(t *testing.T) {
	now := time.Unix(0, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }
	control := &scriptedControl{}
	g := NewGate(GateConfig{
		Tmax: 1.5, MaxSlots: 16, Control: control,
		RingCapacity: 1 << 14, ReplanEvery: time.Second, Headroom: -1, Now: clock,
	})
	gold := g.Client("gold", 4, 0, 0)
	bronze := g.Client("bronze", 1, 0, 0)
	payload := engine.Values{[]byte("r")}

	// Round 0: warm the per-client rate estimates (plan stays admit-all —
	// no snapshot yet). Rates: gold 4/s, bronze 28/s.
	for i := 0; i < 4; i++ {
		gold.Offer(payload)
	}
	for i := 0; i < 28; i++ {
		bronze.Offer(payload)
	}
	advance(time.Second)
	g.Replan()
	if f := g.Stats().AdmitFraction; f != 1 {
		t.Fatalf("no snapshot: admit fraction %.2f, want 1", f)
	}

	// Install a snapshot whose grant sustains ~14/s of the 32/s offered;
	// gold (4/s) must fit fully, bronze absorbs the shed.
	control.set(twoStageSnap(3, 2, 8, 16))
	for i := 0; i < 4; i++ {
		gold.Offer(payload)
	}
	for i := 0; i < 28; i++ {
		bronze.Offer(payload)
	}
	advance(time.Second)
	g.Replan()
	st := g.Stats()
	if st.AdmitFraction >= 1 {
		t.Fatalf("admit fraction %.2f, want shedding against 18/s offered", st.AdmitFraction)
	}
	goldBefore, bronzeBefore := gold.Shed(), bronze.Shed()
	for i := 0; i < 2000; i++ {
		gold.Offer(payload)
		bronze.Offer(payload)
	}
	goldShed := gold.Shed() - goldBefore
	bronzeShed := bronze.Shed() - bronzeBefore
	if goldShed != 0 {
		t.Fatalf("gold shed %d records; its 4/s fits inside the sustainable rate", goldShed)
	}
	if bronzeShed == 0 {
		t.Fatal("bronze shed nothing; the excess must land on the low-weight client")
	}
	// The interval probe counts exactly the overload sheds.
	if drained := g.DrainShed(); drained != goldShed+bronzeShed {
		t.Fatalf("DrainShed %d, want %d", drained, goldShed+bronzeShed)
	}
	if g.DrainShed() != 0 {
		t.Fatal("DrainShed must reset")
	}
}

func TestGateRingBackpressure(t *testing.T) {
	g := NewGate(GateConfig{RingCapacity: 4, ReplanEvery: time.Second})
	c := g.Client("c", 1, 0, 0)
	payload := engine.Values{[]byte("r")}
	for i := 0; i < 4; i++ {
		if v := c.Offer(payload); !v.Admitted {
			t.Fatalf("offer %d refused below ring capacity: %+v", i, v)
		}
	}
	v := c.Offer(payload)
	if v.Admitted || v.Reason != ShedBacklog {
		t.Fatalf("full ring: got %+v, want ShedBacklog", v)
	}
	if v.RetryAfter <= 0 {
		t.Fatal("backlog shed must carry a retry-after hint")
	}
}

func TestGateCloseDrainsAdmitted(t *testing.T) {
	g := NewGate(GateConfig{RingCapacity: 16})
	c := g.Client("c", 1, 0, 0)
	for i := 0; i < 5; i++ {
		c.Offer(engine.Values{i})
	}
	g.Close()
	if v := c.Offer(engine.Values{9}); v.Admitted {
		t.Fatal("closed gate admitted a record")
	}
	done := make(chan struct{})
	buf := make([]engine.Values, 0, 16)
	out, ok := g.Ring().PopBatch(done, buf)
	if !ok || len(out) != 5 {
		t.Fatalf("close lost admitted records: got %d ok=%v, want 5 true", len(out), ok)
	}
	if _, ok := g.Ring().PopBatch(done, buf); ok {
		t.Fatal("drained closed ring must report ok=false")
	}
}

func TestHTTPHandler(t *testing.T) {
	g := NewGate(GateConfig{RingCapacity: 64})
	srv := httptest.NewServer(Handler(g, ListenerConfig{Rate: 1, Burst: 1}))
	defer srv.Close()
	defer g.Close()

	post := func(id, body string) (int, string, string) {
		req, err := http.NewRequest("POST", srv.URL+"/ingest", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(ClientIDHeader, id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b), resp.Header.Get("Retry-After")
	}
	code, body, _ := post("a", "rec1")
	if code != 202 || !strings.Contains(body, `"admitted":1`) {
		t.Fatalf("first record: %d %s", code, body)
	}
	// The 1/s bucket is now empty: the next record must bounce with 429
	// and a Retry-After hint.
	code, body, retry := post("a", "rec2")
	if code != 429 {
		t.Fatalf("rate-limited record: %d %s, want 429", code, body)
	}
	if retry == "" {
		t.Fatal("429 must carry Retry-After")
	}
	if !strings.Contains(body, `"reason":"rate-limit"`) {
		t.Fatalf("429 body %s lacks the shed reason", body)
	}
	// A different client has its own bucket.
	if code, _, _ := post("b", "rec"); code != 202 {
		t.Fatalf("client b: %d, want 202", code)
	}
	// /stats renders the counters.
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), `"offered":3`) {
		t.Fatalf("stats %s lacks offered count", b)
	}
	// The admitted payloads are in the ring.
	if n := g.Ring().Len(); n != 2 {
		t.Fatalf("ring holds %d records, want 2", n)
	}
}

func TestTCPListener(t *testing.T) {
	g := NewGate(GateConfig{RingCapacity: 64})
	defer g.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go ServeTCP(l, g, ListenerConfig{Rate: 2, Burst: 2})

	c, err := DialTCP(l.Addr().String(), "tcp-client")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 2; i++ {
		admitted, _, err := c.Send([]byte(fmt.Sprintf("rec%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if !admitted {
			t.Fatalf("record %d NACKed below the burst", i)
		}
	}
	admitted, retry, err := c.Send([]byte("rec2"))
	if err != nil {
		t.Fatal(err)
	}
	if admitted {
		t.Fatal("record beyond the bucket burst was ACKed")
	}
	if retry <= 0 {
		t.Fatal("NACK must carry a retry-after hint")
	}
	// The two admitted payloads round-trip into the ring intact.
	done := make(chan struct{})
	out, ok := g.Ring().PopBatch(done, make([]engine.Values, 0, 4))
	if !ok || len(out) != 2 {
		t.Fatalf("ring: %d records ok=%v, want 2 true", len(out), ok)
	}
	if got := string(out[0][0].([]byte)); got != "rec0" {
		t.Fatalf("payload %q, want rec0", got)
	}
}

// TestFreshClientInheritsPlan: a client id first seen while the gate is
// shedding must start at the plan-wide fraction — client ids are
// client-chosen, so an admit-all first round per id would let id
// rotation bypass admission control entirely.
func TestFreshClientInheritsPlan(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	control := &scriptedControl{}
	control.set(twoStageSnap(3, 2, 1, 2)) // starved grant: sheds nearly everything
	g := NewGate(GateConfig{
		Tmax: 1.5, MaxSlots: 16, Control: control,
		RingCapacity: 1 << 12, ReplanEvery: time.Second, Headroom: -1, Now: clock,
	})
	// Establish a shedding plan with one known client.
	seed := g.Client("seed", 1, 0, 0)
	for i := 0; i < 100; i++ {
		seed.Offer(engine.Values{[]byte("r")})
	}
	now = now.Add(time.Second)
	g.Replan()
	if f := g.Stats().AdmitFraction; f >= 1 {
		t.Fatalf("setup: admit fraction %.2f, want shedding", f)
	}
	// A brand-new id must not get a free admit-all round.
	fresh := g.Client("rotated-id", 1, 0, 0)
	admitted := 0
	for i := 0; i < 1000; i++ {
		if v := fresh.Offer(engine.Values{[]byte("r")}); v.Admitted {
			admitted++
		}
	}
	frac := g.Stats().AdmitFraction
	if float64(admitted) > float64(1000)*frac*1.5+10 {
		t.Fatalf("fresh client admitted %d of 1000 under plan fraction %.3f — id rotation bypasses the shed", admitted, frac)
	}
}

// TestHTTPNDJSONWithCharset: the NDJSON branch must match the media type,
// parameters and all — 'application/x-ndjson; charset=utf-8' is a batch,
// not one concatenated record.
func TestHTTPNDJSONWithCharset(t *testing.T) {
	g := NewGate(GateConfig{RingCapacity: 64})
	defer g.Close()
	srv := httptest.NewServer(Handler(g, ListenerConfig{}))
	defer srv.Close()
	req, err := http.NewRequest("POST", srv.URL+"/ingest", strings.NewReader("a\nb\nc\n"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(ClientIDHeader, "batcher")
	req.Header.Set("Content-Type", "application/x-ndjson; charset=utf-8")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 202 || !strings.Contains(string(body), `"admitted":3`) {
		t.Fatalf("charset-parameterized NDJSON: %d %s, want 202 with 3 admitted", resp.StatusCode, body)
	}
	if n := g.Ring().Len(); n != 3 {
		t.Fatalf("ring holds %d records, want 3 (one per line)", n)
	}
}
