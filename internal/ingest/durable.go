// Durable mode: the gate's at-least-once contract across process death.
// With a WAL attached, Offer appends each admitted record to the log
// *before* returning the admitted verdict — the listener's ACK (HTTP 2xx
// / TCP ACK) therefore implies the record survives kill -9. On boot,
// AttachWAL reconciles the log against its compacted ack watermark and
// Replay re-injects every possibly-unprocessed record through the normal
// ring → NetworkSpout path; the completion callbacks of the acked spout
// path advance a wal.Tracker whose contiguous watermark is periodically
// appended back to the log and drives segment retention.
//
// Sequence spaces across lives: seqs are assigned by the counted ring
// push, anchored at the recovered watermark W — replayed records take
// W+1.. in log order, new admissions continue after them. A crash window
// can leave gaps in the *logged* seqs (ring push and WAL append are not
// atomic), so a replayed record's new seq can be below its original one
// and a fresh admission can reuse an orphaned seq. Both skews point the
// same safe direction: a watermark only ever covers frames whose payload
// completed processing in some life, so compaction never drops an
// unprocessed record and recovery errs toward duplicate replay — the
// documented at-least-once window — never loss.

package ingest

import (
	"errors"
	"fmt"
	"time"

	"github.com/drs-repro/drs/internal/engine"
	"github.com/drs-repro/drs/internal/wal"
)

// ErrNotDurable is returned by durable-only operations on a gate with no
// WAL attached.
var ErrNotDurable = errors.New("ingest: gate has no WAL attached")

// DurableSource adapts the gate's ring into an engine.AckBatchSource:
// each popped batch is registered with the completion tracker as a seq
// range (pops are FIFO, so counting pops reconstructs the pushed seqs)
// and the returned ack advances the WAL watermark when the engine
// finishes the batch. Single-consumer, like the ring it wraps.
type DurableSource struct {
	ring   *Ring
	tr     *wal.Tracker
	popped uint64 // consumer-side seq cursor; single consumer, no lock
}

// PopBatch implements engine.BatchSource (the non-acked drain).
func (s *DurableSource) PopBatch(done <-chan struct{}, buf []engine.Values) ([]engine.Values, bool) {
	return s.ring.PopBatch(done, buf)
}

// PopBatchAcked implements engine.AckBatchSource: the popped batch covers
// seqs (popped, popped+len] and the ack closure marks that range complete.
func (s *DurableSource) PopBatchAcked(done <-chan struct{}, buf []engine.Values) ([]engine.Values, func(), bool) {
	batch, ok := s.ring.PopBatch(done, buf)
	if !ok {
		return nil, nil, false
	}
	s.popped += uint64(len(batch))
	return batch, s.tr.Deliver(s.popped), true
}

// PopBatchTraced implements engine.TracedBatchSource: PopBatchAcked with
// each payload's trace id alongside, so durable ingest and tracing
// compose — the watermark ack and the trace context ride the same pop.
func (s *DurableSource) PopBatchTraced(done <-chan struct{}, buf []engine.Values, ids []uint64) ([]engine.Values, []uint64, func(), bool) {
	batch, traces, ok := s.ring.popBatch(done, buf, ids)
	if !ok {
		return nil, nil, nil, false
	}
	s.popped += uint64(len(batch))
	return batch, traces, s.tr.Deliver(s.popped), true
}

// AttachWAL puts the gate in durable mode: admission seqs continue from
// the log's recovered ack watermark, Offer appends before acknowledging,
// and the log's unacked records are staged for Replay. Call once, before
// Start and before any Offer; the caller retains ownership of the log
// (serve closes it after the final watermark sync).
func (g *Gate) AttachWAL(l *wal.Log) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.wal.Load() != nil {
		return errors.New("ingest: WAL already attached")
	}
	w := l.Watermark()
	g.tracker = wal.NewTracker(w)
	g.lastWatermark = w
	g.pendingReplay = l.Unacked()
	g.ring.setPushed(w)
	g.wal.Store(l)
	return nil
}

// Source returns the engine.BatchSource a NetworkSpout should drain: the
// acked durable source in durable mode, the bare ring otherwise. The
// durable source must be the one wired into the topology — watermarks
// only advance through its completion callbacks.
func (g *Gate) Source() engine.BatchSource {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.wal.Load() != nil {
		return &DurableSource{ring: g.ring, tr: g.tracker, popped: g.lastWatermark}
	}
	return g.ring
}

// Replay re-injects the recovered unacked records through the ring in log
// order, blocking while the ring is full (the spout must already be
// draining — call after the engine run starts, before listeners open so
// replayed and fresh traffic cannot interleave). It returns the number of
// records re-injected. Replayed records are already in the log and are
// not re-appended.
func (g *Gate) Replay() (int, error) {
	g.mu.Lock()
	pending := g.pendingReplay
	g.pendingReplay = nil
	g.mu.Unlock()
	for i, rec := range pending {
		v := engine.Values{rec.Payload}
		for {
			if _, _, ok := g.ring.tryPushSeq(v); ok {
				break
			}
			if g.closed.Load() {
				return i, ErrClosed
			}
			time.Sleep(time.Millisecond)
		}
	}
	g.replayed.Add(int64(len(pending)))
	return len(pending), nil
}

// SyncWatermark appends the tracker's current contiguous completion
// watermark to the log (if it advanced) and prunes segments it retires.
// The replanning loop calls it every round; drivers with their own
// cadence (virtual-time experiments, shutdown paths) call it directly.
func (g *Gate) SyncWatermark() error {
	l := g.wal.Load()
	if l == nil {
		return ErrNotDurable
	}
	g.mu.Lock()
	tr := g.tracker
	g.mu.Unlock()
	w := tr.Watermark()
	g.mu.Lock()
	advanced := w > g.lastWatermark
	if advanced {
		g.lastWatermark = w
	}
	g.mu.Unlock()
	if !advanced {
		return nil
	}
	if err := l.AppendWatermark(w); err != nil {
		return err
	}
	if _, err := l.Prune(w); err != nil {
		return fmt.Errorf("ingest: prune to %d: %w", w, err)
	}
	return nil
}

// Watermark reports the completion tracker's contiguous watermark (0 when
// not durable).
func (g *Gate) Watermark() uint64 {
	g.mu.Lock()
	tr := g.tracker
	g.mu.Unlock()
	if tr == nil {
		return 0
	}
	return tr.Watermark()
}

// recordBytes extracts the loggable record from a listener payload. The
// listeners produce single-field []byte payloads (valuesFor); durable
// mode requires that shape so the log can reconstruct the tuple on
// replay.
func recordBytes(v engine.Values) ([]byte, bool) {
	if len(v) != 1 {
		return nil, false
	}
	b, ok := v[0].([]byte)
	return b, ok
}
