package ingest

import (
	"runtime"
	"sync"
)

// The client registry is the one shared structure every request touches:
// a listener resolves its client id to a *Client before the zero-alloc
// Offer fast path even starts. A single map behind a single mutex caps
// the whole front door at one core the moment the id space gets large
// (the millions-of-users profile: ≥1e6 distinct token buckets), so the
// registry is sharded — FNV-1a over the id picks one of a power-of-two
// set of RWMutex-guarded maps sized to the core count. Lookups of
// existing clients take one shard's read lock; only first contact takes
// a write lock, and only on that shard. Replanning still serializes
// under the gate mutex and snapshots shard by shard — the slow path kept
// simple, the hot path spread across cores.

// fnvOffset64 and fnvPrime64 are the FNV-1a 64-bit parameters.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv1a hashes a client id without allocating.
func fnv1a(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// clientShard is one lock-striped slice of the registry.
type clientShard struct {
	mu      sync.RWMutex
	clients map[string]*Client
}

// clientMap is the sharded client registry.
type clientMap struct {
	shards []clientShard
	mask   uint64
}

// newClientMap sizes the registry at the next power of two above
// 4×GOMAXPROCS (at least 8, at most 512): enough stripes that
// simultaneous first-contact bursts rarely collide, few enough that a
// replan snapshot stays cheap.
func newClientMap() *clientMap {
	n := 4 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	if n > 512 {
		n = 512
	}
	size := 1
	for size < n {
		size <<= 1
	}
	m := &clientMap{shards: make([]clientShard, size), mask: uint64(size - 1)}
	for i := range m.shards {
		m.shards[i].clients = make(map[string]*Client)
	}
	return m
}

// shard picks the stripe owning id.
func (m *clientMap) shard(id string) *clientShard {
	return &m.shards[fnv1a(id)&m.mask]
}

// get returns the registered client, read-locking only its own shard.
func (m *clientMap) get(id string) (*Client, bool) {
	s := m.shard(id)
	s.mu.RLock()
	c, ok := s.clients[id]
	s.mu.RUnlock()
	return c, ok
}

// getOrCreate returns the registered client or installs the one make
// builds. The double-checked write lock means a racing pair of first
// contacts agree on a single *Client; make runs outside any gate-wide
// lock, so it must not touch other shards.
func (m *clientMap) getOrCreate(id string, make func() *Client) *Client {
	if c, ok := m.get(id); ok {
		return c
	}
	s := m.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.clients[id]; ok {
		return c
	}
	c := make()
	s.clients[id] = c
	return c
}

// snapshot appends every registered client to dst (shard order; callers
// needing determinism sort downstream, which AdmitPermilles does).
func (m *clientMap) snapshot(dst []*Client) []*Client {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for _, c := range s.clients {
			dst = append(dst, c)
		}
		s.mu.RUnlock()
	}
	return dst
}

// size counts registered clients across shards.
func (m *clientMap) size() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		n += len(s.clients)
		s.mu.RUnlock()
	}
	return n
}
