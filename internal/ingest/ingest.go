// Package ingest is the network front door of the stack: it bridges
// external clients to engine spouts and makes the DRS model the admission
// policy. The paper's control loop (§IV) assumes the measured arrival
// rate λ is the *offered* load; the moment an overloaded front end drops
// tuples that assumption breaks, so this package measures both sides of
// the drop — offered and admitted — and feeds the split back into the
// measurer, letting the Supervisor provision against true demand while
// the Gate sheds only what the current grant provably cannot hold.
//
// The pieces, client to spout:
//
//   - Listeners (ServeTCP, Handler): length-prefixed TCP frames and HTTP
//     POST bodies decode client records into tuple payloads. Refusals are
//     explicit backpressure — HTTP 429 or a TCP NACK, both carrying a
//     retry-after hint — never silent drops or blocked connections.
//   - Gate: per-client token buckets (contract enforcement) in front of a
//     cluster-level admission controller (capacity protection). Every
//     replanning round the gate reads the Supervisor's latest snapshot
//     and runs PlanAdmission: the largest demand scaling whose Program
//     (6) allocation still fits the granted Kmax is admitted; the excess
//     is shed lowest-weight-clients-first by deterministic thinning. The
//     Appendix-B guard (ScaleOutViable) tells a transient shed — machines
//     are coming — from a persistent one at the provider cap.
//   - Ring: the bounded, batch-aware MPSC hand-off into the engine,
//     drained by engine.NetworkSpout via SpoutContext.EmitBatch. A full
//     ring is backpressure, not memory growth.
//   - SupervisedTarget: wraps the supervisor's Target so every interval
//     report carries OfferedArrivals = admitted + shed, the measurement
//     that closes the loop (metrics.Measurer smooths the two series
//     independently; loop.Supervisor scales decisions to offered load).
//
// The admit fast path — Client.Offer — is two atomic counters, one token
// bucket and one bounded-ring push: zero allocations in steady state.
package ingest

import (
	"errors"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/engine"
	"github.com/drs-repro/drs/internal/obs"
	"github.com/drs-repro/drs/internal/wal"
)

// ErrClosed is returned by Gate operations after Close.
var ErrClosed = errors.New("ingest: gate closed")

// ShedReason classifies why an offered record was refused.
type ShedReason int

const (
	// ShedNone: the record was admitted.
	ShedNone ShedReason = iota
	// ShedRateLimit: the client exceeded its own token-bucket rate — a
	// per-client contract refusal, not cluster overload. Excluded from the
	// offered-load provisioning signal.
	ShedRateLimit
	// ShedOverload: the cluster admission controller shed the record —
	// the DRS model says the current grant cannot hold the offered demand
	// under Tmax.
	ShedOverload
	// ShedBacklog: the hand-off ring was full — instantaneous backpressure
	// (e.g. during a rebalance pause) even when the plan admits.
	ShedBacklog
)

// String names the reason.
func (r ShedReason) String() string {
	switch r {
	case ShedNone:
		return "admitted"
	case ShedRateLimit:
		return "rate-limit"
	case ShedOverload:
		return "overload"
	case ShedBacklog:
		return "backlog"
	default:
		return "unknown"
	}
}

// Verdict is the outcome of one offered record.
type Verdict struct {
	// Admitted reports whether the record entered the hand-off ring.
	Admitted bool
	// Reason classifies a refusal (ShedNone when admitted).
	Reason ShedReason
	// RetryAfter is the backpressure hint returned to the client
	// (Retry-After header / NACK payload).
	RetryAfter time.Duration
}

// ControlSource exposes the supervisor state the admission policy
// consults; *loop.Supervisor implements it.
type ControlSource interface {
	// LastSnapshot returns the most recent control snapshot and whether
	// one exists yet.
	LastSnapshot() (core.Snapshot, bool)
}

// GateConfig parameterizes a Gate.
type GateConfig struct {
	// Tmax is the latency target in seconds the admission controller
	// defends (required for model shedding; 0 disables it, leaving only
	// token buckets and ring backpressure).
	Tmax float64
	// Headroom tightens the planning target to Tmax·(1−Headroom), giving
	// the admitted traffic a noise margin below the hard limit (default
	// 0.1; negative disables).
	Headroom float64
	// MaxSlots is the provider cap in executor slots, for the Appendix-B
	// scale-out-viability verdict (0 = uncapped).
	MaxSlots int
	// Control is the supervisor the plan reads (optional; settable later
	// with SetControl; without one the gate admits everything).
	Control ControlSource
	// RingCapacity bounds the hand-off ring (default 4096).
	RingCapacity int
	// ReplanEvery is the admission replanning cadence (default 1s).
	ReplanEvery time.Duration
	// RetryAfter is the backpressure hint for overload/backlog sheds
	// (default ReplanEvery — the earliest the verdict can change).
	RetryAfter time.Duration
	// Now overrides the clock (tests); nil uses time.Now.
	Now func() time.Time
	// Name labels this gate's records in the decision log (default
	// "gate").
	Name string
	// DecisionLog, when set, receives one shed-plan record per Replan
	// round: offered rate, sustainable rate, admit fraction and the
	// Appendix-B scale-out verdict. Replan runs off the admit path, so
	// the 0-alloc Offer fast path is untouched.
	DecisionLog *obs.Log
	// Tracer, when set, samples admitted records at the ring push: a
	// record whose admission seq wins the tracer's deterministic hash
	// carries that seq as its trace id through the ring, the spout and
	// every hop to the final ack (see engine.TracedSpoutContext). A
	// sampled admit emits a gate span (and, in durable mode, a WAL span
	// covering the append); a sampled-out admit pays one hash — no clock
	// read, no allocation.
	Tracer *obs.Tracer
}

// GateStats is a point-in-time reading of the gate's cumulative counters.
type GateStats struct {
	// Offered counts every record clients presented; Admitted those that
	// entered the ring.
	Offered, Admitted int64
	// ShedRateLimit, ShedOverload and ShedBacklog split the refusals by
	// reason.
	ShedRateLimit, ShedOverload, ShedBacklog int64
	// AdmitFraction and SustainableRate echo the current plan.
	AdmitFraction, SustainableRate float64
	// ScaleOutViable echoes the current Appendix-B guard verdict.
	ScaleOutViable bool
	// Replayed counts records re-injected from the WAL on boot (durable
	// mode only).
	Replayed int64
	// Watermark is the completion tracker's contiguous ack watermark
	// (durable mode only; 0 otherwise).
	Watermark uint64
}

// Gate is the admission controller: clients offer records, the gate
// applies per-client token buckets and the cluster-level plan, and
// admitted payloads flow through the bounded ring to the NetworkSpout.
// All methods are safe for concurrent use; Offer is the zero-alloc fast
// path.
type Gate struct {
	cfg  GateConfig
	ring *Ring

	// mu serializes the slow path: replanning rounds, control rewiring
	// and lifecycle. Client registration and lookup never take it — the
	// sharded registry has its own per-stripe locks (see shard.go).
	mu      sync.Mutex
	clients *clientMap
	control ControlSource
	planned struct {
		lastAt time.Time
	}

	// Durable mode (see durable.go): a non-nil wal means Offer appends
	// each admitted record to the log before acknowledging it, tracker
	// turns engine batch completions into the contiguous ack watermark,
	// and pendingReplay holds recovered unacked records until Replay.
	// wal is an atomic pointer because Offer reads it lock-free; the
	// remaining durable fields are guarded by mu.
	wal           atomic.Pointer[wal.Log]
	tracker       *wal.Tracker
	lastWatermark uint64
	pendingReplay []wal.Record
	replayed      atomic.Int64

	offered       atomic.Int64
	admitted      atomic.Int64
	shedRateLimit atomic.Int64
	shedOverload  atomic.Int64
	shedBacklog   atomic.Int64
	// intervalShed accumulates overload+backlog sheds for DrainShed — the
	// offered-vs-admitted probe feeding interval reports.
	intervalShed atomic.Int64

	admitFraction   atomicFloat
	sustainableRate atomicFloat
	scaleOutViable  atomic.Bool

	closed  atomic.Bool
	stopRun chan struct{}
	runDone chan struct{}
}

// atomicFloat is a float64 behind an atomic.Uint64 (bits).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }

// NewGate validates the config and builds a gate.
func NewGate(cfg GateConfig) *Gate {
	if cfg.RingCapacity <= 0 {
		cfg.RingCapacity = 4096
	}
	switch {
	case cfg.Headroom == 0:
		cfg.Headroom = 0.1
	case cfg.Headroom < 0:
		cfg.Headroom = 0
	case cfg.Headroom > 0.9:
		cfg.Headroom = 0.9
	}
	if cfg.ReplanEvery <= 0 {
		cfg.ReplanEvery = time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = cfg.ReplanEvery
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Name == "" {
		cfg.Name = "gate"
	}
	g := &Gate{
		cfg:     cfg,
		ring:    NewRing(cfg.RingCapacity),
		clients: newClientMap(),
		control: cfg.Control,
	}
	g.ring.tracer = cfg.Tracer
	g.admitFraction.store(1)
	g.scaleOutViable.Store(true)
	return g
}

// Ring exposes the hand-off ring — the engine.BatchSource a NetworkSpout
// drains.
func (g *Gate) Ring() *Ring { return g.ring }

// SetControl installs (or replaces) the supervisor the plan reads. The
// gate and the supervisor reference each other — the supervisor's target
// is wrapped by the gate's probe, the gate reads the supervisor's
// snapshots — so one of the two is always wired after construction.
func (g *Gate) SetControl(c ControlSource) {
	g.mu.Lock()
	g.control = c
	g.mu.Unlock()
}

// Client registers (or returns) the client with the given id. weight
// orders shedding — higher weights shed last; equal offered demand at
// equal weight sheds alphabetically-later ids first (deterministic).
// rate/burst parameterize the client's token bucket (rate <= 0 disables
// it). Parameters of an existing client are left unchanged. Lookup is
// shard-local — concurrent resolution of distinct ids never contends on
// a gate-wide lock.
func (g *Gate) Client(id string, weight, rate float64, burst int) *Client {
	return g.clients.getOrCreate(id, func() *Client {
		w := weight
		if w <= 0 {
			w = 1
		}
		c := &Client{g: g, id: id, weight: w, bucket: newTokenBucket(rate, burst)}
		// A fresh client starts at the plan-wide fraction, not admit-all:
		// client ids are client-chosen (headers, hello frames), so a free
		// first round per id would let id rotation bypass overload shedding
		// entirely until the next replan.
		c.admitPermille.Store(uint32(g.admitFraction.load() * permilleScale))
		return c
	})
}

// Start launches the background replanning loop. Stop it with Close.
func (g *Gate) Start() error {
	if g.closed.Load() {
		return ErrClosed
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.stopRun != nil {
		return errors.New("ingest: gate already started")
	}
	g.stopRun = make(chan struct{})
	g.runDone = make(chan struct{})
	go g.run(g.stopRun, g.runDone)
	return nil
}

func (g *Gate) run(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	tick := time.NewTicker(g.cfg.ReplanEvery)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			g.Replan()
		}
	}
}

// Close shuts the front door: the replanning loop stops, new offers are
// refused, and the hand-off ring closes — the NetworkSpout drains what
// was already admitted and then exits, so an orderly shutdown (Close the
// gate, then Stop the engine) loses no admitted tuple.
func (g *Gate) Close() {
	if !g.closed.CompareAndSwap(false, true) {
		return
	}
	g.mu.Lock()
	stop, done := g.stopRun, g.runDone
	g.stopRun, g.runDone = nil, nil
	g.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	g.ring.Close()
}

// permilleScale is the resolution of the per-client thinning fraction.
const permilleScale = 1000

// Replan recomputes the cluster-level admission plan from the supervisor's
// latest snapshot and redistributes the admitted budget across clients by
// weight. Called by the Start loop every ReplanEvery; tests and
// virtual-time drivers call it directly.
func (g *Gate) Replan() {
	now := g.cfg.Now()
	g.mu.Lock()
	control := g.control
	list := g.clients.snapshot(make([]*Client, 0, g.clients.size()))
	last := g.planned.lastAt
	g.planned.lastAt = now

	// Per-client offered rates over the round just ended. Rate-limited
	// refusals are excluded: a client hammering past its own contract is
	// not demand the cluster should provision (or budget-share) for.
	dt := now.Sub(last).Seconds()
	if last.IsZero() || dt <= 0 {
		dt = g.cfg.ReplanEvery.Seconds()
	}
	rates := make([]float64, len(list))
	provisioningRate := 0.0
	for i, c := range list {
		rates[i] = c.drainOfferedRate(dt)
		provisioningRate += rates[i]
	}
	g.mu.Unlock()

	var plan Plan
	plan.AdmitFraction, plan.ScaleOutViable = 1, true
	plan.SustainableRate = provisioningRate
	if control != nil && g.cfg.Tmax > 0 {
		if snap, ok := control.LastSnapshot(); ok {
			plan = PlanAdmission(snap, g.cfg.Tmax*(1-g.cfg.Headroom), g.cfg.MaxSlots, provisioningRate)
		}
	}
	g.admitFraction.store(plan.AdmitFraction)
	g.sustainableRate.store(plan.SustainableRate)
	g.scaleOutViable.Store(plan.ScaleOutViable)
	if g.cfg.DecisionLog != nil {
		g.cfg.DecisionLog.Emit(&obs.Record{
			Kind: obs.KindShedPlan, Tenant: g.cfg.Name,
			Fraction: plan.AdmitFraction, Rate: plan.SustainableRate,
			Lambda0: provisioningRate, Flag: plan.ScaleOutViable,
		})
	}

	weights := make([]float64, len(list))
	ids := make([]string, len(list))
	for i, c := range list {
		weights[i], ids[i] = c.weight, c.id
	}
	for i, p := range AdmitPermilles(plan, weights, ids, rates) {
		list[i].admitPermille.Store(p)
	}

	// Durable mode piggybacks watermark compaction on the replan cadence:
	// one watermark frame and a retention sweep per round, off the admit
	// fast path. Errors surface through the next SyncWatermark caller.
	if g.wal.Load() != nil {
		_ = g.SyncWatermark()
	}
}

// AdmitPermilles distributes one plan's sustainable budget across
// clients: the budget is filled highest-weight-first (ties break by id
// for determinism), so the marginal — partially admitted — client and
// everyone below it are the cheapest traffic. Idle clients get the
// plan-wide fraction: their next burst should see the cluster verdict,
// not a stale free pass. Returned values are thinning fractions in
// permille, matching the offered rates' order. Exported so virtual-time
// drivers (the overload experiment) run the exact distribution the live
// gate runs.
func AdmitPermilles(plan Plan, weights []float64, ids []string, rates []float64) []uint32 {
	out := make([]uint32, len(rates))
	if plan.AdmitFraction >= 1 {
		for i := range out {
			out[i] = permilleScale
		}
		return out
	}
	order := make([]int, len(rates))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if weights[ia] != weights[ib] {
			return weights[ia] > weights[ib]
		}
		return ids[ia] < ids[ib]
	})
	budget := plan.SustainableRate
	for _, i := range order {
		want := rates[i]
		if want <= 0 {
			out[i] = uint32(plan.AdmitFraction * permilleScale)
			continue
		}
		give := want
		if give > budget {
			give = budget
		}
		budget -= give
		out[i] = uint32(give / want * permilleScale)
	}
	return out
}

// ThinAdmit is the deterministic thinning verdict: of every thousand
// sequence numbers, admit ⌊n·p/1000⌋ − ⌊(n−1)·p/1000⌋ — the exact
// long-run fraction with no RNG and no bursts of bad luck for a steady
// client. Shared by the live fast path and the virtual-time experiment.
func ThinAdmit(seq uint64, permille uint32) bool {
	return seq*uint64(permille)/permilleScale != (seq-1)*uint64(permille)/permilleScale
}

// Stats reads the cumulative counters and the current plan.
func (g *Gate) Stats() GateStats {
	return GateStats{
		Offered:         g.offered.Load(),
		Admitted:        g.admitted.Load(),
		ShedRateLimit:   g.shedRateLimit.Load(),
		ShedOverload:    g.shedOverload.Load(),
		ShedBacklog:     g.shedBacklog.Load(),
		AdmitFraction:   g.admitFraction.load(),
		SustainableRate: g.sustainableRate.load(),
		ScaleOutViable:  g.scaleOutViable.Load(),
		Replayed:        g.replayed.Load(),
		Watermark:       g.Watermark(),
	}
}

// DrainShed atomically reads and resets the interval shed counter —
// overload and backlog refusals since the previous drain, the part of
// offered demand that never reached a spout. SupervisedTarget adds it to
// the engine's admitted count to report OfferedArrivals.
func (g *Gate) DrainShed() int64 { return g.intervalShed.Swap(0) }

// Client is one registered traffic source: an id, a shedding weight, a
// token bucket and the thinning state the cluster plan drives.
type Client struct {
	g      *Gate
	id     string
	weight float64
	bucket tokenBucket

	seq           atomic.Uint64
	admitPermille atomic.Uint32

	offered     atomic.Int64
	admitted    atomic.Int64
	shed        atomic.Int64
	rlShed      atomic.Int64
	lastOffered int64 // replan-loop snapshot (guarded by g.mu)
}

// ID returns the client's identifier.
func (c *Client) ID() string { return c.id }

// Weight returns the client's shedding weight.
func (c *Client) Weight() float64 { return c.weight }

// Offered reports how many records the client has presented in total.
func (c *Client) Offered() int64 { return c.offered.Load() }

// Admitted reports how many of the client's records entered the ring.
func (c *Client) Admitted() int64 { return c.admitted.Load() }

// Shed reports how many of the client's records were refused.
func (c *Client) Shed() int64 { return c.shed.Load() }

// drainOfferedRate reports the client's offered rate — net of its own
// rate-limit refusals — since the last replan round. Called under g.mu by
// the replan loop only.
func (c *Client) drainOfferedRate(dt float64) float64 {
	cur := c.offered.Load() - c.rlShed.Load()
	rate := float64(cur-c.lastOffered) / dt
	c.lastOffered = cur
	return rate
}

// Offer is the admit fast path — decode → admit → ring, zero allocations:
// the client's token bucket, the cluster thinning verdict and a bounded
// ring push. The payload v must not be mutated by the caller afterwards;
// it becomes the tuple the topology processes.
func (c *Client) Offer(v engine.Values) Verdict {
	g := c.g
	c.offered.Add(1)
	g.offered.Add(1)
	if g.closed.Load() {
		c.shed.Add(1)
		g.shedBacklog.Add(1)
		return Verdict{Reason: ShedBacklog, RetryAfter: g.cfg.RetryAfter}
	}
	if c.bucket.rate > 0 { // skip the clock read entirely when unlimited
		if ok, retry := c.bucket.take(g.cfg.Now().UnixNano()); !ok {
			c.shed.Add(1)
			c.rlShed.Add(1)
			g.shedRateLimit.Add(1)
			return Verdict{Reason: ShedRateLimit, RetryAfter: retry}
		}
	}
	if p := c.admitPermille.Load(); p < permilleScale {
		if !ThinAdmit(c.seq.Add(1), p) {
			c.shed.Add(1)
			g.shedOverload.Add(1)
			g.intervalShed.Add(1)
			return Verdict{Reason: ShedOverload, RetryAfter: g.cfg.RetryAfter}
		}
	}
	if l := g.wal.Load(); l != nil {
		// Durable admit: the WAL append must complete before the admitted
		// verdict — the listener's ACK rides on it. The payload shape is
		// checked before the push so a refusal leaves no orphan in the ring.
		rec, ok := recordBytes(v)
		if !ok {
			c.shed.Add(1)
			g.shedBacklog.Add(1)
			g.intervalShed.Add(1)
			return Verdict{Reason: ShedBacklog, RetryAfter: g.cfg.RetryAfter}
		}
		seq, trace, pushed := g.ring.tryPushSeq(v)
		if !pushed {
			c.shed.Add(1)
			g.shedBacklog.Add(1)
			g.intervalShed.Add(1)
			return Verdict{Reason: ShedBacklog, RetryAfter: g.cfg.RetryAfter}
		}
		// Sampled admits bracket the WAL append with wall stamps; the
		// sampled-out path never reads a clock for tracing.
		var walStart int64
		if trace != 0 {
			walStart = g.cfg.Now().UnixNano()
		}
		if err := l.Append(seq, rec); err != nil {
			// The record is in the ring and may process, but the client is
			// NOT acknowledged — on its retry at-least-once may duplicate,
			// never lose.
			c.shed.Add(1)
			g.shedBacklog.Add(1)
			g.intervalShed.Add(1)
			return Verdict{Reason: ShedBacklog, RetryAfter: g.cfg.RetryAfter}
		}
		if trace != 0 {
			tr := g.cfg.Tracer
			span := obs.SpanRecord{Trace: trace, Kind: obs.SpanGate, Tenant: c.id, StartNS: walStart}
			tr.EmitSpan(&span)
			span = obs.SpanRecord{Trace: trace, Kind: obs.SpanWAL, Tenant: c.id,
				StartNS: walStart, DurNS: g.cfg.Now().UnixNano() - walStart}
			tr.EmitSpan(&span)
		}
		c.admitted.Add(1)
		g.admitted.Add(1)
		return Verdict{Admitted: true}
	}
	_, trace, pushed := g.ring.tryPushSeq(v)
	if !pushed {
		c.shed.Add(1)
		g.shedBacklog.Add(1)
		g.intervalShed.Add(1)
		return Verdict{Reason: ShedBacklog, RetryAfter: g.cfg.RetryAfter}
	}
	if trace != 0 {
		// The gate span is the admit mark: zero duration, stamped at the
		// moment the record entered the ring, labeled with the client id so
		// the assembler can attribute the whole trace to a tenant.
		span := obs.SpanRecord{Trace: trace, Kind: obs.SpanGate, Tenant: c.id,
			StartNS: g.cfg.Now().UnixNano()}
		g.cfg.Tracer.EmitSpan(&span)
	}
	c.admitted.Add(1)
	g.admitted.Add(1)
	return Verdict{Admitted: true}
}
