package ingest

import (
	"fmt"
	"testing"
	"time"

	"github.com/drs-repro/drs/internal/engine"
	"github.com/drs-repro/drs/internal/wal"
)

// durableGate builds a gate with a WAL attached over dir.
func durableGate(t *testing.T, dir string, ring int) (*Gate, *wal.Log, wal.Recovered) {
	t.Helper()
	l, rec, err := wal.Open(wal.Options{Dir: dir, SegmentBytes: 1 << 20, SyncEvery: -1})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	g := NewGate(GateConfig{RingCapacity: ring})
	if err := g.AttachWAL(l); err != nil {
		t.Fatalf("AttachWAL: %v", err)
	}
	return g, l, rec
}

// TestDurableAdmitLogsBeforeAck: every admitted offer is in the log by
// the time the verdict returns — reopening the log recovers exactly the
// admitted records, in admission order.
func TestDurableAdmitLogsBeforeAck(t *testing.T) {
	dir := t.TempDir()
	g, l, _ := durableGate(t, dir, 64)
	c := g.Client("alice", 1, 0, 0)
	const n = 40
	for i := 0; i < n; i++ {
		v := g.valuesForTest(fmt.Sprintf("rec-%02d", i))
		if verdict := c.Offer(v); !verdict.Admitted {
			t.Fatalf("offer %d refused: %+v", i, verdict)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("wal close: %v", err)
	}

	// "Restart": a second log over the same dir must hand back all n
	// records as unacked (nothing completed — the ring was never drained).
	l2, rec, err := wal.Open(wal.Options{Dir: dir, SegmentBytes: 1 << 20, SyncEvery: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if rec.Records != n || rec.Watermark != 0 {
		t.Fatalf("recovered %d records watermark %d, want %d/0", rec.Records, rec.Watermark, n)
	}
	un := l2.Unacked()
	if len(un) != n {
		t.Fatalf("unacked %d, want %d", len(un), n)
	}
	for i, r := range un {
		if string(r.Payload) != fmt.Sprintf("rec-%02d", i) {
			t.Fatalf("unacked[%d] payload %q", i, r.Payload)
		}
	}
}

// valuesForTest builds the single-field []byte payload shape the durable
// gate requires (mirrors the listeners' valuesFor).
func (g *Gate) valuesForTest(s string) engine.Values { return engine.Values{[]byte(s)} }

// TestDurableKillReplayArc is the in-package kill -9 arc: life 1 admits
// and ACKs records that are never processed (no consumer), dies; life 2
// recovers, replays through the acked source, completes everything,
// compacts; life 3 finds an empty unacked set. Zero admitted loss, books
// balance.
func TestDurableKillReplayArc(t *testing.T) {
	dir := t.TempDir()

	// Life 1: admit 30 records, process (ack) only the first 10, sync the
	// watermark, then die with 20 admitted-and-ACKed records unprocessed.
	g1, l1, _ := durableGate(t, dir, 64)
	c1 := g1.Client("alice", 1, 0, 0)
	const total, processed = 30, 10
	for i := 0; i < total; i++ {
		if v := c1.Offer(g1.valuesForTest(fmt.Sprintf("r-%02d", i))); !v.Admitted {
			t.Fatalf("life1 offer %d refused", i)
		}
	}
	src1 := g1.Source().(*DurableSource)
	done := make(chan struct{})
	buf := make([]engine.Values, 0, processed)
	batch, ack, ok := src1.PopBatchAcked(done, buf)
	if !ok || len(batch) != processed {
		t.Fatalf("life1 pop: ok=%v len=%d", ok, len(batch))
	}
	ack()
	if w := g1.Watermark(); w != processed {
		t.Fatalf("life1 watermark = %d, want %d", w, processed)
	}
	if err := g1.SyncWatermark(); err != nil {
		t.Fatalf("life1 SyncWatermark: %v", err)
	}
	// kill -9: no gate Close, no drain — just the log handle dropped.
	// (Close here only flushes what write(2) already made durable.)
	if err := l1.Close(); err != nil {
		t.Fatalf("life1 wal close: %v", err)
	}

	// Life 2: recover, replay, process everything, compact.
	g2, l2, rec := durableGate(t, dir, 64)
	if rec.Watermark != processed {
		t.Fatalf("life2 recovered watermark %d, want %d", rec.Watermark, processed)
	}
	nReplay, err := g2.Replay()
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if nReplay != total-processed {
		t.Fatalf("replayed %d, want %d", nReplay, total-processed)
	}
	if got := g2.Stats().Replayed; got != int64(nReplay) {
		t.Fatalf("Stats.Replayed = %d, want %d", got, nReplay)
	}
	// New traffic lands after the replayed backlog.
	c2 := g2.Client("alice", 1, 0, 0)
	if v := c2.Offer(g2.valuesForTest("fresh-0")); !v.Admitted {
		t.Fatal("life2 fresh offer refused")
	}
	src2 := g2.Source().(*DurableSource)
	seen := []string{}
	for len(seen) < nReplay+1 {
		batch, ack, ok := src2.PopBatchAcked(done, make([]engine.Values, 0, 64))
		if !ok {
			t.Fatal("life2 source closed early")
		}
		for _, v := range batch {
			seen = append(seen, string(v[0].([]byte)))
		}
		ack()
	}
	// FIFO: the replayed records (in log order) precede the fresh one.
	for i := 0; i < nReplay; i++ {
		want := fmt.Sprintf("r-%02d", processed+i)
		if seen[i] != want {
			t.Fatalf("replayed[%d] = %q, want %q", i, seen[i], want)
		}
	}
	if seen[nReplay] != "fresh-0" {
		t.Fatalf("fresh record = %q", seen[nReplay])
	}
	wantW := uint64(total + 1) // 30 originals + 1 fresh, all complete
	if w := g2.Watermark(); w != wantW {
		t.Fatalf("life2 watermark = %d, want %d", w, wantW)
	}
	if err := g2.SyncWatermark(); err != nil {
		t.Fatalf("life2 SyncWatermark: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("life2 wal close: %v", err)
	}

	// Life 3: nothing to replay.
	l3, rec3, err := wal.Open(wal.Options{Dir: dir, SegmentBytes: 1 << 20, SyncEvery: -1})
	if err != nil {
		t.Fatalf("life3 open: %v", err)
	}
	defer l3.Close()
	if rec3.Watermark != wantW {
		t.Fatalf("life3 watermark %d, want %d", rec3.Watermark, wantW)
	}
	if un := l3.Unacked(); len(un) != 0 {
		t.Fatalf("life3 unacked = %d records, want 0", len(un))
	}
}

// TestDurableLiveEngineArc drives the durable gate through a real
// topology: offers ACK only after the WAL append, the NetworkSpout uses
// the acked path, and the watermark converges to the admitted count.
func TestDurableLiveEngineArc(t *testing.T) {
	dir := t.TempDir()
	g, l, _ := durableGate(t, dir, 1024)
	topo, err := engine.NewTopology().
		Spout("net", 1, func(int) engine.Spout {
			return &engine.NetworkSpout{Source: g.Source(), MaxBatch: 32}
		}).
		Bolt("sink", 2, func(int) engine.Bolt {
			return engine.BoltFunc(func(engine.Tuple, engine.Emit) error { return nil })
		}).
		Shuffle("net", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run, err := topo.Start(engine.RunConfig{Alloc: map[string]int{"sink": 2}})
	if err != nil {
		t.Fatal(err)
	}
	c := g.Client("alice", 1, 0, 0)
	const n = 2000
	admitted := 0
	for i := 0; i < n; i++ {
		if v := c.Offer(g.valuesForTest(fmt.Sprintf("live-%04d", i))); v.Admitted {
			admitted++
		} else {
			i-- // bounded ring backpressure: retry until admitted
			time.Sleep(50 * time.Microsecond)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for g.Watermark() != uint64(admitted) {
		if time.Now().After(deadline) {
			t.Fatalf("watermark stuck at %d, admitted %d", g.Watermark(), admitted)
		}
		time.Sleep(time.Millisecond)
	}
	if err := g.SyncWatermark(); err != nil {
		t.Fatalf("SyncWatermark: %v", err)
	}
	g.Close()
	if err := run.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A restart after a clean converged run replays nothing.
	l2, rec, err := wal.Open(wal.Options{Dir: dir, SegmentBytes: 1 << 20, SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.Watermark != uint64(admitted) {
		t.Fatalf("recovered watermark %d, want %d", rec.Watermark, admitted)
	}
	if un := l2.Unacked(); len(un) != 0 {
		t.Fatalf("unacked after clean run = %d", len(un))
	}
}
