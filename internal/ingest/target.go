package ingest

import (
	"time"

	"github.com/drs-repro/drs/internal/loop"
	"github.com/drs-repro/drs/internal/metrics"
)

// SupervisedTarget is the ingest-side probe: it wraps the supervisor's
// Target so every interval report carries the offered-vs-admitted split —
// OfferedArrivals = the engine's admitted arrivals plus the gate's
// overload/backlog sheds over the same interval. This is what re-closes
// the paper's §IV loop under shedding: the measured λ the Supervisor
// provisions against stays the *offered* load even while the front door
// is dropping the excess, so grants grow toward true demand and the gate
// un-sheds as they arrive.
type SupervisedTarget struct {
	// Inner is the wrapped target (required) — loop.EngineTarget(run) for
	// the live engine.
	Inner loop.Target
	// Gate is the admission gate whose sheds complete the offered count
	// (required).
	Gate *Gate
}

// DrainInterval drains the inner target and stamps the offered count.
func (t SupervisedTarget) DrainInterval() metrics.IntervalReport {
	rep := t.Inner.DrainInterval()
	rep.OfferedArrivals = rep.ExternalArrivals + t.Gate.DrainShed()
	return rep
}

// Allocation delegates to the inner target.
func (t SupervisedTarget) Allocation() map[string]int { return t.Inner.Allocation() }

// Rebalance delegates to the inner target.
func (t SupervisedTarget) Rebalance(alloc map[string]int, pause time.Duration) error {
	return t.Inner.Rebalance(alloc, pause)
}
