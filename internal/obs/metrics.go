package obs

import (
	"math"
	"net/http"
	"slices"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// The metrics half of the package is a hand-rolled Prometheus text
// exposition (format 0.0.4) with no client library dependency. Two series
// shapes cover the stack: func-backed counters/gauges that read the
// atomic counters subsystems already keep (zero bookkeeping on hot
// paths), and fixed-bound histograms whose Observe is a few atomic adds.
// Label sets are pre-registered strings, so scraping formats no labels
// and the exposition is byte-stable modulo the counter values.

// MetricType is the Prometheus family type of a registered metric.
type MetricType uint8

// Family types understood by the exposition writer.
const (
	// Counter is a monotonically non-decreasing value.
	Counter MetricType = iota
	// Gauge is a value that can go up and down.
	Gauge
)

// typeNames maps MetricType to its exposition keyword.
var typeNames = [...]string{Counter: "counter", Gauge: "gauge"}

// series is one labeled sample of a func-backed family.
type series struct {
	labels string // pre-rendered `name="value",...` (no braces), "" for none
	read   func() float64
}

// family is one metric name: help text, type, and its samples.
type family struct {
	name   string
	help   string
	typ    MetricType
	series []series
	hists  []*Histogram // histogram families only
	bounds []float64    // histogram families only
}

// Registry holds metric families and writes the Prometheus text
// exposition. Families print sorted by name; series print in
// registration order — both stable, so scrapes diff cleanly.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // sorted family names
	bufPool  sync.Pool
}

// NewRegistry builds an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup finds or creates a family, keeping the name index sorted.
// Caller holds r.mu.
func (r *Registry) lookup(name, help string, typ MetricType, hist bool) *family {
	f, ok := r.families[name]
	if ok {
		return f
	}
	f = &family{name: name, help: help, typ: typ}
	if hist {
		f.hists = []*Histogram{}
	}
	r.families[name] = f
	i := sort.SearchStrings(r.names, name)
	r.names = slices.Insert(r.names, i, name)
	return f
}

// Func registers one labeled sample whose value is produced by read at
// scrape time — the bridge to counters subsystems already maintain.
// labels is a pre-rendered Prometheus label body such as
// `tenant="gold"` (empty for an unlabeled sample); registering the same
// family name again appends a series to it.
func (r *Registry) Func(name, help string, typ MetricType, labels string, read func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, typ, false)
	f.series = append(f.series, series{labels: labels, read: read})
}

// Histogram registers one labeled histogram series with the given bucket
// upper bounds (ascending; +Inf is implicit) and returns it. All series
// of one family must share bounds; the first registration wins.
func (r *Registry) Histogram(name, help string, bounds []float64, labels string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, Counter, true)
	if f.bounds == nil {
		f.bounds = slices.Clone(bounds)
	}
	h := newHistogram(f.bounds, labels)
	f.hists = append(f.hists, h)
	return h
}

// Histogram is a fixed-bound histogram with atomic buckets: Observe is a
// bucket search plus two atomic adds and a CAS-loop float add — zero
// allocations, safe for concurrent use. A nil histogram ignores
// observations, so wiring is optional.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf implicit
	les     []string  // pre-rendered le label values, one per bound
	labels  string
	buckets []atomic.Uint64 // non-cumulative per-bound counts
	inf     atomic.Uint64   // observations above the last bound
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, CAS-updated
}

// newHistogram builds a histogram for the given bounds. The le label
// strings are rendered once here, not per scrape: a bound never changes
// after registration, and formatting them in appendTo was the dominant
// allocation of the whole /metrics render.
func newHistogram(bounds []float64, labels string) *Histogram {
	les := make([]string, len(bounds))
	for i, b := range bounds {
		les[i] = strconv.FormatFloat(b, 'g', -1, 64)
	}
	return &Histogram{
		bounds:  bounds,
		les:     les,
		labels:  labels,
		buckets: make([]atomic.Uint64, len(bounds)),
	}
}

// Observe records one value. Safe on a nil histogram (no-op).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bound lists are short (≤ ~20) and branch-predictable,
	// beating sort.SearchFloat64s's allocation-free but cache-hostile
	// binary walk at these sizes.
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Write appends the full text exposition to buf and returns the extended
// buffer. Families are emitted in name order with # HELP and # TYPE
// headers; histogram series emit cumulative buckets with le labels plus
// _sum and _count.
func (r *Registry) Write(buf []byte) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.names {
		f := r.families[name]
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.help...)
		buf = append(buf, '\n')
		buf = append(buf, "# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		if f.hists != nil {
			buf = append(buf, "histogram"...)
		} else {
			buf = append(buf, typeNames[f.typ]...)
		}
		buf = append(buf, '\n')
		for _, s := range f.series {
			buf = appendSample(buf, f.name, "", s.labels, "", s.read())
		}
		for _, h := range f.hists {
			buf = h.appendTo(buf, f.name)
		}
	}
	return buf
}

// appendTo writes one histogram series: cumulative buckets, sum, count.
func (h *Histogram) appendTo(buf []byte, name string) []byte {
	cum := uint64(0)
	for i := range h.bounds {
		cum += h.buckets[i].Load()
		buf = appendSample(buf, name, "_bucket", h.labels, h.les[i], float64(cum))
	}
	cum += h.inf.Load()
	buf = appendSample(buf, name, "_bucket", h.labels, "+Inf", float64(cum))
	buf = appendSample(buf, name, "_sum", h.labels, "", h.Sum())
	return appendSample(buf, name, "_count", h.labels, "", float64(h.count.Load()))
}

// appendSample writes one exposition line:
// name[suffix]{labels,le="bound"} value.
func appendSample(buf []byte, name, suffix, labels, le string, v float64) []byte {
	buf = append(buf, name...)
	buf = append(buf, suffix...)
	if labels != "" || le != "" {
		buf = append(buf, '{')
		buf = append(buf, labels...)
		if le != "" {
			if labels != "" {
				buf = append(buf, ',')
			}
			buf = append(buf, `le="`...)
			buf = append(buf, le...)
			buf = append(buf, '"')
		}
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
	return append(buf, '\n')
}

// Handler serves the exposition over HTTP with the Prometheus text
// content type, reusing pooled scrape buffers.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		buf, _ := r.bufPool.Get().(*[]byte)
		if buf == nil {
			b := make([]byte, 0, 16<<10)
			buf = &b
		}
		*buf = r.Write((*buf)[:0])
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(*buf)
		r.bufPool.Put(buf)
	})
}
