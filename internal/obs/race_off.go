//go:build !race

package obs

// RaceEnabled reports whether the race detector is compiled in. The
// allocation-guard tests skip under it: the detector's shadow bookkeeping
// allocates, making testing.AllocsPerRun meaningless.
const RaceEnabled = false
