package obs

import (
	"testing"
	"time"
)

// The package's own allocation floor: emitting a decision and observing a
// histogram sample must not allocate, and the drainer's encode loop must
// reuse its scratch. The subsystem guard tests (ingest admit, supervisor
// tick, scheduler arbitration, WAL append) build on these.

func TestEmitZeroAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race")
	}
	clock := time.Unix(0, 0)
	l := NewLog(Config{Shards: 4, ShardCapacity: 1 << 16,
		Now: func() time.Time { clock = clock.Add(time.Microsecond); return clock }})
	rec := Record{Kind: KindPreempt, Tenant: "gold", Peer: "bronze",
		From: 8, To: 6, Gain: 0.5, Loss: 0.25, Lambda0: 100, PeerLambda0: 50,
		PauseNS: 1e9, Flag: true}
	allocs := testing.AllocsPerRun(10000, func() {
		l.Emit(&rec)
	})
	if allocs != 0 {
		t.Fatalf("Emit allocates %.1f/op, want 0", allocs)
	}
}

func TestEmitSampledOutZeroAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race")
	}
	l := NewLog(Config{Shards: 1, ShardCapacity: 16, SamplePermille: 1})
	rec := Record{Kind: KindGrant, Tenant: "t"}
	allocs := testing.AllocsPerRun(10000, func() { l.Emit(&rec) })
	if allocs != 0 {
		t.Fatalf("sampled-out Emit allocates %.1f/op, want 0", allocs)
	}
}

func TestHistogramObserveZeroAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race")
	}
	reg := NewRegistry()
	h := reg.Histogram("x_seconds", "test", []float64{0.01, 0.1, 1, 10}, `tenant="a"`)
	v := 0.0
	allocs := testing.AllocsPerRun(10000, func() {
		h.Observe(v)
		v += 0.001
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f/op, want 0", allocs)
	}
}

func TestAppendRecordSteadyStateZeroAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race")
	}
	rec := Record{Seq: 42, At: 1234567890, Kind: KindPreempt, Tenant: "gold",
		Peer: "bronze", From: 8, To: 6, Gain: 0.5, Loss: 0.25,
		Lambda0: 100.5, PeerLambda0: 50.25, PauseNS: 1e9, Flag: true, Detail: "guarded"}
	buf := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(10000, func() {
		buf = AppendRecord(buf[:0], &rec)
	})
	if allocs != 0 {
		t.Fatalf("AppendRecord with warm buffer allocates %.1f/op, want 0", allocs)
	}
}
