package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"unicode/utf8"
)

// The decision-log wire format is one JSON object per record, one record
// per line (NDJSON). Encoding is canonical: fields appear in a fixed
// order, zero-valued optional fields are omitted, numbers use the
// shortest representation that round-trips (strconv 'g' with -1
// precision), and strings escape only what JSON requires. Decoding is
// strict — unknown fields and unknown kinds are errors — so a corrupted
// or foreign line fails loudly instead of producing a half-parsed record.

// AppendRecord appends the canonical JSON encoding of r to dst and
// returns the extended buffer. It allocates only when dst needs to grow,
// so a drainer reusing one buffer encodes at zero steady-state
// allocations.
func AppendRecord(dst []byte, r *Record) []byte {
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendUint(dst, r.Seq, 10)
	dst = append(dst, `,"at":`...)
	dst = strconv.AppendInt(dst, r.At, 10)
	dst = append(dst, `,"kind":`...)
	dst = appendJSONString(dst, r.Kind.String())
	if r.Tenant != "" {
		dst = append(dst, `,"tenant":`...)
		dst = appendJSONString(dst, r.Tenant)
	}
	if r.Peer != "" {
		dst = append(dst, `,"peer":`...)
		dst = appendJSONString(dst, r.Peer)
	}
	if r.From != 0 {
		dst = append(dst, `,"from":`...)
		dst = strconv.AppendInt(dst, int64(r.From), 10)
	}
	if r.To != 0 {
		dst = append(dst, `,"to":`...)
		dst = strconv.AppendInt(dst, int64(r.To), 10)
	}
	dst = appendFloatField(dst, `,"gain":`, r.Gain)
	dst = appendFloatField(dst, `,"loss":`, r.Loss)
	dst = appendFloatField(dst, `,"lambda0":`, r.Lambda0)
	dst = appendFloatField(dst, `,"peer_lambda0":`, r.PeerLambda0)
	dst = appendFloatField(dst, `,"fraction":`, r.Fraction)
	dst = appendFloatField(dst, `,"rate":`, r.Rate)
	if r.PauseNS != 0 {
		dst = append(dst, `,"pause_ns":`...)
		dst = strconv.AppendInt(dst, r.PauseNS, 10)
	}
	if r.Flag {
		dst = append(dst, `,"flag":true`...)
	}
	if r.Detail != "" {
		dst = append(dst, `,"detail":`...)
		dst = appendJSONString(dst, r.Detail)
	}
	return append(dst, '}')
}

// appendFloatField appends `<prefix><value>` unless the value is zero
// (omitted in canonical form). Negative zero is normalized to zero.
func appendFloatField(dst []byte, prefix string, v float64) []byte {
	if v == 0 {
		return dst
	}
	dst = append(dst, prefix...)
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

// hexDigits spells the low nibble of a \u00XX control escape.
const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a quoted JSON string, escaping the
// quote, backslash and control characters and replacing invalid UTF-8
// with U+FFFD — matching what encoding/json produces on decode, so a
// decoded record re-encodes canonically.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			switch {
			case c == '"':
				dst = append(dst, '\\', '"')
			case c == '\\':
				dst = append(dst, '\\', '\\')
			case c == '\n':
				dst = append(dst, '\\', 'n')
			case c == '\r':
				dst = append(dst, '\\', 'r')
			case c == '\t':
				dst = append(dst, '\\', 't')
			case c < 0x20:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
			default:
				dst = append(dst, c)
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = utf8.AppendRune(dst, utf8.RuneError)
			i++
			continue
		}
		dst = append(dst, s[i:i+size]...)
		i += size
	}
	return append(dst, '"')
}

// wireRecord is the decode shadow of Record: same fields, JSON tags
// matching the canonical encoder, kind as its wire name.
type wireRecord struct {
	Seq         uint64  `json:"seq"`
	At          int64   `json:"at"`
	Kind        string  `json:"kind"`
	Tenant      string  `json:"tenant"`
	Peer        string  `json:"peer"`
	From        int     `json:"from"`
	To          int     `json:"to"`
	Gain        float64 `json:"gain"`
	Loss        float64 `json:"loss"`
	Lambda0     float64 `json:"lambda0"`
	PeerLambda0 float64 `json:"peer_lambda0"`
	Fraction    float64 `json:"fraction"`
	Rate        float64 `json:"rate"`
	PauseNS     int64   `json:"pause_ns"`
	Flag        bool    `json:"flag"`
	Detail      string  `json:"detail"`
}

// ParseRecord decodes one canonical JSON record line. Unknown fields,
// malformed JSON, trailing data and unknown kind names are errors; a
// successful parse re-encodes (AppendRecord) to a stable canonical form.
func ParseRecord(line []byte) (Record, error) {
	var w wireRecord
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return Record{}, fmt.Errorf("obs: parse record: %w", err)
	}
	// One JSON value per line: anything but whitespace after the object
	// is corruption.
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return Record{}, fmt.Errorf("obs: parse record: trailing data after object")
	}
	kind, ok := KindFromString(w.Kind)
	if !ok {
		return Record{}, fmt.Errorf("obs: parse record: unknown kind %q", w.Kind)
	}
	return Record{
		Seq: w.Seq, At: w.At, Kind: kind,
		Tenant: w.Tenant, Peer: w.Peer,
		From: w.From, To: w.To,
		Gain: w.Gain, Loss: w.Loss,
		Lambda0: w.Lambda0, PeerLambda0: w.PeerLambda0,
		Fraction: w.Fraction, Rate: w.Rate,
		PauseNS: w.PauseNS, Flag: w.Flag, Detail: w.Detail,
	}, nil
}
