package obs

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
)

// update regenerates the exposition golden: go test ./internal/obs -run Exposition -update
var update = flag.Bool("update", false, "rewrite the obs golden files")

// buildTestRegistry assembles a registry shaped like the serve daemon's:
// func-backed counters/gauges over atomics plus labeled histograms.
func buildTestRegistry() (*Registry, *atomic.Int64, *atomic.Int64, *Histogram, *Histogram) {
	reg := NewRegistry()
	var admitted, shed atomic.Int64
	admitted.Store(900)
	shed.Store(100)
	reg.Func("drs_gate_admitted_total", "Tuples admitted by the ingest gate.", Counter,
		`tenant="gold"`, func() float64 { return float64(admitted.Load()) })
	reg.Func("drs_gate_shed_total", "Tuples shed by the ingest gate.", Counter,
		`tenant="gold"`, func() float64 { return float64(shed.Load()) })
	reg.Func("drs_gate_admit_fraction", "Current admit fraction per tenant.", Gauge,
		`tenant="gold"`, func() float64 { return 0.9 })
	reg.Func("drs_wal_segments", "Live WAL segment count.", Gauge, "",
		func() float64 { return 3 })
	soj := reg.Histogram("drs_tenant_sojourn_seconds",
		"Measured tuple sojourn per tenant.", []float64{0.01, 0.05, 0.25, 1}, `tenant="gold"`)
	shf := reg.Histogram("drs_tenant_shed_fraction",
		"Shed fraction per control round per tenant.", []float64{0.01, 0.1, 0.5}, `tenant="gold"`)
	soj.Observe(0.004)
	soj.Observe(0.04)
	soj.Observe(0.2)
	soj.Observe(3)
	shf.Observe(0)
	shf.Observe(0.3)
	return reg, &admitted, &shed, soj, shf
}

// TestExpositionGolden pins the full text exposition: family order,
// HELP/TYPE headers, label rendering, histogram buckets.
func TestExpositionGolden(t *testing.T) {
	reg, _, _, _, _ := buildTestRegistry()
	got := reg.Write(nil)
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("exposition drifted from golden (run with -update if intended):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// parseExposition reads sample lines into name{labels} -> value.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

// TestExpositionMonotonicUnderTraffic scrapes twice while counters and
// histograms move and checks counters never regress, histogram buckets
// stay cumulative, and _count/_sum agree with the observations.
func TestExpositionMonotonicUnderTraffic(t *testing.T) {
	reg, admitted, shed, soj, _ := buildTestRegistry()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	scrape := func() (string, map[string]float64) {
		resp, err := srv.Client().Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
			t.Fatalf("content type %q is not Prometheus text 0.0.4", ct)
		}
		var sb strings.Builder
		if _, err := fmt.Fprint(&sb, mustRead(t, resp.Body)); err != nil {
			t.Fatal(err)
		}
		return sb.String(), parseExposition(t, sb.String())
	}

	text1, first := scrape()
	// Live traffic between scrapes.
	admitted.Add(500)
	shed.Add(50)
	soj.Observe(0.02)
	soj.Observe(0.7)
	text2, second := scrape()

	for series, v1 := range first {
		if strings.Contains(series, "_fraction") && !strings.Contains(series, "_bucket") &&
			!strings.Contains(series, "_sum") && !strings.Contains(series, "_count") {
			continue // gauges may move either way
		}
		if second[series] < v1 {
			t.Fatalf("series %s went backwards: %v -> %v\nscrape1:\n%s\nscrape2:\n%s",
				series, v1, second[series], text1, text2)
		}
	}
	if got := second[`drs_gate_admitted_total{tenant="gold"}`]; got != 1400 {
		t.Fatalf("admitted counter = %v, want 1400", got)
	}

	// Histogram buckets must be cumulative and end at _count.
	prev := -1.0
	for _, le := range []string{"0.01", "0.05", "0.25", "1", "+Inf"} {
		key := fmt.Sprintf(`drs_tenant_sojourn_seconds_bucket{tenant="gold",le="%s"}`, le)
		v, ok := second[key]
		if !ok {
			t.Fatalf("missing bucket %s\n%s", key, text2)
		}
		if v < prev {
			t.Fatalf("bucket le=%s not cumulative: %v < %v", le, v, prev)
		}
		prev = v
	}
	if cnt := second[`drs_tenant_sojourn_seconds_count{tenant="gold"}`]; cnt != prev {
		t.Fatalf("_count %v != +Inf bucket %v", cnt, prev)
	}
	if cnt := second[`drs_tenant_sojourn_seconds_count{tenant="gold"}`]; cnt != 6 {
		t.Fatalf("_count %v, want 6 observations", cnt)
	}
	wantSum := 0.004 + 0.04 + 0.2 + 3 + 0.02 + 0.7
	if sum := second[`drs_tenant_sojourn_seconds_sum{tenant="gold"}`]; sum < wantSum-1e-9 || sum > wantSum+1e-9 {
		t.Fatalf("_sum %v, want %v", sum, wantSum)
	}
}

// mustRead drains r fully as a string.
func mustRead(t *testing.T, r interface{ Read([]byte) (int, error) }) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1) // must not panic
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram reports nonzero")
	}
}
