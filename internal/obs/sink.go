package obs

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Sink receives drained NDJSON batches from the log's drainer. Write is
// called from the single drainer goroutine with a buffer the drainer
// reuses: implementations must not retain it past the call.
type Sink interface {
	// Write persists one encoded batch (complete lines, trailing newline).
	Write(batch []byte)
	// Close flushes and releases the sink.
	Close() error
}

// FileSink writes NDJSON batches to <prefix>-NNNNNN.ndjson files in a
// directory, rotating to a new file once the current one passes
// MaxBytes. Rotation keeps individual files tail-able and lets operators
// ship or prune closed segments; records are never split across files.
type FileSink struct {
	dir      string
	prefix   string
	maxBytes int64

	mu      sync.Mutex
	f       *os.File
	written int64
	index   int
	err     error // first write error; sticky, reported by Close
}

// NewFileSink opens a rotating decision-NNNNNN.ndjson sink in dir,
// creating it if needed. maxBytes <= 0 defaults to 64 MiB per file.
func NewFileSink(dir string, maxBytes int64) (*FileSink, error) {
	return NewFileSinkNamed(dir, "decision", maxBytes)
}

// NewFileSinkNamed opens a rotating <prefix>-NNNNNN.ndjson sink in dir —
// the decision log and the trace stream share one directory without
// colliding segment names.
func NewFileSinkNamed(dir, prefix string, maxBytes int64) (*FileSink, error) {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: file sink: %w", err)
	}
	s := &FileSink{dir: dir, prefix: prefix, maxBytes: maxBytes}
	if err := s.rotateLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// rotateLocked closes the current file (if any) and opens the next
// numbered one. Caller holds s.mu (or is the constructor).
func (s *FileSink) rotateLocked() error {
	if s.f != nil {
		if err := s.f.Close(); err != nil && s.err == nil {
			s.err = err
		}
		s.f = nil
	}
	for {
		name := filepath.Join(s.dir, fmt.Sprintf("%s-%06d.ndjson", s.prefix, s.index))
		s.index++
		f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if os.IsExist(err) {
			continue // resuming into a dir with earlier segments
		}
		if err != nil {
			return fmt.Errorf("obs: file sink: %w", err)
		}
		s.f, s.written = f, 0
		return nil
	}
}

// Write appends one batch, rotating first if the current file is full.
// Errors are sticky and surfaced by Close — the drainer never blocks a
// decider on disk trouble.
func (s *FileSink) Write(batch []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return
	}
	if s.written > 0 && s.written+int64(len(batch)) > s.maxBytes {
		if err := s.rotateLocked(); err != nil {
			if s.err == nil {
				s.err = err
			}
			return
		}
	}
	n, err := s.f.Write(batch)
	s.written += int64(n)
	if err != nil && s.err == nil {
		s.err = err
	}
}

// Close closes the current file and reports the first error the sink hit.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f != nil {
		if err := s.f.Close(); err != nil && s.err == nil {
			s.err = err
		}
		s.f = nil
	}
	return s.err
}

// WriterSink adapts any io.Writer (a test buffer, a pipe to a shipper)
// into a Sink.
type WriterSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriterSink wraps w as a Sink.
func NewWriterSink(w io.Writer) *WriterSink { return &WriterSink{w: w} }

// Write forwards one batch to the wrapped writer.
func (s *WriterSink) Write(batch []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.Write(batch)
}

// Close is a no-op; the wrapped writer's lifecycle belongs to the caller.
func (s *WriterSink) Close() error { return nil }
