package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// The trace wire format mirrors the decision log's: one JSON object per
// span, one span per line (NDJSON), canonical encoding (fixed field
// order, zero-valued optional fields omitted, shortest round-tripping
// numbers) and strict decoding (unknown fields, trailing data and
// unknown span kinds are errors).

// AppendSpan appends the canonical JSON encoding of r to dst and returns
// the extended buffer. It allocates only when dst needs to grow, so the
// drainer reusing one buffer encodes at zero steady-state allocations.
func AppendSpan(dst []byte, r *SpanRecord) []byte {
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendUint(dst, r.Seq, 10)
	dst = append(dst, `,"trace":`...)
	dst = strconv.AppendUint(dst, r.Trace, 10)
	dst = append(dst, `,"kind":`...)
	dst = appendJSONString(dst, r.Kind.String())
	if r.Bolt != "" {
		dst = append(dst, `,"bolt":`...)
		dst = appendJSONString(dst, r.Bolt)
	}
	if r.Tenant != "" {
		dst = append(dst, `,"tenant":`...)
		dst = appendJSONString(dst, r.Tenant)
	}
	if r.Task != 0 {
		dst = append(dst, `,"task":`...)
		dst = strconv.AppendInt(dst, int64(r.Task), 10)
	}
	if r.Remote {
		dst = append(dst, `,"remote":true`...)
	}
	if r.StartNS != 0 {
		dst = append(dst, `,"start":`...)
		dst = strconv.AppendInt(dst, r.StartNS, 10)
	}
	if r.DurNS != 0 {
		dst = append(dst, `,"dur":`...)
		dst = strconv.AppendInt(dst, r.DurNS, 10)
	}
	return append(dst, '}')
}

// wireSpan is the decode shadow of SpanRecord: same fields, JSON tags
// matching the canonical encoder, kind as its wire name.
type wireSpan struct {
	Seq     uint64 `json:"seq"`
	Trace   uint64 `json:"trace"`
	Kind    string `json:"kind"`
	Bolt    string `json:"bolt"`
	Tenant  string `json:"tenant"`
	Task    int    `json:"task"`
	Remote  bool   `json:"remote"`
	StartNS int64  `json:"start"`
	DurNS   int64  `json:"dur"`
}

// ParseSpan decodes one canonical JSON span line. Unknown fields,
// malformed JSON, trailing data and unknown span kind names are errors;
// a successful parse re-encodes (AppendSpan) to a stable canonical form.
func ParseSpan(line []byte) (SpanRecord, error) {
	var w wireSpan
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return SpanRecord{}, fmt.Errorf("obs: parse span: %w", err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return SpanRecord{}, fmt.Errorf("obs: parse span: trailing data after object")
	}
	kind, ok := SpanKindFromString(w.Kind)
	if !ok {
		return SpanRecord{}, fmt.Errorf("obs: parse span: unknown kind %q", w.Kind)
	}
	return SpanRecord{
		Seq: w.Seq, Trace: w.Trace, Kind: kind,
		Bolt: w.Bolt, Tenant: w.Tenant, Task: w.Task,
		Remote: w.Remote, StartNS: w.StartNS, DurNS: w.DurNS,
	}, nil
}
