package obs

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock yields a deterministic timestamp sequence for log tests.
func fixedClock() func() time.Time {
	var mu sync.Mutex
	t := time.Unix(1000, 0)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(time.Millisecond)
		return t
	}
}

func TestLogEmitSweepOrdersBySeq(t *testing.T) {
	l := NewLog(Config{Shards: 4, ShardCapacity: 64, Now: fixedClock()})
	for i := 0; i < 40; i++ {
		l.Emit(&Record{Kind: KindGrant, Tenant: "gold", From: i, To: i + 1})
	}
	var got []Record
	l.Sweep(func(r *Record) { got = append(got, *r) })
	if len(got) != 40 {
		t.Fatalf("swept %d records, want 40", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d, want %d (sweep must order by seq)", i, r.Seq, i+1)
		}
		if r.From != i || r.To != i+1 {
			t.Fatalf("record %d payload mismatch: %+v", i, r)
		}
		if r.At == 0 {
			t.Fatalf("record %d missing timestamp", i)
		}
	}
	// Rings are reset by the sweep.
	n := 0
	l.Sweep(func(*Record) { n++ })
	if n != 0 {
		t.Fatalf("second sweep returned %d records, want 0", n)
	}
}

func TestLogNilSafe(t *testing.T) {
	var l *Log
	l.Emit(&Record{Kind: KindGrant})
	l.SetSample(10)
	l.Sweep(func(*Record) { t.Fatal("nil log swept a record") })
	if s := l.Stats(); s != (Stats{}) {
		t.Fatalf("nil log stats = %+v, want zero", s)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("nil log close: %v", err)
	}
}

func TestLogDropsOnOverflowNeverBlocks(t *testing.T) {
	l := NewLog(Config{Shards: 1, ShardCapacity: 8, Now: fixedClock()})
	for i := 0; i < 20; i++ {
		l.Emit(&Record{Kind: KindShedPlan, Tenant: "t"})
	}
	st := l.Stats()
	if st.Offered != 20 {
		t.Fatalf("offered %d, want 20", st.Offered)
	}
	if st.Dropped != 12 {
		t.Fatalf("dropped %d, want 12 (capacity 8)", st.Dropped)
	}
	n := 0
	l.Sweep(func(*Record) { n++ })
	if n != 8 {
		t.Fatalf("swept %d, want the 8 retained records", n)
	}
}

func TestLogSamplingDeterministicAndRetunable(t *testing.T) {
	l := NewLog(Config{Shards: 2, ShardCapacity: 2048, SamplePermille: 100, Now: fixedClock()})
	for i := 0; i < 1000; i++ {
		l.Emit(&Record{Kind: KindRefit, Tenant: "a"})
	}
	n := 0
	l.Sweep(func(*Record) { n++ })
	if n != 100 {
		t.Fatalf("kept %d of 1000 at 100 permille, want exactly 100 (deterministic thinning)", n)
	}
	st := l.Stats()
	if st.Thinned != 900 {
		t.Fatalf("thinned %d, want 900", st.Thinned)
	}

	// Flip the knob live: keep-everything from here on.
	l.SetSample(1000)
	for i := 0; i < 50; i++ {
		l.Emit(&Record{Kind: KindRefit, Tenant: "a"})
	}
	n = 0
	l.Sweep(func(*Record) { n++ })
	if n != 50 {
		t.Fatalf("kept %d of 50 after SetSample(1000), want 50", n)
	}

	// And off entirely.
	l.SetSample(0)
	for i := 0; i < 50; i++ {
		l.Emit(&Record{Kind: KindRefit, Tenant: "a"})
	}
	n = 0
	l.Sweep(func(*Record) { n++ })
	if n != 0 {
		t.Fatalf("kept %d of 50 after SetSample(0), want 0", n)
	}
}

func TestThinAdmitSpreadsEvenly(t *testing.T) {
	// 250 permille keeps exactly one of every four consecutive emissions.
	kept := 0
	for seq := uint64(1); seq <= 400; seq++ {
		if thinAdmit(seq, 250) {
			kept++
		}
	}
	if kept != 100 {
		t.Fatalf("kept %d of 400 at 250 permille, want 100", kept)
	}
	for start := uint64(1); start <= 396; start += 4 {
		window := 0
		for s := start; s < start+4; s++ {
			if thinAdmit(s, 250) {
				window++
			}
		}
		if window != 1 {
			t.Fatalf("window starting at %d kept %d, want 1 (even spread)", start, window)
		}
	}
}

func TestLogDrainerFlushesNDJSONToSink(t *testing.T) {
	var buf bytes.Buffer
	l := NewLog(Config{
		Shards: 2, ShardCapacity: 128,
		Sink:       NewWriterSink(&buf),
		FlushEvery: time.Millisecond,
		Now:        fixedClock(),
	})
	l.Emit(&Record{Kind: KindPreempt, Tenant: "gold", Peer: "bronze",
		From: 8, To: 6, Gain: 0.5, Loss: 0.25, Lambda0: 100, PeerLambda0: 50,
		PauseNS: int64(time.Second), Flag: true})
	l.Emit(&Record{Kind: KindShedPlan, Tenant: "front", Fraction: 0.75, Rate: 1200, Lambda0: 1600})
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	r0, err := ParseRecord([]byte(lines[0]))
	if err != nil {
		t.Fatalf("parse line 0: %v", err)
	}
	if r0.Kind != KindPreempt || r0.Tenant != "gold" || r0.Peer != "bronze" ||
		r0.Gain != 0.5 || r0.Loss != 0.25 || r0.Lambda0 != 100 || r0.PeerLambda0 != 50 ||
		r0.PauseNS != int64(time.Second) || !r0.Flag {
		t.Fatalf("preempt record lost fields through the drainer: %+v", r0)
	}
	r1, err := ParseRecord([]byte(lines[1]))
	if err != nil {
		t.Fatalf("parse line 1: %v", err)
	}
	if r1.Kind != KindShedPlan || r1.Fraction != 0.75 || r1.Rate != 1200 {
		t.Fatalf("shed-plan record lost fields: %+v", r1)
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for k := KindRegister; k < kindCount; k++ {
		name := k.String()
		if name == "" || name == "invalid" {
			t.Fatalf("kind %d has no wire name", k)
		}
		back, ok := KindFromString(name)
		if !ok || back != k {
			t.Fatalf("kind %d name %q does not round-trip (got %d, %v)", k, name, back, ok)
		}
	}
	if _, ok := KindFromString("invalid"); ok {
		t.Fatal(`KindFromString("invalid") must be rejected`)
	}
	if _, ok := KindFromString("no-such-kind"); ok {
		t.Fatal("unknown kind name accepted")
	}
}

func TestFileSinkRotates(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileSink(dir, 64)
	if err != nil {
		t.Fatalf("new file sink: %v", err)
	}
	line := []byte(strings.Repeat("x", 40) + "\n")
	for i := 0; i < 4; i++ {
		s.Write(line)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	// 41 bytes per write, 64-byte cap: one write per file after the first
	// fills — expect at least 3 segment files, none above the cap by more
	// than one batch.
	if len(names) < 3 {
		t.Fatalf("want rotation to produce >= 3 segments, got %v", names)
	}
}
