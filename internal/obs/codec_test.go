package obs

import (
	"bytes"
	"testing"
	"time"
)

func TestCodecRoundTrip(t *testing.T) {
	cases := []Record{
		{Seq: 1, At: 12345, Kind: KindGrant, Tenant: "gold", From: 4, To: 8},
		{Seq: 2, At: -1, Kind: KindPreempt, Tenant: "gold", Peer: "bronze",
			From: 8, To: 6, Gain: 0.5, Loss: 0.3333333333333333,
			Lambda0: 123.456, PeerLambda0: 1e-9, PauseNS: int64(2 * time.Second), Flag: true},
		{Seq: 3, Kind: KindShedPlan, Tenant: "front", Fraction: 0.875, Rate: 1e6, Lambda0: 2e6},
		{Seq: 4, Kind: KindRefit, Tenant: "topo-a", Detail: "grow", From: 2, To: 5, Gain: 0.0125},
		{Seq: 18446744073709551615, At: 9223372036854775807, Kind: KindHeal, Peer: "count"},
		{Seq: 6, Kind: KindWorkerDeath, Peer: `we"ird\name` + "\n\t\x01", To: 3},
		{Seq: 7, Kind: KindSuppress, Tenant: "t", Detail: "cooldown", Gain: -0.5},
	}
	for i, want := range cases {
		enc := AppendRecord(nil, &want)
		got, err := ParseRecord(enc)
		if err != nil {
			t.Fatalf("case %d: parse(%s): %v", i, enc, err)
		}
		if got != want {
			t.Fatalf("case %d round-trip mismatch:\n enc  %s\n got  %+v\n want %+v", i, enc, got, want)
		}
		// Canonical: re-encoding the parsed record is byte-identical.
		enc2 := AppendRecord(nil, &got)
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("case %d re-encode not canonical:\n first  %s\n second %s", i, enc, enc2)
		}
	}
}

func TestCodecOmitsZeroFields(t *testing.T) {
	enc := AppendRecord(nil, &Record{Seq: 9, At: 100, Kind: KindRelease, Tenant: "t"})
	want := `{"seq":9,"at":100,"kind":"release","tenant":"t"}`
	if string(enc) != want {
		t.Fatalf("encoding = %s, want %s", enc, want)
	}
}

func TestParseRecordRejectsBadInput(t *testing.T) {
	bad := []string{
		``,                                      // empty
		`{`,                                     // truncated
		`[1,2]`,                                 // wrong JSON shape
		`{"seq":1,"kind":"grant"} trailing`,     // trailing garbage
		`{"seq":1,"kind":"grant"}{"seq":2}`,     // two objects on a line
		`{"seq":1,"kind":"no-such-kind"}`,       // unknown kind
		`{"seq":1,"kind":"invalid"}`,            // reserved kind name
		`{"seq":1,"kind":"grant","bogus":1}`,    // unknown field
		`{"seq":-1,"kind":"grant"}`,             // negative uint
		`{"seq":1,"kind":"grant","from":1.5}`,   // non-integer int field
		`{"seq":1,"kind":"grant","gain":1e999}`, // float out of range
	}
	for _, in := range bad {
		if _, err := ParseRecord([]byte(in)); err == nil {
			t.Fatalf("ParseRecord(%q) succeeded, want error", in)
		}
	}
}

// FuzzDecisionRecord is the decode ⇒ canonical re-encode round-trip: any
// input either fails to parse or parses to a record whose re-encoding is
// stable (parses back equal, re-encodes byte-identically). Never panics.
func FuzzDecisionRecord(f *testing.F) {
	seed := [][]byte{
		[]byte(`{"seq":1,"at":12345,"kind":"grant","tenant":"gold","from":4,"to":8}`),
		[]byte(`{"seq":2,"at":1,"kind":"preempt","tenant":"gold","peer":"bronze","from":8,"to":6,"gain":0.5,"loss":0.25,"lambda0":100,"peer_lambda0":50,"pause_ns":1000000000,"flag":true}`),
		[]byte(`{"seq":3,"at":2,"kind":"shed-plan","tenant":"front","fraction":0.75,"rate":1200,"lambda0":1600,"flag":true}`),
		[]byte(`{"seq":4,"at":3,"kind":"refit","tenant":"topo","detail":"grow","gain":0.01}`),
		[]byte(`{"seq":5,"at":4,"kind":"heal","peer":"count","to":2}`),
		[]byte(`{"seq":6,"at":5,"kind":"worker-death","peer":"w-1","to":3}`),
		[]byte(`{"kind":"machine-fail","to":7}`),
		[]byte(`{"seq":1,"kind":"suppress","detail":"é\n\"x\""}`),
		[]byte(`{}`),
		[]byte(`[]`),
		[]byte(`{"seq":1,"kind":"grant","gain":-0}`),
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r1, err := ParseRecord(data)
		if err != nil {
			return // rejection is a valid outcome; panics are not
		}
		enc1 := AppendRecord(nil, &r1)
		r2, err := ParseRecord(enc1)
		if err != nil {
			t.Fatalf("canonical re-encode does not parse: %s: %v", enc1, err)
		}
		if r1 != r2 {
			t.Fatalf("round-trip mismatch:\n in   %q\n r1   %+v\n enc  %s\n r2   %+v", data, r1, enc1, r2)
		}
		enc2 := AppendRecord(nil, &r2)
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("re-encode unstable:\n first  %s\n second %s", enc1, enc2)
		}
	})
}
