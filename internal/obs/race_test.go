package obs

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// TestConcurrentDecidersDrainerScrapeKnob is the package's race-detector
// workout: many deciders emitting, the background drainer sweeping to a
// sink, /metrics being scraped, histograms observing and the sampling
// knob flipping — all at once. Run under -race it proves the log and
// registry are data-race free; without -race it still shakes out lost
// records and torn counters.
func TestConcurrentDecidersDrainerScrapeKnob(t *testing.T) {
	var sinkBuf bytes.Buffer
	sink := NewWriterSink(&sinkBuf)
	l := NewLog(Config{Shards: 8, ShardCapacity: 4096, Sink: sink, FlushEvery: 100 * time.Microsecond})
	reg := NewRegistry()
	reg.Func("drs_obs_offered_total", "Decision emissions offered.", Counter, "",
		func() float64 { return float64(l.Stats().Offered) })
	reg.Func("drs_obs_dropped_total", "Decision records dropped.", Counter, "",
		func() float64 { return float64(l.Stats().Dropped) })
	hist := reg.Histogram("drs_test_sojourn_seconds", "test", []float64{0.1, 1}, `tenant="a"`)

	const (
		deciders = 8
		perG     = 2000
	)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < deciders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < perG; i++ {
				l.Emit(&Record{Kind: KindGrant, Tenant: "a", From: i, To: i + 1})
				hist.Observe(float64(i%3) * 0.4)
			}
		}(g)
	}
	// Scraper.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		var buf []byte
		for i := 0; i < 200; i++ {
			buf = reg.Write(buf[:0])
		}
	}()
	// Knob flipper.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 500; i++ {
			l.SetSample(1 + (i*37)%1000)
		}
		l.SetSample(1000)
	}()
	close(start)
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	st := l.Stats()
	if st.Offered != deciders*perG {
		t.Fatalf("offered %d, want %d", st.Offered, deciders*perG)
	}
	// Every offered emission is accounted: kept (reached the sink),
	// thinned, or dropped.
	kept := uint64(bytes.Count(sinkBuf.Bytes(), []byte{'\n'}))
	if kept+st.Thinned+st.Dropped != st.Offered {
		t.Fatalf("accounting leak: kept %d + thinned %d + dropped %d != offered %d",
			kept, st.Thinned, st.Dropped, st.Offered)
	}
	// Everything that reached the sink parses.
	for _, line := range bytes.Split(bytes.TrimSpace(sinkBuf.Bytes()), []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		if _, err := ParseRecord(line); err != nil {
			t.Fatalf("sink line does not parse: %q: %v", line, err)
		}
	}
	if got := hist.Count(); got != deciders*perG {
		t.Fatalf("histogram count %d, want %d", got, deciders*perG)
	}
}

// TestConcurrentTracerEmitAssembleScrapeKnob is the tracer's counterpart
// workout: many executors emitting spans, the drainer sweeping into the
// assembler and a sink, /metrics scraping tracer and assembler stats, and
// the sampling knob flipping — all at once. Every emitter finishes its
// roots with a root span, so after Close the assembler must balance:
// nothing pending, everything started completed, all spans accounted.
func TestConcurrentTracerEmitAssembleScrapeKnob(t *testing.T) {
	var sinkBuf bytes.Buffer
	asm := NewAssembler(AssemblerConfig{})
	tr := NewTracer(TracerConfig{
		Shards: 8, ShardCapacity: 1 << 16,
		Sink: NewWriterSink(&sinkBuf), Assembler: asm,
		FlushEvery: 100 * time.Microsecond,
	})
	reg := NewRegistry()
	reg.Func("drs_trace_spans_total", "Spans emitted.", Counter, "",
		func() float64 { return float64(tr.Stats().Spans) })
	reg.Func("drs_trace_pending", "Traces pending.", Gauge, "",
		func() float64 { return float64(asm.Stats().Pending) })

	const (
		emitters = 8
		perG     = 500
	)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < perG; i++ {
				id := uint64(g*perG + i + 1)
				tr.SampleTrace(id)
				tr.EmitSpan(&SpanRecord{Trace: id, Kind: SpanQueue, Bolt: "b", DurNS: 5})
				tr.EmitSpan(&SpanRecord{Trace: id, Kind: SpanService, Bolt: "b", DurNS: 7})
				tr.EmitSpan(&SpanRecord{Trace: id, Kind: SpanRoot, DurNS: 12})
			}
		}(g)
	}
	// Scraper.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		var buf []byte
		for i := 0; i < 200; i++ {
			buf = reg.Write(buf[:0])
		}
	}()
	// Knob flipper.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 500; i++ {
			tr.SetSample(1 + (i*37)%1000)
		}
	}()
	close(start)
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	const total = emitters * perG
	st := tr.Stats()
	if st.Spans != 3*total {
		t.Fatalf("spans %d, want %d", st.Spans, 3*total)
	}
	if st.Dropped != 0 {
		t.Fatalf("dropped %d spans with oversized rings, want 0", st.Dropped)
	}
	ast := asm.Stats()
	if ast.Started != total || ast.Completed != total || ast.Pending != 0 || ast.Lost != 0 {
		t.Fatalf("assembler did not balance: %+v", ast)
	}
	// Everything that reached the sink parses.
	lines := 0
	for _, line := range bytes.Split(bytes.TrimSpace(sinkBuf.Bytes()), []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		if _, err := ParseSpan(line); err != nil {
			t.Fatalf("sink line does not parse: %q: %v", line, err)
		}
		lines++
	}
	if lines != 3*total {
		t.Fatalf("sink got %d span lines, want %d", lines, 3*total)
	}
}
