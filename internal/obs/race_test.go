package obs

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// TestConcurrentDecidersDrainerScrapeKnob is the package's race-detector
// workout: many deciders emitting, the background drainer sweeping to a
// sink, /metrics being scraped, histograms observing and the sampling
// knob flipping — all at once. Run under -race it proves the log and
// registry are data-race free; without -race it still shakes out lost
// records and torn counters.
func TestConcurrentDecidersDrainerScrapeKnob(t *testing.T) {
	var sinkBuf bytes.Buffer
	sink := NewWriterSink(&sinkBuf)
	l := NewLog(Config{Shards: 8, ShardCapacity: 4096, Sink: sink, FlushEvery: 100 * time.Microsecond})
	reg := NewRegistry()
	reg.Func("drs_obs_offered_total", "Decision emissions offered.", Counter, "",
		func() float64 { return float64(l.Stats().Offered) })
	reg.Func("drs_obs_dropped_total", "Decision records dropped.", Counter, "",
		func() float64 { return float64(l.Stats().Dropped) })
	hist := reg.Histogram("drs_test_sojourn_seconds", "test", []float64{0.1, 1}, `tenant="a"`)

	const (
		deciders = 8
		perG     = 2000
	)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < deciders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < perG; i++ {
				l.Emit(&Record{Kind: KindGrant, Tenant: "a", From: i, To: i + 1})
				hist.Observe(float64(i%3) * 0.4)
			}
		}(g)
	}
	// Scraper.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		var buf []byte
		for i := 0; i < 200; i++ {
			buf = reg.Write(buf[:0])
		}
	}()
	// Knob flipper.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 500; i++ {
			l.SetSample(1 + (i*37)%1000)
		}
		l.SetSample(1000)
	}()
	close(start)
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	st := l.Stats()
	if st.Offered != deciders*perG {
		t.Fatalf("offered %d, want %d", st.Offered, deciders*perG)
	}
	// Every offered emission is accounted: kept (reached the sink),
	// thinned, or dropped.
	kept := uint64(bytes.Count(sinkBuf.Bytes(), []byte{'\n'}))
	if kept+st.Thinned+st.Dropped != st.Offered {
		t.Fatalf("accounting leak: kept %d + thinned %d + dropped %d != offered %d",
			kept, st.Thinned, st.Dropped, st.Offered)
	}
	// Everything that reached the sink parses.
	for _, line := range bytes.Split(bytes.TrimSpace(sinkBuf.Bytes()), []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		if _, err := ParseRecord(line); err != nil {
			t.Fatalf("sink line does not parse: %q: %v", line, err)
		}
	}
	if got := hist.Count(); got != deciders*perG {
		t.Fatalf("histogram count %d, want %d", got, deciders*perG)
	}
}
