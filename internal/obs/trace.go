// trace.go is the data plane's half of the observability layer: Dapper-
// style sampled per-root tracing. A root tuple that wins the sampling
// hash at the ingest gate carries its trace id on the ack tree; every
// segment of its life (gate admit, WAL append, per-hop queue wait and
// service, remote shuttle residue, and the closing whole-tree sojourn)
// is emitted as a fixed-shape SpanRecord into the same sharded-ring /
// single-drainer machinery the decision log uses. Sampling is a
// deterministic hash of the trace id, so identical runs trace identical
// roots — the property the local==remote golden experiment leans on.
package obs

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// SpanKind tags which latency segment of a traced root a SpanRecord
// covers. The zero kind is invalid so a forgotten tag is visible.
type SpanKind uint8

// Span kinds. A complete trace is gate [wal] (queue service [shuttle])*
// root: one gate mark, one WAL segment in durable mode, one queue/service
// pair per bolt hop (plus a shuttle segment when the hop ran on a remote
// worker), and exactly one root span that closes the trace.
const (
	SpanInvalid SpanKind = iota
	SpanGate             // admit instant at the ingest gate (Dur 0; Tenant = client id)
	SpanWAL              // durable admit tail: group-commit WAL append
	SpanQueue            // queue wait: parent handoff -> executor service start
	SpanService          // bolt service: the Process() call itself
	SpanShuttle          // remote residue: shuttle RTT minus worker wait+service
	SpanRoot             // whole-tree sojourn, emitted at final ack; closes the trace

	spanKindCount // sentinel; keep last
)

// spanKindNames is the canonical wire name per span kind, used by the
// NDJSON codec. Names are stable: changing one breaks trace consumers.
var spanKindNames = [spanKindCount]string{
	SpanInvalid: "invalid",
	SpanGate:    "gate",
	SpanWAL:     "wal",
	SpanQueue:   "queue",
	SpanService: "service",
	SpanShuttle: "shuttle",
	SpanRoot:    "root",
}

// String returns the canonical wire name for the span kind.
func (k SpanKind) String() string {
	if k >= spanKindCount {
		return "invalid"
	}
	return spanKindNames[k]
}

// SpanKindFromString maps a wire name back to its SpanKind (false for
// unknown names, including "invalid" — no emitter writes it).
func SpanKindFromString(s string) (SpanKind, bool) {
	for k := SpanGate; k < spanKindCount; k++ {
		if spanKindNames[k] == s {
			return k, true
		}
	}
	return SpanInvalid, false
}

// SpanRecord is one latency segment of a sampled root, in fixed shape so
// emission is a value copy into a preallocated ring slot — zero heap
// allocations on the data plane's hot path. String fields must be header
// copies of strings that already exist (bolt names, client ids), never
// formatted on the emit path. StartNS is wall-clock so segments from the
// gate, the engine and remote workers line up on one axis; DurNS values
// telescope: for every hop queue starts at the parent's service end, so
// a chain trace's segment durations sum exactly to the root span's.
type SpanRecord struct {
	Seq     uint64   // tracer emission sequence (assigned by EmitSpan)
	Trace   uint64   // trace id (the gate's admit sequence); never zero
	Kind    SpanKind // latency segment kind; see span kind docs
	Bolt    string   // bolt the segment ran on ("" for gate/wal/root)
	Tenant  string   // gate client id (gate/wal spans; "" elsewhere)
	Task    int      // task index the tuple was routed to
	Remote  bool     // segment crossed the worker shuttle
	StartNS int64    // segment start, unix nanoseconds
	DurNS   int64    // segment duration in nanoseconds
}

// spanShard is one ring of the tracer. Same discipline as the decision
// log's shard: append under the mutex, drop-newest on overflow.
type spanShard struct {
	mu  sync.Mutex
	buf []SpanRecord // append cursor is len(buf); capacity fixed at build
	_   [32]byte     // pad to keep neighbouring shards off one cache line
}

// TracerConfig sizes a Tracer. The zero value is usable: 4 shards x 1024
// spans, sampling every root, no sink or assembler (manual Close only).
type TracerConfig struct {
	// Shards is the ring shard count, rounded up to a power of two.
	Shards int
	// ShardCapacity is the span capacity per shard.
	ShardCapacity int
	// SamplePermille keeps N traces per 1000 roots (default 1000 = trace
	// everything). The decision is a deterministic hash of the trace id:
	// identical id streams sample identical roots, run to run, process
	// to process.
	SamplePermille int
	// Sink receives drained NDJSON span batches (nil: no file output).
	Sink Sink
	// Assembler, when non-nil, folds drained spans into completed traces
	// and latency-breakdown histograms on the drainer goroutine.
	Assembler *Assembler
	// FlushEvery is the drainer's sweep cadence (default 250ms).
	FlushEvery time.Duration
}

// Tracer is a bounded, sharded span buffer with deterministic trace
// sampling. All methods are nil-safe: a nil *Tracer samples nothing and
// ignores spans, so the disabled path costs one branch.
type Tracer struct {
	shards []*spanShard
	mask   uint64

	seq      atomic.Uint64 // spans offered
	permille atomic.Int64  // sampling knob, flippable at runtime
	dropped  atomic.Uint64 // spans lost to ring overflow

	sink       Sink
	asm        *Assembler
	flushEvery time.Duration
	drainBuf   []SpanRecord // drainer-owned scratch, reused every sweep
	encBuf     []byte       // drainer-owned encode scratch
	stop       chan struct{}
	done       chan struct{}
	closeOnce  sync.Once
}

// NewTracer builds a tracer. If cfg.Sink or cfg.Assembler is non-nil a
// single drainer goroutine starts sweeping the rings; Close stops it,
// flushes, and finalizes the assembler.
func NewTracer(cfg TracerConfig) *Tracer {
	nshards := cfg.Shards
	if nshards <= 0 {
		nshards = 4
	}
	pow := 1
	for pow < nshards {
		pow <<= 1
	}
	capacity := cfg.ShardCapacity
	if capacity <= 0 {
		capacity = 1024
	}
	permille := cfg.SamplePermille
	if permille <= 0 || permille > permilleScale {
		permille = permilleScale
	}
	flush := cfg.FlushEvery
	if flush <= 0 {
		flush = 250 * time.Millisecond
	}
	t := &Tracer{
		shards:     make([]*spanShard, pow),
		mask:       uint64(pow - 1),
		sink:       cfg.Sink,
		asm:        cfg.Assembler,
		flushEvery: flush,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	for i := range t.shards {
		t.shards[i] = &spanShard{buf: make([]SpanRecord, 0, capacity)}
	}
	t.permille.Store(int64(permille))
	if t.sink != nil || t.asm != nil {
		go t.drain()
	} else {
		close(t.done)
	}
	return t
}

// traceMix is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// hash so sequential gate admit sequences sample uniformly instead of in
// runs.
func traceMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4b9fe
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SampleTrace reports whether the root with this trace id is sampled.
// Deterministic in the id alone — the serve process and every worker
// agree on the verdict without coordination — and branchless-cheap when
// the knob is at 0 or 1000, so the sampled-out hot path stays in budget.
// Safe on a nil tracer (never samples).
func (t *Tracer) SampleTrace(id uint64) bool {
	if t == nil || id == 0 {
		return false
	}
	p := t.permille.Load()
	if p <= 0 {
		return false
	}
	if p >= permilleScale {
		return true
	}
	return traceMix(id)%permilleScale < uint64(p)
}

// EmitSpan records one segment of a sampled trace. The span is copied by
// value into a ring slot under a shard mutex — no allocation, no
// blocking; if the shard is full the span is dropped and counted (the
// assembler then reports the trace as never completing rather than
// inventing a partial sum). EmitSpan assigns Seq; other fields are the
// caller's. Safe on a nil tracer (no-op) and for concurrent use.
func (t *Tracer) EmitSpan(r *SpanRecord) {
	if t == nil {
		return
	}
	seq := t.seq.Add(1)
	s := t.shards[seq&t.mask]
	s.mu.Lock()
	if len(s.buf) == cap(s.buf) {
		s.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	s.buf = append(s.buf, *r)
	s.buf[len(s.buf)-1].Seq = seq
	s.mu.Unlock()
}

// SetSample re-aims the sampling knob to trace permille roots per 1000,
// effective for subsequent SampleTrace calls. Values are clamped to
// [0, 1000]. Safe on a nil tracer and during concurrent emission.
func (t *Tracer) SetSample(permille int) {
	if t == nil {
		return
	}
	if permille < 0 {
		permille = 0
	}
	if permille > permilleScale {
		permille = permilleScale
	}
	t.permille.Store(int64(permille))
}

// TraceStats is a point-in-time account of the tracer's traffic.
type TraceStats struct {
	Spans   uint64 // spans offered to EmitSpan
	Dropped uint64 // spans lost to ring overflow
}

// Stats reports span/drop counters. Safe on a nil tracer.
func (t *Tracer) Stats() TraceStats {
	if t == nil {
		return TraceStats{}
	}
	return TraceStats{Spans: t.seq.Load(), Dropped: t.dropped.Load()}
}

// Assembler returns the attached trace assembler (nil when none). Safe
// on a nil tracer.
func (t *Tracer) Assembler() *Assembler {
	if t == nil {
		return nil
	}
	return t.asm
}

// collect moves all buffered spans into the drainer scratch, sorted by
// emission sequence, and resets the rings.
func (t *Tracer) collect() []SpanRecord {
	t.drainBuf = t.drainBuf[:0]
	for _, s := range t.shards {
		s.mu.Lock()
		t.drainBuf = append(t.drainBuf, s.buf...)
		s.buf = s.buf[:0]
		s.mu.Unlock()
	}
	slices.SortFunc(t.drainBuf, func(a, b SpanRecord) int {
		switch {
		case a.Seq < b.Seq:
			return -1
		case a.Seq > b.Seq:
			return 1
		}
		return 0
	})
	return t.drainBuf
}

// drain is the single background drainer: every FlushEvery it sweeps the
// rings, feeds the assembler, encodes the batch as NDJSON into a reused
// scratch buffer, and writes it to the sink. One goroutine, one encode
// buffer — assembly and encoding cost never land on an executor.
func (t *Tracer) drain() {
	defer close(t.done)
	tick := time.NewTicker(t.flushEvery)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			t.flushOnce()
		case <-t.stop:
			t.flushOnce()
			return
		}
	}
}

// flushOnce sweeps one batch through the assembler and the sink. The
// assembler sees the batch boundary (endBatch) so it can hold a freshly
// rooted trace one sweep before finalizing: a segment emitted before the
// root span is guaranteed to be in the rings by the time the root is
// observed, hence collected no later than the next sweep.
func (t *Tracer) flushOnce() {
	recs := t.collect()
	if len(recs) == 0 && t.asm == nil {
		return
	}
	if t.asm != nil {
		for i := range recs {
			t.asm.observe(&recs[i])
		}
		t.asm.endBatch()
	}
	if t.sink == nil || len(recs) == 0 {
		return
	}
	t.encBuf = t.encBuf[:0]
	for i := range recs {
		t.encBuf = AppendSpan(t.encBuf, &recs[i])
		t.encBuf = append(t.encBuf, '\n')
	}
	t.sink.Write(t.encBuf)
}

// Close stops the drainer (if any), flushes buffered spans, finalizes
// every rooted trace in the assembler, and closes the sink. Safe on a
// nil tracer and safe to call twice.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.closeOnce.Do(func() { close(t.stop) })
	<-t.done
	if t.asm != nil {
		t.asm.finalizeAll()
	}
	if t.sink != nil {
		return t.sink.Close()
	}
	return nil
}
