// assemble.go folds drained spans back into whole traces. The assembler
// runs on the tracer's drainer goroutine: executors never pay for trace
// assembly, and because the drainer observes spans in emission-sequence
// order within a sweep, the root span (always emitted last — the final
// ack happens-after every segment emission) reliably closes its trace.
// A freshly rooted trace is held one sweep before finalizing: a segment
// emitted just before the root on another shard may be collected one
// sweep later, never more.
package obs

import "sync"

// Trace is one completed, reassembled root: its end-to-end sojourn and
// the measured decomposition into the paper's latency segments. For a
// chain topology the segments telescope exactly: QueueNS + ServiceNS +
// ShuttleNS == SojournNS, which is the reconciliation the golden trace
// experiment asserts span by span.
type Trace struct {
	ID        uint64 // trace id (the gate's admit sequence)
	Tenant    string // gate client id ("" when the trace skipped the gate)
	StartNS   int64  // root arrival, unix nanoseconds
	SojournNS int64  // whole-tree sojourn from the root span
	GateNS    int64  // admit mark duration (0 by construction)
	WALNS     int64  // durable append segments
	QueueNS   int64  // queue-wait segments summed over hops
	ServiceNS int64  // service segments summed over hops
	ShuttleNS int64  // remote shuttle residue summed over hops
	Spans     int    // segment spans folded in (root span excluded)
	Remote    int    // segments that crossed the worker shuttle
}

// partialTrace accumulates segments until the root span arrives.
type partialTrace struct {
	tr     Trace
	rooted bool
}

// AssemblerConfig wires an Assembler's outputs. All fields are optional;
// a zero config still assembles and counts.
type AssemblerConfig struct {
	// QueueWait/Service/Shuttle observe each completed trace's segment
	// sums, in nanoseconds (the drs_trace_*_ns families).
	QueueWait *Histogram
	Service   *Histogram
	Shuttle   *Histogram
	// BoltQueueWait/BoltService observe individual hop segments per bolt
	// name, in nanoseconds (per-bolt breakdown families).
	BoltQueueWait map[string]*Histogram
	BoltService   map[string]*Histogram
	// OnComplete is called for every finalized trace, on the drainer
	// goroutine. Keep it cheap; experiments use it to capture traces.
	OnComplete func(Trace)
	// MaxPending bounds the partial-trace table (default 65536). Spans
	// for new traces beyond the bound are counted as lost, not buffered.
	MaxPending int
}

// Assembler folds spans into completed traces and latency-breakdown
// histograms. observe/endBatch run on the drainer goroutine; Stats may
// be called from anywhere (the /metrics scrape path).
type Assembler struct {
	cfg AssemblerConfig

	mu        sync.Mutex
	partial   map[uint64]*partialTrace
	rooted    []rootedEntry // finalize queue, appended in sweep order
	sweep     uint64        // current sweep number
	started   uint64
	completed uint64
	spans     uint64
	lost      uint64
}

// rootedEntry queues a rooted trace for finalization after a one-sweep
// grace period.
type rootedEntry struct {
	id    uint64
	sweep uint64
}

// NewAssembler builds an assembler.
func NewAssembler(cfg AssemblerConfig) *Assembler {
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 65536
	}
	return &Assembler{cfg: cfg, partial: make(map[uint64]*partialTrace)}
}

// observe folds one span. Called by the tracer's drainer in emission-
// sequence order within a sweep.
func (a *Assembler) observe(r *SpanRecord) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p := a.partial[r.Trace]
	if p == nil {
		if len(a.partial) >= a.cfg.MaxPending {
			a.lost++
			return
		}
		p = &partialTrace{tr: Trace{ID: r.Trace}}
		a.partial[r.Trace] = p
		a.started++
	}
	if r.Kind != SpanRoot {
		a.spans++
		p.tr.Spans++
		if r.Remote {
			p.tr.Remote++
		}
	}
	switch r.Kind {
	case SpanGate:
		p.tr.GateNS += r.DurNS
		p.tr.Tenant = r.Tenant
	case SpanWAL:
		p.tr.WALNS += r.DurNS
		if p.tr.Tenant == "" {
			p.tr.Tenant = r.Tenant
		}
	case SpanQueue:
		p.tr.QueueNS += r.DurNS
		if h := a.cfg.BoltQueueWait[r.Bolt]; h != nil {
			h.Observe(float64(r.DurNS))
		}
	case SpanService:
		p.tr.ServiceNS += r.DurNS
		if h := a.cfg.BoltService[r.Bolt]; h != nil {
			h.Observe(float64(r.DurNS))
		}
	case SpanShuttle:
		p.tr.ShuttleNS += r.DurNS
	case SpanRoot:
		p.tr.StartNS = r.StartNS
		p.tr.SojournNS = r.DurNS
		if !p.rooted {
			p.rooted = true
			a.rooted = append(a.rooted, rootedEntry{id: r.Trace, sweep: a.sweep})
		}
	}
}

// endBatch marks a sweep boundary and finalizes every trace whose rooting
// sweep has had one full sweep of grace after it: a segment emitted on
// another shard just before the root may be collected one sweep after it,
// and that straggler sweep has now passed.
func (a *Assembler) endBatch() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sweep++
	if a.sweep >= 1 {
		a.finalizeBeforeLocked(a.sweep - 1)
	}
}

// finalizeAll flushes the grace period: every rooted trace finalizes now.
// The tracer calls this on Close, after the final sweep.
func (a *Assembler) finalizeAll() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.finalizeBeforeLocked(a.sweep + 1)
}

// finalizeBeforeLocked finalizes queued roots from sweeps < bound.
func (a *Assembler) finalizeBeforeLocked(bound uint64) {
	n := 0
	for n < len(a.rooted) && a.rooted[n].sweep < bound {
		n++
	}
	if n == 0 {
		return
	}
	for _, e := range a.rooted[:n] {
		p := a.partial[e.id]
		if p == nil {
			continue
		}
		delete(a.partial, e.id)
		a.completed++
		if h := a.cfg.QueueWait; h != nil {
			h.Observe(float64(p.tr.QueueNS))
		}
		if h := a.cfg.Service; h != nil {
			h.Observe(float64(p.tr.ServiceNS))
		}
		if h := a.cfg.Shuttle; h != nil {
			h.Observe(float64(p.tr.ShuttleNS))
		}
		if a.cfg.OnComplete != nil {
			a.cfg.OnComplete(p.tr)
		}
	}
	a.rooted = a.rooted[:copy(a.rooted, a.rooted[n:])]
}

// AssembleStats is a point-in-time account of trace assembly.
type AssembleStats struct {
	Started   uint64 // distinct trace ids seen
	Completed uint64 // traces finalized (root span arrived)
	Spans     uint64 // segment spans folded (root spans excluded)
	Lost      uint64 // spans refused because the partial table was full
	Pending   int    // traces still waiting for their root span
}

// Stats reports assembly counters. Safe for concurrent use with the
// drainer.
func (a *Assembler) Stats() AssembleStats {
	if a == nil {
		return AssembleStats{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return AssembleStats{
		Started:   a.started,
		Completed: a.completed,
		Spans:     a.spans,
		Lost:      a.lost,
		Pending:   len(a.partial),
	}
}
