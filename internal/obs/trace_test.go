package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanCodecRoundTrip(t *testing.T) {
	cases := []SpanRecord{
		{Seq: 1, Trace: 7, Kind: SpanGate, Tenant: "gold", StartNS: 1234567890},
		{Seq: 2, Trace: 7, Kind: SpanWAL, Tenant: "gold", StartNS: 1234567890, DurNS: 4200},
		{Seq: 3, Trace: 7, Kind: SpanQueue, Bolt: "count", Task: 3, StartNS: 1234567999, DurNS: 150},
		{Seq: 4, Trace: 7, Kind: SpanService, Bolt: "count", Task: 3, Remote: true,
			StartNS: 1234568149, DurNS: 90000},
		{Seq: 5, Trace: 7, Kind: SpanShuttle, Bolt: "count", Task: 3, Remote: true, DurNS: 51000},
		{Seq: 6, Trace: 7, Kind: SpanRoot, StartNS: 1234567890, DurNS: 145350},
		{Seq: 18446744073709551615, Trace: 18446744073709551615, Kind: SpanRoot,
			StartNS: 9223372036854775807, DurNS: -9223372036854775808},
		{Seq: 8, Trace: 1, Kind: SpanQueue, Bolt: `we"ird\bolt` + "\n\t\x01", Tenant: "é"},
	}
	for i, want := range cases {
		enc := AppendSpan(nil, &want)
		got, err := ParseSpan(enc)
		if err != nil {
			t.Fatalf("case %d: parse(%s): %v", i, enc, err)
		}
		if got != want {
			t.Fatalf("case %d round-trip mismatch:\n enc  %s\n got  %+v\n want %+v", i, enc, got, want)
		}
		// Canonical: re-encoding the parsed span is byte-identical.
		enc2 := AppendSpan(nil, &got)
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("case %d re-encode not canonical:\n first  %s\n second %s", i, enc, enc2)
		}
	}
}

func TestSpanCodecOmitsZeroFields(t *testing.T) {
	enc := AppendSpan(nil, &SpanRecord{Seq: 9, Trace: 4, Kind: SpanGate, Tenant: "t"})
	want := `{"seq":9,"trace":4,"kind":"gate","tenant":"t"}`
	if string(enc) != want {
		t.Fatalf("encoding = %s, want %s", enc, want)
	}
}

func TestParseSpanRejectsBadInput(t *testing.T) {
	bad := []string{
		``,                                     // empty
		`{`,                                    // truncated
		`[1,2]`,                                // wrong JSON shape
		`{"seq":1,"kind":"root"} trailing`,     // trailing garbage
		`{"seq":1,"kind":"root"}{"seq":2}`,     // two objects on a line
		`{"seq":1,"kind":"no-such-kind"}`,      // unknown kind
		`{"seq":1,"kind":"invalid"}`,           // reserved kind name
		`{"seq":1,"kind":"root","bogus":1}`,    // unknown field
		`{"seq":-1,"kind":"root"}`,             // negative uint
		`{"seq":1,"kind":"root","task":1.5}`,   // non-integer int field
		`{"seq":1,"kind":"root","dur":1e999}`,  // number out of range
		`{"seq":1,"kind":"root","remote":"t"}`, // wrong field type
	}
	for _, in := range bad {
		if _, err := ParseSpan([]byte(in)); err == nil {
			t.Fatalf("ParseSpan(%q) succeeded, want error", in)
		}
	}
}

func TestSpanKindNamesRoundTrip(t *testing.T) {
	for k := SpanGate; k < spanKindCount; k++ {
		name := k.String()
		if name == "" || name == "invalid" {
			t.Fatalf("span kind %d has no wire name", k)
		}
		back, ok := SpanKindFromString(name)
		if !ok || back != k {
			t.Fatalf("span kind %d name %q does not round-trip (got %d, %v)", k, name, back, ok)
		}
	}
	if _, ok := SpanKindFromString("invalid"); ok {
		t.Fatal(`SpanKindFromString("invalid") must be rejected`)
	}
	if _, ok := SpanKindFromString("no-such-kind"); ok {
		t.Fatal("unknown span kind name accepted")
	}
}

// FuzzTraceRecord is the span codec's decode ⇒ canonical re-encode
// round-trip: any input either fails to parse or parses to a span whose
// re-encoding is stable. Never panics.
func FuzzTraceRecord(f *testing.F) {
	seed := [][]byte{
		[]byte(`{"seq":1,"trace":7,"kind":"gate","tenant":"gold","start":1234567890}`),
		[]byte(`{"seq":2,"trace":7,"kind":"wal","tenant":"gold","start":1234567890,"dur":4200}`),
		[]byte(`{"seq":3,"trace":7,"kind":"queue","bolt":"count","task":3,"start":99,"dur":150}`),
		[]byte(`{"seq":4,"trace":7,"kind":"service","bolt":"count","task":3,"remote":true,"dur":90000}`),
		[]byte(`{"seq":5,"trace":7,"kind":"shuttle","bolt":"count","remote":true,"dur":51000}`),
		[]byte(`{"seq":6,"trace":7,"kind":"root","start":1234567890,"dur":145350}`),
		[]byte(`{"kind":"root"}`),
		[]byte(`{"seq":1,"trace":1,"kind":"queue","bolt":"é\n\"x\""}`),
		[]byte(`{}`),
		[]byte(`[]`),
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r1, err := ParseSpan(data)
		if err != nil {
			return // rejection is a valid outcome; panics are not
		}
		enc1 := AppendSpan(nil, &r1)
		r2, err := ParseSpan(enc1)
		if err != nil {
			t.Fatalf("canonical re-encode does not parse: %s: %v", enc1, err)
		}
		if r1 != r2 {
			t.Fatalf("round-trip mismatch:\n in   %q\n r1   %+v\n enc  %s\n r2   %+v", data, r1, enc1, r2)
		}
		enc2 := AppendSpan(nil, &r2)
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("re-encode unstable:\n first  %s\n second %s", enc1, enc2)
		}
	})
}

func TestSampleTraceDeterministicAndProportional(t *testing.T) {
	a := NewTracer(TracerConfig{SamplePermille: 250})
	b := NewTracer(TracerConfig{SamplePermille: 250})
	defer a.Close()
	defer b.Close()
	kept := 0
	for id := uint64(1); id <= 4000; id++ {
		sa, sb := a.SampleTrace(id), b.SampleTrace(id)
		if sa != sb {
			t.Fatalf("two tracers disagree on id %d: %v vs %v", id, sa, sb)
		}
		if sa {
			kept++
		}
	}
	// The splitmix hash is uniform: 250 permille of 4000 ids is 1000,
	// give or take sampling noise.
	if kept < 800 || kept > 1200 {
		t.Fatalf("sampled %d of 4000 at 250 permille, want ~1000", kept)
	}
}

func TestSampleTraceKnobEdges(t *testing.T) {
	tr := NewTracer(TracerConfig{SamplePermille: 1000})
	defer tr.Close()
	if !tr.SampleTrace(1) {
		t.Fatal("permille 1000 must sample everything")
	}
	if tr.SampleTrace(0) {
		t.Fatal("trace id 0 is the unsampled sentinel; it must never sample")
	}
	tr.SetSample(0)
	if tr.SampleTrace(1) {
		t.Fatal("permille 0 must sample nothing")
	}
	tr.SetSample(2000) // clamped to 1000
	if !tr.SampleTrace(1) {
		t.Fatal("clamped knob must sample everything")
	}
	var nilT *Tracer
	if nilT.SampleTrace(1) {
		t.Fatal("nil tracer must never sample")
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.EmitSpan(&SpanRecord{Trace: 1, Kind: SpanRoot})
	tr.SetSample(10)
	if s := tr.Stats(); s != (TraceStats{}) {
		t.Fatalf("nil tracer stats = %+v, want zero", s)
	}
	if tr.Assembler() != nil {
		t.Fatal("nil tracer must have a nil assembler")
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("nil tracer close: %v", err)
	}
}

func TestTracerDropsOnOverflowNeverBlocks(t *testing.T) {
	tr := NewTracer(TracerConfig{Shards: 1, ShardCapacity: 8})
	for i := 0; i < 20; i++ {
		tr.EmitSpan(&SpanRecord{Trace: uint64(i + 1), Kind: SpanRoot})
	}
	st := tr.Stats()
	if st.Spans != 20 {
		t.Fatalf("spans %d, want 20", st.Spans)
	}
	if st.Dropped != 12 {
		t.Fatalf("dropped %d, want 12 (capacity 8)", st.Dropped)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestTracerAssemblesAndSinks drives the full pipeline: spans for two
// traces (one with a remote hop) through the rings, the drainer, the
// assembler and the NDJSON sink, then checks the reassembled traces'
// telescoping sums, the histogram folds, and that every sink line parses.
func TestTracerAssemblesAndSinks(t *testing.T) {
	reg := NewRegistry()
	bounds := []float64{1e3, 1e6, 1e9}
	var (
		mu        sync.Mutex
		completed []Trace
	)
	asm := NewAssembler(AssemblerConfig{
		QueueWait:     reg.Histogram("q_ns", "t", bounds, ""),
		Service:       reg.Histogram("s_ns", "t", bounds, ""),
		Shuttle:       reg.Histogram("x_ns", "t", bounds, ""),
		BoltQueueWait: map[string]*Histogram{"count": reg.Histogram("bq_ns", "t", bounds, `bolt="count"`)},
		BoltService:   map[string]*Histogram{"count": reg.Histogram("bs_ns", "t", bounds, `bolt="count"`)},
		OnComplete: func(tr Trace) {
			mu.Lock()
			completed = append(completed, tr)
			mu.Unlock()
		},
	})
	var sinkBuf bytes.Buffer
	tr := NewTracer(TracerConfig{
		Sink:       NewWriterSink(&sinkBuf),
		Assembler:  asm,
		FlushEvery: time.Millisecond,
	})

	// Trace 11: gate, wal, one local hop, root. Segments telescope.
	tr.EmitSpan(&SpanRecord{Trace: 11, Kind: SpanGate, Tenant: "gold", StartNS: 1000})
	tr.EmitSpan(&SpanRecord{Trace: 11, Kind: SpanWAL, Tenant: "gold", StartNS: 1000, DurNS: 50})
	tr.EmitSpan(&SpanRecord{Trace: 11, Kind: SpanQueue, Bolt: "count", StartNS: 1050, DurNS: 200})
	tr.EmitSpan(&SpanRecord{Trace: 11, Kind: SpanService, Bolt: "count", StartNS: 1250, DurNS: 700})
	tr.EmitSpan(&SpanRecord{Trace: 11, Kind: SpanRoot, StartNS: 1050, DurNS: 900})
	// Trace 12: one remote hop with a shuttle residue.
	tr.EmitSpan(&SpanRecord{Trace: 12, Kind: SpanGate, Tenant: "bronze", StartNS: 2000})
	tr.EmitSpan(&SpanRecord{Trace: 12, Kind: SpanQueue, Bolt: "count", Remote: true, StartNS: 2000, DurNS: 100})
	tr.EmitSpan(&SpanRecord{Trace: 12, Kind: SpanService, Bolt: "count", Remote: true, StartNS: 2100, DurNS: 300})
	tr.EmitSpan(&SpanRecord{Trace: 12, Kind: SpanShuttle, Bolt: "count", Remote: true, StartNS: 2000, DurNS: 42})
	tr.EmitSpan(&SpanRecord{Trace: 12, Kind: SpanRoot, StartNS: 2000, DurNS: 442})

	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(completed) != 2 {
		t.Fatalf("completed %d traces, want 2: %+v", len(completed), completed)
	}
	byID := map[uint64]Trace{completed[0].ID: completed[0], completed[1].ID: completed[1]}
	t11 := byID[11]
	if t11.Tenant != "gold" || t11.WALNS != 50 || t11.QueueNS != 200 || t11.ServiceNS != 700 ||
		t11.ShuttleNS != 0 || t11.SojournNS != 900 || t11.Spans != 4 || t11.Remote != 0 {
		t.Fatalf("trace 11 reassembled wrong: %+v", t11)
	}
	if t11.QueueNS+t11.ServiceNS+t11.ShuttleNS != t11.SojournNS {
		t.Fatalf("trace 11 does not telescope: %+v", t11)
	}
	t12 := byID[12]
	if t12.Tenant != "bronze" || t12.QueueNS != 100 || t12.ServiceNS != 300 ||
		t12.ShuttleNS != 42 || t12.SojournNS != 442 || t12.Remote != 3 {
		t.Fatalf("trace 12 reassembled wrong: %+v", t12)
	}

	st := asm.Stats()
	if st.Started != 2 || st.Completed != 2 || st.Pending != 0 || st.Lost != 0 {
		t.Fatalf("assembler stats %+v, want 2 started, 2 completed, 0 pending", st)
	}
	if st.Spans != 8 {
		t.Fatalf("assembler folded %d segment spans, want 8", st.Spans)
	}

	lines := strings.Split(strings.TrimSpace(sinkBuf.String()), "\n")
	if len(lines) != 10 {
		t.Fatalf("sink got %d lines, want 10:\n%s", len(lines), sinkBuf.String())
	}
	lastSeq := uint64(0)
	for _, line := range lines {
		r, err := ParseSpan([]byte(line))
		if err != nil {
			t.Fatalf("sink line does not parse: %q: %v", line, err)
		}
		if r.Seq <= lastSeq {
			t.Fatalf("sink spans out of emission order: seq %d after %d", r.Seq, lastSeq)
		}
		lastSeq = r.Seq
	}
}

// TestAssemblerGracePeriod pins the cross-shard straggler contract: a
// trace rooted in sweep N finalizes after the *next* sweep boundary, so a
// segment collected one sweep late still lands in its trace.
func TestAssemblerGracePeriod(t *testing.T) {
	var completed []Trace
	asm := NewAssembler(AssemblerConfig{OnComplete: func(tr Trace) { completed = append(completed, tr) }})
	asm.observe(&SpanRecord{Trace: 5, Kind: SpanQueue, Bolt: "b", DurNS: 10})
	asm.observe(&SpanRecord{Trace: 5, Kind: SpanRoot, DurNS: 30})
	asm.endBatch()
	if len(completed) != 0 {
		t.Fatalf("trace finalized at its rooting sweep; the grace sweep must pass first")
	}
	// The straggler arrives in the next sweep and still counts.
	asm.observe(&SpanRecord{Trace: 5, Kind: SpanService, Bolt: "b", DurNS: 20})
	asm.endBatch()
	if len(completed) != 1 {
		t.Fatalf("trace not finalized after the grace sweep")
	}
	if got := completed[0]; got.QueueNS != 10 || got.ServiceNS != 20 || got.SojournNS != 30 {
		t.Fatalf("straggler segment lost: %+v", got)
	}
}

func TestAssemblerBoundsPendingTable(t *testing.T) {
	asm := NewAssembler(AssemblerConfig{MaxPending: 4})
	for id := uint64(1); id <= 10; id++ {
		asm.observe(&SpanRecord{Trace: id, Kind: SpanQueue, DurNS: 1})
	}
	st := asm.Stats()
	if st.Started != 4 || st.Pending != 4 {
		t.Fatalf("pending table not bounded: %+v", st)
	}
	if st.Lost != 6 {
		t.Fatalf("lost %d spans, want 6", st.Lost)
	}
}

func TestEmitSpanZeroAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race")
	}
	tr := NewTracer(TracerConfig{Shards: 4, ShardCapacity: 1 << 16})
	rec := SpanRecord{Trace: 7, Kind: SpanService, Bolt: "count", Task: 3,
		StartNS: 1234567890, DurNS: 90000}
	allocs := testing.AllocsPerRun(10000, func() {
		tr.EmitSpan(&rec)
	})
	if allocs != 0 {
		t.Fatalf("EmitSpan allocates %.1f/op, want 0", allocs)
	}
}

func TestSampleTraceZeroAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race")
	}
	tr := NewTracer(TracerConfig{SamplePermille: 10})
	defer tr.Close()
	id := uint64(0)
	allocs := testing.AllocsPerRun(10000, func() {
		id++
		tr.SampleTrace(id)
	})
	if allocs != 0 {
		t.Fatalf("SampleTrace allocates %.1f/op, want 0", allocs)
	}
}

func TestAppendSpanSteadyStateZeroAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race")
	}
	rec := SpanRecord{Seq: 42, Trace: 7, Kind: SpanService, Bolt: "count", Tenant: "gold",
		Task: 3, Remote: true, StartNS: 1234567890, DurNS: 90000}
	buf := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(10000, func() {
		buf = AppendSpan(buf[:0], &rec)
	})
	if allocs != 0 {
		t.Fatalf("AppendSpan with warm buffer allocates %.1f/op, want 0", allocs)
	}
}
