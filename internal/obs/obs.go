// Package obs is the control plane's observability layer: a structured,
// bounded, allocation-disciplined decision log plus a hand-rolled
// Prometheus-format metrics registry. It follows the decision-log plugin
// idiom popularized by OPA: deciders emit fixed-shape records into a
// sharded ring buffer (sample-then-store, drop-counter on overflow, never
// block), and a single drainer goroutine encodes NDJSON to a sink off the
// hot path. The package depends only on the standard library so every
// subsystem (engine, cluster, ingest, loop, worker, wal) can emit into it
// without import cycles.
package obs

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// Kind tags what control decision a Record captures. The zero Kind is
// invalid so a forgotten tag is visible in the log.
type Kind uint8

// Decision kinds. Scheduler kinds mirror cluster.SchedulerEvent kinds
// one-for-one; the rest cover the ingest gate, the control loop, the
// engine's self-heal path and the worker tier.
const (
	KindInvalid Kind = iota

	// Scheduler (cluster) decisions.
	KindRegister       // tenant lease registered; To = initial grant
	KindGrant          // grant changed by arbitration; From -> To slots
	KindShrink         // voluntary shrink; From -> To slots
	KindPreempt        // Appendix-B guarded transfer; see Gain/Loss/Lambda0 fields
	KindSlotsLost      // machine failure took slots; From -> To
	KindRelease        // tenant lease released
	KindPool           // pool capacity changed; From -> To slots
	KindPriority       // tenant priority changed; To = new priority
	KindMachineFail    // machine failed; To = machine id
	KindMachineRecover // machine recovered; To = machine id
	KindStraggler      // machine marked straggler; To = machine id
	KindStragglerClear // straggler cleared; To = machine id

	// Ingest gate decisions.
	KindShedPlan // gate re-planned admission; Fraction/Rate/Lambda0/Flag

	// Control loop (supervisor) decisions.
	KindRefit       // scale decision applied; From -> To executors
	KindSuppress    // scale decision suppressed (cooldown/hysteresis)
	KindRefitFailed // actuation failed; Detail holds the action

	// Engine / worker tier events.
	KindHeal        // remote binding swapped local; Peer = bolt, To = slot
	KindWorkerJoin  // worker registered; To = machine id
	KindWorkerDeath // worker deregistered/died; To = machine id

	kindCount // sentinel; keep last
)

// kindNames is the canonical wire name per kind, used by the NDJSON codec
// and by /metrics label sets. Names are stable: changing one breaks log
// consumers.
var kindNames = [kindCount]string{
	KindInvalid:        "invalid",
	KindRegister:       "register",
	KindGrant:          "grant",
	KindShrink:         "shrink",
	KindPreempt:        "preempt",
	KindSlotsLost:      "slots-lost",
	KindRelease:        "release",
	KindPool:           "pool",
	KindPriority:       "priority",
	KindMachineFail:    "machine-fail",
	KindMachineRecover: "machine-recover",
	KindStraggler:      "straggler",
	KindStragglerClear: "straggler-clear",
	KindShedPlan:       "shed-plan",
	KindRefit:          "refit",
	KindSuppress:       "suppress",
	KindRefitFailed:    "refit-failed",
	KindHeal:           "heal",
	KindWorkerJoin:     "worker-join",
	KindWorkerDeath:    "worker-death",
}

// String returns the canonical wire name for the kind.
func (k Kind) String() string {
	if k >= kindCount {
		return "invalid"
	}
	return kindNames[k]
}

// KindFromString maps a wire name back to its Kind (false for unknown
// names, including "invalid" — no decider emits it).
func KindFromString(s string) (Kind, bool) {
	for k := KindRegister; k < kindCount; k++ {
		if kindNames[k] == s {
			return k, true
		}
	}
	return KindInvalid, false
}

// Record is one control decision in fixed shape: every kind uses the same
// struct so emission is a value copy into a preallocated ring slot — zero
// heap allocations. String fields must be header copies of strings that
// already exist (tenant names, bolt names, constant action words), never
// formatted on the emit path. Field semantics by kind:
//
//   - preempt: Tenant = claimant, Peer = victim, From -> To = victim's
//     grant change, Gain = claimant GrowBenefit (util/slot), Loss = victim
//     ShrinkCost, Lambda0/PeerLambda0 = claimant/victim external arrival
//     rates, PauseNS = rebalance pause charged by the Appendix-B verdict,
//     Flag = the tenant pair was priority-ordered (claimant outranks victim).
//   - shed-plan: Tenant = plan scope, Fraction = admit fraction,
//     Rate = sustainable rate (tuples/s), Lambda0 = offered rate,
//     Flag = scale-out viable, Gain/Loss = admitted/shed record deltas
//     since the previous plan (scenario drivers; the live gate leaves
//     them zero).
//   - refit/suppress/refit-failed: Tenant = topology, Detail = action,
//     From -> To = executor total change, Gain = estimated sojourn (s),
//     PauseNS = estimated rebalance pause, Flag = decision was preempted
//     by the scheduler rather than chosen by the controller.
//   - scheduler kinds: Tenant = lease, From -> To = slot change; machine
//     kinds put the machine id in To.
//   - heal: Peer = bolt name, To = executor slot index.
//   - worker-join/worker-death: Peer = worker name, To = machine id.
type Record struct {
	Seq         uint64  // global emission sequence (assigned by Emit)
	At          int64   // unix nanoseconds (stamped by Emit when zero)
	Kind        Kind    // decision kind; see kind docs
	Tenant      string  // acting tenant/lease/topology ("" when n/a)
	Peer        string  // counterparty: preemption victim, bolt, worker
	From        int     // prior value (slots, executors)
	To          int     // new value (slots, executors, machine id)
	Gain        float64 // claimant benefit (util/slot) or estimated sojourn
	Loss        float64 // victim shrink cost (util/slot)
	Lambda0     float64 // claimant external arrival rate (tuples/s)
	PeerLambda0 float64 // victim external arrival rate (tuples/s)
	Fraction    float64 // admit/shed fraction in [0,1]
	Rate        float64 // sustainable rate (tuples/s)
	PauseNS     int64   // rebalance pause charged to the decision
	Flag        bool    // kind-dependent boolean verdict input
	Detail      string  // short constant tag (action word, reason)
}

// shard is one ring of the log. Emission appends under the shard mutex;
// the drainer swaps the filled region out wholesale. Fixed-capacity, drop
// on overflow: a slow drainer costs records (counted), never latency.
type shard struct {
	mu  sync.Mutex
	buf []Record // append cursor is len(buf); capacity fixed at build
	_   [32]byte // pad to keep neighbouring shards off one cache line
}

// Config sizes a Log. The zero value is usable: 4 shards x 1024 records,
// sampling every record, no sink (manual Sweep only).
type Config struct {
	// Shards is the ring shard count, rounded up to a power of two.
	Shards int
	// ShardCapacity is the record capacity per shard.
	ShardCapacity int
	// SamplePermille keeps N records per 1000 emissions (default 1000 =
	// keep everything). Sampling is deterministic over the emission
	// sequence, so identical runs keep identical records.
	SamplePermille int
	// Sink receives drained NDJSON batches. Nil means no drainer
	// goroutine runs; records wait in the rings for a manual Sweep.
	Sink Sink
	// FlushEvery is the drainer's sweep cadence (default 250ms).
	FlushEvery time.Duration
	// Now supplies timestamps (default time.Now). Virtual-time
	// experiments inject their simulated clock here.
	Now func() time.Time
}

// Log is a bounded, sharded, sampled decision log. All methods are
// nil-safe: a nil *Log ignores emissions, so wiring is optional
// everywhere and the disabled path costs one branch.
type Log struct {
	shards []*shard
	mask   uint64
	now    func() time.Time

	seq      atomic.Uint64 // emissions offered (pre-sampling)
	permille atomic.Int64  // sampling knob, flippable at runtime
	dropped  atomic.Uint64 // records lost to ring overflow
	thinned  atomic.Uint64 // records skipped by sampling

	sink       Sink
	flushEvery time.Duration
	drainBuf   []Record // drainer-owned scratch, reused every sweep
	encBuf     []byte   // drainer-owned encode scratch
	stop       chan struct{}
	done       chan struct{}
	closeOnce  sync.Once
}

// NewLog builds a decision log. If cfg.Sink is non-nil a single drainer
// goroutine starts sweeping the rings; Close stops it and flushes.
func NewLog(cfg Config) *Log {
	nshards := cfg.Shards
	if nshards <= 0 {
		nshards = 4
	}
	// Round up to a power of two so shard choice is a mask, not a mod.
	pow := 1
	for pow < nshards {
		pow <<= 1
	}
	capacity := cfg.ShardCapacity
	if capacity <= 0 {
		capacity = 1024
	}
	permille := cfg.SamplePermille
	if permille <= 0 || permille > permilleScale {
		permille = permilleScale
	}
	flush := cfg.FlushEvery
	if flush <= 0 {
		flush = 250 * time.Millisecond
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	l := &Log{
		shards:     make([]*shard, pow),
		mask:       uint64(pow - 1),
		now:        now,
		sink:       cfg.Sink,
		flushEvery: flush,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	for i := range l.shards {
		l.shards[i] = &shard{buf: make([]Record, 0, capacity)}
	}
	l.permille.Store(int64(permille))
	if l.sink != nil {
		go l.drain()
	} else {
		close(l.done)
	}
	return l
}

// permilleScale is the denominator of the sampling knob.
const permilleScale = 1000

// thinAdmit reports whether the seq-th emission survives permille
// sampling — the same deterministic thinning the ingest gate uses: admit
// when the scaled counter crosses an integer boundary, which spreads kept
// records evenly instead of front-loading them.
func thinAdmit(seq uint64, permille int64) bool {
	if permille >= permilleScale {
		return true
	}
	if permille <= 0 {
		return false
	}
	p := uint64(permille)
	return seq*p/permilleScale != (seq-1)*p/permilleScale
}

// Emit records one decision. The record is copied by value into a ring
// slot under a shard mutex — no allocation, no blocking; if the shard is
// full the record is dropped and counted. Emit assigns Seq always and At
// when the caller left it zero (deterministic drivers stamp their own
// virtual time); other fields are the caller's. Safe on a nil log (no-op)
// and for concurrent use.
func (l *Log) Emit(r *Record) {
	if l == nil {
		return
	}
	seq := l.seq.Add(1)
	if !thinAdmit(seq, l.permille.Load()) {
		l.thinned.Add(1)
		return
	}
	at := r.At
	if at == 0 {
		at = l.now().UnixNano()
	}
	s := l.shards[seq&l.mask]
	s.mu.Lock()
	if len(s.buf) == cap(s.buf) {
		s.mu.Unlock()
		l.dropped.Add(1)
		return
	}
	s.buf = append(s.buf, *r)
	rec := &s.buf[len(s.buf)-1]
	rec.Seq = seq
	rec.At = at
	s.mu.Unlock()
}

// SetSample re-aims the sampling knob to keep permille records per 1000
// emissions, effective for subsequent emissions. Values are clamped to
// [0, 1000]. Safe on a nil log and during concurrent emission.
func (l *Log) SetSample(permille int) {
	if l == nil {
		return
	}
	if permille < 0 {
		permille = 0
	}
	if permille > permilleScale {
		permille = permilleScale
	}
	l.permille.Store(int64(permille))
}

// Stats is a point-in-time account of the log's traffic.
type Stats struct {
	Offered uint64 // Emit calls seen (pre-sampling)
	Thinned uint64 // emissions skipped by the sampling knob
	Dropped uint64 // records lost to ring overflow
}

// Stats reports emission/sampling/drop counters. Safe on a nil log.
func (l *Log) Stats() Stats {
	if l == nil {
		return Stats{}
	}
	return Stats{
		Offered: l.seq.Load(),
		Thinned: l.thinned.Load(),
		Dropped: l.dropped.Load(),
	}
}

// Sweep drains every shard and hands the records, ordered by emission
// sequence, to fn. It is the synchronous form of the drainer loop, used
// by experiments and tests; it shares the drainer's scratch, so do not
// call it concurrently with a running drainer's sweeps (Close first) or
// from multiple goroutines. Safe on a nil log.
func (l *Log) Sweep(fn func(*Record)) {
	if l == nil {
		return
	}
	recs := l.collect()
	for i := range recs {
		fn(&recs[i])
	}
}

// collect moves all buffered records into the drainer scratch, sorted by
// emission sequence, and resets the rings.
func (l *Log) collect() []Record {
	l.drainBuf = l.drainBuf[:0]
	for _, s := range l.shards {
		s.mu.Lock()
		l.drainBuf = append(l.drainBuf, s.buf...)
		s.buf = s.buf[:0]
		s.mu.Unlock()
	}
	slices.SortFunc(l.drainBuf, func(a, b Record) int {
		switch {
		case a.Seq < b.Seq:
			return -1
		case a.Seq > b.Seq:
			return 1
		}
		return 0
	})
	return l.drainBuf
}

// drain is the single background drainer: every FlushEvery it sweeps the
// rings, encodes the batch as NDJSON into a reused scratch buffer, and
// writes it to the sink. One goroutine, one encode buffer — encoding cost
// never lands on a decider.
func (l *Log) drain() {
	defer close(l.done)
	t := time.NewTicker(l.flushEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.flushOnce()
		case <-l.stop:
			l.flushOnce()
			return
		}
	}
}

// flushOnce sweeps and encodes one batch to the sink.
func (l *Log) flushOnce() {
	recs := l.collect()
	if len(recs) == 0 {
		return
	}
	l.encBuf = l.encBuf[:0]
	for i := range recs {
		l.encBuf = AppendRecord(l.encBuf, &recs[i])
		l.encBuf = append(l.encBuf, '\n')
	}
	l.sink.Write(l.encBuf)
}

// Close stops the drainer (if any), flushes buffered records to the sink,
// and closes the sink. Safe on a nil log and safe to call twice.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.closeOnce.Do(func() { close(l.stop) })
	<-l.done
	if l.sink != nil {
		return l.sink.Close()
	}
	return nil
}
