package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates online mean and variance using Welford's algorithm,
// plus min and max. The zero value is ready to use.
type Summary struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// Merge combines another summary into s. Min/max and moments are exact.
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	mean := s.mean + delta*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// Count reports the number of observations.
func (s Summary) Count() int64 { return s.n }

// Mean reports the sample mean (0 when empty).
func (s Summary) Mean() float64 { return s.mean }

// Var reports the sample variance (n-1 denominator; 0 for n < 2).
func (s Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev reports the sample standard deviation.
func (s Summary) StdDev() float64 { return math.Sqrt(s.Var()) }

// Min reports the smallest observation (0 when empty).
func (s Summary) Min() float64 { return s.min }

// Max reports the largest observation (0 when empty).
func (s Summary) Max() float64 { return s.max }

// String renders "mean=... sd=... n=...".
func (s Summary) String() string {
	return fmt.Sprintf("mean=%.3f sd=%.3f n=%d", s.Mean(), s.StdDev(), s.n)
}

// Reset clears the summary back to empty.
func (s *Summary) Reset() { *s = Summary{} }

// Sample retains all observations for quantile queries. Use for bounded
// experiment outputs, not for unbounded streams.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends one observation.
func (p *Sample) Add(x float64) {
	p.xs = append(p.xs, x)
	p.sorted = false
}

// Count reports the number of observations.
func (p *Sample) Count() int { return len(p.xs) }

// Mean reports the sample mean (0 when empty).
func (p *Sample) Mean() float64 {
	if len(p.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range p.xs {
		sum += x
	}
	return sum / float64(len(p.xs))
}

// StdDev reports the sample standard deviation (n-1 denominator).
func (p *Sample) StdDev() float64 {
	n := len(p.xs)
	if n < 2 {
		return 0
	}
	m := p.Mean()
	ss := 0.0
	for _, x := range p.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Quantile reports the q-quantile (0 <= q <= 1) by linear interpolation.
func (p *Sample) Quantile(q float64) float64 {
	n := len(p.xs)
	if n == 0 {
		return 0
	}
	if !p.sorted {
		sort.Float64s(p.xs)
		p.sorted = true
	}
	if q <= 0 {
		return p.xs[0]
	}
	if q >= 1 {
		return p.xs[n-1]
	}
	pos := q * float64(n-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= n {
		return p.xs[n-1]
	}
	return p.xs[i]*(1-frac) + p.xs[i+1]*frac
}

// Values returns a copy of the observations (sorted if a quantile was taken).
func (p *Sample) Values() []float64 {
	out := make([]float64, len(p.xs))
	copy(out, p.xs)
	return out
}

// Histogram counts observations into fixed-width buckets over [Lo, Hi).
// Observations outside the range land in the under/overflow counters.
type Histogram struct {
	Lo, Hi    float64
	Buckets   []int64
	Underflow int64
	Overflow  int64
}

// NewHistogram builds a histogram with n buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int64, n)}
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
		if i >= len(h.Buckets) { // guard against float rounding at the edge
			i = len(h.Buckets) - 1
		}
		h.Buckets[i]++
	}
}

// Total reports the number of observations including out-of-range ones.
func (h *Histogram) Total() int64 {
	t := h.Underflow + h.Overflow
	for _, b := range h.Buckets {
		t += b
	}
	return t
}
