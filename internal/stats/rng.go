// Package stats provides the statistical substrate shared by the DRS model,
// the discrete-event simulator and the experiment harness: seeded random
// number generation, probability distributions, online summary statistics,
// histograms, correlation and simple regression.
//
// Everything in this package is deterministic given a seed, which is what
// makes the experiment harness reproducible run-to-run.
package stats

import (
	"math"
	"math/rand/v2"
)

// RNG is a seeded pseudo-random number generator. It wraps a PCG source and
// adds the sampling helpers used throughout the simulator and the workload
// generators. RNG is not safe for concurrent use; give each goroutine its
// own via Split.
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{src: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Split derives an independent generator from r, keyed by id. Two Split
// calls with different ids yield streams that do not overlap in practice.
func (r *RNG) Split(id uint64) *RNG {
	s1 := r.src.Uint64()
	return &RNG{src: rand.New(rand.NewPCG(s1^id, id*0xbf58476d1ce4e5b9+1))}
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// IntN returns a uniform sample in [0, n). It panics if n <= 0.
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Uint64 returns a uniform 64-bit sample.
func (r *RNG) Uint64() uint64 { return r.src.Uint64() }

// Exp returns an exponential sample with the given rate (mean 1/rate).
// It panics if rate <= 0.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exp requires rate > 0")
	}
	// Inverse CDF; 1-U avoids log(0).
	return -math.Log(1-r.src.Float64()) / rate
}

// Uniform returns a uniform sample in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Norm returns a normal sample with the given mean and standard deviation.
func (r *RNG) Norm(mean, stddev float64) float64 {
	return mean + stddev*r.src.NormFloat64()
}

// LogNormal returns a sample of exp(N(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.src.NormFloat64())
}

// Poisson returns a Poisson-distributed sample with the given mean.
// For large means it uses a normal approximation to stay O(1).
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// Normal approximation with continuity correction.
		v := math.Round(r.Norm(mean, math.Sqrt(mean)))
		if v < 0 {
			return 0
		}
		return int(v)
	}
	// Knuth's method.
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.src.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.src.Float64() < p }

// Pareto returns a Pareto(scale, alpha) sample in [scale, ∞) by inverse
// CDF: scale · (1−U)^(−1/alpha). The mean is alpha·scale/(alpha−1) for
// alpha > 1; alpha ≤ 1 has no finite mean. It panics if scale or alpha is
// not positive.
func (r *RNG) Pareto(scale, alpha float64) float64 {
	if scale <= 0 || alpha <= 0 {
		panic("stats: Pareto requires scale > 0 and alpha > 0")
	}
	return scale * math.Pow(1-r.src.Float64(), -1/alpha)
}

// Zipf samples from a Zipf distribution over {0, ..., n-1} with skew s > 1.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf builds a Zipf sampler over n items with exponent s (s > 1) using
// r as the randomness source.
func NewZipf(r *RNG, s float64, n uint64) *Zipf {
	return &Zipf{z: rand.NewZipf(r.src, s, 1, n-1)}
}

// Next returns the next Zipf sample.
func (z *Zipf) Next() uint64 { return z.z.Uint64() }
