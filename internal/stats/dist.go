package stats

import (
	"fmt"
	"math"
)

// Dist is a sampleable non-negative distribution. It is the abstraction the
// simulator uses for inter-arrival times and service times, so that an
// experiment can swap exponential for uniform, lognormal or deterministic
// variants (the paper deliberately runs the model outside its exponential
// assumptions, e.g. uniform frame rates in §V).
type Dist interface {
	// Sample draws one value using the provided generator.
	Sample(r *RNG) float64
	// Mean reports the distribution's expected value.
	Mean() float64
	// String describes the distribution for logs and reports.
	String() string
}

// Exponential is an exponential distribution with the given Rate (mean 1/Rate).
type Exponential struct {
	Rate float64
}

// Sample draws an exponential variate.
func (e Exponential) Sample(r *RNG) float64 { return r.Exp(e.Rate) }

// Mean returns 1/Rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// String renders the distribution for logs and reports.
func (e Exponential) String() string { return fmt.Sprintf("Exp(rate=%g)", e.Rate) }

// Deterministic always returns Value.
type Deterministic struct {
	Value float64
}

// Sample returns the constant value.
func (d Deterministic) Sample(*RNG) float64 { return d.Value }

// Mean returns the constant value.
func (d Deterministic) Mean() float64 { return d.Value }

// String renders the distribution for logs and reports.
func (d Deterministic) String() string { return fmt.Sprintf("Det(%g)", d.Value) }

// Uniform is a uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample draws a uniform variate in [Lo, Hi).
func (u Uniform) Sample(r *RNG) float64 { return r.Uniform(u.Lo, u.Hi) }

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// String renders the distribution for logs and reports.
func (u Uniform) String() string { return fmt.Sprintf("Uniform[%g,%g)", u.Lo, u.Hi) }

// LogNormal is a lognormal distribution, exp(N(Mu, Sigma)). Heavy-tailed
// service times (e.g. per-frame SIFT cost) are modeled with it.
type LogNormal struct {
	Mu, Sigma float64
}

// Sample draws a lognormal variate.
func (l LogNormal) Sample(r *RNG) float64 { return r.LogNormal(l.Mu, l.Sigma) }

// Mean returns exp(Mu + Sigma^2/2).
func (l LogNormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// String renders the distribution for logs and reports.
func (l LogNormal) String() string { return fmt.Sprintf("LogNormal(mu=%g,sigma=%g)", l.Mu, l.Sigma) }

// Pareto is a Pareto distribution on [Scale, ∞) with tail exponent Alpha —
// the canonical heavy-tailed service-time model for straggler studies:
// most tuples are cheap, a power-law minority is arbitrarily expensive.
// Alpha in (1, 2] keeps a finite mean with infinite variance; the scenario
// factory pins the mean to a chain's 1/µ and composes the tail in.
type Pareto struct {
	Scale, Alpha float64
}

// NewParetoWithMean builds a Pareto with the given mean and tail exponent
// (alpha > 1, so the mean exists): Scale = mean·(alpha−1)/alpha.
func NewParetoWithMean(mean, alpha float64) (Pareto, error) {
	if !(mean > 0) || math.IsInf(mean, 0) {
		return Pareto{}, fmt.Errorf("stats: Pareto mean %g must be finite and positive", mean)
	}
	if !(alpha > 1) || math.IsInf(alpha, 0) {
		return Pareto{}, fmt.Errorf("stats: Pareto alpha %g must be finite and > 1 for a finite mean", alpha)
	}
	return Pareto{Scale: mean * (alpha - 1) / alpha, Alpha: alpha}, nil
}

// Sample draws a Pareto variate.
func (p Pareto) Sample(r *RNG) float64 { return r.Pareto(p.Scale, p.Alpha) }

// Mean returns alpha·scale/(alpha−1); +Inf when alpha ≤ 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Scale / (p.Alpha - 1)
}

// String renders the distribution for logs and reports.
func (p Pareto) String() string { return fmt.Sprintf("Pareto(scale=%g,alpha=%g)", p.Scale, p.Alpha) }

// Shifted wraps a distribution and adds a constant offset to every sample,
// useful for "fixed overhead plus variable part" service models.
type Shifted struct {
	Offset float64
	Base   Dist
}

// Sample returns Offset + Base.Sample.
func (s Shifted) Sample(r *RNG) float64 { return s.Offset + s.Base.Sample(r) }

// Mean returns Offset + Base.Mean.
func (s Shifted) Mean() float64 { return s.Offset + s.Base.Mean() }

// String renders the distribution for logs and reports.
func (s Shifted) String() string { return fmt.Sprintf("%g+%s", s.Offset, s.Base) }
