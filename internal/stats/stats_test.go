package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	s1 := r.Split(1)
	r2 := NewRNG(7)
	s2 := r2.Split(1)
	for i := 0; i < 50; i++ {
		if s1.Float64() != s2.Float64() {
			t.Fatal("Split must be deterministic given seed and id")
		}
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(1)
	const rate = 2.5
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.Exp(rate))
	}
	if got, want := s.Mean(), 1/rate; math.Abs(got-want) > 0.01*want {
		t.Errorf("Exp mean = %g, want ~%g", got, want)
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(2)
	for _, mean := range []float64{0.5, 4, 12, 50} { // spans Knuth and normal-approx branches
		var s Summary
		for i := 0; i < 100000; i++ {
			s.Add(float64(r.Poisson(mean)))
		}
		if math.Abs(s.Mean()-mean) > 0.03*mean+0.02 {
			t.Errorf("Poisson(%g) sample mean = %g", mean, s.Mean())
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(3, 7)
		if v < 3 || v >= 7 {
			t.Fatalf("Uniform(3,7) = %g out of range", v)
		}
	}
}

func TestDistMeans(t *testing.T) {
	r := NewRNG(4)
	dists := []Dist{
		Exponential{Rate: 4},
		Deterministic{Value: 0.7},
		Uniform{Lo: 1, Hi: 25},
		LogNormal{Mu: -1, Sigma: 0.5},
		Shifted{Offset: 2, Base: Exponential{Rate: 1}},
	}
	for _, d := range dists {
		var s Summary
		for i := 0; i < 150000; i++ {
			s.Add(d.Sample(r))
		}
		want := d.Mean()
		if math.Abs(s.Mean()-want) > 0.02*want+1e-9 {
			t.Errorf("%s: sample mean %g, analytic mean %g", d, s.Mean(), want)
		}
	}
}

func TestSummaryMatchesDirectComputation(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3.5}
	var s Summary
	for _, x := range xs {
		s.Add(x)
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	varr := 0.0
	for _, x := range xs {
		varr += (x - mean) * (x - mean)
	}
	varr /= float64(len(xs) - 1)
	if math.Abs(s.Mean()-mean) > 1e-12 {
		t.Errorf("mean %g, want %g", s.Mean(), mean)
	}
	if math.Abs(s.Var()-varr) > 1e-12 {
		t.Errorf("var %g, want %g", s.Var(), varr)
	}
	if s.Min() != 1 || s.Max() != 9 {
		t.Errorf("min/max = %g/%g, want 1/9", s.Min(), s.Max())
	}
}

func TestSummaryMergeEqualsSequential(t *testing.T) {
	f := func(raw []float64) bool {
		var whole, left, right Summary
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				// Magnitudes whose squared deltas overflow float64 are out
				// of scope for sojourn-time statistics.
				return true
			}
			whole.Add(x)
			if i%2 == 0 {
				left.Add(x)
			} else {
				right.Add(x)
			}
		}
		left.Merge(right)
		if whole.Count() != left.Count() {
			return false
		}
		if whole.Count() == 0 {
			return true
		}
		tol := 1e-9 * (1 + math.Abs(whole.Mean()))
		return math.Abs(whole.Mean()-left.Mean()) < tol &&
			math.Abs(whole.Var()-left.Var()) < 1e-6*(1+whole.Var())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSummaryReset(t *testing.T) {
	var s Summary
	s.Add(5)
	s.Reset()
	if s.Count() != 0 || s.Mean() != 0 {
		t.Error("Reset did not clear the summary")
	}
}

func TestSampleQuantiles(t *testing.T) {
	var p Sample
	for i := 1; i <= 100; i++ {
		p.Add(float64(i))
	}
	tests := []struct{ q, want float64 }{
		{0, 1}, {1, 100}, {0.5, 50.5}, {0.25, 25.75}, {0.99, 99.01},
	}
	for _, tt := range tests {
		if got := p.Quantile(tt.q); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", tt.q, got, tt.want)
		}
	}
	if p.Count() != 100 {
		t.Errorf("Count = %d", p.Count())
	}
}

func TestSampleMeanStdDev(t *testing.T) {
	var p Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		p.Add(x)
	}
	if got := p.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("mean %g, want 5", got)
	}
	want := math.Sqrt(32.0 / 7.0)
	if got := p.StdDev(); math.Abs(got-want) > 1e-12 {
		t.Errorf("stddev %g, want %g", got, want)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.999, 10, 55} {
		h.Add(x)
	}
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", h.Underflow, h.Overflow)
	}
	if h.Buckets[0] != 2 { // 0 and 1.9
		t.Errorf("bucket0 = %d, want 2", h.Buckets[0])
	}
	if h.Buckets[1] != 1 || h.Buckets[4] != 1 {
		t.Errorf("buckets = %v", h.Buckets)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d, want 7", h.Total())
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for hi <= lo")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect line: r = %g, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("anti-correlated: r = %g, want -1", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("single point should error")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("zero variance should error")
	}
}

func TestSpearmanMonotoneNonlinear(t *testing.T) {
	// Monotone but nonlinear relation: Spearman is exactly 1.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x)
	}
	r, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("Spearman = %g, want 1", r)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{1, 2, 2, 3}
	r, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("Spearman with ties = %g, want 1", r)
	}
}

func TestFitLinear(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{5, 7, 9, 11} // y = 2x + 5 exactly
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-5) > 1e-12 {
		t.Errorf("fit = %+v, want slope 2 intercept 5", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %g, want 1", fit.R2)
	}
}

func TestIsMonotone(t *testing.T) {
	tests := []struct {
		name   string
		xs, ys []float64
		want   bool
	}{
		{"increasing", []float64{1, 2, 3}, []float64{4, 5, 9}, true},
		{"unsorted x still monotone", []float64{3, 1, 2}, []float64{9, 4, 5}, true},
		{"violation", []float64{1, 2, 3}, []float64{4, 9, 5}, false},
		{"tie is not strict", []float64{1, 2}, []float64{4, 4}, false},
		{"too short", []float64{1}, []float64{4}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IsMonotone(tt.xs, tt.ys); got != tt.want {
				t.Errorf("IsMonotone = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(9)
	z := NewZipf(r, 1.5, 1000)
	counts := make(map[uint64]int)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("Zipf sample %d out of range", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[1] || counts[1] <= counts[3] {
		t.Errorf("Zipf counts not skewed: c0=%d c1=%d c3=%d", counts[0], counts[1], counts[3])
	}
}

func TestParetoMeanAndTail(t *testing.T) {
	p, err := NewParetoWithMean(0.5, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Mean(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("pinned mean %g, want 0.5", got)
	}
	r := NewRNG(7)
	var sum, max float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := p.Sample(r)
		if v < p.Scale {
			t.Fatalf("sample %g below the scale %g", v, p.Scale)
		}
		sum += v
		if v > max {
			max = v
		}
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.05 {
		t.Errorf("empirical mean %g, want ≈ 0.5", mean)
	}
	// Heavy tail: the largest of 200k draws is far beyond an exponential's
	// reach (Exp(2) caps out around ln(200000)/2 ≈ 6).
	if max < 10*0.5 {
		t.Errorf("max sample %g shows no heavy tail", max)
	}
	if (Pareto{Scale: 1, Alpha: 1}).Mean() != math.Inf(1) {
		t.Error("alpha ≤ 1 must report an infinite mean")
	}
	if _, err := NewParetoWithMean(0.5, 1); err == nil {
		t.Error("alpha = 1 must be rejected (no finite mean)")
	}
	if _, err := NewParetoWithMean(math.Inf(1), 2); err == nil {
		t.Error("infinite mean must be rejected")
	}
}
