package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrShortSeries is returned when a correlation or regression is requested
// over fewer than two points.
var ErrShortSeries = errors.New("stats: need at least two points")

// Pearson computes the Pearson correlation coefficient of two equal-length
// series. It is used to quantify how well the model's estimated sojourn
// times track the measured ones (Fig. 7).
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: series length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return 0, ErrShortSeries
	}
	mx, my := meanOf(xs), meanOf(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance series")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman computes the Spearman rank correlation of two equal-length
// series. A value of exactly 1 means the estimated ordering of allocations
// matches the measured ordering — the "strict monotonicity" the paper reads
// off Fig. 7.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: series length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrShortSeries
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks assigns average ranks (1-based) with ties averaged.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// LinearFit is the result of an ordinary least squares fit y = Slope*x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLinear performs ordinary least squares over the two series.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: series length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return LinearFit{}, ErrShortSeries
	}
	mx, my := meanOf(xs), meanOf(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: zero variance in x")
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}

// IsMonotone reports whether ys is strictly increasing when the points are
// ordered by xs — the Fig. 7 "order preserved" property.
func IsMonotone(xs, ys []float64) bool {
	if len(xs) != len(ys) || len(xs) < 2 {
		return false
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	for i := 1; i < len(idx); i++ {
		if ys[idx[i]] <= ys[idx[i-1]] {
			return false
		}
	}
	return true
}

func meanOf(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
