package loop

import (
	"log/slog"
	"sync"
	"time"
)

// failureRecord tracks repeated failures of one action kind.
type failureRecord struct {
	count   int
	lastErr error
	lastAt  time.Time
}

// failureTracker suppresses actions that keep failing: a rebalance that
// times out quiescing (engine.ErrQuiesceTimeout) or a resize the provider
// refuses will usually fail the same way on the very next round, so after
// threshold failures inside the window the supervisor skips that action
// kind until the window expires. A success clears the record. Thread-safe;
// the caller supplies the clock so virtual-time drivers work.
type failureTracker struct {
	threshold int
	window    time.Duration
	logger    *slog.Logger

	mu      sync.Mutex
	records map[string]*failureRecord
}

func newFailureTracker(threshold int, window time.Duration, logger *slog.Logger) *failureTracker {
	return &failureTracker{
		threshold: threshold,
		window:    window,
		logger:    logger,
		records:   make(map[string]*failureRecord),
	}
}

// shouldSkip reports whether the action kind has failed enough times within
// the window to be suppressed.
func (ft *failureTracker) shouldSkip(kind string, now time.Time) bool {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	rec, ok := ft.records[kind]
	if !ok {
		return false
	}
	if now.Sub(rec.lastAt) > ft.window {
		delete(ft.records, kind) // stale: forget and let it try again
		return false
	}
	return rec.count >= ft.threshold
}

// pruneLocked deletes every record whose window has fully elapsed. Without
// it, a kind that stops occurring (a one-off resize refusal, a shrink kind
// that never fails again) would keep its record alive for the life of the
// daemon; the sweep is O(kinds), and kinds are a small closed set, so it
// runs on every recordFailure.
func (ft *failureTracker) pruneLocked(now time.Time) {
	for kind, rec := range ft.records {
		if now.Sub(rec.lastAt) > ft.window {
			delete(ft.records, kind)
		}
	}
}

// recordFailure increments the failure counter for an action kind.
func (ft *failureTracker) recordFailure(kind string, err error, now time.Time) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.pruneLocked(now)
	rec, ok := ft.records[kind]
	if !ok {
		rec = &failureRecord{}
		ft.records[kind] = rec
	}
	rec.count++
	rec.lastErr = err
	rec.lastAt = now
	if rec.count == ft.threshold {
		// The error travels as a value (not a string) so slog handlers
		// can classify it with errors.Is.
		ft.logger.Warn("action suppressed after repeated failures",
			slog.String("action", kind),
			slog.Int("failures", rec.count),
			slog.Any("err", rec.lastErr),
			slog.Duration("window", ft.window),
		)
	}
}

// recordSuccess clears the failure record for an action kind.
func (ft *failureTracker) recordSuccess(kind string) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	delete(ft.records, kind)
}
