package loop

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/drs-repro/drs/internal/cluster"
	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/engine"
	"github.com/drs-repro/drs/internal/metrics"
)

// fakeClock is a manually-stepped Clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(0, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// fakeTarget scripts the supervised system: it serves a fixed interval
// report, tracks the allocation in force, and can be told to fail
// rebalances.
type fakeTarget struct {
	mu           sync.Mutex
	alloc        map[string]int
	rep          metrics.IntervalReport
	rebalanceErr error
	calls        []map[string]int
	pauses       []time.Duration
}

func (t *fakeTarget) DrainInterval() metrics.IntervalReport {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rep
}

func (t *fakeTarget) Allocation() map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int, len(t.alloc))
	for k, v := range t.alloc {
		out[k] = v
	}
	return out
}

func (t *fakeTarget) Rebalance(alloc map[string]int, pause time.Duration) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.calls = append(t.calls, alloc)
	t.pauses = append(t.pauses, pause)
	if t.rebalanceErr != nil {
		return t.rebalanceErr
	}
	for k, v := range alloc {
		t.alloc[k] = v
	}
	return nil
}

func (t *fakeTarget) rebalances() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.calls)
}

// fakeStepper returns a scripted decision every round.
type fakeStepper struct {
	mu    sync.Mutex
	d     core.Decision
	err   error
	steps int
}

func (f *fakeStepper) Step(core.Snapshot) (core.Decision, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.steps++
	return f.d, f.err
}

// fakeSource is always ready with a scripted snapshot.
type fakeSource struct {
	mu     sync.Mutex
	snap   core.Snapshot
	err    error
	resets int
}

func (s *fakeSource) AddInterval(metrics.IntervalReport) error { return nil }

func (s *fakeSource) Snapshot() (core.Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap, s.err
}

func (s *fakeSource) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resets++
}

// steadyReport builds the interval report of a system running at fixed
// rates: lambda0 external tuples/s, and per operator (arrival rate,
// service rate) pairs.
func steadyReport(dur time.Duration, lambda0 float64, rates [][2]float64) metrics.IntervalReport {
	secs := dur.Seconds()
	rep := metrics.IntervalReport{
		Duration:         dur,
		ExternalArrivals: int64(lambda0 * secs),
		Ops:              make([]metrics.OpInterval, len(rates)),
	}
	for i, r := range rates {
		served := int64(r[0] * secs)
		rep.Ops[i] = metrics.OpInterval{
			Arrivals: served,
			Served:   served,
			Sampled:  served,
			BusyTime: time.Duration(float64(served) / r[1] * float64(time.Second)),
		}
	}
	return rep
}

// TestRebalanceConvergence closes the full production loop: real measurer,
// real controller. The target starts on a lopsided split; the supervisor
// must rebalance it to the model optimum exactly once and then hold.
func TestRebalanceConvergence(t *testing.T) {
	clock := newFakeClock()
	target := &fakeTarget{
		alloc: map[string]int{"extract": 2, "match": 6},
		rep:   steadyReport(10*time.Second, 10, [][2]float64{{10, 5}, {10, 5}}),
	}
	ctrl, err := core.NewController(core.ControllerConfig{Mode: core.ModeMinLatency, Kmax: 8, MinGain: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	sup, err := New(Config{
		Target:    target,
		Operators: []string{"extract", "match"},
		Stepper:   ctrl,
		Pool:      FixedPool(8),
		Interval:  10 * time.Second,
		Clock:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		sup.Tick()
		clock.advance(10 * time.Second)
	}
	hist := sup.History()
	if len(hist) != 1 {
		t.Fatalf("want exactly one event, got %d: %v", len(hist), hist)
	}
	ev := hist[0]
	if ev.Action != core.ActionRebalance || !ev.Applied {
		t.Fatalf("want applied rebalance, got %+v", ev)
	}
	want := []int{4, 4} // symmetric rates: the optimum is the even split
	for i, k := range want {
		if ev.Target[i] != k {
			t.Fatalf("want target %v, got %v", want, ev.Target)
		}
	}
	if got := target.Allocation(); got["extract"] != 4 || got["match"] != 4 {
		t.Fatalf("allocation not applied: %v", got)
	}
	if snap, ok := sup.LastSnapshot(); !ok || snap.Lambda0 == 0 {
		t.Fatalf("missing last snapshot: %v %v", snap, ok)
	}
}

// TestCooldown verifies the hysteresis: after an applied action the
// supervisor only observes until Cooldown has elapsed on its clock.
func TestCooldown(t *testing.T) {
	clock := newFakeClock()
	target := &fakeTarget{alloc: map[string]int{"a": 1}}
	stepper := &fakeStepper{d: core.Decision{
		Action: core.ActionRebalance, Target: []int{2}, TargetKmax: 4, Reason: "scripted",
	}}
	src := &fakeSource{snap: core.Snapshot{
		Lambda0: 1, Ops: []core.OpRates{{Name: "a", Lambda: 1, Mu: 2}},
	}}
	sup, err := New(Config{
		Target:    target,
		Operators: []string{"a"},
		Stepper:   stepper,
		Pool:      FixedPool(4),
		Source:    src,
		Interval:  time.Second,
		Cooldown:  40 * time.Second,
		Clock:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.Tick() // applies immediately
	if n := target.rebalances(); n != 1 {
		t.Fatalf("want 1 rebalance, got %d", n)
	}
	for i := 0; i < 39; i++ { // every tick inside the cooldown window holds
		clock.advance(time.Second)
		sup.Tick()
	}
	if n := target.rebalances(); n != 1 {
		t.Fatalf("cooldown violated: %d rebalances", n)
	}
	clock.advance(time.Second) // cooldown expires exactly now
	sup.Tick()
	if n := target.rebalances(); n != 2 {
		t.Fatalf("want rebalance after cooldown, got %d", n)
	}
	if src.resets != 2 {
		t.Fatalf("want a measurer reset per applied action, got %d", src.resets)
	}
}

// TestFailureSuppression drives repeated ErrQuiesceTimeout failures: after
// FailureThreshold of them the supervisor must stop trying that action
// kind until FailureWindow expires, then probe again.
func TestFailureSuppression(t *testing.T) {
	clock := newFakeClock()
	target := &fakeTarget{
		alloc:        map[string]int{"a": 1},
		rebalanceErr: engine.ErrQuiesceTimeout,
	}
	stepper := &fakeStepper{d: core.Decision{
		Action: core.ActionRebalance, Target: []int{2}, TargetKmax: 4, Reason: "scripted",
	}}
	src := &fakeSource{snap: core.Snapshot{
		Lambda0: 1, Ops: []core.OpRates{{Name: "a", Lambda: 1, Mu: 2}},
	}}
	sup, err := New(Config{
		Target:           target,
		Operators:        []string{"a"},
		Stepper:          stepper,
		Pool:             FixedPool(4),
		Source:           src,
		Interval:         time.Second,
		Cooldown:         time.Second,
		FailureThreshold: 3,
		FailureWindow:    time.Minute,
		Clock:            clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		sup.Tick()
		clock.advance(time.Second)
	}
	if n := target.rebalances(); n != 3 {
		t.Fatalf("want exactly FailureThreshold=3 attempts, got %d", n)
	}
	var failed, suppressed int
	for _, ev := range sup.History() {
		switch {
		case ev.Suppressed:
			suppressed++
		case ev.Err != nil:
			if !errors.Is(ev.Err, engine.ErrQuiesceTimeout) {
				t.Fatalf("unexpected event error: %v", ev.Err)
			}
			failed++
		}
	}
	if failed != 3 || suppressed != 1 {
		t.Fatalf("want 3 failures and one suppression-episode event, got %d/%d", failed, suppressed)
	}
	// Past the window the tracker forgets and the supervisor probes again.
	clock.advance(2 * time.Minute)
	sup.Tick()
	if n := target.rebalances(); n != 4 {
		t.Fatalf("want a fresh attempt after the window, got %d attempts", n)
	}
}

// TestScaleOutChargesPool verifies scale decisions negotiate the pool and
// that a failed apply rolls the machines back.
func TestScaleOutChargesPool(t *testing.T) {
	clock := newFakeClock()
	pool, err := cluster.PaperPool(4) // Kmax 17
	if err != nil {
		t.Fatal(err)
	}
	target := &fakeTarget{alloc: map[string]int{"a": 17}}
	stepper := &fakeStepper{d: core.Decision{
		Action: core.ActionScaleOut, Target: []int{22}, TargetKmax: 22, Reason: "scripted",
	}}
	src := &fakeSource{snap: core.Snapshot{
		Lambda0: 1, Ops: []core.OpRates{{Name: "a", Lambda: 1, Mu: 2}},
	}}
	cfg := Config{
		Target:    target,
		Operators: []string{"a"},
		Stepper:   stepper,
		Pool:      pool,
		Source:    src,
		Interval:  time.Second,
		Cooldown:  time.Second,
		Clock:     clock,
	}
	sup, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sup.Tick()
	if pool.Machines() != 5 || pool.Kmax() != 22 {
		t.Fatalf("pool not grown: %d machines, Kmax %d", pool.Machines(), pool.Kmax())
	}
	hist := sup.History()
	if len(hist) != 1 || !hist[0].Applied || hist[0].Pause <= 0 {
		t.Fatalf("want applied scale-out with modeled pause, got %+v", hist)
	}

	// Same decision, but the target refuses: the pool must end unchanged.
	pool2, err := cluster.PaperPool(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pool = pool2
	cfg.Target = &fakeTarget{alloc: map[string]int{"a": 17}, rebalanceErr: engine.ErrQuiesceTimeout}
	sup2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sup2.Tick()
	if pool2.Machines() != 4 {
		t.Fatalf("pool not rolled back after failed apply: %d machines", pool2.Machines())
	}
	hist = sup2.History()
	if len(hist) != 1 || hist[0].Applied || hist[0].Err == nil {
		t.Fatalf("want failed event, got %+v", hist)
	}
}

// slowRebalanceTarget simulates a live rebalance whose quiesce takes real
// time by advancing the clock during the apply.
type slowRebalanceTarget struct {
	fakeTarget
	clock *fakeClock
	took  time.Duration
}

func (t *slowRebalanceTarget) Rebalance(alloc map[string]int, pause time.Duration) error {
	t.clock.advance(t.took)
	return t.fakeTarget.Rebalance(alloc, pause)
}

// TestCooldownAnchoredAfterApply guards against a slow (or
// quiesce-timeout) apply consuming its own cooldown: the hold must start
// when the apply finishes, not when the round began.
func TestCooldownAnchoredAfterApply(t *testing.T) {
	clock := newFakeClock()
	target := &slowRebalanceTarget{
		fakeTarget: fakeTarget{alloc: map[string]int{"a": 1}, rebalanceErr: engine.ErrQuiesceTimeout},
		clock:      clock,
		took:       20 * time.Second, // quiesce burns far longer than the cooldown
	}
	stepper := &fakeStepper{d: core.Decision{
		Action: core.ActionRebalance, Target: []int{2}, TargetKmax: 4, Reason: "scripted",
	}}
	src := &fakeSource{snap: core.Snapshot{
		Lambda0: 1, Ops: []core.OpRates{{Name: "a", Lambda: 1, Mu: 2}},
	}}
	sup, err := New(Config{
		Target:    target,
		Operators: []string{"a"},
		Stepper:   stepper,
		Pool:      FixedPool(4),
		Source:    src,
		Interval:  time.Second,
		Cooldown:  4 * time.Second,
		Clock:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.Tick() // fails after 20 simulated seconds
	if n := target.rebalances(); n != 1 {
		t.Fatalf("want 1 attempt, got %d", n)
	}
	for i := 0; i < 3; i++ { // the next ticks land inside the post-apply cooldown
		clock.advance(time.Second)
		sup.Tick()
	}
	if n := target.rebalances(); n != 1 {
		t.Fatalf("failed apply consumed its own cooldown: %d attempts", n)
	}
	clock.advance(2 * time.Second) // cooldown over: retry is allowed again
	sup.Tick()
	if n := target.rebalances(); n != 2 {
		t.Fatalf("want retry after post-apply cooldown, got %d attempts", n)
	}
}

// TestHistoryCap verifies the event log stays bounded on a long-lived
// supervisor that keeps acting.
func TestHistoryCap(t *testing.T) {
	clock := newFakeClock()
	target := &fakeTarget{alloc: map[string]int{"a": 1}}
	stepper := &fakeStepper{d: core.Decision{
		Action: core.ActionRebalance, Target: []int{2}, TargetKmax: 4, Reason: "scripted",
	}}
	src := &fakeSource{snap: core.Snapshot{
		Lambda0: 1, Ops: []core.OpRates{{Name: "a", Lambda: 1, Mu: 2}},
	}}
	sup, err := New(Config{
		Target:     target,
		Operators:  []string{"a"},
		Stepper:    stepper,
		Pool:       FixedPool(4),
		Source:     src,
		Interval:   time.Second,
		Cooldown:   time.Second,
		MaxHistory: 8,
		Clock:      clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		sup.Tick()
		clock.advance(time.Second)
	}
	if n := len(sup.History()); n != 8 {
		t.Fatalf("history not capped: %d events", n)
	}
}

// TestNoCapacityHolds verifies a provider capacity refusal is a plain
// hold: no cooldown, no failure tracking, no event — the loop re-evaluates
// every round, exactly as when the pool simply has nothing more to give.
func TestNoCapacityHolds(t *testing.T) {
	clock := newFakeClock()
	pool, err := cluster.PaperPool(5) // at the provider cap already
	if err != nil {
		t.Fatal(err)
	}
	target := &fakeTarget{alloc: map[string]int{"a": 22}}
	stepper := &fakeStepper{d: core.Decision{
		Action: core.ActionScaleOut, Target: []int{40}, TargetKmax: 40, Reason: "scripted",
	}}
	src := &fakeSource{snap: core.Snapshot{
		Lambda0: 1, Ops: []core.OpRates{{Name: "a", Lambda: 1, Mu: 2}},
	}}
	sup, err := New(Config{
		Target:    target,
		Operators: []string{"a"},
		Stepper:   stepper,
		Pool:      pool,
		Source:    src,
		Interval:  time.Second,
		Cooldown:  40 * time.Second,
		Clock:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		sup.Tick()
		clock.advance(time.Second)
	}
	if stepper.steps != 10 {
		t.Fatalf("capacity refusals must not start cooldowns: %d of 10 rounds decided", stepper.steps)
	}
	if n := len(sup.History()); n != 0 {
		t.Fatalf("capacity refusals must not be recorded: %d events", n)
	}
	if n := target.rebalances(); n != 0 {
		t.Fatalf("no allocation should be applied: %d rebalances", n)
	}
}

// TestWarmupHolds verifies ErrNotReady/ErrIncomplete snapshots hold
// silently instead of stepping the controller.
func TestWarmupHolds(t *testing.T) {
	clock := newFakeClock()
	target := &fakeTarget{alloc: map[string]int{"a": 1}}
	stepper := &fakeStepper{}
	src := &fakeSource{err: metrics.ErrNotReady}
	sup, err := New(Config{
		Target:    target,
		Operators: []string{"a"},
		Stepper:   stepper,
		Pool:      FixedPool(4),
		Source:    src,
		Interval:  time.Second,
		Clock:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.Tick()
	src.mu.Lock()
	src.err = metrics.ErrIncomplete
	src.mu.Unlock()
	sup.Tick()
	if stepper.steps != 0 {
		t.Fatalf("stepper consulted during warmup: %d steps", stepper.steps)
	}
	if len(sup.History()) != 0 {
		t.Fatalf("warmup holds must not be recorded: %v", sup.History())
	}
}

// fakeArbiterPool scripts a multi-tenant lease: Resize grants at most
// grantCap slots, the budget can be dropped out from under the supervisor
// (preemption), and utility reports are captured.
type fakeArbiterPool struct {
	mu       sync.Mutex
	kmax     int
	grantCap int
	reports  []cluster.TenantReport
}

func (p *fakeArbiterPool) Kmax() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.kmax
}

func (p *fakeArbiterPool) setKmax(k int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.kmax = k
}

func (p *fakeArbiterPool) Rebalance() cluster.Transition {
	return cluster.Transition{Kind: "rebalance", Pause: time.Second}
}

func (p *fakeArbiterPool) Resize(target int) (cluster.Transition, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	grant := target
	if grant > p.grantCap {
		grant = p.grantCap
	}
	old := p.kmax
	p.kmax = grant
	kind := "rebalance"
	switch {
	case grant > old:
		kind = "scale-out"
	case grant < old:
		kind = "scale-in"
	}
	return cluster.Transition{Kind: kind, Pause: time.Second}, nil
}

func (p *fakeArbiterPool) Report(r cluster.TenantReport) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reports = append(p.reports, r)
}

func (p *fakeArbiterPool) lastReport() (cluster.TenantReport, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.reports) == 0 {
		return cluster.TenantReport{}, false
	}
	return p.reports[len(p.reports)-1], true
}

// TestPreemptedGrantShrinksGracefully drops the lease's budget below the
// allocation in force and checks the supervisor vacates the lost slots on
// its next tick — even inside a cooldown — re-fitting the allocation to
// the model optimum for the smaller budget.
func TestPreemptedGrantShrinksGracefully(t *testing.T) {
	clock := newFakeClock()
	target := &fakeTarget{alloc: map[string]int{"a": 4, "b": 4}}
	pool := &fakeArbiterPool{kmax: 8, grantCap: 8}
	src := &fakeSource{snap: core.Snapshot{
		Lambda0: 2, Ops: []core.OpRates{{Name: "a", Lambda: 1, Mu: 2}, {Name: "b", Lambda: 1, Mu: 2}},
	}}
	sup, err := New(Config{
		Target:    target,
		Operators: []string{"a", "b"},
		Stepper:   &fakeStepper{}, // always holds; only preemption acts
		Pool:      pool,
		Source:    src,
		Interval:  time.Second,
		Cooldown:  100 * time.Second,
		Clock:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.Tick() // stores the snapshot; budget still covers the allocation
	if n := target.rebalances(); n != 0 {
		t.Fatalf("no shrink expected yet, got %d rebalances", n)
	}
	pool.setKmax(4) // the arbiter preempts half the grant
	clock.advance(time.Second)
	sup.Tick()
	got := target.Allocation()
	if got["a"]+got["b"] != 4 {
		t.Fatalf("allocation not vacated to the grant: %v", got)
	}
	if got["a"] != 2 || got["b"] != 2 {
		t.Fatalf("shrunk allocation not model-optimal: %v, want a=2 b=2", got)
	}
	hist := sup.History()
	if len(hist) != 1 || !hist[0].Preempted || !hist[0].Applied {
		t.Fatalf("want one applied preemption event, got %+v", hist)
	}
	if src.resets != 1 {
		t.Fatalf("measurer not reset after forced shrink: %d resets", src.resets)
	}
	// A second preemption during the fresh cooldown must still be served.
	pool.setKmax(3)
	clock.advance(time.Second)
	sup.Tick()
	got = target.Allocation()
	if got["a"]+got["b"] != 3 {
		t.Fatalf("cooldown blocked a preemption shrink: %v", got)
	}
}

// TestPartialGrantRefit asks for more slots than the arbiter will give and
// checks the supervisor re-solves its allocation for the granted budget
// instead of applying the oversized one.
func TestPartialGrantRefit(t *testing.T) {
	clock := newFakeClock()
	target := &fakeTarget{alloc: map[string]int{"a": 2, "b": 2}}
	pool := &fakeArbiterPool{kmax: 4, grantCap: 6}
	stepper := &fakeStepper{d: core.Decision{
		Action: core.ActionScaleOut, Target: []int{6, 6}, TargetKmax: 12, Reason: "scripted",
	}}
	src := &fakeSource{snap: core.Snapshot{
		Lambda0: 2, Ops: []core.OpRates{{Name: "a", Lambda: 1, Mu: 2}, {Name: "b", Lambda: 1, Mu: 2}},
	}}
	sup, err := New(Config{
		Target:    target,
		Operators: []string{"a", "b"},
		Stepper:   stepper,
		Pool:      pool,
		Source:    src,
		Interval:  time.Second,
		Cooldown:  time.Second,
		Clock:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.Tick()
	got := target.Allocation()
	if got["a"] != 3 || got["b"] != 3 {
		t.Fatalf("partial grant not re-fit: %v, want a=3 b=3 (6 granted of 12 asked)", got)
	}
	hist := sup.History()
	if len(hist) != 1 || !hist[0].Applied || hist[0].Kmax != 6 {
		t.Fatalf("want one applied event at the granted Kmax 6, got %+v", hist)
	}
}

// TestShrinkHoldsAtPhysicalFloor drops the grant below one slot per
// operator: the supervisor cannot vacate below the physical floor, so it
// must hold — not re-apply an identical over-budget allocation (and pay
// its pause) every tick.
func TestShrinkHoldsAtPhysicalFloor(t *testing.T) {
	clock := newFakeClock()
	target := &fakeTarget{alloc: map[string]int{"a": 1, "b": 1, "c": 1}}
	pool := &fakeArbiterPool{kmax: 3, grantCap: 3}
	src := &fakeSource{snap: core.Snapshot{
		Lambda0: 3, Ops: []core.OpRates{
			{Name: "a", Lambda: 1, Mu: 2}, {Name: "b", Lambda: 1, Mu: 2}, {Name: "c", Lambda: 1, Mu: 2},
		},
	}}
	sup, err := New(Config{
		Target:    target,
		Operators: []string{"a", "b", "c"},
		Stepper:   &fakeStepper{},
		Pool:      pool,
		Source:    src,
		Interval:  time.Second,
		Clock:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.Tick()
	pool.setKmax(2) // below the 3-operator physical floor
	for i := 0; i < 5; i++ {
		clock.advance(time.Second)
		sup.Tick()
	}
	if n := target.rebalances(); n != 0 {
		t.Fatalf("supervisor churned %d rebalances against an unreachable budget", n)
	}
	if n := len(sup.History()); n != 0 {
		t.Fatalf("unreachable budget recorded %d events", n)
	}
}

// TestFailedApplyRollsBackLeaseGrant verifies the rollback fires on budget
// change alone: an arbitrated lease can grow its grant without any machine
// change, and a failed apply must hand those slots back rather than hoard
// them from the other tenants.
func TestFailedApplyRollsBackLeaseGrant(t *testing.T) {
	clock := newFakeClock()
	target := &fakeTarget{alloc: map[string]int{"a": 2, "b": 2}, rebalanceErr: engine.ErrQuiesceTimeout}
	pool := &fakeArbiterPool{kmax: 4, grantCap: 12}
	stepper := &fakeStepper{d: core.Decision{
		Action: core.ActionScaleOut, Target: []int{6, 6}, TargetKmax: 12, Reason: "scripted",
	}}
	src := &fakeSource{snap: core.Snapshot{
		Lambda0: 2, Ops: []core.OpRates{{Name: "a", Lambda: 1, Mu: 2}, {Name: "b", Lambda: 1, Mu: 2}},
	}}
	sup, err := New(Config{
		Target:    target,
		Operators: []string{"a", "b"},
		Stepper:   stepper,
		Pool:      pool,
		Source:    src,
		Interval:  time.Second,
		Cooldown:  time.Second,
		Clock:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.Tick()
	if got := pool.Kmax(); got != 4 {
		t.Fatalf("failed apply left the lease holding %d slots, want the original 4", got)
	}
	hist := sup.History()
	if len(hist) != 1 || hist[0].Applied || hist[0].Err == nil {
		t.Fatalf("want one failed event, got %+v", hist)
	}
}

// TestTenantReportPushed verifies the supervisor feeds the arbiter its
// utility self-assessment each decision round, with the violation flag
// derived from the controller's Tmax.
func TestTenantReportPushed(t *testing.T) {
	clock := newFakeClock()
	target := &fakeTarget{alloc: map[string]int{"a": 2, "b": 2}}
	pool := &fakeArbiterPool{kmax: 4, grantCap: 64}
	ctrl, err := core.NewController(core.ControllerConfig{Mode: core.ModeMinResource, Tmax: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	src := &fakeSource{snap: core.Snapshot{
		Lambda0: 2, MeasuredSojourn: 1.0, // twice the 500 ms target
		Ops: []core.OpRates{{Name: "a", Lambda: 1, Mu: 2}, {Name: "b", Lambda: 1, Mu: 2}},
	}}
	sup, err := New(Config{
		Target:    target,
		Operators: []string{"a", "b"},
		Stepper:   ctrl,
		Pool:      pool,
		Source:    src,
		Interval:  time.Second,
		Cooldown:  time.Second,
		Clock:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.Tick()
	rep, ok := pool.lastReport()
	if !ok {
		t.Fatal("no tenant report pushed")
	}
	if !rep.Violating {
		t.Fatalf("measured 1.0s over Tmax 0.5s must report violating: %+v", rep)
	}
	if rep.Lambda0 != 2 || rep.GrowBenefit <= 0 || rep.ShrinkCost <= 0 {
		t.Fatalf("report fields not populated: %+v", rep)
	}
}

// slowSpout emits tuples at a fixed rate until stopped.
type slowSpout struct{ every time.Duration }

func (s *slowSpout) Run(ctx engine.SpoutContext) error {
	tick := time.NewTicker(s.every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
			if !ctx.Paused() {
				ctx.Emit(engine.Values{1})
			}
		}
	}
}

// TestLiveEngine exercises the wall-clock path end to end: a real engine
// run supervised by Start/Stop with a real controller and measurer.
func TestLiveEngine(t *testing.T) {
	topo, err := engine.NewTopology().
		Spout("src", 1, func(int) engine.Spout { return &slowSpout{every: 2 * time.Millisecond} }).
		Bolt("work", 8, func(int) engine.Bolt {
			return engine.BoltFunc(func(engine.Tuple, engine.Emit) error {
				time.Sleep(500 * time.Microsecond)
				return nil
			})
		}).
		Shuffle("src", "work").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run, err := topo.Start(engine.RunConfig{Alloc: map[string]int{"work": 1}, QuiesceTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer run.Stop()
	ctrl, err := core.NewController(core.ControllerConfig{Mode: core.ModeMinLatency, Kmax: 4})
	if err != nil {
		t.Fatal(err)
	}
	sup, err := New(Config{
		Target:    EngineTarget(run),
		Operators: run.BoltNames(),
		Stepper:   ctrl,
		Pool:      FixedPool(4),
		Interval:  20 * time.Millisecond,
		Cooldown:  40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(); !errors.Is(err, ErrRunning) {
		t.Fatalf("want ErrRunning on double start, got %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sup.Rounds() < 10 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	sup.Stop()
	sup.Stop() // idempotent
	if sup.Rounds() < 10 {
		t.Fatalf("supervisor barely ran: %d rounds", sup.Rounds())
	}
	if _, ok := sup.LastSnapshot(); !ok {
		t.Fatal("no snapshot observed from live engine")
	}
}

// TestResumeFromPersistedState: a supervisor seeded from a prior life's
// checkpoint continues the round count and re-imposes the captured
// cooldown, so a crash-restart cannot immediately flap; once the carried
// cooldown elapses, decisions flow normally.
func TestResumeFromPersistedState(t *testing.T) {
	clock := newFakeClock()
	target := &fakeTarget{alloc: map[string]int{"a": 1}}
	stepper := &fakeStepper{d: core.Decision{
		Action: core.ActionRebalance, Target: []int{2}, TargetKmax: 4, Reason: "scripted",
	}}
	sup, err := New(Config{
		Target:    target,
		Operators: []string{"a"},
		Stepper:   stepper,
		Pool:      FixedPool(4),
		Source:    &fakeSource{snap: core.Snapshot{Lambda0: 1, Ops: []core.OpRates{{Lambda: 1, Mu: 10}}, Alloc: []int{1}, Kmax: 4}},
		Interval:  10 * time.Second,
		Cooldown:  40 * time.Second,
		Clock:     clock,
		Resume: &PersistedState{
			Rounds: 42,
			// Deliberately above Cooldown: the seed must be capped at it.
			CooldownRemaining: time.Hour,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sup.Rounds(); got != 42 {
		t.Fatalf("resumed Rounds() = %d, want 42", got)
	}
	// Within the carried cooldown: observe-only.
	sup.Tick()
	if n := target.rebalances(); n != 0 {
		t.Fatalf("tick inside carried cooldown applied %d rebalances", n)
	}
	// Past the (capped) cooldown: the decision applies.
	clock.advance(41 * time.Second)
	sup.Tick()
	if n := target.rebalances(); n != 1 {
		t.Fatalf("tick after carried cooldown applied %d rebalances, want 1", n)
	}
	if got := sup.Rounds(); got != 44 {
		t.Fatalf("Rounds() after two ticks = %d, want 44", got)
	}
	// Roundtrip: the freshly applied action started a new cooldown, which
	// the next capture must carry.
	st := sup.PersistedState()
	if st.Rounds != 44 || st.CooldownRemaining <= 0 || st.CooldownRemaining > 40*time.Second {
		t.Fatalf("PersistedState = %+v, want rounds 44 and a live cooldown <= 40s", st)
	}
}
