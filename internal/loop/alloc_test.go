package loop

import (
	"testing"
	"time"

	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/metrics"
	"github.com/drs-repro/drs/internal/obs"
)

// allocTarget is a fakeTarget without the defensive copies: Allocation
// returns the live map, so AllocsPerRun sees only the supervisor's own
// allocations, exactly as the root BenchmarkSupervisorTick measures them.
type allocTarget struct {
	alloc map[string]int
	rep   metrics.IntervalReport
}

func (t *allocTarget) DrainInterval() metrics.IntervalReport { return t.rep }
func (t *allocTarget) Allocation() map[string]int            { return t.alloc }
func (t *allocTarget) Rebalance(alloc map[string]int, _ time.Duration) error {
	for k, v := range alloc {
		t.alloc[k] = v
	}
	return nil
}

// TestSupervisorTickZeroAllocs pins a full control round — measurer
// ingest, snapshot, Algorithm 1 solve, hold/apply verdict — at zero
// allocations with the decision log and the per-tenant histograms wired
// in. Steady-state rounds hold (emit-on-change means they log nothing),
// so observability must stay free on the per-Tm path; this fails when a
// change regresses it.
func TestSupervisorTickZeroAllocs(t *testing.T) {
	if obs.RaceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race")
	}
	dlog := obs.NewLog(obs.Config{})
	defer dlog.Close()
	reg := obs.NewRegistry()
	names := []string{"extract", "match", "aggregate"}
	target := &allocTarget{
		alloc: map[string]int{"extract": 10, "match": 11, "aggregate": 1},
		rep: metrics.IntervalReport{
			Duration:         10 * time.Second,
			ExternalArrivals: 130,
			Ops: []metrics.OpInterval{
				{Arrivals: 130, Served: 130, Sampled: 130, BusyTime: time.Duration(130 * 0.45 * float64(time.Second))},
				{Arrivals: 130, Served: 130, Sampled: 130, BusyTime: time.Duration(130 * 0.50 * float64(time.Second))},
				{Arrivals: 130, Served: 130, Sampled: 130, BusyTime: time.Duration(130 * 0.01 * float64(time.Second))},
			},
			SojournCount: 120,
			SojournTotal: 120 * time.Second,
		},
	}
	ctrl, err := core.NewController(core.ControllerConfig{Mode: core.ModeMinLatency, Kmax: 22, MinGain: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	sup, err := New(Config{
		Target:      target,
		Operators:   names,
		Stepper:     ctrl,
		Pool:        FixedPool(22),
		Interval:    10 * time.Second,
		Cooldown:    time.Nanosecond, // decide every round: measure the full path
		Tenant:      "alloc",
		DecisionLog: dlog,
		Sojourn:     reg.Histogram("sojourn", "sojourn", []float64{0.1, 1}, `tenant="alloc"`),
		ShedFrac:    reg.Histogram("shed", "shed", []float64{0.1, 0.5}, `tenant="alloc"`),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Converge first: the opening rounds may rebalance (and log); the
	// guard is about the steady state every deployment spends its life in.
	for i := 0; i < 8; i++ {
		sup.Tick()
	}
	allocs := testing.AllocsPerRun(5000, func() { sup.Tick() })
	if allocs != 0 {
		t.Fatalf("Tick allocated %.3f/op with the decision log on; want 0", allocs)
	}
}
