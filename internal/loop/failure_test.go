package loop

import (
	"errors"
	"io"
	"log/slog"
	"sync"
	"testing"
	"time"

	"github.com/drs-repro/drs/internal/core"
)

// TestFailureTrackerPrunesStaleKinds: a record whose window has elapsed is
// removed by the next recordFailure sweep, whatever kind it was for — a
// long-lived daemon's tracker must not accumulate one record per action
// kind forever.
func TestFailureTrackerPrunesStaleKinds(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	ft := newFailureTracker(3, 10*time.Second, logger)
	now := time.Unix(0, 0)
	ft.recordFailure("scale-out", errors.New("boom"), now)
	ft.recordFailure("scale-out", errors.New("boom"), now)
	ft.recordFailure("rebalance", errors.New("boom"), now.Add(5*time.Second))
	ft.mu.Lock()
	kinds := len(ft.records)
	ft.mu.Unlock()
	if kinds != 2 {
		t.Fatalf("records before expiry = %d, want 2", kinds)
	}
	// 11s after the scale-out failures: a failure of a *different* kind
	// must sweep the stale scale-out record (and the rebalance one at 6s
	// stays).
	ft.recordFailure("preempt-shrink", errors.New("boom"), now.Add(11*time.Second))
	ft.mu.Lock()
	_, staleKept := ft.records["scale-out"]
	_, freshKept := ft.records["rebalance"]
	kinds = len(ft.records)
	ft.mu.Unlock()
	if staleKept {
		t.Fatal("stale scale-out record survived the sweep")
	}
	if !freshKept {
		t.Fatal("in-window rebalance record was swept")
	}
	if kinds != 2 {
		t.Fatalf("records after sweep = %d, want 2", kinds)
	}
	// A fresh failure of the swept kind starts from a clean count: two
	// more failures must not suppress (threshold 3).
	later := now.Add(12 * time.Second)
	ft.recordFailure("scale-out", errors.New("boom"), later)
	if ft.shouldSkip("scale-out", later) {
		t.Fatal("swept kind suppressed after a single fresh failure")
	}
}

// churnPool wraps fakeArbiterPool with the lease's failure-loss counter so
// the supervisor can attribute forced shrinks to machine failure.
type churnPool struct {
	fakeArbiterPool
	mu   sync.Mutex
	lost int
}

func (p *churnPool) LostSlots() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lost
}

func (p *churnPool) loseSlots(n, newKmax int) {
	p.mu.Lock()
	p.lost += n
	p.mu.Unlock()
	p.setKmax(newKmax)
}

// TestSlotsLostShrinkAttribution drives the two forced-shrink causes
// through one supervisor: a budget drop with a fresh failure-loss reading
// must be reported as SlotsLost, a later drop without one as Preempted —
// and both must act inside an open cooldown.
func TestSlotsLostShrinkAttribution(t *testing.T) {
	clock := newFakeClock()
	target := &fakeTarget{alloc: map[string]int{"a": 4, "b": 4}}
	pool := &churnPool{fakeArbiterPool: fakeArbiterPool{kmax: 8, grantCap: 8}}
	src := &fakeSource{snap: core.Snapshot{
		Lambda0: 2, Ops: []core.OpRates{{Name: "a", Lambda: 1, Mu: 2}, {Name: "b", Lambda: 1, Mu: 2}},
	}}
	sup, err := New(Config{
		Target:    target,
		Operators: []string{"a", "b"},
		Stepper:   &fakeStepper{}, // always holds; only forced shrinks act
		Pool:      pool,
		Source:    src,
		Interval:  time.Second,
		Cooldown:  100 * time.Second,
		Clock:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.Tick() // snapshot stored; budget still covers the allocation
	// Two slots go down with a machine: the arbiter re-arbitrates the
	// grant to 6 and the lease's loss counter ticks.
	pool.loseSlots(2, 6)
	clock.advance(time.Second)
	sup.Tick()
	hist := sup.History()
	if len(hist) != 1 || !hist[0].Applied {
		t.Fatalf("want one applied event after the failover shrink, got %+v", hist)
	}
	if !hist[0].SlotsLost || hist[0].Preempted {
		t.Fatalf("failover shrink misattributed: %+v", hist[0])
	}
	if got := target.Allocation(); got["a"]+got["b"] != 6 {
		t.Fatalf("allocation not re-fit to the surviving grant: %v", got)
	}
	// A further drop without a loss reading is a preemption.
	pool.setKmax(4)
	clock.advance(time.Second)
	sup.Tick()
	hist = sup.History()
	if len(hist) != 2 {
		t.Fatalf("want two events, got %+v", hist)
	}
	if !hist[1].Preempted || hist[1].SlotsLost {
		t.Fatalf("preemption shrink misattributed: %+v", hist[1])
	}
	if got := target.Allocation(); got["a"]+got["b"] != 4 {
		t.Fatalf("allocation not vacated to the preempted grant: %v", got)
	}
}
