package loop

import (
	"math"
	"sync"
	"testing"
	"time"

	"github.com/drs-repro/drs/internal/cluster"
	"github.com/drs-repro/drs/internal/core"
)

// capturingStepper records every snapshot it is stepped with.
type capturingStepper struct {
	mu    sync.Mutex
	snaps []core.Snapshot
}

func (c *capturingStepper) Step(s core.Snapshot) (core.Decision, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.snaps = append(c.snaps, s)
	return core.Decision{Action: core.ActionNone}, nil
}

func (c *capturingStepper) last() (core.Snapshot, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.snaps) == 0 {
		return core.Snapshot{}, false
	}
	return c.snaps[len(c.snaps)-1], true
}

// reportingPool is a FixedPool that also captures tenant reports.
type reportingPool struct {
	Pool
	mu      sync.Mutex
	reports []cluster.TenantReport
}

func (p *reportingPool) Report(r cluster.TenantReport) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reports = append(p.reports, r)
}

// TestScaleOnOfferedLoad: when the snapshot's offered rate exceeds the
// admitted λ̂0 (an ingest tier is shedding), the supervisor must inflate
// the whole snapshot to offered demand before stepping — λ̂0 and every
// per-operator λ̂_i — and report the shed fraction (plus a forced
// Violating) to an arbitrated lease.
func TestScaleOnOfferedLoad(t *testing.T) {
	clock := newFakeClock()
	target := &fakeTarget{alloc: map[string]int{"extract": 2, "match": 2}}
	stepper := &capturingStepper{}
	pool := &reportingPool{Pool: FixedPool(4)}
	src := &fakeSource{snap: core.Snapshot{
		Lambda0:        10,
		OfferedLambda0: 25,
		Ops: []core.OpRates{
			{Name: "extract", Lambda: 10, Mu: 30},
			{Name: "match", Lambda: 20, Mu: 40},
		},
		MeasuredSojourn: 0.05,
	}}
	sup, err := New(Config{
		Target:    target,
		Operators: []string{"extract", "match"},
		Stepper:   stepper,
		Pool:      pool,
		Source:    src,
		Interval:  time.Second,
		Clock:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.Tick()
	snap, ok := stepper.last()
	if !ok {
		t.Fatal("stepper never ran")
	}
	if math.Abs(snap.Lambda0-25) > 1e-9 {
		t.Fatalf("stepper saw lambda0 %.2f, want offered 25", snap.Lambda0)
	}
	if math.Abs(snap.Ops[0].Lambda-25) > 1e-9 || math.Abs(snap.Ops[1].Lambda-50) > 1e-9 {
		t.Fatalf("per-operator rates not demand-scaled: got %.2f/%.2f, want 25/50",
			snap.Ops[0].Lambda, snap.Ops[1].Lambda)
	}
	if snap.Ops[0].Mu != 30 || snap.Ops[1].Mu != 40 {
		t.Fatalf("service rates must not scale: got %.2f/%.2f", snap.Ops[0].Mu, snap.Ops[1].Mu)
	}
	// LastSnapshot exposes the demand-scaled view.
	last, ok := sup.LastSnapshot()
	if !ok || math.Abs(last.Lambda0-25) > 1e-9 {
		t.Fatalf("LastSnapshot lambda0 %.2f, want 25", last.Lambda0)
	}
	pool.mu.Lock()
	defer pool.mu.Unlock()
	if len(pool.reports) != 1 {
		t.Fatalf("want 1 tenant report, got %d", len(pool.reports))
	}
	rep := pool.reports[0]
	if math.Abs(rep.ShedFraction-0.6) > 1e-9 {
		t.Fatalf("shed fraction %.3f, want 0.6 (15 of 25 offered shed)", rep.ShedFraction)
	}
	if !rep.Violating {
		t.Fatal("a shedding tenant must report Violating")
	}
}

// TestNoScalingWithoutShedding: offered equal to (or below) admitted must
// leave the snapshot untouched and report no shed fraction.
func TestNoScalingWithoutShedding(t *testing.T) {
	clock := newFakeClock()
	target := &fakeTarget{alloc: map[string]int{"extract": 2}}
	stepper := &capturingStepper{}
	pool := &reportingPool{Pool: FixedPool(4)}
	src := &fakeSource{snap: core.Snapshot{
		Lambda0:        10,
		OfferedLambda0: 10,
		Ops:            []core.OpRates{{Name: "extract", Lambda: 10, Mu: 30}},
	}}
	sup, err := New(Config{
		Target:    target,
		Operators: []string{"extract"},
		Stepper:   stepper,
		Pool:      pool,
		Source:    src,
		Interval:  time.Second,
		Clock:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.Tick()
	snap, ok := stepper.last()
	if !ok {
		t.Fatal("stepper never ran")
	}
	if snap.Lambda0 != 10 || snap.Ops[0].Lambda != 10 {
		t.Fatalf("snapshot scaled without shedding: %+v", snap)
	}
	pool.mu.Lock()
	defer pool.mu.Unlock()
	if len(pool.reports) != 1 || pool.reports[0].ShedFraction != 0 {
		t.Fatalf("want one report with zero shed fraction, got %+v", pool.reports)
	}
}
