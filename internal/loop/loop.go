// Package loop closes the DRS control loop of §IV: it wires the measurer
// module (λ̂/µ̂ aggregation, internal/metrics), the decision module (the
// Program (4)/(6) optimizers behind core.Controller) and the actuation
// layer (engine rebalance + cluster negotiator) into one supervisor that
// runs against a live system. The paper's DRS daemon polls Storm every Tm
// seconds, re-solves the allocation and rebalances when the model says it
// pays off; Supervisor is that daemon for this repository's substrates —
// the goroutine engine (internal/engine) and the discrete-event simulator
// (internal/sim, driven in virtual time via Observe/Tick).
//
// A supervisor reaches its machines through the Pool interface, which
// admits two very different providers: a private cluster.Pool (the
// single-topology deployment the paper evaluates) or a cluster.Tenant
// lease handed out by the multi-tenant cluster.Scheduler. Under a lease
// the protocol becomes request/grant: Resize may be granted only
// partially (the supervisor re-fits its allocation to what it got), the
// budget can shrink between ticks when a higher-priority tenant preempts
// slots (the supervisor vacates them gracefully at the next tick), and
// each round the supervisor pushes a utility report — marginal benefit
// and cost of one slot, from the Eq. 3 model — that the scheduler's
// preemption guard arbitrates with.
package loop

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"github.com/drs-repro/drs/internal/cluster"
	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/engine"
	"github.com/drs-repro/drs/internal/metrics"
	"github.com/drs-repro/drs/internal/obs"
)

// ErrRunning is returned by Start when the supervisor is already running.
var ErrRunning = errors.New("loop: supervisor already started")

// ErrFixedPool is returned when a scale decision reaches a FixedPool.
var ErrFixedPool = errors.New("loop: fixed pool cannot resize")

// Clock abstracts time so tests and virtual-time drivers (the simulator)
// can step the supervisor deterministically.
type Clock interface {
	Now() time.Time
}

// wallClock is the production clock.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// Target is the running system under supervision: it yields measurement
// intervals, reports the allocation in force, and applies a new one.
// EngineTarget adapts the live engine; the experiments package adapts the
// simulator.
type Target interface {
	// DrainInterval returns the counters accumulated since the last drain.
	DrainInterval() metrics.IntervalReport
	// Allocation reports the executor count per operator currently in force.
	Allocation() map[string]int
	// Rebalance applies a new allocation. pause is the modeled service
	// disruption from the cluster cost model — live targets pay their real
	// pause and may ignore it; simulated targets inject it.
	Rebalance(alloc map[string]int, pause time.Duration) error
}

// engineTarget adapts *engine.Run. The live engine pays its real quiesce
// pause, so the modeled pause is dropped.
type engineTarget struct{ r *engine.Run }

func (t engineTarget) DrainInterval() metrics.IntervalReport { return t.r.DrainInterval() }
func (t engineTarget) Allocation() map[string]int            { return t.r.Allocation() }
func (t engineTarget) Rebalance(alloc map[string]int, _ time.Duration) error {
	return t.r.Rebalance(alloc)
}

// EngineTarget adapts a started engine topology for supervision.
func EngineTarget(r *engine.Run) Target { return engineTarget{r} }

// Pool is the resource negotiator the supervisor charges transitions to:
// it prices rebalances and grows/shrinks the processor budget for scale
// decisions (the paper's Appendix-B negotiator). *cluster.Pool implements
// it; FixedPool serves budget-only (Program (4)) deployments.
type Pool interface {
	// Kmax is the processor budget currently on offer.
	Kmax() int
	// Rebalance records an executor remap and returns its modeled pause.
	Rebalance() cluster.Transition
	// Resize negotiates the pool to cover targetKmax processors.
	Resize(targetKmax int) (cluster.Transition, error)
}

var (
	_ Pool = (*cluster.Pool)(nil)
	_ Pool = (*cluster.Tenant)(nil)
)

// TenantReporter is the optional half of the multi-tenant request/grant
// protocol: a Pool that is really an arbitrated lease (cluster.Tenant)
// implements it, and the supervisor pushes a fresh utility
// self-assessment every decision round so the scheduler can compare this
// topology's marginal sojourn-time benefit against the other tenants'.
type TenantReporter interface {
	Report(cluster.TenantReport)
}

var _ TenantReporter = (*cluster.Tenant)(nil)

// ChurnReporter is the optional failure-domain half of an arbitrated
// lease: LostSlots reports the cumulative slots machine failures have
// taken from the grant. The supervisor diffs successive reads to tell a
// failover shrink (SlotsLost) from a preemption — both vacate slots
// outside the cooldown gate, but they are different operational events
// (a failover resolves by machine recovery or replacement, a preemption
// by the claimant's violation clearing).
type ChurnReporter interface {
	LostSlots() int
}

var _ ChurnReporter = (*cluster.Tenant)(nil)

// fixedPool is a Pool with an immutable budget and free rebalances.
type fixedPool int

func (p fixedPool) Kmax() int                     { return int(p) }
func (p fixedPool) Rebalance() cluster.Transition { return cluster.Transition{Kind: "rebalance"} }
func (p fixedPool) Resize(int) (cluster.Transition, error) {
	return cluster.Transition{}, ErrFixedPool
}

// FixedPool returns a Pool with a constant processor budget and free,
// instantaneous rebalances — the ModeMinLatency deployment where the
// cluster is whatever it is and only the split is negotiable.
func FixedPool(kmax int) Pool { return fixedPool(kmax) }

// Source turns interval reports into controller snapshots.
// *metrics.Measurer is the production implementation; tests may script one.
type Source interface {
	AddInterval(metrics.IntervalReport) error
	Snapshot() (core.Snapshot, error)
	Reset()
}

var _ Source = (*metrics.Measurer)(nil)

// Config assembles a supervisor.
type Config struct {
	// Target is the system under supervision (required).
	Target Target
	// Operators are the topology-ordered operator names; they fix the
	// layout of snapshots and allocation vectors (required).
	Operators []string
	// Stepper is the decision policy — *core.Controller for DRS, or the
	// threshold baseline (required).
	Stepper core.Stepper
	// Pool is the resource negotiator (required; use FixedPool for a
	// constant budget).
	Pool Pool
	// Source produces snapshots from interval reports. Nil builds a
	// metrics.Measurer over Operators with the paper's 6-interval window.
	Source Source
	// Interval is the measurement cadence Tm used by Start (required).
	Interval time.Duration
	// Cooldown is how long after an applied (or failed) action the
	// supervisor only observes: the post-transition backlog drains and the
	// reset measurer re-warms before the next decision. Default 4·Interval,
	// matching the paper's guidance that Tm spans several collection
	// rounds after a reconfiguration.
	Cooldown time.Duration
	// FailureThreshold is how many failures of one action kind within
	// FailureWindow suppress that kind (default 3).
	FailureThreshold int
	// FailureWindow bounds how long failures are remembered and how long a
	// suppression lasts (default 10·Cooldown).
	FailureWindow time.Duration
	// MaxHistory caps the retained Event log; the oldest events are
	// dropped past it, keeping a long-lived daemon's memory bounded
	// (default 1024).
	MaxHistory int
	// Logger receives structured loop events; nil discards them.
	Logger *slog.Logger
	// Clock defaults to the wall clock.
	Clock Clock
	// Resume seeds the supervisor from a persisted checkpoint of a prior
	// process life: the round counter continues instead of restarting at
	// zero, and any cooldown that was in force at capture time is
	// re-imposed (capped at Cooldown) so a crash-restart cannot flap
	// around the hysteresis the previous life had already earned. Nil
	// means a cold start.
	Resume *PersistedState
	// Tenant labels this supervisor's decision-log records (optional).
	Tenant string
	// DecisionLog, when set, receives every recorded event — applied
	// re-fits, failed applies, suppression episodes, forced shrinks — as
	// a structured record. Hold rounds record nothing, so the 0-alloc
	// steady-state tick is untouched.
	DecisionLog *obs.Log
	// Sojourn, when set, observes each measured round's end-to-end
	// sojourn (seconds) — the per-tenant latency histogram behind
	// /metrics. Observation is a few atomic adds.
	Sojourn *obs.Histogram
	// ShedFrac, when set, observes each measured round's shed fraction
	// (offered minus admitted over offered).
	ShedFrac *obs.Histogram
}

// PersistedState is the supervisor state worth carrying across a process
// restart — captured by PersistedState(), persisted in the WAL
// checkpoint, and fed back through Config.Resume on the next boot. The
// measurement history is deliberately NOT persisted: after a restart the
// workload must be re-measured, only the decision hysteresis carries
// over.
type PersistedState struct {
	// Rounds is the completed control-round count.
	Rounds int64 `json:"rounds"`
	// CooldownRemaining is how much of an in-force cooldown was left at
	// capture time.
	CooldownRemaining time.Duration `json:"cooldown_remaining"`
}

// Event is one decision round that mattered: an applied action, a failed
// apply, or the start of a suppression episode. Pure holds (ActionNone,
// cooldown, warmup) are not recorded — they happen every few seconds
// forever — and for the same reason an ongoing suppression is recorded
// once when it begins, not on every suppressed round.
type Event struct {
	// At is the supervisor clock time of the round.
	At time.Time
	// Action is what the controller asked for.
	Action core.Action
	// Target is the allocation the decision carried (topology order).
	Target []int
	// Kmax is the pool budget after the round.
	Kmax int
	// Estimated is the model's E[T] for Target, in seconds.
	Estimated float64
	// Pause is the modeled transition pause charged by the pool.
	Pause time.Duration
	// Reason is the controller's justification.
	Reason string
	// Applied reports whether the allocation was put in force.
	Applied bool
	// Suppressed reports a decision skipped by the failure tracker.
	Suppressed bool
	// Preempted reports a forced shrink: the cluster arbiter moved leased
	// slots to another tenant and this supervisor vacated them.
	Preempted bool
	// SlotsLost reports a failover shrink: machine failure took leased
	// slots down with it and this supervisor re-fit its allocation to the
	// surviving grant.
	SlotsLost bool
	// Err is the apply failure, when there was one.
	Err error
}

// Supervisor owns one supervised run: on every tick it drains a
// measurement interval into the source, asks the stepper for a decision,
// and actuates rebalance/scale verdicts through the pool and the target —
// with cooldown hysteresis between actions and suppression of
// repeatedly-failing ones. Drive it with Start/Stop against the wall
// clock, or call Observe/Tick yourself in virtual time.
type Supervisor struct {
	cfg   Config
	clock Clock
	log   *slog.Logger
	fails *failureTracker

	mu            sync.Mutex
	cooldownUntil time.Time
	lastSnap      core.Snapshot
	// lastRawSnap is lastSnap before demand scaling: the admitted-rate
	// view. Re-fits fall back to it when a partial grant cannot even hold
	// the offered-demand rates stably (the admission gate is shedding the
	// difference, so the admitted rates are what actually flows).
	lastRawSnap core.Snapshot
	haveSnap    bool
	// lastAllocTotal caches the slot total of the most recent allocation
	// this supervisor observed or applied, so the per-tick preemption
	// check can skip the target's Allocation() map walk while the grant
	// comfortably covers it.
	lastAllocTotal int
	// seenLostSlots is the lease's cumulative failure-loss counter at the
	// last look; a higher reading marks the next forced shrink as
	// failover (SlotsLost) rather than preemption.
	seenLostSlots int
	history       []Event // ring once MaxHistory is reached
	histStart     int     // oldest event's index once the ring is full
	rounds        int64
	suppressing   map[string]bool // action kinds in an ongoing suppression episode
	// allocBuf backs allocVector's result across rounds, and opsBuf /
	// rawOpsBuf back the Ops slices of lastSnap / lastRawSnap (the
	// measurer reuses its own snapshot storage, so the retained copy must
	// be supervisor-owned). Ticks are serialized and every internal reader
	// consumes these within its round, so reuse keeps the steady-state
	// hold round allocation-free; the buffers are written only under mu,
	// and LastSnapshot copies before handing anything out.
	allocBuf  []int
	opsBuf    []core.OpRates
	rawOpsBuf []core.OpRates

	runMu   sync.Mutex
	stop    chan struct{}
	stopped chan struct{}
}

// New validates the config, fills defaults and builds a supervisor.
func New(cfg Config) (*Supervisor, error) {
	if cfg.Target == nil {
		return nil, errors.New("loop: Target is required")
	}
	if len(cfg.Operators) == 0 {
		return nil, errors.New("loop: Operators is required")
	}
	if cfg.Stepper == nil {
		return nil, errors.New("loop: Stepper is required")
	}
	if cfg.Pool == nil {
		return nil, errors.New("loop: Pool is required")
	}
	if cfg.Interval <= 0 {
		return nil, errors.New("loop: Interval must be positive")
	}
	if cfg.Cooldown < 0 || cfg.FailureThreshold < 0 || cfg.FailureWindow < 0 || cfg.MaxHistory < 0 {
		return nil, errors.New("loop: negative hysteresis parameters")
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = 4 * cfg.Interval
	}
	if cfg.FailureThreshold == 0 {
		cfg.FailureThreshold = 3
	}
	if cfg.FailureWindow == 0 {
		cfg.FailureWindow = 10 * cfg.Cooldown
	}
	if cfg.MaxHistory == 0 {
		cfg.MaxHistory = 1024
	}
	if cfg.Source == nil {
		m, err := metrics.NewMeasurer(metrics.MeasurerConfig{
			OperatorNames: cfg.Operators,
			Smoothing:     metrics.SmoothingSpec{Kind: "window", Window: 6},
		})
		if err != nil {
			return nil, err
		}
		cfg.Source = m
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.Clock == nil {
		cfg.Clock = wallClock{}
	}
	s := &Supervisor{
		cfg:         cfg,
		clock:       cfg.Clock,
		log:         cfg.Logger,
		fails:       newFailureTracker(cfg.FailureThreshold, cfg.FailureWindow, cfg.Logger),
		suppressing: make(map[string]bool),
	}
	if r := cfg.Resume; r != nil {
		s.rounds = r.Rounds
		if cd := r.CooldownRemaining; cd > 0 {
			if cd > cfg.Cooldown {
				cd = cfg.Cooldown
			}
			s.cooldownUntil = s.clock.Now().Add(cd)
		}
	}
	return s, nil
}

// PersistedState captures the restart-worthy supervisor state (see the
// type's doc). Safe to call concurrently with the running loop.
func (s *Supervisor) PersistedState() PersistedState {
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := PersistedState{Rounds: s.rounds}
	if s.cooldownUntil.After(now) {
		st.CooldownRemaining = s.cooldownUntil.Sub(now)
	}
	return st
}

// Start launches the wall-clock loop: one Tick every Interval until Stop.
// It does not own the target's lifecycle — stop the engine separately.
func (s *Supervisor) Start() error {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	if s.stop != nil {
		return ErrRunning
	}
	s.stop = make(chan struct{})
	s.stopped = make(chan struct{})
	go s.run(s.stop, s.stopped)
	s.log.Info("supervisor started", slog.Duration("interval", s.cfg.Interval),
		slog.Duration("cooldown", s.cfg.Cooldown))
	return nil
}

func (s *Supervisor) run(stop <-chan struct{}, stopped chan<- struct{}) {
	defer close(stopped)
	tick := time.NewTicker(s.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			s.Tick()
		}
	}
}

// Stop halts the wall-clock loop and waits for the in-flight tick. It is a
// no-op when the supervisor is not running.
func (s *Supervisor) Stop() {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	if s.stop == nil {
		return
	}
	close(s.stop)
	<-s.stopped
	s.stop, s.stopped = nil, nil
	s.log.Info("supervisor stopped", slog.Int64("rounds", s.Rounds()))
}

// Observe ingests one measurement interval without deciding — the passive
// half of a round, used while the controller is disabled (the experiments'
// warmup phases) or before handing control to Start.
func (s *Supervisor) Observe() {
	rep := s.cfg.Target.DrainInterval()
	if err := s.cfg.Source.AddInterval(rep); err != nil {
		s.log.Warn("bad interval report", slog.Any("err", err))
	}
}

// Tick runs one full control round: observe, snapshot, decide, actuate.
// Callers driving virtual time call it directly; Start calls it on a
// wall-clock ticker. Ticks must not run concurrently with each other or
// with Observe.
func (s *Supervisor) Tick() {
	s.Observe()
	s.mu.Lock()
	s.rounds++
	cooldownUntil := s.cooldownUntil
	s.mu.Unlock()

	now := s.clock.Now()
	// Preemption outranks the cooldown: if the arbiter's grant dropped
	// below the allocation in force, the slots are gone whether or not
	// this supervisor cooperates — vacate them now.
	if s.shrinkToGrant(now) {
		return
	}
	// No forced shrink this tick: consume any failure-loss reading that
	// never forced a re-fit (the shrunken grant still covered the
	// allocation), so a later preemption is not misattributed to it.
	s.syncLostSlots()
	if now.Before(cooldownUntil) {
		return
	}
	snap, err := s.cfg.Source.Snapshot()
	if err != nil {
		// Warmup is not an error: the measurer fills in over the first
		// intervals (and after every post-action Reset).
		if !errors.Is(err, metrics.ErrNotReady) && !errors.Is(err, metrics.ErrIncomplete) {
			s.log.Warn("snapshot failed", slog.Any("err", err))
		}
		return
	}
	alloc, ok := s.allocVector()
	if !ok {
		return
	}
	snap.Alloc = alloc
	snap.Kmax = s.cfg.Pool.Kmax()
	// Scale-on-offered-load: when an ingest tier is shedding, the admitted
	// rates describe the post-shed remainder, not the demand. Inflate the
	// snapshot to the offered rate (every λ̂_i scales linearly with λ̂0 in a
	// Jackson network) before deciding, so the controller provisions
	// against what clients are actually sending — and the admission
	// controller can stop shedding once the grant catches up.
	raw := snap
	shedFraction := 0.0
	if snap.OfferedLambda0 > snap.Lambda0 && snap.Lambda0 > 0 {
		shedFraction = (snap.OfferedLambda0 - snap.Lambda0) / snap.OfferedLambda0
		scale := snap.OfferedLambda0 / snap.Lambda0
		scaled := make([]core.OpRates, len(snap.Ops))
		for i, op := range snap.Ops {
			op.Lambda *= scale
			scaled[i] = op
		}
		snap.Ops = scaled
		snap.Lambda0 = snap.OfferedLambda0
	}
	s.mu.Lock()
	s.lastSnap, s.lastRawSnap, s.haveSnap = snap, raw, true
	// Re-point the retained snapshots at supervisor-owned storage: snap.Ops
	// is the measurer's scratch, overwritten by its next Snapshot call.
	s.opsBuf = append(s.opsBuf[:0], snap.Ops...)
	s.lastSnap.Ops = s.opsBuf
	s.rawOpsBuf = append(s.rawOpsBuf[:0], raw.Ops...)
	s.lastRawSnap.Ops = s.rawOpsBuf
	s.lastAllocTotal = sumInts(alloc)
	s.mu.Unlock()
	s.reportTenant(snap, shedFraction)
	s.cfg.Sojourn.Observe(snap.MeasuredSojourn)
	s.cfg.ShedFrac.Observe(shedFraction)

	d, err := s.cfg.Stepper.Step(snap)
	if err != nil {
		// The measured rates put Tmax below the service-time floor, or even
		// the minimum stable allocation exceeds the grant (a heavy-tailed
		// measurement window, or demand far past a preempted lease): no
		// allocation this round helps, so hold and re-measure next round —
		// the admission gate sheds the excess in the meantime.
		if errors.Is(err, core.ErrUnreachableTarget) || errors.Is(err, core.ErrInsufficientResources) {
			if s.debugEnabled() {
				s.log.Debug("target unreachable; holding", slog.Any("err", err))
			}
			return
		}
		s.log.Warn("controller step failed", slog.Any("err", err))
		return
	}
	if d.Action == core.ActionNone {
		// Gated so the steady-state hold round (this branch, every Tm
		// forever) pays no attr-slice allocation when debug is off.
		if s.debugEnabled() {
			s.log.Debug("holding", slog.String("reason", d.Reason))
		}
		return
	}
	kind := d.Action.String()
	if s.fails.shouldSkip(kind, now) {
		s.mu.Lock()
		ongoing := s.suppressing[kind]
		s.suppressing[kind] = true
		s.mu.Unlock()
		if !ongoing { // record the episode once, not every suppressed round
			s.record(Event{At: now, Action: d.Action, Target: d.Target, Kmax: snap.Kmax,
				Estimated: d.Estimated, Reason: d.Reason, Suppressed: true})
			s.log.Info("decision suppressed", slog.String("action", kind), slog.String("reason", d.Reason))
		}
		return
	}
	s.mu.Lock()
	delete(s.suppressing, kind)
	s.mu.Unlock()
	s.apply(now, d)
}

// apply actuates one decision: charge the pool, rebalance the target, and
// on success reset measurements and enter cooldown. Failures are recorded
// for suppression and still start a cooldown — after a failed quiesce the
// engine just spent its timeout paused, and an immediate retry would too.
func (s *Supervisor) apply(now time.Time, d core.Decision) {
	kind := d.Action.String()
	kmaxBefore := s.cfg.Pool.Kmax()
	var tr cluster.Transition
	var err error
	switch d.Action {
	case core.ActionRebalance:
		tr = s.cfg.Pool.Rebalance()
	default:
		tr, err = s.cfg.Pool.Resize(d.TargetKmax)
		if err != nil {
			// A capacity refusal is a negotiation outcome, not a loop
			// failure: nothing was disturbed and no pause was paid, so
			// hold this round — without cooldown or failure tracking — and
			// re-evaluate next tick (a within-pool rebalance decided then
			// must not sit out a cooldown the refusal never earned).
			if errors.Is(err, cluster.ErrNoCapacity) {
				s.log.Info("pool at capacity; holding", slog.String("action", kind),
					slog.Int("target_kmax", d.TargetKmax), slog.Any("err", err))
				return
			}
			s.fails.recordFailure(kind, err, now)
			s.finishRound(Event{At: now, Action: d.Action, Target: d.Target,
				Kmax: kmaxBefore, Estimated: d.Estimated, Reason: d.Reason, Err: err})
			s.log.Warn("pool resize refused", slog.String("action", kind),
				slog.Int("target_kmax", d.TargetKmax), slog.Any("err", err))
			return
		}
	}
	// Partial grant: an arbitrated pool may have granted fewer slots than
	// the decision asked for. The decision's allocation was optimized for
	// the full request, so re-solve it for the budget actually granted.
	if granted := s.cfg.Pool.Kmax(); granted < d.TargetKmax && d.Target != nil {
		refit, rerr := s.refitTarget(granted)
		if rerr != nil {
			s.fails.recordFailure(kind, rerr, now)
			if s.cfg.Pool.Kmax() != kmaxBefore {
				if _, rbErr := s.cfg.Pool.Resize(kmaxBefore); rbErr != nil {
					s.log.Warn("pool rollback failed", slog.Any("err", rbErr))
				}
			}
			s.finishRound(Event{At: now, Action: d.Action, Target: d.Target,
				Kmax: s.cfg.Pool.Kmax(), Estimated: d.Estimated, Pause: tr.Pause,
				Reason: d.Reason, Err: rerr})
			s.log.Warn("partial grant unusable", slog.String("action", kind),
				slog.Int("granted", granted), slog.Int("requested", d.TargetKmax), slog.Any("err", rerr))
			return
		}
		s.log.Info("partial grant", slog.Int("requested", d.TargetKmax), slog.Int("granted", granted))
		d.Target = refit
		d.TargetKmax = granted
	}
	alloc, err := d.AllocMap(s.cfg.Operators)
	if err == nil {
		err = s.cfg.Target.Rebalance(alloc, tr.Pause)
	}
	if err != nil {
		s.fails.recordFailure(kind, err, now)
		// Best-effort pool rollback: the allocation never changed, so the
		// budget the resize negotiated should not stay charged — machines
		// on a private pool, or granted slots on an arbitrated lease (a
		// lease's grant can grow without any machine change, and hoarding
		// it would starve the other tenants).
		if s.cfg.Pool.Kmax() != kmaxBefore {
			if _, rbErr := s.cfg.Pool.Resize(kmaxBefore); rbErr != nil {
				s.log.Warn("pool rollback failed", slog.Any("err", rbErr))
			}
		}
		s.finishRound(Event{At: now, Action: d.Action, Target: d.Target,
			Kmax: s.cfg.Pool.Kmax(), Estimated: d.Estimated, Pause: tr.Pause,
			Reason: d.Reason, Err: err})
		s.log.Warn("rebalance failed", slog.String("action", kind), slog.Any("err", err))
		return
	}
	s.fails.recordSuccess(kind)
	// Old measurements do not describe the new configuration.
	s.cfg.Source.Reset()
	s.mu.Lock()
	s.lastAllocTotal = sumInts(d.Target)
	s.mu.Unlock()
	s.finishRound(Event{At: now, Action: d.Action, Target: d.Target,
		Kmax: s.cfg.Pool.Kmax(), Estimated: d.Estimated, Pause: tr.Pause,
		Reason: d.Reason, Applied: true})
	s.log.Info("decision applied", slog.String("action", kind),
		slog.Any("alloc", d.Target), slog.Int("kmax", s.cfg.Pool.Kmax()),
		slog.Duration("pause", tr.Pause), slog.String("reason", d.Reason))
}

// refitTarget re-solves the allocation for the budget an arbitrated pool
// actually granted, from the most recent snapshot's model. When the
// demand-scaled (offered-load) rates cannot even run stably on the grant
// — the regime where the ingest gate is shedding — it falls back to the
// admitted-rate snapshot: fit what actually flows, and let the next
// rounds re-negotiate for the rest.
func (s *Supervisor) refitTarget(granted int) ([]int, error) {
	s.mu.Lock()
	snap, raw, have := s.lastSnap, s.lastRawSnap, s.haveSnap
	s.mu.Unlock()
	if !have {
		return nil, errors.New("loop: no snapshot to re-fit a partial grant from")
	}
	fit := func(sn core.Snapshot) ([]int, error) {
		model, err := core.NewModel(sn.Lambda0, sn.Ops)
		if err != nil {
			return nil, err
		}
		return model.AssignProcessors(granted)
	}
	target, err := fit(snap)
	if err != nil && raw.Lambda0 < snap.Lambda0 {
		return fit(raw)
	}
	return target, err
}

// reportTenant pushes a utility self-assessment to the pool when it is an
// arbitrated lease: λ̂0, whether the tenant violates its Tmax, the shed
// fraction of its ingest tier, and the marginal benefit/cost of one slot
// in the cross-tenant-comparable Equation (3) numerator units. snap is the
// demand-scaled snapshot, so the bid reflects offered load.
func (s *Supervisor) reportTenant(snap core.Snapshot, shedFraction float64) {
	rep, ok := s.cfg.Pool.(TenantReporter)
	if !ok {
		return
	}
	model, err := core.NewModel(snap.Lambda0, snap.Ops)
	if err != nil {
		return
	}
	grow, err := model.GrowBenefit(snap.Alloc)
	if err != nil {
		return
	}
	shrink, err := model.ShrinkCost(snap.Alloc)
	if err != nil {
		return
	}
	// A shedding tenant is violating by construction: the shed traffic is
	// demand its grant already failed to serve, whatever the measured
	// sojourn of the admitted remainder says.
	violating := shedFraction > 0
	if t, ok := s.cfg.Stepper.(interface{ Tmax() float64 }); !violating && ok {
		if tmax := t.Tmax(); tmax > 0 {
			violating = snap.MeasuredSojourn > tmax
			if !violating {
				if est, eerr := model.ExpectedSojourn(snap.Alloc); eerr == nil && est > tmax {
					violating = true
				}
			}
		}
	}
	rep.Report(cluster.TenantReport{
		Lambda0:      snap.Lambda0,
		Violating:    violating,
		GrowBenefit:  grow,
		ShrinkCost:   shrink,
		ShedFraction: shedFraction,
	})
}

// shrinkToGrant is the graceful-shrink half of the request/grant protocol:
// when the pool budget has dropped below the allocation in force — the
// cluster arbiter preempted leased slots for another tenant, or a machine
// failure took them down — rebalance down to fit the remaining grant and
// report whether the tick is consumed. The two causes are told apart
// through the lease's ChurnReporter counter and reported as Preempted or
// SlotsLost events; both re-solve outside the cooldown gate, because the
// slots are gone whether or not this supervisor cooperates. The shrunk
// allocation is the model optimum for the smaller budget when a snapshot
// exists, else slots are peeled off the largest operators.
func (s *Supervisor) shrinkToGrant(now time.Time) bool {
	budget := s.cfg.Pool.Kmax()
	if budget <= 0 {
		return false
	}
	s.mu.Lock()
	known := s.lastAllocTotal
	s.mu.Unlock()
	// Fast path: the grant covers the last allocation this supervisor saw
	// or applied (the only writer of allocations), so there is nothing to
	// vacate and no need to walk the target's allocation map.
	if known > 0 && budget >= known {
		return false
	}
	alloc, ok := s.allocVector()
	if !ok {
		return false
	}
	total := sumInts(alloc)
	if total <= budget {
		s.mu.Lock()
		s.lastAllocTotal = total
		s.mu.Unlock()
		return false
	}
	// Attribute the shrink: a fresh failure-loss reading marks failover.
	// The reading is consumed (seenLostSlots advanced) only once the
	// shrink is applied — a skipped or failed attempt must keep its
	// failover classification for the retry.
	lost := false
	lostCum := 0
	if cr, ok := s.cfg.Pool.(ChurnReporter); ok {
		lostCum = cr.LostSlots()
		s.mu.Lock()
		lost = lostCum > s.seenLostSlots
		s.mu.Unlock()
	}
	kind, cause := "preempt-shrink", "vacating preempted slots"
	if lost {
		kind, cause = "failover-shrink", "re-fitting after machine failure"
	}
	if s.fails.shouldSkip(kind, now) {
		return true
	}
	target := s.shrunkAlloc(alloc, budget)
	// A grant below one slot per operator cannot be fully vacated — the
	// fallback bottoms out at the physical floor. When that floor is the
	// allocation already in force there is nothing to apply: hold instead
	// of paying a rebalance pause every tick for an identical allocation.
	if allocEqual(target, alloc) {
		return false
	}
	m := make(map[string]int, len(s.cfg.Operators))
	for i, name := range s.cfg.Operators {
		m[name] = target[i]
	}
	tr := s.cfg.Pool.Rebalance()
	err := s.cfg.Target.Rebalance(m, tr.Pause)
	ev := Event{At: now, Action: core.ActionRebalance, Target: target, Kmax: budget,
		Pause: tr.Pause, Preempted: !lost, SlotsLost: lost,
		Reason: fmt.Sprintf("grant shrank to %d below allocation total %d; %s", budget, total, cause)}
	if err != nil {
		s.fails.recordFailure(kind, err, now)
		ev.Err = err
		s.finishRound(ev)
		s.log.Warn("forced shrink failed", slog.String("kind", kind), slog.Any("err", err))
		return true
	}
	s.fails.recordSuccess(kind)
	s.cfg.Source.Reset()
	s.mu.Lock()
	s.lastAllocTotal = sumInts(target)
	if lost && lostCum > s.seenLostSlots {
		s.seenLostSlots = lostCum
	}
	s.mu.Unlock()
	ev.Applied = true
	s.finishRound(ev)
	s.log.Info("shrank to grant", slog.String("cause", cause), slog.Any("alloc", target),
		slog.Int("kmax", budget), slog.Duration("pause", tr.Pause))
	return true
}

// syncLostSlots advances the consumed failure-loss reading to the lease's
// current cumulative counter. Called on ticks that needed no forced
// shrink: a loss that never forced a re-fit must not taint the
// classification of a later preemption shrink.
func (s *Supervisor) syncLostSlots() {
	cr, ok := s.cfg.Pool.(ChurnReporter)
	if !ok {
		return
	}
	cum := cr.LostSlots()
	s.mu.Lock()
	if cum > s.seenLostSlots {
		s.seenLostSlots = cum
	}
	s.mu.Unlock()
}

// debugEnabled reports whether the logger would emit debug records.
func (s *Supervisor) debugEnabled() bool {
	return s.log.Enabled(context.Background(), slog.LevelDebug)
}

// sumInts totals a slot vector.
func sumInts(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// allocEqual reports whether two allocation vectors match.
func allocEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// shrunkAlloc fits the current allocation into a smaller budget.
func (s *Supervisor) shrunkAlloc(cur []int, budget int) []int {
	s.mu.Lock()
	snaps := [2]core.Snapshot{s.lastSnap, s.lastRawSnap}
	have := s.haveSnap
	s.mu.Unlock()
	if have {
		// Demand-scaled first; the admitted-rate view as fallback when the
		// offered load cannot run stably on the shrunken budget.
		for _, snap := range snaps {
			if model, err := core.NewModel(snap.Lambda0, snap.Ops); err == nil {
				if target, aerr := model.AssignProcessors(budget); aerr == nil {
					return target
				}
			}
		}
	}
	// No usable model (startup, or the budget is below the minimum stable
	// allocation): peel slots off the largest operators, never below one.
	out := append([]int(nil), cur...)
	total := 0
	for _, k := range out {
		total += k
	}
	for total > budget {
		big := -1
		for i, k := range out {
			if k > 1 && (big < 0 || k > out[big]) {
				big = i
			}
		}
		if big < 0 {
			break
		}
		out[big]--
		total--
	}
	return out
}

// finishRound records an event and starts the cooldown. The cooldown is
// anchored at the current clock time, not the round's start: a live
// rebalance can block for its whole quiesce timeout, and anchoring earlier
// would let the apply consume its own cooldown and retry immediately.
func (s *Supervisor) finishRound(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cooldownUntil = s.clock.Now().Add(s.cfg.Cooldown)
	s.appendLocked(ev)
}

// record appends an event without touching the cooldown.
func (s *Supervisor) record(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appendLocked(ev)
}

// appendLocked appends under s.mu. Once MaxHistory events exist the slice
// becomes a ring and the oldest event is overwritten in place — O(1) per
// event, so a long-lived daemon neither grows nor re-copies its log. Every
// appended event is mirrored into the decision log (hold rounds never
// reach here, so the steady-state tick stays allocation-free).
func (s *Supervisor) appendLocked(ev Event) {
	if s.cfg.DecisionLog != nil {
		kind := obs.KindRefit
		switch {
		case ev.Suppressed:
			kind = obs.KindSuppress
		case ev.Err != nil:
			kind = obs.KindRefitFailed
		}
		s.cfg.DecisionLog.Emit(&obs.Record{
			At:   ev.At.UnixNano(),
			Kind: kind, Tenant: s.cfg.Tenant,
			From: s.lastAllocTotal, To: sumInts(ev.Target),
			Gain: ev.Estimated, PauseNS: ev.Pause.Nanoseconds(),
			Flag: ev.Preempted || ev.SlotsLost, Detail: ev.Reason,
		})
	}
	if len(s.history) < s.cfg.MaxHistory {
		s.history = append(s.history, ev)
		return
	}
	s.history[s.histStart] = ev
	s.histStart = (s.histStart + 1) % len(s.history)
}

// allocVector reads the target's current allocation in operator order. The
// returned slice is scratch storage valid until the next allocVector call;
// it is filled under mu so LastSnapshot's copy never races a refill.
func (s *Supervisor) allocVector() ([]int, bool) {
	m := s.cfg.Target.Allocation()
	s.mu.Lock()
	if cap(s.allocBuf) < len(s.cfg.Operators) {
		s.allocBuf = make([]int, len(s.cfg.Operators))
	}
	out := s.allocBuf[:len(s.cfg.Operators)]
	for i, name := range s.cfg.Operators {
		n, ok := m[name]
		if !ok {
			s.mu.Unlock()
			s.log.Warn("target allocation missing operator", slog.String("operator", name))
			return nil, false
		}
		out[i] = n
	}
	s.mu.Unlock()
	return out, true
}

// History returns a copy of every recorded event, in order.
func (s *Supervisor) History() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.history))
	n := copy(out, s.history[s.histStart:])
	copy(out[n:], s.history[:s.histStart])
	return out
}

// LastSnapshot returns the most recent snapshot handed to the stepper —
// a live view of λ̂0, per-operator rates and measured sojourn for
// dashboards — and whether one exists yet. The Ops and Alloc slices are
// copies: the supervisor's own views live in scratch storage the next
// round overwrites.
func (s *Supervisor) LastSnapshot() (core.Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.lastSnap
	snap.Ops = append([]core.OpRates(nil), snap.Ops...)
	snap.Alloc = append([]int(nil), snap.Alloc...)
	return snap, s.haveSnap
}

// Rounds reports how many control rounds have run (Ticks, not Observes).
func (s *Supervisor) Rounds() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rounds
}

// String renders one event line, for operator logs and demo output.
func (e Event) String() string {
	status := "applied"
	switch {
	case e.Suppressed:
		status = "suppressed"
	case e.Err != nil:
		status = "failed: " + e.Err.Error()
	}
	return fmt.Sprintf("%-9s -> %v Kmax=%d est=%.1fms pause=%.1fs [%s] %s",
		e.Action, e.Target, e.Kmax, e.Estimated*1e3, e.Pause.Seconds(), status, e.Reason)
}
