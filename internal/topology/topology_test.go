package topology

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9*(1+math.Abs(a)+math.Abs(b))
}

// buildVLDChain is the paper's Figure 4 shape: spout feeds a chain
// extractor -> matcher -> aggregator with fan-out selectivity at the
// extractor (features per frame) and fan-in at the aggregator.
func buildVLDChain(t *testing.T) *Topology {
	t.Helper()
	topo, err := NewBuilder().
		AddOperator("extract", 1.5, 13).
		AddOperator("match", 65, 0).
		AddOperator("aggregate", 600, 0).
		Connect("extract", "match", 50).
		Connect("match", "aggregate", 0.2).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestChainArrivalRates(t *testing.T) {
	topo := buildVLDChain(t)
	lam, err := topo.ArrivalRates()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{13, 13 * 50, 13 * 50 * 0.2}
	for i := range want {
		if !almostEqual(lam[i], want[i]) {
			t.Errorf("lambda[%d] = %g, want %g", i, lam[i], want[i])
		}
	}
	if got := topo.ExternalRate(); !almostEqual(got, 13) {
		t.Errorf("lambda0 = %g, want 13", got)
	}
}

func TestSplitJoinRates(t *testing.T) {
	// Figure 2 without the loop: A splits to B and C; C and D join at E.
	topo, err := NewBuilder().
		AddOperator("A", 10, 5).
		AddOperator("B", 10, 0).
		AddOperator("C", 10, 0).
		AddOperator("D", 10, 2).
		AddOperator("E", 10, 0).
		Connect("A", "B", 0.7).
		Connect("A", "C", 0.3).
		Connect("C", "E", 1).
		Connect("D", "E", 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	lam, err := topo.ArrivalRates()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"A": 5, "B": 3.5, "C": 1.5, "D": 2, "E": 3.5}
	for name, w := range want {
		i, err := topo.Index(name)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(lam[i], w) {
			t.Errorf("lambda[%s] = %g, want %g", name, lam[i], w)
		}
	}
}

func TestLoopRatesGeometric(t *testing.T) {
	// A -> A with gain g: lambda_A = ext / (1 - g).
	const g = 0.4
	topo, err := NewBuilder().
		AddOperator("A", 100, 6).
		Connect("A", "A", g).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	lam, err := topo.ArrivalRates()
	if err != nil {
		t.Fatal(err)
	}
	if want := 6 / (1 - g); !almostEqual(lam[0], want) {
		t.Errorf("self-loop lambda = %g, want %g", lam[0], want)
	}
}

func TestFigure2FullTopologyWithLoop(t *testing.T) {
	// The paper's Figure 2: split A->{B,C}, join {C,D}->E, loop E->A.
	topo, err := NewBuilder().
		AddOperator("A", 50, 10).
		AddOperator("B", 50, 0).
		AddOperator("C", 50, 0).
		AddOperator("D", 50, 4).
		AddOperator("E", 50, 0).
		Connect("A", "B", 0.6).
		Connect("A", "C", 0.4).
		Connect("C", "E", 1).
		Connect("D", "E", 1).
		Connect("E", "A", 0.5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	lam, err := topo.ArrivalRates()
	if err != nil {
		t.Fatal(err)
	}
	// Solve by hand: lA = 10 + 0.5*lE; lC = 0.4*lA; lE = lC + 4.
	// lE = 0.4*lA + 4; lA = 10 + 0.2*lA + 2 => lA = 15; lE = 10; lB = 9; lC = 6.
	want := map[string]float64{"A": 15, "B": 9, "C": 6, "D": 4, "E": 10}
	for name, w := range want {
		i, _ := topo.Index(name)
		if !almostEqual(lam[i], w) {
			t.Errorf("lambda[%s] = %g, want %g", name, lam[i], w)
		}
	}
}

func TestInfeasibleLoop(t *testing.T) {
	_, err := NewBuilder().
		AddOperator("A", 10, 1).
		Connect("A", "A", 1.0). // gain exactly 1: tuples never drain
		Build()
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("loop gain 1 should be ErrInfeasible, got %v", err)
	}
	_, err = NewBuilder().
		AddOperator("A", 10, 1).
		AddOperator("B", 10, 0).
		Connect("A", "B", 2).
		Connect("B", "A", 0.6). // cycle gain 1.2
		Build()
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("cycle gain > 1 should be ErrInfeasible, got %v", err)
	}
}

func TestFeasibleTwoOperatorLoop(t *testing.T) {
	topo, err := NewBuilder().
		AddOperator("A", 10, 1).
		AddOperator("B", 10, 0).
		Connect("A", "B", 2).
		Connect("B", "A", 0.25). // cycle gain 0.5
		Build()
	if err != nil {
		t.Fatal(err)
	}
	lam, err := topo.ArrivalRates()
	if err != nil {
		t.Fatal(err)
	}
	// lA = 1 + 0.25 lB, lB = 2 lA => lA = 1/(1-0.5) = 2, lB = 4.
	if !almostEqual(lam[0], 2) || !almostEqual(lam[1], 4) {
		t.Errorf("rates = %v, want [2 4]", lam)
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name  string
		build func() (*Topology, error)
	}{
		{"empty name", func() (*Topology, error) {
			return NewBuilder().AddOperator("", 1, 1).Build()
		}},
		{"duplicate operator", func() (*Topology, error) {
			return NewBuilder().AddOperator("A", 1, 1).AddOperator("A", 1, 0).Build()
		}},
		{"bad service rate", func() (*Topology, error) {
			return NewBuilder().AddOperator("A", 0, 1).Build()
		}},
		{"negative external", func() (*Topology, error) {
			return NewBuilder().AddOperator("A", 1, -1).Build()
		}},
		{"unknown edge source", func() (*Topology, error) {
			return NewBuilder().AddOperator("A", 1, 1).Connect("X", "A", 1).Build()
		}},
		{"unknown edge target", func() (*Topology, error) {
			return NewBuilder().AddOperator("A", 1, 1).Connect("A", "X", 1).Build()
		}},
		{"bad selectivity", func() (*Topology, error) {
			return NewBuilder().AddOperator("A", 1, 1).Connect("A", "A", 0).Build()
		}},
		{"no operators", func() (*Topology, error) {
			return NewBuilder().Build()
		}},
		{"no external arrivals", func() (*Topology, error) {
			return NewBuilder().AddOperator("A", 1, 0).Build()
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.build(); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestBuilderAccumulatesMultipleErrors(t *testing.T) {
	_, err := NewBuilder().
		AddOperator("", 1, 1).
		AddOperator("A", -1, 0).
		Connect("A", "Z", 1).
		Build()
	if err == nil {
		t.Fatal("want error")
	}
}

func TestAccessors(t *testing.T) {
	topo := buildVLDChain(t)
	if topo.N() != 3 {
		t.Fatalf("N = %d, want 3", topo.N())
	}
	i, err := topo.Index("match")
	if err != nil {
		t.Fatal(err)
	}
	if op := topo.Operator(i); op.Name != "match" || op.ServiceRate != 65 {
		t.Errorf("Operator(%d) = %+v", i, op)
	}
	if _, err := topo.Index("nope"); !errors.Is(err, ErrUnknownOperator) {
		t.Errorf("unknown name: err = %v", err)
	}
	ext, _ := topo.Index("extract")
	out := topo.OutEdges(ext)
	if len(out) != 1 || out[0].Selectivity != 50 {
		t.Errorf("OutEdges(extract) = %+v", out)
	}
	if got := len(topo.Edges()); got != 2 {
		t.Errorf("Edges count = %d, want 2", got)
	}
	if got := len(topo.Operators()); got != 3 {
		t.Errorf("Operators count = %d, want 3", got)
	}
}

func TestImmutabilityOfReturnedSlices(t *testing.T) {
	topo := buildVLDChain(t)
	ops := topo.Operators()
	ops[0].Name = "mutated"
	if topo.Operator(0).Name == "mutated" {
		t.Error("Operators() must return a copy")
	}
	edges := topo.Edges()
	edges[0].Selectivity = 999
	if topo.Edges()[0].Selectivity == 999 {
		t.Error("Edges() must return a copy")
	}
}

func TestTrafficEquationsSubstitutionProperty(t *testing.T) {
	// Property: for random feed-forward topologies with random back edges
	// of small gain, the solved rates must satisfy the traffic equations
	// lambda_i = ext_i + sum_j lambda_j * S(j->i) by direct substitution.
	f := func(nSeed, edgeSeed, extSeed uint16) bool {
		n := 2 + int(nSeed%6)
		b := NewBuilder()
		for i := 0; i < n; i++ {
			ext := 0.0
			if i == 0 || (extSeed>>uint(i))&1 == 1 {
				ext = 1 + float64((extSeed>>uint(i))%7)
			}
			b.AddOperator(opName(i), 1+float64(i), ext)
		}
		// Forward edges with selectivity up to 2; a weak back edge.
		for i := 0; i+1 < n; i++ {
			sel := 0.25 + float64((edgeSeed>>uint(i))%8)/4
			b.Connect(opName(i), opName(i+1), sel)
		}
		if edgeSeed%3 == 0 && n > 2 {
			b.Connect(opName(n-1), opName(0), 0.2)
		}
		topo, err := b.Build()
		if err != nil {
			// Cycles with gain >= 1 are legitimately rejected.
			return errorsIs(err, ErrInfeasible)
		}
		lam, err := topo.ArrivalRates()
		if err != nil {
			return false
		}
		// Substitute back.
		for i := 0; i < topo.N(); i++ {
			want := topo.Operator(i).ExternalRate
			for _, e := range topo.Edges() {
				if e.To == i {
					want += lam[e.From] * e.Selectivity
				}
			}
			if math.Abs(lam[i]-want) > 1e-6*(1+want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func opName(i int) string { return string(rune('A' + i)) }

func errorsIs(err, target error) bool { return errors.Is(err, target) }
