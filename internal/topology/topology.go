// Package topology describes an application's operator network: operators
// with per-processor service rates, external (outside-the-network) arrival
// streams, and directed edges carrying a selectivity — the average number
// of tuples an operator emits on that edge per input tuple it processes.
//
// The package solves the Jackson-network traffic equations
//
//	λ_i = λ_ext_i + Σ_j λ_j · S(j→i)
//
// by Gaussian elimination, which handles arbitrary digraphs including the
// splits, joins and feedback loops of the paper's Figure 2. A loop is
// admissible as long as its gain is below one (otherwise the traffic
// equations have no finite non-negative solution and Build/ArrivalRates
// report ErrInfeasible).
package topology

import (
	"errors"
	"fmt"
	"math"
)

// ErrInfeasible is returned when the traffic equations have no finite
// non-negative solution — typically a feedback loop with gain ≥ 1.
var ErrInfeasible = errors.New("topology: traffic equations infeasible (loop gain >= 1?)")

// ErrUnknownOperator is returned when an edge or query references an
// operator name that was never added.
var ErrUnknownOperator = errors.New("topology: unknown operator")

// Operator is one node of the operator network.
type Operator struct {
	// Name identifies the operator; unique within a topology.
	Name string
	// ServiceRate µ_i: mean tuples per second one processor completes.
	ServiceRate float64
	// ExternalRate λ_ext_i: mean tuples per second arriving at this
	// operator from outside the network (0 for non-source operators).
	ExternalRate float64
}

// Edge is a directed connection between two operators.
type Edge struct {
	// From and To are operator indices.
	From, To int
	// Selectivity is the mean number of tuples emitted on this edge per
	// input tuple processed at From. Probabilistic splits use values < 1;
	// fan-out amplification (e.g. features per video frame) uses values > 1.
	Selectivity float64
}

// Topology is an immutable operator network. Build one with a Builder.
type Topology struct {
	ops    []Operator
	edges  []Edge
	byName map[string]int
	// out[i] lists indices into edges for edges leaving operator i.
	out [][]int
}

// Builder accumulates operators and edges and validates them into a Topology.
type Builder struct {
	ops   []Operator
	edges []Edge
	index map[string]int
	errs  []error
}

// NewBuilder returns an empty topology builder.
func NewBuilder() *Builder {
	return &Builder{index: make(map[string]int)}
}

// AddOperator registers an operator. serviceRate is µ_i (> 0);
// externalRate is λ_ext_i (≥ 0; 0 for operators fed only by other
// operators). Errors are accumulated and reported by Build.
func (b *Builder) AddOperator(name string, serviceRate, externalRate float64) *Builder {
	if name == "" {
		b.errs = append(b.errs, errors.New("topology: empty operator name"))
		return b
	}
	if _, dup := b.index[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("topology: duplicate operator %q", name))
		return b
	}
	if serviceRate <= 0 || math.IsNaN(serviceRate) || math.IsInf(serviceRate, 0) {
		b.errs = append(b.errs, fmt.Errorf("topology: operator %q: service rate %g must be positive and finite", name, serviceRate))
		return b
	}
	if externalRate < 0 || math.IsNaN(externalRate) || math.IsInf(externalRate, 0) {
		b.errs = append(b.errs, fmt.Errorf("topology: operator %q: external rate %g must be finite and >= 0", name, externalRate))
		return b
	}
	b.index[name] = len(b.ops)
	b.ops = append(b.ops, Operator{Name: name, ServiceRate: serviceRate, ExternalRate: externalRate})
	return b
}

// Connect adds an edge from → to with the given selectivity (> 0).
// Self-loops are allowed (the paper's FPD detector notifies itself).
func (b *Builder) Connect(from, to string, selectivity float64) *Builder {
	fi, ok := b.index[from]
	if !ok {
		b.errs = append(b.errs, fmt.Errorf("topology: edge %s->%s: %w %q", from, to, ErrUnknownOperator, from))
		return b
	}
	ti, ok := b.index[to]
	if !ok {
		b.errs = append(b.errs, fmt.Errorf("topology: edge %s->%s: %w %q", from, to, ErrUnknownOperator, to))
		return b
	}
	if selectivity <= 0 || math.IsNaN(selectivity) || math.IsInf(selectivity, 0) {
		b.errs = append(b.errs, fmt.Errorf("topology: edge %s->%s: selectivity %g must be positive and finite", from, to, selectivity))
		return b
	}
	b.edges = append(b.edges, Edge{From: fi, To: ti, Selectivity: selectivity})
	return b
}

// Build validates the accumulated network and returns it. The traffic
// equations are solved once here, so an infeasible loop fails fast.
func (b *Builder) Build() (*Topology, error) {
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	if len(b.ops) == 0 {
		return nil, errors.New("topology: no operators")
	}
	totalExt := 0.0
	for _, op := range b.ops {
		totalExt += op.ExternalRate
	}
	if totalExt <= 0 {
		return nil, errors.New("topology: no external arrivals (lambda0 = 0)")
	}
	t := &Topology{
		ops:    append([]Operator(nil), b.ops...),
		edges:  append([]Edge(nil), b.edges...),
		byName: make(map[string]int, len(b.index)),
		out:    make([][]int, len(b.ops)),
	}
	for name, i := range b.index {
		t.byName[name] = i
	}
	for ei, e := range t.edges {
		t.out[e.From] = append(t.out[e.From], ei)
	}
	if _, err := t.ArrivalRates(); err != nil {
		return nil, err
	}
	return t, nil
}

// N reports the number of operators.
func (t *Topology) N() int { return len(t.ops) }

// Operator returns the i-th operator.
func (t *Topology) Operator(i int) Operator { return t.ops[i] }

// Operators returns a copy of all operators in index order.
func (t *Topology) Operators() []Operator {
	return append([]Operator(nil), t.ops...)
}

// Edges returns a copy of all edges.
func (t *Topology) Edges() []Edge {
	return append([]Edge(nil), t.edges...)
}

// OutEdges returns the edges leaving operator i.
func (t *Topology) OutEdges(i int) []Edge {
	out := make([]Edge, 0, len(t.out[i]))
	for _, ei := range t.out[i] {
		out = append(out, t.edges[ei])
	}
	return out
}

// Index returns the index of the named operator.
func (t *Topology) Index(name string) (int, error) {
	i, ok := t.byName[name]
	if !ok {
		return 0, fmt.Errorf("%w %q", ErrUnknownOperator, name)
	}
	return i, nil
}

// ExternalRate reports λ0, the total rate of tuples entering the network
// from outside.
func (t *Topology) ExternalRate() float64 {
	total := 0.0
	for _, op := range t.ops {
		total += op.ExternalRate
	}
	return total
}

// ArrivalRates solves the traffic equations and returns λ_i for every
// operator, in index order. The solution accounts for splits, joins and
// loops; it returns ErrInfeasible when no finite non-negative solution
// exists.
func (t *Topology) ArrivalRates() ([]float64, error) {
	n := len(t.ops)
	// Assemble A = I - Sᵀ and rhs = λ_ext, then solve A·λ = rhs.
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n+1)
		a[i][i] = 1
		a[i][n] = t.ops[i].ExternalRate
	}
	for _, e := range t.edges {
		a[e.To][e.From] -= e.Selectivity
	}
	lam, err := solveGauss(a)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
	}
	for i, l := range lam {
		if math.IsNaN(l) || math.IsInf(l, 0) || l < -1e-9 {
			return nil, fmt.Errorf("%w: operator %q solves to rate %g", ErrInfeasible, t.ops[i].Name, l)
		}
		if l < 0 {
			lam[i] = 0
		}
	}
	return lam, nil
}

// solveGauss solves the augmented system in place using Gaussian
// elimination with partial pivoting. a is n rows of n+1 columns.
func solveGauss(a [][]float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot: largest magnitude in this column at or below the diagonal.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return nil, fmt.Errorf("singular system at column %d", col)
		}
		a[col], a[piv] = a[piv], a[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := a[i][n]
		for j := i + 1; j < n; j++ {
			sum -= a[i][j] * x[j]
		}
		x[i] = sum / a[i][i]
	}
	return x, nil
}
