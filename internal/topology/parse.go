package topology

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// File is the on-disk JSON description of a topology — the format drsctl
// reads:
//
//	{
//	  "operators": [
//	    {"name": "extract", "service_rate": 2.22, "external_rate": 13}
//	  ],
//	  "edges": [
//	    {"from": "extract", "to": "match", "selectivity": 1.0}
//	  ]
//	}
//
// service_rate is µ_i (tuples/sec per processor); external_rate is the
// operator's share of λ0. Loops are allowed (and solved) as long as the
// cycle gain is below one.
type File struct {
	// Operators lists the network's nodes.
	Operators []FileOperator `json:"operators"`
	// Edges lists the directed connections.
	Edges []FileEdge `json:"edges"`
}

// FileOperator is one operator row of a topology file.
type FileOperator struct {
	// Name identifies the operator; unique within the file.
	Name string `json:"name"`
	// ServiceRate is µ_i, tuples per second one processor completes.
	ServiceRate float64 `json:"service_rate"`
	// ExternalRate is the operator's share of λ0 (0 for internal operators).
	ExternalRate float64 `json:"external_rate"`
}

// FileEdge is one edge row of a topology file.
type FileEdge struct {
	// From and To name the connected operators.
	From string `json:"from"`
	To   string `json:"to"`
	// Selectivity is the mean tuples emitted on this edge per input tuple.
	Selectivity float64 `json:"selectivity"`
}

// Parse decodes a topology file and builds the validated network from it
// (solving the traffic equations once, so an infeasible loop fails here).
// Unknown JSON fields are rejected to catch typos. The raw File is
// returned alongside the topology for callers that mirror the description
// into another substrate (drsctl's simulate builds a DES from it).
func Parse(raw []byte) (*Topology, File, error) {
	var tf File
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tf); err != nil {
		return nil, File{}, fmt.Errorf("topology: decoding: %w", err)
	}
	b := NewBuilder()
	for _, op := range tf.Operators {
		b.AddOperator(op.Name, op.ServiceRate, op.ExternalRate)
	}
	for _, e := range tf.Edges {
		b.Connect(e.From, e.To, e.Selectivity)
	}
	topo, err := b.Build()
	if err != nil {
		return nil, File{}, err
	}
	return topo, tf, nil
}

// Load reads and parses a topology file from disk.
func Load(path string) (*Topology, File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, File{}, fmt.Errorf("topology: reading %s: %w", path, err)
	}
	topo, tf, err := Parse(raw)
	if err != nil {
		return nil, File{}, fmt.Errorf("topology: %s: %w", path, err)
	}
	return topo, tf, nil
}
