package topology

import (
	"math"
	"testing"
)

// FuzzParseTopology throws arbitrary bytes at the topology-file parser and
// checks the contract that every caller relies on: no panic, a non-nil
// topology exactly when err == nil, and a successfully built topology
// whose traffic equations solve to finite non-negative rates — the
// validation Build promises. Seed corpus: testdata/fuzz/FuzzParseTopology.
func FuzzParseTopology(f *testing.F) {
	f.Add([]byte(`{"operators":[{"name":"extract","service_rate":2.22,"external_rate":13},
		{"name":"match","service_rate":2.0}],
		"edges":[{"from":"extract","to":"match","selectivity":1.0}]}`))
	f.Add([]byte(`{"operators":[{"name":"det","service_rate":10,"external_rate":3}],
		"edges":[{"from":"det","to":"det","selectivity":0.5}]}`))
	f.Add([]byte(`{"operators":[],"edges":[]}`))
	f.Add([]byte(`{"operators":[{"name":"a","service_rate":1,"external_rate":1}],
		"edges":[{"from":"a","to":"zzz","selectivity":2}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"operators":[{"name":"a","service_rate":1e308,"external_rate":1e308},
		{"name":"a","service_rate":-0,"external_rate":-1}]}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		topo, tf, err := Parse(raw)
		if err != nil {
			if topo != nil {
				t.Fatalf("error %v with non-nil topology", err)
			}
			return
		}
		if topo == nil {
			t.Fatal("nil topology without error")
		}
		if topo.N() != len(tf.Operators) {
			t.Fatalf("topology has %d operators, file has %d", topo.N(), len(tf.Operators))
		}
		rates, err := topo.ArrivalRates()
		if err != nil {
			t.Fatalf("built topology fails its own traffic equations: %v", err)
		}
		for i, l := range rates {
			if math.IsNaN(l) || math.IsInf(l, 0) || l < 0 {
				t.Fatalf("operator %d solves to rate %g", i, l)
			}
		}
		if topo.ExternalRate() <= 0 || math.IsInf(topo.ExternalRate(), 0) {
			t.Fatalf("built topology has external rate %g", topo.ExternalRate())
		}
	})
}
