package experiments

import (
	"fmt"
	"io"

	"github.com/drs-repro/drs/internal/stats"
)

// Fig7Point is one scatter point of Figure 7: the model's estimate against
// the measured value for one allocation.
type Fig7Point struct {
	Alloc           []int
	EstimatedMillis float64
	MeasuredMillis  float64
}

// Fig7Result is Figure 7 for one application.
type Fig7Result struct {
	App    App
	Points []Fig7Point
	// Spearman is the rank correlation between estimates and measurements;
	// 1 means the ordering is perfectly preserved (the paper's "strict
	// monotonicity").
	Spearman float64
	// Pearson quantifies the linear relation (supports the paper's remark
	// that a regression could recover true latency from the estimate).
	Pearson float64
	// MeanRatio is measured/estimated averaged over allocations — ~1 for
	// the computation-intensive VLD, several-fold for the data-intensive FPD.
	MeanRatio float64
}

// RunFigure7 compares the model estimate with the simulator measurement for
// each Fig. 6 allocation.
func RunFigure7(app App, o Options) (Fig7Result, error) {
	o = o.withDefaults()
	p, err := profileFor(app)
	if err != nil {
		return Fig7Result{}, err
	}
	model, err := p.model()
	if err != nil {
		return Fig7Result{}, err
	}
	res := Fig7Result{App: app}
	var ests, meas []float64
	ratioSum := 0.0
	for _, alloc := range p.allocations() {
		est, err := model.ExpectedSojourn(alloc)
		if err != nil {
			return Fig7Result{}, err
		}
		mean, _, err := measureAllocation(p, alloc, o)
		if err != nil {
			return Fig7Result{}, err
		}
		pt := Fig7Point{Alloc: alloc, EstimatedMillis: est * 1e3, MeasuredMillis: mean}
		res.Points = append(res.Points, pt)
		ests = append(ests, pt.EstimatedMillis)
		meas = append(meas, pt.MeasuredMillis)
		ratioSum += pt.MeasuredMillis / pt.EstimatedMillis
	}
	res.MeanRatio = ratioSum / float64(len(res.Points))
	if res.Spearman, err = stats.Spearman(ests, meas); err != nil {
		return Fig7Result{}, err
	}
	if res.Pearson, err = stats.Pearson(ests, meas); err != nil {
		return Fig7Result{}, err
	}
	return res, nil
}

// Print renders the scatter as a table plus the correlation summary.
func (r Fig7Result) Print(w io.Writer) {
	header(w, fmt.Sprintf("Figure 7 (%s): estimated vs measured sojourn time", r.App))
	fmt.Fprintf(w, "%-12s %15s %15s %8s\n", "allocation", "estimated (ms)", "measured (ms)", "ratio")
	for _, pt := range r.Points {
		fmt.Fprintf(w, "%-12s %15s %15s %8.2f\n",
			allocString(pt.Alloc), fmtMillis(pt.EstimatedMillis), fmtMillis(pt.MeasuredMillis),
			pt.MeasuredMillis/pt.EstimatedMillis)
	}
	fmt.Fprintf(w, "Spearman rank correlation: %.3f (1 = ordering preserved)\n", r.Spearman)
	fmt.Fprintf(w, "Pearson correlation:       %.3f\n", r.Pearson)
	fmt.Fprintf(w, "mean measured/estimated:   %.2fx\n", r.MeanRatio)
}
