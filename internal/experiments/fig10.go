package experiments

import (
	"fmt"
	"io"
	"math"

	"github.com/drs-repro/drs/internal/cluster"
	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/sim"
)

// Fig10Experiment identifies the two runs of Figure 10.
type Fig10Experiment string

// ExpA scales out (tight Tmax, small initial pool); ExpB scales in (loose
// Tmax, large initial pool).
const (
	ExpA Fig10Experiment = "ExpA"
	ExpB Fig10Experiment = "ExpB"
)

// Fig10 Tmax settings. The paper uses 500 ms and 1000 ms on its hardware;
// our calibrated VLD runs ~2x slower in absolute terms (EXPERIMENTS.md), so
// the constraints scale accordingly while preserving the relation
//
//	E[T](22 procs) < TmaxA < measured(17 procs)   (ExpA must grow)
//	measured(17 procs) < TmaxB·(1−slack)          (ExpB may shrink)
const (
	TmaxExpA = 1.25
	TmaxExpB = 2.0
)

// Fig10Result is one curve of Figure 10.
type Fig10Result struct {
	Experiment  Fig10Experiment
	Tmax        float64
	Series      []sim.SeriesPoint
	Transitions []Transition
	// InitialMachines/FinalMachines and the K's bracket the run.
	InitialMachines, FinalMachines int
	InitialKmax, FinalKmax         int
	InitialAlloc, FinalAlloc       []int
	// MeetsTargetAfter reports whether the post-transition steady state
	// satisfies Tmax (the ExpA claim) — for ExpB the claim is that the
	// smaller pool still satisfies it.
	MeetsTargetAfter bool
}

// RunFigure10 reproduces the Tmax-driven scaling experiment on VLD:
// re-balancing disabled for the first 13 of 27 minutes, then DRS in
// min-resource mode negotiates machines through the cluster pool.
func RunFigure10(exp Fig10Experiment, o Options) (Fig10Result, error) {
	o = o.withDefaults()
	p, err := profileFor(VLD)
	if err != nil {
		return Fig10Result{}, err
	}
	duration := 27 * 60.0
	enableAt := 13 * 60.0
	if o.Duration != 600 { // scaled-down run (benchmarks)
		duration = o.Duration
		enableAt = duration / 2
	}
	res := Fig10Result{Experiment: exp}
	var machines int
	var initial []int
	switch exp {
	case ExpA:
		res.Tmax = TmaxExpA
		machines = 4 // Kmax 17, (8:8:1)
		initial = []int{8, 8, 1}
	case ExpB:
		res.Tmax = TmaxExpB
		machines = 5 // Kmax 22, (10:11:1)
		initial = []int{10, 11, 1}
	default:
		return Fig10Result{}, fmt.Errorf("experiments: unknown Fig. 10 experiment %q", exp)
	}
	pool, err := cluster.PaperPool(machines)
	if err != nil {
		return Fig10Result{}, err
	}
	res.InitialMachines = machines
	res.InitialKmax = pool.Kmax()
	res.InitialAlloc = initial
	s, transitions, err := runControlled(controlLoopConfig{
		profile: p,
		initial: initial,
		pool:    pool,
		ctrl: core.ControllerConfig{
			Mode: core.ModeMinResource,
			Tmax: res.Tmax,
			// Hysteresis against flapping: near-tie rebalances are
			// suppressed, shrinking requires the tightened target to fit,
			// and scale-in may not push any operator near saturation
			// (where the exponential-service estimate is optimistic).
			MinGain:               0.05,
			ScaleInSlack:          0.35,
			MaxScaleInUtilization: 0.9,
			SlotsPerMachine:       5,
			ReservedSlots:         3,
		},
		enableAt: enableAt,
		duration: duration,
		interval: 10,
		seed:     o.Seed,
	})
	if err != nil {
		return Fig10Result{}, err
	}
	res.Series = s.Series()
	res.Transitions = transitions
	res.FinalMachines = pool.Machines()
	res.FinalKmax = pool.Kmax()
	res.FinalAlloc = s.Allocation()

	// Steady state after the last transition (skip 2 buckets of settling).
	lastAt := enableAt
	if n := len(transitions); n > 0 {
		lastAt = transitions[n-1].AtSeconds
	}
	var tail []float64
	for _, pt := range res.Series {
		if pt.Start >= lastAt+120 && !math.IsNaN(pt.MeanSojourn) {
			tail = append(tail, pt.MeanSojourn)
		}
	}
	if len(tail) > 0 {
		sum := 0.0
		for _, v := range tail {
			sum += v
		}
		res.MeetsTargetAfter = sum/float64(len(tail)) <= res.Tmax
	}
	return res, nil
}

// Print renders the curve and its scaling events.
func (r Fig10Result) Print(w io.Writer) {
	header(w, fmt.Sprintf("Figure 10 (%s): Tmax = %.0f ms, re-balancing enabled from minute 14", r.Experiment, r.Tmax*1e3))
	fmt.Fprintf(w, "initial: %d machines, Kmax=%d, %s\n", r.InitialMachines, r.InitialKmax, allocString(r.InitialAlloc))
	fmt.Fprintf(w, "final:   %d machines, Kmax=%d, %s\n", r.FinalMachines, r.FinalKmax, allocString(r.FinalAlloc))
	fmt.Fprint(w, "minute: ")
	for _, pt := range r.Series {
		if math.IsNaN(pt.MeanSojourn) {
			fmt.Fprint(w, "    - ")
			continue
		}
		fmt.Fprintf(w, "%5.0f ", pt.MeanSojourn*1e3)
	}
	fmt.Fprintln(w, " (ms)")
	for _, tr := range r.Transitions {
		fmt.Fprintf(w, "  t=%4.0fs %-10s -> %s, Kmax=%d (pause %.1fs): %s\n",
			tr.AtSeconds, tr.Action, allocString(tr.Alloc), tr.Kmax, tr.PauseSeconds, tr.Reason)
	}
	fmt.Fprintf(w, "steady state after scaling meets Tmax: %v\n", r.MeetsTargetAfter)
}
