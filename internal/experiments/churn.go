package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"github.com/drs-repro/drs/internal/cluster"
	"github.com/drs-repro/drs/internal/loop"
	"github.com/drs-repro/drs/internal/sim"
)

// The machine-churn experiment: the contention setting made lossy. Two
// supervised tenants share one machine pool through the cluster Scheduler;
// mid-way through the bursty tenant's surge, two machines crash (MTTR-
// style outage from a scripted sim.FailureTrace schedule) and the whole
// stack must ride it out: the scheduler re-arbitrates out of band against
// the surviving capacity — floors, water-fill and the preemption overlay
// all still hold, with "slots-lost" attribution — negotiates one
// replacement machine within the provider cap, and both supervisors re-fit
// their allocations to the shrunken grants (SlotsLost / Preempted events)
// outside the cooldown gate. When the machines recover, the standing
// demands re-claim the capacity and both tenants converge back under Tmax.
//
// Both tenants run the same two-stage chain (µ = 2/s per processor,
// selectivity 1), so the thresholds are exact M/M/k arithmetic:
//
//   - "steady" (priority 0) takes λ0 = 3/s throughout. Under Tmax = 1.3 s
//     it settles at 6 slots, (3:3), E[T] ≈ 1.16 s; its stable minimum —
//     and preemption floor — is 4, (2:2), E[T] ≈ 2.29 s: stable but
//     violating, so a degraded steady keeps bidding for its slots back.
//   - "bursty" (priority 1) takes λ0 = 3/s, stepped ×2 to 6/s during the
//     surge window. At base it also settles at 6; at peak it needs 10,
//     (5:5), E[T] ≈ 1.12 s.
//
// Expected arc: both settle at 6/6 on 3 machines → surge: bursty grows to
// 10, the pool to 4 machines (16 slots) → kill 2 machines: effective cap
// 3 of 5, the scheduler provisions 1 replacement (cold start) for 12
// slots, grants re-arbitrate to (4, 8) — bursty loses 2 to the crash
// ("slots-lost"), steady is preempted to its floor — and both supervisors
// vacate immediately → recovery: capacity returns, grants re-converge to
// (6, 10), both tenants drop back under Tmax while the surge still runs →
// surge ends: bursty scales in, the pool follows. Throughout: no slot
// double-leased, no placement overcommit, and no tuple lost forever.
const (
	churnTmax       = 1.3 // both tenants' Tmax, seconds
	churnSlack      = 0.1 // scale-in slack
	churnMu         = 2.0 // per-processor service rate, both stages
	churnBaseRate   = 3.0 // both tenants' λ0 outside the surge
	churnStepFactor = 2.0 // bursty's rate multiplier inside the surge
	churnSlots      = 4   // slots per machine
	churnMachines   = 5   // provider cap: the 20-slot pool
	churnInitial    = 6   // both tenants' registration grant, (3:3)
	churnFloor      = 4   // both tenants' preemption floor (stable minimum)
	churnKillCount  = 2   // machines crashed mid-surge
)

// ChurnGrantPoint samples the arbitration state once per control round.
type ChurnGrantPoint struct {
	// AtSeconds is the simulated time of the sample.
	AtSeconds float64
	// Steady and Bursty are the tenants' slot grants.
	Steady, Bursty int
	// Capacity is the live slot count; Machines the live machine count.
	Capacity, Machines int
}

// ChurnResult carries the full arc of the failure run.
type ChurnResult struct {
	// Tmax is the (shared) latency target.
	Tmax float64
	// StepFrom and StepUntil bound the bursty tenant's surge window.
	StepFrom, StepUntil float64
	// KillAt and RecoverAt bound the two-machine outage.
	KillAt, RecoverAt float64
	// KilledMachines lists the crashed machines' pool IDs.
	KilledMachines []int
	// SeriesSteady and SeriesBursty are the per-minute sojourn curves.
	SeriesSteady, SeriesBursty []sim.SeriesPoint
	// TransitionsSteady and TransitionsBursty are each supervisor's
	// applied decisions, failover and preemption shrinks included.
	TransitionsSteady, TransitionsBursty []Transition
	// Grants samples the arbitration once per control round.
	Grants []ChurnGrantPoint
	// SchedulerHistory is the cluster-wide decision log.
	SchedulerHistory []cluster.SchedulerEvent
	// MaxLeaseOverCapacity is the worst observed Leased − Capacity over
	// every sample; it must never exceed zero (no slot double-leased).
	MaxLeaseOverCapacity int
	// PlacementViolations counts samples whose slot → machine mapping was
	// inconsistent (overcommitted machine, or placed ≠ leased totals).
	PlacementViolations int
	// ReplacementNegotiated reports whether the scheduler provisioned a
	// fresh machine during the outage (the within-cap replacement).
	ReplacementNegotiated bool
	// FailoverShrinks and PreemptShrinks count the supervisors' forced
	// re-fits by cause; SlotsLostSteady/Bursty are the scheduler-side
	// cumulative per-tenant failure losses.
	FailoverShrinks, PreemptShrinks  int
	SlotsLostSteady, SlotsLostBursty int
	// ConvergedAtSeconds is the start of the first post-kill minute from
	// which both tenants stay under Tmax through the rest of the surge
	// window; RecoverySeconds counts from machine recovery to there.
	ConvergedAtSeconds, RecoverySeconds float64
	// DroppedTuples and PendingAtEnd audit the zero-loss claim: queue
	// drops across both tenants, and processing trees still unresolved at
	// the end of the run (bounded by in-flight work; a leak would grow it).
	DroppedTuples, PendingAtEnd int64
	// FinalState is the arbitration state at the end of the run.
	FinalState cluster.SchedulerState
}

// RunChurn runs the machine-failure experiment: 27 simulated minutes,
// controllers enabled from minute 3, the bursty tenant surging ×2 between
// minutes 9 and 18, and a 2-machine, 2-minute outage starting at minute 11.
func RunChurn(o Options) (ChurnResult, error) {
	o = o.withDefaults()
	duration := 27 * 60.0
	enableAt := 3 * 60.0
	stepFrom, stepUntil := 9*60.0, 18*60.0
	killAt, killDown := 11*60.0, 2*60.0
	if o.Duration != 600 { // scaled-down run (benchmarks, quick tests)
		f := o.Duration / duration
		duration = o.Duration
		enableAt, stepFrom, stepUntil = enableAt*f, stepFrom*f, stepUntil*f
		killAt, killDown = killAt*f, killDown*f
	}
	res := ChurnResult{Tmax: churnTmax, StepFrom: stepFrom, StepUntil: stepUntil,
		KillAt: killAt, RecoverAt: killAt + killDown}

	pool, err := cluster.NewPool(cluster.PoolConfig{
		SlotsPerMachine: churnSlots,
		MaxMachines:     churnMachines,
		Costs: cluster.CostModel{
			Rebalance:        3 * time.Second,
			MachineColdStart: 4777 * time.Millisecond,
			MachineRelease:   1113 * time.Millisecond,
		},
	}, 1)
	if err != nil {
		return res, err
	}
	clock := &simClock{}
	sched, err := cluster.NewScheduler(cluster.SchedulerConfig{Pool: pool, Clock: clock})
	if err != nil {
		return res, err
	}
	steadyLease, err := sched.Register(cluster.TenantConfig{
		Name: "steady", Priority: 0, MinSlots: churnFloor, InitialSlots: churnInitial,
	})
	if err != nil {
		return res, err
	}
	burstyLease, err := sched.Register(cluster.TenantConfig{
		Name: "bursty", Priority: 1, MinSlots: churnFloor, InitialSlots: churnInitial,
	})
	if err != nil {
		return res, err
	}

	failures := &loopFailures{}
	interval := 10.0
	steady, err := newChurnTenant(churnBaseRate, []int{3, 3}, steadyLease,
		clock, failures, interval, o.Seed, nil)
	if err != nil {
		return res, err
	}
	bursty, err := newChurnTenant(churnBaseRate, []int{3, 3}, burstyLease,
		clock, failures, interval, o.Seed+1,
		&sim.SteppedRate{Factor: churnStepFactor, From: stepFrom, Until: stepUntil})
	if err != nil {
		return res, err
	}

	// The outage schedule. The machine IDs are resolved at fire time —
	// the *set* of live machines varies as the demand-driven negotiation
	// grows and shrinks the pool (IDs are never reused, but old ones
	// retire and new ones appear) — so the script's Machine fields are
	// placeholders: each kill takes the newest live machine, and each
	// recovery returns exactly one of the machines killed.
	churnEvents := sim.Script(
		sim.Kill{Machine: 0, At: killAt, Down: killDown},
		sim.Kill{Machine: 1, At: killAt, Down: killDown},
	)
	nextChurn := 0
	var killed []int
	applyChurn := func(now float64) error {
		for nextChurn < len(churnEvents) && churnEvents[nextChurn].At <= now+1e-9 {
			ev := churnEvents[nextChurn]
			nextChurn++
			if ev.Fail {
				live := pool.LiveMachines()
				if len(live) == 0 {
					return fmt.Errorf("churn: no live machine left to kill at t=%.0fs", now)
				}
				victim := live[len(live)-1].ID
				if err := sched.FailMachine(victim); err != nil {
					return fmt.Errorf("churn: killing machine %d: %w", victim, err)
				}
				killed = append(killed, victim)
			} else if len(killed) > 0 {
				id := killed[0]
				killed = killed[1:]
				if err := sched.RecoverMachine(id); err != nil {
					return fmt.Errorf("churn: recovering machine %d: %w", id, err)
				}
			}
		}
		return nil
	}

	for t := interval; t <= duration+1e-9; t += interval {
		steady.s.RunUntil(t)
		bursty.s.RunUntil(t)
		clock.set(t)
		if err := applyChurn(t); err != nil {
			return res, err
		}
		if t < enableAt {
			steady.sup.Observe()
			bursty.sup.Observe()
		} else {
			steady.sup.Tick()
			bursty.sup.Tick()
		}
		st := sched.State()
		res.Grants = append(res.Grants, ChurnGrantPoint{
			AtSeconds: t,
			Steady:    steadyLease.Kmax(),
			Bursty:    burstyLease.Kmax(),
			Capacity:  st.Capacity,
			Machines:  st.Machines,
		})
		if over := st.Leased - st.Capacity; over > res.MaxLeaseOverCapacity {
			res.MaxLeaseOverCapacity = over
		}
		placed := 0
		badPlacement := false
		for _, row := range st.Placement {
			if row.Reserved+row.Leased > row.Slots {
				badPlacement = true
			}
			placed += row.Leased
		}
		if placed != st.Leased || badPlacement {
			res.PlacementViolations++
		}
	}
	if err := failures.err(); err != nil {
		return res, fmt.Errorf("experiments: churn run: %w", err)
	}
	res.SeriesSteady = steady.s.Series()
	res.SeriesBursty = bursty.s.Series()
	res.TransitionsSteady = transitionsFrom(steady.sup)
	res.TransitionsBursty = transitionsFrom(bursty.sup)
	res.SchedulerHistory = sched.History()
	res.FinalState = sched.State()
	res.SlotsLostSteady = steadyLease.LostSlots()
	res.SlotsLostBursty = burstyLease.LostSlots()
	for _, ev := range res.SchedulerHistory {
		at := ev.At.Sub(simEpoch).Seconds()
		if ev.Kind == "pool" && ev.Detail == "scale-out" && at >= killAt && at < res.RecoverAt {
			res.ReplacementNegotiated = true
		}
		if ev.Kind == "machine-fail" {
			res.KilledMachines = append(res.KilledMachines, machineOf(ev.Detail))
		}
	}
	for _, trs := range [][]Transition{res.TransitionsSteady, res.TransitionsBursty} {
		for _, tr := range trs {
			switch {
			case tr.SlotsLost:
				res.FailoverShrinks++
			case tr.Preempted:
				res.PreemptShrinks++
			}
		}
	}
	for _, d := range steady.s.Dropped() {
		res.DroppedTuples += d
	}
	for _, d := range bursty.s.Dropped() {
		res.DroppedTuples += d
	}
	res.PendingAtEnd = steady.s.PendingRoots() + bursty.s.PendingRoots()
	res.ConvergedAtSeconds, res.RecoverySeconds = churnConvergence(res)
	return res, nil
}

// machineOf extracts the machine ID from a lifecycle event's detail line
// ("machine N"); 0 when the detail has another shape.
func machineOf(detail string) int {
	var id int
	if _, err := fmt.Sscanf(detail, "machine %d", &id); err != nil {
		return 0
	}
	return id
}

// churnConvergence finds, within the surge window, the first post-kill
// minute from which both tenants stay at or under Tmax for the rest of the
// window. A minute with no completions counts as violating — a stalled
// tenant is not a converged one.
func churnConvergence(res ChurnResult) (convergedAt, recovery float64) {
	bad := func(series []sim.SeriesPoint) float64 {
		last := -1.0
		for _, pt := range series {
			if pt.Start < res.KillAt || pt.Start >= res.StepUntil {
				continue
			}
			if math.IsNaN(pt.MeanSojourn) || pt.MeanSojourn > res.Tmax {
				last = pt.Start
			}
		}
		return last
	}
	lastBad := math.Max(bad(res.SeriesSteady), bad(res.SeriesBursty))
	if lastBad < 0 {
		return res.KillAt, 0 // never violated after the kill
	}
	convergedAt = lastBad + 60
	if convergedAt >= res.StepUntil {
		return 0, 0 // never re-converged inside the surge window
	}
	// Convergence can land during the outage itself (a gentle kill the
	// floors absorb); recovery time never reads negative.
	if recovery = convergedAt - res.RecoverAt; recovery < 0 {
		recovery = 0
	}
	return convergedAt, recovery
}

// newChurnTenant starts one supervised tenant against its lease — the
// contention tenant with the churn experiment's chain parameters.
func newChurnTenant(lambda0 float64, initial []int, lease *cluster.Tenant,
	clock loop.Clock, failures *loopFailures, interval float64, seed uint64,
	step *sim.SteppedRate) (*contentionTenant, error) {
	return newTwoStageTenant(twoStageParams{
		mu: churnMu, tmax: churnTmax, slack: churnSlack,
		// 0.6 keeps a noisy snapshot from shrinking past the designed
		// steady-state sizes: the next-smaller allocation of either tenant
		// runs a stage at ρ > 0.6.
		maxScaleInUtil: 0.6,
	}, lambda0, initial, lease, clock, failures, interval, seed, step)
}

// Print renders the arc: the outage timeline, the grant and capacity
// series, both sojourn curves, each supervisor's transitions and the
// scheduler's decision history.
func (r ChurnResult) Print(w io.Writer) {
	header(w, fmt.Sprintf("Churn: 2-machine kill at t=%.0fs (recover t=%.0fs) through a x%.1f surge during [%.0fs, %.0fs); Tmax = %.0f ms",
		r.KillAt, r.RecoverAt, churnStepFactor, r.StepFrom, r.StepUntil, r.Tmax*1e3))
	fmt.Fprint(w, "grants (steady/bursty of capacity), one column per minute:\n  ")
	for i, g := range r.Grants {
		if i%6 != 5 { // 10 s rounds -> print once per minute
			continue
		}
		fmt.Fprintf(w, "%d/%d:%d ", g.Steady, g.Bursty, g.Capacity)
	}
	fmt.Fprintln(w)
	printCurve := func(name string, series []sim.SeriesPoint) {
		fmt.Fprintf(w, "%s E[T] by minute (ms): ", name)
		for _, pt := range series {
			if math.IsNaN(pt.MeanSojourn) {
				fmt.Fprint(w, "    - ")
				continue
			}
			fmt.Fprintf(w, "%5.0f ", pt.MeanSojourn*1e3)
		}
		fmt.Fprintln(w)
	}
	printCurve("steady", r.SeriesSteady)
	printCurve("bursty", r.SeriesBursty)
	printTransitions := func(name string, trs []Transition) {
		for _, tr := range trs {
			mark := ""
			switch {
			case tr.SlotsLost:
				mark = " [slots-lost]"
			case tr.Preempted:
				mark = " [preempted]"
			}
			fmt.Fprintf(w, "  %-6s t=%5.0fs %-10s -> %s, Kmax=%d (pause %.1fs)%s: %s\n",
				name, tr.AtSeconds, tr.Action, allocString(tr.Alloc), tr.Kmax, tr.PauseSeconds, mark, tr.Reason)
		}
	}
	printTransitions("steady", r.TransitionsSteady)
	printTransitions("bursty", r.TransitionsBursty)
	fmt.Fprintln(w, "scheduler history:")
	for _, ev := range r.SchedulerHistory {
		fmt.Fprintf(w, "  t=%5.0fs %s\n", ev.At.Sub(simEpoch).Seconds(), ev)
	}
	fmt.Fprintf(w, "killed machines %v; replacement negotiated within cap: %v\n",
		r.KilledMachines, r.ReplacementNegotiated)
	fmt.Fprintf(w, "slots lost to failures: steady=%d bursty=%d; failover shrinks: %d; preempt shrinks: %d\n",
		r.SlotsLostSteady, r.SlotsLostBursty, r.FailoverShrinks, r.PreemptShrinks)
	fmt.Fprintf(w, "re-converged under Tmax at t=%.0fs (%.0fs after recovery)\n",
		r.ConvergedAtSeconds, r.RecoverySeconds)
	fmt.Fprintf(w, "double-leased slots: %d; placement violations: %d; dropped tuples: %d; pending at end: %d\n",
		r.MaxLeaseOverCapacity, r.PlacementViolations, r.DroppedTuples, r.PendingAtEnd)
}
