package experiments

import (
	"errors"
	"fmt"

	"github.com/drs-repro/drs/internal/cluster"
	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/metrics"
	"github.com/drs-repro/drs/internal/sim"
)

// Transition records one applied controller decision during a run.
type Transition struct {
	// AtSeconds is the simulated time of the action.
	AtSeconds float64
	// Action is the controller's verdict.
	Action core.Action
	// Alloc is the allocation put in force.
	Alloc []int
	// Kmax is the pool size after the action.
	Kmax int
	// PauseSeconds is the modeled service disruption.
	PauseSeconds float64
	// Reason is the controller's justification.
	Reason string
}

// controlLoopConfig assembles one controller-in-the-loop simulation.
type controlLoopConfig struct {
	profile  appProfile
	initial  []int
	pool     *cluster.Pool
	ctrl     core.ControllerConfig
	enableAt float64 // seconds; controller acts only from here on
	duration float64 // seconds
	interval float64 // measurement pull period Tm
	seed     uint64
	// stepper overrides the DRS controller (baseline comparisons); when
	// nil, core.NewController(ctrl) decides.
	stepper core.Stepper
}

// runControlled simulates the application with DRS attached: every
// interval the simulator's measurements flow through the production
// measurer, and (once enabled) the controller's decisions are applied with
// their cluster-modeled pauses — the Figures 9 and 10 machinery.
func runControlled(c controlLoopConfig) (*sim.Sim, []Transition, error) {
	cfg, err := c.profile.simConfig(c.initial, c.seed)
	if err != nil {
		return nil, nil, err
	}
	s, err := sim.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	s.EnableSeries(60) // per-minute curves, as plotted in the paper
	meas, err := metrics.NewMeasurer(metrics.MeasurerConfig{
		OperatorNames: c.profile.names,
		Smoothing:     metrics.SmoothingSpec{Kind: "window", Window: 6},
	})
	if err != nil {
		return nil, nil, err
	}
	var ctrl core.Stepper = c.stepper
	if ctrl == nil {
		drsCtrl, err := core.NewController(c.ctrl)
		if err != nil {
			return nil, nil, err
		}
		ctrl = drsCtrl
	}
	var transitions []Transition
	cooldownUntil := 0.0
	for t := c.interval; t <= c.duration+1e-9; t += c.interval {
		s.RunUntil(t)
		if err := meas.AddInterval(s.DrainInterval()); err != nil {
			return nil, nil, err
		}
		if t < c.enableAt || t < cooldownUntil {
			continue
		}
		snap, err := meas.Snapshot()
		if err != nil {
			if errors.Is(err, metrics.ErrNotReady) {
				continue
			}
			// Idle operators can lack service samples early on.
			continue
		}
		snap.Alloc = s.Allocation()
		snap.Kmax = c.pool.Kmax()
		d, err := ctrl.Step(snap)
		if err != nil {
			if errors.Is(err, core.ErrUnreachableTarget) {
				// Measured rates say Tmax is below the service-time floor;
				// no allocation helps, so hold and re-measure next round.
				continue
			}
			return nil, nil, fmt.Errorf("experiments: controller step at t=%.0fs: %w", t, err)
		}
		if d.Action == core.ActionNone {
			continue
		}
		var tr cluster.Transition
		switch d.Action {
		case core.ActionRebalance:
			tr = c.pool.Rebalance()
		case core.ActionScaleOut, core.ActionScaleIn:
			tr, err = c.pool.Resize(d.TargetKmax)
			if err != nil {
				if errors.Is(err, cluster.ErrNoCapacity) {
					continue // provider cap reached; keep running as-is
				}
				return nil, nil, err
			}
		}
		if err := s.SetAllocation(d.Target, tr.Pause.Seconds()); err != nil {
			return nil, nil, err
		}
		transitions = append(transitions, Transition{
			AtSeconds:    t,
			Action:       d.Action,
			Alloc:        append([]int(nil), d.Target...),
			Kmax:         c.pool.Kmax(),
			PauseSeconds: tr.Pause.Seconds(),
			Reason:       d.Reason,
		})
		// Old measurements do not describe the new configuration; start
		// clean and hold off while the transition backlog drains.
		meas.Reset()
		cooldownUntil = t + 4*c.interval
	}
	return s, transitions, nil
}
