package experiments

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"github.com/drs-repro/drs/internal/cluster"
	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/loop"
	"github.com/drs-repro/drs/internal/metrics"
	"github.com/drs-repro/drs/internal/sim"
)

// Transition records one applied controller decision during a run.
type Transition struct {
	// AtSeconds is the simulated time of the action.
	AtSeconds float64
	// Action is the controller's verdict.
	Action core.Action
	// Alloc is the allocation put in force.
	Alloc []int
	// Kmax is the pool size after the action.
	Kmax int
	// PauseSeconds is the modeled service disruption.
	PauseSeconds float64
	// Preempted marks a forced shrink: the cluster arbiter moved this
	// tenant's slots to another topology (multi-tenant runs only).
	Preempted bool
	// SlotsLost marks a failover shrink: machine failure took the slots
	// and the supervisor re-fit to the surviving grant (churn runs only).
	SlotsLost bool
	// Reason is the controller's justification.
	Reason string
}

// transitionsFrom extracts the applied decisions of a supervised run.
func transitionsFrom(sup *loop.Supervisor) []Transition {
	var transitions []Transition
	for _, ev := range sup.History() {
		if !ev.Applied {
			continue
		}
		transitions = append(transitions, Transition{
			AtSeconds:    ev.At.Sub(simEpoch).Seconds(),
			Action:       ev.Action,
			Alloc:        append([]int(nil), ev.Target...),
			Kmax:         ev.Kmax,
			PauseSeconds: ev.Pause.Seconds(),
			Preempted:    ev.Preempted,
			SlotsLost:    ev.SlotsLost,
			Reason:       ev.Reason,
		})
	}
	return transitions
}

// controlLoopConfig assembles one controller-in-the-loop simulation.
type controlLoopConfig struct {
	profile  appProfile
	initial  []int
	pool     *cluster.Pool
	ctrl     core.ControllerConfig
	enableAt float64 // seconds; controller acts only from here on
	duration float64 // seconds
	interval float64 // measurement pull period Tm
	seed     uint64
	// stepper overrides the DRS controller (baseline comparisons); when
	// nil, core.NewController(ctrl) decides.
	stepper core.Stepper
}

// simEpoch anchors the virtual clock: simulated second t maps to
// simEpoch + t on the supervisor's Clock.
var simEpoch = time.Unix(0, 0).UTC()

// simClock adapts simulated seconds to the supervisor's Clock.
type simClock struct {
	mu  sync.Mutex
	sec float64
}

func (c *simClock) set(sec float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sec = sec
}

func (c *simClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return simEpoch.Add(secondsToDuration(c.sec))
}

// simTarget adapts the discrete-event simulator to the supervisor's Target:
// the same loop that drives the goroutine engine live drives the simulator
// in virtual time, with the cluster-modeled pause injected on rebalance.
type simTarget struct {
	s     *sim.Sim
	names []string
}

func (t simTarget) DrainInterval() metrics.IntervalReport { return t.s.DrainInterval() }

func (t simTarget) Allocation() map[string]int {
	k := t.s.Allocation()
	out := make(map[string]int, len(t.names))
	for i, name := range t.names {
		out[name] = k[i]
	}
	return out
}

func (t simTarget) Rebalance(alloc map[string]int, pause time.Duration) error {
	k := make([]int, len(t.names))
	for i, name := range t.names {
		k[i] = alloc[name]
	}
	return t.s.SetAllocation(k, pause.Seconds())
}

// loopFailures is a slog.Handler that captures the supervisor's first
// warning as an error. A live daemon degrades to holding on errors; an
// experiment must fail loudly instead of silently producing wrong figures,
// matching the old inline loop's fatal-error behavior. (Capacity refusals
// never reach Warn: the supervisor treats ErrNoCapacity as a plain hold.)
type loopFailures struct {
	mu    sync.Mutex
	first error
}

func (c *loopFailures) err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.first
}

func (c *loopFailures) Enabled(_ context.Context, l slog.Level) bool { return l >= slog.LevelWarn }
func (c *loopFailures) WithAttrs([]slog.Attr) slog.Handler           { return c }
func (c *loopFailures) WithGroup(string) slog.Handler                { return c }

func (c *loopFailures) Handle(_ context.Context, r slog.Record) error {
	var cause error
	r.Attrs(func(a slog.Attr) bool {
		if a.Key == "err" {
			if e, ok := a.Value.Any().(error); ok {
				cause = e
			}
			return false
		}
		return true
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.first == nil {
		if cause != nil {
			c.first = fmt.Errorf("%s: %w", r.Message, cause)
		} else {
			c.first = errors.New(r.Message)
		}
	}
	return nil
}

// runControlled simulates the application with DRS attached: the
// production supervisor (internal/loop) owns the simulator as its target,
// polling the measurer every interval and applying decisions with their
// cluster-modeled pauses — the Figures 9 and 10 machinery, on the same
// loop the live engine uses.
func runControlled(c controlLoopConfig) (*sim.Sim, []Transition, error) {
	cfg, err := c.profile.simConfig(c.initial, c.seed)
	if err != nil {
		return nil, nil, err
	}
	s, err := sim.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	s.EnableSeries(60) // per-minute curves, as plotted in the paper
	stepper := c.stepper
	if stepper == nil {
		drsCtrl, err := core.NewController(c.ctrl)
		if err != nil {
			return nil, nil, err
		}
		stepper = drsCtrl
	}
	clock := &simClock{}
	failures := &loopFailures{}
	sup, err := loop.New(loop.Config{
		Target:    simTarget{s: s, names: c.profile.names},
		Operators: c.profile.names,
		Stepper:   stepper,
		Pool:      c.pool,
		Interval:  secondsToDuration(c.interval),
		Cooldown:  secondsToDuration(4 * c.interval),
		Clock:     clock,
		Logger:    slog.New(failures),
	})
	if err != nil {
		return nil, nil, err
	}
	for t := c.interval; t <= c.duration+1e-9; t += c.interval {
		s.RunUntil(t)
		clock.set(t)
		if t < c.enableAt {
			sup.Observe() // measure, but leave the controller disabled
			continue
		}
		sup.Tick()
	}
	if err := failures.err(); err != nil {
		return nil, nil, fmt.Errorf("experiments: supervised run: %w", err)
	}
	return s, transitionsFrom(sup), nil
}
