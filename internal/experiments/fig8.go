package experiments

import (
	"fmt"
	"io"

	"github.com/drs-repro/drs/internal/apps/synth"
	"github.com/drs-repro/drs/internal/sim"
)

// Fig8Point is one x of Figure 8: the ratio of measured to estimated
// sojourn time at a given total bolt CPU time.
type Fig8Point struct {
	TotalCPUMillis  float64
	EstimatedMillis float64
	MeasuredMillis  float64
	Ratio           float64
}

// Fig8Result is the synthetic-chain sweep.
type Fig8Result struct {
	Points []Fig8Point
}

// RunFigure8 sweeps the synthetic 3-bolt chain over the paper's CPU-time
// range and reports the degree of underestimation at each point.
func RunFigure8(o Options) (Fig8Result, error) {
	o = o.withDefaults()
	var res Fig8Result
	for _, cpu := range synth.Workloads() {
		model, err := synth.Model(cpu)
		if err != nil {
			return Fig8Result{}, err
		}
		est, err := model.ExpectedSojourn(synth.Allocation())
		if err != nil {
			return Fig8Result{}, err
		}
		cfg, err := synth.SimConfig(cpu, o.Seed)
		if err != nil {
			return Fig8Result{}, err
		}
		s, err := sim.New(cfg)
		if err != nil {
			return Fig8Result{}, err
		}
		s.SetWarmup(o.Warmup / 6)
		s.RunUntil(o.Duration / 2)
		measured := s.CompletedStats().Mean()
		res.Points = append(res.Points, Fig8Point{
			TotalCPUMillis:  cpu * 1e3,
			EstimatedMillis: est * 1e3,
			MeasuredMillis:  measured * 1e3,
			Ratio:           measured / est,
		})
	}
	return res, nil
}

// Print renders the sweep.
func (r Fig8Result) Print(w io.Writer) {
	header(w, "Figure 8: measured/estimated ratio vs total bolt CPU time (synthetic chain)")
	fmt.Fprintf(w, "%15s %15s %15s %10s\n", "total CPU (ms)", "estimated (ms)", "measured (ms)", "ratio")
	for _, pt := range r.Points {
		fmt.Fprintf(w, "%15.3f %15s %15s %10.1f\n",
			pt.TotalCPUMillis, fmtMillis(pt.EstimatedMillis), fmtMillis(pt.MeasuredMillis), pt.Ratio)
	}
	fmt.Fprintln(w, "The underestimation (ratio) shrinks as computation dominates the network.")
}
