package experiments

import (
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/drs-repro/drs/internal/engine"
	"github.com/drs-repro/drs/internal/ingest"
	"github.com/drs-repro/drs/internal/obs"
	"github.com/drs-repro/drs/internal/scenario"
	"github.com/drs-repro/drs/internal/sim"
	"github.com/drs-repro/drs/internal/worker"
)

// The trace experiment: the per-tuple tracing tentpole's golden arc. It
// replays the chaos scenario's workload — per-tenant recorded arrival
// traces, token-bucket admission so the surges genuinely shed — through
// the REAL data plane three times: once all-local at a production
// sampling rate, once with the stateful stage spread over three live
// worker daemons on loopback TCP at the same rate, and once all-local
// with every root sampled. The audit the test locks:
//
//   - the sampled set is a pure function of the admit sequence: the ids
//     that complete are exactly {seq : hash(seq) wins}, bit-identical
//     between the local and the 3-worker remote run;
//   - every sampled root yields exactly one complete trace, and every
//     trace telescopes exactly — queue + service + shuttle == sojourn,
//     no gaps, no overlaps, remote hops decomposed across the wire;
//   - with every root sampled, the traces' summed sojourn equals the
//     engine's own root-log books to the nanosecond: the trace subsystem
//     measures the same latency the books account.
const (
	// traceSamplePermille is the production-flavored sampling rate of the
	// local and remote variants (250 of 1000 roots).
	traceSamplePermille = 250
	// traceRemoteMachines spreads the count stage over this many workers.
	traceRemoteMachines = 3
	// traceLocalSpans / traceRemoteSpans are the exact per-trace segment
	// span counts on the src -> count -> sink chain: gate + two hops of
	// (queue, service), the remote hop adding one shuttle segment.
	traceLocalSpans  = 5
	traceRemoteSpans = 6
)

// traceEntry is one admitted tuple of the deterministic workload.
type traceEntry struct {
	tenant string
	key    int
}

// traceWorkload derives the deterministic workload from the seeded spec
// exactly like the worker equivalence harness: recorded arrival traces,
// token-bucket admission at 60% of the mean rate, seeded keys. The
// admitted entries ARE the offer sequence, so the gate's admit seq space
// — and with it the sampled set — is identical across variants.
func traceWorkload(spec scenario.Spec, perTenant int) (entries []traceEntry, shed map[string]int64, err error) {
	tl, err := scenario.Compile(spec)
	if err != nil {
		return nil, nil, err
	}
	shed = make(map[string]int64)
	for ti, ts := range spec.Tenants {
		proc, err := tl.Arrivals(ts.Name)
		if err != nil {
			return nil, nil, err
		}
		trace, err := sim.RecordArrivals(proc, perTenant, uint64(spec.Seed)+uint64(ti)*101)
		if err != nil {
			return nil, nil, err
		}
		keys := uint64(spec.Seed)*7919 + uint64(ti)
		rate := trace.MeanRate() * 0.6
		const burst = 20.0
		tokens := burst
		for i := 0; i < perTenant; i++ {
			gap := trace.NextInterArrival(nil)
			tokens += gap * rate
			if tokens > burst {
				tokens = burst
			}
			keys += 0x9e3779b97f4a7c15
			z := keys
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9fe
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			key := int((z ^ (z >> 31)) % 128)
			if tokens >= 1 {
				tokens--
				entries = append(entries, traceEntry{tenant: ts.Name, key: key})
			} else {
				shed[ts.Name]++
			}
		}
	}
	return entries, shed, nil
}

// traceCountBolts builds the stateful count stage both the serve process
// and the worker daemons host: per-task running counts keyed by
// (tenant, key). The factory ignores the seed — the state machine is
// deterministic — but keeps the worker Build signature.
func traceCountBolts(int64) (map[string]engine.BoltFactory, error) {
	return map[string]engine.BoltFactory{"count": newTraceCountBolt}, nil
}

func newTraceCountBolt(int) engine.Bolt {
	counts := make(map[string]int)
	return engine.BoltFunc(func(tu engine.Tuple, emit engine.Emit) error {
		tenant := tu.Values[0].(string)
		key := tu.Values[1].(int)
		ck := fmt.Sprintf("%s/%d", tenant, key)
		counts[ck]++
		emit(engine.Values{tenant, key, counts[ck]})
		return nil
	})
}

// TraceVariant is one run's complete tracing account.
type TraceVariant struct {
	// Mode labels the variant: "local", "remote" or "full".
	Mode string
	// SamplePermille is the variant's sampling rate.
	SamplePermille int
	// Admitted is the number of workload entries pushed through the gate.
	Admitted int64
	// SampledExpected is |{seq <= Admitted : the deterministic hash wins}|
	// — computed from the sampling function alone, before the run.
	SampledExpected int
	// TracesCompleted counts fully reassembled traces.
	TracesCompleted int
	// SampledIDs is the sorted completed trace-id set (the admit seqs).
	SampledIDs []uint64
	// TelescopeViolations counts traces where queue + service + shuttle
	// != sojourn (must be 0: the segments tile the sojourn exactly).
	TelescopeViolations int
	// SpanViolations counts traces whose folded segment-span count is not
	// the chain's exact expectation (5 local, 6 with a remote hop).
	SpanViolations int
	// TenantViolations counts traces attributed to the wrong tenant.
	TenantViolations int
	// RemoteSegments sums per-trace shuttle-crossing segment counts.
	RemoteSegments int
	// SumSojournNS, SumQueueNS, SumServiceNS and SumShuttleNS aggregate
	// the decomposition over every completed trace.
	SumSojournNS, SumQueueNS, SumServiceNS, SumShuttleNS int64
	// BookedSojournNS is the engine root log's summed sojourn for the
	// whole run (all roots, traced or not), read before Stop.
	BookedSojournNS int64
	// SpansDropped is the tracer's ring-overflow count (must be 0).
	SpansDropped uint64
	// Assembly is the assembler's final balance.
	Assembly obs.AssembleStats
}

// TraceResult carries the three-variant arc and its cross-run audit.
type TraceResult struct {
	// Scenario is the (possibly scaled) spec the workload replays.
	Scenario scenario.Spec
	// PerTenant is the offered arrivals per tenant before the bucket.
	PerTenant int
	// Shed counts the token-bucket refusals per tenant (the front-door
	// shed; identical across variants by construction).
	Shed map[string]int64
	// Local and Remote are the sampled runs; Full traces every root.
	Local, Remote, Full TraceVariant
	// SampledSetsIdentical reports the headline determinism property:
	// local and remote completed the exact expected trace-id set.
	SampledSetsIdentical bool
	// TelescopeExact reports zero telescoping violations in any variant.
	TelescopeExact bool
	// OneTracePerRoot reports that every variant completed exactly one
	// trace per sampled root with balanced assembly and zero drops.
	OneTracePerRoot bool
	// BooksReconcile reports the full variant's trace sojourn sum equal,
	// to the nanosecond, to the engine's root-log books.
	BooksReconcile bool
}

// runTraceVariant pushes the workload through src -> count(fields by key)
// -> sink with tracing at permille, optionally spreading the count stage
// over live worker daemons, and returns the full tracing account.
func runTraceVariant(mode string, entries []traceEntry, permille, remoteMachines int, seed int64) (TraceVariant, error) {
	v := TraceVariant{Mode: mode, SamplePermille: permille}
	var (
		mu        sync.Mutex
		completed []obs.Trace
	)
	asm := obs.NewAssembler(obs.AssemblerConfig{
		OnComplete: func(tr obs.Trace) {
			mu.Lock()
			completed = append(completed, tr)
			mu.Unlock()
		},
	})
	tracer := obs.NewTracer(obs.TracerConfig{
		Shards: 4, ShardCapacity: 1 << 16,
		SamplePermille: permille,
		Assembler:      asm,
		FlushEvery:     time.Millisecond,
	})
	gate := ingest.NewGate(ingest.GateConfig{RingCapacity: 1 << 12, Tracer: tracer})
	topo, err := engine.NewTopology().
		Spout("src", 1, func(int) engine.Spout {
			return &engine.NetworkSpout{Source: gate.Ring(), MaxBatch: 64}
		}).
		Bolt("count", 8, newTraceCountBolt).
		Bolt("sink", 2, func(int) engine.Bolt {
			return engine.BoltFunc(func(engine.Tuple, engine.Emit) error { return nil })
		}).
		Fields("src", "count", func(vs engine.Values) uint64 { return uint64(vs[1].(int)) }).
		Shuffle("count", "sink").
		Build()
	if err != nil {
		return v, err
	}
	run, err := topo.Start(engine.RunConfig{
		Alloc:          map[string]int{"count": 6, "sink": 2},
		QuiesceTimeout: 10 * time.Second,
		Tracer:         tracer,
	})
	if err != nil {
		return v, err
	}
	defer run.Stop()

	if remoteMachines > 0 {
		next := 1 // machine 0 is the serve process
		var bindMu sync.Mutex
		co := worker.NewCoordinator(worker.CoordinatorConfig{
			Seed: seed,
			Bind: func(string, int) (int, error) {
				bindMu.Lock()
				defer bindMu.Unlock()
				id := next
				next++
				return id, nil
			},
		})
		defer co.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return v, err
		}
		defer ln.Close()
		go co.Serve(ln)
		placement := make(map[int]int, remoteMachines)
		for i := 0; i < remoteMachines; i++ {
			w, err := worker.Dial(worker.Config{
				Addr:  ln.Addr().String(),
				Name:  fmt.Sprintf("trace-w%d", i+1),
				Build: traceCountBolts,
			})
			if err != nil {
				return v, err
			}
			go w.Run()
			defer w.Close()
			placement[w.Machine()] = 2
		}
		if err := co.WaitWorkers(remoteMachines, 5*time.Second); err != nil {
			return v, err
		}
		plan := worker.ApplyPlacement(run, run.Allocation(), placement, 0, co.Remote)
		if plan.Errors != 0 {
			return v, fmt.Errorf("experiments: trace placement errors: %+v", plan)
		}
		if got, _ := run.RemoteBound("count"); got != 6 {
			return v, fmt.Errorf("experiments: count RemoteBound = %d, want 6", got)
		}
	}

	// Offer the workload in order: the only possible refusal is ring
	// backpressure, so the admit seq of entries[i] is exactly i+1 — the
	// sampled set is decided before the run ever starts.
	clients := make(map[string]*ingest.Client)
	for _, e := range entries {
		c := clients[e.tenant]
		if c == nil {
			c = gate.Client(e.tenant, 1, 0, 0)
			clients[e.tenant] = c
		}
		for {
			verdict := c.Offer(engine.Values{e.tenant, e.key})
			if verdict.Admitted {
				break
			}
			if verdict.Reason != ingest.ShedBacklog {
				return v, fmt.Errorf("experiments: trace offer shed for %v, want backlog-only", verdict.Reason)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	v.Admitted = int64(len(entries))

	want := int64(len(entries))
	deadline := time.Now().Add(30 * time.Second)
	for {
		count, _ := run.Completions()
		if count >= want {
			break
		}
		if time.Now().After(deadline) {
			return v, fmt.Errorf("experiments: trace %s completions %d/%d — tuples lost", mode, count, want)
		}
		time.Sleep(time.Millisecond)
	}
	_, _, v.BookedSojournNS = run.RootTotals()
	gate.Close()
	if err := run.Stop(); err != nil {
		return v, err
	}
	if err := tracer.Close(); err != nil {
		return v, err
	}
	v.SpansDropped = tracer.Stats().Dropped
	v.Assembly = asm.Stats()

	// The expected sampled set is computed from the sampling function
	// alone — a fresh tracer at the same knob must agree seq by seq.
	ref := obs.NewTracer(obs.TracerConfig{SamplePermille: permille})
	defer ref.Close()
	for seq := uint64(1); seq <= uint64(len(entries)); seq++ {
		if ref.SampleTrace(seq) {
			v.SampledExpected++
		}
	}

	mu.Lock()
	defer mu.Unlock()
	v.TracesCompleted = len(completed)
	wantSpans := traceLocalSpans
	if remoteMachines > 0 {
		wantSpans = traceRemoteSpans
	}
	for _, tr := range completed {
		v.SampledIDs = append(v.SampledIDs, tr.ID)
		if tr.QueueNS+tr.ServiceNS+tr.ShuttleNS != tr.SojournNS {
			v.TelescopeViolations++
		}
		if tr.Spans != wantSpans {
			v.SpanViolations++
		}
		if tr.ID >= 1 && tr.ID <= uint64(len(entries)) && tr.Tenant != entries[tr.ID-1].tenant {
			v.TenantViolations++
		}
		v.RemoteSegments += tr.Remote
		v.SumSojournNS += tr.SojournNS
		v.SumQueueNS += tr.QueueNS
		v.SumServiceNS += tr.ServiceNS
		v.SumShuttleNS += tr.ShuttleNS
	}
	sort.Slice(v.SampledIDs, func(i, j int) bool { return v.SampledIDs[i] < v.SampledIDs[j] })
	return v, nil
}

// sampledIDsEqual reports two sorted trace-id sets identical.
func sampledIDsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// variantBalanced reports the one-trace-per-sampled-root contract for one
// variant: completions match the precomputed expected set size, assembly
// started == completed with nothing pending or lost, and no span was
// dropped on the way in.
func variantBalanced(v TraceVariant) bool {
	return v.TracesCompleted == v.SampledExpected &&
		v.Assembly.Started == uint64(v.SampledExpected) &&
		v.Assembly.Completed == uint64(v.SampledExpected) &&
		v.Assembly.Pending == 0 && v.Assembly.Lost == 0 &&
		v.SpansDropped == 0 &&
		v.TenantViolations == 0
}

// RunTrace replays the canonical chaos scenario's workload with tracing
// on: the arc the trace golden test locks.
func RunTrace(o Options) (TraceResult, error) {
	return RunTraceSpec(scenario.Chaos(), o)
}

// RunTraceSpec runs the trace reconciliation arc over an arbitrary
// scenario spec. A non-default Options.Duration scales both the spec and
// the per-tenant workload size.
func RunTraceSpec(spec scenario.Spec, o Options) (TraceResult, error) {
	o = o.withDefaults()
	if o.Duration != 600 { // scaled-down run (benchmarks, quick tests)
		spec = spec.Scaled(o.Duration / spec.DurationSeconds)
	}
	perTenant := int(o.Duration)
	if perTenant < 200 {
		perTenant = 200
	}
	res := TraceResult{Scenario: spec, PerTenant: perTenant}
	entries, shed, err := traceWorkload(spec, perTenant)
	if err != nil {
		return res, err
	}
	res.Shed = shed
	if res.Local, err = runTraceVariant("local", entries, traceSamplePermille, 0, int64(spec.Seed)); err != nil {
		return res, err
	}
	if res.Remote, err = runTraceVariant("remote", entries, traceSamplePermille, traceRemoteMachines, int64(spec.Seed)); err != nil {
		return res, err
	}
	if res.Full, err = runTraceVariant("full", entries, 1000, 0, int64(spec.Seed)); err != nil {
		return res, err
	}
	res.SampledSetsIdentical = sampledIDsEqual(res.Local.SampledIDs, res.Remote.SampledIDs) &&
		len(res.Local.SampledIDs) == res.Local.SampledExpected
	res.TelescopeExact = res.Local.TelescopeViolations == 0 &&
		res.Remote.TelescopeViolations == 0 && res.Full.TelescopeViolations == 0
	res.OneTracePerRoot = variantBalanced(res.Local) && variantBalanced(res.Remote) && variantBalanced(res.Full)
	res.BooksReconcile = res.Full.SumSojournNS == res.Full.BookedSojournNS &&
		res.Full.SumSojournNS > 0
	return res, nil
}

// Print renders the arc: per-variant trace counts, the measured sojourn
// decomposition, and the cross-run audit. Segment magnitudes are real
// wall-clock measurements and vary run to run; the counts and the audit
// verdicts are deterministic.
func (r TraceResult) Print(w io.Writer) {
	header(w, fmt.Sprintf("Trace: scenario %q, %d/tenant offered, %d admitted; sampling %d permille (full run: 1000)",
		r.Scenario.Name, r.PerTenant, r.Local.Admitted, traceSamplePermille))
	for tenant, n := range r.Shed {
		fmt.Fprintf(w, "  shed at the bucket: %s %d\n", tenant, n)
	}
	fmt.Fprintf(w, "%-7s %9s %8s %7s %6s %11s %11s %11s %11s\n",
		"variant", "admitted", "sampled", "traces", "remote", "queue ms", "service ms", "shuttle ms", "sojourn ms")
	row := func(v TraceVariant) {
		fmt.Fprintf(w, "%-7s %9d %8d %7d %6d %11.2f %11.2f %11.2f %11.2f\n",
			v.Mode, v.Admitted, v.SampledExpected, v.TracesCompleted, v.RemoteSegments,
			float64(v.SumQueueNS)/1e6, float64(v.SumServiceNS)/1e6,
			float64(v.SumShuttleNS)/1e6, float64(v.SumSojournNS)/1e6)
	}
	row(r.Local)
	row(r.Remote)
	row(r.Full)
	fmt.Fprintf(w, "sampled sets bit-identical (local == remote == expected): %v\n", r.SampledSetsIdentical)
	fmt.Fprintf(w, "every trace telescopes exactly (queue+service+shuttle == sojourn): %v\n", r.TelescopeExact)
	fmt.Fprintf(w, "one complete trace per sampled root, nothing dropped/lost/pending: %v\n", r.OneTracePerRoot)
	fmt.Fprintf(w, "full-sampling trace sojourn sum == engine books: %v (%d ns vs %d ns)\n",
		r.BooksReconcile, r.Full.SumSojournNS, r.Full.BookedSojournNS)
}
