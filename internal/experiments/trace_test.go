package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestTraceArc runs the tracing golden arc end to end and locks the
// tentpole's contract: the deterministically sampled trace-id sets are
// bit-identical between the local and the 3-worker remote run, every
// sampled root yields exactly one complete trace, every trace telescopes
// exactly, and with full sampling the traces' summed sojourn equals the
// engine's own books to the nanosecond.
func TestTraceArc(t *testing.T) {
	r, err := RunTrace(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.SampledSetsIdentical {
		t.Fatalf("sampled sets differ: local %d ids, remote %d ids, expected %d",
			len(r.Local.SampledIDs), len(r.Remote.SampledIDs), r.Local.SampledExpected)
	}
	if !r.TelescopeExact {
		t.Fatalf("telescoping violations: local %d, remote %d, full %d",
			r.Local.TelescopeViolations, r.Remote.TelescopeViolations, r.Full.TelescopeViolations)
	}
	if !r.OneTracePerRoot {
		t.Fatalf("trace-per-root contract broken: local %+v/%+v, remote %+v/%+v, full %+v/%+v",
			r.Local.Assembly, r.Local.SpansDropped,
			r.Remote.Assembly, r.Remote.SpansDropped,
			r.Full.Assembly, r.Full.SpansDropped)
	}
	if !r.BooksReconcile {
		t.Fatalf("full-sampling trace sojourn %d ns != engine books %d ns",
			r.Full.SumSojournNS, r.Full.BookedSojournNS)
	}

	// The sampled runs must genuinely sample: a nonempty strict subset.
	if r.Local.SampledExpected <= 0 || int64(r.Local.SampledExpected) >= r.Local.Admitted {
		t.Fatalf("sampling degenerate: %d of %d roots sampled",
			r.Local.SampledExpected, r.Local.Admitted)
	}
	// Full sampling must trace every admitted root.
	if int64(r.Full.TracesCompleted) != r.Full.Admitted {
		t.Fatalf("full sampling completed %d traces for %d admitted roots",
			r.Full.TracesCompleted, r.Full.Admitted)
	}

	// Local traces never cross a machine boundary; every remote trace's
	// count hop lands on a worker, contributing exactly three
	// remote-measured segments (queue, service, shuttle), and the chain's
	// span counts are exact (enforced per trace).
	if r.Local.RemoteSegments != 0 || r.Local.SumShuttleNS != 0 {
		t.Fatalf("local run crossed the wire: %d remote segments, %d shuttle ns",
			r.Local.RemoteSegments, r.Local.SumShuttleNS)
	}
	if r.Remote.RemoteSegments != 3*r.Remote.TracesCompleted {
		t.Fatalf("remote run: %d remote segments for %d traces, want 3 each",
			r.Remote.RemoteSegments, r.Remote.TracesCompleted)
	}
	if r.Remote.TracesCompleted > 0 && r.Remote.SumShuttleNS <= 0 {
		t.Fatal("remote traces crossed the wire for free: zero total shuttle time")
	}
	if r.Local.SpanViolations+r.Remote.SpanViolations+r.Full.SpanViolations != 0 {
		t.Fatalf("span-count violations: local %d, remote %d, full %d",
			r.Local.SpanViolations, r.Remote.SpanViolations, r.Full.SpanViolations)
	}

	// The token bucket must have shed at the door — the arc replays the
	// chaos surges, not a trickle.
	var shed int64
	for _, n := range r.Shed {
		shed += n
	}
	if shed == 0 {
		t.Fatal("the chaos workload shed nothing at the bucket — no surge was replayed")
	}

	var buf bytes.Buffer
	r.Print(&buf)
	out := buf.String()
	for _, want := range []string{
		"sampled sets bit-identical (local == remote == expected): true",
		"every trace telescopes exactly (queue+service+shuttle == sojourn): true",
		"one complete trace per sampled root, nothing dropped/lost/pending: true",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}
