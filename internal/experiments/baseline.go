package experiments

import (
	"fmt"
	"io"
	"math"

	"github.com/drs-repro/drs/internal/cluster"
	"github.com/drs-repro/drs/internal/core"
)

// BaselineRun is one policy's outcome in the DRS-vs-threshold comparison.
type BaselineRun struct {
	Policy string
	// Reconfigurations counts applied allocation changes (each one pays
	// the rebalance pause).
	Reconfigurations int
	// FinalAlloc is the allocation at the end of the run.
	FinalAlloc []int
	// SteadyMeanMillis is the mean sojourn over the final third of the run.
	SteadyMeanMillis float64
	Transitions      []Transition
}

// BaselineResult compares DRS's model-driven allocation against the
// utilization-threshold autoscaler on the same workload, same initial
// misallocation and same budget. Not a paper figure — it is the ablation
// motivating the queueing model over the obvious reactive policy.
type BaselineResult struct {
	App  App
	Runs []BaselineRun
	// DRSWins reports whether DRS settled at a steady latency at least as
	// good as the baseline's while needing at most a couple of moves.
	// Note the instructive failure mode of the baseline: from (8:12:2)
	// the FPD utilizations all sit inside the thresholds, so the reactive
	// policy sees nothing to fix — balanced utilization simply is not
	// minimal latency, which is the point of the queueing model.
	DRSWins bool
}

// RunBaseline runs both policies on the application from a deliberately
// bad initial allocation.
func RunBaseline(app App, o Options) (BaselineResult, error) {
	o = o.withDefaults()
	p, err := profileFor(app)
	if err != nil {
		return BaselineResult{}, err
	}
	duration := 20 * 60.0
	if o.Duration != 600 {
		duration = o.Duration
	}
	initial := []int{8, 12, 2} // bad for both VLD and FPD profiles
	res := BaselineResult{App: app}

	policies := []struct {
		name    string
		stepper core.Stepper
		cfg     core.ControllerConfig
	}{
		{name: "drs", cfg: core.ControllerConfig{Mode: core.ModeMinLatency, Kmax: 22, MinGain: 0.05}},
		{name: "threshold", stepper: core.ThresholdController{High: 0.8, Low: 0.35, Kmax: 22}},
	}
	for i, pol := range policies {
		pool, err := cluster.PaperPool(5)
		if err != nil {
			return BaselineResult{}, err
		}
		s, transitions, err := runControlled(controlLoopConfig{
			profile:  p,
			initial:  initial,
			pool:     pool,
			ctrl:     pol.cfg,
			stepper:  pol.stepper,
			enableAt: 60,
			duration: duration,
			interval: 10,
			seed:     o.Seed + uint64(i)*1000,
		})
		if err != nil {
			return BaselineResult{}, err
		}
		run := BaselineRun{
			Policy:           pol.name,
			Reconfigurations: len(transitions),
			FinalAlloc:       s.Allocation(),
			Transitions:      transitions,
		}
		series := s.Series()
		sum, n := 0.0, 0
		for _, pt := range series {
			if pt.Start >= duration*2/3 && !math.IsNaN(pt.MeanSojourn) {
				sum += pt.MeanSojourn
				n++
			}
		}
		if n > 0 {
			run.SteadyMeanMillis = sum / float64(n) * 1e3
		}
		res.Runs = append(res.Runs, run)
	}
	drs, base := res.Runs[0], res.Runs[1]
	res.DRSWins = drs.SteadyMeanMillis <= base.SteadyMeanMillis*1.02 &&
		drs.Reconfigurations <= 2
	return res, nil
}

// Print renders the comparison.
func (r BaselineResult) Print(w io.Writer) {
	header(w, fmt.Sprintf("Baseline comparison (%s): DRS vs utilization-threshold autoscaler", r.App))
	fmt.Fprintf(w, "%-10s %18s %14s %20s\n", "policy", "reconfigurations", "final alloc", "steady mean (ms)")
	for _, run := range r.Runs {
		fmt.Fprintf(w, "%-10s %18d %14s %20.1f\n",
			run.Policy, run.Reconfigurations, allocString(run.FinalAlloc), run.SteadyMeanMillis)
	}
	for _, run := range r.Runs {
		for _, tr := range run.Transitions {
			fmt.Fprintf(w, "  [%s] t=%4.0fs -> %s: %s\n", run.Policy, tr.AtSeconds, allocString(tr.Alloc), tr.Reason)
		}
	}
	fmt.Fprintf(w, "DRS at least as good with at most two moves: %v\n", r.DRSWins)
}
