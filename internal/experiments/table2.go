package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/drs-repro/drs/internal/apps/vld"
	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/metrics"
)

// Table2Row is one column of the paper's Table II: DRS's own computational
// overhead at a given Kmax.
type Table2Row struct {
	Kmax int
	// SchedulingMillis is the mean wall time of one full allocation
	// computation (Algorithm 1).
	SchedulingMillis float64
	// MeasurementMillis is the mean wall time of processing one
	// measurement interval (aggregate + smooth + snapshot), which is
	// independent of Kmax.
	MeasurementMillis float64
}

// Table2Result is the overhead table.
type Table2Result struct {
	Rows []Table2Row
	// Iterations is how many runs each mean is over.
	Iterations int
}

// Table2Kmaxes are the paper's sweep values.
func Table2Kmaxes() []int { return []int{12, 24, 48, 96, 192} }

// RunTable2 measures the real implementation: Algorithm 1 on the VLD rates
// (all λ, µ fixed, Kmax varied) and the measurer's per-interval processing.
// The paper runs each point 100,000 times; iterations tunes that down for
// quick runs.
func RunTable2(iterations int) (Table2Result, error) {
	if iterations <= 0 {
		iterations = 10000
	}
	model, err := vld.Model()
	if err != nil {
		return Table2Result{}, err
	}
	res := Table2Result{Iterations: iterations}
	// Scale the offered load with Kmax so larger budgets exercise real
	// allocation work rather than returning early at zero benefit.
	baseRates := model.Rates()
	for _, kmax := range Table2Kmaxes() {
		scale := float64(kmax) / 22.0
		ops := make([]core.OpRates, len(baseRates))
		for i, op := range baseRates {
			ops[i] = core.OpRates{Name: op.Name, Lambda: op.Lambda * scale, Mu: op.Mu}
		}
		scaled, err := core.NewModel(model.Lambda0()*scale, ops)
		if err != nil {
			return Table2Result{}, err
		}
		start := time.Now()
		for i := 0; i < iterations; i++ {
			if _, err := scaled.AssignProcessors(kmax); err != nil {
				return Table2Result{}, err
			}
		}
		sched := time.Since(start)

		meas, err := metrics.NewMeasurer(metrics.MeasurerConfig{
			OperatorNames: vld.OperatorNames(),
			Smoothing:     metrics.SmoothingSpec{Kind: "ewma", Alpha: 0.6},
		})
		if err != nil {
			return Table2Result{}, err
		}
		rep := metrics.IntervalReport{
			Duration:         5 * time.Second,
			ExternalArrivals: 65,
			Ops: []metrics.OpInterval{
				{Arrivals: 65, Served: 65, Sampled: 65, BusyTime: 29 * time.Second},
				{Arrivals: 65, Served: 65, Sampled: 65, BusyTime: 32 * time.Second},
				{Arrivals: 65, Served: 65, Sampled: 65, BusyTime: time.Second},
			},
			SojournCount: 60,
			SojournTotal: time.Minute,
		}
		start = time.Now()
		for i := 0; i < iterations; i++ {
			if err := meas.AddInterval(rep); err != nil {
				return Table2Result{}, err
			}
			if _, err := meas.Snapshot(); err != nil {
				return Table2Result{}, err
			}
		}
		measT := time.Since(start)

		res.Rows = append(res.Rows, Table2Row{
			Kmax:              kmax,
			SchedulingMillis:  sched.Seconds() * 1e3 / float64(iterations),
			MeasurementMillis: measT.Seconds() * 1e3 / float64(iterations),
		})
	}
	return res, nil
}

// Print renders the table in the paper's layout.
func (r Table2Result) Print(w io.Writer) {
	header(w, fmt.Sprintf("Table II: DRS computation overheads in ms (mean over %d runs)", r.Iterations))
	fmt.Fprintf(w, "%-14s", "Kmax")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%10d", row.Kmax)
	}
	fmt.Fprintf(w, "\n%-14s", "Scheduling")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%10.4f", row.SchedulingMillis)
	}
	fmt.Fprintf(w, "\n%-14s", "Measurement")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%10.4f", row.MeasurementMillis)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Scheduling cost grows roughly linearly with Kmax; measurement cost is flat.")
}
