package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"github.com/drs-repro/drs/internal/engine"
	"github.com/drs-repro/drs/internal/ingest"
	"github.com/drs-repro/drs/internal/scenario"
	"github.com/drs-repro/drs/internal/wal"
)

// The restart experiment: the durability tentpole's golden arc. Unlike
// the simulator-substrate experiments it drives the REAL durable ingest
// stack — a wal.Log on disk, an ingest.Gate in durable mode and the
// acked DurableSource — in deterministic virtual time: one tick per
// scenario second, an arrival count derived from the scenario envelope
// by fractional accumulation (no RNG), and a fixed drain capacity per
// tick standing in for the engine. The scenario's scripted machine kill
// is repurposed as process death: at the kill the node is dropped
// without a final sync — its ring backlog and every record ACKed past
// the last durable watermark die with it — and a partial frame is left
// on the segment tail (the mid-write(2) kill -9 artifact). The restart
// boots a second life over the same directory: recovery truncates the
// torn tail, replays everything past the durable watermark, and the arc
// finishes the surge. The audit the golden file locks: zero admitted
// records lost across lives, duplicates exactly equal to the
// acked-after-last-sync window, the final watermark equal to the pushed
// seq space, and a third boot with nothing left to replay.
const (
	// restartCapacity is the records drained per tick — the stand-in
	// engine's service rate (below the surge's offered rate, so a ring
	// backlog builds toward the kill).
	restartCapacity = 8
	// restartSyncEvery is the ticks between durable watermark syncs; the
	// records acked since the last sync are the at-least-once window.
	restartSyncEvery = 10
	// restartSegBytes keeps segments small so the arc exercises rotation
	// and watermark-driven pruning.
	restartSegBytes = 4096
	// restartRing must hold the replay burst plus the surge backlog.
	restartRing = 4096
)

// restartTorn is the partial frame appended after the kill: a header
// promising a 40-byte payload followed by only 5 bytes of it — what a
// kill -9 mid-write(2) leaves on the tail for recovery to truncate.
var restartTorn = []byte{0, 0, 0, 40, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5}

// RestartLife summarizes one process life of the arc.
type RestartLife struct {
	// From and Until bound the life in scenario seconds.
	From, Until float64
	// Offered, Admitted and Shed are the life's gate books.
	Offered, Admitted, Shed int64
	// Processed counts records popped and ACKed by the drain (occurrences,
	// so life 2's count includes replayed duplicates).
	Processed int64
	// WatermarkMemory is the completion tracker's watermark at life end;
	// WatermarkDurable the last watermark actually synced to the log. The
	// gap is the at-least-once window the kill exposes.
	WatermarkMemory, WatermarkDurable uint64
	// TailSeq and Segments describe the log at life end.
	TailSeq  uint64
	Segments int
	// RingBacklog is the admitted-but-unprocessed count at life end (the
	// records a kill abandons in memory and recovery must resurrect).
	RingBacklog int
}

// RestartResult carries the full kill -9/restart arc.
type RestartResult struct {
	// Scenario is the (possibly scaled) spec the run replayed.
	Scenario scenario.Spec
	// KillAt and RestartAt are the process-death window bounds in
	// scenario seconds.
	KillAt, RestartAt float64
	// Timeline logs every scenario event.
	Timeline []string
	// Life1 and Life2 are the two process lives.
	Life1, Life2 RestartLife
	// RefusedDown counts arrivals while the process was dead (a dead
	// front door refuses — it never silently loses).
	RefusedDown int64
	// TornBytes is the injected partial-frame length.
	TornBytes int
	// Recovery is the second boot's WAL scan summary.
	Recovery wal.Recovered
	// Replayed counts records re-injected on the second boot;
	// ExpectedDuplicates of them were already processed (acked after the
	// last durable sync) and will be seen twice.
	Replayed, ExpectedDuplicates int
	// DrainTicks counts extra ticks past the horizon needed to empty the
	// ring at the end.
	DrainTicks int
	// UniqueAdmitted, Duplicates and Lost audit the at-least-once
	// contract across lives: every admitted record must be processed at
	// least once (Lost == 0), and Duplicates is the total re-processing.
	UniqueAdmitted, Duplicates, Lost int64
	// FinalWatermark and FinalPushed must agree: every pushed seq
	// completed.
	FinalWatermark, FinalPushed uint64
	// FinalSegments counts live segments after the last sync + prune.
	FinalSegments int
	// VerifyWatermark and VerifyUnacked are the third boot's findings — a
	// clean restart replays nothing.
	VerifyWatermark uint64
	VerifyUnacked   int
	// BooksAgree reports the cross-life ledger check: per-life gate
	// admissions sum to the unique admitted count, nothing was lost, and
	// the final watermark covers the whole seq space.
	BooksAgree bool
}

// restartNode bundles one process life of the durable stack.
type restartNode struct {
	log  *wal.Log
	gate *ingest.Gate
	cl   *ingest.Client
	src  *ingest.DurableSource
	// processed counts this life's pops; never is the pop-side idle
	// channel (the driver only pops what Len reports, so it never blocks).
	processed int64
	never     chan struct{}
}

// bootRestartNode opens (or recovers) the log in dir and builds the
// durable gate over it.
func bootRestartNode(dir string) (*restartNode, wal.Recovered, error) {
	l, rec, err := wal.Open(wal.Options{Dir: dir, SegmentBytes: restartSegBytes, SyncEvery: -1})
	if err != nil {
		return nil, rec, err
	}
	g := ingest.NewGate(ingest.GateConfig{RingCapacity: restartRing})
	if err := g.AttachWAL(l); err != nil {
		l.Close()
		return nil, rec, err
	}
	src, ok := g.Source().(*ingest.DurableSource)
	if !ok {
		l.Close()
		return nil, rec, fmt.Errorf("experiments: durable gate returned a non-acked source")
	}
	return &restartNode{
		log: l, gate: g, cl: g.Client("ingest", 1, 0, 0),
		src: src, never: make(chan struct{}),
	}, rec, nil
}

// consume drains up to capacity records from the ring, acking each batch
// and counting payload occurrences into seen.
func (n *restartNode) consume(capacity int, seen map[string]int) {
	for capacity > 0 {
		avail := n.gate.Ring().Len()
		if avail == 0 {
			return
		}
		take := capacity
		if take > avail {
			take = avail
		}
		batch, ack, ok := n.src.PopBatchAcked(n.never, make([]engine.Values, 0, take))
		if !ok {
			return
		}
		for _, v := range batch {
			seen[string(v[0].([]byte))]++
		}
		ack()
		n.processed += int64(len(batch))
		capacity -= len(batch)
	}
}

// life summarizes the node's current books as a RestartLife (From/Until
// filled by the caller).
func (n *restartNode) life(durable uint64) RestartLife {
	st := n.gate.Stats()
	return RestartLife{
		Offered: st.Offered, Admitted: st.Admitted,
		Shed:            st.ShedRateLimit + st.ShedOverload + st.ShedBacklog,
		Processed:       n.processed,
		WatermarkMemory: n.gate.Watermark(), WatermarkDurable: durable,
		TailSeq: n.log.TailSeq(), Segments: n.log.Segments(),
		RingBacklog: n.gate.Ring().Len(),
	}
}

// tearTail appends the partial frame to the newest segment in dir.
func tearTail(dir string) error {
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(segs) == 0 {
		return fmt.Errorf("experiments: no segment to tear: %v", err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	if _, err := f.Write(restartTorn); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RunRestart replays the canonical kill -9 scenario (scenario.Restart):
// the five-minute arc the golden file locks.
func RunRestart(o Options) (RestartResult, error) {
	return RunRestartSpec(scenario.Restart(), o)
}

// RunRestartSpec replays an arbitrary scenario spec as a kill -9 arc:
// the first scripted kill is the process death, its recovery the
// restart. A non-default Options.Duration scales the spec to that
// horizon.
func RunRestartSpec(spec scenario.Spec, o Options) (RestartResult, error) {
	o = o.withDefaults()
	if o.Duration != 600 { // scaled-down run (benchmarks, quick tests)
		spec = spec.Scaled(o.Duration / spec.DurationSeconds)
	}
	tl, err := scenario.Compile(spec)
	if err != nil {
		return RestartResult{}, err
	}
	if len(spec.Tenants) != 1 || len(spec.Churn.Kills) != 1 {
		return RestartResult{}, fmt.Errorf("experiments: restart wants one tenant and one scripted kill, got %d/%d",
			len(spec.Tenants), len(spec.Churn.Kills))
	}
	tenant := spec.Tenants[0]
	kill := spec.Churn.Kills[0]
	res := RestartResult{
		Scenario: spec, KillAt: kill.At, RestartAt: kill.At + kill.Down,
		TornBytes: len(restartTorn),
	}
	env, err := tl.Envelope(tenant.Name)
	if err != nil {
		return res, err
	}
	dir, err := os.MkdirTemp("", "drs-restart-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)

	node, _, err := bootRestartNode(dir)
	if err != nil {
		return res, err
	}
	defer func() {
		if node != nil {
			node.log.Close()
		}
	}()
	events := tl.Events()
	nextEv := 0
	seen := make(map[string]int) // payload -> processed occurrences
	var admitted []string        // every admitted payload, both lives
	var acc float64              // fractional arrival accumulator
	var nextID int64             // arrival counter (ids survive downtime)
	var durableW uint64          // last watermark synced to the log
	duration := spec.DurationSeconds
	for t := 0; float64(t) < duration; t++ {
		// Fire scenario events due at this tick: the kill drops the node
		// cold (no sync, no drain) and tears the tail; the recovery boots
		// the second life and replays.
		for nextEv < len(events) && events[nextEv].At <= float64(t)+1e-9 {
			ev := events[nextEv]
			nextEv++
			res.Timeline = append(res.Timeline, ev.String())
			switch ev.Kind {
			case scenario.KindFail:
				res.Life1 = node.life(durableW)
				res.Life1.From, res.Life1.Until = 0, ev.At
				// kill -9: the log handle drops with the process; Close
				// here only mirrors what write(2) already made durable
				// (the group-commit leader writes before ACK).
				if err := node.log.Close(); err != nil {
					return res, err
				}
				node = nil
				if err := tearTail(dir); err != nil {
					return res, err
				}
			case scenario.KindRecover:
				var rec wal.Recovered
				node, rec, err = bootRestartNode(dir)
				if err != nil {
					return res, err
				}
				res.Recovery = rec
				durableW = rec.Watermark
				// Life-1 pushes are seqs 1..n in admitted order, so index
				// i carries seq i+1: every processed payload past the
				// durable watermark is about to be replayed a second time.
				for i, p := range admitted {
					if uint64(i+1) > rec.Watermark && seen[p] > 0 {
						res.ExpectedDuplicates++
					}
				}
				res.Replayed, err = node.gate.Replay()
				if err != nil {
					return res, err
				}
			}
		}
		// Arrivals from the envelope, by fractional accumulation — the
		// deterministic integer twin of the Poisson trace both substrates
		// replay. A dead node refuses (clients see a dead socket).
		acc += tenant.BaseRate * env(float64(t))
		n := int(acc)
		acc -= float64(n)
		for i := 0; i < n; i++ {
			id := nextID
			nextID++
			if node == nil {
				res.RefusedDown++
				continue
			}
			payload := fmt.Sprintf("r-%06d", id)
			if v := node.cl.Offer(engine.Values{[]byte(payload)}); v.Admitted {
				admitted = append(admitted, payload)
			}
		}
		if node == nil {
			continue
		}
		node.consume(restartCapacity, seen)
		if t > 0 && t%restartSyncEvery == 0 {
			if err := node.gate.SyncWatermark(); err != nil {
				return res, err
			}
			durableW = node.gate.Watermark()
		}
	}
	// Past the horizon: drain what the surge left in the ring, then sync
	// and compact one last time.
	for node.gate.Ring().Len() > 0 && res.DrainTicks < 1<<16 {
		node.consume(restartCapacity, seen)
		res.DrainTicks++
	}
	if err := node.gate.SyncWatermark(); err != nil {
		return res, err
	}
	durableW = node.gate.Watermark()
	res.Life2 = node.life(durableW)
	res.Life2.From, res.Life2.Until = res.RestartAt, duration
	res.FinalWatermark = node.gate.Watermark()
	res.FinalPushed = node.gate.Ring().Pushed()
	res.FinalSegments = node.log.Segments()
	if err := node.log.Close(); err != nil {
		return res, err
	}
	node = nil

	// The cross-life audit: every admitted payload processed at least
	// once, duplicates counted, and a third boot with nothing to replay.
	res.UniqueAdmitted = int64(len(admitted))
	for _, p := range admitted {
		c := seen[p]
		if c == 0 {
			res.Lost++
		} else {
			res.Duplicates += int64(c - 1)
		}
	}
	l3, rec3, err := wal.Open(wal.Options{Dir: dir, SegmentBytes: restartSegBytes, SyncEvery: -1})
	if err != nil {
		return res, err
	}
	res.VerifyWatermark = rec3.Watermark
	res.VerifyUnacked = len(l3.Unacked())
	if err := l3.Close(); err != nil {
		return res, err
	}
	res.BooksAgree = res.Lost == 0 &&
		res.Life1.Admitted+res.Life2.Admitted == res.UniqueAdmitted &&
		res.FinalWatermark == res.FinalPushed &&
		res.VerifyUnacked == 0
	return res, nil
}

// Print renders the arc: the event timeline, both lives' books, the
// recovery and replay summary, and the zero-loss audit.
func (r RestartResult) Print(w io.Writer) {
	header(w, fmt.Sprintf("Restart: scenario %q, kill -9 at t=%.0fs, restart at t=%.0fs of %.0fs",
		r.Scenario.Name, r.KillAt, r.RestartAt, r.Scenario.DurationSeconds))
	fmt.Fprintln(w, "timeline:")
	for _, line := range r.Timeline {
		fmt.Fprintf(w, "  %s\n", line)
	}
	lifeRow := func(name string, l RestartLife) {
		fmt.Fprintf(w, "%s (t=%.0f-%.0fs): offered %d, admitted %d, shed %d, processed %d\n",
			name, l.From, l.Until, l.Offered, l.Admitted, l.Shed, l.Processed)
		fmt.Fprintf(w, "  watermark %d acked / %d durable; log tail seq %d, %d segment(s), ring backlog %d\n",
			l.WatermarkMemory, l.WatermarkDurable, l.TailSeq, l.Segments, l.RingBacklog)
	}
	lifeRow("life 1", r.Life1)
	fmt.Fprintf(w, "kill -9: %d admitted records in the ring and %d ACKed past the durable watermark die with the process; %d-byte partial frame left on the tail\n",
		r.Life1.RingBacklog, r.Life1.WatermarkMemory-r.Life1.WatermarkDurable, r.TornBytes)
	fmt.Fprintf(w, "down: %d arrivals refused while the front door was dead\n", r.RefusedDown)
	fmt.Fprintf(w, "recovery: %d segment(s), %d record(s), tail seq %d, watermark %d, torn tail truncated: %d bytes\n",
		r.Recovery.Segments, r.Recovery.Records, r.Recovery.TailSeq, r.Recovery.Watermark, r.Recovery.TruncatedBytes)
	fmt.Fprintf(w, "replay: %d record(s) re-injected, %d already processed (the at-least-once window)\n",
		r.Replayed, r.ExpectedDuplicates)
	lifeRow("life 2", r.Life2)
	fmt.Fprintf(w, "drain: %d tick(s) past the horizon; final watermark %d == pushed %d; %d live segment(s) after pruning\n",
		r.DrainTicks, r.FinalWatermark, r.FinalPushed, r.FinalSegments)
	fmt.Fprintf(w, "audit: %d unique admitted, lost %d, duplicates %d\n",
		r.UniqueAdmitted, r.Lost, r.Duplicates)
	fmt.Fprintf(w, "verify (third boot): watermark %d, unacked %d\n", r.VerifyWatermark, r.VerifyUnacked)
	fmt.Fprintf(w, "books agree: %v\n", r.BooksAgree)
}
