package experiments

import (
	"fmt"
	"io"
	"log/slog"
	"math"
	"time"

	"github.com/drs-repro/drs/internal/cluster"
	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/loop"
	"github.com/drs-repro/drs/internal/sim"
	"github.com/drs-repro/drs/internal/stats"
)

// The multi-tenant contention experiment: two supervised topologies share
// one machine pool through the cluster Scheduler, and a staggered load
// step on the higher-priority tenant forces the arbiter to preempt slots
// from the other tenant and hand them back once the surge passes — the
// shared-cluster setting the paper's §V evaluation ran in, which the
// single-loop Figures 9-10 never exercise.
//
// Both tenants run the same two-stage chain (µ = 2/s per processor,
// selectivity 1), so every threshold below is exact M/M/k arithmetic:
//
//   - "steady" (priority 0) takes λ0 = 6/s throughout. Program (6) under
//     Tmax = 1.3 s settles it at 10 slots, (5:5), E[T] ≈ 1.12 s — a ~15%
//     noise margin to the target. Its preemption floor of 8 keeps it
//     stable, but (4:4) runs at E[T] ≈ 1.51 s, violating, so a preempted
//     steady keeps bidding for its slots back.
//   - "bursty" (priority 1) takes λ0 = 4/s, stepped ×2.5 to 10/s during
//     the middle window. At base it needs 8 slots, (4:4), E[T] ≈ 1.09 s;
//     at peak it needs 14, (7:7) — but the pool tops out at 5 machines ×
//     4 slots = 20, so its demand can only be met by preempting steady.
//
// The 0.16 scale-in slack tightens both tenants' release target to
// ~1.09 s, which pins the scale-in sizes exactly at the steady-state
// allocations (10 and 8 slots) — measurement noise cannot pull either
// tenant below its settled size, only the load step moves slots.
//
// Expected arc: both settle → step hits → bursty violates, requests 14,
// gets the fair share plus a preemption down to steady's floor (8/12) →
// step ends → bursty converges and scales in → steady reclaims its 10.
const (
	contentionTmax     = 1.3  // both tenants' Tmax, seconds
	contentionSlack    = 0.16 // scale-in slack (see above)
	contentionMu       = 2.0  // per-processor service rate, both stages
	steadyRate         = 6.0  // steady tenant's λ0
	burstyBaseRate     = 4.0  // bursty tenant's λ0 outside the window
	burstyStepFactor   = 2.5  // rate multiplier inside the window
	contentionSlots    = 4    // slots per machine
	contentionMachines = 5    // provider cap: 20 slots total
	steadyInitial      = 10   // steady's registration grant
	burstyInitial      = 8    // bursty's registration grant
	contentionFloor    = 8    // both tenants' preemption floor (stable)
)

// ContentionGrantPoint samples the arbitration state once per control
// round: who holds how many slots, against what capacity.
type ContentionGrantPoint struct {
	// AtSeconds is the simulated time of the sample.
	AtSeconds float64
	// Steady and Bursty are the tenants' slot grants.
	Steady, Bursty int
	// Capacity is the pool's total slot count at the sample.
	Capacity int
}

// ContentionResult carries the full arc of the two-tenant run.
type ContentionResult struct {
	// Tmax is the (shared) latency target.
	Tmax float64
	// StepFrom and StepUntil bound the bursty tenant's surge window.
	StepFrom, StepUntil float64
	// SeriesSteady and SeriesBursty are the per-minute sojourn curves.
	SeriesSteady, SeriesBursty []sim.SeriesPoint
	// TransitionsSteady and TransitionsBursty are each supervisor's applied
	// decisions, preemption shrinks included.
	TransitionsSteady, TransitionsBursty []Transition
	// Grants samples the arbitration once per control round.
	Grants []ContentionGrantPoint
	// SchedulerHistory is the cluster-wide decision log.
	SchedulerHistory []cluster.SchedulerEvent
	// PreemptedSlots is the largest number of slots taken from steady.
	PreemptedSlots int
	// BurstyPeakGrant is bursty's largest grant during the run.
	BurstyPeakGrant int
	// SteadyRestored reports whether steady's grant returned to its
	// pre-step level after the surge window closed (a later voluntary
	// scale-in may shrink it again).
	SteadyRestored bool
	// MaxLeaseOverCapacity is the worst observed Leased − Capacity over
	// every sample; it must never exceed zero (no slot double-leased).
	MaxLeaseOverCapacity int
	// FinalState is the arbitration state at the end of the run.
	FinalState cluster.SchedulerState
}

// twoStageParams fixes one tenant chain's model constants — the contention
// and churn experiments share the tenant scaffolding but differ in rates
// and thresholds.
type twoStageParams struct {
	// mu is the per-processor service rate of both stages.
	mu float64
	// tmax, slack and maxScaleInUtil parameterize the tenant's controller.
	tmax, slack, maxScaleInUtil float64
}

// twoStageSimConfig builds one tenant's two-stage chain. A non-nil step
// wraps the source in a SteppedRate surge.
func twoStageSimConfig(p twoStageParams, lambda0 float64, alloc []int, seed uint64, step *sim.SteppedRate) (sim.Config, error) {
	emit, err := sim.NewFractionalEmission(1)
	if err != nil {
		return sim.Config{}, err
	}
	var arrivals sim.ArrivalProcess = sim.PoissonArrivals{Rate: lambda0}
	if step != nil {
		step.Base = arrivals
		arrivals = step
	}
	return sim.Config{
		Operators: []sim.OperatorSpec{
			{Name: "stage1", Service: stats.Exponential{Rate: p.mu}},
			{Name: "stage2", Service: stats.Exponential{Rate: p.mu}},
		},
		Sources: []sim.SourceSpec{{Op: 0, Arrivals: arrivals}},
		Edges:   []sim.EdgeSpec{{From: 0, To: 1, Emit: emit}},
		Alloc:   alloc,
		Seed:    seed,
	}, nil
}

// contentionTenant bundles one tenant's simulator and supervisor.
type contentionTenant struct {
	s   *sim.Sim
	sup *loop.Supervisor
}

// newTwoStageTenant starts one supervised two-stage tenant against its
// lease.
func newTwoStageTenant(p twoStageParams, lambda0 float64, initial []int, lease *cluster.Tenant,
	clock loop.Clock, failures *loopFailures, interval float64, seed uint64,
	step *sim.SteppedRate) (*contentionTenant, error) {
	cfg, err := twoStageSimConfig(p, lambda0, initial, seed, step)
	if err != nil {
		return nil, err
	}
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	s.EnableSeries(60)
	names := []string{"stage1", "stage2"}
	ctrl, err := core.NewController(core.ControllerConfig{
		Mode:                  core.ModeMinResource,
		Tmax:                  p.tmax,
		MinGain:               0.05,
		ScaleInSlack:          p.slack,
		MaxScaleInUtilization: p.maxScaleInUtil,
		// Slots are granted individually by the scheduler — machine
		// quantization happens below the leases, not per tenant.
	})
	if err != nil {
		return nil, err
	}
	sup, err := loop.New(loop.Config{
		Target:    simTarget{s: s, names: names},
		Operators: names,
		Stepper:   ctrl,
		Pool:      lease,
		Interval:  secondsToDuration(interval),
		Cooldown:  secondsToDuration(4 * interval),
		Clock:     clock,
		Logger:    slog.New(failures),
	})
	if err != nil {
		return nil, err
	}
	return &contentionTenant{s: s, sup: sup}, nil
}

// newContentionTenant starts one supervised tenant against its lease.
func newContentionTenant(lambda0 float64, initial []int, lease *cluster.Tenant,
	clock loop.Clock, failures *loopFailures, interval float64, seed uint64,
	step *sim.SteppedRate) (*contentionTenant, error) {
	return newTwoStageTenant(twoStageParams{
		mu: contentionMu, tmax: contentionTmax, slack: contentionSlack,
		// 0.6 pins the scale-in floor at the designed steady-state sizes:
		// the next-smaller allocation of either tenant runs an operator at
		// ρ > 0.6, so a noisy (optimistic) snapshot cannot shrink past it.
		maxScaleInUtil: 0.6,
	}, lambda0, initial, lease, clock, failures, interval, seed, step)
}

// RunContention runs the two-tenant arbitration experiment: 27 simulated
// minutes, controllers enabled from minute 3, the bursty tenant surging
// ×2.5 between minutes 9 and 18.
func RunContention(o Options) (ContentionResult, error) {
	o = o.withDefaults()
	duration := 27 * 60.0
	enableAt := 3 * 60.0
	stepFrom, stepUntil := 9*60.0, 18*60.0
	if o.Duration != 600 { // scaled-down run (benchmarks, quick tests)
		duration = o.Duration
		enableAt = duration / 9
		stepFrom, stepUntil = duration/3, 2*duration/3
	}
	res := ContentionResult{Tmax: contentionTmax, StepFrom: stepFrom, StepUntil: stepUntil}

	pool, err := cluster.NewPool(cluster.PoolConfig{
		SlotsPerMachine: contentionSlots,
		MaxMachines:     contentionMachines,
		Costs: cluster.CostModel{
			Rebalance:        3 * time.Second,
			MachineColdStart: 4777 * time.Millisecond,
			MachineRelease:   1113 * time.Millisecond,
		},
	}, 1)
	if err != nil {
		return res, err
	}
	clock := &simClock{}
	sched, err := cluster.NewScheduler(cluster.SchedulerConfig{Pool: pool, Clock: clock})
	if err != nil {
		return res, err
	}
	steadyLease, err := sched.Register(cluster.TenantConfig{
		Name: "steady", Priority: 0, MinSlots: contentionFloor, InitialSlots: steadyInitial,
	})
	if err != nil {
		return res, err
	}
	burstyLease, err := sched.Register(cluster.TenantConfig{
		Name: "bursty", Priority: 1, MinSlots: contentionFloor, InitialSlots: burstyInitial,
	})
	if err != nil {
		return res, err
	}

	failures := &loopFailures{}
	interval := 10.0
	steady, err := newContentionTenant(steadyRate, []int{5, 5}, steadyLease,
		clock, failures, interval, o.Seed, nil)
	if err != nil {
		return res, err
	}
	bursty, err := newContentionTenant(burstyBaseRate, []int{4, 4}, burstyLease,
		clock, failures, interval, o.Seed+1,
		&sim.SteppedRate{Factor: burstyStepFactor, From: stepFrom, Until: stepUntil})
	if err != nil {
		return res, err
	}

	preStepSteady := steadyLease.Kmax()
	for t := interval; t <= duration+1e-9; t += interval {
		steady.s.RunUntil(t)
		bursty.s.RunUntil(t)
		clock.set(t)
		if t < enableAt {
			steady.sup.Observe()
			bursty.sup.Observe()
		} else {
			steady.sup.Tick()
			bursty.sup.Tick()
		}
		st := sched.State()
		res.Grants = append(res.Grants, ContentionGrantPoint{
			AtSeconds: t,
			Steady:    steadyLease.Kmax(),
			Bursty:    burstyLease.Kmax(),
			Capacity:  st.Capacity,
		})
		if over := st.Leased - st.Capacity; over > res.MaxLeaseOverCapacity {
			res.MaxLeaseOverCapacity = over
		}
		if taken := preStepSteady - steadyLease.Kmax(); taken > res.PreemptedSlots {
			res.PreemptedSlots = taken
		}
		if g := burstyLease.Kmax(); g > res.BurstyPeakGrant {
			res.BurstyPeakGrant = g
		}
		if t >= stepUntil && steadyLease.Kmax() >= preStepSteady {
			res.SteadyRestored = true
		}
	}
	if err := failures.err(); err != nil {
		return res, fmt.Errorf("experiments: contention run: %w", err)
	}
	res.SeriesSteady = steady.s.Series()
	res.SeriesBursty = bursty.s.Series()
	res.TransitionsSteady = transitionsFrom(steady.sup)
	res.TransitionsBursty = transitionsFrom(bursty.sup)
	res.SchedulerHistory = sched.History()
	res.FinalState = sched.State()
	return res, nil
}

// Print renders the arc: the grant timeline, both sojourn curves, each
// supervisor's transitions and the scheduler's decision history.
func (r ContentionResult) Print(w io.Writer) {
	header(w, fmt.Sprintf("Contention: two tenants, one pool; Tmax = %.0f ms, surge x%.1f during [%.0fs, %.0fs)",
		r.Tmax*1e3, burstyStepFactor, r.StepFrom, r.StepUntil))
	fmt.Fprint(w, "grants (steady/bursty of capacity), one column per minute:\n  ")
	for i, g := range r.Grants {
		if i%6 != 5 { // 10 s rounds -> print once per minute
			continue
		}
		fmt.Fprintf(w, "%d/%d ", g.Steady, g.Bursty)
	}
	fmt.Fprintln(w)
	printCurve := func(name string, series []sim.SeriesPoint) {
		fmt.Fprintf(w, "%s E[T] by minute (ms): ", name)
		for _, pt := range series {
			if math.IsNaN(pt.MeanSojourn) {
				fmt.Fprint(w, "    - ")
				continue
			}
			fmt.Fprintf(w, "%5.0f ", pt.MeanSojourn*1e3)
		}
		fmt.Fprintln(w)
	}
	printCurve("steady", r.SeriesSteady)
	printCurve("bursty", r.SeriesBursty)
	printTransitions := func(name string, trs []Transition) {
		for _, tr := range trs {
			mark := ""
			if tr.Preempted {
				mark = " [preempted]"
			}
			fmt.Fprintf(w, "  %-6s t=%5.0fs %-10s -> %s, Kmax=%d (pause %.1fs)%s: %s\n",
				name, tr.AtSeconds, tr.Action, allocString(tr.Alloc), tr.Kmax, tr.PauseSeconds, mark, tr.Reason)
		}
	}
	printTransitions("steady", r.TransitionsSteady)
	printTransitions("bursty", r.TransitionsBursty)
	fmt.Fprintln(w, "scheduler history:")
	for _, ev := range r.SchedulerHistory {
		fmt.Fprintf(w, "  t=%5.0fs %s\n", ev.At.Sub(simEpoch).Seconds(), ev)
	}
	fmt.Fprintf(w, "max slots preempted from steady: %d; bursty peak grant: %d\n",
		r.PreemptedSlots, r.BurstyPeakGrant)
	fmt.Fprintf(w, "steady restored to pre-step grant: %v; double-leased slots: %d\n",
		r.SteadyRestored, r.MaxLeaseOverCapacity)
}
