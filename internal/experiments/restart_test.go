package experiments

import (
	"bytes"
	"testing"
)

// TestRestartArc runs the kill -9/restart experiment and checks the
// durability story end to end: the kill lands mid-surge with a ring
// backlog and an at-least-once window, recovery truncates the torn tail
// and replays exactly the records past the durable watermark, nothing
// admitted is ever lost, duplicates equal the acked-after-last-sync
// window, and a third boot has nothing left to replay.
func TestRestartArc(t *testing.T) {
	r, err := RunRestart(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Lost != 0 {
		t.Fatalf("%d admitted records lost across the kill", r.Lost)
	}
	if !r.BooksAgree {
		t.Fatalf("books do not balance: %+v", r)
	}
	if r.Life1.RingBacklog == 0 {
		t.Fatal("the kill landed with an empty ring — no backlog was at risk")
	}
	if r.Life1.WatermarkMemory <= r.Life1.WatermarkDurable {
		t.Fatal("no at-least-once window: every ack was already durable at the kill")
	}
	window := int(r.Life1.WatermarkMemory - r.Life1.WatermarkDurable)
	if r.ExpectedDuplicates != window {
		t.Fatalf("expected duplicates %d != at-least-once window %d", r.ExpectedDuplicates, window)
	}
	if r.Duplicates != int64(window) {
		t.Fatalf("observed duplicates %d != at-least-once window %d", r.Duplicates, window)
	}
	if r.Recovery.TruncatedBytes != int64(r.TornBytes) {
		t.Fatalf("recovery truncated %d bytes, injected %d", r.Recovery.TruncatedBytes, r.TornBytes)
	}
	wantReplay := int(r.Life1.Admitted) - int(r.Recovery.Watermark)
	if r.Replayed != wantReplay {
		t.Fatalf("replayed %d records, want everything past the durable watermark: %d", r.Replayed, wantReplay)
	}
	if r.RefusedDown == 0 {
		t.Fatal("the dead front door refused nothing — the outage had no cost")
	}
	if r.Life1.Shed+r.Life2.Shed != 0 {
		t.Fatalf("the arc shed %d records; the ring should never fill", r.Life1.Shed+r.Life2.Shed)
	}
	if r.FinalWatermark != r.FinalPushed {
		t.Fatalf("final watermark %d != pushed %d: a pushed seq never completed", r.FinalWatermark, r.FinalPushed)
	}
	if r.VerifyUnacked != 0 {
		t.Fatalf("third boot found %d unacked records after a drained finish", r.VerifyUnacked)
	}
	if r.Recovery.Segments <= 1 || r.FinalSegments != 1 {
		t.Fatalf("rotation/pruning not exercised: recovered %d segment(s), final %d",
			r.Recovery.Segments, r.FinalSegments)
	}
}

// TestRestartGoldenOutput locks the restart summary rendering — the arc
// is deterministic (envelope-driven arrivals, fixed drain capacity, no
// RNG), so any drift in recovery, replay or the audit shows up as a
// textual diff.
func TestRestartGoldenOutput(t *testing.T) {
	r, err := RunRestart(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	golden(t, "restart.golden", buf.Bytes())
}
