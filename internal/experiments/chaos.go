package experiments

import (
	"fmt"
	"io"
	"log/slog"
	"math"
	"strings"
	"time"

	"github.com/drs-repro/drs/internal/cluster"
	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/ingest"
	"github.com/drs-repro/drs/internal/loop"
	"github.com/drs-repro/drs/internal/obs"
	"github.com/drs-repro/drs/internal/scenario"
	"github.com/drs-repro/drs/internal/sim"
)

// The chaos experiment: every stressor the stack knows, layered in one
// scenario-driven arc. Where churn, contention and overload each isolate a
// single failure mode, chaos replays a scenario.Timeline — diurnal and
// flash-crowd arrival envelopes, heavy-tailed (Pareto) service times,
// scripted machine kills, straggler windows, scheduled priority changes
// and a permanent decommission — against N supervised two-stage tenants
// sharing one machine pool behind per-tenant admission gates.
//
// The driver is generic over the spec: every tenant gets the same chain
// (µ = 2/s per stage, Tmax = 1.5 s, floor 4, initial grant 6) and the
// scenario varies the traffic and the infrastructure events around it.
// Machine-targeted events resolve their victims at fire time (the pool's
// IDs come and go with demand): a fail takes the newest live machine, a
// straggler mark takes the oldest healthy one, a decommission fails the
// newest live machine and returns it to the provider, and recoveries and
// straggler clears pair with the event that opened them.
//
// The run is audited at every control round and attributed per phase —
// the timeline's event times segment the arc, and each phase records its
// own lease-over-capacity, placement-violation, queue-drop and shed
// counts. The invariants the arc test locks: no slot double-leased, no
// placement overcommitted, zero admitted tuples lost (overload is shed at
// the door, never dropped in a queue), and the gate's shed ledger equal
// to the simulator's refused-arrival count (the two books agree).
const (
	chaosTmax     = 1.5 // every tenant's latency target, seconds
	chaosSlack    = 0.3 // scale-in slack (wide: hold settled sizes against noise)
	chaosMu       = 2.0 // per-processor service rate, both stages
	chaosSlots    = 4   // slots per machine
	chaosMachines = 5   // provider cap: the 20-slot pool
	chaosInitial  = 6   // every tenant's registration grant, (3:3)
	chaosFloor    = 4   // every tenant's preemption floor
)

// ChaosGrantPoint samples the arbitration once per control round.
type ChaosGrantPoint struct {
	// AtSeconds is the simulated time of the sample.
	AtSeconds float64
	// Grants holds each tenant's slot grant, in spec order.
	Grants []int
	// Capacity is the live slot count; Machines the live machine count.
	Capacity, Machines int
}

// ChaosPhase is one segment of the arc between consecutive timeline
// events, carrying that segment's own invariant audit.
type ChaosPhase struct {
	// From and Until bound the phase in scenario seconds.
	From, Until float64
	// Label names the events that opened the phase.
	Label string
	// Rounds counts the control rounds sampled inside the phase.
	Rounds int
	// MaxLeaseOverCapacity is the phase's worst Leased − Capacity (> 0
	// would mean a slot double-leased inside this phase).
	MaxLeaseOverCapacity int
	// PlacementViolations counts rounds with an inconsistent placement.
	PlacementViolations int
	// Offered, Admitted and Shed are the phase's front-door counts summed
	// over every tenant; Dropped is queue drops (must stay zero — admitted
	// tuples are never lost).
	Offered, Admitted, Shed, Dropped int64
}

// ChaosTenantStats summarizes one tenant's run.
type ChaosTenantStats struct {
	// Name and Weight identify the tenant.
	Name   string
	Weight float64
	// Offered, Admitted and Shed are cumulative front-door counts.
	Offered, Admitted, Shed int64
	// ShedFraction is Shed/Offered.
	ShedFraction float64
	// SimShed is the simulator's own count of gate-refused arrivals for
	// this tenant; the books agree when it equals Shed.
	SimShed int64
	// SlotsLost is the scheduler's cumulative failure-loss attribution.
	SlotsLost int
	// Series is the per-minute sojourn curve of admitted tuples.
	Series []sim.SeriesPoint
	// Transitions are the tenant supervisor's applied decisions.
	Transitions []Transition
}

// ChaosResult carries the full arc of the scenario-driven run.
type ChaosResult struct {
	// Scenario is the (possibly scaled) spec the run replayed.
	Scenario scenario.Spec
	// Tmax is the shared latency target.
	Tmax float64
	// Applied logs every timeline event as resolved at fire time.
	Applied []string
	// Tenants holds the per-tenant summaries, in spec order.
	Tenants []ChaosTenantStats
	// Grants samples the arbitration once per control round.
	Grants []ChaosGrantPoint
	// Phases segments the arc at event times, each with its own audit.
	Phases []ChaosPhase
	// SchedulerHistory is the cluster-wide decision log.
	SchedulerHistory []cluster.SchedulerEvent
	// MaxLeaseOverCapacity is the worst observed Leased − Capacity over
	// the whole run; it must never exceed zero.
	MaxLeaseOverCapacity int
	// PlacementViolations counts rounds with an inconsistent placement.
	PlacementViolations int
	// DroppedTuples and PendingAtEnd audit the zero-admitted-loss claim.
	DroppedTuples, PendingAtEnd int64
	// ShedTotal and SimShedTotal are the two shed ledgers (gate clients
	// vs simulator); BooksAgree reports them equal.
	ShedTotal, SimShedTotal int64
	BooksAgree              bool
	// FinalState is the arbitration state at the end of the run.
	FinalState cluster.SchedulerState
}

// chaosTenant bundles one tenant's simulator, supervisor, lease and
// admission-gate twin.
type chaosTenant struct {
	spec   scenario.TenantSpec
	client *overloadClient
	lease  *cluster.Tenant
	s      *sim.Sim
	sup    *loop.Supervisor
	// lastShed is the previous round's shed reading (phase attribution).
	lastShed int64
}

// newChaosTenant starts one supervised two-stage tenant whose source
// follows the timeline's arrival envelope behind an admission gate, and
// whose stages serve the timeline's service distribution (exponential, or
// mean-pinned Pareto for heavy-tailed tenants).
func newChaosTenant(tl *scenario.Timeline, ts scenario.TenantSpec, lease *cluster.Tenant,
	clock loop.Clock, failures *loopFailures, interval float64, seed uint64, dlog *obs.Log) (*chaosTenant, error) {
	weight := ts.Weight
	if weight <= 0 {
		weight = 1
	}
	ct := &chaosTenant{
		spec:   ts,
		client: &overloadClient{name: ts.Name, weight: weight, permille: 1000},
		lease:  lease,
	}
	arrivals, err := tl.Arrivals(ts.Name)
	if err != nil {
		return nil, err
	}
	service, err := tl.Service(ts.Name, chaosMu)
	if err != nil {
		return nil, err
	}
	emit, err := sim.NewFractionalEmission(1)
	if err != nil {
		return nil, err
	}
	s, err := sim.New(sim.Config{
		Operators: []sim.OperatorSpec{
			{Name: "stage1", Service: service},
			{Name: "stage2", Service: service},
		},
		Sources: []sim.SourceSpec{{Op: 0, Arrivals: arrivals, Admit: ct.client.admit}},
		Edges:   []sim.EdgeSpec{{From: 0, To: 1, Emit: emit}},
		Alloc:   []int{3, 3},
		Seed:    seed,
	})
	if err != nil {
		return nil, err
	}
	s.EnableSeries(60)
	ct.s = s
	names := []string{"stage1", "stage2"}
	ctrl, err := core.NewController(core.ControllerConfig{
		Mode:                  core.ModeMinResource,
		Tmax:                  chaosTmax,
		MinGain:               0.05,
		ScaleInSlack:          chaosSlack,
		MaxScaleInUtilization: 0.6,
	})
	if err != nil {
		return nil, err
	}
	ct.sup, err = loop.New(loop.Config{
		Target:      simTarget{s: s, names: names},
		Operators:   names,
		Stepper:     ctrl,
		Pool:        lease,
		Interval:    secondsToDuration(interval),
		Cooldown:    secondsToDuration(4 * interval),
		Clock:       clock,
		Logger:      slog.New(failures),
		Tenant:      ts.Name,
		DecisionLog: dlog,
	})
	if err != nil {
		return nil, err
	}
	return ct, nil
}

// chaosDriver resolves timeline events against the live pool at fire time.
type chaosDriver struct {
	pool  *cluster.Pool
	sched *cluster.Scheduler
	// byName maps tenant names to their runtime bundles.
	byName map[string]*chaosTenant
	// killedOf and stragglerOf map a nominal event machine to the actual
	// pool machine its opening event resolved to, so the closing event
	// (recover, straggler-off) targets the same machine.
	killedOf, stragglerOf map[int]int
}

// apply fires one timeline event and returns its resolved log line.
func (d *chaosDriver) apply(ev scenario.Event) (string, error) {
	switch ev.Kind {
	case scenario.KindFail:
		live := d.pool.LiveMachines()
		if len(live) == 0 {
			return "", fmt.Errorf("chaos: no live machine left to kill at t=%.0fs", ev.At)
		}
		victim := live[len(live)-1].ID
		if err := d.sched.FailMachine(victim); err != nil {
			return "", fmt.Errorf("chaos: killing machine %d: %w", victim, err)
		}
		d.killedOf[ev.Machine] = victim
		return fmt.Sprintf("t=%5.0fs fail machine %d", ev.At, victim), nil
	case scenario.KindRecover:
		id, ok := d.killedOf[ev.Machine]
		if !ok {
			return "", fmt.Errorf("chaos: recovery at t=%.0fs pairs with no applied failure", ev.At)
		}
		delete(d.killedOf, ev.Machine)
		if err := d.sched.RecoverMachine(id); err != nil {
			return "", fmt.Errorf("chaos: recovering machine %d: %w", id, err)
		}
		return fmt.Sprintf("t=%5.0fs recover machine %d", ev.At, id), nil
	case scenario.KindStragglerOn:
		victim := -1
		for _, m := range d.pool.LiveMachines() {
			if !m.Straggler {
				victim = m.ID
				break
			}
		}
		if victim < 0 {
			return "", fmt.Errorf("chaos: no healthy machine to mark straggler at t=%.0fs", ev.At)
		}
		if err := d.sched.MarkStraggler(victim, true); err != nil {
			return "", fmt.Errorf("chaos: marking straggler %d: %w", victim, err)
		}
		d.stragglerOf[ev.Machine] = victim
		return fmt.Sprintf("t=%5.0fs straggler-on machine %d", ev.At, victim), nil
	case scenario.KindStragglerOff:
		id, ok := d.stragglerOf[ev.Machine]
		if !ok {
			return "", fmt.Errorf("chaos: straggler clear at t=%.0fs pairs with no applied mark", ev.At)
		}
		delete(d.stragglerOf, ev.Machine)
		if err := d.sched.MarkStraggler(id, false); err != nil {
			return "", fmt.Errorf("chaos: clearing straggler %d: %w", id, err)
		}
		return fmt.Sprintf("t=%5.0fs straggler-off machine %d", ev.At, id), nil
	case scenario.KindDecommission:
		live := d.pool.LiveMachines()
		if len(live) == 0 {
			return "", fmt.Errorf("chaos: no live machine left to decommission at t=%.0fs", ev.At)
		}
		victim := live[len(live)-1].ID
		// Decommission takes only failed machines (live ones leave through
		// scale-in), so a scheduled retirement is a fail + return-to-provider.
		if err := d.sched.FailMachine(victim); err != nil {
			return "", fmt.Errorf("chaos: failing machine %d for decommission: %w", victim, err)
		}
		if err := d.pool.Decommission(victim); err != nil {
			return "", fmt.Errorf("chaos: decommissioning machine %d: %w", victim, err)
		}
		return fmt.Sprintf("t=%5.0fs decommission machine %d", ev.At, victim), nil
	case scenario.KindPriority:
		ct, ok := d.byName[ev.Tenant]
		if !ok {
			return "", fmt.Errorf("chaos: priority change targets unknown tenant %q", ev.Tenant)
		}
		if err := ct.lease.SetPriority(ev.Priority); err != nil {
			return "", fmt.Errorf("chaos: setting %s priority: %w", ev.Tenant, err)
		}
		return fmt.Sprintf("t=%5.0fs priority %s=%d", ev.At, ev.Tenant, ev.Priority), nil
	case scenario.KindSurgeStart, scenario.KindSurgeEnd:
		// Informational: the arrival envelope already carries the rate
		// change; the marker only segments the phase audit.
		return fmt.Sprintf("t=%5.0fs %s %s x%.1f", ev.At, ev.Kind, ev.Tenant, ev.Factor), nil
	default:
		return "", fmt.Errorf("chaos: unknown event kind %v", ev.Kind)
	}
}

// eventLabel is the short per-phase descriptor of one event.
func eventLabel(ev scenario.Event) string {
	switch ev.Kind {
	case scenario.KindFail, scenario.KindRecover, scenario.KindStragglerOn,
		scenario.KindStragglerOff, scenario.KindDecommission:
		return fmt.Sprintf("%s m%d", ev.Kind, ev.Machine)
	case scenario.KindPriority:
		return fmt.Sprintf("priority %s=%d", ev.Tenant, ev.Priority)
	default:
		return fmt.Sprintf("%s %s", ev.Kind, ev.Tenant)
	}
}

// chaosPhases segments [0, duration) at the timeline's event times.
func chaosPhases(events []scenario.Event, duration float64) []ChaosPhase {
	phases := []ChaosPhase{{From: 0, Label: "start"}}
	for i := 0; i < len(events); {
		at := events[i].At
		j := i
		var labels []string
		for j < len(events) && events[j].At == at {
			labels = append(labels, eventLabel(events[j]))
			j++
		}
		i = j
		if at <= 0 || at >= duration {
			continue
		}
		phases[len(phases)-1].Until = at
		phases = append(phases, ChaosPhase{From: at, Label: strings.Join(labels, ", ")})
	}
	phases[len(phases)-1].Until = duration
	return phases
}

// RunChaos replays the canonical everything-at-once scenario
// (scenario.Chaos): the 24-minute arc the golden file locks.
func RunChaos(o Options) (ChaosResult, error) {
	return RunChaosSpec(scenario.Chaos(), o)
}

// RunChaosSpec replays an arbitrary scenario spec against the full stack.
// A non-default Options.Duration scales the whole spec (Spec.Scaled) to
// that horizon — a shorter day, not a gentler one.
func RunChaosSpec(spec scenario.Spec, o Options) (ChaosResult, error) {
	o = o.withDefaults()
	if o.Duration != 600 { // scaled-down run (benchmarks, quick tests)
		spec = spec.Scaled(o.Duration / spec.DurationSeconds)
	}
	tl, err := scenario.Compile(spec)
	if err != nil {
		return ChaosResult{}, err
	}
	duration := spec.DurationSeconds
	enableAt := duration / 8
	res := ChaosResult{Scenario: spec, Tmax: chaosTmax}

	pool, err := cluster.NewPool(cluster.PoolConfig{
		SlotsPerMachine: chaosSlots,
		MaxMachines:     chaosMachines,
		Costs: cluster.CostModel{
			Rebalance:        3 * time.Second,
			MachineColdStart: 4777 * time.Millisecond,
			MachineRelease:   1113 * time.Millisecond,
		},
	}, 1)
	if err != nil {
		return res, err
	}
	clock := &simClock{}
	sched, err := cluster.NewScheduler(cluster.SchedulerConfig{Pool: pool, Clock: clock, DecisionLog: o.DecisionLog})
	if err != nil {
		return res, err
	}
	failures := &loopFailures{}
	interval := 10.0
	driver := &chaosDriver{
		pool: pool, sched: sched,
		byName:      make(map[string]*chaosTenant, len(spec.Tenants)),
		killedOf:    make(map[int]int),
		stragglerOf: make(map[int]int),
	}
	tenants := make([]*chaosTenant, 0, len(spec.Tenants))
	for i, ts := range spec.Tenants {
		lease, err := sched.Register(cluster.TenantConfig{
			Name: ts.Name, Priority: ts.Priority,
			MinSlots: chaosFloor, InitialSlots: chaosInitial,
		})
		if err != nil {
			return res, err
		}
		ct, err := newChaosTenant(tl, ts, lease, clock, failures, interval, o.Seed+uint64(i), o.DecisionLog)
		if err != nil {
			return res, err
		}
		tenants = append(tenants, ct)
		driver.byName[ts.Name] = ct
	}

	events := tl.Events()
	nextEvent := 0
	res.Phases = chaosPhases(events, duration)
	phase := 0
	maxSlots := chaosSlots * chaosMachines
	var lastDropped int64
	for t := interval; t <= duration+1e-9; t += interval {
		for _, ct := range tenants {
			ct.s.RunUntil(t)
		}
		clock.set(t)
		for nextEvent < len(events) && events[nextEvent].At <= t+1e-9 {
			line, err := driver.apply(events[nextEvent])
			nextEvent++
			if err != nil {
				return res, err
			}
			res.Applied = append(res.Applied, line)
		}
		for _, ct := range tenants {
			if t < enableAt {
				ct.sup.Observe()
			} else {
				ct.sup.Tick()
			}
		}
		for phase+1 < len(res.Phases) && t > res.Phases[phase].Until+1e-9 {
			phase++
		}
		ph := &res.Phases[phase]
		ph.Rounds++
		// Replan each tenant's admission exactly as the live gate does: read
		// the supervisor's latest (demand-scaled) snapshot, size the
		// sustainable rate, and thin the source to it.
		var dropped int64
		for _, ct := range tenants {
			c := ct.client
			rate := float64(c.offered-c.lastOffered) / interval
			admittedDelta := c.admitted - c.lastAdmitted
			shedDelta := c.shed - ct.lastShed
			ph.Offered += c.offered - c.lastOffered
			ph.Admitted += admittedDelta
			ph.Shed += shedDelta
			c.lastOffered, c.lastAdmitted, ct.lastShed = c.offered, c.admitted, c.shed
			plan := ingest.Plan{AdmitFraction: 1, SustainableRate: rate, ScaleOutViable: true}
			if snap, ok := ct.sup.LastSnapshot(); ok {
				// The gate's default 10% headroom below the hard target.
				plan = ingest.PlanAdmission(snap, chaosTmax*0.9, maxSlots, rate)
			}
			p := ingest.AdmitPermilles(plan, []float64{c.weight}, []string{c.name}, []float64{rate})
			c.permille = p[0]
			if o.DecisionLog != nil {
				// One auditable record per tenant per round, stamped with
				// simulated time and carrying the round's admitted/shed
				// deltas — the reconcile test sums these per phase against
				// the phase books.
				o.DecisionLog.Emit(&obs.Record{
					At:   simEpoch.Add(secondsToDuration(t)).UnixNano(),
					Kind: obs.KindShedPlan, Tenant: c.name,
					Fraction: plan.AdmitFraction, Rate: plan.SustainableRate,
					Lambda0: rate, Flag: plan.ScaleOutViable,
					Gain: float64(admittedDelta), Loss: float64(shedDelta),
				})
			}
			for _, d := range ct.s.Dropped() {
				dropped += d
			}
		}
		ph.Dropped += dropped - lastDropped
		lastDropped = dropped

		st := sched.State()
		gp := ChaosGrantPoint{AtSeconds: t, Capacity: st.Capacity, Machines: st.Machines}
		for _, ct := range tenants {
			gp.Grants = append(gp.Grants, ct.lease.Kmax())
		}
		res.Grants = append(res.Grants, gp)
		if over := st.Leased - st.Capacity; over > 0 {
			if over > res.MaxLeaseOverCapacity {
				res.MaxLeaseOverCapacity = over
			}
			if over > ph.MaxLeaseOverCapacity {
				ph.MaxLeaseOverCapacity = over
			}
		}
		placed := 0
		badPlacement := false
		for _, row := range st.Placement {
			if row.Reserved+row.Leased > row.Slots {
				badPlacement = true
			}
			placed += row.Leased
		}
		if placed != st.Leased || badPlacement {
			res.PlacementViolations++
			ph.PlacementViolations++
		}
	}
	if err := failures.err(); err != nil {
		return res, fmt.Errorf("experiments: chaos run: %w", err)
	}
	res.SchedulerHistory = sched.History()
	res.FinalState = sched.State()
	for _, ct := range tenants {
		ts := ChaosTenantStats{
			Name: ct.client.name, Weight: ct.client.weight,
			Offered: ct.client.offered, Admitted: ct.client.admitted, Shed: ct.client.shed,
			SimShed:     ct.s.ShedArrivals(),
			SlotsLost:   ct.lease.LostSlots(),
			Series:      ct.s.Series(),
			Transitions: transitionsFrom(ct.sup),
		}
		if ts.Offered > 0 {
			ts.ShedFraction = float64(ts.Shed) / float64(ts.Offered)
		}
		res.Tenants = append(res.Tenants, ts)
		res.ShedTotal += ts.Shed
		res.SimShedTotal += ts.SimShed
		for _, d := range ct.s.Dropped() {
			res.DroppedTuples += d
		}
		res.PendingAtEnd += ct.s.PendingRoots()
	}
	res.BooksAgree = res.ShedTotal == res.SimShedTotal
	return res, nil
}

// Print renders the arc: the resolved event log, the grant and admission
// timelines, each tenant's sojourn curve and transitions, the per-phase
// invariant audit and the scheduler's decision history.
func (r ChaosResult) Print(w io.Writer) {
	header(w, fmt.Sprintf("Chaos: scenario %q, %d tenants over %.0fs; Tmax = %.0f ms",
		r.Scenario.Name, len(r.Tenants), r.Scenario.DurationSeconds, r.Tmax*1e3))
	fmt.Fprintln(w, "timeline (fire-time resolved):")
	for _, line := range r.Applied {
		fmt.Fprintf(w, "  %s\n", line)
	}
	names := make([]string, len(r.Tenants))
	for i, ts := range r.Tenants {
		names[i] = ts.Name
	}
	fmt.Fprintf(w, "grants (%s of capacity), one column per minute:\n  ", strings.Join(names, "/"))
	for i, g := range r.Grants {
		if i%6 != 5 { // 10 s rounds -> print once per minute
			continue
		}
		cols := make([]string, len(g.Grants))
		for j, k := range g.Grants {
			cols[j] = fmt.Sprintf("%d", k)
		}
		fmt.Fprintf(w, "%s:%d ", strings.Join(cols, "/"), g.Capacity)
	}
	fmt.Fprintln(w)
	for i, ts := range r.Tenants {
		fmt.Fprintf(w, "%s E[T] by minute (ms): ", ts.Name)
		for _, pt := range ts.Series {
			if math.IsNaN(pt.MeanSojourn) {
				fmt.Fprint(w, "    - ")
				continue
			}
			fmt.Fprintf(w, "%5.0f ", pt.MeanSojourn*1e3)
		}
		fmt.Fprintln(w)
		for _, tr := range ts.Transitions {
			mark := ""
			switch {
			case tr.SlotsLost:
				mark = " [slots-lost]"
			case tr.Preempted:
				mark = " [preempted]"
			}
			fmt.Fprintf(w, "  %-6s t=%5.0fs %-10s -> %s, Kmax=%d (pause %.1fs)%s: %s\n",
				names[i], tr.AtSeconds, tr.Action, allocString(tr.Alloc), tr.Kmax, tr.PauseSeconds, mark, tr.Reason)
		}
	}
	fmt.Fprintf(w, "%-40s %11s %6s %5s %5s %8s %8s %7s %5s\n",
		"phase", "window", "rounds", "over", "viol", "offered", "admitted", "shed", "drop")
	for _, ph := range r.Phases {
		fmt.Fprintf(w, "%-40s %4.0f-%5.0fs %6d %5d %5d %8d %8d %7d %5d\n",
			ph.Label, ph.From, ph.Until, ph.Rounds, ph.MaxLeaseOverCapacity,
			ph.PlacementViolations, ph.Offered, ph.Admitted, ph.Shed, ph.Dropped)
	}
	fmt.Fprintf(w, "%-8s %7s %10s %10s %10s %7s %6s\n",
		"tenant", "weight", "offered", "admitted", "shed", "shed%", "lost")
	for _, ts := range r.Tenants {
		fmt.Fprintf(w, "%-8s %7.0f %10d %10d %10d %6.1f%% %6d\n",
			ts.Name, ts.Weight, ts.Offered, ts.Admitted, ts.Shed, ts.ShedFraction*100, ts.SlotsLost)
	}
	fmt.Fprintln(w, "scheduler history:")
	for _, ev := range r.SchedulerHistory {
		fmt.Fprintf(w, "  t=%5.0fs %s\n", ev.At.Sub(simEpoch).Seconds(), ev)
	}
	fmt.Fprintf(w, "books agree (gate shed %d == sim shed %d): %v\n",
		r.ShedTotal, r.SimShedTotal, r.BooksAgree)
	fmt.Fprintf(w, "double-leased slots: %d; placement violations: %d; dropped tuples: %d; pending at end: %d\n",
		r.MaxLeaseOverCapacity, r.PlacementViolations, r.DroppedTuples, r.PendingAtEnd)
}
