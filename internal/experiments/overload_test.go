package experiments

import (
	"bytes"
	"testing"
)

// TestOverloadArc runs the closed-loop admission experiment and checks the
// whole front-door story: the surge forces shedding with the supervisor
// still seeing offered demand, the grant scales to the provider cap (a
// partial grant of a beyond-cap request), the Appendix-B guard flags the
// shed as persistent at the cap, shedding lands on the low-weight client,
// and after the surge the gate returns to admit-all with the sojourn back
// under Tmax and no admitted tuple lost.
func TestOverloadArc(t *testing.T) {
	if testing.Short() {
		t.Skip("27 simulated minutes of a supervised topology behind the admission gate")
	}
	r, err := RunOverload(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.ShedDuringSurge {
		t.Fatal("the gate never shed during the surge window")
	}
	if !r.PersistentShedSeen {
		t.Fatal("no plan flagged the shed persistent at the provider cap")
	}
	if !r.AdmitAllRestored {
		t.Fatal("the gate never returned to admit-all after the surge")
	}
	if want := overloadSlots * overloadMachines; r.PeakGrant != want {
		t.Fatalf("peak grant %d, want the %d-slot provider cap", r.PeakGrant, want)
	}
	if !r.FinalUnderTmax {
		t.Fatalf("final E[T] %.0f ms did not re-converge under Tmax %.0f ms",
			r.FinalSojournMillis, r.Tmax*1e3)
	}
	if r.DroppedTuples != 0 {
		t.Fatalf("%d admitted tuples dropped", r.DroppedTuples)
	}
	// Pending trees at the end are in-flight work (≈ λ·E[T] ≈ 3·1.1 ≈ 4);
	// a leak would strand one tree per lost tuple and grow far past it.
	if r.PendingAtEnd > 50 {
		t.Fatalf("%d trees still pending at the end — admitted tuples lost", r.PendingAtEnd)
	}
	var gold, bronze OverloadClientStats
	for _, c := range r.Clients {
		switch c.Name {
		case "gold":
			gold = c
		case "bronze":
			bronze = c
		}
	}
	if gold.ShedFraction > 0.10 {
		t.Fatalf("gold shed %.1f%% — the high-weight client should ride through nearly untouched",
			gold.ShedFraction*100)
	}
	if bronze.ShedFraction < 0.20 {
		t.Fatalf("bronze shed only %.1f%% — the surge's excess should land on the low-weight client",
			bronze.ShedFraction*100)
	}
	if gold.ShedFraction*5 > bronze.ShedFraction {
		t.Fatalf("shedding not weight-ordered: gold %.1f%% vs bronze %.1f%%",
			gold.ShedFraction*100, bronze.ShedFraction*100)
	}
	// The simulator's own refusal count must agree with the clients' books.
	if sum := gold.Shed + bronze.Shed; sum != r.ShedTotal {
		t.Fatalf("shed accounting disagrees: clients %d, simulator %d", sum, r.ShedTotal)
	}
	// Offered demand kept flowing into the measurer while shedding: some
	// mid-surge round must have seen offered well above admitted.
	sawSplit := false
	for _, pt := range r.Points {
		if pt.AtSeconds >= r.StepFrom && pt.AtSeconds < r.StepUntil &&
			pt.OfferedRate > pt.AdmittedRate*1.2 {
			sawSplit = true
			break
		}
	}
	if !sawSplit {
		t.Fatal("no round measured offered load above the admitted rate during the surge")
	}
}

// TestOverloadGoldenOutput locks the overload summary rendering, like the
// contention and churn goldens (regenerate with -update).
func TestOverloadGoldenOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("27 simulated minutes of a supervised topology behind the admission gate")
	}
	r, err := RunOverload(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	golden(t, "overload.golden", buf.Bytes())
}
