package experiments

import (
	"bytes"
	"testing"

	"github.com/drs-repro/drs/internal/scenario"
)

// TestChaosArc runs the canonical everything-at-once scenario and checks
// the whole layered story phase by phase: every timeline event fires, the
// flash-crowd tenant absorbs the shed while the diurnal tenant rides
// through, the machine failure and the priority inversion both leave their
// attribution marks, and no phase of the arc ever double-leases a slot,
// breaks a placement or loses an admitted tuple.
func TestChaosArc(t *testing.T) {
	if testing.Short() {
		t.Skip("24 simulated minutes of two supervised topologies")
	}
	r, err := RunChaos(Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Every scheduled event applied, resolved against the live pool.
	tl, err := scenario.Compile(scenario.Chaos())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(r.Applied), len(tl.Events()); got != want {
		t.Fatalf("applied %d of %d timeline events:\n%v", got, want, r.Applied)
	}

	// The run-wide invariants: nothing double-leased, placed or lost.
	if r.MaxLeaseOverCapacity > 0 {
		t.Fatalf("double-leased slots: %d over capacity", r.MaxLeaseOverCapacity)
	}
	if r.PlacementViolations > 0 {
		t.Fatalf("%d placement violations", r.PlacementViolations)
	}
	if r.DroppedTuples != 0 {
		t.Fatalf("%d admitted tuples dropped", r.DroppedTuples)
	}
	if !r.BooksAgree {
		t.Fatalf("shed ledgers disagree: gate %d vs sim %d", r.ShedTotal, r.SimShedTotal)
	}
	// Pending trees at the end are in-flight work, not losses; a leak would
	// strand one tree per lost tuple and grow far past the ~λ·E[T]
	// in-flight population.
	if r.PendingAtEnd > 50 {
		t.Fatalf("%d trees still pending at the end — tuples lost forever", r.PendingAtEnd)
	}

	// And per phase: the audit must be clean in every segment, not just in
	// aggregate, and the segments must tile the whole horizon.
	var phaseOffered, phaseShed, flashShed int64
	for i, ph := range r.Phases {
		if ph.MaxLeaseOverCapacity > 0 || ph.PlacementViolations > 0 || ph.Dropped != 0 {
			t.Fatalf("phase %q [%g, %g) dirty: over=%d viol=%d drop=%d",
				ph.Label, ph.From, ph.Until, ph.MaxLeaseOverCapacity, ph.PlacementViolations, ph.Dropped)
		}
		if i == 0 && ph.From != 0 {
			t.Fatalf("first phase starts at %g, want 0", ph.From)
		}
		if i > 0 && ph.From != r.Phases[i-1].Until {
			t.Fatalf("phase gap: %q starts at %g, previous ends at %g", ph.Label, ph.From, r.Phases[i-1].Until)
		}
		phaseOffered += ph.Offered
		phaseShed += ph.Shed
		// The flash-crowd window [540, 1080) is where overload, churn,
		// stragglers and the priority inversion all stack.
		if ph.From >= 530 && ph.Until <= 1090 {
			flashShed += ph.Shed
		}
	}
	if last := r.Phases[len(r.Phases)-1]; last.Until != r.Scenario.DurationSeconds {
		t.Fatalf("last phase ends at %g, want %g", last.Until, r.Scenario.DurationSeconds)
	}
	var offered int64
	for _, ts := range r.Tenants {
		offered += ts.Offered
	}
	if phaseOffered != offered || phaseShed != r.ShedTotal {
		t.Fatalf("phase books disagree with tenant books: offered %d vs %d, shed %d vs %d",
			phaseOffered, offered, phaseShed, r.ShedTotal)
	}
	if r.ShedTotal > 0 && float64(flashShed)/float64(r.ShedTotal) < 0.7 {
		t.Fatalf("shed not concentrated in the flash crowd: %d of %d", flashShed, r.ShedTotal)
	}

	// The weighted split: bronze (the flash-crowd tenant) absorbs the shed,
	// gold rides through with a far smaller fraction.
	byName := map[string]ChaosTenantStats{}
	for _, ts := range r.Tenants {
		byName[ts.Name] = ts
	}
	gold, bronze := byName["gold"], byName["bronze"]
	if bronze.ShedFraction < 0.3 {
		t.Fatalf("bronze shed only %.1f%% during an 8x flash crowd", bronze.ShedFraction*100)
	}
	if gold.ShedFraction >= bronze.ShedFraction {
		t.Fatalf("gold shed %.1f%% >= bronze %.1f%%", gold.ShedFraction*100, bronze.ShedFraction*100)
	}

	// Attribution marks: the mid-flash machine kill forces a slots-lost
	// re-fit, the priority inversion a preemption shrink.
	var slotsLost, preempted bool
	var lostTotal int
	for _, ts := range r.Tenants {
		lostTotal += ts.SlotsLost
		for _, tr := range ts.Transitions {
			slotsLost = slotsLost || tr.SlotsLost
			preempted = preempted || tr.Preempted
		}
	}
	if !slotsLost || lostTotal == 0 {
		t.Fatalf("machine failure left no slots-lost attribution (transitions %v, lost %d)", slotsLost, lostTotal)
	}
	if !preempted {
		t.Fatal("priority inversion forced no preemption shrink")
	}

	// Floors hold at every sample, through kill, inversion and decommission.
	for _, g := range r.Grants {
		for i, k := range g.Grants {
			if k < chaosFloor {
				t.Fatalf("tenant %d under floor at t=%.0fs: %+v", i, g.AtSeconds, g)
			}
		}
	}
}

// TestChaosGoldenOutput locks the chaos summary rendering — the scenario
// is seeded and the clock virtual, so the whole arc is reproducible
// byte for byte.
func TestChaosGoldenOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("24 simulated minutes of two supervised topologies")
	}
	r, err := RunChaos(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	golden(t, "chaos.golden", buf.Bytes())
}

// TestChaosScaled pins the scaled-replay contract the quick runs and
// TestRunShortExperiments rely on: a sixth of the horizon still applies
// the full timeline and keeps every invariant.
func TestChaosScaled(t *testing.T) {
	r, err := RunChaos(Options{Duration: 240})
	if err != nil {
		t.Fatal(err)
	}
	if r.Scenario.DurationSeconds != 240 {
		t.Fatalf("scenario not scaled: duration %g", r.Scenario.DurationSeconds)
	}
	if r.MaxLeaseOverCapacity > 0 || r.PlacementViolations > 0 || r.DroppedTuples != 0 {
		t.Fatalf("scaled run dirty: over=%d viol=%d drop=%d",
			r.MaxLeaseOverCapacity, r.PlacementViolations, r.DroppedTuples)
	}
	if !r.BooksAgree {
		t.Fatalf("scaled shed ledgers disagree: gate %d vs sim %d", r.ShedTotal, r.SimShedTotal)
	}
}
