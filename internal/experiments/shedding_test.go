package experiments

import (
	"strings"
	"testing"
)

func TestSheddingStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	r, err := RunShedding(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(r.Runs))
	}
	overloaded, shedding, drs := r.Runs[0], r.Runs[1], r.Runs[2]
	if overloaded.DropRate != 0 {
		t.Errorf("unbounded queues dropped %f", overloaded.DropRate)
	}
	if overloaded.MeanMillis < 3000 {
		t.Errorf("overloaded mean %.0fms should blow up (queues grow for 10 min)", overloaded.MeanMillis)
	}
	if !r.SheddingLosesData {
		t.Errorf("shedding run did not exhibit the trade-off: %+v", shedding)
	}
	if !r.DRSKeepsDataAndLatency {
		t.Errorf("DRS run failed its claim: %+v", drs)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "drop rate") {
		t.Error("printout incomplete")
	}
}
