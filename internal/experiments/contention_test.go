package experiments

import "testing"

// TestContentionArc runs the full two-tenant experiment and checks the
// whole multi-tenant story: the scheduler preempts slots to the
// Tmax-violating high-priority tenant, holds the transfer through the
// surge, hands the slots back after convergence, and never double-leases
// a slot.
func TestContentionArc(t *testing.T) {
	if testing.Short() {
		t.Skip("27 simulated minutes of two supervised topologies")
	}
	r, err := RunContention(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxLeaseOverCapacity > 0 {
		t.Fatalf("double-leased slots: %d over capacity", r.MaxLeaseOverCapacity)
	}
	if r.PreemptedSlots < 1 {
		t.Fatal("no slots were preempted from the steady tenant")
	}
	if r.BurstyPeakGrant <= burstyInitial {
		t.Fatalf("bursty tenant never grew past its initial %d slots (peak %d)",
			burstyInitial, r.BurstyPeakGrant)
	}
	if !r.SteadyRestored {
		t.Fatal("steady tenant's slots were not returned after the surge")
	}
	var preempts, steadyShrinks int
	for _, ev := range r.SchedulerHistory {
		if ev.Kind == "preempt" && ev.Tenant == "steady" {
			preempts++
		}
	}
	for _, tr := range r.TransitionsSteady {
		if tr.Preempted {
			steadyShrinks++
			if tr.AtSeconds < r.StepFrom {
				t.Fatalf("steady preempted before the surge began: %+v", tr)
			}
		}
	}
	if preempts == 0 {
		t.Fatal("scheduler history records no preemption")
	}
	if steadyShrinks == 0 {
		t.Fatal("steady supervisor never vacated preempted slots")
	}
	// The preemption floor must have held for the victim. (A tenant may
	// still scale *itself* below MinSlots — the floor only guards against
	// involuntary shrinks, and steady never volunteers below 8 here.)
	for _, g := range r.Grants {
		if g.Steady < contentionFloor {
			t.Fatalf("steady preempted below its floor at t=%.0fs: %+v", g.AtSeconds, g)
		}
	}
}
