package experiments

import (
	"fmt"
	"io"
)

// Fig6Row is one bar of Figure 6: a resource configuration with the
// measured mean and standard deviation of the total sojourn time.
type Fig6Row struct {
	Alloc       []int
	Recommended bool
	MeanMillis  float64
	StdMillis   float64
}

// Fig6Result is Figure 6 for one application.
type Fig6Result struct {
	App  App
	Rows []Fig6Row
	// BestIsRecommended reports the paper's headline claim: the passively
	// running DRS's recommendation achieves the smallest measured mean.
	BestIsRecommended bool
}

// RunFigure6 measures the six fixed allocations of Fig. 6 with
// re-balancing disabled (each is an independent 10-minute run) and checks
// that DRS's recommendation wins.
func RunFigure6(app App, o Options) (Fig6Result, error) {
	o = o.withDefaults()
	p, err := profileFor(app)
	if err != nil {
		return Fig6Result{}, err
	}
	res := Fig6Result{App: app}
	bestMean, bestIdx := 0.0, -1
	for i, alloc := range p.allocations() {
		mean, std, err := measureAllocation(p, alloc, o)
		if err != nil {
			return Fig6Result{}, err
		}
		row := Fig6Row{
			Alloc:       alloc,
			Recommended: allocEq(alloc, p.recommended),
			MeanMillis:  mean,
			StdMillis:   std,
		}
		res.Rows = append(res.Rows, row)
		if bestIdx < 0 || mean < bestMean {
			bestMean, bestIdx = mean, i
		}
	}
	res.BestIsRecommended = res.Rows[bestIdx].Recommended
	return res, nil
}

// Print renders the figure as a table.
func (r Fig6Result) Print(w io.Writer) {
	header(w, fmt.Sprintf("Figure 6 (%s): measured sojourn time per allocation, re-balancing disabled", r.App))
	fmt.Fprintf(w, "%-12s %12s %12s\n", "allocation", "mean (ms)", "stddev (ms)")
	for _, row := range r.Rows {
		label := allocString(row.Alloc)
		if row.Recommended {
			label += "*"
		}
		fmt.Fprintf(w, "%-12s %12s %12s\n", label, fmtMillis(row.MeanMillis), fmtMillis(row.StdMillis))
	}
	fmt.Fprintf(w, "DRS recommendation achieves the best mean: %v\n", r.BestIsRecommended)
}

func allocEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
