package experiments

import (
	"fmt"
	"io"
	"math"

	"github.com/drs-repro/drs/internal/cluster"
	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/sim"
)

// Fig9Curve is one line of Figure 9: an initial allocation, its per-minute
// mean sojourn series, and the re-scheduling events DRS applied.
type Fig9Curve struct {
	Initial     []int
	Series      []sim.SeriesPoint
	Transitions []Transition
	// FinalAlloc is the allocation in force at the end of the run.
	FinalAlloc []int
}

// Fig9Result is Figure 9 for one application.
type Fig9Result struct {
	App    App
	Tmax   float64 // unused in min-latency mode; kept 0
	Curves []Fig9Curve
	// Converged reports the paper's claim: after re-balancing is enabled
	// every curve ends on the same (optimal) allocation.
	Converged bool
	// Recommended is that allocation.
	Recommended []int
}

// Figure9Initials returns the paper's three initial allocations per app.
func Figure9Initials(app App) [][]int {
	switch app {
	case VLD:
		return [][]int{{8, 12, 2}, {11, 9, 2}, {10, 11, 1}}
	case FPD:
		return [][]int{{8, 12, 2}, {7, 13, 2}, {6, 13, 3}}
	default:
		return nil
	}
}

// RunFigure9 reproduces the re-balancing experiment: 27 minutes per curve,
// with DRS passive for the first 13 minutes and active from minute 14 on
// (Kmax fixed at 22 — Program (4) mode).
func RunFigure9(app App, o Options) (Fig9Result, error) {
	o = o.withDefaults()
	p, err := profileFor(app)
	if err != nil {
		return Fig9Result{}, err
	}
	duration := 27 * 60.0
	enableAt := 13 * 60.0
	if o.Duration != 600 { // scaled-down run (benchmarks)
		duration = o.Duration
		enableAt = duration / 2
	}
	res := Fig9Result{App: app, Recommended: p.recommended, Converged: true}
	for i, initial := range Figure9Initials(app) {
		pool, err := cluster.PaperPool(5)
		if err != nil {
			return Fig9Result{}, err
		}
		s, transitions, err := runControlled(controlLoopConfig{
			profile:  p,
			initial:  initial,
			pool:     pool,
			ctrl:     core.ControllerConfig{Mode: core.ModeMinLatency, Kmax: 22, MinGain: 0.05},
			enableAt: enableAt,
			duration: duration,
			interval: 10,
			seed:     o.Seed + uint64(i),
		})
		if err != nil {
			return Fig9Result{}, err
		}
		curve := Fig9Curve{
			Initial:     initial,
			Series:      s.Series(),
			Transitions: transitions,
			FinalAlloc:  s.Allocation(),
		}
		if !allocEq(curve.FinalAlloc, p.recommended) {
			res.Converged = false
		}
		res.Curves = append(res.Curves, curve)
	}
	return res, nil
}

// Print renders the per-minute series and events.
func (r Fig9Result) Print(w io.Writer) {
	header(w, fmt.Sprintf("Figure 9 (%s): re-balancing disabled until minute 13, enabled from minute 14", r.App))
	for _, c := range r.Curves {
		fmt.Fprintf(w, "\ninitial %s -> final %s\n", allocString(c.Initial), allocString(c.FinalAlloc))
		fmt.Fprint(w, "minute: ")
		for _, pt := range c.Series {
			if math.IsNaN(pt.MeanSojourn) {
				fmt.Fprint(w, "    - ")
				continue
			}
			fmt.Fprintf(w, "%5.0f ", pt.MeanSojourn*1e3)
		}
		fmt.Fprintln(w, " (ms)")
		for _, tr := range c.Transitions {
			fmt.Fprintf(w, "  t=%4.0fs %-10s -> %s (pause %.1fs): %s\n",
				tr.AtSeconds, tr.Action, allocString(tr.Alloc), tr.PauseSeconds, tr.Reason)
		}
	}
	fmt.Fprintf(w, "\nall curves converged to DRS's recommendation %s: %v\n",
		allocString(r.Recommended), r.Converged)
}
