package experiments

import (
	"fmt"
	"io"

	"github.com/drs-repro/drs/internal/apps/vld"
	"github.com/drs-repro/drs/internal/sim"
)

// SheddingRun is one policy's outcome in the overload study.
type SheddingRun struct {
	Policy string
	// Alloc is the processor allocation in force.
	Alloc []int
	// MeanMillis is the mean sojourn of tuples that produced results.
	MeanMillis float64
	// DropRate is dropped tuples / external tuples (0 = every result
	// delivered; the paper's "incorrect results" cost of shedding).
	DropRate float64
}

// SheddingResult compares the three responses to overload the paper's
// introduction contrasts: doing nothing (queues grow without bound), load
// shedding (bounded queues drop tuples — latency contained, results
// wrong), and DRS's answer (provision and place enough processors).
type SheddingResult struct {
	Runs []SheddingRun
	// SheddingLosesData and DRSKeepsDataAndLatency summarize the claims.
	SheddingLosesData      bool
	DRSKeepsDataAndLatency bool
}

// RunShedding drives the VLD profile at an under-provisioned allocation
// with (a) unbounded queues, (b) bounded queues that shed, and (c) the
// allocation DRS would choose with adequate resources.
func RunShedding(o Options) (SheddingResult, error) {
	o = o.withDefaults()
	under := []int{6, 7, 1} // extract needs ~6.9 at peak; queues build
	drsAlloc := vld.RecommendedAllocation()

	runOne := func(policy string, alloc []int, maxQueue int) (SheddingRun, error) {
		cfg, err := vld.SimConfig(alloc, o.Seed)
		if err != nil {
			return SheddingRun{}, err
		}
		cfg.MaxQueue = maxQueue
		s, err := sim.New(cfg)
		if err != nil {
			return SheddingRun{}, err
		}
		s.SetWarmup(o.Warmup)
		s.RunUntil(o.Duration)
		dropped := int64(0)
		for _, d := range s.Dropped() {
			dropped += d
		}
		rep := s.DrainInterval()
		run := SheddingRun{
			Policy:     policy,
			Alloc:      alloc,
			MeanMillis: s.CompletedStats().Mean() * 1e3,
		}
		if rep.ExternalArrivals > 0 {
			run.DropRate = float64(dropped) / float64(rep.ExternalArrivals)
		}
		return run, nil
	}

	var res SheddingResult
	overloaded, err := runOne("overloaded", under, 0)
	if err != nil {
		return SheddingResult{}, err
	}
	shedding, err := runOne("shedding", under, 20)
	if err != nil {
		return SheddingResult{}, err
	}
	drs, err := runOne("drs", drsAlloc, 0)
	if err != nil {
		return SheddingResult{}, err
	}
	res.Runs = []SheddingRun{overloaded, shedding, drs}
	res.SheddingLosesData = shedding.DropRate > 0.01 && shedding.MeanMillis < overloaded.MeanMillis
	res.DRSKeepsDataAndLatency = drs.DropRate == 0 && drs.MeanMillis < overloaded.MeanMillis &&
		drs.MeanMillis < shedding.MeanMillis*3 // latency in the same regime as shedding, with all results
	return res, nil
}

// Print renders the study.
func (r SheddingResult) Print(w io.Writer) {
	header(w, "Overload study: do nothing vs load shedding vs DRS (VLD profile)")
	fmt.Fprintf(w, "%-12s %12s %14s %12s\n", "policy", "alloc", "mean (ms)", "drop rate")
	for _, run := range r.Runs {
		fmt.Fprintf(w, "%-12s %12s %14.0f %11.1f%%\n",
			run.Policy, allocString(run.Alloc), run.MeanMillis, run.DropRate*100)
	}
	fmt.Fprintf(w, "shedding bounds latency only by discarding input: %v\n", r.SheddingLosesData)
	fmt.Fprintf(w, "DRS bounds latency with zero loss:                %v\n", r.DRSKeepsDataAndLatency)
}
