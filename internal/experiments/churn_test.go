package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden files: go test ./internal/experiments -run Golden -update
var update = flag.Bool("update", false, "rewrite the experiment golden files")

// TestChurnArc runs the full machine-failure experiment and checks the
// whole failure-domain story: the kill lands mid-surge, a replacement
// machine is negotiated within the provider cap, grants shrink with
// slots-lost/preemption attribution and both supervisors vacate, the
// tenants re-converge under Tmax while the surge still runs, and the run
// never double-leases a slot, breaks a placement or loses a tuple.
func TestChurnArc(t *testing.T) {
	if testing.Short() {
		t.Skip("27 simulated minutes of two supervised topologies")
	}
	r, err := RunChurn(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.KilledMachines) != churnKillCount {
		t.Fatalf("killed %v, want %d machines down", r.KilledMachines, churnKillCount)
	}
	if r.MaxLeaseOverCapacity > 0 {
		t.Fatalf("double-leased slots: %d over capacity", r.MaxLeaseOverCapacity)
	}
	if r.PlacementViolations > 0 {
		t.Fatalf("%d placement violations", r.PlacementViolations)
	}
	if r.DroppedTuples != 0 {
		t.Fatalf("%d tuples dropped", r.DroppedTuples)
	}
	// Pending trees at the end are in-flight work, not losses; a leak
	// would strand one tree per lost tuple and grow far past the ~λ·E[T]
	// in-flight population (≈ 2·3·1.2 ≈ 7).
	if r.PendingAtEnd > 50 {
		t.Fatalf("%d trees still pending at the end — tuples lost forever", r.PendingAtEnd)
	}
	if !r.ReplacementNegotiated {
		t.Fatal("no replacement machine was negotiated during the outage")
	}
	if r.FailoverShrinks == 0 {
		t.Fatal("no supervisor recorded a SlotsLost re-fit")
	}
	if r.PreemptShrinks == 0 {
		t.Fatal("no supervisor recorded a preemption shrink during the outage")
	}
	if r.SlotsLostSteady+r.SlotsLostBursty == 0 {
		t.Fatal("the scheduler attributed no slots to the machine failures")
	}
	if r.ConvergedAtSeconds <= 0 {
		t.Fatal("tenants never re-converged under Tmax inside the surge window")
	}
	if r.ConvergedAtSeconds >= r.StepUntil {
		t.Fatalf("re-convergence at t=%.0fs is outside the surge window", r.ConvergedAtSeconds)
	}
	// During the outage the floors must hold against capacity: neither
	// grant may drop below the preemption floor.
	for _, g := range r.Grants {
		if g.AtSeconds >= r.KillAt && g.AtSeconds < r.RecoverAt {
			if g.Steady < churnFloor || g.Bursty < churnFloor {
				t.Fatalf("grant under floor during the outage at t=%.0fs: %+v", g.AtSeconds, g)
			}
		}
	}
	// Failover shrinks must land at (or right after) the kill, not before.
	for _, tr := range append(r.TransitionsSteady, r.TransitionsBursty...) {
		if tr.SlotsLost && tr.AtSeconds < r.KillAt {
			t.Fatalf("failover shrink before the kill: %+v", tr)
		}
	}
}

// golden compares rendered experiment output against a checked-in file,
// regenerating it under -update. The renders are deterministic: seeded
// simulations on a virtual clock.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/experiments -run Golden -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from its golden file.\n--- got ---\n%s\n--- want ---\n%s\nRegenerate deliberately with -update.",
			name, got, want)
	}
}

// TestContentionGoldenOutput locks the contention summary rendering — an
// experiment regression (grants, curves, history) shows up as a textual
// diff.
func TestContentionGoldenOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("27 simulated minutes of two supervised topologies")
	}
	r, err := RunContention(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	golden(t, "contention.golden", buf.Bytes())
}

// TestChurnGoldenOutput locks the churn summary rendering the same way.
func TestChurnGoldenOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("27 simulated minutes of two supervised topologies")
	}
	r, err := RunChurn(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	golden(t, "churn.golden", buf.Bytes())
}
