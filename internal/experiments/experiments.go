// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) on top of the simulator substrate. Each RunFigure*/
// RunTable* function returns structured results plus a Print renderer that
// writes the same rows/series the paper plots; cmd/drs-experiments and the
// repository-level benchmarks are thin wrappers around this package.
//
// Absolute numbers differ from the paper (their substrate is a 6-machine
// Storm cluster; ours is a calibrated discrete-event simulation), but the
// shapes are reproduced: which allocation wins, the monotone relation of
// estimates to measurements, the decay of underestimation with CPU share,
// convergence after re-balancing, and the cost asymmetry of scaling out
// versus in. EXPERIMENTS.md records paper-vs-measured side by side.
package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/drs-repro/drs/internal/apps/fpd"
	"github.com/drs-repro/drs/internal/apps/vld"
	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/obs"
	"github.com/drs-repro/drs/internal/sim"
)

// App selects which test application an experiment runs.
type App string

// The two applications of §V-A.
const (
	VLD App = "vld"
	FPD App = "fpd"
)

// appProfile abstracts the two calibrated applications.
type appProfile struct {
	model       func() (*core.Model, error)
	simConfig   func(alloc []int, seed uint64) (sim.Config, error)
	allocations func() [][]int
	recommended []int
	names       []string
}

func profileFor(app App) (appProfile, error) {
	switch app {
	case VLD:
		return appProfile{
			model:       vld.Model,
			simConfig:   vld.SimConfig,
			allocations: vld.Figure6Allocations,
			recommended: vld.RecommendedAllocation(),
			names:       vld.OperatorNames(),
		}, nil
	case FPD:
		return appProfile{
			model:       fpd.Model,
			simConfig:   fpd.SimConfig,
			allocations: fpd.Figure6Allocations,
			recommended: fpd.RecommendedAllocation(),
			names:       fpd.OperatorNames(),
		}, nil
	default:
		return appProfile{}, fmt.Errorf("experiments: unknown app %q", app)
	}
}

// Options tune experiment length; the zero value uses paper-faithful
// durations (10-minute steady-state runs, 27-minute controller runs).
// Benchmarks shrink them to keep iterations fast.
type Options struct {
	// Duration is the steady-state measurement span in simulated seconds
	// (default 600 = 10 minutes, as in Fig. 6).
	Duration float64
	// Warmup discards initial completions (default 60).
	Warmup float64
	// Seed feeds the simulations (default 1).
	Seed uint64
	// DecisionLog, when non-nil, receives every control-plane verdict the
	// run makes — scheduler arbitration and preemptions (with their
	// Appendix-B inputs), per-round shed plans and supervisor re-fits —
	// stamped with simulated time, so a replayed scenario's decisions can
	// be audited against its books. Only the scenario-driven experiments
	// (chaos) emit today.
	DecisionLog *obs.Log
}

func (o Options) withDefaults() Options {
	if o.Duration <= 0 {
		o.Duration = 600
	}
	if o.Warmup < 0 || (o.Warmup == 0 && o.Duration >= 120) {
		o.Warmup = 60
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// allocString renders (x1:x2:x3) like the paper's x-axis labels.
func allocString(k []int) string {
	s := "("
	for i, v := range k {
		if i > 0 {
			s += ":"
		}
		s += fmt.Sprintf("%d", v)
	}
	return s + ")"
}

// measureAllocation runs one steady-state simulation and reports the mean
// and standard deviation of the total sojourn time in milliseconds.
func measureAllocation(p appProfile, alloc []int, o Options) (mean, stddev float64, err error) {
	cfg, err := p.simConfig(alloc, o.Seed)
	if err != nil {
		return 0, 0, err
	}
	s, err := sim.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	s.SetWarmup(o.Warmup)
	s.RunUntil(o.Duration)
	cs := s.CompletedStats()
	if cs.Count() == 0 {
		return 0, 0, fmt.Errorf("experiments: no completions for %v", alloc)
	}
	return cs.Mean() * 1e3, cs.StdDev() * 1e3, nil
}

// fmtMillis renders a millisecond quantity compactly.
func fmtMillis(ms float64) string {
	if ms >= 100 {
		return fmt.Sprintf("%.0f", ms)
	}
	return fmt.Sprintf("%.1f", ms)
}

// secondsToDuration converts simulated seconds to a duration.
func secondsToDuration(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}

// header writes a section banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n", title)
	for range title {
		fmt.Fprint(w, "-")
	}
	fmt.Fprintln(w)
}
