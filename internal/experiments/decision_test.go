package experiments

import (
	"sort"
	"testing"

	"github.com/drs-repro/drs/internal/cluster"
	"github.com/drs-repro/drs/internal/obs"
	"github.com/drs-repro/drs/internal/scenario"
)

// TestChaosDecisionLogReconciles replays the canonical chaos arc with the
// decision log attached and audits the log against the run's own books —
// the acceptance gate for the observable control plane:
//
//   - every preemption in the scheduler history has exactly one decision
//     record, same victim, same grant change, same instant, same pause,
//     and that record carries the full Appendix-B verdict inputs (claimant
//     benefit, victim shrink cost, both arrival rates);
//   - every control round left one shed-plan record per tenant, and the
//     per-phase sums of their admitted/shed deltas equal the phase books
//     the golden file locks;
//   - nothing was thinned or dropped on the way.
func TestChaosDecisionLogReconciles(t *testing.T) {
	dlog := obs.NewLog(obs.Config{Shards: 4, ShardCapacity: 8192})
	defer dlog.Close()
	res, err := RunChaosSpec(scenario.Chaos(), Options{DecisionLog: dlog})
	if err != nil {
		t.Fatal(err)
	}
	if st := dlog.Stats(); st.Thinned != 0 || st.Dropped != 0 {
		t.Fatalf("decision log lost records: thinned %d, dropped %d", st.Thinned, st.Dropped)
	}
	var preempts, sheds []obs.Record
	dlog.Sweep(func(r *obs.Record) {
		switch r.Kind {
		case obs.KindPreempt:
			preempts = append(preempts, *r)
		case obs.KindShedPlan:
			sheds = append(sheds, *r)
		}
	})

	// Preemption records reconcile 1:1 with the scheduler history, and
	// each carries its verdict inputs.
	var histPre []cluster.SchedulerEvent
	for _, ev := range res.SchedulerHistory {
		if ev.Kind == "preempt" {
			histPre = append(histPre, ev)
		}
	}
	if len(histPre) == 0 {
		t.Fatal("chaos arc preempted nothing; the reconcile test needs a contended scenario")
	}
	if len(preempts) != len(histPre) {
		t.Fatalf("preempt records %d != history preempt events %d", len(preempts), len(histPre))
	}
	used := make([]bool, len(histPre))
	for _, r := range preempts {
		matched := false
		for i, ev := range histPre {
			if !used[i] && ev.Tenant == r.Peer && ev.From == r.From && ev.To == r.To &&
				ev.At.UnixNano() == r.At && ev.Pause.Nanoseconds() == r.PauseNS {
				used[i] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("preempt record %+v matches no history event", r)
		}
		if r.Tenant == "" || r.Peer == "" || r.Tenant == r.Peer {
			t.Errorf("preempt record wants distinct claimant and victim, got %q -> %q", r.Tenant, r.Peer)
		}
		if r.From <= r.To {
			t.Errorf("preempt of %s did not shrink the victim: %d -> %d", r.Peer, r.From, r.To)
		}
		if r.PauseNS <= 0 {
			t.Errorf("preempt of %s carries no rebalance pause", r.Peer)
		}
		if r.Lambda0 <= 0 || r.PeerLambda0 <= 0 {
			t.Errorf("preempt of %s lost its Appendix-B arrival rates: claimant %.3f, victim %.3f",
				r.Peer, r.Lambda0, r.PeerLambda0)
		}
	}

	// Shed-plan records: one per tenant per round, and their per-phase
	// admitted/shed delta sums equal the phase books.
	sort.Slice(sheds, func(i, j int) bool { return sheds[i].At < sheds[j].At })
	counts := make([]int, len(res.Phases))
	admitted := make([]int64, len(res.Phases))
	shed := make([]int64, len(res.Phases))
	phase := 0
	for _, r := range sheds {
		at := float64(r.At) / 1e9 // simEpoch is unix zero: At is simulated seconds
		for phase+1 < len(res.Phases) && at > res.Phases[phase].Until+1e-9 {
			phase++
		}
		counts[phase]++
		admitted[phase] += int64(r.Gain)
		shed[phase] += int64(r.Loss)
	}
	nTenants := len(res.Tenants)
	for i, ph := range res.Phases {
		if counts[i] != ph.Rounds*nTenants {
			t.Errorf("phase %q: %d shed-plan records, want rounds %d x tenants %d",
				ph.Label, counts[i], ph.Rounds, nTenants)
		}
		if admitted[i] != ph.Admitted {
			t.Errorf("phase %q: admitted by decision log %d != phase book %d", ph.Label, admitted[i], ph.Admitted)
		}
		if shed[i] != ph.Shed {
			t.Errorf("phase %q: shed by decision log %d != phase book %d", ph.Label, shed[i], ph.Shed)
		}
	}
}
