package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/sim"
)

func TestProfileForUnknownApp(t *testing.T) {
	if _, err := profileFor(App("nope")); err == nil {
		t.Error("unknown app should error")
	}
	if _, err := RunFigure6(App("nope"), Options{}); err == nil {
		t.Error("RunFigure6 with unknown app should error")
	}
	if _, err := RunFigure7(App("nope"), Options{}); err == nil {
		t.Error("RunFigure7 with unknown app should error")
	}
	if _, err := RunFigure10(Fig10Experiment("x"), Options{}); err == nil {
		t.Error("unknown Fig. 10 experiment should error")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Duration != 600 || o.Warmup != 60 || o.Seed != 1 {
		t.Errorf("defaults = %+v", o)
	}
	o = Options{Duration: 100, Seed: 9}.withDefaults()
	if o.Duration != 100 || o.Seed != 9 {
		t.Errorf("overrides lost: %+v", o)
	}
}

func TestAllocString(t *testing.T) {
	if got := allocString([]int{10, 11, 1}); got != "(10:11:1)" {
		t.Errorf("allocString = %q", got)
	}
}

func TestFigure6VLD(t *testing.T) {
	if testing.Short() {
		t.Skip("full 10-minute-per-allocation simulation")
	}
	r, err := RunFigure6(VLD, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(r.Rows))
	}
	if !r.BestIsRecommended {
		t.Errorf("starred allocation did not win: %+v", r.Rows)
	}
	// The paper's second observation: the recommendation also has the
	// smallest standard deviation (least oscillation).
	var starred Fig6Row
	minStd := math.Inf(1)
	for _, row := range r.Rows {
		if row.Recommended {
			starred = row
		}
		if row.StdMillis < minStd {
			minStd = row.StdMillis
		}
	}
	if starred.StdMillis > minStd*1.05 {
		t.Errorf("starred stddev %.1f not within 5%% of best %.1f", starred.StdMillis, minStd)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "(10:11:1)*") {
		t.Errorf("printout missing starred allocation:\n%s", sb.String())
	}
}

func TestFigure6FPD(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation")
	}
	r, err := RunFigure6(FPD, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.BestIsRecommended {
		t.Errorf("starred allocation did not win: %+v", r.Rows)
	}
}

func TestFigure7BothApps(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation")
	}
	for _, app := range []App{VLD, FPD} {
		r, err := RunFigure7(app, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Spearman < 0.8 {
			t.Errorf("%s: Spearman %.3f, want >= 0.8 (ordering mostly preserved)", app, r.Spearman)
		}
		if r.MeanRatio <= 1 {
			t.Errorf("%s: mean measured/estimated %.2f, want > 1 (model never overestimates here)", app, r.MeanRatio)
		}
		switch app {
		case VLD:
			if r.MeanRatio > 1.4 {
				t.Errorf("VLD ratio %.2f too large: should be computation-dominated", r.MeanRatio)
			}
		case FPD:
			if r.MeanRatio < 2.5 {
				t.Errorf("FPD ratio %.2f too small: should be network-dominated", r.MeanRatio)
			}
		}
		var sb strings.Builder
		r.Print(&sb)
		if !strings.Contains(sb.String(), "Spearman") {
			t.Error("printout missing correlation summary")
		}
	}
}

func TestFigure7OrderingSeparatesApps(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation")
	}
	vldRes, err := RunFigure7(VLD, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fpdRes, err := RunFigure7(FPD, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fpdRes.MeanRatio <= vldRes.MeanRatio*1.5 {
		t.Errorf("FPD underestimation (%.2fx) should far exceed VLD's (%.2fx)",
			fpdRes.MeanRatio, vldRes.MeanRatio)
	}
}

func TestFigure8(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	r, err := RunFigure8(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 6 {
		t.Fatalf("points = %d, want 6", len(r.Points))
	}
	if r.Points[0].Ratio < 20 {
		t.Errorf("lightest-workload ratio %.1f, want tens (paper shows ~60-100)", r.Points[0].Ratio)
	}
	last := r.Points[len(r.Points)-1].Ratio
	if last > 1.5 {
		t.Errorf("heaviest-workload ratio %.2f, want near 1", last)
	}
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Ratio >= r.Points[i-1].Ratio {
			t.Errorf("ratio not decreasing: %+v", r.Points)
		}
	}
}

func TestFigure9VLDConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("27-minute controller simulation")
	}
	r, err := RunFigure9(VLD, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 3 {
		t.Fatalf("curves = %d, want 3", len(r.Curves))
	}
	if !r.Converged {
		t.Fatalf("not all curves converged to %v", r.Recommended)
	}
	for _, c := range r.Curves {
		optimalStart := allocEq(c.Initial, r.Recommended)
		if optimalStart && len(c.Transitions) != 0 {
			t.Errorf("optimal initial %v should never rebalance; got %d transitions",
				c.Initial, len(c.Transitions))
		}
		if !optimalStart && len(c.Transitions) == 0 {
			t.Errorf("non-optimal initial %v never rebalanced", c.Initial)
		}
		for _, tr := range c.Transitions {
			if tr.AtSeconds < 13*60 {
				t.Errorf("transition at %.0fs while re-balancing was disabled", tr.AtSeconds)
			}
		}
	}
	// The paper's claim: after re-balancing, the formerly-bad curves drop.
	for _, c := range r.Curves {
		if allocEq(c.Initial, r.Recommended) || len(c.Transitions) == 0 {
			continue
		}
		before := meanSeries(c.Series, 5*60, 13*60)
		after := meanSeries(c.Series, 17*60, 27*60)
		if !(after < before) {
			t.Errorf("initial %v: sojourn did not improve after re-balancing (%.0fms -> %.0fms)",
				c.Initial, before*1e3, after*1e3)
		}
	}
}

func TestFigure9FPDConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("27-minute controller simulation")
	}
	r, err := RunFigure9(FPD, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatalf("not all FPD curves converged to %v", r.Recommended)
	}
}

func meanSeries(series []sim.SeriesPoint, fromSec, toSec float64) float64 {
	sum, n := 0.0, 0
	for _, pt := range series {
		if pt.Start >= fromSec && pt.Start < toSec && !math.IsNaN(pt.MeanSojourn) {
			sum += pt.MeanSojourn
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

func TestFigure10ExpA(t *testing.T) {
	if testing.Short() {
		t.Skip("27-minute controller simulation")
	}
	r, err := RunFigure10(ExpA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.FinalMachines != 5 || r.FinalKmax != 22 {
		t.Errorf("final pool = %d machines / Kmax %d, want 5 / 22", r.FinalMachines, r.FinalKmax)
	}
	if !allocEq(r.FinalAlloc, []int{10, 11, 1}) {
		t.Errorf("final alloc = %v, want (10:11:1)", r.FinalAlloc)
	}
	if !r.MeetsTargetAfter {
		t.Error("steady state after scale-out violates Tmax")
	}
	if len(r.Transitions) == 0 || len(r.Transitions) > 4 {
		t.Errorf("transition count = %d, want a small number (no flapping)", len(r.Transitions))
	}
	sawScaleOut := false
	for _, tr := range r.Transitions {
		if tr.Action == core.ActionScaleOut {
			sawScaleOut = true
		}
		if tr.Action == core.ActionScaleIn {
			t.Error("ExpA should never scale in")
		}
	}
	if !sawScaleOut {
		t.Error("ExpA never scaled out")
	}
}

func TestFigure10ExpB(t *testing.T) {
	if testing.Short() {
		t.Skip("27-minute controller simulation")
	}
	r, err := RunFigure10(ExpB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.FinalMachines != 4 || r.FinalKmax != 17 {
		t.Errorf("final pool = %d machines / Kmax %d, want 4 / 17", r.FinalMachines, r.FinalKmax)
	}
	if !allocEq(r.FinalAlloc, []int{8, 8, 1}) {
		t.Errorf("final alloc = %v, want (8:8:1)", r.FinalAlloc)
	}
	if !r.MeetsTargetAfter {
		t.Error("steady state after scale-in violates Tmax")
	}
	if len(r.Transitions) == 0 || len(r.Transitions) > 4 {
		t.Errorf("transition count = %d, want a small number (no flapping)", len(r.Transitions))
	}
	for _, tr := range r.Transitions {
		if tr.Action == core.ActionScaleOut {
			t.Error("ExpB should never scale out")
		}
	}
}

func TestTable2(t *testing.T) {
	r, err := RunTable2(500)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(r.Rows))
	}
	// Scheduling cost must grow with Kmax (the paper reports ~linear).
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if last.SchedulingMillis <= first.SchedulingMillis {
		t.Errorf("scheduling cost not increasing: %v -> %v", first.SchedulingMillis, last.SchedulingMillis)
	}
	// And stay sub-millisecond-ish per call, as in Table II.
	if last.SchedulingMillis > 5 {
		t.Errorf("scheduling at Kmax=192 costs %.3fms, want well under 5ms", last.SchedulingMillis)
	}
	// Measurement processing is independent of Kmax.
	if last.MeasurementMillis > 10*first.MeasurementMillis+0.05 {
		t.Errorf("measurement cost should be flat: %.4f vs %.4f", first.MeasurementMillis, last.MeasurementMillis)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "Scheduling") {
		t.Error("printout missing rows")
	}
}

func TestBaselineComparisonVLD(t *testing.T) {
	if testing.Short() {
		t.Skip("controller simulation")
	}
	r, err := RunBaseline(VLD, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(r.Runs))
	}
	drs, base := r.Runs[0], r.Runs[1]
	if !allocEq(drs.FinalAlloc, []int{10, 11, 1}) {
		t.Errorf("DRS final alloc = %v, want (10:11:1)", drs.FinalAlloc)
	}
	if drs.Reconfigurations != 1 {
		t.Errorf("DRS needed %d reconfigurations, want exactly 1 (one-shot)", drs.Reconfigurations)
	}
	if drs.SteadyMeanMillis > base.SteadyMeanMillis*1.02 {
		t.Errorf("DRS steady %.1fms worse than threshold baseline %.1fms",
			drs.SteadyMeanMillis, base.SteadyMeanMillis)
	}
	if !r.DRSWins {
		t.Errorf("DRSWins = false: %+v", r.Runs)
	}
}

func TestBaselineThresholdBlindToFPDMisallocation(t *testing.T) {
	if testing.Short() {
		t.Skip("controller simulation")
	}
	// The instructive case: at (8:12:2) all FPD utilizations are in-band,
	// so the reactive policy never acts — yet DRS finds a strictly better
	// allocation. Balanced utilization is not minimal latency.
	r, err := RunBaseline(FPD, Options{})
	if err != nil {
		t.Fatal(err)
	}
	drs, base := r.Runs[0], r.Runs[1]
	if base.Reconfigurations != 0 {
		t.Logf("threshold policy acted %d times (still acceptable)", base.Reconfigurations)
	}
	if !allocEq(drs.FinalAlloc, []int{6, 13, 3}) {
		t.Errorf("DRS final alloc = %v, want (6:13:3)", drs.FinalAlloc)
	}
	if drs.SteadyMeanMillis >= base.SteadyMeanMillis {
		t.Errorf("DRS steady %.1fms not better than blind baseline %.1fms",
			drs.SteadyMeanMillis, base.SteadyMeanMillis)
	}
}

func TestFigure6VLDRobustAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed simulation")
	}
	// The headline claim must not depend on the seed: the starred
	// allocation wins Fig. 6 (VLD) for several independent runs.
	for _, seed := range []uint64{2, 3, 5} {
		r, err := RunFigure6(VLD, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !r.BestIsRecommended {
			t.Errorf("seed %d: starred allocation did not win: %+v", seed, r.Rows)
		}
	}
}
