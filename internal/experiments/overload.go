package experiments

import (
	"fmt"
	"io"
	"log/slog"
	"math"
	"time"

	"github.com/drs-repro/drs/internal/cluster"
	"github.com/drs-repro/drs/internal/core"
	"github.com/drs-repro/drs/internal/ingest"
	"github.com/drs-repro/drs/internal/loop"
	"github.com/drs-repro/drs/internal/sim"
	"github.com/drs-repro/drs/internal/stats"
)

// The overload experiment: the shedding study (`drs-experiments shedding`)
// made closed-loop. Where that study compares three *static* responses to
// overload, this one runs the live control stack end to end in virtual
// time: two clients offer traffic through the DRS admission policy
// (ingest.PlanAdmission — the same code the network gate runs), the
// admitted stream feeds a supervised two-stage tenant, and the
// offered-vs-admitted split flows through the interval reports so the
// Supervisor provisions against *true demand* rather than the post-shed
// remainder.
//
// Both stages serve µ = 2/s per processor under Tmax = 1.5 s on 4-slot
// machines with a 4-machine provider cap (16 slots):
//
//   - "gold" (weight 4) offers a steady 2/s.
//   - "bronze" (weight 1) offers 1/s, stepped ×16 to 16/s mid-run.
//
// At the 18/s peak Program (6) wants 22 slots — beyond the cap, so the
// Appendix-B guard says scale-out cannot fully pay off and the shed is
// persistent: the gate admits what 16 slots hold under Tmax (≈13/s,
// (8:8)) and sheds the rest lowest-weight-first, so bronze absorbs
// essentially all of it while gold rides through untouched.
//
// Expected arc: settle at 6 slots → surge: predicted sojourn at offered
// demand blows through Tmax, the supervisor scales to the 16-slot cap
// (partial grant of its 22-slot request) while the gate sheds the excess
// with explicit backpressure → at the cap, shedding stabilizes at the
// sustainable rate — bounded latency for everything admitted, demand
// still measured in full — → surge ends: the gate returns to admit-all,
// the supervisor scales back in, and the run ends converged under Tmax
// with zero admitted tuples lost.
const (
	overloadTmax       = 1.5  // the latency target, seconds
	overloadSlack      = 0.3  // scale-in slack (wide: hold the settled size against noise)
	overloadMu         = 2.0  // per-processor service rate, both stages
	overloadGoldRate   = 2.0  // gold's offered rate throughout
	overloadBronzeRate = 1.0  // bronze's offered rate outside the surge
	overloadStepFactor = 16.0 // bronze's rate multiplier inside the surge
	overloadSlots      = 4    // slots per machine
	overloadMachines   = 4    // provider cap: 16 slots
	overloadInitial    = 6    // registration grant, (3:3)
	goldWeight         = 4.0  // gold sheds last
	bronzeWeight       = 1.0
)

// overloadClient is one virtual-time traffic source behind the admission
// gate: the sim source's Admit hook applies the live gate's thinning
// verdict (ingest.ThinAdmit), driven by the per-round plan.
type overloadClient struct {
	name     string
	weight   float64
	seq      uint64
	permille uint32
	offered  int64
	admitted int64
	shed     int64
	// lastOffered / lastAdmitted are the previous replan round's readings.
	lastOffered, lastAdmitted int64
}

// admit is the sim-side twin of ingest's Offer fast path: the same
// thinning verdict, minus the network.
func (c *overloadClient) admit(float64) bool {
	c.offered++
	if p := c.permille; p < 1000 {
		c.seq++
		if !ingest.ThinAdmit(c.seq, p) {
			c.shed++
			return false
		}
	}
	c.admitted++
	return true
}

// OverloadPoint samples the front door once per control round.
type OverloadPoint struct {
	// AtSeconds is the simulated time of the sample.
	AtSeconds float64
	// OfferedRate and AdmittedRate are tuples/s over the round.
	OfferedRate, AdmittedRate float64
	// AdmitFraction is the plan in force for the next round.
	AdmitFraction float64
	// ScaleOutViable is the Appendix-B guard verdict of that plan.
	ScaleOutViable bool
	// Grant and Capacity are the tenant's slots and the pool's total.
	Grant, Capacity int
}

// OverloadClientStats summarizes one client's run.
type OverloadClientStats struct {
	// Name and Weight identify the client.
	Name   string
	Weight float64
	// Offered, Admitted and Shed are cumulative record counts.
	Offered, Admitted, Shed int64
	// ShedFraction is Shed/Offered.
	ShedFraction float64
}

// OverloadResult carries the full arc of the admission-controlled run.
type OverloadResult struct {
	// Tmax is the latency target.
	Tmax float64
	// StepFrom and StepUntil bound bronze's surge window.
	StepFrom, StepUntil float64
	// Series is the per-minute sojourn curve of admitted tuples.
	Series []sim.SeriesPoint
	// Points samples the front door once per control round.
	Points []OverloadPoint
	// Transitions are the supervisor's applied decisions.
	Transitions []Transition
	// Clients summarizes gold and bronze.
	Clients []OverloadClientStats
	// PeakGrant is the largest grant the tenant held (the cap, if the
	// scale-out completed).
	PeakGrant int
	// ShedDuringSurge reports whether the gate shed inside the window.
	ShedDuringSurge bool
	// PersistentShedSeen reports a round whose plan found scale-out
	// non-viable (the cap cannot absorb offered demand) while shedding.
	PersistentShedSeen bool
	// AdmitAllRestored reports the plan returning to admit-everything
	// after the surge window closed.
	AdmitAllRestored bool
	// FinalSojournMillis is the last series bucket with data, and
	// FinalUnderTmax whether it is back under the target.
	FinalSojournMillis float64
	FinalUnderTmax     bool
	// DroppedTuples and PendingAtEnd audit the zero-admitted-loss claim:
	// queue drops (none — queues are unbounded; overload is handled at the
	// door) and processing trees unresolved at the end.
	DroppedTuples, PendingAtEnd int64
	// ShedTotal is the simulator's own count of gate-refused arrivals; it
	// must equal the clients' Shed sum (the two books agree).
	ShedTotal int64
}

// RunOverload runs the admission-control experiment: 27 simulated minutes,
// controller enabled from minute 3, bronze surging ×16 between minutes 9
// and 18.
func RunOverload(o Options) (OverloadResult, error) {
	o = o.withDefaults()
	duration := 27 * 60.0
	enableAt := 3 * 60.0
	stepFrom, stepUntil := 9*60.0, 18*60.0
	if o.Duration != 600 { // scaled-down run (benchmarks, quick tests)
		duration = o.Duration
		enableAt = duration / 9
		stepFrom, stepUntil = duration/3, 2*duration/3
	}
	res := OverloadResult{Tmax: overloadTmax, StepFrom: stepFrom, StepUntil: stepUntil}

	gold := &overloadClient{name: "gold", weight: goldWeight, permille: 1000}
	bronze := &overloadClient{name: "bronze", weight: bronzeWeight, permille: 1000}
	emit, err := sim.NewFractionalEmission(1)
	if err != nil {
		return res, err
	}
	cfg := sim.Config{
		Operators: []sim.OperatorSpec{
			{Name: "stage1", Service: stats.Exponential{Rate: overloadMu}},
			{Name: "stage2", Service: stats.Exponential{Rate: overloadMu}},
		},
		Sources: []sim.SourceSpec{
			{Op: 0, Arrivals: sim.PoissonArrivals{Rate: overloadGoldRate}, Admit: gold.admit},
			{Op: 0, Arrivals: &sim.SteppedRate{
				Base:   sim.PoissonArrivals{Rate: overloadBronzeRate},
				Factor: overloadStepFactor, From: stepFrom, Until: stepUntil,
			}, Admit: bronze.admit},
		},
		Edges: []sim.EdgeSpec{{From: 0, To: 1, Emit: emit}},
		Alloc: []int{3, 3},
		Seed:  o.Seed,
	}
	s, err := sim.New(cfg)
	if err != nil {
		return res, err
	}
	s.EnableSeries(60)

	pool, err := cluster.NewPool(cluster.PoolConfig{
		SlotsPerMachine: overloadSlots,
		MaxMachines:     overloadMachines,
		Costs: cluster.CostModel{
			Rebalance:        3 * time.Second,
			MachineColdStart: 4777 * time.Millisecond,
			MachineRelease:   1113 * time.Millisecond,
		},
	}, 1)
	if err != nil {
		return res, err
	}
	clock := &simClock{}
	sched, err := cluster.NewScheduler(cluster.SchedulerConfig{Pool: pool, Clock: clock})
	if err != nil {
		return res, err
	}
	lease, err := sched.Register(cluster.TenantConfig{
		Name: "front", MinSlots: 2, InitialSlots: overloadInitial,
	})
	if err != nil {
		return res, err
	}
	names := []string{"stage1", "stage2"}
	ctrl, err := core.NewController(core.ControllerConfig{
		Mode:                  core.ModeMinResource,
		Tmax:                  overloadTmax,
		MinGain:               0.05,
		ScaleInSlack:          overloadSlack,
		MaxScaleInUtilization: 0.6,
	})
	if err != nil {
		return res, err
	}
	failures := &loopFailures{}
	interval := 10.0
	sup, err := loop.New(loop.Config{
		Target:    simTarget{s: s, names: names},
		Operators: names,
		Stepper:   ctrl,
		Pool:      lease,
		Interval:  secondsToDuration(interval),
		Cooldown:  secondsToDuration(4 * interval),
		Clock:     clock,
		Logger:    slog.New(failures),
	})
	if err != nil {
		return res, err
	}

	maxSlots := overloadSlots * overloadMachines
	clients := []*overloadClient{gold, bronze}
	for t := interval; t <= duration+1e-9; t += interval {
		s.RunUntil(t)
		clock.set(t)
		if t < enableAt {
			sup.Observe()
		} else {
			sup.Tick()
		}
		// Replan admission exactly as the live gate does each round: read
		// the supervisor's latest (demand-scaled) snapshot, size the
		// sustainable rate for the grant, and split it by client weight.
		offeredRate, admittedRate := 0.0, 0.0
		rates := make([]float64, len(clients))
		for i, c := range clients {
			rates[i] = float64(c.offered-c.lastOffered) / interval
			offeredRate += rates[i]
			admittedRate += float64(c.admitted-c.lastAdmitted) / interval
			c.lastOffered, c.lastAdmitted = c.offered, c.admitted
		}
		plan := ingest.Plan{AdmitFraction: 1, SustainableRate: offeredRate, ScaleOutViable: true}
		if snap, ok := sup.LastSnapshot(); ok {
			// The gate's default 10% headroom: plan against a tightened
			// target so the admitted traffic keeps a noise margin below
			// the hard limit.
			plan = ingest.PlanAdmission(snap, overloadTmax*0.9, maxSlots, offeredRate)
		}
		weights := make([]float64, len(clients))
		ids := make([]string, len(clients))
		for i, c := range clients {
			weights[i], ids[i] = c.weight, c.name
		}
		for i, p := range ingest.AdmitPermilles(plan, weights, ids, rates) {
			clients[i].permille = p
		}
		pt := OverloadPoint{
			AtSeconds:      t,
			OfferedRate:    offeredRate,
			AdmittedRate:   admittedRate,
			AdmitFraction:  plan.AdmitFraction,
			ScaleOutViable: plan.ScaleOutViable,
			Grant:          lease.Kmax(),
			Capacity:       sched.State().Capacity,
		}
		res.Points = append(res.Points, pt)
		if pt.Grant > res.PeakGrant {
			res.PeakGrant = pt.Grant
		}
		if t >= stepFrom && t < stepUntil && plan.AdmitFraction < 1 {
			res.ShedDuringSurge = true
			if !plan.ScaleOutViable {
				res.PersistentShedSeen = true
			}
		}
		if t >= stepUntil && plan.AdmitFraction >= 1 {
			res.AdmitAllRestored = true
		}
	}
	if err := failures.err(); err != nil {
		return res, fmt.Errorf("experiments: overload run: %w", err)
	}
	res.Series = s.Series()
	res.Transitions = transitionsFrom(sup)
	for _, c := range clients {
		cs := OverloadClientStats{Name: c.name, Weight: c.weight,
			Offered: c.offered, Admitted: c.admitted, Shed: c.shed}
		if c.offered > 0 {
			cs.ShedFraction = float64(c.shed) / float64(c.offered)
		}
		res.Clients = append(res.Clients, cs)
		res.ShedTotal += c.shed
	}
	for _, d := range s.Dropped() {
		res.DroppedTuples += d
	}
	res.PendingAtEnd = s.PendingRoots()
	for _, pt := range res.Series {
		if !math.IsNaN(pt.MeanSojourn) {
			res.FinalSojournMillis = pt.MeanSojourn * 1e3
		}
	}
	res.FinalUnderTmax = res.FinalSojournMillis > 0 && res.FinalSojournMillis <= overloadTmax*1e3
	return res, nil
}

// Print renders the arc: the offered/admitted/grant timeline, the sojourn
// curve of admitted tuples, the client split and the supervisor's
// transitions.
func (r OverloadResult) Print(w io.Writer) {
	header(w, fmt.Sprintf("Overload, closed-loop: ingest admission in front of one supervised tenant; Tmax = %.0f ms, bronze x%.0f during [%.0fs, %.0fs)",
		r.Tmax*1e3, overloadStepFactor, r.StepFrom, r.StepUntil))
	row := func(name string, f func(OverloadPoint) string) {
		fmt.Fprintf(w, "%-22s", name)
		for i, pt := range r.Points {
			if i%6 != 5 { // 10 s rounds -> one column per minute
				continue
			}
			fmt.Fprintf(w, "%7s", f(pt))
		}
		fmt.Fprintln(w)
	}
	row("offered (tuples/s)", func(p OverloadPoint) string { return fmt.Sprintf("%.1f", p.OfferedRate) })
	row("admitted (tuples/s)", func(p OverloadPoint) string { return fmt.Sprintf("%.1f", p.AdmittedRate) })
	row("admit fraction", func(p OverloadPoint) string { return fmt.Sprintf("%.2f", p.AdmitFraction) })
	row("grant (slots)", func(p OverloadPoint) string { return fmt.Sprintf("%d/%d", p.Grant, p.Capacity) })
	fmt.Fprint(w, "admitted E[T] by minute (ms): ")
	for _, pt := range r.Series {
		if math.IsNaN(pt.MeanSojourn) {
			fmt.Fprint(w, "    - ")
			continue
		}
		fmt.Fprintf(w, "%5.0f ", pt.MeanSojourn*1e3)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-8s %7s %10s %10s %10s %7s\n", "client", "weight", "offered", "admitted", "shed", "shed%")
	for _, c := range r.Clients {
		fmt.Fprintf(w, "%-8s %7.0f %10d %10d %10d %6.1f%%\n",
			c.Name, c.Weight, c.Offered, c.Admitted, c.Shed, c.ShedFraction*100)
	}
	fmt.Fprintln(w, "supervisor transitions:")
	for _, tr := range r.Transitions {
		kind := ""
		if tr.Preempted {
			kind = " [preempted]"
		}
		fmt.Fprintf(w, "  t=%5.0fs %-9s -> %v Kmax=%d pause=%.1fs%s (%s)\n",
			tr.AtSeconds, tr.Action, tr.Alloc, tr.Kmax, tr.PauseSeconds, kind, tr.Reason)
	}
	fmt.Fprintf(w, "shed during surge: %v (persistent at the cap: %v); admit-all restored after surge: %v\n",
		r.ShedDuringSurge, r.PersistentShedSeen, r.AdmitAllRestored)
	fmt.Fprintf(w, "peak grant %d slots; final E[T] %.0f ms under Tmax: %v; dropped %d, pending at end %d\n",
		r.PeakGrant, r.FinalSojournMillis, r.FinalUnderTmax, r.DroppedTuples, r.PendingAtEnd)
}
