// Command checkdoc is the repository's missing-doc linter: it fails when
// a non-test package lacks a package comment or exports a declaration
// without a doc comment. CI runs it next to go vet so the public surface
// (`go doc drs`, and every internal package a contributor lands in) stays
// fully documented.
//
// Usage:
//
//	go run ./internal/tools/checkdoc ./...
//
// A doc comment on a grouped declaration (`const (...)`, `var (...)`)
// covers the group; fields inside exported structs are not required to
// carry comments (that is a judgement call, not a lintable rule).
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var dirs []string
	for _, arg := range args {
		if strings.HasSuffix(arg, "/...") {
			root := strings.TrimSuffix(arg, "/...")
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				// Prune hidden directories (.git, .github) — but never the
				// walk root itself, whose name is "." when linting "./...";
				// skipping it would silently exempt the top-level package.
				if path != root && strings.HasPrefix(d.Name(), ".") {
					return filepath.SkipDir
				}
				dirs = append(dirs, path)
				return nil
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "checkdoc:", err)
				os.Exit(2)
			}
		} else {
			dirs = append(dirs, arg)
		}
	}
	bad := 0
	for _, dir := range dirs {
		bad += checkDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "checkdoc: %d missing doc comment(s)\n", bad)
		os.Exit(1)
	}
}

// checkDir lints one directory's non-test Go files and reports the number
// of problems found.
func checkDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		// Directories without Go files are fine; real syntax errors will
		// fail the build step anyway.
		return 0
	}
	bad := 0
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			fmt.Printf("%s: package %s has no package comment\n", dir, pkg.Name)
			bad++
		}
		for name, f := range pkg.Files {
			bad += checkFile(fset, name, f)
		}
	}
	return bad
}

// checkFile reports exported declarations without doc comments.
func checkFile(fset *token.FileSet, name string, f *ast.File) int {
	bad := 0
	report := func(pos token.Pos, what string) {
		fmt.Printf("%s: %s is exported but has no doc comment\n",
			fset.Position(pos), what)
		bad++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			// Methods count when their receiver type is exported.
			if d.Recv != nil && !receiverExported(d.Recv) {
				continue
			}
			report(d.Pos(), "func "+d.Name.Name)
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type "+s.Name.Name)
					}
				case *ast.ValueSpec:
					// A doc comment on the group covers every spec in it.
					if d.Doc != nil {
						continue
					}
					for _, id := range s.Names {
						if id.IsExported() && s.Doc == nil && s.Comment == nil {
							report(id.Pos(), d.Tok.String()+" "+id.Name)
						}
					}
				}
			}
		}
	}
	_ = name
	return bad
}

// receiverExported reports whether a method receiver names an exported
// type (pointer receivers unwrapped).
func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch e := t.(type) {
	case *ast.Ident:
		return e.IsExported()
	case *ast.IndexExpr: // generic receiver
		if id, ok := e.X.(*ast.Ident); ok {
			return id.IsExported()
		}
	}
	return false
}
