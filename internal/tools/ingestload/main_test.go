package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/drs-repro/drs/internal/ingest"
)

// gateServer stands up the real HTTP front door on an httptest listener.
func gateServer(t *testing.T) (*ingest.Gate, *httptest.Server) {
	t.Helper()
	g := ingest.NewGate(ingest.GateConfig{})
	t.Cleanup(func() { g.Close() })
	srv := httptest.NewServer(ingest.Handler(g, ingest.ListenerConfig{
		Weights: map[string]float64{"gold": 3, "bronze": 1},
	}))
	t.Cleanup(srv.Close)
	return g, srv
}

// TestFlagValidation pins the CLI contract: exactly one transport, and
// positive knobs.
func TestFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-url", "http://x", "-tcp", "y:1"},
		{"-url", "http://x", "-rate", "0"},
		{"-url", "http://x", "-trace", "spec.json", "-speedup", "0"},
		{"-url", "http://x", "-trace", "no-such-file.json"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestFlatLoadAgainstGate drives the classic fixed-rate mode at the real
// handler and expects a clean exit: every record got a verdict.
func TestFlatLoadAgainstGate(t *testing.T) {
	_, srv := gateServer(t)
	err := run([]string{"-url", srv.URL + "/ingest",
		"-clients", "2", "-rate", "200", "-duration", "0.2"})
	if err != nil {
		t.Fatalf("flat load: %v", err)
	}
}

// TestTraceReplayAgainstGate replays a small scenario spec — two tenants,
// a flash crowd and a correlated surge — against the live gate at high
// speedup: the same seeded schedule the simulator would replay, down the
// real HTTP admission path.
func TestTraceReplayAgainstGate(t *testing.T) {
	_, srv := gateServer(t)
	spec := `{
		"name": "mini", "seed": 7, "duration_seconds": 4,
		"tenants": [
			{"name": "gold", "weight": 3, "base_rate": 40,
			 "diurnal": {"period_seconds": 4, "amplitude": 0.5}},
			{"name": "bronze", "base_rate": 25,
			 "flash_crowds": [{"from_seconds": 1, "until_seconds": 3, "factor": 4}]}
		],
		"surges": [{"tenants": ["gold", "bronze"], "from_seconds": 2,
		            "until_seconds": 3, "factor": 2, "jitter_seconds": 0.5}]
	}`
	path := filepath.Join(t.TempDir(), "mini.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-url", srv.URL + "/ingest",
		"-trace", path, "-speedup", "40"})
	if err != nil {
		t.Fatalf("trace replay: %v", err)
	}
}

// TestTraceHorizonCap checks that an explicit -duration truncates the
// replayed scenario horizon rather than being ignored.
func TestTraceHorizonCap(t *testing.T) {
	_, srv := gateServer(t)
	spec := `{"name": "long", "seed": 1, "duration_seconds": 3600,
		"tenants": [{"name": "a", "base_rate": 50}]}`
	path := filepath.Join(t.TempDir(), "long.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-url", srv.URL + "/ingest",
			"-trace", path, "-speedup", "20", "-duration", "2"})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("capped trace replay: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("capped replay did not finish — -duration cap ignored")
	}
}
