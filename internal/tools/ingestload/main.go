// Command ingestload drives client traffic at a drsctl-serve ingest front
// end — HTTP POST or length-prefixed TCP — and reports the admitted/shed
// split the backpressure produced. It is the client half of the
// serve-smoke check (`make serve-smoke`) and a handy burst generator for
// the examples.
//
// Usage:
//
//	ingestload -url http://127.0.0.1:8080/ingest -clients 4 -rate 100 -duration 5
//	ingestload -tcp 127.0.0.1:7070 -clients 2 -rate 50 -duration 5
//
// Exit status is 0 when every request got a verdict (2xx or 429/NACK) and
// non-zero on transport errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/drs-repro/drs/internal/ingest"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ingestload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ingestload", flag.ContinueOnError)
	url := fs.String("url", "", "HTTP ingest endpoint (e.g. http://127.0.0.1:8080/ingest)")
	tcp := fs.String("tcp", "", "TCP ingest address (length-prefixed protocol)")
	clients := fs.Int("clients", 4, "concurrent clients")
	rate := fs.Float64("rate", 100, "records/s per client")
	duration := fs.Float64("duration", 5, "seconds to push")
	idPrefix := fs.String("id-prefix", "load", "client id prefix (ids are <prefix>-<n>)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*url == "") == (*tcp == "") {
		return fmt.Errorf("pass exactly one of -url or -tcp")
	}
	if *clients < 1 || *rate <= 0 || *duration <= 0 {
		return fmt.Errorf("-clients, -rate and -duration must be positive")
	}

	var admitted, shed, errs atomic.Int64
	deadline := time.Now().Add(time.Duration(*duration * float64(time.Second)))
	gap := time.Duration(float64(time.Second) / *rate)
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		id := fmt.Sprintf("%s-%d", *idPrefix, i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			push := pushHTTP(*url, id)
			if *tcp != "" {
				conn, err := ingest.DialTCP(*tcp, id)
				if err != nil {
					errs.Add(1)
					return
				}
				defer conn.Close()
				push = func(rec []byte) (bool, error) {
					ok, _, err := conn.Send(rec)
					return ok, err
				}
			}
			rec := []byte("record-" + id)
			for time.Now().Before(deadline) {
				ok, err := push(rec)
				switch {
				case err != nil:
					errs.Add(1)
				case ok:
					admitted.Add(1)
				default:
					shed.Add(1)
				}
				time.Sleep(gap)
			}
		}()
	}
	wg.Wait()
	total := admitted.Load() + shed.Load() + errs.Load()
	fmt.Printf("offered %d admitted %d shed %d errors %d\n",
		total, admitted.Load(), shed.Load(), errs.Load())
	if errs.Load() > 0 {
		return fmt.Errorf("%d transport errors", errs.Load())
	}
	return nil
}

// pushHTTP returns a pusher POSTing records as one-record bodies; a 2xx
// is admitted, a 429 is shed, anything else is a transport error.
func pushHTTP(url, id string) func([]byte) (bool, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	return func(rec []byte) (bool, error) {
		req, err := http.NewRequest("POST", url, strings.NewReader(string(rec)))
		if err != nil {
			return false, err
		}
		req.Header.Set(ingest.ClientIDHeader, id)
		resp, err := client.Do(req)
		if err != nil {
			return false, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			return true, nil
		case resp.StatusCode == http.StatusTooManyRequests:
			return false, nil
		default:
			return false, fmt.Errorf("unexpected status %d", resp.StatusCode)
		}
	}
}
