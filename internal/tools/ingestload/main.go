// Command ingestload drives client traffic at a drsctl-serve ingest front
// end — HTTP POST or length-prefixed TCP — and reports the admitted/shed
// split the backpressure produced. It is the client half of the
// serve-smoke check (`make serve-smoke`) and a handy burst generator for
// the examples.
//
// Usage:
//
//	ingestload -url http://127.0.0.1:8080/ingest -clients 4 -rate 100 -duration 5
//	ingestload -tcp 127.0.0.1:7070 -clients 2 -rate 50 -duration 5
//	ingestload -url http://127.0.0.1:8080/ingest -trace scenarios/chaos.json -speedup 60
//
// With -trace, ingestload replays a scenario spec (internal/scenario)
// against the live front door: one paced worker per tenant draws the same
// seeded, envelope-shaped arrival schedule the `drs-experiments chaos`
// simulation replays in virtual time — diurnal swings, flash crowds and
// correlated surges included — so every simulated scenario has a
// live-socket twin. -speedup compresses scenario seconds into wall
// seconds (60 replays a 24-minute arc in 24 s); client ids are the
// tenant names (configure their weights server-side); an explicit
// -duration caps the replayed scenario horizon.
//
// Exit status is 0 when every request got a verdict (2xx or 429/NACK) and
// non-zero on transport errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/drs-repro/drs/internal/ingest"
	"github.com/drs-repro/drs/internal/scenario"
	"github.com/drs-repro/drs/internal/sim"
	"github.com/drs-repro/drs/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ingestload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ingestload", flag.ContinueOnError)
	url := fs.String("url", "", "HTTP ingest endpoint (e.g. http://127.0.0.1:8080/ingest)")
	tcp := fs.String("tcp", "", "TCP ingest address (length-prefixed protocol)")
	clients := fs.Int("clients", 4, "concurrent clients")
	rate := fs.Float64("rate", 100, "records/s per client")
	duration := fs.Float64("duration", 5, "seconds to push (with -trace: cap on the scenario horizon)")
	idPrefix := fs.String("id-prefix", "load", "client id prefix (ids are <prefix>-<n>)")
	trace := fs.String("trace", "", "replay a scenario spec (JSON file) instead of flat per-client rates")
	speedup := fs.Float64("speedup", 1, "trace replay: scenario seconds per wall second")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*url == "") == (*tcp == "") {
		return fmt.Errorf("pass exactly one of -url or -tcp")
	}
	if *trace != "" {
		if *speedup <= 0 {
			return fmt.Errorf("-speedup must be positive")
		}
		cap := 0.0
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "duration" {
				cap = *duration
			}
		})
		return runTrace(*trace, *url, *tcp, *speedup, cap)
	}
	if *clients < 1 || *rate <= 0 || *duration <= 0 {
		return fmt.Errorf("-clients, -rate and -duration must be positive")
	}

	var admitted, shed, errs atomic.Int64
	deadline := time.Now().Add(time.Duration(*duration * float64(time.Second)))
	gap := time.Duration(float64(time.Second) / *rate)
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		id := fmt.Sprintf("%s-%d", *idPrefix, i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			push, closer, err := pusher(*url, *tcp, id)
			if err != nil {
				errs.Add(1)
				return
			}
			defer closer()
			rec := []byte("record-" + id)
			for time.Now().Before(deadline) {
				ok, err := push(rec)
				switch {
				case err != nil:
					errs.Add(1)
				case ok:
					admitted.Add(1)
				default:
					shed.Add(1)
				}
				time.Sleep(gap)
			}
		}()
	}
	wg.Wait()
	total := admitted.Load() + shed.Load() + errs.Load()
	fmt.Printf("offered %d admitted %d shed %d errors %d\n",
		total, admitted.Load(), shed.Load(), errs.Load())
	if errs.Load() > 0 {
		return fmt.Errorf("%d transport errors", errs.Load())
	}
	return nil
}

// traceCounters is one tenant worker's verdict tally.
type traceCounters struct {
	admitted, shed, errs atomic.Int64
}

// runTrace replays a scenario spec live: one worker per tenant, each
// pacing the seeded arrival schedule (Poisson base shaped by the tenant's
// compiled envelope) compressed by the speedup factor. The schedule is the
// same pure function of (Spec, Seed) the simulation replays — only the
// transport differs.
func runTrace(path, url, tcp string, speedup, capSeconds float64) error {
	tl, spec, err := scenario.Load(path)
	if err != nil {
		return err
	}
	horizon := spec.DurationSeconds
	if capSeconds > 0 && capSeconds < horizon {
		horizon = capSeconds
	}
	counters := make([]traceCounters, len(spec.Tenants))
	start := time.Now()
	var wg sync.WaitGroup
	for i, ts := range spec.Tenants {
		arrivals, err := tl.Arrivals(ts.Name)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(i int, name string, arr sim.ArrivalProcess) {
			defer wg.Done()
			c := &counters[i]
			push, closer, err := pusher(url, tcp, name)
			if err != nil {
				c.errs.Add(1)
				return
			}
			defer closer()
			rng := stats.NewRNG(spec.Seed + uint64(i))
			rec := []byte("record-" + name)
			now := 0.0 // scenario clock, seconds
			for {
				now += arr.NextInterArrival(rng)
				if now > horizon {
					return
				}
				at := start.Add(time.Duration(now / speedup * float64(time.Second)))
				if d := time.Until(at); d > 0 {
					time.Sleep(d)
				}
				ok, err := push(rec)
				switch {
				case err != nil:
					c.errs.Add(1)
				case ok:
					c.admitted.Add(1)
				default:
					c.shed.Add(1)
				}
			}
		}(i, ts.Name, arrivals)
	}
	wg.Wait()
	var admitted, shed, errs int64
	for i, ts := range spec.Tenants {
		c := &counters[i]
		total := c.admitted.Load() + c.shed.Load() + c.errs.Load()
		fmt.Printf("tenant %s offered %d admitted %d shed %d errors %d\n",
			ts.Name, total, c.admitted.Load(), c.shed.Load(), c.errs.Load())
		admitted += c.admitted.Load()
		shed += c.shed.Load()
		errs += c.errs.Load()
	}
	fmt.Printf("offered %d admitted %d shed %d errors %d\n",
		admitted+shed+errs, admitted, shed, errs)
	if errs > 0 {
		return fmt.Errorf("%d transport errors", errs)
	}
	return nil
}

// pusher builds the record-push function for one client id over whichever
// transport is configured, plus its cleanup.
func pusher(url, tcp, id string) (func([]byte) (bool, error), func(), error) {
	if tcp != "" {
		conn, err := ingest.DialTCP(tcp, id)
		if err != nil {
			return nil, nil, err
		}
		return func(rec []byte) (bool, error) {
			ok, _, err := conn.Send(rec)
			return ok, err
		}, func() { conn.Close() }, nil
	}
	return pushHTTP(url, id), func() {}, nil
}

// pushHTTP returns a pusher POSTing records as one-record bodies; a 2xx
// is admitted, a 429 is shed, anything else is a transport error.
func pushHTTP(url, id string) func([]byte) (bool, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	return func(rec []byte) (bool, error) {
		req, err := http.NewRequest("POST", url, strings.NewReader(string(rec)))
		if err != nil {
			return false, err
		}
		req.Header.Set(ingest.ClientIDHeader, id)
		resp, err := client.Do(req)
		if err != nil {
			return false, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			return true, nil
		case resp.StatusCode == http.StatusTooManyRequests:
			return false, nil
		default:
			return false, fmt.Errorf("unexpected status %d", resp.StatusCode)
		}
	}
}
