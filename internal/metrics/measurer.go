package metrics

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/drs-repro/drs/internal/core"
)

// ErrNotReady is returned by Snapshot before the first complete interval
// has been ingested.
var ErrNotReady = errors.New("metrics: no measurements ingested yet")

// ErrIncomplete is returned by Snapshot when intervals have been ingested
// but some operator still lacks a service-rate estimate (µ̂_i needs at least
// one sampled service time, which an idle operator never produces). Callers
// polling a warming-up system should treat it like ErrNotReady: hold and
// re-measure next round.
var ErrIncomplete = errors.New("metrics: operator lacks service-rate samples")

// OpInterval is the operator-level aggregate of one collection interval:
// the sum of the drained probe counters over the operator's executors
// (Appendix B: metrics must be aggregated to the operator level because
// that is what the Jackson model is defined over).
type OpInterval struct {
	// Arrivals counts tuples that entered any executor queue of the operator.
	Arrivals int64
	// Served counts tuples completed by the operator.
	Served int64
	// Sampled counts service-time samples and BusyTime their summed duration.
	Sampled  int64
	BusyTime time.Duration
	// BusySqSeconds is the sum of squared sampled service times (seconds²);
	// optional, used only by the service-CV² estimate.
	BusySqSeconds float64
}

// Merge adds o's counters into i.
func (i *OpInterval) Merge(o OpInterval) {
	i.Arrivals += o.Arrivals
	i.Served += o.Served
	i.Sampled += o.Sampled
	i.BusyTime += o.BusyTime
	i.BusySqSeconds += o.BusySqSeconds
}

// IntervalReport carries everything measured during one Tm interval.
type IntervalReport struct {
	// Duration is the wall-clock (or simulated) length of the interval.
	Duration time.Duration
	// ExternalArrivals counts tuples that entered the application from
	// outside (spout emissions) — the numerator of λ̂0. With an ingest
	// front end these are the *admitted* tuples only.
	ExternalArrivals int64
	// OfferedArrivals counts tuples clients *offered* during the interval,
	// including those an admission controller shed before they reached a
	// spout. Zero means "no ingest tier in front": offered equals admitted,
	// the in-process-spout default. It is never meaningfully below
	// ExternalArrivals (admitted tuples were necessarily offered); the
	// measurer clamps it up defensively.
	OfferedArrivals int64
	// Ops holds per-operator aggregates in topology order.
	Ops []OpInterval
	// SojournCount and SojournTotal summarize the total sojourn times of
	// external tuples fully processed during the interval (from tuple-tree
	// completion notifications, the paper's acking mechanism).
	SojournCount int64
	SojournTotal time.Duration
}

// MeasurerConfig parameterizes the measurer.
type MeasurerConfig struct {
	// OperatorNames gives the topology's operators in order; fixes N.
	OperatorNames []string
	// Smoothing applies to every derived series (λ̂0, λ̂_i, µ̂_i, E[T̂]).
	Smoothing SmoothingSpec
	// MaxServiceTime clips implausible service-time samples (outlier
	// rejection); zero disables clipping.
	MaxServiceTime time.Duration
	// EstimateServiceCV enables the service-CV² estimate from the sampled
	// second moment, feeding the model's M/G/k correction. Off by default:
	// the paper's model assumes exponential service (CV² = 1).
	EstimateServiceCV bool
}

// Measurer aggregates interval reports into smoothed operator-level rates
// and produces core.Snapshot values for the controller. Safe for
// concurrent use.
type Measurer struct {
	mu  sync.Mutex
	cfg MeasurerConfig

	lambda0 Smoother
	offered Smoother
	lambda  []Smoother
	mus     []Smoother
	cv2s    []Smoother
	sojourn Smoother
	ready   bool

	// snapOps backs the Ops slice of the snapshot Snapshot returns; reusing
	// it keeps the supervisor's steady-state control round allocation-free.
	snapOps []core.OpRates
}

// NewMeasurer validates the config and builds a measurer.
func NewMeasurer(cfg MeasurerConfig) (*Measurer, error) {
	if len(cfg.OperatorNames) == 0 {
		return nil, errors.New("metrics: no operators")
	}
	m := &Measurer{cfg: cfg}
	var err error
	if m.lambda0, err = cfg.Smoothing.New(); err != nil {
		return nil, err
	}
	if m.offered, err = cfg.Smoothing.New(); err != nil {
		return nil, err
	}
	if m.sojourn, err = cfg.Smoothing.New(); err != nil {
		return nil, err
	}
	m.lambda = make([]Smoother, len(cfg.OperatorNames))
	m.mus = make([]Smoother, len(cfg.OperatorNames))
	m.cv2s = make([]Smoother, len(cfg.OperatorNames))
	for i := range cfg.OperatorNames {
		if m.lambda[i], err = cfg.Smoothing.New(); err != nil {
			return nil, err
		}
		if m.mus[i], err = cfg.Smoothing.New(); err != nil {
			return nil, err
		}
		if m.cv2s[i], err = cfg.Smoothing.New(); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// AddInterval ingests one interval report, updating all smoothed series.
func (m *Measurer) AddInterval(rep IntervalReport) error {
	if rep.Duration <= 0 {
		return fmt.Errorf("metrics: non-positive interval duration %v", rep.Duration)
	}
	if len(rep.Ops) != len(m.cfg.OperatorNames) {
		return fmt.Errorf("metrics: report has %d operators, want %d", len(rep.Ops), len(m.cfg.OperatorNames))
	}
	secs := rep.Duration.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lambda0.Update(float64(rep.ExternalArrivals) / secs)
	// The offered series smooths independently of λ̂0: a shedding front end
	// can hold the admitted rate flat while demand keeps climbing, and the
	// controller must see that divergence, not a blend.
	offered := rep.OfferedArrivals
	if offered < rep.ExternalArrivals {
		offered = rep.ExternalArrivals // zero (no ingest tier) or a skewed probe
	}
	m.offered.Update(float64(offered) / secs)
	for i, op := range rep.Ops {
		m.lambda[i].Update(float64(op.Arrivals) / secs)
		if op.Sampled > 0 && op.BusyTime > 0 {
			busy := op.BusyTime
			if m.cfg.MaxServiceTime > 0 {
				// Clip the average, bounding the damage of a straggler.
				if avg := busy / time.Duration(op.Sampled); avg > m.cfg.MaxServiceTime {
					busy = m.cfg.MaxServiceTime * time.Duration(op.Sampled)
				}
			}
			mu := float64(op.Sampled) / busy.Seconds()
			m.mus[i].Update(mu)
			if m.cfg.EstimateServiceCV && op.Sampled > 1 && op.BusySqSeconds > 0 {
				n := float64(op.Sampled)
				mean := busy.Seconds() / n
				variance := op.BusySqSeconds/n - mean*mean
				if variance < 0 {
					variance = 0
				}
				m.cv2s[i].Update(variance / (mean * mean))
			}
		}
	}
	if rep.SojournCount > 0 {
		m.sojourn.Update(rep.SojournTotal.Seconds() / float64(rep.SojournCount))
	}
	m.ready = true
	return nil
}

// Snapshot produces the controller input from the current smoothed series.
// Alloc and Kmax are the caller's to fill in (the measurer does not know
// the scheduler state). It returns ErrNotReady until the first interval
// and an error if any operator still lacks a service-rate estimate.
//
// The returned snapshot's Ops slice is scratch storage reused by the next
// Snapshot call on the same measurer — it is the caller's until then, and
// a caller retaining it longer must copy. The control loop consumes a
// snapshot within its round, so the reuse makes the steady-state round
// allocation-free without anyone copying.
func (m *Measurer) Snapshot() (core.Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.ready {
		return core.Snapshot{}, ErrNotReady
	}
	if cap(m.snapOps) < len(m.cfg.OperatorNames) {
		m.snapOps = make([]core.OpRates, len(m.cfg.OperatorNames))
	}
	s := core.Snapshot{
		Lambda0:         m.lambda0.Value(),
		OfferedLambda0:  m.offered.Value(),
		MeasuredSojourn: m.sojourn.Value(),
		Ops:             m.snapOps[:len(m.cfg.OperatorNames)],
	}
	for i, name := range m.cfg.OperatorNames {
		if !m.mus[i].Ready() {
			return core.Snapshot{}, fmt.Errorf("%w: operator %q has produced none yet", ErrIncomplete, name)
		}
		s.Ops[i] = core.OpRates{
			Name:   name,
			Lambda: m.lambda[i].Value(),
			Mu:     m.mus[i].Value(),
		}
		if m.cfg.EstimateServiceCV && m.cv2s[i].Ready() {
			s.Ops[i].ServiceCV2 = m.cv2s[i].Value()
		}
	}
	return s, nil
}

// Reset clears all smoothed state (used after a rebalance, when the old
// rates no longer describe the new configuration).
func (m *Measurer) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lambda0.Reset()
	m.offered.Reset()
	m.sojourn.Reset()
	for i := range m.lambda {
		m.lambda[i].Reset()
		m.mus[i].Reset()
		m.cv2s[i].Reset()
	}
	m.ready = false
}
