package metrics

import (
	"sync/atomic"
	"time"
)

// ExecutorProbe instruments one executor (one processor instance of an
// operator) with the paper's first sampling layer: arrivals are counted at
// the tail of the input queue (Appendix C notes the position matters), and
// the service duration of every Nm-th tuple is recorded. All methods are
// safe for concurrent use and cheap enough for per-tuple call sites —
// two atomic adds on the fast path.
type ExecutorProbe struct {
	nm int64

	arrivals    atomic.Int64
	served      atomic.Int64
	servedTotal atomic.Int64
	sampled     atomic.Int64
	busyNanos   atomic.Int64
	// busySqMicros accumulates squared sampled durations in µs², for the
	// optional service-CV² estimate (M/G/k correction). Microseconds keep
	// the running sum within int64 for realistic service times.
	busySqMicros atomic.Int64
}

// NewExecutorProbe builds a probe sampling every nm-th served tuple
// (nm >= 1; 1 samples everything).
func NewExecutorProbe(nm int) *ExecutorProbe {
	if nm < 1 {
		nm = 1
	}
	return &ExecutorProbe{nm: int64(nm)}
}

// TupleArrived counts one tuple entering this executor's input queue.
func (p *ExecutorProbe) TupleArrived() {
	p.arrivals.Add(1)
}

// TuplesArrived counts n tuples entering this executor's input queue in
// one batch — one atomic add for a whole batched enqueue.
func (p *ExecutorProbe) TuplesArrived(n int64) {
	p.arrivals.Add(n)
}

// TupleServed counts one completed tuple; the service duration is recorded
// only for every Nm-th completion.
func (p *ExecutorProbe) TupleServed(d time.Duration) {
	p.servedTotal.Add(1)
	n := p.served.Add(1)
	if n%p.nm == 0 {
		p.sampled.Add(1)
		p.busyNanos.Add(int64(d))
		us := d.Microseconds()
		p.busySqMicros.Add(us * us)
	}
}

// SampleStride reports Nm, for callers that accumulate observations
// locally and apply the sampling stride themselves (see TuplesServed).
func (p *ExecutorProbe) SampleStride() int64 { return p.nm }

// TuplesServed folds a locally accumulated batch of observations in a
// constant number of atomic adds: served tuples, how many of them were
// Nm-stride samples, and the samples' total and squared-total durations.
// The caller owns the stride bookkeeping across batches.
func (p *ExecutorProbe) TuplesServed(served, sampled, busyNanos, busySqMicros int64) {
	p.servedTotal.Add(served)
	p.served.Add(served)
	if sampled > 0 {
		p.sampled.Add(sampled)
		p.busyNanos.Add(busyNanos)
		p.busySqMicros.Add(busySqMicros)
	}
}

// ProbeCounters is one drained reading of a probe.
type ProbeCounters struct {
	// Arrivals and Served count tuples since the last drain.
	Arrivals, Served int64
	// Sampled counts service-time samples; BusyTime is their total duration.
	Sampled  int64
	BusyTime time.Duration
	// BusySqSeconds is the sum of squared sampled durations (seconds²),
	// the second moment behind the service-CV² estimate.
	BusySqSeconds float64
}

// ServedTotal reports the cumulative served-tuple count across the
// probe's lifetime, unaffected by Drain — used for load-skew diagnostics.
func (p *ExecutorProbe) ServedTotal() int64 {
	return p.servedTotal.Load()
}

// Drain atomically reads and resets the counters — the pull step of the
// paper's bi-layer collection.
func (p *ExecutorProbe) Drain() ProbeCounters {
	const us2PerS2 = 1e12
	return ProbeCounters{
		Arrivals:      p.arrivals.Swap(0),
		Served:        p.served.Swap(0),
		Sampled:       p.sampled.Swap(0),
		BusyTime:      time.Duration(p.busyNanos.Swap(0)),
		BusySqSeconds: float64(p.busySqMicros.Swap(0)) / us2PerS2,
	}
}

// Merge adds o into c (operator-level aggregation across executors).
func (c *ProbeCounters) Merge(o ProbeCounters) {
	c.Arrivals += o.Arrivals
	c.Served += o.Served
	c.Sampled += o.Sampled
	c.BusyTime += o.BusyTime
	c.BusySqSeconds += o.BusySqSeconds
}
