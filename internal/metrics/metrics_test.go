package metrics

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

func TestEWMA(t *testing.T) {
	s, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Ready() {
		t.Error("fresh smoother must not be ready")
	}
	if got := s.Update(10); got != 10 {
		t.Errorf("first update = %g, want 10 (seed)", got)
	}
	if got := s.Update(20); got != 15 {
		t.Errorf("second update = %g, want 15", got)
	}
	if got := s.Update(15); got != 15 {
		t.Errorf("third update = %g, want 15", got)
	}
	s.Reset()
	if s.Ready() || s.Value() != 0 {
		t.Error("Reset must clear state")
	}
}

func TestEWMAAlphaValidation(t *testing.T) {
	for _, alpha := range []float64{-0.1, 1.0, 1.5} {
		if _, err := NewEWMA(alpha); err == nil {
			t.Errorf("alpha %g should be rejected", alpha)
		}
	}
}

func TestWindow(t *testing.T) {
	s, err := NewWindow(3)
	if err != nil {
		t.Fatal(err)
	}
	s.Update(3)
	if got := s.Value(); got != 3 {
		t.Errorf("value = %g, want 3", got)
	}
	s.Update(6)
	s.Update(9)
	if got := s.Value(); got != 6 {
		t.Errorf("full window mean = %g, want 6", got)
	}
	s.Update(12) // evicts 3
	if got := s.Value(); got != 9 {
		t.Errorf("rolled window mean = %g, want 9", got)
	}
	s.Reset()
	if s.Ready() {
		t.Error("Reset must clear window")
	}
}

func TestWindowValidation(t *testing.T) {
	if _, err := NewWindow(0); err == nil {
		t.Error("window 0 should be rejected")
	}
}

func TestSmoothingSpec(t *testing.T) {
	for _, spec := range []SmoothingSpec{
		{},
		{Kind: "none"},
		{Kind: "ewma", Alpha: 0.8},
		{Kind: "window", Window: 4},
	} {
		if _, err := spec.New(); err != nil {
			t.Errorf("spec %+v: %v", spec, err)
		}
	}
	if _, err := (SmoothingSpec{Kind: "fourier"}).New(); err == nil {
		t.Error("unknown kind should be rejected")
	}
	// Raw pass-through.
	s, _ := SmoothingSpec{}.New()
	s.Update(5)
	if got := s.Update(9); got != 9 {
		t.Errorf("raw smoother = %g, want 9", got)
	}
}

func TestProbeSamplingEveryNm(t *testing.T) {
	p := NewExecutorProbe(10)
	for i := 0; i < 100; i++ {
		p.TupleArrived()
		p.TupleServed(5 * time.Millisecond)
	}
	c := p.Drain()
	if c.Arrivals != 100 || c.Served != 100 {
		t.Errorf("arrivals/served = %d/%d, want 100/100", c.Arrivals, c.Served)
	}
	if c.Sampled != 10 {
		t.Errorf("sampled = %d, want 10 (every 10th of 100)", c.Sampled)
	}
	if c.BusyTime != 50*time.Millisecond {
		t.Errorf("busy = %v, want 50ms", c.BusyTime)
	}
	// Drain resets.
	if c2 := p.Drain(); c2.Arrivals != 0 || c2.Sampled != 0 {
		t.Errorf("second drain not empty: %+v", c2)
	}
}

func TestProbeNmFloor(t *testing.T) {
	p := NewExecutorProbe(0) // clamps to 1: sample everything
	p.TupleServed(time.Millisecond)
	p.TupleServed(time.Millisecond)
	if c := p.Drain(); c.Sampled != 2 {
		t.Errorf("sampled = %d, want 2", c.Sampled)
	}
}

func TestProbeConcurrency(t *testing.T) {
	p := NewExecutorProbe(1)
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p.TupleArrived()
				p.TupleServed(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	c := p.Drain()
	if c.Arrivals != goroutines*per || c.Served != goroutines*per {
		t.Errorf("counters lost updates: %+v", c)
	}
	if c.BusyTime != goroutines*per*time.Microsecond {
		t.Errorf("busy = %v", c.BusyTime)
	}
}

func newTestMeasurer(t *testing.T, spec SmoothingSpec) *Measurer {
	t.Helper()
	m, err := NewMeasurer(MeasurerConfig{
		OperatorNames: []string{"extract", "match"},
		Smoothing:     spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func makeReport(dur time.Duration, ext int64, ops []OpInterval, sojournN int64, sojournTotal time.Duration) IntervalReport {
	return IntervalReport{
		Duration: dur, ExternalArrivals: ext, Ops: ops,
		SojournCount: sojournN, SojournTotal: sojournTotal,
	}
}

func TestMeasurerDerivesRates(t *testing.T) {
	m := newTestMeasurer(t, SmoothingSpec{})
	rep := makeReport(2*time.Second, 26, []OpInterval{
		{Arrivals: 26, Served: 26, Sampled: 13, BusyTime: 13 * 450 * time.Millisecond},
		{Arrivals: 1040, Served: 1040, Sampled: 104, BusyTime: 104 * 12 * time.Millisecond},
	}, 20, 20*900*time.Millisecond)
	if err := m.AddInterval(rep); err != nil {
		t.Fatal(err)
	}
	s, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Lambda0-13) > 1e-9 {
		t.Errorf("lambda0 = %g, want 13", s.Lambda0)
	}
	if math.Abs(s.Ops[0].Lambda-13) > 1e-9 || math.Abs(s.Ops[1].Lambda-520) > 1e-9 {
		t.Errorf("lambdas = %g, %g; want 13, 520", s.Ops[0].Lambda, s.Ops[1].Lambda)
	}
	if math.Abs(s.Ops[0].Mu-1/0.45) > 1e-9 {
		t.Errorf("mu0 = %g, want %g", s.Ops[0].Mu, 1/0.45)
	}
	if math.Abs(s.Ops[1].Mu-1/0.012) > 1e-6 {
		t.Errorf("mu1 = %g, want %g", s.Ops[1].Mu, 1/0.012)
	}
	if math.Abs(s.MeasuredSojourn-0.9) > 1e-9 {
		t.Errorf("sojourn = %g, want 0.9", s.MeasuredSojourn)
	}
	if s.Ops[0].Name != "extract" {
		t.Errorf("name = %q", s.Ops[0].Name)
	}
}

func TestMeasurerNotReady(t *testing.T) {
	m := newTestMeasurer(t, SmoothingSpec{})
	if _, err := m.Snapshot(); !errors.Is(err, ErrNotReady) {
		t.Errorf("err = %v, want ErrNotReady", err)
	}
}

func TestMeasurerRejectsBadReports(t *testing.T) {
	m := newTestMeasurer(t, SmoothingSpec{})
	if err := m.AddInterval(IntervalReport{Duration: 0, Ops: make([]OpInterval, 2)}); err == nil {
		t.Error("zero duration should be rejected")
	}
	if err := m.AddInterval(IntervalReport{Duration: time.Second, Ops: make([]OpInterval, 3)}); err == nil {
		t.Error("wrong operator count should be rejected")
	}
}

func TestMeasurerMissingServiceSamples(t *testing.T) {
	m := newTestMeasurer(t, SmoothingSpec{})
	// Second operator never served anything: snapshot must refuse.
	rep := makeReport(time.Second, 10, []OpInterval{
		{Arrivals: 10, Served: 10, Sampled: 5, BusyTime: time.Second},
		{Arrivals: 0},
	}, 0, 0)
	if err := m.AddInterval(rep); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Snapshot(); err == nil {
		t.Error("snapshot without mu estimate should error")
	}
}

func TestMeasurerIdleIntervalKeepsLastMu(t *testing.T) {
	m := newTestMeasurer(t, SmoothingSpec{})
	busy := makeReport(time.Second, 10, []OpInterval{
		{Arrivals: 10, Served: 10, Sampled: 10, BusyTime: time.Second},
		{Arrivals: 40, Served: 40, Sampled: 4, BusyTime: 40 * time.Millisecond},
	}, 5, 500*time.Millisecond)
	if err := m.AddInterval(busy); err != nil {
		t.Fatal(err)
	}
	idle := makeReport(time.Second, 0, []OpInterval{{}, {}}, 0, 0)
	if err := m.AddInterval(idle); err != nil {
		t.Fatal(err)
	}
	s, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if s.Ops[0].Mu != 10 {
		t.Errorf("mu lost on idle interval: %g", s.Ops[0].Mu)
	}
	if s.Ops[0].Lambda != 0 {
		t.Errorf("lambda should reflect the idle interval: %g", s.Ops[0].Lambda)
	}
}

func TestMeasurerSmoothingApplied(t *testing.T) {
	m := newTestMeasurer(t, SmoothingSpec{Kind: "ewma", Alpha: 0.5})
	ops := func(arr int64) []OpInterval {
		return []OpInterval{
			{Arrivals: arr, Served: arr, Sampled: 1, BusyTime: 100 * time.Millisecond},
			{Arrivals: arr, Served: arr, Sampled: 1, BusyTime: 100 * time.Millisecond},
		}
	}
	_ = m.AddInterval(makeReport(time.Second, 10, ops(10), 1, time.Second))
	_ = m.AddInterval(makeReport(time.Second, 20, ops(20), 1, 2*time.Second))
	s, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Lambda0-15) > 1e-9 { // 0.5*10 + 0.5*20
		t.Errorf("smoothed lambda0 = %g, want 15", s.Lambda0)
	}
	if math.Abs(s.MeasuredSojourn-1.5) > 1e-9 {
		t.Errorf("smoothed sojourn = %g, want 1.5", s.MeasuredSojourn)
	}
}

func TestMeasurerOutlierClipping(t *testing.T) {
	m, err := NewMeasurer(MeasurerConfig{
		OperatorNames:  []string{"a"},
		MaxServiceTime: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Average sample of 10s per tuple gets clipped to 100ms -> mu = 10.
	rep := makeReport(time.Second, 1, []OpInterval{
		{Arrivals: 1, Served: 1, Sampled: 1, BusyTime: 10 * time.Second},
	}, 0, 0)
	if err := m.AddInterval(rep); err != nil {
		t.Fatal(err)
	}
	s, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Ops[0].Mu-10) > 1e-9 {
		t.Errorf("clipped mu = %g, want 10", s.Ops[0].Mu)
	}
}

func TestMeasurerReset(t *testing.T) {
	m := newTestMeasurer(t, SmoothingSpec{})
	_ = m.AddInterval(makeReport(time.Second, 5, []OpInterval{
		{Arrivals: 5, Served: 5, Sampled: 5, BusyTime: time.Second},
		{Arrivals: 5, Served: 5, Sampled: 5, BusyTime: time.Second},
	}, 1, time.Second))
	m.Reset()
	if _, err := m.Snapshot(); !errors.Is(err, ErrNotReady) {
		t.Errorf("after Reset: err = %v, want ErrNotReady", err)
	}
}

func TestMeasurerConfigValidation(t *testing.T) {
	if _, err := NewMeasurer(MeasurerConfig{}); err == nil {
		t.Error("empty operator list should be rejected")
	}
	if _, err := NewMeasurer(MeasurerConfig{
		OperatorNames: []string{"a"},
		Smoothing:     SmoothingSpec{Kind: "bogus"},
	}); err == nil {
		t.Error("bad smoothing spec should be rejected")
	}
}

func TestOpIntervalMerge(t *testing.T) {
	a := OpInterval{Arrivals: 1, Served: 2, Sampled: 3, BusyTime: time.Second}
	b := OpInterval{Arrivals: 10, Served: 20, Sampled: 30, BusyTime: 2 * time.Second}
	a.Merge(b)
	if a.Arrivals != 11 || a.Served != 22 || a.Sampled != 33 || a.BusyTime != 3*time.Second {
		t.Errorf("merge = %+v", a)
	}
}

// TestMeasurerOfferedIndependentSmoothing: the offered and admitted (λ̂0)
// series must smooth independently — a shedding front end can hold the
// admitted rate flat while offered demand keeps climbing, and each series
// must follow its own inputs through the shared smoothing spec.
func TestMeasurerOfferedIndependentSmoothing(t *testing.T) {
	m := newTestMeasurer(t, SmoothingSpec{Kind: "window", Window: 2})
	ops := func() []OpInterval {
		return []OpInterval{
			{Arrivals: 10, Served: 10, Sampled: 10, BusyTime: 10 * 10 * time.Millisecond},
			{Arrivals: 10, Served: 10, Sampled: 10, BusyTime: 10 * 10 * time.Millisecond},
		}
	}
	// Interval 1: 10 admitted/s, 30 offered/s (shedding 2/3).
	rep := makeReport(time.Second, 10, ops(), 0, 0)
	rep.OfferedArrivals = 30
	if err := m.AddInterval(rep); err != nil {
		t.Fatal(err)
	}
	s, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Lambda0-10) > 1e-9 || math.Abs(s.OfferedLambda0-30) > 1e-9 {
		t.Fatalf("after interval 1: lambda0 %g / offered %g, want 10 / 30", s.Lambda0, s.OfferedLambda0)
	}
	// Interval 2: same admitted, offered unset — the in-process-spout
	// default, where offered falls back to admitted for that interval.
	if err := m.AddInterval(makeReport(time.Second, 10, ops(), 0, 0)); err != nil {
		t.Fatal(err)
	}
	s, err = m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Lambda0-10) > 1e-9 {
		t.Fatalf("lambda0 %g, want 10 (unchanged by the offered series)", s.Lambda0)
	}
	if math.Abs(s.OfferedLambda0-20) > 1e-9 {
		t.Fatalf("offered %g, want (30+10)/2 = 20 — the window must smooth offered on its own inputs", s.OfferedLambda0)
	}
	// A probe reporting offered below admitted is clamped up: admitted
	// tuples were necessarily offered.
	rep = makeReport(time.Second, 10, ops(), 0, 0)
	rep.OfferedArrivals = 5
	if err := m.AddInterval(rep); err != nil {
		t.Fatal(err)
	}
	s, err = m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.OfferedLambda0-10) > 1e-9 { // window holds (10+10)/2
		t.Fatalf("offered %g after clamped interval, want 10", s.OfferedLambda0)
	}
	// Reset clears the offered series with everything else.
	m.Reset()
	if err := m.AddInterval(makeReport(time.Second, 10, ops(), 0, 0)); err != nil {
		t.Fatal(err)
	}
	s, err = m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.OfferedLambda0-10) > 1e-9 {
		t.Fatalf("offered %g after reset, want 10", s.OfferedLambda0)
	}
}
