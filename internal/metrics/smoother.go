// Package metrics implements the DRS measurer module (paper §IV and
// Appendix B): low-overhead collection of per-operator arrival and service
// rates and of per-tuple total sojourn times, aggregation from the
// executor (instance) level to the operator level, and result smoothing.
//
// The paper's bi-layer sampling is kept: each executor records the service
// time of every Nm-th tuple only (ExecutorProbe), and the central measurer
// pulls and aggregates the counters every Tm seconds (Measurer.AddInterval).
// Smoothing supports both options from Appendix B: α-weighted averaging
// D(n) = α·D(n−1) + (1−α)·d(n), and window averaging over the last w
// intervals.
package metrics

import (
	"fmt"
)

// Smoother turns a sequence of per-interval raw measurements d(n) into
// smoothed values D(n). Implementations are not safe for concurrent use.
type Smoother interface {
	// Update feeds one raw measurement and returns the new smoothed value.
	Update(x float64) float64
	// Value returns the current smoothed value (0 before any update).
	Value() float64
	// Ready reports whether at least one measurement has been seen.
	Ready() bool
	// Reset clears all state.
	Reset()
}

// NewEWMA returns the paper's α-weighted smoother. alpha in [0, 1) controls
// the fading rate of old measurements; 0 means no smoothing.
func NewEWMA(alpha float64) (Smoother, error) {
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("metrics: alpha %g out of [0, 1)", alpha)
	}
	return &ewma{alpha: alpha}, nil
}

type ewma struct {
	alpha float64
	v     float64
	ready bool
}

func (e *ewma) Update(x float64) float64 {
	if !e.ready {
		e.v = x
		e.ready = true
		return e.v
	}
	e.v = e.alpha*e.v + (1-e.alpha)*x
	return e.v
}

func (e *ewma) Value() float64 { return e.v }

func (e *ewma) Ready() bool { return e.ready }

func (e *ewma) Reset() { e.v, e.ready = 0, false }

// NewWindow returns the paper's window-averaging smoother over the last w
// intervals (w >= 1).
func NewWindow(w int) (Smoother, error) {
	if w < 1 {
		return nil, fmt.Errorf("metrics: window size %d must be >= 1", w)
	}
	return &window{buf: make([]float64, 0, w), w: w}, nil
}

type window struct {
	buf  []float64
	w    int
	next int
	sum  float64
}

func (s *window) Update(x float64) float64 {
	if len(s.buf) < s.w {
		s.buf = append(s.buf, x)
		s.sum += x
	} else {
		s.sum += x - s.buf[s.next]
		s.buf[s.next] = x
	}
	s.next = (s.next + 1) % s.w
	return s.Value()
}

func (s *window) Value() float64 {
	if len(s.buf) == 0 {
		return 0
	}
	return s.sum / float64(len(s.buf))
}

func (s *window) Ready() bool { return len(s.buf) > 0 }

func (s *window) Reset() {
	s.buf = s.buf[:0]
	s.next, s.sum = 0, 0
}

// SmoothingSpec selects and parameterizes a smoother; the zero value means
// no smoothing (raw pass-through).
type SmoothingSpec struct {
	// Kind is "none", "ewma" or "window".
	Kind string
	// Alpha is the EWMA fading parameter (Kind == "ewma").
	Alpha float64
	// Window is the averaging width in intervals (Kind == "window").
	Window int
}

// New builds a smoother from the spec.
func (s SmoothingSpec) New() (Smoother, error) {
	switch s.Kind {
	case "", "none":
		return &raw{}, nil
	case "ewma":
		return NewEWMA(s.Alpha)
	case "window":
		return NewWindow(s.Window)
	default:
		return nil, fmt.Errorf("metrics: unknown smoothing kind %q", s.Kind)
	}
}

type raw struct {
	v     float64
	ready bool
}

func (r *raw) Update(x float64) float64 {
	r.v, r.ready = x, true
	return x
}

func (r *raw) Value() float64 { return r.v }

func (r *raw) Ready() bool { return r.ready }

func (r *raw) Reset() { r.v, r.ready = 0, false }
