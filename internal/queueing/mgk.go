package queueing

import "math"

// M/G/k extension (the paper's stated future work: "improving performance
// model accuracy with more sophisticated queuing theory").
//
// The plain model assumes exponential service. When the real service-time
// distribution has a squared coefficient of variation CV² ≠ 1 (lognormal
// frame costs, constant-cost kernels, ...), the Allen-Cunneen approximation
// corrects the queueing delay:
//
//	Wq(M/G/k) ≈ Wq(M/M/k) · (1 + CV²) / 2
//
// CV² = 1 recovers M/M/k exactly; CV² = 0 (deterministic service) halves
// the wait, matching the known M/D/1 result at k = 1.

// ExpectedWaitCorrected returns the Allen-Cunneen approximation of the
// expected queueing delay for arrival rate lambda, per-server service rate
// mu, k servers and service-time squared coefficient of variation cv2.
// Conventions follow ExpectedWait: +Inf when unstable, NaN on bad input.
func ExpectedWaitCorrected(lambda, mu float64, k int, cv2 float64) float64 {
	if cv2 < 0 || math.IsNaN(cv2) {
		return math.NaN()
	}
	w := ExpectedWait(lambda, mu, k)
	if math.IsNaN(w) || math.IsInf(w, 1) {
		return w
	}
	return w * (1 + cv2) / 2
}

// ExpectedSojournCorrected is ExpectedWaitCorrected plus the mean service
// time — Equation (1) with the Allen-Cunneen wait.
func ExpectedSojournCorrected(lambda, mu float64, k int, cv2 float64) float64 {
	w := ExpectedWaitCorrected(lambda, mu, k, cv2)
	if math.IsNaN(w) {
		return w
	}
	return w + 1/mu
}

// MarginalBenefitCorrected is MarginalBenefit under the corrected sojourn.
// Because the correction scales the (convex, decreasing) wait by a positive
// constant, convexity — and with it Theorem 1's greedy optimality — is
// preserved.
func MarginalBenefitCorrected(lambda, mu float64, k int, cv2 float64) float64 {
	cur := ExpectedSojournCorrected(lambda, mu, k, cv2)
	next := ExpectedSojournCorrected(lambda, mu, k+1, cv2)
	switch {
	case math.IsInf(next, 1):
		return 0
	case math.IsInf(cur, 1):
		return math.Inf(1)
	default:
		return lambda * (cur - next)
	}
}
