package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCorrectedReducesToMMkAtCV1(t *testing.T) {
	for _, k := range []int{1, 3, 10} {
		lambda, mu := 5.0, 2.5
		plain := ExpectedSojourn(lambda, mu, k)
		corrected := ExpectedSojournCorrected(lambda, mu, k, 1)
		if !almostEqual(plain, corrected, 1e-14) {
			t.Errorf("k=%d: CV²=1 corrected %g != plain %g", k, corrected, plain)
		}
	}
}

func TestCorrectedMD1KnownResult(t *testing.T) {
	// M/D/1: Wq = rho/(2µ(1-rho)) — exactly half the M/M/1 wait. The
	// Allen-Cunneen form is exact here (cv2 = 0, k = 1).
	lambda, mu := 3.0, 4.0
	rho := lambda / mu
	want := rho / (2 * mu * (1 - rho))
	got := ExpectedWaitCorrected(lambda, mu, 1, 0)
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("M/D/1 Wq = %g, want %g", got, want)
	}
}

func TestCorrectedScalesWaitOnly(t *testing.T) {
	lambda, mu, k := 20.0, 3.0, 9
	wait := ExpectedWait(lambda, mu, k)
	for _, cv2 := range []float64{0, 0.5, 1, 2, 4} {
		got := ExpectedSojournCorrected(lambda, mu, k, cv2)
		want := wait*(1+cv2)/2 + 1/mu
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("cv2=%g: sojourn %g, want %g", cv2, got, want)
		}
	}
}

func TestCorrectedEdgeCases(t *testing.T) {
	if got := ExpectedWaitCorrected(10, 1, 5, 2); !math.IsInf(got, 1) {
		t.Errorf("unstable corrected wait = %g, want +Inf", got)
	}
	if got := ExpectedWaitCorrected(1, 2, 1, -1); !math.IsNaN(got) {
		t.Errorf("negative cv2 = %g, want NaN", got)
	}
	if got := ExpectedWaitCorrected(1, 0, 1, 1); !math.IsNaN(got) {
		t.Errorf("invalid mu = %g, want NaN", got)
	}
}

func TestCorrectedConvexityPreserved(t *testing.T) {
	// Theorem 1 requires diminishing marginal benefits; the correction
	// multiplies the convex wait by a positive constant, so the property
	// must survive for any cv2.
	f := func(lseed, mseed uint16, kseed, cvSeed uint8) bool {
		lambda := 0.5 + float64(lseed%3000)/10
		mu := 0.5 + float64(mseed%500)/10
		cv2 := float64(cvSeed%50) / 10 // 0 .. 4.9
		minK, err := MinStableServers(lambda, mu)
		if err != nil {
			return false
		}
		k := minK + int(kseed%15)
		d1 := ExpectedSojournCorrected(lambda, mu, k, cv2) - ExpectedSojournCorrected(lambda, mu, k+1, cv2)
		d2 := ExpectedSojournCorrected(lambda, mu, k+1, cv2) - ExpectedSojournCorrected(lambda, mu, k+2, cv2)
		if math.IsInf(d1, 1) {
			return true
		}
		return d1 >= d2 && d2 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

func TestMarginalBenefitCorrected(t *testing.T) {
	lambda, mu := 20.0, 3.0
	// At cv2 > 1 waits are larger, so marginal benefits are larger too.
	k := 8
	plain := MarginalBenefit(lambda, mu, k)
	heavy := MarginalBenefitCorrected(lambda, mu, k, 3)
	if heavy <= plain {
		t.Errorf("heavy-tail benefit %g should exceed plain %g", heavy, plain)
	}
	if got := MarginalBenefitCorrected(10, 1, 5, 2); got != 0 {
		t.Errorf("benefit when k+1 unstable = %g, want 0", got)
	}
	if got := MarginalBenefitCorrected(10, 1, 10, 2); !math.IsInf(got, 1) {
		t.Errorf("benefit when stabilizing = %g, want +Inf", got)
	}
}
