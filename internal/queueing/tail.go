package queueing

import (
	"fmt"
	"math"
)

// Sojourn-tail analysis. The paper's real-time constraint bounds the
// *expected* sojourn E[T] ≤ Tmax; an operator often wants the stronger
// quantile form "99% of tuples within Tmax". For an FCFS M/M/k station the
// sojourn distribution is known in closed form, so both are cheap:
//
//	P(W > t) = C(k, a) · e^{−θt},  θ = kµ − λ   (Erlang-C tail)
//	T = W + S,  S ~ Exp(µ) independent
//	P(T > t) = C·e^{−θt} + (1−C)·e^{−µt} + Cθ·(e^{−θt} − e^{−µt})/(µ−θ)
//
// with the θ = µ limit handled separately. Tests validate the formula
// against both numerical integration (its mean must equal Equation (1))
// and simulated quantiles.

// SojournTail returns P(T > t) for an M/M/k station: the probability a
// tuple's queueing-plus-service time exceeds t seconds. It returns 1 for
// any finite t when the station is unstable and NaN on invalid input.
func SojournTail(lambda, mu float64, k int, t float64) float64 {
	if lambda < 0 || mu <= 0 || math.IsNaN(lambda) || math.IsNaN(mu) || t < 0 || math.IsNaN(t) {
		return math.NaN()
	}
	if lambda == 0 {
		return math.Exp(-mu * t) // pure service
	}
	a := lambda / mu
	if float64(k) <= a {
		return 1
	}
	c := ErlangC(k, a)
	theta := float64(k)*mu - lambda
	if math.Abs(theta-mu) < 1e-12*mu {
		// Degenerate case θ = µ: P(T>t) = e^{−µt}·(1 + C·µ·t).
		return math.Exp(-mu*t) * (1 + c*mu*t)
	}
	et, em := math.Exp(-theta*t), math.Exp(-mu*t)
	return c*et + (1-c)*em + c*theta*(et-em)/(mu-theta)
}

// SojournQuantile returns the q-quantile (0 < q < 1) of the sojourn time:
// the smallest t with P(T ≤ t) ≥ q, found by bisection on the closed-form
// tail. +Inf when unstable, NaN on invalid input.
func SojournQuantile(lambda, mu float64, k int, q float64) float64 {
	if q <= 0 || q >= 1 || math.IsNaN(q) {
		return math.NaN()
	}
	if lambda < 0 || mu <= 0 {
		return math.NaN()
	}
	if lambda > 0 && float64(k) <= lambda/mu {
		return math.Inf(1)
	}
	tail := 1 - q
	// Bracket: expand hi until the tail drops below target.
	lo, hi := 0.0, 1/mu
	for SojournTail(lambda, mu, k, hi) > tail {
		hi *= 2
		if hi > 1e12 {
			return math.Inf(1)
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-12*hi; i++ {
		mid := (lo + hi) / 2
		if SojournTail(lambda, mu, k, mid) > tail {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// MinServersForQuantile returns the smallest k such that the q-quantile of
// the sojourn time is at most target seconds — the quantile analogue of
// Program (6)'s per-operator building block. Errors if the target is below
// the bare service quantile (unreachable with any k).
func MinServersForQuantile(lambda, mu, target, q float64) (int, error) {
	if lambda < 0 || mu <= 0 {
		return 0, ErrInvalidRates
	}
	if q <= 0 || q >= 1 {
		return 0, fmt.Errorf("queueing: quantile %g out of (0, 1)", q)
	}
	// With infinite servers the sojourn is the bare service time; its
	// q-quantile −ln(1−q)/µ is the floor.
	floor := -math.Log(1-q) / mu
	if target < floor {
		return 0, fmt.Errorf("queueing: target %g below service %g-quantile %g", target, q, floor)
	}
	k, err := MinStableServers(lambda, mu)
	if err != nil {
		return 0, err
	}
	for SojournQuantile(lambda, mu, k, q) > target {
		k++
	}
	return k, nil
}
