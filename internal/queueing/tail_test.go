package queueing

import (
	"math"
	"testing"
)

func TestSojournTailBoundaries(t *testing.T) {
	lambda, mu, k := 20.0, 3.0, 10
	if got := SojournTail(lambda, mu, k, 0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("P(T>0) = %g, want 1", got)
	}
	if got := SojournTail(lambda, mu, k, 1e6); got > 1e-12 {
		t.Errorf("P(T>huge) = %g, want ~0", got)
	}
	prev := 1.0
	for _, tt := range []float64{0.01, 0.1, 0.3, 1, 3} {
		cur := SojournTail(lambda, mu, k, tt)
		if cur > prev {
			t.Errorf("tail not decreasing at t=%g: %g > %g", tt, cur, prev)
		}
		if cur < 0 || cur > 1 {
			t.Errorf("tail out of [0,1] at t=%g: %g", tt, cur)
		}
		prev = cur
	}
}

func TestSojournTailMM1ClosedForm(t *testing.T) {
	// M/M/1 FCFS: T ~ Exp(mu - lambda) exactly.
	lambda, mu := 3.0, 5.0
	for _, tt := range []float64{0.1, 0.5, 1, 2} {
		want := math.Exp(-(mu - lambda) * tt)
		if got := SojournTail(lambda, mu, 1, tt); !almostEqual(got, want, 1e-9) {
			t.Errorf("M/M/1 P(T>%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestSojournTailIntegratesToMean(t *testing.T) {
	// E[T] = ∫0^∞ P(T>t) dt must reproduce Equation (1).
	cases := []struct {
		lambda, mu float64
		k          int
	}{
		{8, 10, 1}, {20, 3, 8}, {20, 3, 10}, {650, 68, 11},
		{9, 5, 2}, // θ = kµ−λ = 1 vs µ = 5
	}
	for _, c := range cases {
		want := ExpectedSojourn(c.lambda, c.mu, c.k)
		// Trapezoidal integration out to where the tail is negligible.
		h := want / 4000
		sum := 0.0
		for i := 0; ; i++ {
			t0 := float64(i) * h
			v := SojournTail(c.lambda, c.mu, c.k, t0)
			if v < 1e-10 && i > 10 {
				break
			}
			if i == 0 {
				sum += v / 2
			} else {
				sum += v
			}
			if i > 4_000_000 {
				t.Fatalf("integration did not converge for %+v", c)
			}
		}
		got := sum * h
		if math.Abs(got-want) > 0.002*want {
			t.Errorf("lambda=%g mu=%g k=%d: ∫tail = %g, E[T] = %g", c.lambda, c.mu, c.k, got, want)
		}
	}
}

func TestSojournTailDegenerateTheta(t *testing.T) {
	// Construct θ = µ exactly: kµ − λ = µ, e.g. k=2, µ=4, λ=4.
	lambda, mu, k := 4.0, 4.0, 2
	if got := SojournTail(lambda, mu, k, 0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("degenerate P(T>0) = %g", got)
	}
	// Mean via integration still matches Equation (1).
	want := ExpectedSojourn(lambda, mu, k)
	h := want / 4000
	sum := SojournTail(lambda, mu, k, 0) / 2
	for i := 1; float64(i)*h < want*30; i++ {
		sum += SojournTail(lambda, mu, k, float64(i)*h)
	}
	got := sum * h
	if math.Abs(got-want) > 0.005*want {
		t.Errorf("degenerate mean %g, want %g", got, want)
	}
}

func TestSojournTailEdgeCases(t *testing.T) {
	if got := SojournTail(10, 3, 3, 1); got != 1 {
		t.Errorf("unstable tail = %g, want 1", got)
	}
	if got := SojournTail(0, 3, 2, 0.5); !almostEqual(got, math.Exp(-1.5), 1e-12) {
		t.Errorf("no-arrivals tail = %g, want pure service", got)
	}
	if got := SojournTail(-1, 3, 2, 1); !math.IsNaN(got) {
		t.Errorf("invalid input tail = %g, want NaN", got)
	}
	if got := SojournTail(1, 3, 2, -1); !math.IsNaN(got) {
		t.Errorf("negative t tail = %g, want NaN", got)
	}
}

func TestSojournQuantileInvertsTail(t *testing.T) {
	lambda, mu, k := 20.0, 3.0, 9
	for _, q := range []float64{0.5, 0.9, 0.99} {
		tq := SojournQuantile(lambda, mu, k, q)
		if got := SojournTail(lambda, mu, k, tq); math.Abs(got-(1-q)) > 1e-6 {
			t.Errorf("P(T > quantile(%g)) = %g, want %g", q, got, 1-q)
		}
	}
	if got := SojournQuantile(10, 3, 3, 0.9); !math.IsInf(got, 1) {
		t.Errorf("unstable quantile = %g, want +Inf", got)
	}
	if got := SojournQuantile(1, 2, 1, 0); !math.IsNaN(got) {
		t.Errorf("q=0 quantile = %g, want NaN", got)
	}
	if got := SojournQuantile(1, 2, 1, 1); !math.IsNaN(got) {
		t.Errorf("q=1 quantile = %g, want NaN", got)
	}
}

func TestMinServersForQuantile(t *testing.T) {
	// The bare Exp(3) service's 95th percentile is ~0.999s, so any
	// reachable target must exceed that floor.
	lambda, mu, q := 20.0, 3.0, 0.95
	target := 1.2
	k, err := MinServersForQuantile(lambda, mu, target, q)
	if err != nil {
		t.Fatal(err)
	}
	if got := SojournQuantile(lambda, mu, k, q); got > target {
		t.Errorf("k=%d gives 95th percentile %g > target %g", k, got, target)
	}
	if k > 1 {
		if got := SojournQuantile(lambda, mu, k-1, q); got <= target {
			t.Errorf("k-1 already meets target (%g); not minimal", got)
		}
	}
	// The quantile constraint needs at least as many servers as the mean
	// constraint at the same threshold.
	kMean, err := MinServersForSojourn(lambda, mu, target)
	if err != nil {
		t.Fatal(err)
	}
	if k < kMean {
		t.Errorf("quantile servers %d < mean servers %d", k, kMean)
	}
	if _, err := MinServersForQuantile(lambda, mu, 0.001, q); err == nil {
		t.Error("unreachable quantile target should error")
	}
	if _, err := MinServersForQuantile(lambda, mu, 1, 2); err == nil {
		t.Error("bad quantile should error")
	}
	if _, err := MinServersForQuantile(1, 0, 1, 0.9); err == nil {
		t.Error("bad rates should error")
	}
}
