// Package queueing implements the per-operator M/M/k (Erlang) queueing
// mathematics that the DRS performance model is built on (paper §III-B,
// Equations 1 and 2).
//
// The paper states Equation (1) in terms of factorials; computing it that
// way overflows float64 well below the offered loads a real topology can
// reach. This package instead uses the standard Erlang-B recurrence
//
//	B(0, a) = 1,  B(k, a) = a·B(k-1, a) / (k + a·B(k-1, a))
//
// and derives Erlang-C and the expected sojourn time from it, which is
// numerically stable for any load. The direct factorial form is kept (for
// moderate loads) as P0 and expectedSojournDirect, and the test suite checks
// the two forms agree — that is the fidelity argument for the substitution.
package queueing

import (
	"errors"
	"fmt"
	"math"
)

// ErrUnstable is returned by functions that cannot produce a finite result
// because the operator has fewer servers than its offered load requires
// (k ≤ λ/µ), the regime where Equation (1) is +∞.
var ErrUnstable = errors.New("queueing: operator unstable (k <= lambda/mu)")

// ErrInvalidRates is returned when λ < 0 or µ ≤ 0.
var ErrInvalidRates = errors.New("queueing: rates must satisfy lambda >= 0, mu > 0")

// OfferedLoad returns a = λ/µ, the load in Erlangs. It is the minimum
// amount of service capacity (in servers) the operator needs for stability.
func OfferedLoad(lambda, mu float64) float64 { return lambda / mu }

// ErlangB computes the Erlang-B blocking probability B(k, a) for k servers
// at offered load a, via the standard recurrence. It returns 1 for k == 0.
func ErlangB(k int, a float64) float64 {
	if k < 0 || a < 0 || math.IsNaN(a) {
		return math.NaN()
	}
	b := 1.0
	for i := 1; i <= k; i++ {
		b = a * b / (float64(i) + a*b)
	}
	return b
}

// ErlangC computes the Erlang-C probability that an arriving tuple must
// wait, C(k, a), for k servers at offered load a. For k ≤ a the system is
// unstable and every arrival waits, so it returns 1.
func ErlangC(k int, a float64) float64 {
	if k < 0 || a < 0 || math.IsNaN(a) {
		return math.NaN()
	}
	if float64(k) <= a {
		return 1
	}
	b := ErlangB(k, a)
	return float64(k) * b / (float64(k) - a*(1-b))
}

// ExpectedWait returns the expected queueing delay Wq of an M/M/k system
// with arrival rate lambda, per-server service rate mu and k servers.
// It returns +Inf when k ≤ λ/µ and NaN for invalid rates.
func ExpectedWait(lambda, mu float64, k int) float64 {
	if lambda < 0 || mu <= 0 || math.IsNaN(lambda) || math.IsNaN(mu) {
		return math.NaN()
	}
	if lambda == 0 {
		return 0
	}
	a := lambda / mu
	if float64(k) <= a {
		return math.Inf(1)
	}
	return ErlangC(k, a) / (float64(k)*mu - lambda)
}

// ExpectedSojourn returns E[T_i](k_i) of Equation (1): the expected time
// between a tuple arriving at the operator and the operator finishing it,
// i.e. queueing delay plus service time 1/µ.
// It returns +Inf when k ≤ λ/µ (the paper's unstable branch) and NaN for
// invalid rates.
func ExpectedSojourn(lambda, mu float64, k int) float64 {
	w := ExpectedWait(lambda, mu, k)
	if math.IsNaN(w) {
		return w
	}
	return w + 1/mu
}

// ExpectedQueueLength returns Lq, the expected number of tuples waiting in
// the operator's input queue (excluding those in service). +Inf when
// unstable, NaN for invalid rates.
func ExpectedQueueLength(lambda, mu float64, k int) float64 {
	w := ExpectedWait(lambda, mu, k)
	if math.IsNaN(w) || math.IsInf(w, 1) {
		return w
	}
	return lambda * w // Little's law
}

// Utilization returns ρ = λ/(kµ), the fraction of time each server is busy
// (may exceed 1 for unstable settings).
func Utilization(lambda, mu float64, k int) float64 {
	if k <= 0 {
		return math.Inf(1)
	}
	return lambda / (float64(k) * mu)
}

// P0 computes the normalization term π₀ of Equation (2) — the steady-state
// probability that the operator is empty. It sums the factorial series
// directly, which is exact for the moderate offered loads DRS topologies
// run at; for very large loads where the series overflows it returns 0
// (the true value underflows anyway). Returns an error for k ≤ λ/µ or
// invalid rates.
func P0(lambda, mu float64, k int) (float64, error) {
	if lambda < 0 || mu <= 0 {
		return 0, ErrInvalidRates
	}
	a := lambda / mu
	if float64(k) <= a {
		return 0, fmt.Errorf("p0 with k=%d, a=%g: %w", k, a, ErrUnstable)
	}
	sum := 0.0
	term := 1.0 // a^l / l! for l = 0
	for l := 0; l < k; l++ {
		sum += term
		term *= a / float64(l+1)
		if math.IsInf(sum, 1) || math.IsInf(term, 1) {
			return 0, nil
		}
	}
	rho := a / float64(k)
	sum += term / (1 - rho) // term is now a^k/k!
	if math.IsInf(sum, 1) {
		return 0, nil
	}
	return 1 / sum, nil
}

// expectedSojournDirect evaluates Equation (1) literally, factorials and
// all, via P0. It exists so the tests can prove the stable recurrence form
// matches the paper's formula; production code uses ExpectedSojourn.
func expectedSojournDirect(lambda, mu float64, k int) float64 {
	a := lambda / mu
	if float64(k) <= a {
		return math.Inf(1)
	}
	p0, err := P0(lambda, mu, k)
	if err != nil {
		return math.NaN()
	}
	// a^k / k! computed incrementally.
	t := 1.0
	for l := 1; l <= k; l++ {
		t *= a / float64(l)
	}
	rho := a / float64(k)
	return t*p0/((1-rho)*(1-rho)*mu*float64(k)) + 1/mu
}

// MinStableServers returns the smallest k with k > λ/µ, i.e. the fewest
// servers that give a finite E[T]. The paper's Algorithm 1 initializes
// k_i = ⌈λ_i/µ_i⌉, which coincides with this except when λ/µ is an exact
// integer — there the ceiling itself is unstable (Equation (1) is +∞ at
// k = λ/µ), so we use ⌊λ/µ⌋+1 throughout.
func MinStableServers(lambda, mu float64) (int, error) {
	if lambda < 0 || mu <= 0 || math.IsNaN(lambda) || math.IsNaN(mu) {
		return 0, ErrInvalidRates
	}
	if lambda == 0 {
		return 1, nil
	}
	return int(math.Floor(lambda/mu)) + 1, nil
}

// MarginalBenefit returns λ·(E[T](k) − E[T](k+1)): the decrease in the
// network-level objective of Equation (3) contributed by granting this
// operator one more server. By convexity of E[T](k) (Inequality (5)) it is
// non-negative and non-increasing in k, which is what makes the greedy
// allocation of Algorithm 1 exactly optimal (Theorem 1).
// It returns +Inf when the operator is currently unstable (any finite
// improvement from infinity dominates) and 0 when k+1 is still unstable.
func MarginalBenefit(lambda, mu float64, k int) float64 {
	cur := ExpectedSojourn(lambda, mu, k)
	next := ExpectedSojourn(lambda, mu, k+1)
	switch {
	case math.IsInf(next, 1):
		return 0 // even k+1 servers cannot stabilize it; no finite benefit yet
	case math.IsInf(cur, 1):
		return math.Inf(1)
	default:
		return lambda * (cur - next)
	}
}

// MinServersForSojourn returns the smallest k such that
// ExpectedSojourn(λ, µ, k) ≤ target. Returns an error if the target is
// unreachable (target < 1/µ, the bare service time) or rates are invalid.
func MinServersForSojourn(lambda, mu, target float64) (int, error) {
	if lambda < 0 || mu <= 0 {
		return 0, ErrInvalidRates
	}
	if target < 1/mu {
		return 0, fmt.Errorf("queueing: target %g below service time %g", target, 1/mu)
	}
	k, err := MinStableServers(lambda, mu)
	if err != nil {
		return 0, err
	}
	for ExpectedSojourn(lambda, mu, k) > target {
		k++
	}
	return k, nil
}
