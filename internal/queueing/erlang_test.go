package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestErlangBKnownValues(t *testing.T) {
	tests := []struct {
		name string
		k    int
		a    float64
		want float64
	}{
		{"zero servers blocks all", 0, 5, 1},
		{"one server", 1, 1, 0.5},             // B(1,a) = a/(1+a)
		{"one server load 3", 1, 3, 0.75},     // 3/4
		{"two servers load 1", 2, 1, 1.0 / 5}, // B(2,1) = (1*0.5)/(2+0.5) = 0.2
		{"zero load", 4, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ErlangB(tt.k, tt.a); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("ErlangB(%d, %g) = %g, want %g", tt.k, tt.a, got, tt.want)
			}
		})
	}
}

func TestErlangBMatchesFactorialForm(t *testing.T) {
	// B(k, a) = (a^k/k!) / Σ_{l=0}^{k} a^l/l!
	for _, a := range []float64{0.3, 1, 2.5, 7, 19.5} {
		for k := 1; k <= 30; k++ {
			term, sum := 1.0, 1.0
			for l := 1; l <= k; l++ {
				term *= a / float64(l)
				sum += term
			}
			want := term / sum
			if got := ErlangB(k, a); !almostEqual(got, want, 1e-10) {
				t.Fatalf("ErlangB(%d, %g) = %g, want %g", k, a, got, want)
			}
		}
	}
}

func TestErlangCBounds(t *testing.T) {
	for _, a := range []float64{0.5, 2, 9.7, 100} {
		for k := int(a) + 1; k < int(a)+20; k++ {
			b := ErlangB(k, a)
			c := ErlangC(k, a)
			if c < b {
				t.Errorf("C(%d,%g)=%g < B=%g; Erlang C must dominate B", k, a, c, b)
			}
			if c < 0 || c > 1 {
				t.Errorf("C(%d,%g)=%g out of [0,1]", k, a, c)
			}
		}
	}
}

func TestErlangCUnstableIsOne(t *testing.T) {
	if got := ErlangC(3, 3.0); got != 1 {
		t.Errorf("C(3, 3) = %g, want 1 (k <= a)", got)
	}
	if got := ErlangC(2, 5); got != 1 {
		t.Errorf("C(2, 5) = %g, want 1", got)
	}
}

func TestExpectedSojournMM1ClosedForm(t *testing.T) {
	// For k=1, E[T] = 1/(mu - lambda).
	tests := []struct{ lambda, mu float64 }{
		{1, 2}, {0.5, 1}, {9, 10}, {99, 100},
	}
	for _, tt := range tests {
		want := 1 / (tt.mu - tt.lambda)
		if got := ExpectedSojourn(tt.lambda, tt.mu, 1); !almostEqual(got, want, 1e-10) {
			t.Errorf("ExpectedSojourn(%g, %g, 1) = %g, want %g", tt.lambda, tt.mu, got, want)
		}
	}
}

func TestExpectedSojournMatchesPaperFormula(t *testing.T) {
	// The stable recurrence form must agree with Equation (1) evaluated
	// literally via P0 and factorials.
	for _, lambda := range []float64{0.5, 3, 13, 320, 650} {
		for _, mu := range []float64{0.7, 1.45, 65, 172} {
			if lambda/mu > 200 {
				// The factorial form overflows float64 at large offered
				// load; that regime is exactly what the recurrence fixes.
				continue
			}
			minK, err := MinStableServers(lambda, mu)
			if err != nil {
				t.Fatal(err)
			}
			for k := minK; k < minK+12; k++ {
				want := expectedSojournDirect(lambda, mu, k)
				got := ExpectedSojourn(lambda, mu, k)
				if !almostEqual(got, want, 1e-8) {
					t.Fatalf("lambda=%g mu=%g k=%d: recurrence %g != Eq.(1) %g", lambda, mu, k, got, want)
				}
			}
		}
	}
}

func TestExpectedSojournUnstable(t *testing.T) {
	tests := []struct {
		name       string
		lambda, mu float64
		k          int
	}{
		{"k below load", 10, 3, 3},
		{"k exactly load", 9, 3, 3}, // Eq. (1): infinite at k = lambda/mu too
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ExpectedSojourn(tt.lambda, tt.mu, tt.k); !math.IsInf(got, 1) {
				t.Errorf("ExpectedSojourn(%g, %g, %d) = %g, want +Inf", tt.lambda, tt.mu, tt.k, got)
			}
		})
	}
}

func TestExpectedSojournInvalidInputs(t *testing.T) {
	for _, tt := range []struct {
		name       string
		lambda, mu float64
	}{
		{"negative lambda", -1, 2},
		{"zero mu", 1, 0},
		{"negative mu", 1, -2},
		{"NaN lambda", math.NaN(), 1},
	} {
		t.Run(tt.name, func(t *testing.T) {
			if got := ExpectedSojourn(tt.lambda, tt.mu, 2); !math.IsNaN(got) {
				t.Errorf("got %g, want NaN", got)
			}
		})
	}
}

func TestExpectedSojournZeroArrivals(t *testing.T) {
	// No arrivals: no queueing, sojourn is the bare service time.
	if got, want := ExpectedSojourn(0, 4, 2), 0.25; !almostEqual(got, want, 1e-12) {
		t.Errorf("got %g, want %g", got, want)
	}
}

func TestP0ClosedForms(t *testing.T) {
	// M/M/1: p0 = 1 - rho.
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		got, err := P0(rho, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, 1-rho, 1e-12) {
			t.Errorf("M/M/1 P0(rho=%g) = %g, want %g", rho, got, 1-rho)
		}
	}
	// M/M/2 with a = lambda/mu: p0 = [1 + a + a^2/(2-a)]^{-1}.
	for _, a := range []float64{0.4, 1.0, 1.8} {
		want := 1 / (1 + a + a*a/(2-a))
		got, err := P0(a, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("M/M/2 P0(a=%g) = %g, want %g", a, got, want)
		}
	}
}

func TestP0Errors(t *testing.T) {
	if _, err := P0(5, 1, 3); err == nil {
		t.Error("P0 with unstable k should error")
	}
	if _, err := P0(1, -1, 3); err == nil {
		t.Error("P0 with invalid mu should error")
	}
}

func TestP0IsProbabilityDistributionAnchor(t *testing.T) {
	// Full steady-state distribution must sum to 1:
	// p_l = p0 a^l/l! (l < k), p_l = p0 a^k/k! rho^(l-k) (l >= k).
	lambda, mu, k := 10.0, 3.0, 5
	a := lambda / mu
	p0, err := P0(lambda, mu, k)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	term := p0
	for l := 0; l < k; l++ {
		sum += term
		term *= a / float64(l+1)
	}
	// Geometric tail from l = k.
	rho := a / float64(k)
	sum += term / (1 - rho)
	if !almostEqual(sum, 1, 1e-9) {
		t.Errorf("steady-state probabilities sum to %g, want 1", sum)
	}
}

func TestMinStableServers(t *testing.T) {
	tests := []struct {
		name       string
		lambda, mu float64
		want       int
	}{
		{"fractional load", 10, 3, 4},
		{"integer load needs one extra", 9, 3, 4},
		{"light load", 0.5, 10, 1},
		{"no load", 0, 7, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := MinStableServers(tt.lambda, tt.mu)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("MinStableServers(%g, %g) = %d, want %d", tt.lambda, tt.mu, got, tt.want)
			}
			if es := ExpectedSojourn(tt.lambda, tt.mu, got); math.IsInf(es, 1) {
				t.Errorf("minimum stable allocation still unstable: E[T] = %g", es)
			}
		})
	}
	if _, err := MinStableServers(1, 0); err == nil {
		t.Error("want error for mu = 0")
	}
}

func TestConvexityProperty(t *testing.T) {
	// Inequality (5): marginal improvements strictly diminish, which is
	// what Theorem 1 rests on.
	f := func(lseed, mseed uint16, kseed uint8) bool {
		lambda := 0.1 + float64(lseed%5000)/10 // 0.1 .. 500
		mu := 0.1 + float64(mseed%1000)/10     // 0.1 .. 100
		minK, err := MinStableServers(lambda, mu)
		if err != nil {
			return false
		}
		k := minK + int(kseed%20)
		d1 := ExpectedSojourn(lambda, mu, k) - ExpectedSojourn(lambda, mu, k+1)
		d2 := ExpectedSojourn(lambda, mu, k+1) - ExpectedSojourn(lambda, mu, k+2)
		if math.IsInf(d1, 1) {
			return true // infinite first gain trivially exceeds any finite one
		}
		return d1 >= d2 && d2 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMarginalBenefit(t *testing.T) {
	lambda, mu := 20.0, 3.0
	minK, _ := MinStableServers(lambda, mu)
	prev := math.Inf(1)
	for k := minK; k < minK+15; k++ {
		mb := MarginalBenefit(lambda, mu, k)
		if mb < 0 {
			t.Fatalf("MarginalBenefit(k=%d) = %g < 0", k, mb)
		}
		if mb > prev {
			t.Fatalf("MarginalBenefit increased at k=%d: %g > %g", k, mb, prev)
		}
		prev = mb
	}
	if mb := MarginalBenefit(10, 1, 5); mb != 0 {
		t.Errorf("benefit when k+1 still unstable = %g, want 0", mb)
	}
	if mb := MarginalBenefit(10, 1, 10); !math.IsInf(mb, 1) {
		t.Errorf("benefit when exactly stabilizing = %g, want +Inf", mb)
	}
}

func TestMinServersForSojourn(t *testing.T) {
	lambda, mu, target := 13.0, 1.45, 0.9
	k, err := MinServersForSojourn(lambda, mu, target)
	if err != nil {
		t.Fatal(err)
	}
	if got := ExpectedSojourn(lambda, mu, k); got > target {
		t.Errorf("k=%d gives E[T]=%g > target %g", k, got, target)
	}
	if k > 1 {
		if got := ExpectedSojourn(lambda, mu, k-1); got <= target {
			t.Errorf("k-1=%d already meets target (E[T]=%g); k not minimal", k-1, got)
		}
	}
	if _, err := MinServersForSojourn(10, 2, 0.4); err == nil {
		t.Error("target below service time must error")
	}
}

func TestExpectedQueueLengthMM1(t *testing.T) {
	// M/M/1: Lq = rho^2 / (1 - rho).
	lambda, mu := 3.0, 4.0
	rho := lambda / mu
	want := rho * rho / (1 - rho)
	if got := ExpectedQueueLength(lambda, mu, 1); !almostEqual(got, want, 1e-10) {
		t.Errorf("Lq = %g, want %g", got, want)
	}
}

func TestUtilization(t *testing.T) {
	if got := Utilization(10, 2, 10); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("Utilization = %g, want 0.5", got)
	}
	if got := Utilization(10, 2, 0); !math.IsInf(got, 1) {
		t.Errorf("Utilization with k=0 = %g, want +Inf", got)
	}
}

func TestSojournDecreasesWithServers(t *testing.T) {
	f := func(lseed, mseed uint16) bool {
		lambda := 1 + float64(lseed%3000)/10
		mu := 0.5 + float64(mseed%500)/10
		minK, err := MinStableServers(lambda, mu)
		if err != nil {
			return false
		}
		prev := ExpectedSojourn(lambda, mu, minK)
		for k := minK + 1; k < minK+10; k++ {
			cur := ExpectedSojourn(lambda, mu, k)
			if cur > prev {
				return false
			}
			if cur < 1/mu {
				return false // can never beat the bare service time
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
