package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// flatPool builds a pool with single-slot quantization and free
// transitions: capacity == machines, so fairness arithmetic is exact.
func flatPool(t *testing.T, start, max int) *Pool {
	t.Helper()
	p, err := NewPool(PoolConfig{SlotsPerMachine: 1, MaxMachines: max}, start)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newTestScheduler(t *testing.T, pool *Pool) *Scheduler {
	t.Helper()
	s, err := NewScheduler(SchedulerConfig{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// grants reads the current grant per tenant name.
func grants(s *Scheduler) map[string]int {
	out := make(map[string]int)
	for _, ts := range s.State().Tenants {
		out[ts.Name] = ts.Granted
	}
	return out
}

// TestWeightedMaxMinGrants drives the arbiter through contended demand
// tables and checks the water-filling outcome: floors first, then slots in
// proportion to weight, surplus from satisfied tenants redistributed.
func TestWeightedMaxMinGrants(t *testing.T) {
	type tenant struct {
		name   string
		weight float64
		floor  int
		demand int
		want   int
	}
	tests := []struct {
		name     string
		capacity int
		tenants  []tenant
	}{
		{
			name:     "equal weights split evenly",
			capacity: 12,
			tenants: []tenant{
				{name: "a", weight: 1, demand: 10, want: 6},
				{name: "b", weight: 1, demand: 10, want: 6},
			},
		},
		{
			name:     "two-to-one weights give two-to-one shares",
			capacity: 12,
			tenants: []tenant{
				{name: "a", weight: 2, demand: 12, want: 8},
				{name: "b", weight: 1, demand: 12, want: 4},
			},
		},
		{
			name:     "satisfied tenant's surplus flows to the hungry",
			capacity: 12,
			tenants: []tenant{
				{name: "a", weight: 1, demand: 3, want: 3},
				{name: "b", weight: 1, demand: 20, want: 9},
			},
		},
		{
			name:     "floors are honored before fairness",
			capacity: 10,
			tenants: []tenant{
				{name: "a", weight: 1, floor: 7, demand: 9, want: 7},
				{name: "b", weight: 4, demand: 20, want: 3},
			},
		},
		{
			name:     "under-capacity demands are fully granted",
			capacity: 20,
			tenants: []tenant{
				{name: "a", weight: 1, demand: 4, want: 4},
				{name: "b", weight: 3, demand: 9, want: 9},
			},
		},
		{
			name:     "three-way weighted contention",
			capacity: 18,
			tenants: []tenant{
				{name: "a", weight: 1, demand: 30, want: 3},
				{name: "b", weight: 2, demand: 30, want: 6},
				{name: "c", weight: 3, demand: 30, want: 9},
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := newTestScheduler(t, flatPool(t, 1, tt.capacity))
			leases := make(map[string]*Tenant)
			for _, tn := range tt.tenants {
				lease, err := s.Register(TenantConfig{Name: tn.name, Weight: tn.weight, MinSlots: tn.floor})
				if err != nil {
					t.Fatal(err)
				}
				leases[tn.name] = lease
			}
			for _, tn := range tt.tenants {
				// A contended grow request may be granted partially or not at
				// all (ErrNoCapacity); both are legitimate outcomes here.
				if _, err := leases[tn.name].Resize(tn.demand); err != nil && !errors.Is(err, ErrNoCapacity) {
					t.Fatal(err)
				}
			}
			got := grants(s)
			for _, tn := range tt.tenants {
				if got[tn.name] != tn.want {
					t.Errorf("tenant %s: granted %d, want %d (all: %v)", tn.name, got[tn.name], tn.want, got)
				}
			}
			st := s.State()
			if st.Leased > st.Capacity {
				t.Fatalf("double-leased: %d slots granted over capacity %d", st.Leased, st.Capacity)
			}
		})
	}
}

// TestArbitrationDeterministic re-runs the same contended arbitration via
// redundant Resize calls and checks grants do not churn.
func TestArbitrationDeterministic(t *testing.T) {
	s := newTestScheduler(t, flatPool(t, 1, 10))
	a, err := s.Register(TenantConfig{Name: "a"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Register(TenantConfig{Name: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Resize(8); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Resize(8); err != nil {
		t.Fatal(err)
	}
	first := grants(s)
	for i := 0; i < 5; i++ {
		_, _ = a.Resize(8)
		_, _ = b.Resize(8)
		if got := grants(s); got["a"] != first["a"] || got["b"] != first["b"] {
			t.Fatalf("grants churned on identical inputs: %v -> %v", first, got)
		}
	}
}

// preemptScenario builds a two-tenant contended scheduler: low-priority
// "batch" holds most of a maxed-out pool, high-priority "rt" wants more.
func preemptScenario(t *testing.T, costs CostModel, window time.Duration) (*Scheduler, *Tenant, *Tenant) {
	t.Helper()
	pool, err := NewPool(PoolConfig{SlotsPerMachine: 1, MaxMachines: 20, Costs: costs}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(SchedulerConfig{Pool: pool, CostWindow: window})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := s.Register(TenantConfig{Name: "batch", Priority: 0, MinSlots: 6, InitialSlots: 14})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := s.Register(TenantConfig{Name: "rt", Priority: 1, MinSlots: 4, InitialSlots: 6})
	if err != nil {
		t.Fatal(err)
	}
	return s, batch, rt
}

// TestPreemptionFiresWhenGuardClears: a violating high-priority tenant
// whose marginal benefit dwarfs the victim's marginal cost takes slots,
// but never below the victim's floor.
func TestPreemptionFiresWhenGuardClears(t *testing.T) {
	s, batch, rt := preemptScenario(t, CostModel{}, time.Minute)
	batch.Report(TenantReport{Lambda0: 10, ShrinkCost: 0.05})
	rt.Report(TenantReport{Lambda0: 10, Violating: true, GrowBenefit: 2.0, ShrinkCost: math.Inf(1)})
	if _, err := rt.Resize(14); err != nil {
		t.Fatal(err)
	}
	got := grants(s)
	// Fair split of 20 between equal weights is 10/10; rt's violation plus
	// the cleared guard lets it take batch down to its floor of 6.
	if got["rt"] != 14 || got["batch"] != 6 {
		t.Fatalf("grants after preemption = %v, want rt=14 batch=6", got)
	}
	var preempts int
	for _, ev := range s.History() {
		if ev.Kind == "preempt" && ev.Tenant == "batch" {
			preempts++
		}
	}
	if preempts == 0 {
		t.Fatal("no preempt event recorded")
	}
	st := s.State()
	if st.Leased > st.Capacity {
		t.Fatalf("double-leased: %d over %d", st.Leased, st.Capacity)
	}
}

// TestPreemptionBlockedByBenefitGuard: when the victim's marginal cost
// exceeds the claimant's marginal benefit, preemption must not fire even
// though the claimant is violating and outranks the victim.
func TestPreemptionBlockedByBenefitGuard(t *testing.T) {
	s, batch, rt := preemptScenario(t, CostModel{}, time.Minute)
	batch.Report(TenantReport{Lambda0: 10, ShrinkCost: 3.0})
	rt.Report(TenantReport{Lambda0: 10, Violating: true, GrowBenefit: 2.0})
	if _, err := rt.Resize(14); err != nil && !errors.Is(err, ErrNoCapacity) {
		t.Fatal(err)
	}
	got := grants(s)
	if got["batch"] != 10 || got["rt"] != 10 {
		t.Fatalf("guard failed to hold: %v, want the fair 10/10 split", got)
	}
}

// TestPreemptionBlockedByPauseAmortization: even with a positive net
// benefit, the transfer must recoup both tenants' rebalance pauses within
// CostWindow — a thin margin over a short window must not clear.
func TestPreemptionBlockedByPauseAmortization(t *testing.T) {
	costs := CostModel{Rebalance: 3 * time.Second}
	s, batch, rt := preemptScenario(t, costs, 10*time.Second)
	// Net gain rate (2.0 - 1.9) * 4 slots * 10 s window = 4 sojourn-sec;
	// pause penalty (100+100 tuples/s) * 3 s = 600. Guard must block.
	batch.Report(TenantReport{Lambda0: 100, ShrinkCost: 1.9})
	rt.Report(TenantReport{Lambda0: 100, Violating: true, GrowBenefit: 2.0})
	if _, err := rt.Resize(14); err != nil && !errors.Is(err, ErrNoCapacity) {
		t.Fatal(err)
	}
	if got := grants(s); got["batch"] != 10 || got["rt"] != 10 {
		t.Fatalf("pause amortization guard failed: %v", got)
	}
	// The same transfer over a long window clears.
	s2, batch2, rt2 := preemptScenario(t, costs, time.Hour)
	batch2.Report(TenantReport{Lambda0: 100, ShrinkCost: 1.9})
	rt2.Report(TenantReport{Lambda0: 100, Violating: true, GrowBenefit: 2.0})
	if _, err := rt2.Resize(14); err != nil {
		t.Fatal(err)
	}
	if got := grants(s2); got["rt"] != 14 {
		t.Fatalf("amortized preemption did not fire: %v", got)
	}
}

// TestNoPreemptionWithoutViolation: priority alone never preempts — the
// claimant must be violating its Tmax.
func TestNoPreemptionWithoutViolation(t *testing.T) {
	s, batch, rt := preemptScenario(t, CostModel{}, time.Minute)
	batch.Report(TenantReport{Lambda0: 10, ShrinkCost: 0.01})
	rt.Report(TenantReport{Lambda0: 10, Violating: false, GrowBenefit: 5.0})
	if _, err := rt.Resize(14); err != nil && !errors.Is(err, ErrNoCapacity) {
		t.Fatal(err)
	}
	if got := grants(s); got["batch"] != 10 || got["rt"] != 10 {
		t.Fatalf("non-violating tenant preempted: %v", got)
	}
}

// TestNoPreemptionAcrossEqualPriority: equal priorities only ever share by
// fairness.
func TestNoPreemptionAcrossEqualPriority(t *testing.T) {
	pool := flatPool(t, 1, 20)
	s := newTestScheduler(t, pool)
	a, err := s.Register(TenantConfig{Name: "a", MinSlots: 4, InitialSlots: 14})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Register(TenantConfig{Name: "b", MinSlots: 4, InitialSlots: 6})
	if err != nil {
		t.Fatal(err)
	}
	a.Report(TenantReport{Lambda0: 10, ShrinkCost: 0.01})
	b.Report(TenantReport{Lambda0: 10, Violating: true, GrowBenefit: 5.0})
	if _, err := b.Resize(16); err != nil && !errors.Is(err, ErrNoCapacity) {
		t.Fatal(err)
	}
	if got := grants(s); got["a"] != 10 || got["b"] != 10 {
		t.Fatalf("equal-priority preemption happened: %v", got)
	}
}

// TestPreemptionSkipsUnreportedVictims: a tenant that never reported its
// utility cannot be preempted (a blind transfer could destabilize it).
func TestPreemptionSkipsUnreportedVictims(t *testing.T) {
	s, _, rt := preemptScenario(t, CostModel{}, time.Minute)
	rt.Report(TenantReport{Lambda0: 10, Violating: true, GrowBenefit: 5.0})
	if _, err := rt.Resize(14); err != nil && !errors.Is(err, ErrNoCapacity) {
		t.Fatal(err)
	}
	if got := grants(s); got["batch"] != 10 || got["rt"] != 10 {
		t.Fatalf("unreported victim preempted: %v", got)
	}
}

// TestPreemptionUnwindsWhenViolationClears: the transfer is an overlay on
// the fair allocation; the next arbitration after the claimant's report
// clears hands the slots back.
func TestPreemptionUnwindsWhenViolationClears(t *testing.T) {
	s, batch, rt := preemptScenario(t, CostModel{}, time.Minute)
	batch.Report(TenantReport{Lambda0: 10, ShrinkCost: 0.05})
	rt.Report(TenantReport{Lambda0: 10, Violating: true, GrowBenefit: 2.0})
	if _, err := rt.Resize(14); err != nil {
		t.Fatal(err)
	}
	if got := grants(s); got["batch"] != 6 {
		t.Fatalf("precondition: preemption should hold, got %v", got)
	}
	// The violation clears; any tenant's next request re-arbitrates.
	rt.Report(TenantReport{Lambda0: 10, Violating: false})
	if _, err := batch.Resize(14); err != nil && !errors.Is(err, ErrNoCapacity) {
		t.Fatal(err)
	}
	if got := grants(s); got["batch"] != 10 || got["rt"] != 10 {
		t.Fatalf("slots not returned after violation cleared: %v", got)
	}
}

// TestSchedulerPoolElasticity: aggregate demand pulls machines in and
// releases them, within the provider cap.
func TestSchedulerPoolElasticity(t *testing.T) {
	pool, err := NewPool(PoolConfig{SlotsPerMachine: 5, MaxMachines: 4, Costs: PaperCosts()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestScheduler(t, pool)
	a, err := s.Register(TenantConfig{Name: "a", InitialSlots: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pool.Machines() != 1 {
		t.Fatalf("pool grew early: %d machines", pool.Machines())
	}
	tr, err := a.Resize(12)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Machines() != 3 || a.Kmax() != 12 {
		t.Fatalf("pool = %d machines, grant = %d; want 3 and 12", pool.Machines(), a.Kmax())
	}
	if tr.Kind != "scale-out" || tr.Pause != PaperCosts().Rebalance+PaperCosts().MachineColdStart {
		t.Fatalf("grow transition = %+v, want scale-out with cold-start pause", tr)
	}
	tr, err = a.Resize(3)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Machines() != 1 || a.Kmax() != 3 {
		t.Fatalf("pool = %d machines, grant = %d; want 1 and 3", pool.Machines(), a.Kmax())
	}
	if tr.Kind != "scale-in" || tr.Pause != PaperCosts().Rebalance+PaperCosts().MachineRelease {
		t.Fatalf("shrink transition = %+v, want scale-in with release pause", tr)
	}
	// Demand beyond the provider cap: partial grant up to MaxKmax.
	if _, err := a.Resize(99); err != nil {
		t.Fatal(err)
	}
	if a.Kmax() != 20 {
		t.Fatalf("grant = %d, want the provider cap 20", a.Kmax())
	}
	// Asking again gains nothing: a plain capacity hold.
	if _, err := a.Resize(99); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("want ErrNoCapacity on zero-gain grow, got %v", err)
	}
}

// TestRegisterAndRelease: registration fails cleanly when the initial
// grant cannot fit, and Release returns slots to the survivors.
func TestRegisterAndRelease(t *testing.T) {
	s := newTestScheduler(t, flatPool(t, 1, 10))
	a, err := s.Register(TenantConfig{Name: "a", MinSlots: 8, InitialSlots: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register(TenantConfig{Name: "a", InitialSlots: 1}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	// 8 floored slots held; a newcomer needing 5 can only get 2.
	if _, err := s.Register(TenantConfig{Name: "big", InitialSlots: 5}); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("want ErrNoCapacity, got %v", err)
	}
	if got := grants(s); got["a"] != 8 || len(got) != 1 {
		t.Fatalf("failed registration disturbed grants: %v", got)
	}
	b, err := s.Register(TenantConfig{Name: "b", InitialSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	// b wants more; nothing free until a releases.
	if _, err := b.Resize(10); err != nil && !errors.Is(err, ErrNoCapacity) {
		t.Fatal(err)
	}
	before := grants(s)["b"]
	a.Release()
	if _, err := b.Resize(10); err != nil {
		t.Fatal(err)
	}
	if got := grants(s)["b"]; got != 10 || got <= before {
		t.Fatalf("release did not free slots: b = %d", got)
	}
	if _, err := a.Resize(1); !errors.Is(err, ErrTenantReleased) {
		t.Fatalf("want ErrTenantReleased, got %v", err)
	}
	a.Release() // idempotent
}

// checkSchedulerInvariants asserts, from one State snapshot, everything an
// arbitration must never break, whatever sequence of operations led here:
//
//  1. no double-lease: total grants never exceed the live capacity;
//  2. the placement is physical: every machine row fits its slot count,
//     no failed machine appears, machine IDs are unique, and the placed
//     slots account for exactly the leased total plus the reserved share;
//  3. no grant exceeds its demand;
//  4. floors hold whenever capacity allows: if the floor sum fits the
//     capacity, every tenant keeps at least min(demand, MinSlots).
func checkSchedulerInvariants(t *testing.T, s *Scheduler, ctx string) {
	t.Helper()
	st := s.State()
	if st.Leased > st.Capacity {
		t.Fatalf("%s: double-leased: %d slots over capacity %d", ctx, st.Leased, st.Capacity)
	}
	placed, seen := 0, map[int]bool{}
	for _, row := range st.Placement {
		if row.Reserved+row.Leased > row.Slots {
			t.Fatalf("%s: machine %d overcommitted: %+v", ctx, row.ID, row)
		}
		if seen[row.ID] {
			t.Fatalf("%s: machine %d placed twice", ctx, row.ID)
		}
		seen[row.ID] = true
		placed += row.Leased
	}
	if placed != st.Leased {
		t.Fatalf("%s: placement holds %d slots, leases total %d", ctx, placed, st.Leased)
	}
	floorSum := 0
	for _, ts := range st.Tenants {
		if ts.Granted > ts.Demand {
			t.Fatalf("%s: tenant %s granted %d over demand %d", ctx, ts.Name, ts.Granted, ts.Demand)
		}
		if ts.Granted < 0 {
			t.Fatalf("%s: tenant %s negative grant %d", ctx, ts.Name, ts.Granted)
		}
		floorSum += minInt(ts.Demand, ts.MinSlots)
	}
	if floorSum <= st.Capacity {
		for _, ts := range st.Tenants {
			if floor := minInt(ts.Demand, ts.MinSlots); ts.Granted < floor {
				t.Fatalf("%s: tenant %s under floor: granted %d < %d with capacity %d free for all floors (%d)",
					ctx, ts.Name, ts.Granted, floor, st.Capacity, floorSum)
			}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestSchedulerPropertyRandomOps is the property-based invariant net over
// the whole arbitration surface: ~1k randomized operation sequences —
// resize requests, utility reports, machine failures and recoveries,
// straggler flags, priority flips, registrations and releases — with the
// full invariant set re-checked after every single operation. Run under
// -race in CI (the cluster package race job covers it).
func TestSchedulerPropertyRandomOps(t *testing.T) {
	sequences := 1000
	if testing.Short() {
		sequences = 100
	}
	for seq := 0; seq < sequences; seq++ {
		rng := rand.New(rand.NewSource(int64(seq) + 1))
		pool, err := NewPool(PoolConfig{
			SlotsPerMachine: 1 + rng.Intn(4),
			ReservedSlots:   rng.Intn(2),
			MaxMachines:     2 + rng.Intn(5),
		}, 1+rng.Intn(2))
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewScheduler(SchedulerConfig{Pool: pool, ReplaceOnFailure: seq%5 == 0})
		if err != nil {
			t.Fatal(err)
		}
		var leases []*Tenant
		names := 0
		register := func(initial int) {
			names++
			lease, err := s.Register(TenantConfig{
				Name:         fmt.Sprintf("t%d", names),
				Weight:       float64(1 + rng.Intn(3)),
				Priority:     rng.Intn(3),
				MinSlots:     rng.Intn(5),
				InitialSlots: initial,
			})
			if err == nil {
				leases = append(leases, lease)
			} else if !errors.Is(err, ErrNoCapacity) {
				t.Fatalf("seq %d: register: %v", seq, err)
			}
		}
		// An empty initial grant always fits, so at least one lease exists.
		register(0)
		pick := func() *Tenant { return leases[rng.Intn(len(leases))] }
		// A machine ID drawn near the live range; stale and bogus IDs are
		// deliberately included — lifecycle calls must fail cleanly.
		someMachine := func() int {
			list := pool.MachineList()
			if len(list) == 0 || rng.Intn(8) == 0 {
				return rng.Intn(20)
			}
			return list[rng.Intn(len(list))].ID
		}
		ops := 15 + rng.Intn(15)
		for op := 0; op < ops; op++ {
			ctx := fmt.Sprintf("seq %d op %d", seq, op)
			switch rng.Intn(12) {
			case 0:
				register(rng.Intn(4))
			case 1:
				if len(leases) > 1 {
					i := rng.Intn(len(leases))
					leases[i].Release()
					leases = append(leases[:i], leases[i+1:]...)
				}
			case 2, 3, 4, 5:
				if _, err := pick().Resize(rng.Intn(20)); err != nil &&
					!errors.Is(err, ErrNoCapacity) && !errors.Is(err, ErrTenantReleased) {
					t.Fatalf("%s: resize: %v", ctx, err)
				}
			case 6, 7:
				shrink := rng.Float64() * 3
				if rng.Intn(6) == 0 {
					shrink = math.Inf(1)
				}
				pick().Report(TenantReport{
					Lambda0:     rng.Float64() * 20,
					Violating:   rng.Intn(2) == 0,
					GrowBenefit: rng.Float64() * 3,
					ShrinkCost:  shrink,
				})
			case 8:
				_ = s.FailMachine(someMachine())
			case 9:
				_ = s.RecoverMachine(someMachine())
			case 10:
				_ = s.MarkStraggler(someMachine(), rng.Intn(2) == 0)
			case 11:
				if err := pick().SetPriority(rng.Intn(3)); err != nil &&
					!errors.Is(err, ErrTenantReleased) {
					t.Fatalf("%s: set priority: %v", ctx, err)
				}
			}
			checkSchedulerInvariants(t, s, ctx)
		}
	}
}

// TestNoDoubleLeaseUnderConcurrency hammers the scheduler from many
// goroutines — resizes, reports, registrations, releases — and checks
// after every operation that the grant total never exceeds capacity and
// that each lease is internally consistent. Run with -race.
func TestNoDoubleLeaseUnderConcurrency(t *testing.T) {
	pool, err := NewPool(PoolConfig{SlotsPerMachine: 4, MaxMachines: 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestScheduler(t, pool)
	check := func() {
		st := s.State()
		if st.Leased > st.Capacity {
			t.Errorf("double-leased: %d slots over capacity %d", st.Leased, st.Capacity)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := string(rune('a' + g))
			lease, err := s.Register(TenantConfig{Name: name, Weight: float64(g%3 + 1), Priority: g % 2})
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 60; i++ {
				switch i % 4 {
				case 0:
					_, _ = lease.Resize((g + i) % 9)
				case 1:
					lease.Report(TenantReport{Lambda0: 5, Violating: i%8 == 1, GrowBenefit: 1, ShrinkCost: 0.1})
				case 2:
					_, _ = lease.Resize((g * i) % 13)
				case 3:
					_ = lease.Kmax()
				}
				check()
			}
			lease.Release()
			check()
		}(g)
	}
	wg.Wait()
	st := s.State()
	if st.Leased != 0 || len(st.Tenants) != 0 {
		t.Fatalf("leaked grants after all releases: %+v", st)
	}
}
