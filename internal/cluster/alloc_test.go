package cluster

import (
	"errors"
	"testing"

	"github.com/drs-repro/drs/internal/obs"
)

// TestArbitrationAllocBudgetWithDecisionLog pins a contended 8-tenant
// arbitration at the one-allocation budget behind the 1.9 µs claim, with
// the decision log on. Preemption records carry their full Appendix-B
// verdict inputs, yet Emit copies into a preallocated ring slot — so
// logging must not add a single allocation to the decision path. Fails
// when a change regresses the budget.
func TestArbitrationAllocBudgetWithDecisionLog(t *testing.T) {
	if obs.RaceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race")
	}
	dlog := obs.NewLog(obs.Config{})
	defer dlog.Close()
	pool, err := NewPool(PoolConfig{SlotsPerMachine: 8, MaxMachines: 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewScheduler(SchedulerConfig{Pool: pool, DecisionLog: dlog})
	if err != nil {
		t.Fatal(err)
	}
	tenants := make([]*Tenant, 8)
	for i := range tenants {
		tn, err := sched.Register(TenantConfig{
			Name:     string(rune('a' + i)),
			Weight:   float64(i%3 + 1),
			Priority: i % 2,
			MinSlots: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		tn.Report(TenantReport{
			Lambda0:     10,
			Violating:   i%2 == 1,
			GrowBenefit: float64(i),
			ShrinkCost:  0.5,
		})
		tenants[i] = tn
	}
	// Oversubscribe: total demand 8×12 = 96 over 64 slots, so every
	// arbitration below runs the contended path end to end.
	for _, tn := range tenants {
		if _, err := tn.Resize(12); err != nil && !errors.Is(err, ErrNoCapacity) {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(5000, func() {
		if _, err := tenants[i%len(tenants)].Resize(12 + i%2); err != nil && !errors.Is(err, ErrNoCapacity) {
			t.Fatal(err)
		}
		i++
	})
	if allocs > 1 {
		t.Fatalf("arbitration allocated %.3f/op with the decision log on; budget is 1", allocs)
	}
}
